// Package meshroute is a complete Go implementation of the routing theory
// in Chinn, Leighton & Tompa, "Minimal Adaptive Routing on the Mesh with
// Bounded Queue Size" (SPAA 1994): the synchronous multi-port mesh/torus
// packet-routing model with bounded queues, the family of
// destination-exchangeable routing algorithms, the adversarial lower-bound
// constructions of Sections 3–5 (Ω(n²/k²) for minimal adaptive routing,
// Ω(n²/k) for dimension order), the matching O(n²/k + n) bounded-queue
// dimension-order router of Theorem 15, and the O(n)-time O(1)-queue
// minimal adaptive algorithm of Section 6 (Theorem 34).
//
// Quick start:
//
//	topo := meshroute.NewMesh(32)
//	perm := meshroute.RandomPermutation(topo, 42)
//	stats, err := meshroute.Route(meshroute.RouterThm15, topo, 2, perm, 0)
//
// To build the adversarial permutation of Theorem 14 against a router and
// measure how badly it hurts:
//
//	perm, bound, time, done, err := meshroute.HardPermutation(240, 2, meshroute.RouterDimOrder, 100000)
//
// And to route with the Section 6 O(n) algorithm:
//
//	res, err := meshroute.RouteCLT(81, perm, meshroute.CLTOptions{})
package meshroute

import (
	"fmt"

	"meshroute/internal/adversary"
	"meshroute/internal/clt"
	"meshroute/internal/dex"
	"meshroute/internal/fault"
	"meshroute/internal/grid"
	"meshroute/internal/routers"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

// Core model types, re-exported from the internal packages.
type (
	// Topology is a mesh or torus network.
	Topology = grid.Topology
	// Coord is a mesh coordinate (X = column from west, Y = row from
	// south).
	Coord = grid.Coord
	// Dir is a mesh direction.
	Dir = grid.Dir
	// NodeID identifies a node.
	NodeID = grid.NodeID
	// Network is a simulated network with packets in flight.
	Network = sim.Network
	// NetworkConfig configures a Network.
	NetworkConfig = sim.Config
	// Packet is a routed packet.
	Packet = sim.Packet
	// Algorithm is a routing algorithm driven by the engine.
	Algorithm = sim.Algorithm
	// Permutation is a partial permutation routing instance.
	Permutation = workload.Permutation
	// Pair is one source/destination pair.
	Pair = workload.Pair
	// HHInstance is an h-h routing instance.
	HHInstance = workload.HH
	// AdversaryResult is the outcome of a lower-bound construction.
	AdversaryResult = adversary.Result
	// CLTResult reports a Section 6 algorithm run.
	CLTResult = clt.Result

	// FaultSchedule is a deterministic schedule of injected faults.
	FaultSchedule = fault.Schedule
	// FaultConfig parameterizes random fault-schedule generation.
	FaultConfig = fault.Config
	// FaultEvent is one scheduled fault transition.
	FaultEvent = fault.Event
	// RunDiagnostics is the structured state snapshot attached to
	// step-limit and livelock errors.
	RunDiagnostics = sim.Diagnostics
	// StepLimitError reports an exhausted step budget, with diagnostics.
	StepLimitError = sim.StepLimitError
	// LivelockError reports a watchdog abort after a no-progress window.
	LivelockError = sim.LivelockError
	// UnreachableError reports a destination cut off by permanent link
	// failures under minimal routing.
	UnreachableError = sim.UnreachableError
)

// GenerateFaults draws a random fault schedule for a topology; the same
// seed always yields the same schedule.
func GenerateFaults(topo Topology, cfg FaultConfig) (*FaultSchedule, error) {
	return fault.Generate(topo, cfg)
}

// Directions.
const (
	North = grid.North
	East  = grid.East
	South = grid.South
	West  = grid.West
)

// XY builds a Coord.
func XY(x, y int) Coord { return grid.XY(x, y) }

// NewMesh returns the n×n mesh of the paper.
func NewMesh(n int) Topology { return grid.NewSquareMesh(n) }

// NewTorus returns the n×n torus.
func NewTorus(n int) Topology { return grid.NewSquareTorus(n) }

// NewNetwork builds a network, validating the configuration; see
// NetworkConfig for the queue models.
func NewNetwork(cfg NetworkConfig) (*Network, error) { return sim.New(cfg) }

// Workload generators.
var (
	// RandomPermutation is a uniformly random full permutation.
	RandomPermutation = workload.Random
	// RandomDestinations sends one packet per node to an independent
	// uniform destination (the average-case setting of Section 1.1).
	RandomDestinations = workload.RandomDestinations
	// Transpose is the matrix-transpose permutation.
	Transpose = workload.Transpose
	// Reversal is the full-reversal permutation.
	Reversal = workload.Reversal
	// BitReversal is the bit-reversal permutation (power-of-two meshes).
	BitReversal = workload.BitReversal
	// RandomHH builds a random h-h instance from h permutations.
	RandomHH = workload.RandomHH
)

// Rotation is the torus-shift permutation (x,y) -> (x+dx, y+dy) mod n.
func Rotation(topo Topology, dx, dy int) *Permutation { return workload.Rotation(topo, dx, dy) }

// RouteStats summarizes one routing run.
type RouteStats struct {
	// Makespan is the delivery step of the last packet.
	Makespan int
	// Steps is the number of steps executed (>= Makespan; larger only
	// if the run was truncated).
	Steps int
	// Done reports whether every packet was delivered.
	Done bool
	// Delivered and Total count packets.
	Delivered, Total int
	// MaxQueue is the peak end-of-step occupancy of any single queue.
	MaxQueue int
	// AvgDelay is the mean delivery delay.
	AvgDelay float64
	// FaultDrops counts moves dropped on failed links or into stalled
	// nodes (0 without fault injection).
	FaultDrops int

	// Online reports an open workload: a streaming source injecting past
	// step 0, for which the admission and throughput fields below are
	// meaningful (they stay zero on static one-shot runs).
	Online bool
	// Offered counts distinct injection requests presented to admission;
	// Admitted those that entered the network; Refused the refusal events
	// (per-step backlog waits plus drops), so the per-attempt refusal rate
	// is Refused/(Admitted+Refused); Dropped the offers discarded
	// terminally under the drop policy.
	Offered, Admitted, Refused, Dropped int
	// Throughput is the delivered-per-step rate over the whole run.
	Throughput float64
	// DelayP50, DelayP95 and DelayP99 are time-in-system percentiles
	// (delivery step minus injection step) over delivered packets.
	DelayP50, DelayP95, DelayP99 float64

	// Efficiency block (scenario knob "analysis": true). Analyzed reports
	// that the run computed its congestion+dilation yardstick; the fields
	// below stay zero otherwise. Congestion is the maximum number of
	// minimal paths sharing one directed edge in the analyzed path system
	// (static workloads: canonical dimension-order plus a greedy
	// congestion-lowering pass; online workloads: canonical paths accrued
	// at admission time), Dilation the longest path length, and CDRatio
	// the theory-grounded efficiency ratio Makespan/(C+D) — Θ(1) for any
	// near-optimal schedule by Rothvoß's O(congestion+dilation) bound.
	Analyzed bool
	// Congestion and Dilation are the analyzed C and D.
	Congestion, Dilation int
	// CDRatio is Makespan/(Congestion+Dilation), 0 for an empty workload.
	CDRatio float64
}

// RefusalRate returns Refused/(Admitted+Refused), the fraction of
// admission attempts refused, or 0 when there were none.
func (s RouteStats) RefusalRate() float64 {
	if s.Admitted+s.Refused == 0 {
		return 0
	}
	return float64(s.Refused) / float64(s.Admitted+s.Refused)
}

// RouteOptions extends Route with robustness controls.
type RouteOptions struct {
	// MaxSteps caps the run (0 means a generous default).
	MaxSteps int
	// Faults injects the schedule into the run (nil disables faults).
	Faults *FaultSchedule
	// FaultAware selects the router's fault-aware variant, which detours
	// around failed links; only some routers have one (LookupRouter's
	// spec reports it via NewFaultAware != nil).
	FaultAware bool
	// Watchdog aborts the run with a LivelockError after this many steps
	// without a delivery (0 disables the watchdog).
	Watchdog int
	// Seed seeds a randomized router's decision stream (rand-zigzag).
	// Selecting a nonzero seed for a deterministic router is an error;
	// 0 keeps the router's default stream.
	Seed uint64
}

// Route runs a named router on a permutation over the given topology with
// queue capacity k, until done or maxSteps (0 means a generous default).
func Route(router string, topo Topology, k int, perm *Permutation, maxSteps int) (RouteStats, error) {
	return RouteWithOptions(router, topo, k, perm, RouteOptions{MaxSteps: maxSteps})
}

// RouteWithOptions is Route with fault injection, fault-aware routing and
// a livelock watchdog available.
func RouteWithOptions(router string, topo Topology, k int, perm *Permutation, opts RouteOptions) (RouteStats, error) {
	spec, err := LookupRouter(router)
	if err != nil {
		return RouteStats{}, err
	}
	newAlg := spec.New
	switch {
	case opts.Seed != 0:
		if spec.NewSeeded == nil {
			return RouteStats{}, fmt.Errorf("meshroute: router %q is deterministic and takes no seed", router)
		}
		if opts.FaultAware && spec.NewFaultAware == nil {
			return RouteStats{}, fmt.Errorf("meshroute: router %q has no fault-aware variant", router)
		}
		seed, fa := opts.Seed, opts.FaultAware
		newAlg = func() sim.Algorithm { return spec.NewSeeded(seed, fa) }
	case opts.FaultAware:
		if spec.NewFaultAware == nil {
			return RouteStats{}, fmt.Errorf("meshroute: router %q has no fault-aware variant", router)
		}
		newAlg = spec.NewFaultAware
	}
	cfg := spec.Config(topo, k)
	cfg.Faults = opts.Faults
	cfg.Watchdog = opts.Watchdog
	net, err := sim.New(cfg)
	if err != nil {
		return RouteStats{}, err
	}
	if err := perm.Place(net); err != nil {
		return RouteStats{}, err
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		n := topo.Width()
		maxSteps = 200 * (n*n/k + 2*n)
	}
	steps, err := net.RunPartial(newAlg(), maxSteps)
	if err != nil {
		return RouteStats{}, err
	}
	return RouteStats{
		Makespan:   net.Metrics.Makespan,
		Steps:      steps,
		Done:       net.Done(),
		Delivered:  net.DeliveredCount(),
		Total:      net.TotalPackets(),
		MaxQueue:   net.Metrics.MaxQueueLen,
		AvgDelay:   net.AvgDelay(),
		FaultDrops: net.Metrics.FaultDrops,
	}, nil
}

// HardPermutation builds the Theorem 14 adversarial permutation against a
// named destination-exchangeable router on the n×n mesh with queue size k,
// verifies the Lemma 12 replay equivalence, and measures the delivery time
// of the constructed permutation (capped at maxSteps).
func HardPermutation(n, k int, router string, maxSteps int) (perm []Pair, bound, makespan int, done bool, err error) {
	spec, err := LookupRouter(router)
	if err != nil {
		return nil, 0, 0, false, err
	}
	if !spec.DestinationExchangeable {
		return nil, 0, 0, false, fmt.Errorf("meshroute: router %q is not destination-exchangeable; Theorem 14 does not apply", router)
	}
	if spec.Queues != sim.CentralQueue {
		return nil, 0, 0, false, fmt.Errorf("meshroute: HardPermutation supports central-queue routers; use the adversary package directly for %q", router)
	}
	return adversary.HardPermutation(n, k, spec.New, maxSteps)
}

// CLTOptions configures the Section 6 algorithm.
type CLTOptions struct {
	// ImprovedQ uses the 564n constant (q = 102 for iterations >= 1).
	ImprovedQ bool
	// Verify enables expensive invariant checks.
	Verify bool
}

// RouteCLT routes a permutation on the n×n mesh (n a power of 3, or
// n < 27) with the Section 6 O(n)-time, O(1)-queue minimal adaptive
// algorithm, returning the Theorem 34 statistics.
func RouteCLT(n int, perm *Permutation, opts CLTOptions) (*CLTResult, error) {
	r, err := clt.New(clt.Config{N: n, ImprovedQ: opts.ImprovedQ, Verify: opts.Verify})
	if err != nil {
		return nil, err
	}
	return r.Route(perm)
}

// NewDexAdapter lifts a dex.Policy into an Algorithm. It is exposed so
// custom destination-exchangeable policies written against the dex
// framework can run on the public engine.
func NewDexAdapter(p dex.Policy) Algorithm { return dex.NewAdapter(p) }

// Adversary constructions, re-exported for direct use.
var (
	// NewAdversary prepares the Section 3 Ω(n²/k²) construction.
	NewAdversary = adversary.NewConstruction
	// NewHHAdversary prepares the Section 5 h-h construction.
	NewHHAdversary = adversary.NewHHConstruction
	// NewDimOrderAdversary prepares the Section 5 Ω(n²/k) dimension-
	// order construction.
	NewDimOrderAdversary = adversary.NewDOConstruction
	// NewFarthestFirstAdversary prepares the Section 5 farthest-first
	// construction.
	NewFarthestFirstAdversary = adversary.NewFFConstruction
	// AdversaryMinN is the paper's n >= 24(k+2)² recommendation.
	AdversaryMinN = adversary.MinN
)

var _ = routers.DimOrderFIFO{} // keep the import graph explicit
