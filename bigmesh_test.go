package meshroute_test

import (
	"context"
	"os"
	"runtime"
	"testing"

	"meshroute/internal/scenario"
)

// TestBigMeshTorusPermutation is the million-node acceptance run: a full
// transpose permutation on a 1024×1024 torus (1,048,576 packets) routed to
// completion, with the live heap pinned under the budget documented in
// docs/SCALING.md (~300 B/node steady state, asserted here with headroom
// at 512 MiB). The run takes a few minutes, so it is opt-in:
//
//	MESHROUTE_BIGMESH=1 go test . -run BigMeshTorus -timeout 30m
func TestBigMeshTorusPermutation(t *testing.T) {
	if os.Getenv("MESHROUTE_BIGMESH") == "" {
		t.Skip("set MESHROUTE_BIGMESH=1 to run the 1024×1024 torus permutation")
	}
	spec := &scenario.Spec{
		Name:     "bigmesh-zigzag-torus-n1024-k4",
		Topology: scenario.TopoTorus,
		N:        1024,
		K:        4,
		Router:   "zigzag",
		Workload: scenario.Workload{Kind: scenario.KindTranspose},
		MaxSteps: 100000,
	}
	run, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	var r scenario.Runner
	res, err := r.RunBuilt(context.Background(), run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("run aborted: %v", res.Err)
	}
	if got, want := res.Net.DeliveredCount(), 1024*1024; got != want {
		t.Fatalf("delivered %d/%d", got, want)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	const budget = 512 << 20 // docs/SCALING.md budget with headroom
	if ms.HeapAlloc > budget {
		t.Fatalf("live heap %d MiB exceeds the %d MiB documented budget (steps=%d)",
			ms.HeapAlloc>>20, budget>>20, res.Steps)
	}
	t.Logf("n=1024 torus transpose: %d steps, live heap %d MiB (%.0f B/node)",
		res.Steps, ms.HeapAlloc>>20, float64(ms.HeapAlloc)/(1024*1024))
}
