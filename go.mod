module meshroute

go 1.22
