package meshroute_test

import (
	"context"
	"testing"

	"meshroute"
	"meshroute/internal/scenario"
)

// TestGoldenScenariosCDInvariant runs every committed golden scenario
// with the analysis knob forced on and checks the congestion+dilation
// bounds of docs/ANALYSIS.md against the achieved makespan:
//
//   - D ≤ makespan always: a delivered packet needs at least its
//     src→dst distance in steps, and every golden scenario delivers the
//     packet realizing D.
//   - C ≤ makespan for minimal routers on static workloads: every packet
//     follows some minimal path, and a directed edge carries at most one
//     packet per step, so the maximum edge load of the realized system —
//     which the analyzer's greedy C lower-bounds within the minimal
//     family it searches — needs that many distinct steps. Non-minimal
//     routers (hot-potato, stray-dimorder) and fault-rerouted runs can
//     spread load off the minimal family, and online runs accrue C over
//     a horizon longer than any single packet's residence, so only D is
//     checked there.
//
// The analyzer rides along without perturbing routing (the digest suite
// separately pins that analysis-off runs are bit-identical), so this is
// the max(D, C) ≤ makespan invariant of the golden corpus.
func TestGoldenScenariosCDInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every golden scenario")
	}
	for _, spec := range loadScenarios(t) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			s := *spec
			s.Analysis = true
			run, err := s.Build()
			if err != nil {
				t.Fatal(err)
			}
			var r scenario.Runner
			res, err := r.RunBuilt(context.Background(), run)
			if err != nil {
				t.Fatal(err)
			}
			if res.Err != nil {
				t.Fatalf("run aborted: %v", res.Err)
			}
			st := res.Stats
			if !st.Analyzed {
				t.Fatal("analysis knob on but stats not analyzed")
			}
			if st.Congestion <= 0 || st.Dilation <= 0 {
				t.Fatalf("degenerate analysis C=%d D=%d", st.Congestion, st.Dilation)
			}
			if st.Dilation > st.Makespan {
				t.Fatalf("dilation %d > makespan %d", st.Dilation, st.Makespan)
			}
			rspec, rerr := meshroute.LookupRouter(s.Router)
			if rerr == nil && rspec.Minimal && !s.Workload.Dynamic() && s.Faults == nil {
				if st.Congestion > st.Makespan {
					t.Fatalf("congestion %d > makespan %d on a minimal static run", st.Congestion, st.Makespan)
				}
			}
			if st.CDRatio <= 0 {
				t.Fatalf("cd_ratio %v not positive", st.CDRatio)
			}
		})
	}
}

// scheduledGoldenCDBound pins the constant c of the offline baseline's
// makespan ≤ c·(C+D) contract over the golden corpus (same constant as
// the router's own unit tests).
const scheduledGoldenCDBound = 3

// TestScheduledBoundOnGoldenScenarios replays every static, fault-free
// golden scenario's workload under the "scheduled" offline baseline and
// asserts its O(C+D) contract: completion with makespan within
// scheduledGoldenCDBound·(C+D) of the analyzed workload. Dynamic
// scenarios are skipped (the router is offline and the scenario layer
// rejects them); k=1 scenarios run at k=2, the router's minimum for
// row-phase admission under its reserved-slot rule.
func TestScheduledBoundOnGoldenScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every golden scenario")
	}
	for _, spec := range loadScenarios(t) {
		spec := spec
		if spec.Workload.Dynamic() || spec.Faults != nil {
			continue
		}
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			s := *spec
			s.Router = meshroute.RouterScheduled
			s.Analysis = true
			s.FaultAware = false
			s.Queues = scenario.QueuesCentral
			if s.K < 2 {
				s.K = 2
			}
			run, err := s.Build()
			if err != nil {
				t.Fatal(err)
			}
			var r scenario.Runner
			res, err := r.RunBuilt(context.Background(), run)
			if err != nil {
				t.Fatal(err)
			}
			if res.Err != nil {
				t.Fatalf("run aborted: %v", res.Err)
			}
			st := res.Stats
			if !st.Done {
				t.Fatalf("scheduled incomplete: %d/%d delivered in %d steps", st.Delivered, st.Total, st.Steps)
			}
			cd := st.Congestion + st.Dilation
			if st.Makespan > scheduledGoldenCDBound*cd {
				t.Fatalf("makespan %d > %d·(C+D)=%d (C=%d D=%d)",
					st.Makespan, scheduledGoldenCDBound, scheduledGoldenCDBound*cd, st.Congestion, st.Dilation)
			}
		})
	}
}
