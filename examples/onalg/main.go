// onalg: route hard permutations with the Section 6 O(n)-time,
// O(1)-queue minimal adaptive algorithm (Theorem 34) and check the paper's
// bounds: at most 972n steps (564n with the improved constant) and at most
// 834 packets in any node — on every permutation, including the
// adversarial one that cripples destination-exchangeable routers.
//
//	go run ./examples/onalg
package main

import (
	"fmt"
	"log"

	"meshroute"
)

func main() {
	const n = 81 // a power of 3, as the algorithm's tilings require

	topo := meshroute.NewMesh(n)
	workloads := map[string]*meshroute.Permutation{
		"random":    meshroute.RandomPermutation(topo, 7),
		"transpose": meshroute.Transpose(topo),
		"reversal":  meshroute.Reversal(topo),
	}

	fmt.Printf("Section 6 algorithm on the %d×%d mesh (bounds: 972n = %d steps, queue ≤ 834):\n\n", n, n, 972*n)
	for name, perm := range workloads {
		res, err := meshroute.RouteCLT(n, perm, meshroute.CLTOptions{Verify: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s schedule %6d steps (%5.1f·n)   work %5d   peak queue %3d\n",
			name, res.TimeFormula, float64(res.TimeFormula)/float64(n), res.TimeMeasured, res.MaxQueue)
	}

	// The improved constant (q = 102 for refined tiles) gives 564n.
	res, err := meshroute.RouteCLT(n, meshroute.RandomPermutation(topo, 7), meshroute.CLTOptions{ImprovedQ: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith ImprovedQ: schedule %d steps (%.1f·n; bound 564n = %d)\n",
		res.TimeFormula, float64(res.TimeFormula)/float64(n), 564*n)

	fmt.Println("\nEvery move is minimal (the router panics otherwise), yet the time is O(n)")
	fmt.Println("with O(1) queues — possible only because the algorithm reads full distances,")
	fmt.Println("the escape hatch Theorem 14 cannot close.")
}
