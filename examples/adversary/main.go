// Adversary: build the Theorem 14 permutation against a destination-
// exchangeable minimal adaptive router and watch it hurt.
//
// The adversary runs the router, swapping destination addresses of packets
// whose profitable-outlink views are identical (rules EX1–EX4), then
// replays the resulting permutation from scratch with no swaps: the router,
// unable to distinguish the two runs (Lemma 10), repeats the exact same
// configuration history and needs Ω(n²/k²) steps.
//
//	go run ./examples/adversary
package main

import (
	"fmt"
	"log"

	"meshroute"
)

func main() {
	const n, k = 216, 1 // n >= 24(k+2)² = 216, the Theorem 14 regime

	fmt.Printf("Building the constructed permutation against %q on the %d×%d mesh (k=%d)...\n",
		meshroute.RouterDimOrder, n, n, k)

	perm, bound, makespan, done, err := meshroute.HardPermutation(n, k, meshroute.RouterDimOrder, 30*boundEstimate(n, k))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  constructed permutation : %d packets (all in the southwest corner)\n", len(perm))
	fmt.Printf("  Theorem 13 lower bound  : %d steps\n", bound)
	if done {
		fmt.Printf("  measured delivery time  : %d steps (%.1f× the bound)\n", makespan, float64(makespan)/float64(bound))
	} else {
		fmt.Printf("  measured delivery time  : still undelivered after %d steps\n", 30*boundEstimate(n, k))
	}

	// The same router on a random permutation, for contrast.
	topo := meshroute.NewMesh(n)
	st, err := meshroute.Route(meshroute.RouterDimOrder, topo, 2, meshroute.RandomPermutation(topo, 1), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nThe same router routes a random permutation (k=2) in %d steps (%.2f×n).\n",
		st.Makespan, float64(st.Makespan)/float64(n))
	fmt.Println("Worst case and average case are different worlds — that is the paper's point.")
}

// boundEstimate mirrors the construction's ⌊l⌋·d·n order of magnitude for
// picking a step cap.
func boundEstimate(n, k int) int {
	cn := n / (2 * (k + 2))
	dn := 2 * n / 5
	p := (k+1)*(cn+cn*cn/n) + dn
	l := cn * cn / (2 * p)
	if l < 1 {
		l = 1
	}
	return l * dn
}
