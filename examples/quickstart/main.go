// Quickstart: build a mesh, generate a permutation, route it with the
// Theorem 15 bounded-queue dimension-order router, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"meshroute"
)

func main() {
	const n, k = 32, 2

	topo := meshroute.NewMesh(n)
	perm := meshroute.RandomPermutation(topo, 2024)

	stats, err := meshroute.Route(meshroute.RouterThm15, topo, k, perm, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Routed a random permutation on the %d×%d mesh with queue size k=%d.\n", n, n, k)
	fmt.Printf("  delivered : %d/%d packets\n", stats.Delivered, stats.Total)
	fmt.Printf("  makespan  : %d steps (%.2f×n — random traffic routes in about 2n)\n",
		stats.Makespan, float64(stats.Makespan)/float64(n))
	fmt.Printf("  max queue : %d (never exceeds k=%d — Theorem 15's guarantee)\n", stats.MaxQueue, k)
	fmt.Printf("  avg delay : %.1f steps\n", stats.AvgDelay)

	// The same permutation on the worst-case-prone central-queue
	// dimension-order router, for comparison.
	stats2, err := meshroute.Route(meshroute.RouterDimOrder, topo, 4, perm, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFor comparison, dimension-order with a central queue (k=4):\n")
	fmt.Printf("  makespan  : %d steps, max queue %d\n", stats2.Makespan, stats2.MaxQueue)
	fmt.Println("\nAverage-case traffic is easy; the interesting story is the worst case —")
	fmt.Println("see examples/adversary for the Theorem 14 construction.")
}
