// visualize: watch where a hard permutation hurts. Routes the reversal
// permutation (everything crosses the center) and a corner flood (the
// shape of the Theorem 14 construction) with the Theorem 15 router, and
// renders occupancy and link-traffic heatmaps plus the delivery curve.
//
//	go run ./examples/visualize
package main

import (
	"bytes"
	"fmt"
	"log"

	"meshroute"
	"meshroute/internal/dex"
	"meshroute/internal/routers"
	"meshroute/internal/sim"
	"meshroute/internal/trace"
	"meshroute/internal/viz"
)

func main() {
	const n, k = 24, 1
	topo := meshroute.NewMesh(n)

	run("reversal (all traffic crosses the center)", topo, k, meshroute.Reversal(topo))

	// Corner flood: the 6×6 southwest corner sends to the far side —
	// the congestion pattern the Theorem 14 construction weaponizes.
	corner := &meshroute.Permutation{}
	idx := 0
	for y := 0; y < 6; y++ {
		for x := 0; x < 6; x++ {
			corner.Pairs = append(corner.Pairs, meshroute.Pair{
				Src: topo.ID(meshroute.XY(x, y)),
				Dst: topo.ID(meshroute.XY(n-1-idx%6, n-1-idx/6)),
			})
			idx++
		}
	}
	run("corner flood (the Theorem 14 shape)", topo, k, corner)
}

func run(title string, topo meshroute.Topology, k int, perm *meshroute.Permutation) {
	n := topo.Width()
	net := sim.MustNew(routers.Thm15Config(topo, k))
	if err := perm.Place(net); err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	rec.Attach(net)
	alg := dex.NewAdapter(routers.Thm15{})

	fmt.Printf("=== %s ===\n", title)
	for !net.Done() {
		if err := net.StepOnce(alg); err != nil {
			log.Fatal(err)
		}
		if net.Step() == n/2 {
			fmt.Printf("\noccupancy after %d steps:\n%s", net.Step(), viz.Occupancy(net))
		}
	}
	if err := rec.Close(); err != nil {
		log.Fatal(err)
	}
	steps, err := trace.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}
	a := trace.Analyze(steps)
	fmt.Printf("\n%s", viz.LinkTraffic(topo, a))
	fmt.Printf("\ndeliveries over time:\n%s", viz.DeliveryCurve(a, 6))
	link, hot := a.HottestLink()
	fmt.Printf("hottest link: %v heading %v carried %d packets; makespan %d steps\n\n",
		topo.CoordOf(link.From), link.Dir, hot, a.Steps)
}
