// hhrouting: the h-h extension of Section 5 — every node sends and
// receives up to h packets. The constructed instances force
// Ω(h³n²/(k+h)²) steps on destination-exchangeable routers, and the
// Theorem 15 router still digests random h-h traffic gracefully.
//
//	go run ./examples/hhrouting
package main

import (
	"fmt"
	"log"

	"meshroute"
)

func main() {
	const n, k = 90, 1

	fmt.Printf("h-h lower-bound constructions on the %d×%d mesh (k=%d):\n\n", n, n, k)
	fmt.Println("  h   bound ⌊l⌋dn   packets   undelivered@bound")
	spec, err := meshroute.LookupRouter(meshroute.RouterDimOrder)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range []int{1, 2, 4} {
		c, err := meshroute.NewHHAdversary(n, k, h)
		if err != nil {
			fmt.Printf("  %d   (%v)\n", h, err)
			continue
		}
		res, err := c.Run(spec.New())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d   %11d   %7d   %17d\n", h, res.Steps, len(res.Permutation), res.UndeliveredHard)
	}
	fmt.Println("\nThe bound grows like h³n²/(k+h)² — superlinearly in the load h.")

	// Random h-h traffic on the Theorem 15 router, injected dynamically
	// (packets beyond the queue capacity wait at their sources).
	topo := meshroute.NewMesh(48)
	hh := meshroute.RandomHH(topo, 3, 11)
	perm := &meshroute.Permutation{Pairs: hh.Pairs}
	st, err := meshroute.Route(meshroute.RouterThm15, topo, 2, perm, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRandom 3-3 traffic on a 48×48 mesh via %q: %d packets in %d steps (%.2f·n), queues ≤ %d.\n",
		meshroute.RouterThm15, st.Total, st.Makespan, float64(st.Makespan)/48, st.MaxQueue)
}
