package meshroute_test

import (
	"fmt"

	"meshroute"
)

// Route a structured permutation with the Theorem 15 bounded-queue router.
func ExampleRoute() {
	topo := meshroute.NewMesh(16)
	perm := meshroute.Transpose(topo)
	stats, err := meshroute.Route(meshroute.RouterThm15, topo, 1, perm, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("done=%v delivered=%d maxQueue=%d\n", stats.Done, stats.Delivered, stats.MaxQueue)
	// Output:
	// done=true delivered=256 maxQueue=1
}

// Build the Theorem 14 adversarial permutation against the dimension-order
// router and report the forced lower bound.
func ExampleHardPermutation() {
	perm, bound, _, _, err := meshroute.HardPermutation(120, 1, meshroute.RouterDimOrder, 2000)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("packets=%d bound=%d\n", len(perm), bound)
	// Output:
	// packets=376 bound=96
}

// Route with the Section 6 O(n)-time, O(1)-queue minimal adaptive
// algorithm and check Theorem 34's bounds.
func ExampleRouteCLT() {
	n := 27
	perm := meshroute.Reversal(meshroute.NewMesh(n))
	res, err := meshroute.RouteCLT(n, perm, meshroute.CLTOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("within972n=%v queueWithin834=%v\n", res.TimeFormula <= 972*n, res.MaxQueue <= 834)
	// Output:
	// within972n=true queueWithin834=true
}

// List the built-in routers.
func ExampleRouterNames() {
	for _, name := range meshroute.RouterNames() {
		spec, _ := meshroute.LookupRouter(name)
		fmt.Printf("%s minimal=%v dex=%v\n", name, spec.Minimal, spec.DestinationExchangeable)
	}
	// Output:
	// dimorder minimal=true dex=true
	// farthest-first minimal=true dex=false
	// hot-potato minimal=false dex=true
	// rand-zigzag minimal=true dex=false
	// scheduled minimal=true dex=false
	// stray-dimorder minimal=false dex=true
	// thm15 minimal=true dex=true
	// zigzag minimal=true dex=true
}
