package meshroute_test

// One benchmark per experiment of the reproduction (see DESIGN.md's
// per-experiment index and EXPERIMENTS.md for recorded results). Each
// benchmark runs a representative instance of its experiment and reports
// the headline quantity (the lower bound, the makespan, the schedule
// length, the peak queue) as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the shape of every result in the paper.

import (
	"testing"

	"meshroute"

	"meshroute/internal/adversary"
	"meshroute/internal/clt"
	"meshroute/internal/experiments"
	"meshroute/internal/grid"
	"meshroute/internal/obs"
	"meshroute/internal/routers"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

// BenchmarkE1LowerBoundMinimalAdaptive builds and replays the Theorem 14
// construction against the dimension-order router (Ω(n²/k²)).
func BenchmarkE1LowerBoundMinimalAdaptive(b *testing.B) {
	spec, _ := meshroute.LookupRouter(meshroute.RouterDimOrder)
	var bound, undeliv int
	for i := 0; i < b.N; i++ {
		c, err := adversary.NewConstruction(120, 1)
		if err != nil {
			b.Fatal(err)
		}
		res, err := c.Run(spec.New())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Replay(res, spec.New()); err != nil {
			b.Fatal(err)
		}
		bound, undeliv = res.Steps, res.UndeliveredHard
	}
	b.ReportMetric(float64(bound), "bound-steps")
	b.ReportMetric(float64(undeliv), "undelivered")
}

// BenchmarkE2LowerBoundDimOrder builds the Section 5 dimension-order
// construction against the Theorem 15 router and runs it to completion
// (lower bound Ω(n²/k), completion Θ(n²/k)).
func BenchmarkE2LowerBoundDimOrder(b *testing.B) {
	spec, _ := meshroute.LookupRouter(meshroute.RouterThm15)
	var bound, mk int
	for i := 0; i < b.N; i++ {
		c, err := adversary.NewDOConstruction(90, 4*1+1)
		if err != nil {
			b.Fatal(err)
		}
		c.Queues = sim.PerInlinkQueues
		c.NetK = 1
		res, err := c.Run(spec.New())
		if err != nil {
			b.Fatal(err)
		}
		net, err := c.Replay(res, spec.New())
		if err != nil {
			b.Fatal(err)
		}
		m, done, err := adversary.RunToCompletion(net, spec.New(), 100*90*90)
		if err != nil || !done {
			b.Fatalf("completion failed: %v", err)
		}
		bound, mk = res.Steps, m
	}
	b.ReportMetric(float64(bound), "bound-steps")
	b.ReportMetric(float64(mk), "completion-steps")
}

// BenchmarkE3LowerBoundFarthestFirst runs the farthest-first construction
// (Ω(n²/k) even though the router is not destination-exchangeable).
func BenchmarkE3LowerBoundFarthestFirst(b *testing.B) {
	var bound, undeliv int
	for i := 0; i < b.N; i++ {
		c, err := adversary.NewFFConstruction(128, 2)
		if err != nil {
			b.Fatal(err)
		}
		res, err := c.Run(routers.DimOrderFF{})
		if err != nil {
			b.Fatal(err)
		}
		bound, undeliv = res.Steps, res.UndeliveredHard
	}
	b.ReportMetric(float64(bound), "bound-steps")
	b.ReportMetric(float64(undeliv), "undelivered")
}

// BenchmarkE4Theorem15Upper routes the reversal permutation with the
// Theorem 15 router (O(n²/k + n) worst case).
func BenchmarkE4Theorem15Upper(b *testing.B) {
	const n, k = 64, 1
	topo := grid.NewSquareMesh(n)
	var mk, maxq int
	for i := 0; i < b.N; i++ {
		net := sim.MustNew(routers.Thm15Config(topo, k))
		if err := workload.Reversal(topo).Place(net); err != nil {
			b.Fatal(err)
		}
		spec, _ := meshroute.LookupRouter(meshroute.RouterThm15)
		if _, err := net.RunPartial(spec.New(), 500*n*n); err != nil || !net.Done() {
			b.Fatalf("incomplete: %v", err)
		}
		mk, maxq = net.Metrics.Makespan, net.Metrics.MaxQueueLen
	}
	b.ReportMetric(float64(mk), "makespan-steps")
	b.ReportMetric(float64(mk)/(float64(n*n)/float64(k)+float64(n)), "makespan/(n²/k+n)")
	b.ReportMetric(float64(maxq), "max-queue")
}

// BenchmarkE5CLTAlgorithm routes a random permutation with the Section 6
// algorithm (Theorem 34: <= 972n steps, <= 834 queue).
func BenchmarkE5CLTAlgorithm(b *testing.B) {
	const n = 81
	var res *clt.Result
	for i := 0; i < b.N; i++ {
		r, err := clt.New(clt.Config{N: n})
		if err != nil {
			b.Fatal(err)
		}
		res, err = r.Route(workload.Random(grid.NewSquareMesh(n), 7))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.TimeFormula)/float64(n), "schedule/n")
	b.ReportMetric(float64(res.MaxQueue), "max-queue")
}

// BenchmarkE6LowerBoundHH runs the h-h construction (Ω(h³n²/(k+h)²)).
func BenchmarkE6LowerBoundHH(b *testing.B) {
	spec, _ := meshroute.LookupRouter(meshroute.RouterDimOrder)
	var bound int
	for i := 0; i < b.N; i++ {
		c, err := adversary.NewHHConstruction(90, 1, 2)
		if err != nil {
			b.Fatal(err)
		}
		res, err := c.Run(spec.New())
		if err != nil {
			b.Fatal(err)
		}
		bound = res.Steps
	}
	b.ReportMetric(float64(bound), "bound-steps")
}

// BenchmarkE7Torus embeds the Theorem 14 construction in a torus.
func BenchmarkE7Torus(b *testing.B) {
	spec, _ := meshroute.LookupRouter(meshroute.RouterDimOrder)
	var bound int
	for i := 0; i < b.N; i++ {
		par, err := adversary.NewParams(60, 1)
		if err != nil {
			b.Fatal(err)
		}
		c := &adversary.Construction{Par: par, Topo: grid.NewSquareTorus(120), H: 1}
		res, err := c.Run(spec.New())
		if err != nil {
			b.Fatal(err)
		}
		bound = res.Steps
	}
	b.ReportMetric(float64(bound), "bound-steps")
}

// BenchmarkE8AverageCase routes random traffic with the Theorem 15 router
// (the ≈2n average-case framing of Section 1.1).
func BenchmarkE8AverageCase(b *testing.B) {
	const n = 64
	topo := grid.NewSquareMesh(n)
	spec, _ := meshroute.LookupRouter(meshroute.RouterThm15)
	var mk int
	for i := 0; i < b.N; i++ {
		net := sim.MustNew(routers.Thm15Config(topo, 2))
		if err := workload.Random(topo, int64(i)).Place(net); err != nil {
			b.Fatal(err)
		}
		if _, err := net.RunPartial(spec.New(), 100*n); err != nil || !net.Done() {
			b.Fatalf("incomplete: %v", err)
		}
		mk = net.Metrics.Makespan
	}
	b.ReportMetric(float64(mk)/float64(n), "makespan/n")
}

// BenchmarkE9EscapeHatches routes the E1-constructed permutation with the
// Section 6 algorithm — full destination knowledge evades the Ω(n²/k²)
// bound with an O(n) schedule.
func BenchmarkE9EscapeHatches(b *testing.B) {
	const n, k = 243, 2
	spec, _ := meshroute.LookupRouter(meshroute.RouterDimOrder)
	c, err := adversary.NewConstruction(n, k)
	if err != nil {
		b.Fatal(err)
	}
	res, err := c.Run(spec.New())
	if err != nil {
		b.Fatal(err)
	}
	perm := &workload.Permutation{Pairs: res.Permutation}
	b.ResetTimer()
	var cres *clt.Result
	for i := 0; i < b.N; i++ {
		r, err := clt.New(clt.Config{N: n})
		if err != nil {
			b.Fatal(err)
		}
		cres, err = r.Route(perm)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Steps), "dex-bound-steps")
	b.ReportMetric(float64(cres.TimeFormula), "clt-schedule-steps")
}

// BenchmarkE10NonminimalDelta runs the Section 5 nonminimal-extension
// construction against the δ-stray router (Ω(n²/((δ+1)³k²))).
func BenchmarkE10NonminimalDelta(b *testing.B) {
	var bound int
	for i := 0; i < b.N; i++ {
		c, err := adversary.NewDeltaConstruction(480, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		alg := func() sim.Algorithm { return meshroute.NewDexAdapter(routers.StrayDimOrder{Delta: 1}) }
		res, err := c.Run(alg())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Replay(res, alg()); err != nil {
			b.Fatal(err)
		}
		bound = res.Steps
	}
	b.ReportMetric(float64(bound), "bound-steps")
}

// BenchmarkE11CrossHardness routes the dimorder-constructed permutation
// with the zigzag router (the quantifier-order experiment).
func BenchmarkE11CrossHardness(b *testing.B) {
	specD, _ := meshroute.LookupRouter(meshroute.RouterDimOrder)
	specZ, _ := meshroute.LookupRouter(meshroute.RouterZigZag)
	c, err := adversary.NewConstruction(120, 2)
	if err != nil {
		b.Fatal(err)
	}
	res, err := c.Run(specD.New())
	if err != nil {
		b.Fatal(err)
	}
	perm := &workload.Permutation{Pairs: res.Permutation}
	b.ResetTimer()
	var mk int
	for i := 0; i < b.N; i++ {
		net := sim.MustNew(specZ.Config(grid.NewSquareMesh(120), 2))
		if err := perm.Place(net); err != nil {
			b.Fatal(err)
		}
		if _, err := net.RunPartial(specZ.New(), 40*res.Steps); err != nil {
			b.Fatal(err)
		}
		mk = net.Metrics.Makespan
	}
	b.ReportMetric(float64(res.Steps), "bound-steps")
	b.ReportMetric(float64(mk), "zigzag-completion")
}

// BenchmarkA1ExchangeAblation compares the construction with and without
// its exchange rules.
func BenchmarkA1ExchangeAblation(b *testing.B) {
	spec, _ := meshroute.LookupRouter(meshroute.RouterDimOrder)
	var with, without int
	for i := 0; i < b.N; i++ {
		c, err := adversary.NewConstruction(120, 2)
		if err != nil {
			b.Fatal(err)
		}
		res, err := c.Run(spec.New())
		if err != nil {
			b.Fatal(err)
		}
		c2, _ := adversary.NewConstruction(120, 2)
		res2, err := c2.RunWithoutExchanges(spec.New())
		if err != nil {
			b.Fatal(err)
		}
		with, without = res.UndeliveredHard, res2.UndeliveredHard
	}
	b.ReportMetric(float64(with), "undelivered-with-exchanges")
	b.ReportMetric(float64(without), "undelivered-without")
}

// BenchmarkA2CLTQueueConstant compares q = 408 with the improved q = 102.
func BenchmarkA2CLTQueueConstant(b *testing.B) {
	const n = 81
	perm := workload.Random(grid.NewSquareMesh(n), 5)
	var base, improved int
	for i := 0; i < b.N; i++ {
		r1, _ := clt.New(clt.Config{N: n})
		res1, err := r1.Route(perm)
		if err != nil {
			b.Fatal(err)
		}
		r2, _ := clt.New(clt.Config{N: n, ImprovedQ: true})
		res2, err := r2.Route(perm)
		if err != nil {
			b.Fatal(err)
		}
		base, improved = res1.TimeFormula, res2.TimeFormula
	}
	b.ReportMetric(float64(base)/float64(n), "schedule/n-q408")
	b.ReportMetric(float64(improved)/float64(n), "schedule/n-q102")
}

// BenchmarkE12DynamicLoad runs the Bernoulli-injection experiment at 60%
// of the bisection knee (the flat-latency regime).
func BenchmarkE12DynamicLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E12(experiments.Options{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13RandomizedHatch routes the zigzag-constructed permutation
// with the randomized router (escape hatch 3).
func BenchmarkE13RandomizedHatch(b *testing.B) {
	specZ, _ := meshroute.LookupRouter(meshroute.RouterZigZag)
	c, err := adversary.NewConstruction(120, 1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := c.Run(specZ.New())
	if err != nil {
		b.Fatal(err)
	}
	perm := &workload.Permutation{Pairs: res.Permutation}
	b.ResetTimer()
	var mk int
	for i := 0; i < b.N; i++ {
		net := sim.MustNew(sim.Config{
			Topo: grid.NewSquareMesh(120), K: 4, Queues: sim.CentralQueue,
			RequireMinimal: true, CheckInvariants: true,
		})
		if err := perm.Place(net); err != nil {
			b.Fatal(err)
		}
		if _, err := net.RunPartial(routers.RandZigZag{Seed: uint64(i)}, 40*res.Steps); err != nil {
			b.Fatal(err)
		}
		mk = net.Metrics.Makespan
	}
	b.ReportMetric(float64(res.Steps), "bound-steps")
	b.ReportMetric(float64(mk), "randomized-completion")
}

// BenchmarkE14OpenProblem runs the open-problem probe (Section 7): the
// zigzag router on its own adversarially constructed permutation, forced
// to completion.
func BenchmarkE14OpenProblem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E14(experiments.Options{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineStep measures raw simulator throughput: one synchronous
// step of a fully loaded 64×64 mesh.
func BenchmarkEngineStep(b *testing.B) {
	const n = 64
	topo := grid.NewSquareMesh(n)
	spec, _ := meshroute.LookupRouter(meshroute.RouterThm15)
	net := sim.MustNew(routers.Thm15Config(topo, 2))
	if err := workload.Reversal(topo).Place(net); err != nil {
		b.Fatal(err)
	}
	alg := spec.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if net.Done() {
			b.StopTimer()
			net = sim.MustNew(routers.Thm15Config(topo, 2))
			if err := workload.Reversal(topo).Place(net); err != nil {
				b.Fatal(err)
			}
			alg = spec.New()
			b.StartTimer()
		}
		if err := net.StepOnce(alg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineStepMetricsSink is BenchmarkEngineStep with an
// obs.Memory sink attached, so the cost of live per-step sampling can be
// compared against the uninstrumented loop (internal/sim's bench has the
// matching nil-sink variant).
func BenchmarkEngineStepMetricsSink(b *testing.B) {
	const n = 64
	topo := grid.NewSquareMesh(n)
	spec, _ := meshroute.LookupRouter(meshroute.RouterThm15)
	sink := &obs.Memory{}
	net := sim.MustNew(routers.Thm15Config(topo, 2))
	net.SetMetricsSink(sink)
	if err := workload.Reversal(topo).Place(net); err != nil {
		b.Fatal(err)
	}
	alg := spec.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if net.Done() {
			b.StopTimer()
			net = sim.MustNew(routers.Thm15Config(topo, 2))
			net.SetMetricsSink(sink)
			sink.Steps = sink.Steps[:0]
			if err := workload.Reversal(topo).Place(net); err != nil {
				b.Fatal(err)
			}
			alg = spec.New()
			b.StartTimer()
		}
		if err := net.StepOnce(alg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentHarness smoke-runs a full quick experiment (E5) via
// the shared harness used by cmd/experiments.
func BenchmarkExperimentHarness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E5(experiments.Options{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}
