package meshroute_test

import (
	"fmt"
	"testing"

	"meshroute"
	"meshroute/internal/grid"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

// TestReplayEquivalentToDirectPlacement is the Source-refactor equivalence
// property: running a static workload through the streaming path
// (Permutation.Place, now a step-0 Replay source behind the per-step
// admission phase) must reproduce the pre-refactor direct-placement run
// bit for bit — identical per-packet digests and identical run statistics.
// The direct net.Place loop below is the raw legacy entry point, unchanged
// by the refactor, so it is the ground truth.
func TestReplayEquivalentToDirectPlacement(t *testing.T) {
	cases := []struct {
		router string
		n, k   int
		seed   int64
	}{
		{"dimorder", 8, 2, 1},
		{"dimorder", 12, 4, 7},
		{"zigzag", 12, 3, 2},
		{"farthest-first", 8, 2, 3},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s-n%d-k%d-seed%d", tc.router, tc.n, tc.k, tc.seed), func(t *testing.T) {
			rspec, err := meshroute.LookupRouter(tc.router)
			if err != nil {
				t.Fatal(err)
			}
			topo := grid.NewSquareMesh(tc.n)
			perm := workload.Random(topo, tc.seed)
			budget := 200 * (tc.n*tc.n/tc.k + 2*tc.n)

			direct := sim.MustNew(rspec.Config(topo, tc.k))
			for _, pr := range perm.Pairs {
				if err := direct.Place(direct.NewPacket(pr.Src, pr.Dst)); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := direct.RunPartial(rspec.New(), budget); err != nil {
				t.Fatal(err)
			}

			replayed := sim.MustNew(rspec.Config(topo, tc.k))
			if err := perm.Place(replayed); err != nil {
				t.Fatal(err)
			}
			if replayed.OpenWorkload() {
				t.Fatal("a step-0 replay must not register as an open workload")
			}
			if _, err := replayed.RunPartial(rspec.New(), budget); err != nil {
				t.Fatal(err)
			}

			if dd, rd := digestNet(direct), digestNet(replayed); dd != rd {
				t.Errorf("digest drift: direct %s, replayed %s", dd, rd)
			}
			if a, b := direct.Metrics.Makespan, replayed.Metrics.Makespan; a != b {
				t.Errorf("makespan drift: direct %d, replayed %d", a, b)
			}
			if a, b := direct.Metrics.MaxQueueLen, replayed.Metrics.MaxQueueLen; a != b {
				t.Errorf("max queue drift: direct %d, replayed %d", a, b)
			}
			if a, b := direct.AvgDelay(), replayed.AvgDelay(); a != b {
				t.Errorf("avg delay drift: direct %v, replayed %v", a, b)
			}
			if a, b := direct.DeliveredCount(), replayed.DeliveredCount(); a != b {
				t.Errorf("delivered drift: direct %d, replayed %d", a, b)
			}
		})
	}
}

// TestReplayAtEquivalentToQueueInjection pins the lazy-materialization half
// of the refactor: a step-1 Replay source must reproduce the legacy
// QueueInjection path (packets pre-created before the run, drained from the
// same backlog) exactly, including h-h instances whose load exceeds the
// queue capacity and therefore exercises multi-step backlog draining.
func TestReplayAtEquivalentToQueueInjection(t *testing.T) {
	rspec, err := meshroute.LookupRouter("dimorder")
	if err != nil {
		t.Fatal(err)
	}
	const n, k = 8, 2
	topo := grid.NewSquareMesh(n)
	hh := workload.RandomHH(topo, 4, 9) // h=4 > k=2: forces backlog waits
	budget := 200 * (n*n/k + 2*n)

	legacy := sim.MustNew(rspec.Config(topo, k))
	for _, pr := range hh.Pairs {
		legacy.QueueInjection(legacy.NewPacket(pr.Src, pr.Dst), 1)
	}
	if _, err := legacy.RunPartial(rspec.New(), budget); err != nil {
		t.Fatal(err)
	}

	streamed := sim.MustNew(rspec.Config(topo, k))
	if err := streamed.AttachSource(hh.Source(), sim.AdmitRetry); err != nil {
		t.Fatal(err)
	}
	if _, err := streamed.RunPartial(rspec.New(), budget); err != nil {
		t.Fatal(err)
	}

	if ld, sd := digestNet(legacy), digestNet(streamed); ld != sd {
		t.Errorf("digest drift: legacy %s, streamed %s", ld, sd)
	}
	if a, b := legacy.Metrics.Makespan, streamed.Metrics.Makespan; a != b {
		t.Errorf("makespan drift: legacy %d, streamed %d", a, b)
	}
	if a, b := legacy.DeliveredCount(), streamed.DeliveredCount(); a != b {
		t.Errorf("delivered drift: legacy %d, streamed %d", a, b)
	}
}
