package meshroute

import (
	"fmt"
	"sort"

	"meshroute/internal/dex"
	"meshroute/internal/routers"
	"meshroute/internal/sim"
)

// Router names accepted by Route, HardPermutation and LookupRouter.
const (
	// RouterDimOrder is dimension-order routing with FIFO outqueue and
	// round-robin inqueue over a central queue — the paper's canonical
	// destination-exchangeable example (Section 2). Use k >= 2.
	RouterDimOrder = "dimorder"
	// RouterZigZag is the minimal adaptive alternation router of
	// Section 2: move in one profitable direction until blocked, then
	// the other. Destination-exchangeable. Use k >= 2.
	RouterZigZag = "zigzag"
	// RouterThm15 is the Theorem 15 bounded-queue dimension-order
	// router: four incoming queues of size k, straight priority,
	// O(n²/k + n) worst case. Works for every k >= 1.
	RouterThm15 = "thm15"
	// RouterFarthestFirst is dimension-order routing with the
	// farthest-first outqueue policy — not destination-exchangeable.
	RouterFarthestFirst = "farthest-first"
	// RouterHotPotato is the deflection baseline — nonminimal,
	// destination-exchangeable (ignores k; capacity is the node degree).
	RouterHotPotato = "hot-potato"
	// RouterRandZigZag is the randomized minimal adaptive router — the
	// Section 7 "incorporate randomness" escape hatch. Deterministic
	// given its seed (0 by default; set RouteOptions.Seed or a scenario
	// Spec's seed for other streams), but outside the Theorem 14 model.
	RouterRandZigZag = "rand-zigzag"
	// RouterScheduled is the offline path-scheduled O(C+D) baseline:
	// precomputes the internal/analysis minimal path system, delays each
	// packet by a seeded random amount in [0, C), then replays the
	// schedule deterministically. Offline — static workloads only.
	RouterScheduled = "scheduled"
	// RouterStray is the Section 5 "Nonminimal extensions" router:
	// dimension order that may overshoot its turning column by up to
	// δ = 1 columns when blocked (destination-exchangeable, bounded
	// stray). Use routers.StrayDimOrder directly for other δ.
	RouterStray = "stray-dimorder"
)

// RouterSpec describes one of the built-in routing algorithms.
type RouterSpec struct {
	// Name is the registry key.
	Name string
	// Summary is a one-line description.
	Summary string
	// DestinationExchangeable reports whether the router fits the
	// Section 2 restricted model (and therefore Theorem 14).
	DestinationExchangeable bool
	// Minimal reports whether the router uses only shortest paths.
	Minimal bool
	// Offline reports that the router must see the whole instance before
	// step 1 (it precomputes a global schedule), so it supports static
	// workloads only; the scenario layer rejects dynamic workloads for it.
	Offline bool
	// Queues is the queue model the router requires.
	Queues sim.QueueModel
	// New creates a fresh instance for one run.
	New func() sim.Algorithm
	// NewFaultAware creates the router's fault-aware variant (detours
	// around failed links), or is nil if the router has none.
	NewFaultAware func() sim.Algorithm
	// NewSeeded creates the router with an explicit randomness seed (and,
	// when faultAware is set, its fault-aware variant). It is nil for
	// deterministic routers, which have no seed to set; New is equivalent
	// to NewSeeded(0, false) where both exist.
	NewSeeded func(seed uint64, faultAware bool) sim.Algorithm
	// Config builds the network configuration for a topology and k.
	Config func(topo Topology, k int) sim.Config
}

var registry = map[string]RouterSpec{
	RouterDimOrder: {
		Name:                    RouterDimOrder,
		Summary:                 "dimension order, FIFO outqueue, round-robin inqueue, central queue",
		DestinationExchangeable: true,
		Minimal:                 true,
		Queues:                  sim.CentralQueue,
		New:                     func() sim.Algorithm { return dex.NewAdapter(routers.DimOrderFIFO{}) },
		Config: func(topo Topology, k int) sim.Config {
			return sim.Config{Topo: topo, K: k, Queues: sim.CentralQueue, RequireMinimal: true, CheckInvariants: true}
		},
	},
	RouterZigZag: {
		Name:                    RouterZigZag,
		Summary:                 "minimal adaptive alternation (Section 2 example), central queue",
		DestinationExchangeable: true,
		Minimal:                 true,
		Queues:                  sim.CentralQueue,
		New:                     func() sim.Algorithm { return dex.NewAdapter(routers.ZigZag{}) },
		NewFaultAware:           func() sim.Algorithm { return dex.NewAdapter(routers.ZigZag{FaultAware: true}) },
		Config: func(topo Topology, k int) sim.Config {
			return sim.Config{Topo: topo, K: k, Queues: sim.CentralQueue, RequireMinimal: true, CheckInvariants: true}
		},
	},
	RouterThm15: {
		Name:                    RouterThm15,
		Summary:                 "Theorem 15: four inlink queues of size k, straight priority, O(n²/k+n)",
		DestinationExchangeable: true,
		Minimal:                 true,
		Queues:                  sim.PerInlinkQueues,
		New:                     func() sim.Algorithm { return dex.NewAdapter(routers.Thm15{}) },
		Config:                  func(topo Topology, k int) sim.Config { return routers.Thm15Config(topo, k) },
	},
	RouterFarthestFirst: {
		Name:                    RouterFarthestFirst,
		Summary:                 "dimension order with farthest-first outqueue (not destination-exchangeable)",
		DestinationExchangeable: false,
		Minimal:                 true,
		Queues:                  sim.CentralQueue,
		New:                     func() sim.Algorithm { return routers.DimOrderFF{} },
		Config: func(topo Topology, k int) sim.Config {
			return sim.Config{Topo: topo, K: k, Queues: sim.CentralQueue, RequireMinimal: true, CheckInvariants: true}
		},
	},
	RouterRandZigZag: {
		Name:                    RouterRandZigZag,
		Summary:                 "randomized minimal adaptive alternation (Section 7 escape hatch 3)",
		DestinationExchangeable: false, // randomized: outside the deterministic model
		Minimal:                 true,
		Queues:                  sim.CentralQueue,
		New:                     func() sim.Algorithm { return routers.RandZigZag{Seed: 0} },
		NewFaultAware:           func() sim.Algorithm { return routers.RandZigZag{Seed: 0, FaultAware: true} },
		NewSeeded: func(seed uint64, faultAware bool) sim.Algorithm {
			return routers.RandZigZag{Seed: seed, FaultAware: faultAware}
		},
		Config: func(topo Topology, k int) sim.Config {
			return sim.Config{Topo: topo, K: k, Queues: sim.CentralQueue, RequireMinimal: true, CheckInvariants: true}
		},
	},
	RouterScheduled: {
		Name:                    RouterScheduled,
		Summary:                 "offline path-scheduled O(C+D) baseline: random delays in [0,C) over the analysis path system",
		DestinationExchangeable: false,
		Minimal:                 true,
		Offline:                 true,
		Queues:                  sim.CentralQueue,
		New:                     func() sim.Algorithm { return routers.NewScheduled(0) },
		NewSeeded: func(seed uint64, faultAware bool) sim.Algorithm {
			return routers.NewScheduled(seed)
		},
		Config: func(topo Topology, k int) sim.Config {
			return sim.Config{Topo: topo, K: k, Queues: sim.CentralQueue, RequireMinimal: true, CheckInvariants: true}
		},
	},
	RouterStray: {
		Name:                    RouterStray,
		Summary:                 "dimension order with a 1-column overshoot budget (Section 5 nonminimal extension)",
		DestinationExchangeable: true,
		Minimal:                 false,
		Queues:                  sim.CentralQueue,
		New:                     func() sim.Algorithm { return dex.NewAdapter(routers.StrayDimOrder{Delta: 1}) },
		Config: func(topo Topology, k int) sim.Config {
			return sim.Config{Topo: topo, K: k, Queues: sim.CentralQueue, MaxStray: 1, CheckInvariants: true}
		},
	},
	RouterHotPotato: {
		Name:                    RouterHotPotato,
		Summary:                 "deterministic deflection baseline (nonminimal)",
		DestinationExchangeable: true,
		Minimal:                 false,
		Queues:                  sim.CentralQueue,
		New:                     func() sim.Algorithm { return routers.HotPotato{} },
		Config:                  func(topo Topology, k int) sim.Config { return routers.HotPotatoConfig(topo) },
	},
}

// LookupRouter returns the spec for a router name.
func LookupRouter(name string) (RouterSpec, error) {
	spec, ok := registry[name]
	if !ok {
		return RouterSpec{}, fmt.Errorf("meshroute: unknown router %q (have %v)", name, RouterNames())
	}
	return spec, nil
}

// RouterNames lists the registered router names, sorted.
func RouterNames() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
