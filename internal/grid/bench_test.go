package grid

import "testing"

// BenchmarkMeshProfitable measures the hot path of every routing decision.
func BenchmarkMeshProfitable(b *testing.B) {
	m := NewSquareMesh(256)
	a := m.ID(XY(17, 200))
	d := m.ID(XY(240, 3))
	for i := 0; i < b.N; i++ {
		_ = m.Profitable(a, d)
	}
}

// BenchmarkTorusProfitable measures the wraparound variant.
func BenchmarkTorusProfitable(b *testing.B) {
	t := NewSquareTorus(256)
	a := t.ID(XY(17, 200))
	d := t.ID(XY(240, 3))
	for i := 0; i < b.N; i++ {
		_ = t.Profitable(a, d)
	}
}

// BenchmarkMeshNeighbor measures link lookup.
func BenchmarkMeshNeighbor(b *testing.B) {
	m := NewSquareMesh(256)
	id := m.ID(XY(100, 100))
	for i := 0; i < b.N; i++ {
		for d := Dir(0); d < NumDirs; d++ {
			m.Neighbor(id, d)
		}
	}
}
