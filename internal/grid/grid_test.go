package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDirOpposite(t *testing.T) {
	cases := []struct{ d, want Dir }{
		{North, South},
		{South, North},
		{East, West},
		{West, East},
		{NoDir, NoDir},
	}
	for _, c := range cases {
		if got := c.d.Opposite(); got != c.want {
			t.Errorf("Opposite(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestDirDelta(t *testing.T) {
	for d := Dir(0); d < NumDirs; d++ {
		dx, dy := d.Delta()
		if abs(dx)+abs(dy) != 1 {
			t.Errorf("Delta(%v) = (%d,%d), want unit step", d, dx, dy)
		}
		ox, oy := d.Opposite().Delta()
		if ox != -dx || oy != -dy {
			t.Errorf("Delta(%v) and Delta(opposite) not negations", d)
		}
	}
	if dx, dy := NoDir.Delta(); dx != 0 || dy != 0 {
		t.Errorf("Delta(NoDir) = (%d,%d), want (0,0)", dx, dy)
	}
}

func TestDirHorizontal(t *testing.T) {
	if !East.Horizontal() || !West.Horizontal() {
		t.Error("East/West must be horizontal")
	}
	if North.Horizontal() || South.Horizontal() {
		t.Error("North/South must not be horizontal")
	}
}

func TestDirString(t *testing.T) {
	if North.String() != "North" || NoDir.String() != "NoDir" {
		t.Errorf("unexpected names %q %q", North, NoDir)
	}
	if Dir(9).String() == "" {
		t.Error("out-of-range Dir must still render")
	}
}

func TestDirSet(t *testing.T) {
	var s DirSet
	if s.Count() != 0 {
		t.Fatal("empty set must have count 0")
	}
	s = s.Set(North).Set(East)
	if !s.Has(North) || !s.Has(East) || s.Has(South) || s.Has(West) {
		t.Fatalf("set contents wrong: %v", s)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	dirs := s.Dirs()
	if len(dirs) != 2 || dirs[0] != North || dirs[1] != East {
		t.Fatalf("Dirs = %v, want [North East]", dirs)
	}
	if got := s.String(); got != "{North East}" {
		t.Fatalf("String = %q", got)
	}
}

func TestMeshIDCoordRoundTrip(t *testing.T) {
	m := NewMesh(7, 5)
	if m.N() != 35 || m.Width() != 7 || m.Height() != 5 {
		t.Fatal("mesh dimensions wrong")
	}
	for y := 0; y < 5; y++ {
		for x := 0; x < 7; x++ {
			c := Coord{x, y}
			if got := m.CoordOf(m.ID(c)); got != c {
				t.Fatalf("round trip %v -> %v", c, got)
			}
		}
	}
}

func TestMeshNeighbors(t *testing.T) {
	m := NewSquareMesh(4)
	// Southwest corner has only North and East.
	sw := m.ID(Coord{0, 0})
	if _, ok := m.Neighbor(sw, South); ok {
		t.Error("corner must not have South neighbor")
	}
	if _, ok := m.Neighbor(sw, West); ok {
		t.Error("corner must not have West neighbor")
	}
	if n, ok := m.Neighbor(sw, North); !ok || m.CoordOf(n) != (Coord{0, 1}) {
		t.Error("North neighbor wrong")
	}
	if n, ok := m.Neighbor(sw, East); !ok || m.CoordOf(n) != (Coord{1, 0}) {
		t.Error("East neighbor wrong")
	}
	// Interior node has all four.
	mid := m.ID(Coord{2, 2})
	for d := Dir(0); d < NumDirs; d++ {
		if _, ok := m.Neighbor(mid, d); !ok {
			t.Errorf("interior node missing %v neighbor", d)
		}
	}
}

func TestMeshDist(t *testing.T) {
	m := NewSquareMesh(8)
	a := m.ID(Coord{1, 2})
	b := m.ID(Coord{5, 7})
	if got := m.Dist(a, b); got != 4+5 {
		t.Fatalf("Dist = %d, want 9", got)
	}
	if m.Dist(a, a) != 0 {
		t.Fatal("self distance must be 0")
	}
}

func TestMeshProfitable(t *testing.T) {
	m := NewSquareMesh(8)
	from := m.ID(Coord{3, 3})
	cases := []struct {
		dst  Coord
		want DirSet
	}{
		{Coord{3, 3}, 0},
		{Coord{5, 3}, DirSet(0).Set(East)},
		{Coord{1, 3}, DirSet(0).Set(West)},
		{Coord{3, 6}, DirSet(0).Set(North)},
		{Coord{3, 0}, DirSet(0).Set(South)},
		{Coord{6, 6}, DirSet(0).Set(North).Set(East)},
		{Coord{0, 0}, DirSet(0).Set(South).Set(West)},
		{Coord{6, 0}, DirSet(0).Set(South).Set(East)},
		{Coord{0, 6}, DirSet(0).Set(North).Set(West)},
	}
	for _, c := range cases {
		if got := m.Profitable(from, m.ID(c.dst)); got != c.want {
			t.Errorf("Profitable to %v = %v, want %v", c.dst, got, c.want)
		}
	}
}

func TestMeshWraparound(t *testing.T) {
	if NewSquareMesh(3).Wraparound() {
		t.Error("mesh must not wrap")
	}
	if !NewSquareTorus(3).Wraparound() {
		t.Error("torus must wrap")
	}
}

func TestTorusNeighbors(t *testing.T) {
	tr := NewSquareTorus(4)
	sw := tr.ID(Coord{0, 0})
	if n, ok := tr.Neighbor(sw, South); !ok || tr.CoordOf(n) != (Coord{0, 3}) {
		t.Error("torus South wrap wrong")
	}
	if n, ok := tr.Neighbor(sw, West); !ok || tr.CoordOf(n) != (Coord{3, 0}) {
		t.Error("torus West wrap wrong")
	}
	ne := tr.ID(Coord{3, 3})
	if n, ok := tr.Neighbor(ne, North); !ok || tr.CoordOf(n) != (Coord{3, 0}) {
		t.Error("torus North wrap wrong")
	}
	if n, ok := tr.Neighbor(ne, East); !ok || tr.CoordOf(n) != (Coord{0, 3}) {
		t.Error("torus East wrap wrong")
	}
}

func TestTorusDist(t *testing.T) {
	tr := NewSquareTorus(8)
	a := tr.ID(Coord{0, 0})
	b := tr.ID(Coord{7, 7})
	if got := tr.Dist(a, b); got != 2 {
		t.Fatalf("torus Dist = %d, want 2 (wraparound)", got)
	}
	c := tr.ID(Coord{4, 0})
	if got := tr.Dist(a, c); got != 4 {
		t.Fatalf("torus antipodal Dist = %d, want 4", got)
	}
}

func TestTorusProfitableTieBothWays(t *testing.T) {
	tr := NewSquareTorus(8)
	from := tr.ID(Coord{0, 0})
	dst := tr.ID(Coord{4, 0}) // antipodal in X: East and West equidistant
	got := tr.Profitable(from, dst)
	if !got.Has(East) || !got.Has(West) {
		t.Fatalf("antipodal X must make both East and West profitable, got %v", got)
	}
	if got.Has(North) || got.Has(South) {
		t.Fatalf("Y dims equal, no vertical profit expected, got %v", got)
	}
}

func TestTorusProfitableShortWay(t *testing.T) {
	tr := NewSquareTorus(8)
	from := tr.ID(Coord{1, 1})
	dst := tr.ID(Coord{7, 1}) // going West (2 hops) beats East (6 hops)
	got := tr.Profitable(from, dst)
	if !got.Has(West) || got.Has(East) {
		t.Fatalf("short way is West, got %v", got)
	}
}

// Property: every profitable direction decreases distance by exactly one,
// and every non-profitable existing outlink does not decrease it.
func testProfitableDecreasesDist(t *testing.T, topo Topology) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		a := NodeID(rng.Intn(topo.N()))
		b := NodeID(rng.Intn(topo.N()))
		prof := topo.Profitable(a, b)
		base := topo.Dist(a, b)
		for d := Dir(0); d < NumDirs; d++ {
			nb, ok := topo.Neighbor(a, d)
			if !ok {
				if prof.Has(d) {
					t.Fatalf("profitable dir %v has no outlink at %v", d, topo.CoordOf(a))
				}
				continue
			}
			nd := topo.Dist(nb, b)
			if prof.Has(d) && nd != base-1 {
				t.Fatalf("profitable %v from %v to %v: dist %d -> %d", d, topo.CoordOf(a), topo.CoordOf(b), base, nd)
			}
			if !prof.Has(d) && nd < base {
				t.Fatalf("non-profitable %v from %v to %v decreases dist %d -> %d", d, topo.CoordOf(a), topo.CoordOf(b), base, nd)
			}
		}
		if base > 0 && prof == 0 {
			t.Fatalf("dist %d > 0 but no profitable dirs from %v to %v", base, topo.CoordOf(a), topo.CoordOf(b))
		}
		if base == 0 && prof != 0 {
			t.Fatalf("at destination but profitable dirs %v", prof)
		}
	}
}

func TestMeshProfitableDecreasesDist(t *testing.T) {
	testProfitableDecreasesDist(t, NewMesh(9, 6))
}

func TestTorusProfitableDecreasesDist(t *testing.T) {
	testProfitableDecreasesDist(t, NewTorus(9, 6))
	testProfitableDecreasesDist(t, NewTorus(8, 8)) // even: antipodal ties
}

// Property (testing/quick): mesh distance is a metric and matches the
// coordinate formula.
func TestQuickMeshDistMetric(t *testing.T) {
	m := NewSquareMesh(16)
	f := func(ax, ay, bx, by, cx, cy uint8) bool {
		a := m.ID(Coord{int(ax) % 16, int(ay) % 16})
		b := m.ID(Coord{int(bx) % 16, int(by) % 16})
		c := m.ID(Coord{int(cx) % 16, int(cy) % 16})
		// symmetry, identity, triangle inequality
		return m.Dist(a, b) == m.Dist(b, a) &&
			(m.Dist(a, b) == 0) == (a == b) &&
			m.Dist(a, c) <= m.Dist(a, b)+m.Dist(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): torus distance is a metric bounded by mesh
// distance.
func TestQuickTorusDistMetric(t *testing.T) {
	tr := NewSquareTorus(16)
	me := NewSquareMesh(16)
	f := func(ax, ay, bx, by, cx, cy uint8) bool {
		a := tr.ID(Coord{int(ax) % 16, int(ay) % 16})
		b := tr.ID(Coord{int(bx) % 16, int(by) % 16})
		c := tr.ID(Coord{int(cx) % 16, int(cy) % 16})
		return tr.Dist(a, b) == tr.Dist(b, a) &&
			(tr.Dist(a, b) == 0) == (a == b) &&
			tr.Dist(a, c) <= tr.Dist(a, b)+tr.Dist(b, c) &&
			tr.Dist(a, b) <= me.Dist(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): neighbor links are symmetric — (u,v) in E iff
// (v,u) in E, with opposite directions.
func TestQuickNeighborSymmetry(t *testing.T) {
	topos := []Topology{NewMesh(11, 7), NewTorus(11, 7)}
	for _, topo := range topos {
		f := func(x, y, dd uint8) bool {
			c := Coord{int(x) % topo.Width(), int(y) % topo.Height()}
			d := Dir(dd % NumDirs)
			u := topo.ID(c)
			v, ok := topo.Neighbor(u, d)
			if !ok {
				return true
			}
			back, ok2 := topo.Neighbor(v, d.Opposite())
			return ok2 && back == u
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%T: %v", topo, err)
		}
	}
}

func TestPanicsOnBadSizes(t *testing.T) {
	mustPanic(t, func() { NewMesh(0, 3) })
	mustPanic(t, func() { NewTorus(3, -1) })
	m := NewSquareMesh(3)
	mustPanic(t, func() { m.ID(Coord{3, 0}) })
	tr := NewSquareTorus(3)
	mustPanic(t, func() { tr.ID(Coord{0, -1}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
