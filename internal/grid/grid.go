// Package grid provides the mesh and torus network topologies used by the
// routing simulator: coordinates, directions, node identifiers, shortest-path
// (L1) metrics, and the computation of "profitable outlinks" — the outlinks
// that move a packet strictly closer to its destination — which is the only
// destination information a destination-exchangeable routing algorithm may
// observe (Chinn–Leighton–Tompa, Section 2).
//
// Conventions follow the paper: columns are numbered west to east and rows
// south to north. Internally both are 0-based, so Coord{X: 0, Y: 0} is the
// southwest corner and increasing Y moves north.
package grid

import "fmt"

// Dir identifies one of the four mesh directions. The zero value is North.
type Dir uint8

// The four directions, in the fixed deterministic iteration order used
// throughout the simulator.
const (
	North Dir = iota
	East
	South
	West

	// NumDirs is the number of mesh directions.
	NumDirs = 4

	// NoDir is a sentinel for "no direction" (e.g. the inlink of a packet
	// that has not moved yet).
	NoDir Dir = 4
)

var dirNames = [...]string{"North", "East", "South", "West", "NoDir"}

// String returns the direction's name.
func (d Dir) String() string {
	if int(d) < len(dirNames) {
		return dirNames[d]
	}
	return fmt.Sprintf("Dir(%d)", uint8(d))
}

// Opposite returns the reverse direction. Opposite of NoDir is NoDir.
func (d Dir) Opposite() Dir {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return NoDir
}

// Delta returns the coordinate change of one hop in direction d.
func (d Dir) Delta() (dx, dy int) {
	switch d {
	case North:
		return 0, 1
	case East:
		return 1, 0
	case South:
		return 0, -1
	case West:
		return -1, 0
	}
	return 0, 0
}

// Horizontal reports whether d is East or West.
func (d Dir) Horizontal() bool { return d == East || d == West }

// DirSet is a bitmask of directions.
type DirSet uint8

// AllDirs contains all four mesh directions.
const AllDirs DirSet = 1<<NumDirs - 1

// Set returns s with d added.
func (s DirSet) Set(d Dir) DirSet { return s | 1<<d }

// Has reports whether d is in the set.
func (s DirSet) Has(d Dir) bool { return s&(1<<d) != 0 }

// Count returns the number of directions in the set.
func (s DirSet) Count() int {
	c := 0
	for d := Dir(0); d < NumDirs; d++ {
		if s.Has(d) {
			c++
		}
	}
	return c
}

// Dirs returns the directions in the set in canonical order.
func (s DirSet) Dirs() []Dir {
	out := make([]Dir, 0, 4)
	for d := Dir(0); d < NumDirs; d++ {
		if s.Has(d) {
			out = append(out, d)
		}
	}
	return out
}

// String renders the set like "{North East}".
func (s DirSet) String() string {
	str := "{"
	for i, d := range s.Dirs() {
		if i > 0 {
			str += " "
		}
		str += d.String()
	}
	return str + "}"
}

// NodeID is a dense node identifier in [0, W*H).
type NodeID int32

// Coord is a mesh coordinate: X is the column (0 = westernmost), Y is the
// row (0 = southernmost).
type Coord struct {
	X, Y int
}

// XY is shorthand for Coord{X: x, Y: y}.
func XY(x, y int) Coord { return Coord{X: x, Y: y} }

// String renders the coordinate as "(x,y)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Add returns the coordinate one hop away in direction d.
func (c Coord) Add(d Dir) Coord {
	dx, dy := d.Delta()
	return Coord{c.X + dx, c.Y + dy}
}

// Topology abstracts the mesh and torus networks. All methods must be
// deterministic and safe for concurrent readers.
type Topology interface {
	// Width returns the number of columns.
	Width() int
	// Height returns the number of rows.
	Height() int
	// N returns the number of nodes.
	N() int
	// ID maps a coordinate to its node identifier. The coordinate must be
	// in range.
	ID(c Coord) NodeID
	// CoordOf maps a node identifier back to its coordinate.
	CoordOf(id NodeID) Coord
	// Neighbor returns the node one hop away in direction d, and whether
	// that outlink exists.
	Neighbor(id NodeID, d Dir) (NodeID, bool)
	// Dist returns the shortest-path distance between two nodes.
	Dist(a, b NodeID) int
	// Profitable returns the set of outlinks of from that strictly
	// decrease the distance to dst.
	Profitable(from, dst NodeID) DirSet
	// Wraparound reports whether the topology is a torus.
	Wraparound() bool
}

// Mesh is the n×m two-dimensional mesh (no wraparound links).
type Mesh struct {
	w, h int
}

// NewMesh returns a w×h mesh. Width and height must be positive.
func NewMesh(w, h int) *Mesh {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid mesh size %dx%d", w, h))
	}
	return &Mesh{w: w, h: h}
}

// NewSquareMesh returns the n×n mesh of the paper.
func NewSquareMesh(n int) *Mesh { return NewMesh(n, n) }

// Width returns the number of columns.
func (m *Mesh) Width() int { return m.w }

// Height returns the number of rows.
func (m *Mesh) Height() int { return m.h }

// N returns the number of nodes.
func (m *Mesh) N() int { return m.w * m.h }

// ID maps a coordinate to its node identifier.
func (m *Mesh) ID(c Coord) NodeID {
	if c.X < 0 || c.X >= m.w || c.Y < 0 || c.Y >= m.h {
		panic(fmt.Sprintf("grid: coord %v out of %dx%d mesh", c, m.w, m.h))
	}
	return NodeID(c.Y*m.w + c.X)
}

// CoordOf maps a node identifier back to its coordinate.
func (m *Mesh) CoordOf(id NodeID) Coord {
	return Coord{X: int(id) % m.w, Y: int(id) / m.w}
}

// Neighbor returns the node one hop away in direction d, if the outlink
// exists (mesh edges have no wraparound).
func (m *Mesh) Neighbor(id NodeID, d Dir) (NodeID, bool) {
	c := m.CoordOf(id).Add(d)
	if c.X < 0 || c.X >= m.w || c.Y < 0 || c.Y >= m.h {
		return 0, false
	}
	return m.ID(c), true
}

// Dist returns the L1 distance between two nodes.
func (m *Mesh) Dist(a, b NodeID) int {
	ca, cb := m.CoordOf(a), m.CoordOf(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
}

// Profitable returns the outlinks of from that move a packet closer to dst.
func (m *Mesh) Profitable(from, dst NodeID) DirSet {
	cf, cd := m.CoordOf(from), m.CoordOf(dst)
	var s DirSet
	if cd.X > cf.X {
		s = s.Set(East)
	} else if cd.X < cf.X {
		s = s.Set(West)
	}
	if cd.Y > cf.Y {
		s = s.Set(North)
	} else if cd.Y < cf.Y {
		s = s.Set(South)
	}
	return s
}

// Wraparound reports false: the mesh has no wraparound links.
func (m *Mesh) Wraparound() bool { return false }

// Torus is the n×m two-dimensional torus (mesh with wraparound links).
type Torus struct {
	w, h int
}

// NewTorus returns a w×h torus. Width and height must be positive.
func NewTorus(w, h int) *Torus {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid torus size %dx%d", w, h))
	}
	return &Torus{w: w, h: h}
}

// NewSquareTorus returns the n×n torus.
func NewSquareTorus(n int) *Torus { return NewTorus(n, n) }

// Width returns the number of columns.
func (t *Torus) Width() int { return t.w }

// Height returns the number of rows.
func (t *Torus) Height() int { return t.h }

// N returns the number of nodes.
func (t *Torus) N() int { return t.w * t.h }

// ID maps a coordinate to its node identifier.
func (t *Torus) ID(c Coord) NodeID {
	if c.X < 0 || c.X >= t.w || c.Y < 0 || c.Y >= t.h {
		panic(fmt.Sprintf("grid: coord %v out of %dx%d torus", c, t.w, t.h))
	}
	return NodeID(c.Y*t.w + c.X)
}

// CoordOf maps a node identifier back to its coordinate.
func (t *Torus) CoordOf(id NodeID) Coord {
	return Coord{X: int(id) % t.w, Y: int(id) / t.w}
}

// Neighbor returns the node one hop away in direction d; on the torus every
// outlink exists, wrapping around the edges.
func (t *Torus) Neighbor(id NodeID, d Dir) (NodeID, bool) {
	c := t.CoordOf(id).Add(d)
	c.X = mod(c.X, t.w)
	c.Y = mod(c.Y, t.h)
	return t.ID(c), true
}

// Dist returns the torus shortest-path distance between two nodes.
func (t *Torus) Dist(a, b NodeID) int {
	ca, cb := t.CoordOf(a), t.CoordOf(b)
	return wrapDist(ca.X, cb.X, t.w) + wrapDist(ca.Y, cb.Y, t.h)
}

// Profitable returns the outlinks of from that move a packet closer to dst
// under the torus metric. When the two ways around a dimension are
// equidistant, both directions are profitable.
func (t *Torus) Profitable(from, dst NodeID) DirSet {
	cf, cd := t.CoordOf(from), t.CoordOf(dst)
	var s DirSet
	if cf.X != cd.X {
		fwd := mod(cd.X-cf.X, t.w) // hops going East
		bwd := t.w - fwd           // hops going West
		if fwd <= bwd {
			s = s.Set(East)
		}
		if bwd <= fwd {
			s = s.Set(West)
		}
	}
	if cf.Y != cd.Y {
		fwd := mod(cd.Y-cf.Y, t.h) // hops going North
		bwd := t.h - fwd           // hops going South
		if fwd <= bwd {
			s = s.Set(North)
		}
		if bwd <= fwd {
			s = s.Set(South)
		}
	}
	return s
}

// Wraparound reports true.
func (t *Torus) Wraparound() bool { return true }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func mod(x, m int) int {
	x %= m
	if x < 0 {
		x += m
	}
	return x
}

func wrapDist(a, b, m int) int {
	d := abs(a - b)
	if m-d < d {
		return m - d
	}
	return d
}
