package trace

import (
	"meshroute/internal/obs"
)

// Series aggregates a recorded trace into the observability layer's
// per-step time-series type, so a trace captured with Recorder can be
// analyzed with the same tooling as a live obs.Sink feed.
//
// A trace records movements only, so the movement-derived fields (Moves,
// LinkUse, Delivered, DeliveredTotal) are exact, while InFlight is a
// lower bound: it counts packets that have moved at least once and are
// not yet delivered (packets still sitting at their source are invisible
// to the trace until their first hop). Queue-occupancy fields
// (OccupiedNodes, MaxQueue, QueueHist) require node state the trace does
// not carry and are left zero — attach an obs sink to the live run (or
// replay the run) when those are needed.
func Series(steps []StepTrace) []obs.StepSample {
	out := make([]obs.StepSample, 0, len(steps))
	seen := map[int32]bool{}
	deliveredTotal := 0
	for _, st := range steps {
		s := obs.StepSample{Step: st.Step, Moves: len(st.Moves), Delivered: len(st.Delivered)}
		for _, m := range st.Moves {
			s.LinkUse[m.Dir]++
			if !seen[m.Packet] {
				seen[m.Packet] = true
			}
		}
		deliveredTotal += len(st.Delivered)
		s.DeliveredTotal = deliveredTotal
		s.InFlight = len(seen) - deliveredTotal
		out = append(out, s)
	}
	return out
}
