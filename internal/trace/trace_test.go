package trace

import (
	"bytes"
	"strings"
	"testing"

	"meshroute/internal/dex"
	"meshroute/internal/grid"
	"meshroute/internal/routers"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

func recordRun(t *testing.T, n int) ([]StepTrace, *sim.Network) {
	t.Helper()
	topo := grid.NewSquareMesh(n)
	net := sim.MustNew(routers.Thm15Config(topo, 2))
	perm := workload.Random(topo, 9)
	if err := perm.Place(net); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.Attach(net)
	if _, err := net.Run(dex.NewAdapter(routers.Thm15{}), 100*n); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	steps, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return steps, net
}

func TestRecorderRoundTrip(t *testing.T) {
	steps, net := recordRun(t, 8)
	if len(steps) == 0 {
		t.Fatal("no steps recorded")
	}
	a := Analyze(steps)
	// Fixed points deliver at placement (step 0) and never appear in the
	// trace; everything else must.
	routed := 0
	for _, p := range net.Packets() {
		if p.DeliverStep >= 1 {
			routed++
		}
	}
	if a.Delivered != routed {
		t.Fatalf("trace delivered %d, network routed %d", a.Delivered, routed)
	}
	if a.TotalMoves != net.Metrics.TotalHops {
		t.Fatalf("trace moves %d, network hops %d", a.TotalMoves, net.Metrics.TotalHops)
	}
	if a.Steps != net.Metrics.Makespan {
		t.Fatalf("trace steps %d, makespan %d", a.Steps, net.Metrics.Makespan)
	}
}

func TestAnalysisLinkConsistency(t *testing.T) {
	steps, _ := recordRun(t, 8)
	a := Analyze(steps)
	sumLinks := 0
	for _, n := range a.LinkUse {
		sumLinks += n
	}
	if sumLinks != a.TotalMoves {
		t.Fatalf("link sum %d != total moves %d", sumLinks, a.TotalMoves)
	}
	l, n := a.HottestLink()
	if n == 0 || a.LinkUse[l] != n {
		t.Fatalf("hottest link inconsistent: %v %d", l, n)
	}
	// Delivery curve sums to the total.
	sumDel := 0
	for _, c := range a.DeliveredAt {
		sumDel += c
	}
	if sumDel != a.Delivered {
		t.Fatalf("delivery curve sum %d != %d", sumDel, a.Delivered)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage must fail")
	}
}

func TestEmptyTrace(t *testing.T) {
	steps, err := Read(strings.NewReader(""))
	if err != nil || len(steps) != 0 {
		t.Fatalf("empty trace: %v %d", err, len(steps))
	}
	a := Analyze(steps)
	if a.TotalMoves != 0 || a.Steps != 0 {
		t.Fatal("empty analysis must be zero")
	}
	if _, n := a.HottestLink(); n != 0 {
		t.Fatal("empty trace has no hottest link")
	}
}

// The trace of the constructed permutation shows the corner concentration:
// the hottest links carry far more than the average.
func TestTraceShowsCornerConcentration(t *testing.T) {
	topo := grid.NewSquareMesh(8)
	net := sim.MustNew(routers.Thm15Config(topo, 1))
	// All packets from the 3×3 corner heading out.
	idx := 0
	for y := 0; y < 2; y++ {
		for x := 0; x < 4; x++ {
			net.MustPlace(net.NewPacket(topo.ID(grid.XY(x, y)), topo.ID(grid.XY(7, idx))))
			idx++
		}
	}
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.Attach(net)
	if _, err := net.Run(dex.NewAdapter(routers.Thm15{}), 2000); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	steps, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(steps)
	_, hot := a.HottestLink()
	if hot < 3 {
		t.Fatalf("corner flood should concentrate traffic, hottest link only %d", hot)
	}
}
