// Package trace records and analyzes routing runs. A Recorder attaches to
// the simulator's observer hook and writes one JSON line per step (packet
// moves and deliveries); an Analysis aggregates a trace into per-link
// utilization, per-node traffic, and delivery curves — the raw material
// for inspecting where a hard permutation actually hurts (the constructed
// permutations concentrate traffic on the box boundaries, which the
// analysis makes visible).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"meshroute/internal/grid"
	"meshroute/internal/sim"
)

// MoveRecord is one transmitted packet in one step.
type MoveRecord struct {
	// Packet is the packet ID.
	Packet int32 `json:"p"`
	// From and To are node IDs.
	From grid.NodeID `json:"f"`
	To   grid.NodeID `json:"t"`
	// Dir is the travel direction.
	Dir grid.Dir `json:"d"`
}

// StepTrace is the serialized form of one step.
type StepTrace struct {
	// Step is the step number.
	Step int `json:"s"`
	// Moves lists applied transmissions.
	Moves []MoveRecord `json:"m,omitempty"`
	// Delivered lists delivered packet IDs.
	Delivered []int32 `json:"dl,omitempty"`
}

// Recorder streams step traces to a writer as JSON lines.
type Recorder struct {
	enc *json.Encoder
	w   *bufio.Writer
	err error
	n   int
}

// NewRecorder creates a recorder writing to w.
func NewRecorder(w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	return &Recorder{enc: json.NewEncoder(bw), w: bw}
}

// Attach installs the recorder on a network.
func (r *Recorder) Attach(net *sim.Network) {
	net.SetObserver(func(rec sim.StepRecord) {
		if r.err != nil {
			return
		}
		st := StepTrace{Step: rec.Step, Delivered: rec.Delivered}
		for _, m := range rec.Moves {
			st.Moves = append(st.Moves, MoveRecord{Packet: m.P.ID(), From: m.From, To: m.To, Dir: m.Travel})
		}
		if err := r.enc.Encode(st); err != nil {
			r.err = err
			return
		}
		r.n++
	})
}

// Steps returns the number of recorded steps.
func (r *Recorder) Steps() int { return r.n }

// Close flushes the recorder and reports any write error.
func (r *Recorder) Close() error {
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// Read parses a JSON-lines trace.
func Read(rd io.Reader) ([]StepTrace, error) {
	dec := json.NewDecoder(rd)
	var out []StepTrace
	for dec.More() {
		var st StepTrace
		if err := dec.Decode(&st); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		out = append(out, st)
	}
	return out, nil
}

// Analysis aggregates a trace.
type Analysis struct {
	// Steps is the number of steps in the trace.
	Steps int
	// TotalMoves counts all transmissions.
	TotalMoves int
	// Delivered counts deliveries.
	Delivered int
	// LinkUse maps each directed link (from, dir) to its transmission
	// count.
	LinkUse map[Link]int
	// NodeTraffic counts transmissions out of each node.
	NodeTraffic map[grid.NodeID]int
	// DeliveredAt maps step -> deliveries in that step.
	DeliveredAt map[int]int
}

// Link is one directed mesh link.
type Link struct {
	// From is the sending node; Dir the travel direction.
	From grid.NodeID
	Dir  grid.Dir
}

// Analyze aggregates step traces.
func Analyze(steps []StepTrace) *Analysis {
	a := &Analysis{
		LinkUse:     map[Link]int{},
		NodeTraffic: map[grid.NodeID]int{},
		DeliveredAt: map[int]int{},
	}
	for _, st := range steps {
		if st.Step > a.Steps {
			a.Steps = st.Step
		}
		a.TotalMoves += len(st.Moves)
		a.Delivered += len(st.Delivered)
		if len(st.Delivered) > 0 {
			a.DeliveredAt[st.Step] += len(st.Delivered)
		}
		for _, m := range st.Moves {
			a.LinkUse[Link{From: m.From, Dir: m.Dir}]++
			a.NodeTraffic[m.From]++
		}
	}
	return a
}

// HottestLink returns the most used link and its count (zero value if the
// trace is empty).
func (a *Analysis) HottestLink() (Link, int) {
	var best Link
	bestN := 0
	for l, n := range a.LinkUse {
		if n > bestN || (n == bestN && (l.From < best.From || (l.From == best.From && l.Dir < best.Dir))) {
			best, bestN = l, n
		}
	}
	return best, bestN
}
