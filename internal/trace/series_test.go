package trace

import (
	"bytes"
	"testing"

	"meshroute/internal/dex"
	"meshroute/internal/grid"
	"meshroute/internal/obs"
	"meshroute/internal/routers"
	"meshroute/internal/sim"
)

// TestSeriesMatchesLiveSink records the same run through both a trace
// Recorder and a live obs sink and checks that the movement-derived
// fields of the aggregated series agree exactly with the live samples.
func TestSeriesMatchesLiveSink(t *testing.T) {
	const n, k = 8, 2
	topo := grid.NewSquareMesh(n)
	net := sim.MustNew(sim.Config{Topo: topo, K: k, Queues: sim.CentralQueue, RequireMinimal: true, CheckInvariants: true})
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			net.MustPlace(net.NewPacket(topo.ID(grid.XY(x, y)), topo.ID(grid.XY(n-1-x, n-1-y))))
		}
	}
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.Attach(net)
	live := &obs.Memory{}
	net.SetMetricsSink(live)

	if _, err := net.Run(dex.NewAdapter(routers.DimOrderFIFO{}), 10000); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	steps, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	series := Series(steps)
	if len(series) != len(live.Steps) {
		t.Fatalf("series has %d samples, live sink %d", len(series), len(live.Steps))
	}
	for i, s := range series {
		l := live.Steps[i]
		if s.Step != l.Step || s.Moves != l.Moves || s.Delivered != l.Delivered ||
			s.DeliveredTotal != l.DeliveredTotal || s.LinkUse != l.LinkUse {
			t.Fatalf("step %d: series %+v disagrees with live sample %+v", s.Step, s, l)
		}
		if s.InFlight > l.InFlight {
			t.Fatalf("step %d: trace-derived InFlight %d exceeds live %d (must be a lower bound)",
				s.Step, s.InFlight, l.InFlight)
		}
	}
	final := series[len(series)-1]
	if final.InFlight != 0 || final.DeliveredTotal != net.TotalPackets() {
		t.Fatalf("final aggregated sample %+v does not show a drained network", final)
	}
}
