package analysis

import (
	"testing"

	"meshroute/internal/grid"
	"meshroute/internal/workload"
)

func demandsOf(p *workload.Permutation) []Demand {
	out := make([]Demand, len(p.Pairs))
	for i, pr := range p.Pairs {
		out[i] = Demand{Src: pr.Src, Dst: pr.Dst}
	}
	return out
}

// TestAnalyzerAgainstClosedForms pins C and D for workloads small enough
// to hand-compute. The canonical system routes x-first with East/West
// before North/South, so each case below can be verified by walking the
// paths on paper; the Accumulator must reproduce the canonical numbers
// exactly, and Analyze may only ever lower C (never raise it, never
// touch D).
func TestAnalyzerAgainstClosedForms(t *testing.T) {
	cases := []struct {
		name    string
		topo    grid.Topology
		demands []Demand
		// canonical (dimension-order) closed forms
		c, d int
	}{
		{
			// Every node shifts one step East with wraparound: each
			// eastbound edge carries exactly its origin's packet.
			name: "rotation-torus-4x4", topo: grid.NewSquareTorus(4),
			demands: demandsOf(workload.Rotation(grid.NewSquareTorus(4), 1, 0)),
			c:       1, d: 1,
		},
		{
			// Transpose on the 3×3 mesh. D is the corner pair
			// (0,2)→(2,0): distance 4. With x-first paths the two
			// off-diagonal packets of each triangle share one horizontal
			// edge into the diagonal column and one vertical edge out of
			// it — e.g. (0,2)→(2,0) and (1,2)→(2,1) both cross
			// (1,2)→(2,2) and then (2,2)→(2,1) — so C = 2.
			name: "transpose-mesh-3x3", topo: grid.NewSquareMesh(3),
			demands: demandsOf(workload.Transpose(grid.NewSquareMesh(3))),
			c:       2, d: 4,
		},
		{
			// Reversal on the 4×4 mesh: (x,y)→(3−x,3−y). D is the corner
			// trip, distance 6. x-first: within each row the two packets
			// from the west half and the two from the east half share
			// the middle horizontal edges (load 2); each column then
			// carries 4 packets vertically whose spans overlap pairwise
			// on the middle vertical edges (load 2). C = 2.
			name: "reversal-mesh-4x4", topo: grid.NewSquareMesh(4),
			demands: demandsOf(workload.Reversal(grid.NewSquareMesh(4))),
			c:       2, d: 6,
		},
		{
			// Hotspot: all 24 other nodes send to the center (2,2) of
			// the 5×5 mesh. x-first paths funnel every packet with
			// y != 2 through column 2: the 10 packets born with y > 2
			// all cross the final southbound edge (2,3)→(2,2), so
			// C = 10; D is the corner trip, distance 4.
			name: "hotspot-mesh-5x5", topo: grid.NewSquareMesh(5),
			demands: hotspotDemands(grid.NewSquareMesh(5), grid.XY(2, 2)),
			c:       10, d: 4,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			acc := NewAccumulator(tc.topo)
			for _, dem := range tc.demands {
				acc.Admit(dem.Src, dem.Dst)
			}
			if got := acc.Result(); got.Congestion != tc.c || got.Dilation != tc.d {
				t.Fatalf("accumulator C=%d D=%d, hand-computed C=%d D=%d",
					got.Congestion, got.Dilation, tc.c, tc.d)
			}
			ps := Analyze(tc.topo, tc.demands)
			res := ps.Result()
			if res.Dilation != tc.d {
				t.Fatalf("Analyze D=%d, hand-computed %d", res.Dilation, tc.d)
			}
			if res.Congestion > tc.c {
				t.Fatalf("Analyze C=%d exceeds canonical C=%d: greedy pass degraded congestion", res.Congestion, tc.c)
			}
			if res.Congestion < 1 && len(tc.demands) > 0 {
				t.Fatalf("Analyze C=%d: some edge must carry load", res.Congestion)
			}
			verifyPathSystem(t, ps, tc.demands)
		})
	}
}

func hotspotDemands(topo grid.Topology, hot grid.Coord) []Demand {
	dst := topo.ID(hot)
	out := make([]Demand, 0, topo.N()-1)
	for id := grid.NodeID(0); int(id) < topo.N(); id++ {
		if id != dst {
			out = append(out, Demand{Src: id, Dst: dst})
		}
	}
	return out
}

// verifyPathSystem checks the structural invariants every returned
// system must satisfy: each path is minimal (length == distance), walks
// from Src to Dst over existing links, and the stored edge-load table
// matches a recount.
func verifyPathSystem(t *testing.T, ps *PathSystem, demands []Demand) {
	t.Helper()
	recount := map[[2]int32]int{}
	for i, dem := range demands {
		path := ps.Path(i)
		if want := ps.topo.Dist(dem.Src, dem.Dst); len(path) != want {
			t.Fatalf("demand %d: path length %d != distance %d (not minimal)", i, len(path), want)
		}
		cur := dem.Src
		for _, dir := range path {
			if !ps.topo.Profitable(cur, dem.Dst).Has(dir) {
				t.Fatalf("demand %d: unprofitable hop %v at %v", i, dir, cur)
			}
			recount[[2]int32{int32(cur), int32(dir)}]++
			next, ok := ps.topo.Neighbor(cur, dir)
			if !ok {
				t.Fatalf("demand %d: hop %v off the grid at %v", i, dir, cur)
			}
			cur = next
		}
		if cur != dem.Dst {
			t.Fatalf("demand %d: path ends at %v, want %v", i, cur, dem.Dst)
		}
	}
	maxLoad := 0
	for edge, n := range recount {
		if got := ps.EdgeLoad(grid.NodeID(edge[0]), grid.Dir(edge[1])); got != n {
			t.Fatalf("edge %v load table %d != recount %d", edge, got, n)
		}
		if n > maxLoad {
			maxLoad = n
		}
	}
	if maxLoad != ps.Result().Congestion {
		t.Fatalf("recounted C=%d != reported C=%d", maxLoad, ps.Result().Congestion)
	}
}

// TestGreedyLowersCongestion builds a demand set where dimension order
// is provably bad — row-0 sources (i,0) send to distinct rows of the far
// column, (7,i), so x-first routing stacks all six onto the row-0 edge
// into (7,0) — and asserts the greedy pass fans them out over their own
// rows (the C=1 system: climb column i, then run East along row i).
func TestGreedyLowersCongestion(t *testing.T) {
	topo := grid.NewSquareMesh(8)
	var demands []Demand
	for i := 0; i < 6; i++ {
		demands = append(demands, Demand{Src: topo.ID(grid.XY(i, 0)), Dst: topo.ID(grid.XY(7, i))})
	}
	acc := NewAccumulator(topo)
	for _, dem := range demands {
		acc.Admit(dem.Src, dem.Dst)
	}
	canon := acc.Result().Congestion
	if canon != 6 {
		t.Fatalf("canonical C=%d, want 6 (all six cross (6,0)→(7,0))", canon)
	}
	ps := Analyze(topo, demands)
	if got := ps.Result().Congestion; got > 2 {
		t.Fatalf("greedy C=%d, want the fan-out system (C≤2, ideally 1) over canonical C=%d", got, canon)
	}
	if got := ps.Result().Dilation; got != 7 {
		t.Fatalf("D=%d, want 7", got)
	}
	verifyPathSystem(t, ps, demands)
}

// TestAccumulatorMatchesCanonical cross-checks the incremental
// accumulator against a fresh canonical recount on a random workload.
func TestAccumulatorMatchesCanonical(t *testing.T) {
	for _, topo := range []grid.Topology{grid.NewSquareMesh(9), grid.NewSquareTorus(8)} {
		perm := workload.Random(topo, 42)
		acc := NewAccumulator(topo)
		for _, pr := range perm.Pairs {
			acc.Admit(pr.Src, pr.Dst)
		}
		// Recount: canonical loads via an independent walk.
		load := map[int]int{}
		c, d := 0, 0
		for _, pr := range perm.Pairs {
			if dist := topo.Dist(pr.Src, pr.Dst); dist > d {
				d = dist
			}
			for cur := pr.Src; cur != pr.Dst; {
				dir := canonicalDir(topo.Profitable(cur, pr.Dst))
				load[edgeIdx(cur, dir)]++
				if load[edgeIdx(cur, dir)] > c {
					c = load[edgeIdx(cur, dir)]
				}
				cur, _ = topo.Neighbor(cur, dir)
			}
		}
		if got := acc.Result(); got.Congestion != c || got.Dilation != d {
			t.Fatalf("%T: accumulator C=%d D=%d, recount C=%d D=%d", topo, got.Congestion, got.Dilation, c, d)
		}
	}
}

func TestRatio(t *testing.T) {
	r := Result{Congestion: 6, Dilation: 4}
	if got := r.Ratio(20); got != 2.0 {
		t.Fatalf("Ratio(20)=%v, want 2", got)
	}
	if got := (Result{}).Ratio(7); got != 0 {
		t.Fatalf("empty-workload Ratio=%v, want 0", got)
	}
}
