// Package analysis computes the congestion+dilation yardstick of
// Rothvoß's simpler O(C+D) proof ("A simpler proof for O(congestion +
// dilation) packet routing") for the workloads this repository routes.
//
// For a workload and a chosen system of minimal paths, the dilation D is
// the length of the longest path (on our mesh/torus: the maximum
// shortest-path distance over all src→dst demands, since every path in
// the system is minimal) and the congestion C is the maximum number of
// paths that share one directed edge. Any store-and-forward schedule
// needs at least max(C_opt, D) steps, and O(C+D) is achievable, so
// makespan/(C+D) is a theory-grounded efficiency ratio that stays
// comparable across topologies, routers, and scales.
//
// Two entry points:
//
//   - Analyze computes C and D for a static demand set, building the
//     canonical dimension-order path system and then running one greedy
//     improvement pass that re-routes each demand over min-load
//     profitable edges (still minimal paths, so D is unchanged; C can
//     only stay or drop — the pass reverts to canonical if it ever
//     degrades C). AnalyzeCanonical builds the canonical system alone;
//     its phased per-demand paths are what the "scheduled" offline
//     baseline router replays.
//
//   - Accumulator accrues C and D incrementally, one Admit(src, dst)
//     call per packet at admission time, over the canonical paths. It
//     never allocates after construction, so the simulator can invoke it
//     from the admission hot path; online/replay workloads use it to
//     report the congestion of the full demand sequence they injected.
package analysis

import "meshroute/internal/grid"

// Demand is one packet's endpoints.
type Demand struct {
	Src, Dst grid.NodeID
}

// Result holds the congestion and dilation of a workload under a
// concrete minimal-path system.
type Result struct {
	// Congestion is the maximum number of paths sharing one directed
	// edge.
	Congestion int
	// Dilation is the maximum path length (= maximum shortest-path
	// distance, since all paths are minimal).
	Dilation int
}

// CD returns Congestion + Dilation, the Θ(makespan) yardstick.
func (r Result) CD() int { return r.Congestion + r.Dilation }

// Ratio returns makespan/(C+D), or 0 when the workload is empty
// (C+D == 0, e.g. every packet born at its destination).
func (r Result) Ratio(makespan int) float64 {
	if cd := r.CD(); cd > 0 {
		return float64(makespan) / float64(cd)
	}
	return 0
}

// edgeIdx maps the directed edge (leaving node id in direction d) to its
// slot in a flat load table of length 4·N.
func edgeIdx(id grid.NodeID, d grid.Dir) int {
	return int(id)<<2 | int(d)
}

// canonicalDir picks the canonical dimension-order step out of a
// profitable set: resolve the horizontal displacement first (East before
// West, so torus wrap ties break deterministically), then the vertical
// one (North before South). Profitable sets are never empty while
// src != dst, so NoDir only escapes on a malformed call.
func canonicalDir(prof grid.DirSet) grid.Dir {
	switch {
	case prof.Has(grid.East):
		return grid.East
	case prof.Has(grid.West):
		return grid.West
	case prof.Has(grid.North):
		return grid.North
	case prof.Has(grid.South):
		return grid.South
	}
	return grid.NoDir
}

// PathSystem is a system of minimal paths for a static demand set,
// together with its congestion/dilation result. Paths are stored flat
// (one dirs slice, per-demand offsets) so a million-packet instance costs
// one byte per hop.
type PathSystem struct {
	topo    grid.Topology
	demands []Demand
	dirs    []grid.Dir // all paths, concatenated
	off     []int32    // len(demands)+1 offsets into dirs
	load    []int32    // directed-edge load table, 4·N entries
	res     Result
}

// Result returns the congestion and dilation of the system.
func (ps *PathSystem) Result() Result { return ps.res }

// Len returns the number of demands.
func (ps *PathSystem) Len() int { return len(ps.demands) }

// Demand returns the i-th demand.
func (ps *PathSystem) Demand(i int) Demand { return ps.demands[i] }

// Path returns the i-th demand's hop sequence. The slice aliases the
// system's storage; callers must not modify it.
func (ps *PathSystem) Path(i int) []grid.Dir {
	return ps.dirs[ps.off[i]:ps.off[i+1]]
}

// EdgeLoad returns the number of paths using the directed edge that
// leaves node id in direction d.
func (ps *PathSystem) EdgeLoad(id grid.NodeID, d grid.Dir) int {
	return int(ps.load[edgeIdx(id, d)])
}

// Analyze builds a minimal-path system for the demands and returns it
// with its congestion and dilation. The construction is deterministic:
// first the canonical dimension-order system, then one greedy pass that
// re-routes each demand (in input order) over the currently
// least-loaded profitable edges. Greedy paths are still minimal, so the
// dilation is exact either way; if the pass fails to improve the
// congestion the canonical system is kept, so the returned C never
// exceeds the canonical C.
func Analyze(topo grid.Topology, demands []Demand) *PathSystem {
	ps := AnalyzeCanonical(topo, demands)
	canonC := ps.res.Congestion

	// Greedy improvement pass. Every minimal path for a demand has the
	// same length (its distance), so rewrites fit exactly in the
	// demand's existing dirs window.
	for i, dem := range demands {
		ps.walkPath(i, dem, -1) // lift the demand's own load off the table
		seg := ps.dirs[ps.off[i]:ps.off[i+1]]
		for j, cur := 0, dem.Src; cur != dem.Dst; j++ {
			prof := ps.topo.Profitable(cur, dem.Dst)
			best, bestLoad := grid.NoDir, int32(0)
			for _, dir := range [...]grid.Dir{grid.East, grid.West, grid.North, grid.South} {
				if !prof.Has(dir) {
					continue
				}
				if l := ps.load[edgeIdx(cur, dir)]; best == grid.NoDir || l < bestLoad {
					best, bestLoad = dir, l
				}
			}
			seg[j] = best
			ps.load[edgeIdx(cur, best)]++
			cur, _ = ps.topo.Neighbor(cur, best)
		}
	}
	if c := ps.maxLoad(); c < canonC {
		ps.res.Congestion = c
	} else {
		// Revert: rebuild the canonical system so the retained paths
		// match the reported congestion.
		for i := range ps.load {
			ps.load[i] = 0
		}
		for i, dem := range demands {
			seg := ps.dirs[ps.off[i]:ps.off[i+1]]
			for j, cur := 0, dem.Src; cur != dem.Dst; j++ {
				dir := canonicalDir(topo.Profitable(cur, dem.Dst))
				seg[j] = dir
				ps.load[edgeIdx(cur, dir)]++
				cur, _ = topo.Neighbor(cur, dir)
			}
		}
		ps.res.Congestion = canonC
	}
	return ps
}

// AnalyzeCanonical builds the canonical dimension-order path system for
// the demands (x-displacement first, then y) without the greedy
// improvement pass, so every path is phased: all horizontal hops precede
// all vertical ones. The "scheduled" router replays this system — the
// phasing is what makes its bounded-queue replay deadlock-free under the
// reserved-slot admission rule it shares with the dimension-order
// routers. Its congestion is an upper bound on Analyze's.
func AnalyzeCanonical(topo grid.Topology, demands []Demand) *PathSystem {
	ps := &PathSystem{
		topo:    topo,
		demands: demands,
		off:     make([]int32, len(demands)+1),
		load:    make([]int32, 4*topo.N()),
	}
	total, d := 0, 0
	for _, dem := range demands {
		dist := topo.Dist(dem.Src, dem.Dst)
		total += dist
		if dist > d {
			d = dist
		}
	}
	ps.res.Dilation = d
	ps.dirs = make([]grid.Dir, 0, total)
	for i, dem := range demands {
		ps.off[i] = int32(len(ps.dirs))
		for cur := dem.Src; cur != dem.Dst; {
			dir := canonicalDir(topo.Profitable(cur, dem.Dst))
			ps.dirs = append(ps.dirs, dir)
			ps.load[edgeIdx(cur, dir)]++
			cur, _ = topo.Neighbor(cur, dir)
		}
	}
	ps.off[len(demands)] = int32(len(ps.dirs))
	ps.res.Congestion = ps.maxLoad()
	return ps
}

// walkPath replays demand i's stored path, adding delta to every edge it
// uses.
func (ps *PathSystem) walkPath(i int, dem Demand, delta int32) {
	cur := dem.Src
	for _, dir := range ps.dirs[ps.off[i]:ps.off[i+1]] {
		ps.load[edgeIdx(cur, dir)] += delta
		cur, _ = ps.topo.Neighbor(cur, dir)
	}
}

func (ps *PathSystem) maxLoad() int {
	m := int32(0)
	for _, l := range ps.load {
		if l > m {
			m = l
		}
	}
	return int(m)
}

// Accumulator accrues congestion and dilation one admitted packet at a
// time over the canonical dimension-order paths. Admit never allocates,
// so the simulator calls it from the admission path; when analysis is
// off the hook is a nil pointer and costs one branch.
type Accumulator struct {
	topo grid.Topology
	load []int32
	res  Result
}

// NewAccumulator returns an empty accumulator for the topology.
func NewAccumulator(topo grid.Topology) *Accumulator {
	return &Accumulator{topo: topo, load: make([]int32, 4*topo.N())}
}

// Admit accrues one src→dst demand: dilation takes the max with the
// pair's distance, and every edge of the canonical path counts one more
// unit of load.
func (a *Accumulator) Admit(src, dst grid.NodeID) {
	if d := a.topo.Dist(src, dst); d > a.res.Dilation {
		a.res.Dilation = d
	}
	for cur := src; cur != dst; {
		dir := canonicalDir(a.topo.Profitable(cur, dst))
		i := edgeIdx(cur, dir)
		a.load[i]++
		if l := int(a.load[i]); l > a.res.Congestion {
			a.res.Congestion = l
		}
		cur, _ = a.topo.Neighbor(cur, dir)
	}
}

// Result returns the congestion and dilation accrued so far.
func (a *Accumulator) Result() Result { return a.res }
