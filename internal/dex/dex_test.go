package dex

import (
	"testing"

	"meshroute/internal/grid"
	"meshroute/internal/sim"
)

// spyPolicy records what it is shown, to verify the information barrier.
type spyPolicy struct {
	views     []View
	offers    []OfferView
	initCalls int
	scheduled grid.Dir
}

func (s *spyPolicy) Name() string { return "spy" }

func (s *spyPolicy) InitNode(c *NodeCtx) {
	s.initCalls++
	// Node state may depend on the profitable outlinks of the packet
	// that originates there.
	if len(c.Views) > 0 {
		*c.State = uint64(c.Views[0].Profitable)
	}
}

func (s *spyPolicy) Schedule(c *NodeCtx) [grid.NumDirs]int {
	s.views = append(s.views, c.Views...)
	sched := [grid.NumDirs]int{-1, -1, -1, -1}
	for i := range c.Views {
		for d := grid.Dir(0); d < grid.NumDirs; d++ {
			if c.Views[i].Profitable.Has(d) && sched[d] < 0 {
				sched[d] = i
				s.scheduled = d
				break
			}
		}
	}
	return sched
}

func (s *spyPolicy) Accept(c *NodeCtx, offers []OfferView, acc []bool) {
	s.offers = append(s.offers, offers...)
	free := c.K - c.QueueLens[0]
	for i := range offers {
		if free > 0 {
			acc[i] = true
			free--
		}
	}
}

func (s *spyPolicy) Update(c *NodeCtx) {
	for i := range c.Views {
		c.SetPacketState(i, c.Views[i].State+1)
	}
}

func newNet(n, k int) *sim.Network {
	return sim.MustNew(sim.Config{
		Topo:            grid.NewSquareMesh(n),
		K:               k,
		Queues:          sim.CentralQueue,
		RequireMinimal:  true,
		CheckInvariants: true,
	})
}

func TestAdapterRoutesAndHidesDestination(t *testing.T) {
	net := newNet(8, 2)
	topo := net.Topo
	p := net.NewPacket(topo.ID(grid.XY(1, 1)), topo.ID(grid.XY(4, 5)))
	net.MustPlace(p)
	spy := &spyPolicy{}
	if _, err := net.Run(NewAdapter(spy), 100); err != nil {
		t.Fatal(err)
	}
	if !net.P.Delivered(p) {
		t.Fatal("undelivered")
	}
	if spy.initCalls != 1 {
		t.Fatalf("InitNode called %d times, want 1", spy.initCalls)
	}
	// The views never contain coordinates of the destination — only the
	// profitable sets, which at every point before delivery must be
	// nonempty and only North/East (destination is northeast).
	if len(spy.views) == 0 {
		t.Fatal("policy saw no views")
	}
	for _, v := range spy.views {
		if v.Profitable == 0 {
			t.Fatal("view with empty profitable set for undelivered packet")
		}
		if v.Profitable.Has(grid.South) || v.Profitable.Has(grid.West) {
			t.Fatalf("northeast-bound packet shows %v", v.Profitable)
		}
		if v.Source != net.P.Src[p] {
			t.Fatalf("source mismatch: %v", v.Source)
		}
	}
}

func TestAdapterPacketStateUpdates(t *testing.T) {
	net := newNet(8, 2)
	topo := net.Topo
	p := net.NewPacket(topo.ID(grid.XY(0, 0)), topo.ID(grid.XY(3, 0)))
	net.MustPlace(p)
	spy := &spyPolicy{}
	adapter := NewAdapter(spy)
	if err := net.StepOnce(adapter); err != nil {
		t.Fatal(err)
	}
	// Update incremented the state of the packet at its (new) node.
	if net.P.State[p] != 1 {
		t.Fatalf("packet state = %d, want 1", net.P.State[p])
	}
}

func TestAdapterNodeStateFromOriginProfitable(t *testing.T) {
	net := newNet(8, 2)
	topo := net.Topo
	src := topo.ID(grid.XY(2, 2))
	p := net.NewPacket(src, topo.ID(grid.XY(6, 2)))
	net.MustPlace(p)
	spy := &spyPolicy{}
	if err := net.StepOnce(NewAdapter(spy)); err != nil {
		t.Fatal(err)
	}
	want := uint64(grid.DirSet(0).Set(grid.East))
	if got := net.Node(src).State; got != want {
		t.Fatalf("node state = %d, want %d (profitable outlinks of origin packet)", got, want)
	}
}

func TestOfferViewsMeasuredFromSender(t *testing.T) {
	net := newNet(8, 2)
	topo := net.Topo
	// Two packets racing into the same node from different sides.
	a := net.NewPacket(topo.ID(grid.XY(2, 3)), topo.ID(grid.XY(6, 3))) // eastbound through (3,3)
	bq := net.NewPacket(topo.ID(grid.XY(3, 2)), topo.ID(grid.XY(3, 6)))
	net.MustPlace(a)
	net.MustPlace(bq)
	spy := &spyPolicy{}
	if _, err := net.Run(NewAdapter(spy), 100); err != nil {
		t.Fatal(err)
	}
	if len(spy.offers) == 0 {
		t.Fatal("no offers observed")
	}
	for _, o := range spy.offers {
		// Profitable-from-sender always contains the travel direction
		// for a minimal router.
		if !o.Profitable.Has(o.Travel) {
			t.Fatalf("offer travel %v not in profitable-from-sender %v", o.Travel, o.Profitable)
		}
	}
}

// The decisive property: a dex policy cannot distinguish two networks whose
// packets have exchanged destinations with identical profitable views. Run
// the same instance with destinations swapped between two same-view packets
// and check the trajectories coincide while the views are identical.
func TestExchangeInvisibility(t *testing.T) {
	run := func(swap bool) []grid.NodeID {
		net := newNet(8, 3)
		topo := net.Topo
		d1, d2 := topo.ID(grid.XY(6, 6)), topo.ID(grid.XY(7, 5))
		if swap {
			d1, d2 = d2, d1
		}
		a := net.NewPacket(topo.ID(grid.XY(0, 0)), d1)
		b := net.NewPacket(topo.ID(grid.XY(0, 1)), d2)
		net.MustPlace(a)
		net.MustPlace(b)
		spy := &spyPolicy{}
		adapter := NewAdapter(spy)
		// Both packets northeast-bound with both dims profitable for
		// the first several steps: views identical, so the policy's
		// decisions must be identical. Track positions step by step
		// while views coincide.
		var trace []grid.NodeID
		for i := 0; i < 4; i++ {
			if err := net.StepOnce(adapter); err != nil {
				t.Fatal(err)
			}
			trace = append(trace, net.P.At[a], net.P.At[b])
		}
		return trace
	}
	t1, t2 := run(false), run(true)
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("exchange visible at %d: %v vs %v", i, t1, t2)
		}
	}
}
