// Package dex is the destination-exchangeable routing framework of
// Chinn–Leighton–Tompa Section 2. A destination-exchangeable algorithm's
// outqueue policy, inqueue policy, and state transitions may depend only on
//
//   - the states, source addresses, and profitable outlinks of packets, and
//   - the state of the node,
//
// never on full destination addresses. Package dex enforces this at the
// type level: policies receive View values (which omit the destination) and
// an adapter translates them to the sim engine. Lemma 10 of the paper —
// that exchanging the destinations of two packets with identical profitable
// outlinks is invisible to the algorithm — therefore holds for every policy
// written against this package, by construction.
//
// The adapter is the sole boundary between policies and the engine's
// index-based packet representation: it walks the node's sim.PacketID queue
// slots, reads the struct-of-arrays store (including Dst, which only the
// adapter may touch) to build View values, and maps a View.Index back to
// the same queue position the engine will read from Schedule. A View is
// therefore a pure projection of store row PacketID: the index is stable
// for the packet's lifetime, row 0 is the engine's reserved sentinel and
// never appears in a queue, and SetPacketState writes through to the store
// row the view was built from.
package dex

import (
	"meshroute/internal/grid"
	"meshroute/internal/sim"
)

// View is the information a destination-exchangeable policy may observe
// about one resident packet. It deliberately omits the destination.
type View struct {
	// Index is the packet's index in the node (use it in Schedule).
	Index int
	// Source is the packet's source address (allowed by the model).
	Source grid.NodeID
	// State is the packet's algorithm-owned state word.
	State uint64
	// Arrived is the packet's last travel direction (NoDir at origin).
	// The model permits this: it is information the node could have
	// recorded in the packet state upon arrival.
	Arrived grid.Dir
	// ArrivedStep is the step of the last hop (likewise recordable).
	ArrivedStep int
	// QTag is the queue holding the packet (sim.OriginTag for packets
	// that have not moved, under the per-inlink model).
	QTag uint8
	// Profitable is the set of outlinks that move the packet closer to
	// its destination — the only destination information available.
	Profitable grid.DirSet
}

// OfferView describes a packet scheduled to enter the node, as visible to
// the inqueue policy. Profitable outlinks are measured from the node the
// packet is coming from, as the paper specifies.
type OfferView struct {
	// From is the sending node.
	From grid.NodeID
	// Travel is the direction of travel; the packet arrives on the
	// Travel.Opposite() inlink.
	Travel grid.Dir
	// Source is the packet's source address.
	Source grid.NodeID
	// State is the packet's state word.
	State uint64
	// Profitable is the packet's profitable-outlink set measured at the
	// sending node.
	Profitable grid.DirSet
}

// NodeCtx is the per-node context handed to policies. Policies may read
// everything and may mutate State, Extra and packet states (via SetPacket-
// State); they must not retain the context beyond the call.
type NodeCtx struct {
	// ID is the node identifier.
	ID grid.NodeID
	// Coord is the node coordinate.
	Coord grid.Coord
	// Step is the current step number (1-based; 0 in InitNode).
	Step int
	// K is the per-queue capacity.
	K int
	// Queues is the queue model.
	Queues sim.QueueModel
	// State is the node's state word; mutate freely.
	State *uint64
	// Extra is the node's rich state; mutate freely.
	Extra *interface{}
	// Views describes the resident packets, in queue (FIFO) order.
	Views []View
	// Outlinks is the set of outlinks that exist at this node.
	Outlinks grid.DirSet
	// Up is the subset of Outlinks whose links are currently up. Without
	// fault injection Up == Outlinks. A fault-aware policy may consult it
	// (link status is locally observable at the node); policies that
	// ignore it behave identically with and without faults — exactly the
	// Section 2 model.
	Up grid.DirSet
	// QueueLens holds the current occupancy of each queue tag.
	QueueLens [5]int

	net  *sim.Network
	pids []sim.PacketID
}

// SetPacketState overwrites the state word of the i-th resident packet.
func (c *NodeCtx) SetPacketState(i int, s uint64) {
	c.net.P.State[c.pids[i]] = s
	c.Views[i].State = s
}

// Policy is a destination-exchangeable routing algorithm.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// InitNode sets the initial node state and the initial states of the
	// packets originating at the node (which, per the model, may depend
	// only on the node's initial state and each packet's own source and
	// profitable outlinks).
	InitNode(c *NodeCtx)
	// Schedule is the outqueue policy: for each direction, the index
	// (into c.Views) of the packet to transmit, or -1.
	Schedule(c *NodeCtx) [grid.NumDirs]int
	// Accept is the inqueue policy: accept[i] reports whether offers[i]
	// is admitted. accept arrives with len(offers) entries, all false;
	// the policy sets the entries it admits. It must never overflow a
	// queue.
	Accept(c *NodeCtx, offers []OfferView, accept []bool)
	// Update is the end-of-step state transition.
	Update(c *NodeCtx)
}

// Adapter lifts a Policy to a sim.Algorithm, computing the profitable-
// outlink views the policy is allowed to see. Use one adapter per run.
type Adapter struct {
	// P is the wrapped policy.
	P Policy

	ctx      NodeCtx
	offerBuf []OfferView
	viewBuf  []View
}

// NewAdapter wraps a policy for use with the sim engine.
func NewAdapter(p Policy) *Adapter { return &Adapter{P: p} }

// Name returns the wrapped policy's name.
func (a *Adapter) Name() string { return a.P.Name() }

func (a *Adapter) fill(net *sim.Network, n *sim.Node) *NodeCtx {
	c := &a.ctx
	c.ID = n.ID
	c.Coord = net.Topo.CoordOf(n.ID)
	c.Step = net.Step()
	c.K = net.K
	c.Queues = net.Queues
	c.State = &n.State
	c.Extra = &n.Extra
	c.net = net
	c.pids = net.PacketsOf(n)
	c.Outlinks = 0
	for d := grid.Dir(0); d < grid.NumDirs; d++ {
		if _, ok := net.Topo.Neighbor(n.ID, d); ok {
			c.Outlinks = c.Outlinks.Set(d)
		}
	}
	c.Up = c.Outlinks &^ net.DownOutlinks(n.ID)
	for tag := uint8(0); tag < 5; tag++ {
		c.QueueLens[tag] = n.QueueLen(tag)
	}
	st := &net.P
	a.viewBuf = a.viewBuf[:0]
	for i, p := range c.pids {
		a.viewBuf = append(a.viewBuf, View{
			Index:       i,
			Source:      st.Src[p],
			State:       st.State[p],
			Arrived:     st.Arrived[p],
			ArrivedStep: int(st.ArrivedStep[p]),
			QTag:        st.QTag[p],
			Profitable:  net.Topo.Profitable(n.ID, st.Dst[p]),
		})
	}
	c.Views = a.viewBuf
	return c
}

// InitNode implements sim.Algorithm.
func (a *Adapter) InitNode(net *sim.Network, n *sim.Node) {
	a.P.InitNode(a.fill(net, n))
}

// Schedule implements sim.Algorithm.
func (a *Adapter) Schedule(net *sim.Network, n *sim.Node) [grid.NumDirs]int {
	return a.P.Schedule(a.fill(net, n))
}

// Accept implements sim.Algorithm.
func (a *Adapter) Accept(net *sim.Network, n *sim.Node, offers []sim.Offer, accept []bool) {
	c := a.fill(net, n)
	st := &net.P
	a.offerBuf = a.offerBuf[:0]
	for _, o := range offers {
		a.offerBuf = append(a.offerBuf, OfferView{
			From:       o.From,
			Travel:     o.Travel,
			Source:     st.Src[o.P],
			State:      st.State[o.P],
			Profitable: net.Topo.Profitable(o.From, st.Dst[o.P]),
		})
	}
	a.P.Accept(c, a.offerBuf, accept)
}

// Update implements sim.Algorithm.
func (a *Adapter) Update(net *sim.Network, n *sim.Node) {
	a.P.Update(a.fill(net, n))
}

// CloneForWorker implements sim.ParallelCloner: each worker gets a fresh
// adapter (private ctx and view buffers) around the same policy. This is
// safe exactly when the policy itself is node-local, which the dex model
// requires of Schedule and Update (per scheduling node) and of Accept
// (per target node — clones drive Accept on disjoint target shards in
// the pipeline's dispatch phase).
func (a *Adapter) CloneForWorker() sim.Algorithm { return NewAdapter(a.P) }

var (
	_ sim.Algorithm      = (*Adapter)(nil)
	_ sim.ParallelCloner = (*Adapter)(nil)
)
