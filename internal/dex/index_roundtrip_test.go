package dex

import (
	"testing"
	"testing/quick"

	"meshroute/internal/fault"
	"meshroute/internal/grid"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

// roundtripPolicy is a dex policy that, on every callback, re-derives each
// View from the adapter's PacketID slice and the store and checks the two
// agree — the index round-trip property: Views[i] is exactly the projection
// of store row pids[i], and pids[i] is the packet the engine will move when
// Schedule returns i.
type roundtripPolicy struct {
	t *testing.T
	// pidOf pins the PacketID first observed for each external packet ID;
	// the handle must stay stable for the packet's whole lifetime.
	pidOf map[int32]sim.PacketID
}

func (r *roundtripPolicy) Name() string { return "roundtrip" }

func (r *roundtripPolicy) verify(c *NodeCtx) {
	st := &c.net.P
	if len(c.Views) != len(c.pids) {
		r.t.Fatalf("step %d node %v: %d views over %d packet IDs", c.Step, c.Coord, len(c.Views), len(c.pids))
	}
	for i, v := range c.Views {
		p := c.pids[i]
		if p == sim.NoPacket {
			r.t.Fatalf("step %d node %v: reserved sentinel in queue slot %d", c.Step, c.Coord, i)
		}
		if v.Index != i {
			r.t.Fatalf("step %d node %v: Views[%d].Index = %d", c.Step, c.Coord, i, v.Index)
		}
		if v.Source != st.Src[p] || v.State != st.State[p] || v.Arrived != st.Arrived[p] ||
			v.ArrivedStep != int(st.ArrivedStep[p]) || v.QTag != st.QTag[p] {
			r.t.Fatalf("step %d node %v: Views[%d] diverged from store row %d", c.Step, c.Coord, i, p)
		}
		if want := c.net.Topo.Profitable(c.ID, st.Dst[p]); v.Profitable != want {
			r.t.Fatalf("step %d node %v: Views[%d].Profitable = %v, store says %v", c.Step, c.Coord, i, v.Profitable, want)
		}
		if prev, ok := r.pidOf[p.ID()]; ok && prev != p {
			r.t.Fatalf("packet %d changed handle %d -> %d: index not stable for lifetime", p.ID(), prev, p)
		}
		r.pidOf[p.ID()] = p
	}
}

func (r *roundtripPolicy) InitNode(c *NodeCtx) { r.verify(c) }

func (r *roundtripPolicy) Schedule(c *NodeCtx) [grid.NumDirs]int {
	r.verify(c)
	sched := [grid.NumDirs]int{-1, -1, -1, -1}
	for i := range c.Views {
		for d := grid.Dir(0); d < grid.NumDirs; d++ {
			if c.Views[i].Profitable.Has(d) && sched[d] < 0 {
				sched[d] = i
				break
			}
		}
	}
	return sched
}

func (r *roundtripPolicy) Accept(c *NodeCtx, offers []OfferView, acc []bool) {
	free := c.K - c.QueueLens[0]
	for i := range offers {
		if free > 0 {
			acc[i] = true
			free--
		}
	}
}

func (r *roundtripPolicy) Update(c *NodeCtx) {
	r.verify(c)
	// Exercise the write-through path: SetPacketState must land in the
	// store row the view projects.
	for i := range c.Views {
		c.SetPacketState(i, c.Views[i].State+1)
	}
	st := &c.net.P
	for i, v := range c.Views {
		if st.State[c.pids[i]] != v.State {
			r.t.Fatalf("SetPacketState did not write through to store row %d", c.pids[i])
		}
	}
}

// TestIndexRoundTripUnderFaultsAndCancellation is the property test for the
// index-based representation: across random workloads, seeded fault
// schedules (dropped sends, stalled nodes) and a mid-run pause/resume
// (cancellation), every View handed to a policy round-trips to the store
// row the adapter built it from, and a packet's PacketID never changes.
func TestIndexRoundTripUnderFaultsAndCancellation(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := int64(seedRaw)
		const n = 8
		topo := grid.NewSquareMesh(n)
		sched, err := fault.Generate(topo, fault.Config{
			Seed: seed, Horizon: 40,
			LinkFailures: 5, MeanDownSteps: 6,
			NodeStalls: 1, MeanStallSteps: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		net := sim.MustNew(sim.Config{
			Topo: topo, K: 3, Queues: sim.CentralQueue,
			RequireMinimal: true, CheckInvariants: true, Faults: sched,
		})
		if err := workload.Random(topo, seed).Place(net); err != nil {
			t.Fatal(err)
		}
		pol := &roundtripPolicy{t: t, pidOf: map[int32]sim.PacketID{}}
		alg := NewAdapter(pol)
		// Pause mid-run, then resume: the pause must not disturb the
		// index mapping (RunPartial returns without error at the budget,
		// exactly like a cancelled runner stopping between steps). The
		// second leg is budgeted too — the round-trip policy is a
		// deliberately naive scheduler, not a livelock-free router, so
		// the property is index stability across the run, not delivery.
		if _, err := net.RunPartial(alg, 5); err != nil {
			t.Fatal(err)
		}
		if _, err := net.RunPartial(alg, 2000); err != nil {
			t.Fatal(err)
		}
		// Closing the loop: the recorded handles still resolve to their
		// external IDs, delivered packets included.
		for id, p := range pol.pidOf {
			if p.ID() != id {
				t.Fatalf("handle %d resolves to external ID %d, recorded under %d", p, p.ID(), id)
			}
		}
		return len(pol.pidOf) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
