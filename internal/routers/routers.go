// Package routers implements the routing algorithms studied in the paper:
//
//   - DimOrderFIFO: the dimension-order algorithm with FIFO outqueue and
//     round-robin inqueue policies — the paper's canonical example of a
//     destination-exchangeable algorithm (Section 2).
//   - ZigZag: the minimal adaptive example from Section 2 — a packet moves
//     in one profitable direction until blocked by congestion, then
//     alternates to its other profitable direction.
//   - Thm15: the destination-exchangeable dimension-order router of
//     Theorem 15, with four incoming queues of size k, straight-priority
//     outqueue policy, and the O(n²/k + n) worst-case bound.
//   - DimOrderFF: dimension-order routing with the farthest-first outqueue
//     policy (uses full destination distances, so it is *not*
//     destination-exchangeable; Section 5 lower-bounds it anyway).
//   - HotPotato: a simple deterministic deflection router — nonminimal and
//     destination-exchangeable, demonstrating why Theorem 14 requires the
//     minimality assumption (cf. the Bar-Noy et al. O(n^{3/2}) algorithm).
//
// The destination-exchangeable routers are dex.Policy implementations; use
// dex.NewAdapter to run them. The others implement sim.Algorithm directly.
package routers

import (
	"meshroute/internal/dex"
	"meshroute/internal/grid"
)

// DimOrderWant returns the outlink a dimension-order (row-first) packet
// wants, given only its profitable outlinks: the horizontal profitable
// direction if one exists, otherwise the vertical one, otherwise NoDir.
func DimOrderWant(prof grid.DirSet) grid.Dir {
	switch {
	case prof.Has(grid.East):
		return grid.East
	case prof.Has(grid.West):
		return grid.West
	case prof.Has(grid.North):
		return grid.North
	case prof.Has(grid.South):
		return grid.South
	}
	return grid.NoDir
}

// acceptRoundRobin implements the round-robin inqueue policy of Section 2
// for a single central queue, extended with a "swap" rule that prevents
// head-on buffer deadlock:
//
//   - If this node scheduled a packet toward the sender of an offer, the
//     offer is accepted unconditionally. The existence of the offer proves
//     the sender scheduled toward us too, so by symmetry the sender accepts
//     our packet as well: both queues trade one packet and occupancy is
//     unchanged, which can never overflow.
//   - Remaining offers are accepted while there is room, rotating over
//     inlinks with the rotation position kept in the node state.
//
// Both rules use only node state, schedules and offered packets' visible
// fields, so the policy remains destination-exchangeable. sched must be the
// node's own outqueue decision for this step (policies are pure functions
// of the context, so the caller recomputes it).
func acceptRoundRobin(c *dex.NodeCtx, offers []dex.OfferView, acc []bool, sched [grid.NumDirs]int) {
	free := c.K - c.QueueLens[0]
	for i, o := range offers {
		senderDir := o.Travel.Opposite()
		if sched[senderDir] >= 0 {
			acc[i] = true // swap: our packet to them departs for sure
		}
	}
	if free <= 0 {
		return
	}
	start := grid.Dir(*c.State % grid.NumDirs)
	for j := grid.Dir(0); j < grid.NumDirs && free > 0; j++ {
		inlink := (start + j) % grid.NumDirs
		for i, o := range offers {
			if acc[i] || o.Travel.Opposite() != inlink {
				continue
			}
			acc[i] = true
			free--
			break
		}
	}
}

// rotate advances the round-robin counter stored in the node state.
func rotate(c *dex.NodeCtx) { *c.State = (*c.State + 1) % grid.NumDirs }

// acceptDimOrderReserving is the inqueue policy used by the dimension-order
// routers over a central queue. On top of the swap rule of
// acceptRoundRobin, it reserves one queue slot for vertically-travelling
// packets: a horizontally-travelling offer is accepted only if at least one
// slot would remain free afterwards.
//
// Under dimension order, vertical (column-phase) packets never turn back
// into a row, so their waiting chains run along a single column and end at
// a delivery or a free slot — with the reserved slot they always drain, and
// every node-buffer wait cycle (which necessarily mixes row and column
// segments) is broken. Head-on conflicts within a class are resolved by
// the swap rule. This keeps the k >= 2 central-queue router deadlock-free
// in practice; with k = 1 there is no slot to reserve and dimension-order
// central-queue routing can wedge, which is precisely why Theorem 15 moves
// to four per-inlink queues.
func acceptDimOrderReserving(c *dex.NodeCtx, offers []dex.OfferView, acc []bool, sched [grid.NumDirs]int) {
	for i, o := range offers {
		if sched[o.Travel.Opposite()] >= 0 {
			acc[i] = true // swap: occupancy-neutral
		}
	}
	occ := c.QueueLens[0]
	start := grid.Dir(*c.State % grid.NumDirs)
	for j := grid.Dir(0); j < grid.NumDirs; j++ {
		inlink := (start + j) % grid.NumDirs
		for i, o := range offers {
			if acc[i] || o.Travel.Opposite() != inlink {
				continue
			}
			if o.Travel.Horizontal() {
				if occ < c.K-1 {
					acc[i] = true
					occ++
				}
			} else if occ < c.K {
				acc[i] = true
				occ++
			}
			break
		}
	}
}
