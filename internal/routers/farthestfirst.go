package routers

import (
	"meshroute/internal/grid"
	"meshroute/internal/sim"
)

// DimOrderFF is dimension-order routing with the farthest-first outqueue
// policy: the next packet to advance in a dimension is the one with the
// farthest still to go in that dimension (Leighton, and Section 5 of the
// paper). It inspects full destination distances, so it is NOT
// destination-exchangeable — it implements sim.Algorithm directly — yet
// the Section 5 construction still forces Ω(n²/k) steps on it.
//
// The inqueue policy accepts while the central queue has room, preferring
// the offers that have farthest to go (ties broken by inlink order).
type DimOrderFF struct{}

// Name implements sim.Algorithm.
func (DimOrderFF) Name() string { return "dimorder-farthest-first" }

// InitNode implements sim.Algorithm.
func (DimOrderFF) InitNode(net *sim.Network, n *sim.Node) {}

// Update implements sim.Algorithm.
func (DimOrderFF) Update(net *sim.Network, n *sim.Node) {}

// remaining returns how far packet p still has to travel in the dimension
// of direction d, from node at coordinate c.
func remaining(net *sim.Network, c grid.Coord, p sim.PacketID, d grid.Dir) int {
	dc := net.Topo.CoordOf(net.P.Dst[p])
	if d.Horizontal() {
		return absInt(dc.X - c.X)
	}
	return absInt(dc.Y - c.Y)
}

// Schedule implements the farthest-first outqueue policy under dimension
// order: for each outlink, among the packets wanting it, pick the one with
// the farthest to go in that dimension.
func (DimOrderFF) Schedule(net *sim.Network, n *sim.Node) [grid.NumDirs]int {
	sched := [grid.NumDirs]int{-1, -1, -1, -1}
	best := [grid.NumDirs]int{}
	here := net.Topo.CoordOf(n.ID)
	for i, p := range net.PacketsOf(n) {
		want := DimOrderWant(net.Topo.Profitable(n.ID, net.P.Dst[p]))
		if want == grid.NoDir {
			continue
		}
		r := remaining(net, here, p, want)
		if sched[want] < 0 || r > best[want] {
			sched[want] = i
			best[want] = r
		}
	}
	return sched
}

// Accept admits offers while the central queue has room, farthest first,
// with the same swap rule as the dex routers: an offer from a neighbor we
// scheduled a packet toward is accepted unconditionally, because by
// symmetry that neighbor accepts ours and occupancy is unchanged.
func (r DimOrderFF) Accept(net *sim.Network, n *sim.Node, offers []sim.Offer, acc []bool) {
	free := net.K - n.QueueLen(0)
	here := net.Topo.CoordOf(n.ID)
	sched := r.Schedule(net, n)
	for i, o := range offers {
		if sched[o.Travel.Opposite()] >= 0 {
			acc[i] = true
		}
	}
	// Select remaining offers by decreasing remaining distance in their
	// travel dimension, reserving one slot for column-phase packets as in
	// acceptDimOrderReserving.
	for free > 0 {
		bi, br := -1, -1
		for i, o := range offers {
			if acc[i] {
				continue
			}
			if o.Travel.Horizontal() && free <= 1 {
				continue // reserved slot stays vertical-only
			}
			if r := remaining(net, here, o.P, o.Travel); r > br {
				bi, br = i, r
			}
		}
		if bi < 0 {
			break
		}
		acc[bi] = true
		free--
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// CloneForWorker implements sim.ParallelCloner (the router is stateless).
func (r DimOrderFF) CloneForWorker() sim.Algorithm { return r }

var _ sim.ParallelCloner = DimOrderFF{}
