package routers

import (
	"meshroute/internal/dex"
	"meshroute/internal/grid"
	"meshroute/internal/sim"
)

// Thm15 is the destination-exchangeable dimension-order router of
// Theorem 15. Each node has four incoming queues (one per inlink), each of
// size k; the network must therefore be built with sim.PerInlinkQueues.
//
//   - Outqueue policy: packets trying to go straight have priority,
//     resolving ties FIFO.
//   - Inqueue policy: the North and South queues (which hold packets
//     travelling vertically) always accept — the straight-priority rule
//     guarantees they always have room. The East and West queues accept a
//     packet exactly when they hold fewer than k packets at the beginning
//     of the step.
//
// Theorem 15: this router delivers any permutation in O(n²/k + n) steps,
// matching the Ω(n²/k) lower bound for destination-exchangeable dimension
// order routers.
type Thm15 struct{}

// Name implements dex.Policy.
func (Thm15) Name() string { return "thm15-dimorder-bounded" }

// InitNode implements dex.Policy.
func (Thm15) InitNode(c *dex.NodeCtx) {}

// Schedule gives each outlink to the packet wanting it that has the highest
// priority: going straight beats turning or injecting; FIFO breaks ties.
func (Thm15) Schedule(c *dex.NodeCtx) [grid.NumDirs]int {
	sched := [grid.NumDirs]int{-1, -1, -1, -1}
	straight := [grid.NumDirs]bool{}
	for i := range c.Views {
		v := c.Views[i]
		want := DimOrderWant(v.Profitable)
		if want == grid.NoDir {
			continue
		}
		goesStraight := v.Arrived == want
		switch {
		case sched[want] < 0:
			sched[want] = i
			straight[want] = goesStraight
		case goesStraight && !straight[want]:
			// Straight priority preempts an earlier turning packet.
			sched[want] = i
			straight[want] = true
		}
	}
	return sched
}

// Accept always admits vertical traffic and admits horizontal traffic only
// if the target inqueue held fewer than k packets at the start of the step.
func (Thm15) Accept(c *dex.NodeCtx, offers []dex.OfferView, acc []bool) {
	for i, o := range offers {
		if !o.Travel.Horizontal() {
			acc[i] = true
			continue
		}
		tag := uint8(o.Travel.Opposite())
		acc[i] = c.QueueLens[tag] < c.K
	}
}

// Update implements dex.Policy (the router is stateless).
func (Thm15) Update(c *dex.NodeCtx) {}

var _ dex.Policy = Thm15{}

// Thm15Config returns the network configuration the Theorem 15 router
// requires: four incoming queues of capacity k per node.
func Thm15Config(topo grid.Topology, k int) sim.Config {
	return sim.Config{
		Topo:            topo,
		K:               k,
		Queues:          sim.PerInlinkQueues,
		RequireMinimal:  true,
		CheckInvariants: true,
	}
}
