package routers

import (
	"meshroute/internal/dex"
	"meshroute/internal/grid"
)

// ZigZag is the minimal adaptive example sketched in Section 2 of the
// paper: "each packet moves in one profitable direction until it is blocked
// by congestion, and then moves in its other profitable direction,
// continuing this alternation until it reaches its destination."
//
// The packet's current preference is kept in the packet state (it is a
// legal destination-exchangeable state: it is initialized from the packet's
// profitable outlinks and updated from whether the packet moved). The
// inqueue policy is round-robin over a central queue, as in DimOrderFIFO.
// Being adaptive does not save it: Theorem 14 applies, and the constructed
// permutation forces Ω(n²/k²) steps.
type ZigZag struct {
	// FaultAware makes the router treat a failed profitable outlink like
	// a congestion block: the packet detours to its other profitable
	// direction while one survives. With FaultAware false (the default)
	// the router ignores link status entirely and behaves bit-identically
	// to the original Section 2 policy.
	FaultAware bool
}

// Name implements dex.Policy.
func (r ZigZag) Name() string {
	if r.FaultAware {
		return "zigzag-adaptive-fa"
	}
	return "zigzag-adaptive"
}

// avail is the outlink mask the router routes over: every direction when
// fault-oblivious, only up links when fault-aware.
func (r ZigZag) avail(c *dex.NodeCtx) grid.DirSet {
	if r.FaultAware {
		return c.Up
	}
	return grid.AllDirs
}

// Packet state encoding: low 3 bits hold the preferred direction
// (grid.NoDir when unset).
const zzDirMask = 0x7

func zzPref(state uint64) grid.Dir { return grid.Dir(state & zzDirMask) }

func zzSetPref(state uint64, d grid.Dir) uint64 {
	return (state &^ zzDirMask) | uint64(d)
}

// zzWant returns the direction the packet wants this step: its preferred
// direction if still profitable (and not masked out by avail), otherwise
// the first remaining profitable one.
func zzWant(v dex.View, avail grid.DirSet) grid.Dir {
	prof := v.Profitable & avail
	if p := zzPref(v.State); p < grid.NumDirs && prof.Has(p) {
		return p
	}
	for d := grid.Dir(0); d < grid.NumDirs; d++ {
		if prof.Has(d) {
			return d
		}
	}
	return grid.NoDir
}

// InitNode seeds each origin packet's preference with its first profitable
// direction.
func (r ZigZag) InitNode(c *dex.NodeCtx) {
	avail := r.avail(c)
	for i := range c.Views {
		c.SetPacketState(i, zzSetPref(c.Views[i].State, zzWant(c.Views[i], avail)))
	}
}

// Schedule sends, on each outlink, the earliest-queued packet that wants it.
func (r ZigZag) Schedule(c *dex.NodeCtx) [grid.NumDirs]int {
	sched := [grid.NumDirs]int{-1, -1, -1, -1}
	avail := r.avail(c)
	for i := range c.Views {
		want := zzWant(c.Views[i], avail)
		if want != grid.NoDir && sched[want] < 0 {
			sched[want] = i
		}
	}
	return sched
}

// Accept implements the round-robin inqueue policy with the swap rule.
func (r ZigZag) Accept(c *dex.NodeCtx, offers []dex.OfferView, accept []bool) {
	acceptRoundRobin(c, offers, accept, r.Schedule(c))
}

// Update flips the preference of every packet that failed to move this step
// (the "blocked by congestion" alternation) and records the preference of
// packets that just arrived. Fault-aware, a down profitable outlink is
// excluded throughout, so a block on a failed link alternates the packet
// exactly like a congestion block.
func (r ZigZag) Update(c *dex.NodeCtx) {
	rotate(c)
	avail := r.avail(c)
	for i := range c.Views {
		v := c.Views[i]
		prof := v.Profitable & avail
		moved := v.ArrivedStep == c.Step && v.Arrived != grid.NoDir
		pref := zzPref(v.State)
		if moved {
			// Keep going the way it was going if still profitable.
			if !prof.Has(pref) {
				c.SetPacketState(i, zzSetPref(v.State, zzWant(v, avail)))
			}
			continue
		}
		// Blocked: alternate to the other profitable direction if the
		// packet has two.
		if prof.Count() == 2 {
			for d := grid.Dir(0); d < grid.NumDirs; d++ {
				if prof.Has(d) && d != pref {
					c.SetPacketState(i, zzSetPref(v.State, d))
					break
				}
			}
		} else if !prof.Has(pref) {
			c.SetPacketState(i, zzSetPref(v.State, zzWant(v, avail)))
		}
	}
}

var _ dex.Policy = ZigZag{}
