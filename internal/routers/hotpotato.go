package routers

import (
	"meshroute/internal/grid"
	"meshroute/internal/sim"
)

// HotPotato is a simple deterministic deflection ("hot potato") router: at
// every step each node forwards ALL packets it holds, assigning each packet
// a profitable outlink when one is free and deflecting it on any free
// outlink otherwise. Older packets (earlier injection, then lower ID)
// choose first, which guarantees global progress: the oldest packet in the
// network always advances along a minimal path, so routing terminates.
//
// Hot potato routers take nonminimal paths. They are destination-
// exchangeable (the assignment uses only profitable outlinks and the ages
// carried in packet state), which is exactly why Theorem 14 needs the
// minimality assumption: the paper notes that the O(n^{3/2}) deflection
// algorithm of Bar-Noy et al. is destination-exchangeable, so the
// restriction to minimal paths cannot be dropped. HotPotato plays that
// role as a runnable baseline.
//
// Build the network with a central queue of capacity >= 4 and
// RequireMinimal disabled.
type HotPotato struct{}

// Name implements sim.Algorithm.
func (HotPotato) Name() string { return "hot-potato" }

// InitNode implements sim.Algorithm.
func (HotPotato) InitNode(net *sim.Network, n *sim.Node) {}

// Update implements sim.Algorithm.
func (HotPotato) Update(net *sim.Network, n *sim.Node) {}

// Schedule forwards every resident packet: oldest packets pick their best
// profitable free outlink first; leftovers are deflected to any free
// outlink.
func (HotPotato) Schedule(net *sim.Network, n *sim.Node) [grid.NumDirs]int {
	sched := [grid.NumDirs]int{-1, -1, -1, -1}
	st := &net.P
	q := net.PacketsOf(n)
	// Order packets oldest first (InjectStep, then ID; PacketIDs are
	// assigned in ID order, so comparing handles breaks ties identically).
	order := make([]int, len(q))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := q[order[j-1]], q[order[j]]
			if st.InjectStep[a] > st.InjectStep[b] || (st.InjectStep[a] == st.InjectStep[b] && a > b) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	taken := [grid.NumDirs]bool{}
	assigned := make([]bool, len(q))
	// First pass: profitable outlinks, oldest first.
	for _, i := range order {
		prof := net.Topo.Profitable(n.ID, st.Dst[q[i]])
		for d := grid.Dir(0); d < grid.NumDirs; d++ {
			if prof.Has(d) && !taken[d] {
				sched[d] = i
				taken[d] = true
				assigned[i] = true
				break
			}
		}
	}
	// Second pass: deflect leftovers on any free outlink.
	for _, i := range order {
		if assigned[i] {
			continue
		}
		for d := grid.Dir(0); d < grid.NumDirs; d++ {
			if taken[d] {
				continue
			}
			if _, ok := net.Topo.Neighbor(n.ID, d); ok {
				sched[d] = i
				taken[d] = true
				assigned[i] = true
				break
			}
		}
	}
	return sched
}

// Accept admits everything: deflection nodes always forward all packets
// next step, so the queue never exceeds the node degree.
func (HotPotato) Accept(net *sim.Network, n *sim.Node, offers []sim.Offer, acc []bool) {
	for i := range acc {
		acc[i] = true
	}
}

// CloneForWorker implements sim.ParallelCloner (the router is stateless).
func (r HotPotato) CloneForWorker() sim.Algorithm { return r }

var _ sim.ParallelCloner = HotPotato{}

// HotPotatoConfig returns a network configuration suitable for the
// deflection router: central queue with room for one packet per inlink and
// no minimality requirement.
func HotPotatoConfig(topo grid.Topology) sim.Config {
	return sim.Config{
		Topo:            topo,
		K:               grid.NumDirs,
		Queues:          sim.CentralQueue,
		RequireMinimal:  false,
		CheckInvariants: true,
	}
}
