package routers

import (
	"errors"
	"testing"

	"meshroute/internal/dex"
	"meshroute/internal/fault"
	"meshroute/internal/grid"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

// FuzzRouteUnderFaults routes seeded random permutations with fuzz-chosen
// routers under fuzz-chosen randomized fault schedules, with the runtime
// invariant checker enabled. The property under test: for routers whose
// accept policy is fault-safe the invariant checker never fires, no matter
// which links fail or nodes stall. Partial delivery is legal under faults
// (a packet may be wedged behind a permanent failure), as is the typed
// unreachability error; any other error is an engine-invariant violation
// and fails the fuzz run.
//
// The rotation covers the swap-rule policies only. Thm15 is deliberately
// absent: its vertical inqueues accept unconditionally, relying on the
// straight-priority drain that a down outlink silently drops, and the
// resulting refusal cannot propagate back up a full column chain within
// one synchronous step — the fuzzer found the overflow within seconds
// (corpus entry fc7d56795c6b55ee). Theorem 15's queue bound presumes
// reliable links; see docs/ROBUSTNESS.md.
func FuzzRouteUnderFaults(f *testing.F) {
	f.Add(int64(1), int64(10), uint8(0), uint8(8), uint8(2), uint8(4), uint8(0))
	f.Add(int64(2), int64(20), uint8(1), uint8(10), uint8(3), uint8(8), uint8(64))
	f.Add(int64(3), int64(30), uint8(2), uint8(6), uint8(3), uint8(2), uint8(255))
	f.Add(int64(4), int64(40), uint8(3), uint8(12), uint8(2), uint8(12), uint8(32))
	f.Fuzz(func(t *testing.T, seed, faultSeed int64, routerRaw, nRaw, kRaw, linksRaw, permRaw uint8) {
		n := 4 + int(nRaw)%13 // 4..16
		k := 2 + int(kRaw)%3  // 2..4
		topo := grid.NewSquareMesh(n)
		perm := workload.Random(topo, seed)

		var alg sim.Algorithm
		var cfg sim.Config
		switch routerRaw % 3 {
		case 0:
			alg = dex.NewAdapter(DimOrderFIFO{})
			cfg = sim.Config{Topo: topo, K: k, Queues: sim.CentralQueue, RequireMinimal: true, CheckInvariants: true}
		case 1:
			if k < 3 {
				k = 3
			}
			alg = dex.NewAdapter(ZigZag{FaultAware: true})
			cfg = sim.Config{Topo: topo, K: k, Queues: sim.CentralQueue, RequireMinimal: true, CheckInvariants: true}
		default:
			alg = RandZigZag{Seed: uint64(seed), FaultAware: true}
			cfg = sim.Config{Topo: topo, K: k, Queues: sim.CentralQueue, RequireMinimal: true, CheckInvariants: true}
		}
		sched, err := fault.Generate(topo, fault.Config{
			Seed:           faultSeed,
			Horizon:        20 * n,
			LinkFailures:   1 + int(linksRaw)%(2*n),
			MeanDownSteps:  1 + n/2,
			PermanentFrac:  float64(permRaw) / 512, // 0 .. ~0.5
			NodeStalls:     int(linksRaw) % 3,
			MeanStallSteps: n,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = sched
		cfg.CheckInvariants = true
		net := sim.MustNew(cfg)
		if err := perm.Place(net); err != nil {
			t.Fatal(err)
		}
		_, err = net.RunPartial(alg, 500*n*n)
		var ue *sim.UnreachableError
		if err != nil && !errors.As(err, &ue) {
			t.Fatalf("engine invariant violated under faults: %v", err)
		}
		// Delivered packets must still be minimal, and the queue bound must
		// hold — faults drop moves, they never create or misplace packets.
		for _, p := range net.Packets() {
			if p.Delivered() && p.Hops != net.Topo.Dist(p.Src, p.Dst) {
				t.Fatalf("nonminimal delivery: packet %d", p.ID)
			}
		}
		if net.Metrics.MaxQueueLen > k {
			t.Fatalf("queue bound violated: %d > %d", net.Metrics.MaxQueueLen, k)
		}
	})
}
