package routers

import (
	"meshroute/internal/dex"
	"meshroute/internal/grid"
)

// StrayDimOrder is a destination-exchangeable router in the "Nonminimal
// extensions" class of Section 5: packets never move more than δ nodes
// beyond the rectangle spanned by their source and destination. It routes
// dimension order (horizontal first), and when a packet waiting to turn is
// blocked it may *overshoot* its turning column by up to δ columns in its
// original horizontal direction, sidestepping the congestion, then come
// back on (now profitable) links.
//
// The policy sees only profitable outlinks; the overshoot budget is kept in
// the packet state, updated from information the model allows (whether the
// packet moved, its profitable sets before and after) — so the router stays
// destination-exchangeable and falls under the Ω(n²/((δ+1)³k²)) bound.
type StrayDimOrder struct {
	// Delta is the stray budget δ >= 1.
	Delta int
}

// Name implements dex.Policy.
func (r StrayDimOrder) Name() string { return "stray-dimorder" }

// Packet state layout: bits 0..3 stray counter, bits 4..6 horizontal
// orientation (grid.Dir+1; 0 = unset).
const (
	strayCntMask  = 0xF
	strayDirShift = 4
	strayDirMask  = 0x7 << strayDirShift
)

func strayCount(s uint64) int { return int(s & strayCntMask) }

func strayOrient(s uint64) grid.Dir {
	v := (s & strayDirMask) >> strayDirShift
	if v == 0 {
		return grid.NoDir
	}
	return grid.Dir(v - 1)
}

func straySet(s uint64, cnt int, orient grid.Dir) uint64 {
	s &^= strayCntMask | strayDirMask
	s |= uint64(cnt) & strayCntMask
	if orient != grid.NoDir {
		s |= uint64(orient+1) << strayDirShift
	}
	return s
}

// InitNode records each origin packet's horizontal orientation (the
// horizontal profitable direction at its source; East for packets with
// none, so pure-vertical packets may still sidestep eastward).
func (r StrayDimOrder) InitNode(c *dex.NodeCtx) {
	for i := range c.Views {
		v := c.Views[i]
		orient := grid.East
		if v.Profitable.Has(grid.West) {
			orient = grid.West
		} else if v.Profitable.Has(grid.East) {
			orient = grid.East
		}
		c.SetPacketState(i, straySet(v.State, 0, orient))
	}
}

// want returns the packet's primary desired direction.
func (r StrayDimOrder) want(v dex.View) grid.Dir {
	return DimOrderWant(v.Profitable)
}

// strayWant returns the deflection direction if the packet has budget: its
// original horizontal orientation, taken only when that direction is no
// longer profitable (i.e. the move overshoots).
func (r StrayDimOrder) strayWant(c *dex.NodeCtx, v dex.View) grid.Dir {
	o := strayOrient(v.State)
	if o == grid.NoDir || v.Profitable.Has(o) || strayCount(v.State) >= r.Delta {
		return grid.NoDir
	}
	if !c.Outlinks.Has(o) {
		return grid.NoDir
	}
	return o
}

// Schedule fills each outlink with the first packet wanting it; packets
// whose primary want lost the contest may take their stray direction if
// the outlink is still free.
func (r StrayDimOrder) Schedule(c *dex.NodeCtx) [grid.NumDirs]int {
	sched := [grid.NumDirs]int{-1, -1, -1, -1}
	// Primary wants, FIFO.
	for i := range c.Views {
		if w := r.want(c.Views[i]); w != grid.NoDir && sched[w] < 0 {
			sched[w] = i
		}
	}
	// Deflections on leftover outlinks, FIFO among losers.
	taken := map[int]bool{}
	for d := grid.Dir(0); d < grid.NumDirs; d++ {
		if sched[d] >= 0 {
			taken[sched[d]] = true
		}
	}
	for i := range c.Views {
		if taken[i] {
			continue
		}
		if s := r.strayWant(c, c.Views[i]); s != grid.NoDir && sched[s] < 0 {
			sched[s] = i
			taken[i] = true
		}
	}
	return sched
}

// Accept is round-robin with the swap rule (central queue).
func (r StrayDimOrder) Accept(c *dex.NodeCtx, offers []dex.OfferView, accept []bool) {
	acceptRoundRobin(c, offers, accept, r.Schedule(c))
}

// Update maintains the stray counters: a move in the packet's orientation
// that was not profitable increments the counter (the packet is now past
// its destination column); a move against the orientation decrements it
// (coming back). Both are computable from the arrival direction and the
// current profitable set, information the model allows.
func (r StrayDimOrder) Update(c *dex.NodeCtx) {
	rotate(c)
	for i := range c.Views {
		v := c.Views[i]
		if v.ArrivedStep != c.Step || v.Arrived == grid.NoDir {
			continue
		}
		o := strayOrient(v.State)
		if o == grid.NoDir || !v.Arrived.Horizontal() {
			continue
		}
		cnt := strayCount(v.State)
		switch v.Arrived {
		case o:
			// Moving with the orientation: if the opposite is now
			// profitable, the move overshot the destination column.
			if v.Profitable.Has(o.Opposite()) {
				cnt++
			}
		case o.Opposite():
			// Coming back from an overshoot.
			if cnt > 0 {
				cnt--
			}
		}
		c.SetPacketState(i, straySet(v.State, cnt, o))
	}
}

var _ dex.Policy = StrayDimOrder{}
