package routers

import (
	"testing"

	"meshroute/internal/analysis"
	"meshroute/internal/grid"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

// scheduledCDBound is the pinned constant c for the offline baseline's
// makespan ≤ c·(C+D) guarantee on the workloads below (the Rothvoß
// schedule is O(C+D); this is the observed constant with headroom, and a
// regression that slows the replay past it fails here).
const scheduledCDBound = 3

func runScheduled(t *testing.T, topo grid.Topology, k int, perm *workload.Permutation, maxSteps int) (*sim.Network, *Scheduled) {
	t.Helper()
	net := sim.MustNew(sim.Config{
		Topo: topo, K: k, Queues: sim.CentralQueue,
		RequireMinimal: true, CheckInvariants: true,
	})
	if err := perm.Place(net); err != nil {
		t.Fatal(err)
	}
	alg := NewScheduled(0)
	if _, err := net.Run(alg, maxSteps); err != nil {
		t.Fatal(err)
	}
	return net, alg
}

// TestScheduledRoutesWithinCDBound routes structured and random
// workloads to completion and asserts the O(C+D) contract: makespan at
// most scheduledCDBound·(C+D), minimal paths, queues within k.
func TestScheduledRoutesWithinCDBound(t *testing.T) {
	type tc struct {
		name string
		topo grid.Topology
		perm *workload.Permutation
	}
	var cases []tc
	for _, n := range []int{4, 8, 12} {
		mesh := grid.NewSquareMesh(n)
		cases = append(cases,
			tc{name: "transpose", topo: mesh, perm: workload.Transpose(mesh)},
			tc{name: "reversal", topo: mesh, perm: workload.Reversal(mesh)},
		)
		for seed := int64(0); seed < 3; seed++ {
			cases = append(cases, tc{name: "random", topo: mesh, perm: workload.Random(mesh, seed)})
		}
		torus := grid.NewSquareTorus(n)
		cases = append(cases, tc{name: "torus-random", topo: torus, perm: workload.Random(torus, 9)})
	}
	for _, c := range cases {
		for _, k := range []int{2, 4} {
			n := c.topo.Width()
			net, alg := runScheduled(t, c.topo, k, c.perm, 50*n*n)
			for _, p := range net.Packets() {
				if want := net.Topo.Dist(p.Src, p.Dst); p.Hops != want {
					t.Fatalf("%s n=%d k=%d: packet %d took %d hops, minimal is %d", c.name, n, k, p.ID, p.Hops, want)
				}
			}
			if net.Metrics.MaxQueueLen > k {
				t.Fatalf("%s n=%d k=%d: queue %d > k", c.name, n, k, net.Metrics.MaxQueueLen)
			}
			res := alg.Result()
			if cd := res.CD(); net.Metrics.Makespan > scheduledCDBound*cd {
				t.Fatalf("%s n=%d k=%d: makespan %d > %d·(C+D)=%d (C=%d D=%d)",
					c.name, n, k, net.Metrics.Makespan, scheduledCDBound, scheduledCDBound*cd, res.Congestion, res.Dilation)
			}
			if net.Metrics.Makespan < res.Dilation {
				t.Fatalf("%s n=%d k=%d: makespan %d below dilation %d — impossible", c.name, n, k, net.Metrics.Makespan, res.Dilation)
			}
		}
	}
}

// TestScheduledMatchesAnalyze asserts the router's precomputed system is
// exactly the analysis package's canonical system (same demands, same
// deterministic construction — the phased system it replays), and that
// its dilation agrees with the greedy-improved Analyze result (greedy
// rewrites never change path lengths).
func TestScheduledMatchesAnalyze(t *testing.T) {
	topo := grid.NewSquareMesh(8)
	perm := workload.Transpose(topo)
	net, alg := runScheduled(t, topo, 2, perm, 5000)
	_ = net
	demands := make([]analysis.Demand, len(perm.Pairs))
	for i, pr := range perm.Pairs {
		demands[i] = analysis.Demand{Src: pr.Src, Dst: pr.Dst}
	}
	want := analysis.AnalyzeCanonical(topo, demands).Result()
	if got := alg.Result(); got != want {
		t.Fatalf("router system C=%d D=%d != canonical C=%d D=%d",
			got.Congestion, got.Dilation, want.Congestion, want.Dilation)
	}
	improved := analysis.Analyze(topo, demands).Result()
	if improved.Dilation != want.Dilation {
		t.Fatalf("greedy dilation %d != canonical %d", improved.Dilation, want.Dilation)
	}
	if improved.Congestion > want.Congestion {
		t.Fatalf("greedy congestion %d > canonical %d", improved.Congestion, want.Congestion)
	}
}

// TestScheduledSeedsDiffer sanity-checks that the delay seed matters
// (different seeds may change per-packet delivery steps) while every
// seed still meets the C+D bound.
func TestScheduledSeedsDiffer(t *testing.T) {
	topo := grid.NewSquareMesh(8)
	for seed := uint64(0); seed < 3; seed++ {
		net := sim.MustNew(sim.Config{
			Topo: topo, K: 2, Queues: sim.CentralQueue,
			RequireMinimal: true, CheckInvariants: true,
		})
		perm := workload.Random(topo, 3)
		if err := perm.Place(net); err != nil {
			t.Fatal(err)
		}
		alg := NewScheduled(seed)
		if _, err := net.Run(alg, 5000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if cd := alg.Result().CD(); net.Metrics.Makespan > scheduledCDBound*cd {
			t.Fatalf("seed %d: makespan %d > %d·(C+D)", seed, net.Metrics.Makespan, scheduledCDBound)
		}
	}
}

// TestScheduledParallelEquivalence pins that worker-sharded runs
// reproduce the serial outcome packet for packet (the ParallelCloner
// contract: the schedule is immutable shared state).
func TestScheduledParallelEquivalence(t *testing.T) {
	topo := grid.NewSquareMesh(12)
	perm := workload.Random(topo, 11)
	outcome := func(workers int) [][3]int {
		net := sim.MustNew(sim.Config{
			Topo: topo, K: 2, Queues: sim.CentralQueue,
			RequireMinimal: true, CheckInvariants: true, Workers: workers,
		})
		if err := perm.Place(net); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Run(NewScheduled(0), 20000); err != nil {
			t.Fatal(err)
		}
		var out [][3]int
		for _, p := range net.Packets() {
			out = append(out, [3]int{int(p.ID), p.DeliverStep, p.Hops})
		}
		return out
	}
	serial := outcome(0)
	for _, w := range []int{2, 4, 8} {
		got := outcome(w)
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d packets != serial %d", w, len(got), len(serial))
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: packet %d outcome %v != serial %v", w, i, got[i], serial[i])
			}
		}
	}
}
