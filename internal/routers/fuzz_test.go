package routers

import (
	"testing"

	"meshroute/internal/dex"
	"meshroute/internal/grid"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

// FuzzRouteRandomPermutation routes a seeded random permutation with a
// fuzz-chosen router and mesh size and asserts the engine invariants:
// delivery completeness within the step budget for the guaranteed routers,
// minimality, and queue bounds. Run with `go test -fuzz=FuzzRoute` for a
// proper fuzzing session; the seed corpus runs under plain `go test`.
func FuzzRouteRandomPermutation(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(8), uint8(1))
	f.Add(int64(2), uint8(1), uint8(12), uint8(2))
	f.Add(int64(3), uint8(2), uint8(6), uint8(3))
	f.Add(int64(4), uint8(3), uint8(9), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, routerRaw, nRaw, kRaw uint8) {
		n := 4 + int(nRaw)%13 // 4..16
		k := 1 + int(kRaw)%4  // 1..4
		topo := grid.NewSquareMesh(n)
		perm := workload.Random(topo, seed)

		var alg sim.Algorithm
		var cfg sim.Config
		guaranteed := false
		switch routerRaw % 4 {
		case 0:
			alg = dex.NewAdapter(Thm15{})
			cfg = Thm15Config(topo, k)
			guaranteed = true
		case 1:
			if k < 2 {
				k = 2 // central-queue dimension order needs the reserved slot
			}
			alg = dex.NewAdapter(DimOrderFIFO{})
			cfg = sim.Config{Topo: topo, K: k, Queues: sim.CentralQueue, RequireMinimal: true, CheckInvariants: true}
		case 2:
			if k < 3 {
				k = 3
			}
			alg = dex.NewAdapter(ZigZag{})
			cfg = sim.Config{Topo: topo, K: k, Queues: sim.CentralQueue, RequireMinimal: true, CheckInvariants: true}
		default:
			alg = DimOrderFF{}
			if k < 2 {
				k = 2
			}
			cfg = sim.Config{Topo: topo, K: k, Queues: sim.CentralQueue, RequireMinimal: true, CheckInvariants: true}
		}
		net := sim.MustNew(cfg)
		if err := perm.Place(net); err != nil {
			t.Fatal(err)
		}
		if _, err := net.RunPartial(alg, 500*n*n); err != nil {
			t.Fatalf("engine invariant violated: %v", err)
		}
		if guaranteed && !net.Done() {
			t.Fatalf("thm15 must deliver: %d/%d", net.DeliveredCount(), net.TotalPackets())
		}
		for _, p := range net.Packets() {
			if p.Delivered() && p.Hops != net.Topo.Dist(p.Src, p.Dst) {
				t.Fatalf("nonminimal delivery: packet %d", p.ID)
			}
		}
		if net.Metrics.MaxQueueLen > k {
			t.Fatalf("queue bound violated: %d > %d", net.Metrics.MaxQueueLen, k)
		}
	})
}
