package routers

import (
	"meshroute/internal/analysis"
	"meshroute/internal/grid"
	"meshroute/internal/sim"
)

// Scheduled is the offline path-scheduled baseline in the style of
// Rothvoß's simpler O(congestion + dilation) proof: before step 1 it
// computes a minimal path system for the whole instance (the canonical
// dimension-order system of internal/analysis), assigns every packet an
// initial random delay in [0, C) from a seeded hash of its ID, and then
// replays the schedule deterministically — each packet waits out its
// delay at its source and afterwards follows its precomputed path, with
// contention resolved by frame priority (smaller delay first, packet ID
// as the tiebreak). With delays spreading each edge's C packets over C
// start frames, the replay finishes in O(C+D) steps, which makes it the
// theory-grounded reference competitor for every online-capable router
// in the registry.
//
// The replayed system is the canonical one, not the greedy-improved
// system Analyze returns: canonical paths are phased (all horizontal
// hops before all vertical ones), which together with the reserved-slot
// admission rule shared with the dimension-order routers keeps the
// bounded-queue replay free of queue-dependency deadlock. Unphased
// minimal paths can form four-node full-queue cycles that no pairwise
// swap resolves (reversal on a 16×16 mesh at k=2 does exactly that).
//
// Scheduled inspects full destinations and global state, so it is NOT
// destination-exchangeable, and it is offline: it must see the whole
// instance up front, so it only accepts workloads that place every
// packet before step 1 (the scenario layer rejects dynamic workloads for
// it). A packet that somehow materializes later is routed canonically
// with zero delay, so the algorithm stays total.
type Scheduled struct {
	// Seed selects the delay stream; runs are deterministic per seed.
	Seed uint64

	state *scheduledState
}

// scheduledState is the precomputed schedule, built once at InitNode
// time and immutable afterwards, so worker clones can share it.
type scheduledState struct {
	built   bool
	ps      *analysis.PathSystem
	release []int32 // per PacketID: first step the packet may move is release+1
}

// NewScheduled returns a Scheduled router with the given delay seed.
func NewScheduled(seed uint64) *Scheduled {
	return &Scheduled{Seed: seed, state: &scheduledState{}}
}

// Name implements sim.Algorithm.
func (r *Scheduled) Name() string { return "scheduled" }

// InitNode implements sim.Algorithm: the first call (the engine runs
// InitNode serially, before step 1, on the original algorithm) builds
// the path system over every packet in the store and draws the delays.
func (r *Scheduled) InitNode(net *sim.Network, n *sim.Node) {
	st := r.state
	if st.built {
		return
	}
	st.built = true
	ps := &net.P
	demands := make([]analysis.Demand, ps.Len())
	for i := range demands {
		p := sim.PacketID(i + 1)
		demands[i] = analysis.Demand{Src: ps.Src[p], Dst: ps.Dst[p]}
	}
	st.ps = analysis.AnalyzeCanonical(net.Topo, demands)
	c := st.ps.Result().Congestion
	st.release = make([]int32, len(demands)+1)
	if c > 1 {
		for i := 1; i < len(st.release); i++ {
			st.release[i] = int32(splitmix64(r.Seed^uint64(i)) % uint64(c))
		}
	}
}

// Update implements sim.Algorithm.
func (r *Scheduled) Update(net *sim.Network, n *sim.Node) {}

// nextDir returns packet p's next hop along its precomputed path. A
// minimal-path packet's position on its path is exactly its hop count,
// so the router needs no mutable per-packet state. ok is false for a
// packet past its path's end or outside the precomputed instance.
func (st *scheduledState) nextDir(net *sim.Network, p sim.PacketID) (grid.Dir, int32, bool) {
	i := int(p) - 1
	if st.ps == nil || i >= st.ps.Len() {
		// Late arrival (dynamic injection the scenario layer should have
		// rejected): canonical dimension-order, no delay.
		prof := net.Topo.Profitable(net.P.At[p], net.P.Dst[p])
		for _, d := range [...]grid.Dir{grid.East, grid.West, grid.North, grid.South} {
			if prof.Has(d) {
				return d, 0, true
			}
		}
		return grid.NoDir, 0, false
	}
	path := st.ps.Path(i)
	hops := int(net.P.Hops[p])
	if hops >= len(path) {
		return grid.NoDir, 0, false
	}
	return path[hops], st.release[p], true
}

// Schedule implements the outqueue policy: for each outlink, among the
// resident packets whose path continues on it and whose delay has
// elapsed, send the one in the earliest frame (smallest delay, packet ID
// tiebreak).
func (r *Scheduled) Schedule(net *sim.Network, n *sim.Node) [grid.NumDirs]int {
	sched := [grid.NumDirs]int{-1, -1, -1, -1}
	var best [grid.NumDirs]uint64
	st := r.state
	t := net.Step()
	for i, p := range net.PacketsOf(n) {
		dir, rel, ok := st.nextDir(net, p)
		if !ok || t <= int(rel) {
			continue
		}
		key := uint64(rel)<<32 | uint64(p)
		if sched[dir] < 0 || key < best[dir] {
			sched[dir], best[dir] = i, key
		}
	}
	return sched
}

// Accept implements the inqueue policy: the swap rule shared with the
// other central-queue routers (an offer from a neighbor we scheduled a
// packet toward is accepted unconditionally — by symmetry that neighbor
// accepts ours, so occupancy is unchanged), then admission in frame
// priority order. Like the dimension-order routers, the last queue slot
// is reserved for vertically traveling packets: column-phase traffic is
// monotone per column (head-on pairs resolve by swap), so it always
// drains, and row-phase packets blocked on the reserved slot eventually
// find room — the discipline that keeps phased paths deadlock-free at
// bounded k.
func (r *Scheduled) Accept(net *sim.Network, n *sim.Node, offers []sim.Offer, acc []bool) {
	occ := n.QueueLen(0)
	st := r.state
	sched := r.Schedule(net, n)
	for i, o := range offers {
		if sched[o.Travel.Opposite()] >= 0 {
			acc[i] = true
		}
	}
	for {
		bi, bk := -1, uint64(0)
		for i, o := range offers {
			if acc[i] {
				continue
			}
			if o.Travel.Horizontal() {
				if occ >= net.K-1 {
					continue
				}
			} else if occ >= net.K {
				continue
			}
			rel := int32(0)
			if int(o.P) < len(st.release) {
				rel = st.release[o.P]
			}
			if k := uint64(rel)<<32 | uint64(o.P); bi < 0 || k < bk {
				bi, bk = i, k
			}
		}
		if bi < 0 {
			break
		}
		acc[bi] = true
		occ++
	}
}

// Result returns the congestion/dilation of the precomputed path system
// (zero before the first step has initialized the schedule).
func (r *Scheduled) Result() analysis.Result {
	if r.state.ps == nil {
		return analysis.Result{}
	}
	return r.state.ps.Result()
}

// CloneForWorker implements sim.ParallelCloner: the schedule is built
// serially at InitNode time and read-only afterwards, so clones share it.
func (r *Scheduled) CloneForWorker() sim.Algorithm { return r }

var _ sim.ParallelCloner = (*Scheduled)(nil)
