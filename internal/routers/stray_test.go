package routers

import (
	"testing"

	"meshroute/internal/dex"
	"meshroute/internal/grid"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

func strayConfig(n, k, delta int) sim.Config {
	return sim.Config{
		Topo:            grid.NewSquareMesh(n),
		K:               k,
		Queues:          sim.CentralQueue,
		RequireMinimal:  false,
		MaxStray:        delta,
		CheckInvariants: true,
	}
}

func TestStrayStateEncoding(t *testing.T) {
	s := straySet(0, 3, grid.West)
	if strayCount(s) != 3 || strayOrient(s) != grid.West {
		t.Fatalf("cnt=%d orient=%v", strayCount(s), strayOrient(s))
	}
	s = straySet(s, 0, grid.East)
	if strayCount(s) != 0 || strayOrient(s) != grid.East {
		t.Fatal("update failed")
	}
	if strayOrient(0) != grid.NoDir {
		t.Fatal("zero state must have no orientation")
	}
}

func TestStrayRoutesRandomPermutations(t *testing.T) {
	for _, n := range []int{8, 16} {
		for _, delta := range []int{1, 2} {
			perm := workload.Random(grid.NewSquareMesh(n), int64(n+delta))
			net := sim.MustNew(strayConfig(n, 3, delta))
			if err := perm.Place(net); err != nil {
				t.Fatal(err)
			}
			alg := dex.NewAdapter(StrayDimOrder{Delta: delta})
			if _, err := net.Run(alg, 200*n*n); err != nil {
				t.Fatalf("n=%d delta=%d: %v", n, delta, err)
			}
		}
	}
}

// The engine's MaxStray validator guarantees the router honors its budget;
// this test provokes straying and confirms both that it happens and that
// the validator stays silent.
func TestStrayActuallyStrays(t *testing.T) {
	n, delta := 10, 2
	net := sim.MustNew(strayConfig(n, 1, delta))
	topo := net.Topo
	// A column of northbound packets blocks the turner's destination
	// column at its turning point.
	for y := 0; y < 5; y++ {
		net.MustPlace(net.NewPacket(topo.ID(grid.XY(4, y)), topo.ID(grid.XY(4, 9-y))))
	}
	turner := net.NewPacket(topo.ID(grid.XY(0, 2)), topo.ID(grid.XY(4, 8)))
	net.MustPlace(turner)
	alg := dex.NewAdapter(StrayDimOrder{Delta: delta})
	maxX := 0
	for i := 0; i < 400 && !net.Done(); i++ {
		if err := net.StepOnce(alg); err != nil {
			t.Fatal(err)
		}
		if c := topo.CoordOf(net.P.At[turner]); c.X > maxX {
			maxX = c.X
		}
	}
	if !net.Done() {
		t.Fatal("did not finish")
	}
	if int(net.P.Hops[turner]) <= topo.Dist(net.P.Src[turner], net.P.Dst[turner]) && maxX <= 4 {
		t.Log("turner was never forced to stray (acceptable but unexpected)")
	}
	if maxX > 4+delta {
		t.Fatalf("strayed to x=%d, budget allows %d", maxX, 4+delta)
	}
}

// With zero budget the router is plain minimal dimension order.
func TestStrayZeroBudgetNeverStrays(t *testing.T) {
	n := 12
	perm := workload.Random(grid.NewSquareMesh(n), 3)
	net := sim.MustNew(sim.Config{
		Topo: grid.NewSquareMesh(n), K: 3, Queues: sim.CentralQueue,
		RequireMinimal: true, CheckInvariants: true, // minimality enforced
	})
	if err := perm.Place(net); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(dex.NewAdapter(StrayDimOrder{Delta: 0}), 200*n*n); err != nil {
		t.Fatal(err)
	}
	for _, p := range net.Packets() {
		if p.Hops != net.Topo.Dist(p.Src, p.Dst) {
			t.Fatalf("packet %d nonminimal with zero budget", p.ID)
		}
	}
}

// Engine-level MaxStray rejection: a router exceeding the budget is caught.
func TestMaxStrayValidatorRejects(t *testing.T) {
	n := 8
	net := sim.MustNew(strayConfig(n, 2, 1))
	topo := net.Topo
	// Westbound packet: every east move exceeds the rectangle, so the
	// second one exceeds MaxStray=1.
	net.MustPlace(net.NewPacket(topo.ID(grid.XY(2, 2)), topo.ID(grid.XY(0, 2))))
	err := error(nil)
	for i := 0; i < 10 && err == nil; i++ {
		err = net.StepOnce(alwaysEast{})
	}
	if err == nil {
		t.Fatal("budget violation must be detected")
	}
}

type alwaysEast struct{ greedyStub }

func (alwaysEast) Schedule(net *sim.Network, n *sim.Node) [grid.NumDirs]int {
	sched := [grid.NumDirs]int{-1, -1, -1, -1}
	if n.Len() > 0 {
		if _, ok := net.Topo.Neighbor(n.ID, grid.East); ok {
			sched[grid.East] = 0
		}
	}
	return sched
}

type greedyStub struct{}

func (greedyStub) Name() string                           { return "stub" }
func (greedyStub) InitNode(net *sim.Network, n *sim.Node) {}
func (greedyStub) Update(net *sim.Network, n *sim.Node)   {}
func (greedyStub) Accept(net *sim.Network, n *sim.Node, offers []sim.Offer, acc []bool) {
	for i := range acc {
		acc[i] = true
	}
}
