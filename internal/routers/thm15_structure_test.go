package routers

import (
	"testing"

	"meshroute/internal/dex"
	"meshroute/internal/grid"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

// The heart of Theorem 15's proof: "any North (respectively, South) queue
// will eject a packet in each step that it contains at least one packet".
// We verify it literally, step by step, on congested workloads: every
// vertically-travelling queue that is nonempty at the start of a step
// loses at least one of its packets during that step.
func TestThm15VerticalQueuesAlwaysEject(t *testing.T) {
	for _, wl := range []string{"reversal", "transpose"} {
		n := 16
		topo := grid.NewSquareMesh(n)
		net := sim.MustNew(Thm15Config(topo, 1))
		var perm *workload.Permutation
		if wl == "reversal" {
			perm = workload.Reversal(topo)
		} else {
			perm = workload.Transpose(topo)
		}
		if err := perm.Place(net); err != nil {
			t.Fatal(err)
		}
		alg := dex.NewAdapter(Thm15{})
		vertTags := []uint8{uint8(grid.North), uint8(grid.South)}
		for step := 0; step < 100*n && !net.Done(); step++ {
			// Snapshot: vertical-queue contents per node.
			type qk struct {
				node grid.NodeID
				tag  uint8
			}
			st := &net.P
			before := map[qk][]sim.PacketID{}
			for _, id := range net.Occupied() {
				node := net.Node(id)
				for _, p := range net.PacketsOf(node) {
					for _, tag := range vertTags {
						if st.QTag[p] == tag {
							before[qk{id, tag}] = append(before[qk{id, tag}], p)
						}
					}
				}
			}
			if err := net.StepOnce(alg); err != nil {
				t.Fatal(err)
			}
			for key, pkts := range before {
				ejected := false
				for _, p := range pkts {
					if st.At[p] != key.node || st.Delivered(p) {
						ejected = true
						break
					}
				}
				if !ejected {
					t.Fatalf("%s: step %d: vertical queue %v of node %v held %d packets and ejected none",
						wl, net.Step(), grid.Dir(key.tag), net.Topo.CoordOf(key.node), len(pkts))
				}
			}
		}
		if !net.Done() {
			t.Fatalf("%s: routing incomplete", wl)
		}
	}
}

// Turning intervals (the O(n²/k) accounting): with queues of size k, at
// most n packets can delay a full turning queue, and the number of
// saturated-turn events per row is bounded. We verify the weaker, directly
// measurable consequence the proof uses: a full E/W queue whose packets all
// want to turn is drained of at least one packet within n steps.
func TestThm15TurningQueueDrainsWithinN(t *testing.T) {
	n, k := 16, 2
	topo := grid.NewSquareMesh(n)
	net := sim.MustNew(Thm15Config(topo, k))
	if err := workload.Transpose(topo).Place(net); err != nil {
		t.Fatal(err)
	}
	alg := dex.NewAdapter(Thm15{})
	// waiting[node] = consecutive steps some horizontal queue has stayed
	// full of turners without draining.
	type sat struct {
		pkts  []sim.PacketID
		since int
	}
	saturated := map[grid.NodeID]*sat{}
	for step := 0; step < 200*n && !net.Done(); step++ {
		if err := net.StepOnce(alg); err != nil {
			t.Fatal(err)
		}
		for _, id := range net.Occupied() {
			node := net.Node(id)
			for _, tag := range []uint8{uint8(grid.East), uint8(grid.West)} {
				if node.QueueLen(tag) < k {
					continue
				}
				allTurn := true
				var pkts []sim.PacketID
				for _, p := range net.PacketsOf(node) {
					if net.P.QTag[p] != tag {
						continue
					}
					pkts = append(pkts, p)
					if DimOrderWant(net.Topo.Profitable(id, net.P.Dst[p])).Horizontal() {
						allTurn = false
					}
				}
				if !allTurn {
					delete(saturated, id)
					continue
				}
				s := saturated[id]
				if s == nil || !samePackets(s.pkts, pkts) {
					saturated[id] = &sat{pkts: pkts, since: net.Step()}
					continue
				}
				if net.Step()-s.since > n {
					t.Fatalf("turning queue at %v stuck for more than n=%d steps", net.Topo.CoordOf(id), n)
				}
			}
		}
	}
	if !net.Done() {
		t.Fatal("incomplete")
	}
}

func samePackets(a, b []sim.PacketID) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[sim.PacketID]bool{}
	for _, p := range a {
		seen[p] = true
	}
	for _, p := range b {
		if !seen[p] {
			return false
		}
	}
	return true
}
