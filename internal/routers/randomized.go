package routers

import (
	"meshroute/internal/grid"
	"meshroute/internal/sim"
)

// RandZigZag is the minimal adaptive alternation router with *randomized*
// direction preferences — the third escape hatch of Section 7
// ("incorporate randomness in routing decisions"). Theorem 14 only covers
// deterministic algorithms: its adversary must predict every choice to
// build the constructed permutation. Randomizing the preference (here via
// a seeded SplitMix64 stream, so runs remain reproducible) breaks that
// prediction: a permutation constructed against the deterministic router
// has no special power over the randomized one beyond its raw congestion.
//
// The router is minimal and uses only profitable outlinks plus the random
// word, so it is the minimal change to ZigZag that steps outside the
// deterministic model.
type RandZigZag struct {
	// Seed selects the random stream.
	Seed uint64
	// FaultAware excludes currently-failed outlinks from the profitable
	// set before the random draw, so packets detour around link failures
	// while a profitable outlink survives. False (the default) reproduces
	// the fault-oblivious router bit for bit.
	FaultAware bool
}

// Name implements sim.Algorithm.
func (r RandZigZag) Name() string {
	if r.FaultAware {
		return "rand-zigzag-fa"
	}
	return "rand-zigzag"
}

// InitNode implements sim.Algorithm.
func (r RandZigZag) InitNode(net *sim.Network, n *sim.Node) {}

// Update implements sim.Algorithm.
func (r RandZigZag) Update(net *sim.Network, n *sim.Node) {}

// splitmix64 is the standard 64-bit mix, used as a stateless hash of
// (seed, packet, step) into a uniform word.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pick returns the desired direction of packet p this step: a uniformly
// random profitable direction.
func (r RandZigZag) pick(net *sim.Network, at grid.NodeID, p sim.PacketID) grid.Dir {
	prof := net.Topo.Profitable(at, net.P.Dst[p])
	if r.FaultAware {
		prof &^= net.DownOutlinks(at)
	}
	dirs := prof.Dirs()
	switch len(dirs) {
	case 0:
		return grid.NoDir
	case 1:
		return dirs[0]
	}
	// Hash the external packet ID (PacketID-1), not the store index, so the
	// decision stream is bit-identical to the pointer-based engine's.
	h := splitmix64(r.Seed ^ uint64(p.ID())*0x9e3779b97f4a7c15 ^ uint64(net.Step())<<32)
	return dirs[h%uint64(len(dirs))]
}

// Schedule sends, on each outlink, the earliest-queued packet that wants
// it this step.
func (r RandZigZag) Schedule(net *sim.Network, n *sim.Node) [grid.NumDirs]int {
	sched := [grid.NumDirs]int{-1, -1, -1, -1}
	for i, p := range net.PacketsOf(n) {
		if w := r.pick(net, n.ID, p); w != grid.NoDir && sched[w] < 0 {
			sched[w] = i
		}
	}
	return sched
}

// Accept admits while there is room, plus the occupancy-neutral swap rule.
func (r RandZigZag) Accept(net *sim.Network, n *sim.Node, offers []sim.Offer, acc []bool) {
	sched := r.Schedule(net, n)
	for i, o := range offers {
		if sched[o.Travel.Opposite()] >= 0 {
			acc[i] = true
		}
	}
	free := net.K - n.QueueLen(0)
	for i := range offers {
		if acc[i] {
			continue
		}
		if free > 0 {
			acc[i] = true
			free--
		}
	}
}

// CloneForWorker implements sim.ParallelCloner (the router is stateless).
func (r RandZigZag) CloneForWorker() sim.Algorithm { return r }

var _ sim.ParallelCloner = RandZigZag{}
