package routers

import (
	"testing"

	"meshroute/internal/dex"
	"meshroute/internal/grid"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

func centralConfig(n, k int) sim.Config {
	return sim.Config{
		Topo:            grid.NewSquareMesh(n),
		K:               k,
		Queues:          sim.CentralQueue,
		RequireMinimal:  true,
		CheckInvariants: true,
	}
}

// runPerm routes a permutation to completion and returns the makespan.
func runPerm(t *testing.T, cfg sim.Config, alg sim.Algorithm, p *workload.Permutation, maxSteps int) *sim.Network {
	t.Helper()
	net := sim.MustNew(cfg)
	if err := p.Place(net); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(alg, maxSteps); err != nil {
		t.Fatal(err)
	}
	return net
}

func checkMinimalPaths(t *testing.T, net *sim.Network) {
	t.Helper()
	for _, p := range net.Packets() {
		if want := net.Topo.Dist(p.Src, p.Dst); p.Hops != want {
			t.Fatalf("packet %d took %d hops, minimal is %d", p.ID, p.Hops, want)
		}
	}
}

func TestDimOrderFIFORoutesRandomPermutations(t *testing.T) {
	for _, n := range []int{4, 8, 12} {
		for _, k := range []int{2, 4} {
			for seed := int64(0); seed < 3; seed++ {
				perm := workload.Random(grid.NewSquareMesh(n), seed)
				net := runPerm(t, centralConfig(n, k), dex.NewAdapter(DimOrderFIFO{}), perm, 50*n*n)
				checkMinimalPaths(t, net)
				if net.Metrics.MaxQueueLen > k {
					t.Fatalf("n=%d k=%d: queue %d > k", n, k, net.Metrics.MaxQueueLen)
				}
			}
		}
	}
}

func TestDimOrderFIFORoutesStructured(t *testing.T) {
	n := 8
	topo := grid.NewSquareMesh(n)
	for name, perm := range map[string]*workload.Permutation{
		"transpose": workload.Transpose(topo),
		"rotation":  workload.Rotation(topo, 3, 2),
	} {
		net := runPerm(t, centralConfig(n, 4), dex.NewAdapter(DimOrderFIFO{}), perm, 100*n*n)
		checkMinimalPaths(t, net)
		if net.DeliveredCount() != n*n {
			t.Fatalf("%s: %d delivered", name, net.DeliveredCount())
		}
	}
}

func TestDimOrderFIFOFollowsXYOrder(t *testing.T) {
	// A single packet must move all the way east before turning north.
	n := 8
	cfg := centralConfig(n, 2)
	net := sim.MustNew(cfg)
	topo := net.Topo
	p := net.NewPacket(topo.ID(grid.XY(0, 0)), topo.ID(grid.XY(5, 5)))
	net.MustPlace(p)
	alg := dex.NewAdapter(DimOrderFIFO{})
	for i := 0; i < 5; i++ {
		if err := net.StepOnce(alg); err != nil {
			t.Fatal(err)
		}
		want := grid.XY(i+1, 0)
		if net.P.Delivered(p) {
			t.Fatal("delivered too early")
		}
		if got := findPacketCoord(net, p); got != want {
			t.Fatalf("step %d: at %v, want %v (row first)", i+1, got, want)
		}
	}
	if _, err := net.Run(alg, 100); err != nil {
		t.Fatal(err)
	}
	if net.P.Hops[p] != 10 {
		t.Fatalf("hops = %d", net.P.Hops[p])
	}
}

func findPacketCoord(net *sim.Network, p sim.PacketID) grid.Coord {
	for _, id := range net.Occupied() {
		for _, q := range net.PacketsOf(net.Node(id)) {
			if q == p {
				return net.Topo.CoordOf(id)
			}
		}
	}
	return grid.XY(-1, -1)
}

func TestZigZagRoutesRandomPermutations(t *testing.T) {
	for _, n := range []int{4, 8, 12} {
		for seed := int64(0); seed < 3; seed++ {
			perm := workload.Random(grid.NewSquareMesh(n), seed)
			net := runPerm(t, centralConfig(n, 4), dex.NewAdapter(ZigZag{}), perm, 100*n*n)
			checkMinimalPaths(t, net)
		}
	}
}

func TestZigZagAlternatesWhenBlocked(t *testing.T) {
	// Two packets at (0,0)'s east neighbor collide; the zigzag packet at
	// (0,0) keeps moving: when East is congested it goes North instead.
	n := 6
	cfg := centralConfig(n, 1) // k=1 makes blocking easy
	net := sim.MustNew(cfg)
	topo := net.Topo
	// Blocker parked at (1,0): destination (1,5), so it leaves northward,
	// but first step it occupies the queue.
	blocker := net.NewPacket(topo.ID(grid.XY(1, 0)), topo.ID(grid.XY(1, 5)))
	net.MustPlace(blocker)
	// Mover at (0,0) wants (2,2): both East and North profitable.
	mover := net.NewPacket(topo.ID(grid.XY(0, 0)), topo.ID(grid.XY(2, 2)))
	net.MustPlace(mover)
	alg := dex.NewAdapter(ZigZag{})
	if _, err := net.Run(alg, 100); err != nil {
		t.Fatal(err)
	}
	checkMinimalPaths(t, net)
	if !net.P.Delivered(mover) || !net.P.Delivered(blocker) {
		t.Fatal("both packets must deliver")
	}
}

func TestZigZagMixedWithBlockageStillMinimal(t *testing.T) {
	n := 8
	topo := grid.NewSquareMesh(n)
	perm := workload.Reversal(topo)
	net := runPerm(t, centralConfig(n, 4), dex.NewAdapter(ZigZag{}), perm, 200*n*n)
	checkMinimalPaths(t, net)
}

func TestThm15RoutesRandomPermutations(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		for _, k := range []int{1, 2, 4} {
			perm := workload.Random(grid.NewSquareMesh(n), int64(n*10+k))
			net := runPerm(t, Thm15Config(grid.NewSquareMesh(n), k), dex.NewAdapter(Thm15{}), perm, 200*n*n)
			checkMinimalPaths(t, net)
			// Theorem 15 time bound with a generous constant.
			bound := 20 * (n*n/k + 2*n)
			if net.Metrics.Makespan > bound {
				t.Fatalf("n=%d k=%d: makespan %d exceeds O(n^2/k + n) sanity bound %d",
					n, k, net.Metrics.Makespan, bound)
			}
		}
	}
}

func TestThm15RoutesHardStructured(t *testing.T) {
	n := 8
	topo := grid.NewSquareMesh(n)
	for name, perm := range map[string]*workload.Permutation{
		"reversal":    workload.Reversal(topo),
		"transpose":   workload.Transpose(topo),
		"bitreversal": workload.BitReversal(topo),
	} {
		net := runPerm(t, Thm15Config(grid.NewSquareMesh(n), 1), dex.NewAdapter(Thm15{}), perm, 500*n*n)
		checkMinimalPaths(t, net)
		if net.DeliveredCount() != n*n {
			t.Fatalf("%s: %d delivered", name, net.DeliveredCount())
		}
	}
}

// The paper's key structural claim inside Theorem 15: North and South
// queues always have room, so the unconditional accept never overflows.
// CheckInvariants makes the engine fail the run if that claim breaks.
func TestThm15VerticalQueuesNeverOverflow(t *testing.T) {
	n := 12
	perm := workload.Reversal(grid.NewSquareMesh(n))
	net := runPerm(t, Thm15Config(grid.NewSquareMesh(n), 1), dex.NewAdapter(Thm15{}), perm, 500*n*n)
	if net.Metrics.MaxQueueLen > 1 {
		t.Fatalf("k=1 run saw queue length %d", net.Metrics.MaxQueueLen)
	}
}

func TestThm15StraightPriority(t *testing.T) {
	// A stream of straight vertical packets must not be blocked by a
	// turning packet.
	n := 6
	net := sim.MustNew(Thm15Config(grid.NewSquareMesh(n), 1))
	topo := net.Topo
	// Straight packet: travelling north through (2,2).
	straightP := net.NewPacket(topo.ID(grid.XY(2, 0)), topo.ID(grid.XY(2, 5)))
	net.MustPlace(straightP)
	// Turner: arrives at (2,2) from the west, wants to turn north.
	turner := net.NewPacket(topo.ID(grid.XY(0, 2)), topo.ID(grid.XY(2, 5)))
	_ = turner
	// Same destination would break the permutation; give the turner a
	// different column-top destination.
	net.P.Dst[turner] = topo.ID(grid.XY(2, 4))
	net.MustPlace(turner)
	alg := dex.NewAdapter(Thm15{})
	if _, err := net.Run(alg, 200); err != nil {
		t.Fatal(err)
	}
	checkMinimalPaths(t, net)
}

func TestDimOrderFFRoutesPermutations(t *testing.T) {
	for _, n := range []int{4, 8} {
		for _, k := range []int{2, 4} {
			perm := workload.Random(grid.NewSquareMesh(n), int64(n+k))
			net := runPerm(t, centralConfig(n, k), DimOrderFF{}, perm, 100*n*n)
			checkMinimalPaths(t, net)
		}
	}
}

func TestDimOrderFFPrefersFarthest(t *testing.T) {
	n := 8
	net := sim.MustNew(centralConfig(n, 2))
	topo := net.Topo
	near := net.NewPacket(topo.ID(grid.XY(0, 0)), topo.ID(grid.XY(2, 0)))
	far := net.NewPacket(topo.ID(grid.XY(0, 0)), topo.ID(grid.XY(7, 1)))
	net.MustPlace(near)
	net.MustPlace(far)
	if err := net.StepOnce(DimOrderFF{}); err != nil {
		t.Fatal(err)
	}
	// Only one can leave east; farthest-first must pick far.
	if findPacketCoord(net, far) != grid.XY(1, 0) {
		t.Fatal("farthest packet must advance first")
	}
	if findPacketCoord(net, near) != grid.XY(0, 0) {
		t.Fatal("near packet must wait")
	}
	if _, err := net.Run(DimOrderFF{}, 100); err != nil {
		t.Fatal(err)
	}
}

func TestHotPotatoDeliversPermutations(t *testing.T) {
	for _, n := range []int{4, 8} {
		perm := workload.Random(grid.NewSquareMesh(n), int64(n))
		net := sim.MustNew(HotPotatoConfig(grid.NewSquareMesh(n)))
		if err := perm.Place(net); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Run(HotPotato{}, 1000*n); err != nil {
			t.Fatal(err)
		}
		if net.DeliveredCount() != n*n {
			t.Fatalf("delivered %d/%d", net.DeliveredCount(), n*n)
		}
	}
}

func TestHotPotatoTakesNonminimalPathsUnderContention(t *testing.T) {
	n := 8
	perm := workload.Reversal(grid.NewSquareMesh(n))
	net := sim.MustNew(HotPotatoConfig(grid.NewSquareMesh(n)))
	if err := perm.Place(net); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(HotPotato{}, 5000); err != nil {
		t.Fatal(err)
	}
	extra := 0
	for _, p := range net.Packets() {
		extra += p.Hops - net.Topo.Dist(p.Src, p.Dst)
	}
	if extra == 0 {
		t.Fatal("reversal under deflection should deflect at least one packet")
	}
}

func TestDimOrderWantTable(t *testing.T) {
	cases := []struct {
		prof grid.DirSet
		want grid.Dir
	}{
		{0, grid.NoDir},
		{grid.DirSet(0).Set(grid.East), grid.East},
		{grid.DirSet(0).Set(grid.West), grid.West},
		{grid.DirSet(0).Set(grid.North), grid.North},
		{grid.DirSet(0).Set(grid.South), grid.South},
		{grid.DirSet(0).Set(grid.North).Set(grid.East), grid.East},
		{grid.DirSet(0).Set(grid.South).Set(grid.West), grid.West},
	}
	for _, c := range cases {
		if got := DimOrderWant(c.prof); got != c.want {
			t.Errorf("DimOrderWant(%v) = %v, want %v", c.prof, got, c.want)
		}
	}
}

func TestRoutersAreDeterministic(t *testing.T) {
	run := func(mk func() sim.Algorithm, cfg sim.Config) int {
		net := sim.MustNew(cfg)
		perm := workload.Random(cfg.Topo, 99)
		if err := perm.Place(net); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Run(mk(), 100000); err != nil {
			t.Fatal(err)
		}
		return net.Metrics.Makespan
	}
	algs := []struct {
		name string
		mk   func() sim.Algorithm
		cfg  sim.Config
	}{
		{"dimorder", func() sim.Algorithm { return dex.NewAdapter(DimOrderFIFO{}) }, centralConfig(8, 4)},
		{"zigzag", func() sim.Algorithm { return dex.NewAdapter(ZigZag{}) }, centralConfig(8, 4)},
		{"thm15", func() sim.Algorithm { return dex.NewAdapter(Thm15{}) }, Thm15Config(grid.NewSquareMesh(8), 2)},
		{"ff", func() sim.Algorithm { return DimOrderFF{} }, centralConfig(8, 4)},
		{"hotpotato", func() sim.Algorithm { return HotPotato{} }, HotPotatoConfig(grid.NewSquareMesh(8))},
	}
	for _, a := range algs {
		m1 := run(a.mk, a.cfg)
		m2 := run(a.mk, a.cfg)
		if m1 != m2 {
			t.Errorf("%s nondeterministic: %d vs %d", a.name, m1, m2)
		}
	}
}
