package routers

import (
	"meshroute/internal/dex"
	"meshroute/internal/grid"
)

// DimOrderFIFO is the dimension-order routing algorithm with FIFO outqueue
// policy and round-robin inqueue policy over a central queue of capacity k.
// A packet first exhausts its horizontal profitable direction, then its
// vertical one; since this preference is computable from profitable
// outlinks alone, the algorithm is destination-exchangeable and falls under
// the Ω(n²/k) lower bound of Section 5 (and the Ω(n²/k²) bound of
// Theorem 14).
type DimOrderFIFO struct{}

// Name implements dex.Policy.
func (DimOrderFIFO) Name() string { return "dimorder-fifo" }

// InitNode implements dex.Policy.
func (DimOrderFIFO) InitNode(c *dex.NodeCtx) {}

// Schedule implements the FIFO outqueue policy: for each outlink, the
// earliest-queued packet wanting it.
func (DimOrderFIFO) Schedule(c *dex.NodeCtx) [grid.NumDirs]int {
	sched := [grid.NumDirs]int{-1, -1, -1, -1}
	for i := range c.Views {
		want := DimOrderWant(c.Views[i].Profitable)
		if want != grid.NoDir && sched[want] < 0 {
			sched[want] = i
		}
	}
	return sched
}

// Accept implements the round-robin inqueue policy with the swap rule and
// a reserved slot for column-phase packets (see acceptDimOrderReserving).
func (r DimOrderFIFO) Accept(c *dex.NodeCtx, offers []dex.OfferView, accept []bool) {
	acceptDimOrderReserving(c, offers, accept, r.Schedule(c))
}

// Update advances the round-robin counter.
func (DimOrderFIFO) Update(c *dex.NodeCtx) { rotate(c) }

var _ dex.Policy = DimOrderFIFO{}
