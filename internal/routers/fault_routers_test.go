package routers

import (
	"strings"
	"testing"

	"meshroute/internal/dex"
	"meshroute/internal/fault"
	"meshroute/internal/grid"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

// outageAt builds a permanent bidirectional failure of the given outlink
// of the given node, effective at step 1.
func outageAt(topo grid.Topology, at grid.NodeID, d grid.Dir) *fault.Schedule {
	nb, _ := topo.Neighbor(at, d)
	return (&fault.Schedule{N: topo.N(), Events: []fault.Event{
		{Step: 1, Kind: fault.LinkDown, Node: at, Dir: d, Permanent: true},
		{Step: 1, Kind: fault.LinkDown, Node: nb, Dir: d.Opposite(), Permanent: true},
	}}).Finalize()
}

func faultCfg(topo grid.Topology, k int, sched *fault.Schedule) sim.Config {
	return sim.Config{
		Topo: topo, K: k, Queues: sim.CentralQueue,
		RequireMinimal: true, CheckInvariants: true, Faults: sched,
	}
}

// TestZigZagFaultAwareAvoidsDownLink: a packet with two profitable
// directions sits at a node whose North outlink — the zigzag's seeded
// preference — is permanently down. The fault-aware zigzag must detour
// east without ever scheduling the failed link (zero fault drops); the
// oblivious one bumps into it.
func TestZigZagFaultAwareAvoidsDownLink(t *testing.T) {
	topo := grid.NewSquareMesh(8)
	src := topo.ID(grid.XY(0, 0))
	dst := topo.ID(grid.XY(4, 4))

	run := func(p dex.Policy) (*sim.Network, int) {
		net := sim.MustNew(faultCfg(topo, 3, outageAt(topo, src, grid.North)))
		pk := net.NewPacket(src, dst)
		net.MustPlace(pk)
		steps, err := net.Run(dex.NewAdapter(p), 200)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if !net.P.Delivered(pk) || int(net.P.Hops[pk]) != topo.Dist(src, dst) {
			t.Fatalf("%s: packet %+v not delivered minimally", p.Name(), net.PacketSnapshot(pk))
		}
		return net, steps
	}

	aware, awareSteps := run(ZigZag{FaultAware: true})
	if aware.Metrics.FaultDrops != 0 {
		t.Fatalf("fault-aware zigzag scheduled a down link %d times", aware.Metrics.FaultDrops)
	}
	if awareSteps != topo.Dist(src, dst) {
		t.Fatalf("fault-aware zigzag took %d steps, want %d (no wasted step)", awareSteps, topo.Dist(src, dst))
	}

	oblivious, _ := run(ZigZag{})
	if oblivious.Metrics.FaultDrops == 0 {
		t.Fatal("oblivious zigzag never hit the down link; the scenario is not exercising faults")
	}
}

// TestRandZigZagFaultAwareAvoidsDownLink mirrors the zigzag test for the
// randomized router.
func TestRandZigZagFaultAwareAvoidsDownLink(t *testing.T) {
	topo := grid.NewSquareMesh(8)
	src := topo.ID(grid.XY(0, 0))
	dst := topo.ID(grid.XY(4, 4))
	net := sim.MustNew(faultCfg(topo, 3, outageAt(topo, src, grid.North)))
	pk := net.NewPacket(src, dst)
	net.MustPlace(pk)
	if _, err := net.Run(RandZigZag{Seed: 7, FaultAware: true}, 200); err != nil {
		t.Fatal(err)
	}
	if !net.P.Delivered(pk) || int(net.P.Hops[pk]) != topo.Dist(src, dst) {
		t.Fatalf("packet %+v not delivered minimally", net.PacketSnapshot(pk))
	}
	if net.Metrics.FaultDrops != 0 {
		t.Fatalf("fault-aware rand-zigzag scheduled a down link %d times", net.Metrics.FaultDrops)
	}
}

// TestThm15QueueBoundNotFaultTolerant pins a negative result the fault
// fuzzer found: Theorem 15's bounded-queue argument presumes reliable
// links. The vertical inqueues accept unconditionally because the
// straight-priority rule guarantees a simultaneous drain — but a down
// vertical outlink drops that drain, and the refusal cannot propagate
// back up a full column chain within one synchronous step. Under the
// fuzzer's schedule the invariant checker must catch the overflow. (This
// is the model telling the truth about the theorem's premises, not an
// engine bug; see docs/ROBUSTNESS.md.)
func TestThm15QueueBoundNotFaultTolerant(t *testing.T) {
	// Reproduces fuzz corpus entry fc7d56795c6b55ee.
	n, k := 15, 2
	topo := grid.NewSquareMesh(n)
	sched, err := fault.Generate(topo, fault.Config{
		Seed: 126, Horizon: 20 * n,
		LinkFailures: 27, MeanDownSteps: 1 + n/2, PermanentFrac: 250.0 / 512,
		NodeStalls: 2, MeanStallSteps: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Thm15Config(topo, k)
	cfg.Faults = sched
	net := sim.MustNew(cfg)
	if err := workload.Random(topo, 454).Place(net); err != nil {
		t.Fatal(err)
	}
	_, err = net.RunPartial(dex.NewAdapter(Thm15{}), 500*n*n)
	if err == nil || !strings.Contains(err.Error(), "overflowed") {
		t.Fatalf("want the invariant checker to catch the thm15 queue overflow, got %v", err)
	}
}

// TestFaultAwareMatchesObliviousWithoutFaults pins the compatibility
// contract: without a fault schedule the fault-aware variants make exactly
// the same decisions as the originals (Up == Outlinks), so a full random
// permutation must finish with identical metrics.
func TestFaultAwareMatchesObliviousWithoutFaults(t *testing.T) {
	topo := grid.NewSquareMesh(10)
	run := func(alg sim.Algorithm) [4]int {
		net := sim.MustNew(sim.Config{Topo: topo, K: 3, Queues: sim.CentralQueue, RequireMinimal: true, CheckInvariants: true})
		if err := workload.Random(topo, 5).Place(net); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Run(alg, 10000); err != nil {
			t.Fatal(err)
		}
		m := net.Metrics
		return [4]int{m.Makespan, m.TotalHops, m.SumDelay, m.MaxQueueLen}
	}
	if a, b := run(dex.NewAdapter(ZigZag{})), run(dex.NewAdapter(ZigZag{FaultAware: true})); a != b {
		t.Fatalf("zigzag metrics diverged without faults:\n%+v\nvs\n%+v", a, b)
	}
	if a, b := run(RandZigZag{Seed: 9}), run(RandZigZag{Seed: 9, FaultAware: true}); a != b {
		t.Fatalf("rand-zigzag metrics diverged without faults:\n%+v\nvs\n%+v", a, b)
	}
}
