package routers

import (
	"testing"

	"meshroute/internal/grid"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

func TestRandZigZagRoutesPermutations(t *testing.T) {
	for _, n := range []int{8, 16} {
		for seed := uint64(0); seed < 3; seed++ {
			perm := workload.Random(grid.NewSquareMesh(n), int64(seed))
			net := sim.MustNew(centralConfig(n, 4))
			if err := perm.Place(net); err != nil {
				t.Fatal(err)
			}
			if _, err := net.Run(RandZigZag{Seed: seed}, 500*n*n); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			for _, p := range net.Packets() {
				if p.Hops != net.Topo.Dist(p.Src, p.Dst) {
					t.Fatalf("nonminimal: packet %d", p.ID)
				}
			}
		}
	}
}

func TestRandZigZagReproducible(t *testing.T) {
	run := func(seed uint64) int {
		n := 12
		perm := workload.Random(grid.NewSquareMesh(n), 7)
		net := sim.MustNew(centralConfig(n, 4))
		if err := perm.Place(net); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Run(RandZigZag{Seed: seed}, 500*n*n); err != nil {
			t.Fatal(err)
		}
		return net.Metrics.Makespan
	}
	if run(5) != run(5) {
		t.Fatal("same seed must reproduce")
	}
	// Different seeds usually differ (not guaranteed; check a few).
	base := run(1)
	differs := false
	for s := uint64(2); s < 6; s++ {
		if run(s) != base {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("randomization appears inert across seeds")
	}
}

func TestSplitmix64Spreads(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		seen[splitmix64(i)] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("splitmix64 collided: %d unique of 1000", len(seen))
	}
	// Low bits must be usable for small moduli.
	counts := [2]int{}
	for i := uint64(0); i < 1000; i++ {
		counts[splitmix64(i)%2]++
	}
	if counts[0] < 400 || counts[1] < 400 {
		t.Fatalf("biased low bit: %v", counts)
	}
}
