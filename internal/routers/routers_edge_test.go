package routers

import (
	"testing"

	"meshroute/internal/dex"
	"meshroute/internal/grid"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

// The routers must work on rectangular meshes too.
func TestRectangularMesh(t *testing.T) {
	topo := grid.NewMesh(12, 5)
	perm := workload.Random(topo, 5)
	cfg := sim.Config{Topo: topo, K: 4, Queues: sim.CentralQueue, RequireMinimal: true, CheckInvariants: true}
	for _, alg := range []sim.Algorithm{
		dex.NewAdapter(DimOrderFIFO{}),
		dex.NewAdapter(ZigZag{}),
		DimOrderFF{},
	} {
		net := sim.MustNew(cfg)
		if err := perm.Place(net); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Run(alg, 10000); err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
	}
	net := sim.MustNew(Thm15Config(topo, 2))
	if err := perm.Place(net); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(dex.NewAdapter(Thm15{}), 10000); err != nil {
		t.Fatal(err)
	}
}

// Thm15 on the torus: the wrap-around shortest paths still terminate.
func TestThm15Torus(t *testing.T) {
	topo := grid.NewSquareTorus(9)
	perm := workload.Random(topo, 13)
	net := sim.MustNew(Thm15Config(topo, 1))
	if err := perm.Place(net); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(dex.NewAdapter(Thm15{}), 5000); err != nil {
		t.Fatal(err)
	}
	for _, p := range net.Packets() {
		if p.Hops != topo.Dist(p.Src, p.Dst) {
			t.Fatalf("packet %d nonminimal on torus: %d vs %d", p.ID, p.Hops, topo.Dist(p.Src, p.Dst))
		}
	}
}

// HotPotato on the torus (every node has degree 4 — the cleanest
// deflection setting).
func TestHotPotatoTorus(t *testing.T) {
	topo := grid.NewSquareTorus(8)
	perm := workload.Random(topo, 3)
	net := sim.MustNew(sim.Config{Topo: topo, K: 4, Queues: sim.CentralQueue, CheckInvariants: true})
	if err := perm.Place(net); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(HotPotato{}, 20000); err != nil {
		t.Fatal(err)
	}
}

// ZigZag state encoding helpers.
func TestZigZagStateEncoding(t *testing.T) {
	s := zzSetPref(0, grid.West)
	if zzPref(s) != grid.West {
		t.Fatalf("pref = %v", zzPref(s))
	}
	s = zzSetPref(s, grid.North)
	if zzPref(s) != grid.North {
		t.Fatalf("pref = %v", zzPref(s))
	}
	// Upper state bits are preserved.
	s = zzSetPref(0xFF00, grid.East)
	if s&0xFF00 != 0xFF00 || zzPref(s) != grid.East {
		t.Fatalf("state clobbered: %x", s)
	}
}

// A packet with a single profitable direction never zigzags away from it.
func TestZigZagSingleProfitableStable(t *testing.T) {
	net := sim.MustNew(sim.Config{Topo: grid.NewSquareMesh(8), K: 2, Queues: sim.CentralQueue, RequireMinimal: true, CheckInvariants: true})
	topo := net.Topo
	p := net.NewPacket(topo.ID(grid.XY(0, 3)), topo.ID(grid.XY(6, 3))) // due east
	net.MustPlace(p)
	steps, err := net.Run(dex.NewAdapter(ZigZag{}), 100)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 6 || net.P.Hops[p] != 6 {
		t.Fatalf("due-east packet took %d steps, %d hops", steps, net.P.Hops[p])
	}
}

// Thm15 straight-priority: a turning packet cannot starve a column stream,
// and the stream cannot permanently starve the turner either once it dries.
func TestThm15TurnerEventuallyTurns(t *testing.T) {
	n := 8
	net := sim.MustNew(Thm15Config(grid.NewSquareMesh(n), 1))
	topo := net.Topo
	// Stream of 4 straight packets climbing column 4.
	for y := 0; y < 4; y++ {
		net.MustPlace(net.NewPacket(topo.ID(grid.XY(4, y)), topo.ID(grid.XY(4, 7-y))))
	}
	// One turner entering column 4 from the west, destination up top.
	turner := net.NewPacket(topo.ID(grid.XY(0, 4)), topo.ID(grid.XY(4, 6)))
	net.MustPlace(turner)
	if _, err := net.Run(dex.NewAdapter(Thm15{}), 500); err != nil {
		t.Fatal(err)
	}
	st := &net.P
	if !st.Delivered(turner) {
		t.Fatal("turner starved")
	}
	if int(st.Hops[turner]) != topo.Dist(st.Src[turner], st.Dst[turner]) {
		t.Fatal("turner nonminimal")
	}
}

// The swap acceptance rule: two adjacent full nodes exchanging head-on
// packets must make progress (no head-on deadlock).
func TestSwapRuleBreaksHeadOnDeadlock(t *testing.T) {
	n := 8
	cfg := sim.Config{Topo: grid.NewSquareMesh(n), K: 1, Queues: sim.CentralQueue, RequireMinimal: true, CheckInvariants: true}
	net := sim.MustNew(cfg)
	topo := net.Topo
	// k=1: node (3,0) holds an east-mover, (4,0) a west-mover.
	e := net.NewPacket(topo.ID(grid.XY(3, 0)), topo.ID(grid.XY(6, 0)))
	w := net.NewPacket(topo.ID(grid.XY(4, 0)), topo.ID(grid.XY(1, 0)))
	net.MustPlace(e)
	net.MustPlace(w)
	if _, err := net.Run(dex.NewAdapter(ZigZag{}), 100); err != nil {
		t.Fatal(err)
	}
	if !net.P.Delivered(e) || !net.P.Delivered(w) {
		t.Fatal("head-on pair did not resolve")
	}
	if net.P.Hops[e] != 3 || net.P.Hops[w] != 3 {
		t.Fatalf("nonminimal resolution: %d, %d", net.P.Hops[e], net.P.Hops[w])
	}
}
