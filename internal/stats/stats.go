// Package stats provides the small numeric and formatting helpers used by
// the experiment harness: fixed-width tables, series summaries, and
// log-log power-law fits for checking asymptotic shapes (e.g. that the
// measured routing time of the constructed permutations grows like n²).
package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table renders rows with fixed-width, right-aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// WriteCSV writes the table as RFC 4180 CSV (header row first), for
// machine-readable experiment output.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.header); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// PowerFit fits y = a·x^b by least squares on log-log values and returns
// the exponent b and the coefficient a. All inputs must be positive.
func PowerFit(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, fmt.Errorf("stats: need >= 2 equal-length samples")
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, fmt.Errorf("stats: power fit needs positive samples")
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	n := float64(len(xs))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("stats: degenerate x values")
	}
	b = (n*sxy - sx*sy) / den
	a = math.Exp((sy - b*sx) / n)
	return a, b, nil
}

// Summary holds basic descriptive statistics.
type Summary struct {
	// N is the sample count.
	N int
	// Min, Max, Mean, Median describe the sample.
	Min, Max, Mean, Median float64
}

// Summarize computes a Summary of the samples.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	med := s[len(s)/2]
	if len(s)%2 == 0 {
		med = (s[len(s)/2-1] + s[len(s)/2]) / 2
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   sum / float64(len(s)),
		Median: med,
	}
}

// Quantiles returns the nearest-rank quantiles of the samples at the given
// probabilities (each in [0, 1]; 0 is the minimum, 1 the maximum). The
// input is not modified. An empty sample yields all zeros.
func Quantiles(samples []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(samples) == 0 {
		return out
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	for i, q := range qs {
		r := int(math.Ceil(q*float64(len(s)))) - 1
		if r < 0 {
			r = 0
		}
		if r >= len(s) {
			r = len(s) - 1
		}
		out[i] = s[r]
	}
	return out
}
