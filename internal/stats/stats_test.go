package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("n", "k", "time")
	tb.AddRow(120, 1, 96)
	tb.AddRow(240, 2, 3.14159)
	out := tb.String()
	if !strings.Contains(out, "time") || !strings.Contains(out, "3.14") {
		t.Fatalf("bad render:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d", len(lines))
	}
	// Columns align: all lines equal length.
	for _, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Fatalf("misaligned table:\n%s", out)
		}
	}
}

func TestPowerFitExact(t *testing.T) {
	xs := []float64{10, 20, 40, 80}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x // y = 3x²
	}
	a, b, err := PowerFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-2) > 1e-9 || math.Abs(a-3) > 1e-9 {
		t.Fatalf("fit a=%v b=%v, want 3, 2", a, b)
	}
}

func TestPowerFitQuick(t *testing.T) {
	f := func(expRaw uint8, coefRaw uint8) bool {
		b := 0.5 + float64(expRaw%30)/10 // 0.5..3.4
		a := 1 + float64(coefRaw%50)     // 1..50
		xs := []float64{8, 16, 32, 64, 128}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a * math.Pow(x, b)
		}
		ga, gb, err := PowerFit(xs, ys)
		return err == nil && math.Abs(ga-a) < 1e-6*a && math.Abs(gb-b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowerFitErrors(t *testing.T) {
	if _, _, err := PowerFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single sample must fail")
	}
	if _, _, err := PowerFit([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Fatal("negative samples must fail")
	}
	if _, _, err := PowerFit([]float64{2, 2}, []float64{1, 2}); err == nil {
		t.Fatal("degenerate x must fail")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3})
	if s.N != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("bad summary %+v", s)
	}
	even := Summarize([]float64{1, 2, 3, 4})
	if even.Median != 2.5 {
		t.Fatalf("even median %v", even.Median)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary")
	}
}
