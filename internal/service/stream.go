package service

import (
	"context"
	"sync"

	"meshroute/internal/obs"
)

// stream is one job's NDJSON event buffer: the running job appends
// metrics-JSONL lines (the docs/OBSERVABILITY.md wire format) through the
// obs.Sink interface, and any number of HTTP followers replay the buffer
// from the start and then block for new lines until the job retires. The
// buffer is bounded; once full, further step samples are counted as
// dropped instead of growing without limit.
type stream struct {
	mu      sync.Mutex
	cond    *sync.Cond
	lines   [][]byte
	dropped int
	closed  bool
	limit   int
}

func newStream(limit int) *stream {
	s := &stream{limit: limit}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// append adds one encoded line (already newline-terminated), dropping it
// if the buffer is full.
func (s *stream) append(line []byte, err error) {
	if err != nil {
		return // an unencodable record is dropped, never fatal to the run
	}
	s.mu.Lock()
	if len(s.lines) >= s.limit {
		s.dropped++
	} else {
		s.lines = append(s.lines, line)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// appendRaw adds one already-encoded, newline-terminated line verbatim —
// the commit path for event lines a fleet worker produced, preserving
// byte identity with a local run.
func (s *stream) appendRaw(line []byte) { s.append(line, nil) }

// addDropped folds drops that happened upstream (a worker's own buffer
// bound) into the stream's count.
func (s *stream) addDropped(n int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.dropped += n
	s.mu.Unlock()
}

// Step implements obs.Sink.
func (s *stream) Step(sample obs.StepSample) { s.append(obs.StepLine(sample)) }

// Span implements obs.Sink.
func (s *stream) Span(sp obs.Span) { s.append(obs.SpanLine(sp)) }

// Event implements obs.EventSink.
func (s *stream) Event(e obs.Event) { s.append(obs.EventLine(e)) }

// close marks the stream complete and wakes every follower. Idempotent.
func (s *stream) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// wake prods blocked followers so they can notice a canceled request
// context (install with context.AfterFunc).
func (s *stream) wake() {
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// counts returns the buffered and dropped line counts.
func (s *stream) counts() (buffered, dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.lines), s.dropped
}

// next returns line i, blocking until it exists, the stream closes, or
// ctx is canceled (callers must arrange a wake on cancellation). ok=false
// means no more lines will come.
func (s *stream) next(ctx context.Context, i int) (line []byte, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i >= len(s.lines) && !s.closed && ctx.Err() == nil {
		s.cond.Wait()
	}
	if i < len(s.lines) {
		return s.lines[i], true
	}
	return nil, false
}
