package service

import "sync"

// cache is the fingerprint-keyed result cache. The engine is deterministic
// and scenario fingerprints cover every semantic field (including seeds),
// so a fingerprint match means the stored statistics are exactly what a
// fresh simulation would produce — a hit skips the queue and the engine
// entirely. Only successful (done) runs are stored; failed and canceled
// runs are not results. Eviction is insertion-order FIFO at a fixed
// capacity: the workload this serves is "the same spec resubmitted", which
// an old entry satisfies as well as a fresh one.
type cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]Stats
	order   []string // insertion order, for FIFO eviction
	hits    int64
	misses  int64
}

// newCache returns a cache holding up to cap results; cap <= 0 disables
// caching (every get misses, puts are dropped).
func newCache(cap int) *cache {
	return &cache{cap: cap, entries: make(map[string]Stats)}
}

// lookup peeks a fingerprint without touching the hit/miss counters —
// admission decides first whether the submission is accepted at all, then
// records the outcome with record, so a 429'd submission never skews the
// hit ratio.
func (c *cache) lookup(fp string) (Stats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.entries[fp]
	return st, ok
}

// record counts the hits and misses of one admitted submission.
func (c *cache) record(hits, misses int64) {
	c.mu.Lock()
	c.hits += hits
	c.misses += misses
	c.mu.Unlock()
}

// put stores a result, evicting the oldest entry at capacity.
func (c *cache) put(fp string, st Stats) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[fp]; ok {
		c.entries[fp] = st
		return
	}
	for len(c.entries) >= c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[fp] = st
	c.order = append(c.order, fp)
}

// stats returns the hit/miss counters and current size.
func (c *cache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}
