package service

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"meshroute/internal/scenario"
)

// longSpec is a burst-workload run that injects for thousands of exact
// steps — long enough that a drain with an expired deadline always
// interrupts it mid-flight.
func longSpec() *scenario.Spec {
	return &scenario.Spec{
		Name:   "long",
		N:      8,
		K:      1,
		Router: "thm15",
		Workload: scenario.Workload{
			Kind:    scenario.KindBurst,
			Seed:    9,
			Horizon: 5000,
		},
	}
}

// TestShutdownCancelsRunningJob is the graceful-drain contract: Shutdown
// with an already-expired context cancels an in-flight job, which retires
// as canceled with its partial statistics and diagnostics intact, the
// server stops accepting work, and every goroutine winds down.
func TestShutdownCancelsRunningJob(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := New(Config{Workers: 1, QueueDepth: 2})
	atStep := make(chan struct{})
	var once sync.Once
	s.testStepHook = func(id string, step int) {
		if step >= 100 {
			once.Do(func() { close(atStep) })
		}
	}

	st := submitSpec(t, s, longSpec())
	select {
	case <-atStep:
	case <-time.After(30 * time.Second):
		t.Fatal("job never reached step 100")
	}

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(expired)

	final, ok := s.WaitJob(context.Background(), st.ID)
	if !ok {
		t.Fatal("job vanished during shutdown")
	}
	if final.State != StateCanceled {
		t.Fatalf("job state %s after drain, want canceled", final.State)
	}
	if final.Stats == nil {
		t.Fatal("canceled job lost its partial stats")
	}
	if final.Stats.Steps < 100 || final.Stats.Steps >= 5000 {
		t.Fatalf("partial steps %d, want interrupted in [100, 5000)", final.Stats.Steps)
	}
	if final.Stats.Done {
		t.Fatal("interrupted run claims completion")
	}
	if final.Diagnostics == "" {
		t.Fatal("canceled job has no diagnostics")
	}
	if final.Error == "" {
		t.Fatal("canceled job has no error message")
	}

	// Draining/stopped servers refuse new work and report unhealthy.
	if w := do(t, s, http.MethodGet, "/healthz", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after shutdown: %d, want 503", w.Code)
	}
	data, err := longSpec().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if w := do(t, s, http.MethodPost, "/v1/jobs", data); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: %d, want 503", w.Code)
	}

	// All worker and helper goroutines must have exited.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Fatalf("%d goroutines still alive after shutdown (baseline %d)", g, baseline)
	}
}

// TestShutdownDrainsQueuedJobs checks the patient path: with a generous
// deadline, Shutdown lets admitted work run to completion.
func TestShutdownDrainsQueuedJobs(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	a := submitSpec(t, s, quickSpec("a", 1))
	b := submitSpec(t, s, quickSpec("b", 2))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{a.ID, b.ID} {
		st, ok := s.WaitJob(context.Background(), id)
		if !ok || st.State != StateDone {
			t.Fatalf("job %s state %v after patient drain, want done", id, st.State)
		}
	}
}
