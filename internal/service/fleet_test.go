package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"meshroute/internal/fleet"
)

// startFleetWorker serves one fleet worker over httptest and registers
// it with a fresh coordinator tuned for tests.
func startFleetWorker(t *testing.T) (*fleet.Coordinator, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(fleet.NewWorker(fleet.WorkerConfig{}).Handler())
	t.Cleanup(srv.Close)
	coord := fleet.NewCoordinator(fleet.Config{
		HeartbeatTimeout: time.Minute,
		BackoffBase:      time.Millisecond,
		BackoffCap:       5 * time.Millisecond,
	})
	coord.Register(srv.URL)
	return coord, srv
}

// eventsBody fetches a finished job's full NDJSON event stream.
func eventsBody(t *testing.T, s *Server, id string) []byte {
	t.Helper()
	w := do(t, s, http.MethodGet, "/v1/jobs/"+id+"/events", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET events: %d %s", w.Code, w.Body)
	}
	return w.Body.Bytes()
}

// TestFleetRemoteMatchesLocal pins the service-level identity guarantee:
// a job dispatched to a fleet worker produces byte-identical events, the
// same stats, the same shared-counter totals, and the same cache entry
// as the identical job run in-process.
func TestFleetRemoteMatchesLocal(t *testing.T) {
	coord, _ := startFleetWorker(t)
	remote := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Fleet: coord})
	local := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	spec := quickSpec("fleet-identity", 42)
	stLocal := waitDone(t, local, submitSpec(t, local, spec).ID, StateDone)
	stRemote := waitDone(t, remote, submitSpec(t, remote, spec).ID, StateDone)

	if *stRemote.Stats != *stLocal.Stats {
		t.Errorf("remote stats %+v, want local %+v", stRemote.Stats, stLocal.Stats)
	}
	evLocal := eventsBody(t, local, stLocal.ID)
	evRemote := eventsBody(t, remote, stRemote.ID)
	if !bytes.Equal(evLocal, evRemote) {
		t.Errorf("event streams differ: local %d bytes, remote %d bytes", len(evLocal), len(evRemote))
	}
	if lc, rc := local.Counters().Steps(), remote.Counters().Steps(); lc != rc {
		t.Errorf("shared counters diverge: local %d steps, remote %d", lc, rc)
	}
	if tot := coord.Stats(); tot.CellsCompleted != 1 {
		t.Errorf("coordinator totals %+v, want 1 completed cell", tot)
	}

	// The coordinator-side cache is shared: resubmitting the same spec
	// must answer from cache without another dispatch.
	st2 := submitSpec(t, remote, spec)
	if !st2.CacheHit {
		t.Error("resubmission after a fleet run was not a cache hit")
	}
	if tot := coord.Stats(); tot.Dispatches != 1 {
		t.Errorf("cache hit re-dispatched: %d dispatches, want 1", tot.Dispatches)
	}
}

// TestFleetZeroWorkersFallsBack pins graceful degradation: a coordinator
// with no live workers executes jobs in-process instead of failing them.
func TestFleetZeroWorkersFallsBack(t *testing.T) {
	coord := fleet.NewCoordinator(fleet.Config{HeartbeatTimeout: time.Minute})
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Fleet: coord})

	st := waitDone(t, s, submitSpec(t, s, quickSpec("no-fleet", 3)).ID, StateDone)
	if st.Stats == nil || !st.Stats.Done {
		t.Fatalf("fallback run did not complete: %+v", st)
	}
	if tot := coord.Stats(); tot.Dispatches != 0 {
		t.Errorf("zero-worker fleet recorded %d dispatches", tot.Dispatches)
	}
}

// TestFleetWorkerEndpoints pins the coordinator's registration API and
// the /metrics fleet block.
func TestFleetWorkerEndpoints(t *testing.T) {
	coord := fleet.NewCoordinator(fleet.Config{HeartbeatTimeout: time.Minute})
	s := newTestServer(t, Config{Workers: 1, Fleet: coord})

	if w := do(t, s, http.MethodPost, "/v1/workers", []byte(`{"url":"not a url"}`)); w.Code != http.StatusBadRequest {
		t.Fatalf("bad registration URL got %d, want 400", w.Code)
	}
	w := do(t, s, http.MethodPost, "/v1/workers", []byte(`{"url":"http://127.0.0.1:1"}`))
	if w.Code != http.StatusOK {
		t.Fatalf("registration: %d %s", w.Code, w.Body)
	}
	var reg struct {
		Workers int `json:"workers"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &reg); err != nil || reg.Workers != 1 {
		t.Fatalf("registration response %s (err %v), want 1 worker", w.Body, err)
	}

	w = do(t, s, http.MethodGet, "/v1/workers", nil)
	var list struct {
		Workers []fleet.WorkerStatus `json:"workers"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Workers) != 1 || list.Workers[0].URL != "http://127.0.0.1:1" || !list.Workers[0].Alive {
		t.Fatalf("worker list %+v, want the registered worker alive", list.Workers)
	}

	var m Metrics
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/metrics", nil).Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Fleet == nil || m.Fleet.Alive != 1 || len(m.Fleet.Workers) != 1 {
		t.Fatalf("metrics fleet block %+v, want 1 live worker", m.Fleet)
	}
}

// TestFleetWithoutCoordinatorHidesEndpoints pins that a plain server
// does not expose the fleet API.
func TestFleetWithoutCoordinatorHidesEndpoints(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	if w := do(t, s, http.MethodPost, "/v1/workers", []byte(`{"url":"http://x:1"}`)); w.Code == http.StatusOK {
		t.Fatalf("non-coordinator accepted a worker registration: %d", w.Code)
	}
	var m Metrics
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/metrics", nil).Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Fleet != nil {
		t.Fatalf("non-coordinator metrics carry a fleet block: %+v", m.Fleet)
	}
}

// TestSingleflightConcurrentSubmissions is the dedup race drill: N
// concurrent submissions of one identical spec must execute the engine
// exactly once, with every submission retiring with the same stats. Run
// under -race (this package is in the CI race list).
func TestSingleflightConcurrentSubmissions(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 16})
	var executions int32
	gate := make(chan struct{})
	s.testJobStart = func(*job) {
		atomic.AddInt32(&executions, 1)
		<-gate
	}

	spec := quickSpec("dup", 99)
	data, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	ids := make([]string, n)
	errs := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(data))
			w := httptest.NewRecorder()
			s.Handler().ServeHTTP(w, r)
			if w.Code != http.StatusAccepted {
				errs[i] = w.Body.String()
				return
			}
			var st JobStatus
			if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
				errs[i] = err.Error()
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	close(gate)
	for i, msg := range errs {
		if msg != "" {
			t.Fatalf("submission %d failed: %s", i, msg)
		}
	}

	deduped := 0
	var stats Stats
	for i, id := range ids {
		st := waitDone(t, s, id, StateDone)
		if i == 0 {
			stats = *st.Stats
		} else if *st.Stats != stats {
			t.Fatalf("job %s stats %+v differ from %+v", id, st.Stats, stats)
		}
		if st.Deduped {
			deduped++
		}
	}
	if got := atomic.LoadInt32(&executions); got != 1 {
		t.Fatalf("%d engine executions for %d identical submissions, want exactly 1", got, n)
	}
	if deduped != n-1 {
		t.Fatalf("%d submissions marked deduped, want %d", deduped, n-1)
	}
	var m Metrics
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/metrics", nil).Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Cache.Deduped != int64(n-1) {
		t.Fatalf("metrics deduped %d, want %d", m.Cache.Deduped, n-1)
	}
}

// TestSingleflightWithinOneSweep pins dedup inside a single submission:
// a sweep listing the same spec twice runs it once.
func TestSingleflightWithinOneSweep(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	var executions int32
	s.testJobStart = func(*job) { atomic.AddInt32(&executions, 1) }

	one, err := quickSpec("twin", 7).JSON()
	if err != nil {
		t.Fatal(err)
	}
	sweep := []byte("[" + string(one) + "," + string(one) + "]")
	w := do(t, s, http.MethodPost, "/v1/jobs", sweep)
	if w.Code != http.StatusAccepted {
		t.Fatalf("sweep: %d %s", w.Code, w.Body)
	}
	var resp struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Jobs) != 2 {
		t.Fatalf("sweep admitted %d jobs, want 2", len(resp.Jobs))
	}
	a := waitDone(t, s, resp.Jobs[0].ID, StateDone)
	b := waitDone(t, s, resp.Jobs[1].ID, StateDone)
	if got := atomic.LoadInt32(&executions); got != 1 {
		t.Fatalf("%d executions for a twin sweep, want 1", got)
	}
	if !resp.Jobs[1].Deduped && !b.Deduped {
		t.Error("second twin not marked deduped")
	}
	if *a.Stats != *b.Stats {
		t.Errorf("twin stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestDedupedCancelLeavesPrimary pins that canceling an attached
// (deduped) submission retires only that submission — the primary keeps
// running and completes.
func TestDedupedCancelLeavesPrimary(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	s.testJobStart = func(*job) {
		once.Do(func() { close(started) })
		<-gate
	}

	spec := quickSpec("cancel-dup", 13)
	primary := submitSpec(t, s, spec)
	<-started
	dup := submitSpec(t, s, spec)
	if !dup.Deduped {
		t.Fatalf("second submission not deduped: %+v", dup)
	}
	if w := do(t, s, http.MethodDelete, "/v1/jobs/"+dup.ID, nil); w.Code != http.StatusAccepted {
		t.Fatalf("cancel deduped job: %d %s", w.Code, w.Body)
	}
	close(gate)
	if st := waitDone(t, s, primary.ID, StateDone); st.Stats == nil || !st.Stats.Done {
		t.Fatalf("primary did not complete after its follower was canceled: %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if st, _ := s.WaitJob(ctx, dup.ID); st.State != StateCanceled {
		t.Fatalf("deduped job state %s, want canceled", st.State)
	}
}

// TestRetryAfterEstimator pins the computed Retry-After: the 1-second
// floor before any job has run, growth with recent job durations and
// queue shortfall, and the 60-second cap.
func TestRetryAfterEstimator(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 4})
	lockedEstimate := func(needed int64) int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.retryAfterLocked(needed)
	}
	if got := lockedEstimate(1); got != 1 {
		t.Fatalf("estimate before any job = %d, want the 1s floor", got)
	}
	for i := 0; i < 8; i++ {
		s.recordDuration(10 * time.Second)
	}
	small := lockedEstimate(1)
	if small <= 1 {
		t.Fatalf("estimate after 10s jobs = %d, want > 1", small)
	}
	big := lockedEstimate(20)
	if big <= small {
		t.Fatalf("estimate for a larger shortfall %d not above %d", big, small)
	}
	if capped := lockedEstimate(1000); capped != 60 {
		t.Fatalf("estimate %d, want the 60s cap", capped)
	}
}

// TestRetryAfterHeaderGrowsUnderLoad pins the wire behavior: a 429
// carries a Retry-After that grows once the server has seen slow jobs.
func TestRetryAfterHeaderGrowsUnderLoad(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	defer func() { close(gate) }()
	s.testJobStart = func(*job) {
		once.Do(func() { close(started) })
		<-gate
	}

	running := submitSpec(t, s, quickSpec("occupant", 1))
	<-started // the worker holds job 1; its queue slot is free again
	queued := submitSpec(t, s, quickSpec("occupant", 2))

	overflow := func() (int, string) {
		data, err := quickSpec("overflow", 3).JSON()
		if err != nil {
			t.Fatal(err)
		}
		w := do(t, s, http.MethodPost, "/v1/jobs", data)
		return w.Code, w.Header().Get("Retry-After")
	}
	code, ra := overflow()
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submission got %d, want 429", code)
	}
	idle, err := strconv.Atoi(ra)
	if err != nil || idle < 1 {
		t.Fatalf("Retry-After %q, want an integer ≥ 1", ra)
	}

	// Teach the estimator that jobs are slow; the same refusal must now
	// advise a longer wait.
	for i := 0; i < 8; i++ {
		s.recordDuration(20 * time.Second)
	}
	_, ra = overflow()
	loaded, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q not an integer", ra)
	}
	if loaded <= idle {
		t.Fatalf("Retry-After did not grow under load: %d then %d", idle, loaded)
	}
	_ = running
	_ = queued
}
