package service

import (
	"context"
	"sync"
	"time"

	"meshroute"
	"meshroute/internal/fleet"
	"meshroute/internal/scenario"
)

// State is a job's lifecycle position. Jobs move
// queued → running → {done, failed, canceled}; cache hits and
// cancellations of queued jobs jump straight from queued to a terminal
// state.
type State string

// Job lifecycle states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Stats is the wire form of a run's routing statistics — the same numbers
// meshroute.RouteStats carries, with stable JSON names. It is an alias of
// fleet.Stats, so the service API and the fleet cell protocol share one
// wire shape (and the client's RouteStats conversion works on both).
type Stats = fleet.Stats

func toStats(st meshroute.RouteStats) Stats { return fleet.ToStats(st) }

// JobStatus is the JSON shape of one job in API responses
// (POST /v1/jobs, GET /v1/jobs, GET /v1/jobs/{id}).
type JobStatus struct {
	// ID is the server-assigned job identifier.
	ID string `json:"id"`
	// Name is the submitted spec's label, if any.
	Name string `json:"name,omitempty"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// Fingerprint is the spec's canonical content hash (the cache key).
	Fingerprint string `json:"fingerprint"`
	// CacheHit reports whether the result was served from the cache
	// without simulating.
	CacheHit bool `json:"cache_hit"`
	// Deduped reports singleflight coalescing: an identical spec was
	// already in flight at submission, so this job attached to that
	// execution instead of running its own.
	Deduped bool `json:"deduped,omitempty"`
	// Stats is the run's statistics: final for done jobs, partial for
	// failed/canceled jobs that had started, absent otherwise.
	Stats *Stats `json:"stats,omitempty"`
	// Error describes the abort of a failed or canceled job.
	Error string `json:"error,omitempty"`
	// Diagnostics is the engine's state snapshot at abort time.
	Diagnostics string `json:"diagnostics,omitempty"`
	// Events is the number of NDJSON records buffered for
	// GET /v1/jobs/{id}/events (0 for cache hits, which skip simulation).
	Events int `json:"events"`
	// EventsDropped counts records discarded once the per-job event
	// buffer filled up.
	EventsDropped int `json:"events_dropped,omitempty"`
	// Created, Started and Finished are RFC 3339 lifecycle timestamps.
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// job is the server-side record of one submitted spec. State transitions
// go through start/finish under mu; finish fires onDone exactly once, which
// is how the server's active-job accounting stays balanced no matter which
// of the worker, the cancel handler, or the drain path retires the job.
type job struct {
	id          string
	spec        *scenario.Spec
	fingerprint string

	ctx    context.Context
	cancel context.CancelFunc
	stream *stream
	// sharedStream marks stream as borrowed from a singleflight primary:
	// retiring this job must not close it (the primary owns it).
	sharedStream bool
	onDone       func()

	// attached are deduped jobs coalesced onto this execution; they are
	// retired with this job's outcome when it finishes. Guarded by the
	// server's mu, not the job's.
	attached []*job

	mu          sync.Mutex
	state       State
	cacheHit    bool
	deduped     bool
	stats       *Stats
	errMsg      string
	diagnostics string
	created     time.Time
	started     time.Time
	finished    time.Time
	done        chan struct{}
}

// start moves the job from queued to running. It returns false if the job
// was already retired (canceled while waiting in the queue).
func (j *job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish retires the job. Only the first call wins; later calls are
// no-ops, so racing finishers (worker vs. DELETE vs. drain) are safe.
func (j *job) finish(state State, stats *Stats, errMsg, diagnostics string) {
	j.mu.Lock()
	won := j.finishLocked(state, stats, errMsg, diagnostics)
	j.mu.Unlock()
	if won {
		j.afterFinish()
	}
}

// finishLocked records the terminal state under j.mu; it reports whether
// this call won the transition.
func (j *job) finishLocked(state State, stats *Stats, errMsg, diagnostics string) bool {
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.stats = stats
	j.errMsg = errMsg
	j.diagnostics = diagnostics
	j.finished = time.Now()
	close(j.done)
	return true
}

// afterFinish runs the transition's side effects outside j.mu: close the
// event stream (unless it belongs to a singleflight primary), release the
// context, and balance the server's active-job accounting.
func (j *job) afterFinish() {
	if !j.sharedStream {
		j.stream.close()
	}
	j.cancel() // release the context even on natural completion
	if j.onDone != nil {
		j.onDone()
	}
}

// cancelRequest implements DELETE: a still-queued job retires on the
// spot; a running one gets its context canceled and retires through the
// Runner's *sim.CanceledError path, keeping its partial stats.
func (j *job) cancelRequest() {
	j.mu.Lock()
	won := false
	if j.state == StateQueued {
		won = j.finishLocked(StateCanceled, nil, "canceled before the job started", "")
	}
	j.mu.Unlock()
	j.cancel()
	if won {
		j.afterFinish()
	}
}

// status snapshots the job for an API response.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		Name:        j.spec.Name,
		State:       j.state,
		Fingerprint: j.fingerprint,
		CacheHit:    j.cacheHit,
		Deduped:     j.deduped,
		Stats:       j.stats,
		Error:       j.errMsg,
		Diagnostics: j.diagnostics,
		Created:     j.created,
	}
	st.Events, st.EventsDropped = j.stream.counts()
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// currentState returns the state under the job lock.
func (j *job) currentState() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}
