package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"meshroute/internal/obs"
	"meshroute/internal/scenario"
)

// newTestServer builds a Server and registers a full drain as cleanup.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// do runs one request against the server's handler.
func do(t *testing.T, s *Server, method, target string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, target, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	return w
}

// submitSpec POSTs one spec and decodes the accepted job status.
func submitSpec(t *testing.T, s *Server, spec *scenario.Spec) JobStatus {
	t.Helper()
	data, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	w := do(t, s, http.MethodPost, "/v1/jobs", data)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d %s", w.Code, w.Body)
	}
	var st JobStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitDone waits for a job to retire and asserts the expected state.
func waitDone(t *testing.T, s *Server, id string, want State) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, ok := s.WaitJob(ctx, id)
	if !ok {
		t.Fatalf("job %s unknown", id)
	}
	if st.State != want {
		t.Fatalf("job %s state %s (err %q), want %s", id, st.State, st.Error, want)
	}
	return st
}

func quickSpec(name string, seed int64) *scenario.Spec {
	return &scenario.Spec{
		Name:     name,
		N:        6,
		K:        2,
		Router:   "dimorder",
		Workload: scenario.Workload{Kind: scenario.KindRandom, Seed: seed},
	}
}

// TestSubmitMatchesDirectRun pins the acceptance contract: a committed
// scenario file submitted over HTTP yields exactly the statistics of a
// direct scenario.Runner run.
func TestSubmitMatchesDirectRun(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "scenarios", "smoke.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	var runner scenario.Runner
	direct, err := runner.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Err != nil {
		t.Fatal(direct.Err)
	}

	s := newTestServer(t, Config{Workers: 2, QueueDepth: 4})
	w := do(t, s, http.MethodPost, "/v1/jobs", data)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST: %d %s", w.Code, w.Body)
	}
	var accepted JobStatus
	if err := json.Unmarshal(w.Body.Bytes(), &accepted); err != nil {
		t.Fatal(err)
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if accepted.Fingerprint != fp {
		t.Fatalf("job fingerprint %s, want %s", accepted.Fingerprint, fp)
	}

	st := waitDone(t, s, accepted.ID, StateDone)
	if st.Stats == nil {
		t.Fatal("done job without stats")
	}
	if got, want := st.Stats.RouteStats(), direct.Stats; !reflect.DeepEqual(got, want) {
		t.Fatalf("service stats diverge from direct run\n got %+v\nwant %+v", got, want)
	}
}

// TestCacheHitSkipsSimulation resubmits an identical spec and checks it
// is served from the fingerprint cache: cache_hit set, identical stats,
// no additional engine steps, and the /metrics hit counter moving.
func TestCacheHitSkipsSimulation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	spec := quickSpec("cached", 3)

	first := submitSpec(t, s, spec)
	if first.CacheHit {
		t.Fatal("first submission reported a cache hit")
	}
	done := waitDone(t, s, first.ID, StateDone)
	stepsAfterFirst := s.Counters().Steps()

	second := submitSpec(t, s, spec)
	if !second.CacheHit {
		t.Fatal("resubmission missed the cache")
	}
	if second.State != StateDone {
		t.Fatalf("cache-hit job state %s, want done at admission", second.State)
	}
	if !reflect.DeepEqual(second.Stats, done.Stats) {
		t.Fatalf("cached stats %+v differ from original %+v", second.Stats, done.Stats)
	}
	if got := s.Counters().Steps(); got != stepsAfterFirst {
		t.Fatalf("cache hit ran the engine: steps %d -> %d", stepsAfterFirst, got)
	}

	w := do(t, s, http.MethodGet, "/metrics", nil)
	var m Metrics
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", m.Cache.Hits, m.Cache.Misses)
	}
	if m.Cache.HitRatio != 0.5 {
		t.Fatalf("hit ratio %v, want 0.5", m.Cache.HitRatio)
	}
	if m.Jobs[StateDone] != 2 {
		t.Fatalf("jobs done=%d, want 2", m.Jobs[StateDone])
	}
	if m.Engine.StepsTotal != stepsAfterFirst {
		t.Fatalf("metrics steps_total %d, want %d", m.Engine.StepsTotal, stepsAfterFirst)
	}
}

// TestSweepSubmission submits a JSON array and checks each element
// becomes its own job with its own result.
func TestSweepSubmission(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	sweep := []json.RawMessage{}
	for i := int64(1); i <= 3; i++ {
		data, err := quickSpec(fmt.Sprintf("cell-%d", i), i).JSON()
		if err != nil {
			t.Fatal(err)
		}
		sweep = append(sweep, data)
	}
	body, err := json.Marshal(sweep)
	if err != nil {
		t.Fatal(err)
	}
	w := do(t, s, http.MethodPost, "/v1/jobs", body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST sweep: %d %s", w.Code, w.Body)
	}
	var resp struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Jobs) != 3 {
		t.Fatalf("sweep admitted %d jobs, want 3", len(resp.Jobs))
	}
	for _, j := range resp.Jobs {
		st := waitDone(t, s, j.ID, StateDone)
		if st.Stats == nil || !st.Stats.Done {
			t.Fatalf("sweep job %s (%s) incomplete: %+v", j.ID, j.Name, st.Stats)
		}
	}
}

// TestQueueFullBackpressure fills the worker and the queue and checks the
// next submission is refused with 429 without disturbing admitted work.
func TestQueueFullBackpressure(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	gate := make(chan struct{})
	started := make(chan string, 4)
	s.testJobStart = func(j *job) {
		started <- j.id
		<-gate
	}

	a := submitSpec(t, s, quickSpec("a", 1))
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job a never started")
	}
	b := submitSpec(t, s, quickSpec("b", 2))

	data, err := quickSpec("c", 3).JSON()
	if err != nil {
		t.Fatal(err)
	}
	w := do(t, s, http.MethodPost, "/v1/jobs", data)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: %d %s, want 429", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(w.Body.String(), "queue full") {
		t.Fatalf("429 body %q does not explain the backpressure", w.Body)
	}

	// A sweep needing more slots than remain is refused whole.
	sweepBody := []byte("[" + string(data) + "," + string(data) + "]")
	if w := do(t, s, http.MethodPost, "/v1/jobs", sweepBody); w.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow sweep: %d, want 429", w.Code)
	}

	// Release the worker: both admitted jobs must complete untouched by
	// the refusals.
	close(gate)
	for _, id := range []string{a.ID, b.ID} {
		st := waitDone(t, s, id, StateDone)
		if st.Stats == nil || !st.Stats.Done {
			t.Fatalf("job %s incomplete after release", id)
		}
	}
}

// TestDeleteQueuedJob cancels a job that is still waiting in the queue.
func TestDeleteQueuedJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	gate := make(chan struct{})
	started := make(chan string, 4)
	s.testJobStart = func(j *job) {
		started <- j.id
		<-gate
	}
	a := submitSpec(t, s, quickSpec("a", 1))
	<-started
	b := submitSpec(t, s, quickSpec("b", 2))

	w := do(t, s, http.MethodDelete, "/v1/jobs/"+b.ID, nil)
	if w.Code != http.StatusAccepted {
		t.Fatalf("DELETE queued: %d %s", w.Code, w.Body)
	}
	st := waitDone(t, s, b.ID, StateCanceled)
	if st.Stats != nil {
		t.Fatalf("never-started job has stats: %+v", st.Stats)
	}
	if !strings.Contains(st.Error, "before the job started") {
		t.Fatalf("canceled-queued error %q", st.Error)
	}

	close(gate)
	waitDone(t, s, a.ID, StateDone)

	// Deleting a terminal job is a conflict.
	if w := do(t, s, http.MethodDelete, "/v1/jobs/"+a.ID, nil); w.Code != http.StatusConflict {
		t.Fatalf("DELETE terminal: %d, want 409", w.Code)
	}
}

// TestDeleteRunningJob cancels mid-flight and checks the job retires as
// canceled through the Runner's CanceledError, diagnostics included.
func TestDeleteRunningJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	gate := make(chan struct{})
	started := make(chan string, 4)
	s.testJobStart = func(j *job) {
		started <- j.id
		<-gate
	}
	a := submitSpec(t, s, quickSpec("a", 1))
	<-started
	if w := do(t, s, http.MethodDelete, "/v1/jobs/"+a.ID, nil); w.Code != http.StatusAccepted {
		t.Fatalf("DELETE running: %d %s", w.Code, w.Body)
	}
	close(gate)
	st := waitDone(t, s, a.ID, StateCanceled)
	if st.Stats == nil {
		t.Fatal("canceled running job lost its partial stats")
	}
	if st.Diagnostics == "" {
		t.Fatal("canceled running job has no diagnostics")
	}
}

// TestEventsStreamReplay checks the NDJSON stream of a finished job
// parses as the documented metrics wire format with one line per step.
func TestEventsStreamReplay(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	st := submitSpec(t, s, quickSpec("events", 5))
	final := waitDone(t, s, st.ID, StateDone)

	w := do(t, s, http.MethodGet, "/v1/jobs/"+st.ID+"/events", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET events: %d %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	steps, _, events, err := obs.ReadJSONL(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != final.Stats.Steps {
		t.Fatalf("streamed %d step samples over %d steps", len(steps), final.Stats.Steps)
	}
	if len(events) != 0 {
		t.Fatalf("faultless run streamed %d fault events", len(events))
	}
	if got := final.Events; got != len(steps) {
		t.Fatalf("status reports %d events, stream carries %d", got, len(steps))
	}
}

// TestEventsStreamFollow consumes the stream over real HTTP while the job
// is still running and checks the response ends exactly when the job
// retires, having delivered every line.
func TestEventsStreamFollow(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	gate := make(chan struct{})
	started := make(chan string, 4)
	s.testJobStart = func(j *job) {
		started <- j.id
		<-gate
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := submitSpec(t, s, quickSpec("follow", 6))
	<-started

	type streamed struct {
		lines int
		err   error
	}
	got := make(chan streamed, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
		if err != nil {
			got <- streamed{err: err}
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		n := 0
		for sc.Scan() {
			n++
		}
		got <- streamed{lines: n, err: sc.Err()}
	}()

	time.Sleep(20 * time.Millisecond) // let the follower attach mid-run
	close(gate)
	final := waitDone(t, s, st.ID, StateDone)
	res := <-got
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.lines != final.Stats.Steps {
		t.Fatalf("follower saw %d lines over %d steps", res.lines, final.Stats.Steps)
	}
}

// TestSubmitRejections covers the 400 family: output-file fields, unknown
// JSON fields, invalid specs, and the per-job step-budget cap.
func TestSubmitRejections(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2, MaxJobSteps: 500})
	cases := map[string]string{
		"output path": `{"n":6,"k":2,"router":"dimorder","workload":{"kind":"transpose"},"metrics_out":"/tmp/x.jsonl"}`,
		"unknown key": `{"n":6,"k":2,"router":"dimorder","workload":{"kind":"transpose"},"typo_field":1}`,
		"invalid":     `{"n":6,"k":0,"router":"dimorder","workload":{"kind":"transpose"}}`,
		"over budget": `{"n":6,"k":2,"router":"dimorder","workload":{"kind":"transpose"},"max_steps":501}`,
		"not json":    `hello`,
	}
	for name, body := range cases {
		if w := do(t, s, http.MethodPost, "/v1/jobs", []byte(body)); w.Code != http.StatusBadRequest {
			t.Errorf("%s: %d %s, want 400", name, w.Code, w.Body)
		}
	}
	// The automatic budget is also checked against the cap: n=16,k=1 gives
	// 200*(256+32) steps, far past 500.
	auto := `{"n":16,"k":1,"router":"thm15","workload":{"kind":"transpose"}}`
	if w := do(t, s, http.MethodPost, "/v1/jobs", []byte(auto)); w.Code != http.StatusBadRequest {
		t.Errorf("auto budget past cap: %d, want 400", w.Code)
	}
}

// TestJobLookupAndList covers GET /v1/jobs, GET /v1/jobs/{id} and the 404
// path.
func TestJobLookupAndList(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	a := submitSpec(t, s, quickSpec("a", 1))
	waitDone(t, s, a.ID, StateDone)

	if w := do(t, s, http.MethodGet, "/v1/jobs/"+a.ID, nil); w.Code != http.StatusOK {
		t.Fatalf("GET job: %d", w.Code)
	}
	if w := do(t, s, http.MethodGet, "/v1/jobs/j-999999", nil); w.Code != http.StatusNotFound {
		t.Fatalf("GET missing job: %d, want 404", w.Code)
	}
	w := do(t, s, http.MethodGet, "/v1/jobs", nil)
	var resp struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Jobs) != 1 || resp.Jobs[0].ID != a.ID {
		t.Fatalf("job list %+v, want exactly %s", resp.Jobs, a.ID)
	}
}

// TestHealthz checks the liveness endpoint in the accepting state (the
// draining side is covered by the shutdown test).
func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	w := do(t, s, http.MethodGet, "/healthz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	var body healthBody
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" {
		t.Fatalf("healthz status %q", body.Status)
	}
}

// TestCacheEviction checks the FIFO bound holds.
func TestCacheEviction(t *testing.T) {
	c := newCache(2)
	c.put("a", Stats{Steps: 1})
	c.put("b", Stats{Steps: 2})
	c.put("c", Stats{Steps: 3})
	if _, ok := c.lookup("a"); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	for _, fp := range []string{"b", "c"} {
		if _, ok := c.lookup(fp); !ok {
			t.Fatalf("entry %s evicted early", fp)
		}
	}
	if _, _, size := c.stats(); size != 2 {
		t.Fatalf("cache size %d, want 2", size)
	}
}
