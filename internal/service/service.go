// Package service is the long-running control plane of the reproduction:
// an HTTP simulation service (cmd/meshrouted) that accepts scenario specs,
// executes them on a bounded worker pool behind a FIFO job queue, and
// serves results, operational metrics and per-step event streams.
//
// The admission discipline mirrors the bounded-buffer routing the
// repository studies: capacity is explicit (worker pool width, queue
// depth), arrivals beyond capacity are refused immediately (HTTP 429)
// rather than buffered without bound, and every admitted job is eventually
// served or deliberately dropped (canceled). A content-addressed result
// cache keyed by scenario.Spec.Fingerprint exploits the engine's
// determinism: a resubmitted spec is answered from the cache without
// simulating at all.
//
// See docs/SERVICE.md for the API reference, job lifecycle, cache
// semantics and the backpressure contract.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"sync"
	"time"

	"meshroute/internal/fleet"
	"meshroute/internal/obs"
	"meshroute/internal/scenario"
	"meshroute/internal/sim"
)

// Config parameterizes a Server. The zero value gets sensible defaults
// from New.
type Config struct {
	// Workers is the simulation worker-pool width — the number of jobs
	// running concurrently. Default: GOMAXPROCS.
	Workers int
	// QueueDepth is the FIFO job-queue capacity. Submissions that would
	// exceed it are refused with HTTP 429. Default: 64.
	QueueDepth int
	// CacheSize is the result cache's capacity in entries; negative
	// disables caching. Default: 256.
	CacheSize int
	// MaxJobSteps, when positive, rejects (HTTP 400) any spec whose
	// effective step budget — max_steps, the automatic budget, or a
	// dynamic workload's horizon — exceeds it. The budget is never
	// silently clamped: that would change what the spec means.
	MaxJobSteps int
	// EventBuffer is the per-job cap on buffered NDJSON event records;
	// further step samples are counted as dropped. Default: 65536.
	EventBuffer int
	// RetainJobs bounds the in-memory job registry; the oldest terminal
	// jobs are evicted past it. Default: 4096.
	RetainJobs int
	// Fleet, when non-nil, makes this server a coordinator: jobs are
	// dispatched to registered fleet workers (POST /v1/workers to
	// register, GET /v1/workers to inspect) and executed in-process only
	// while no live worker exists. The server's cache and singleflight
	// sit in front of dispatch, so identical specs run once fleet-wide.
	Fleet *fleet.Coordinator
}

// Server is the simulation service. Create with New, expose via Handler,
// stop with Shutdown.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	counters *obs.Counters
	cache    *cache
	queue    chan *job
	stop     chan struct{}
	workerWg sync.WaitGroup

	jobsCtx    context.Context
	jobsCancel context.CancelFunc

	mu       sync.Mutex
	idleCond *sync.Cond
	jobs     map[string]*job
	jobOrder []string
	inflight map[string]*job // fingerprint → executing job (singleflight)
	dedups   int64           // submissions coalesced onto an in-flight job
	nextID   int
	active   int // admitted, not yet terminal (cache hits never count)
	draining bool

	// durations is a ring of recent executed-job wall times (seconds),
	// the Retry-After estimator's input.
	durations []float64
	durNext   int
	durCount  int

	shutdownOnce sync.Once
	start        time.Time

	// Test seams (nil in production): testJobStart runs after a job
	// transitions to running, before the simulation; testStepHook is
	// installed as the job Runner's StepHook.
	testJobStart func(j *job)
	testStepHook func(id string, step int)
}

// New creates a Server with cfg (zero fields defaulted) and starts its
// worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 256
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 65536
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 4096
	}
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		counters:  &obs.Counters{},
		cache:     newCache(cfg.CacheSize),
		queue:     make(chan *job, cfg.QueueDepth),
		stop:      make(chan struct{}),
		jobs:      make(map[string]*job),
		inflight:  make(map[string]*job),
		durations: make([]float64, 32),
		start:     time.Now(),
	}
	s.idleCond = sync.NewCond(&s.mu)
	s.jobsCtx, s.jobsCancel = context.WithCancel(context.Background())

	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Fleet != nil {
		s.mux.HandleFunc("POST /v1/workers", s.handleWorkerRegister)
		s.mux.HandleFunc("GET /v1/workers", s.handleWorkerList)
	}

	for i := 0; i < cfg.Workers; i++ {
		s.workerWg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the service: new submissions are refused (503), jobs
// already admitted keep running until they finish or ctx expires —
// whichever comes first — and expiry cancels them (they retire as
// canceled with partial stats, like a DELETE). The worker pool exits
// before Shutdown returns, so a returned Shutdown means no service
// goroutines remain. Safe to call once; concurrent callers block until
// the first call completes.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()

		idle := make(chan struct{})
		go func() {
			s.mu.Lock()
			for s.active > 0 {
				s.idleCond.Wait()
			}
			s.mu.Unlock()
			close(idle)
		}()
		select {
		case <-idle:
		case <-ctx.Done():
			s.jobsCancel() // abort running jobs between engine steps
			<-idle
		}
		close(s.stop)
		s.workerWg.Wait()
		s.jobsCancel()
	})
	return nil
}

// WaitJob blocks until the job reaches a terminal state (or ctx is
// canceled) and returns its status; ok is false for an unknown id.
func (s *Server) WaitJob(ctx context.Context, id string) (JobStatus, bool) {
	j := s.lookup(id)
	if j == nil {
		return JobStatus{}, false
	}
	select {
	case <-j.done:
	case <-ctx.Done():
	}
	return j.status(), true
}

// Counters returns the shared engine-counter sink (total steps, moves,
// deliveries across all jobs).
func (s *Server) Counters() *obs.Counters { return s.counters }

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// jobDone is every executing job's onDone callback: it releases the
// job's singleflight slot, fans its outcome out to every submission that
// attached while it ran, and balances the active count, waking Shutdown
// when the service goes idle.
func (s *Server) jobDone(j *job) {
	final := j.status()
	s.mu.Lock()
	if s.inflight[j.fingerprint] == j {
		delete(s.inflight, j.fingerprint)
	}
	attached := j.attached
	j.attached = nil
	s.mu.Unlock()
	for _, a := range attached {
		var stats *Stats
		if final.Stats != nil {
			st := *final.Stats
			stats = &st
		}
		a.finish(final.State, stats, final.Error, final.Diagnostics)
	}
	s.mu.Lock()
	s.active--
	if s.active == 0 {
		s.idleCond.Broadcast()
	}
	s.mu.Unlock()
}

// worker executes queued jobs until the stop channel closes; any jobs
// still queued at that point (only possible if Shutdown's accounting has
// already retired them) are drained defensively.
func (s *Server) worker() {
	defer s.workerWg.Done()
	for {
		select {
		case j := <-s.queue:
			s.runJob(j)
		case <-s.stop:
			for {
				select {
				case j := <-s.queue:
					j.finish(StateCanceled, nil, "server shut down before the job started", "")
				default:
					return
				}
			}
		}
	}
}

// runJob executes one job — on the fleet when this server coordinates
// one with live workers, in-process otherwise — feeding the shared
// counters and the job's event stream, and retires it.
func (s *Server) runJob(j *job) {
	if !j.start() {
		return // canceled while queued; already retired
	}
	if j.ctx.Err() != nil {
		j.finish(StateCanceled, nil, "canceled before the job started", "")
		return
	}
	if s.testJobStart != nil {
		s.testJobStart(j)
	}
	began := time.Now()
	defer func() { s.recordDuration(time.Since(began)) }()
	if s.cfg.Fleet != nil && s.cfg.Fleet.Alive() > 0 && s.runRemote(j) {
		return
	}
	runner := scenario.Runner{Sink: obs.Multi{s.counters, j.stream}}
	if s.testStepHook != nil {
		hook, jobID := s.testStepHook, j.id
		runner.StepHook = func(net *sim.Network, step int) { hook(jobID, step) }
	}
	res, err := runner.Run(j.ctx, j.spec)
	if err != nil {
		j.finish(StateFailed, nil, err.Error(), "")
		return
	}
	stats := toStats(res.Stats)
	if res.Err != nil {
		diag := fmt.Sprintf("%s", res.Net.CollectDiagnostics())
		var cerr *sim.CanceledError
		if errors.As(res.Err, &cerr) {
			j.finish(StateCanceled, &stats, res.Err.Error(), diag)
		} else {
			j.finish(StateFailed, &stats, res.Err.Error(), diag)
		}
		return
	}
	s.cache.put(j.fingerprint, stats)
	j.finish(StateDone, &stats, "", "")
}

// runRemote dispatches one job to the fleet and commits the outcome. It
// returns false — leaving the job running, untouched — only when the
// fleet reports no live workers, in which case the caller degrades to
// in-process execution; every other outcome (success, run-level abort,
// typed dispatch failure, cancellation) retires the job here.
func (s *Server) runRemote(j *job) bool {
	res, err := s.cfg.Fleet.Execute(j.ctx, j.spec)
	if err != nil {
		switch {
		case errors.Is(err, fleet.ErrNoWorkers):
			return false
		case j.ctx.Err() != nil:
			j.finish(StateCanceled, nil, "canceled during fleet dispatch: "+err.Error(), "")
		default:
			j.finish(StateFailed, nil, err.Error(), "")
		}
		return true
	}
	// Commit the worker's event lines verbatim (byte-identical to a local
	// run) and replay them into the shared counters, so /metrics
	// aggregates fleet-wide engine throughput exactly as if the cell had
	// run here.
	for _, line := range res.Events {
		j.stream.appendRaw(line)
	}
	j.stream.addDropped(res.EventsDropped)
	if rec, err := obs.ReadJSONLRecords(bytes.NewReader(bytes.Join(res.Events, nil))); err == nil {
		for _, sample := range rec.Steps {
			s.counters.Step(sample)
		}
		for _, sp := range rec.Spans {
			s.counters.Span(sp)
		}
		for _, e := range rec.Events {
			s.counters.Event(e)
		}
		for _, ru := range rec.Runs {
			s.counters.Run(ru)
		}
	}
	st := res.Stats
	switch {
	case res.Canceled:
		j.finish(StateCanceled, &st, res.Error, res.Diagnostics)
	case res.Error != "":
		j.finish(StateFailed, &st, res.Error, res.Diagnostics)
	default:
		s.cache.put(j.fingerprint, st)
		j.finish(StateDone, &st, "", "")
	}
	return true
}

// recordDuration folds one executed job's wall time into the ring behind
// the Retry-After estimate.
func (s *Server) recordDuration(d time.Duration) {
	s.mu.Lock()
	s.durations[s.durNext] = d.Seconds()
	s.durNext = (s.durNext + 1) % len(s.durations)
	if s.durCount < len(s.durations) {
		s.durCount++
	}
	s.mu.Unlock()
}

// retryAfterLocked estimates, in whole seconds, how long until the queue
// can take `needed` more jobs: the mean recent job duration times the
// shortfall, spread over the worker pool, clamped to [1, 60]. Before any
// job has finished the estimate is the 1-second floor. Caller holds s.mu.
func (s *Server) retryAfterLocked(needed int64) int {
	mean := 0.0
	for i := 0; i < s.durCount; i++ {
		mean += s.durations[i]
	}
	if s.durCount > 0 {
		mean /= float64(s.durCount)
	}
	free := s.cfg.QueueDepth - len(s.queue)
	shortfall := needed - int64(free)
	if shortfall < 1 {
		shortfall = 1
	}
	secs := int(mean*float64(shortfall)/float64(s.cfg.Workers)) + 1
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// handleWorkerRegister is POST /v1/workers (coordinator mode): a fleet
// worker announces {"url": base} to register and re-announces it as its
// heartbeat.
func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	var body struct {
		URL string `json:"url"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "parse registration: %v", err)
		return
	}
	u, err := url.Parse(body.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		writeError(w, http.StatusBadRequest, "registration url %q is not an absolute URL", body.URL)
		return
	}
	s.cfg.Fleet.Register(body.URL)
	writeJSON(w, http.StatusOK, struct {
		Workers int `json:"workers"`
	}{s.cfg.Fleet.Alive()})
}

// handleWorkerList is GET /v1/workers (coordinator mode).
func (s *Server) handleWorkerList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Workers []fleet.WorkerStatus `json:"workers"`
	}{s.cfg.Fleet.Workers()})
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response write errors are the client's problem
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// admission is one submitted spec with its fingerprint and cache outcome.
type admission struct {
	spec *scenario.Spec
	fp   string
	hit  bool
	st   Stats
}

// vetSpec applies the service's submission policy to one parsed spec.
func (s *Server) vetSpec(spec *scenario.Spec) error {
	if spec.MetricsOut != "" || spec.TraceOut != "" {
		return fmt.Errorf("metrics_out/trace_out are server-side file paths and are not accepted; stream GET /v1/jobs/{id}/events instead")
	}
	if s.cfg.MaxJobSteps > 0 {
		if budget := spec.StepBudget(); budget > s.cfg.MaxJobSteps {
			return fmt.Errorf("step budget %d exceeds the server's per-job cap %d", budget, s.cfg.MaxJobSteps)
		}
	}
	return nil
}

// handleSubmit is POST /v1/jobs: one spec object, or an array of specs (a
// sweep). Sweeps are admitted all-or-nothing: if the queue cannot hold
// every cache-missing spec, nothing is enqueued and the whole submission
// gets the 429.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var specs []*scenario.Spec
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var raws []json.RawMessage
		if err := json.Unmarshal(trimmed, &raws); err != nil {
			writeError(w, http.StatusBadRequest, "parse sweep: %v", err)
			return
		}
		if len(raws) == 0 {
			writeError(w, http.StatusBadRequest, "empty sweep")
			return
		}
		for i, raw := range raws {
			spec, err := scenario.Parse(raw)
			if err != nil {
				writeError(w, http.StatusBadRequest, "sweep spec %d: %v", i, err)
				return
			}
			specs = append(specs, spec)
		}
	} else {
		spec, err := scenario.Parse(data)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		specs = []*scenario.Spec{spec}
	}

	adms := make([]admission, len(specs))
	for i, spec := range specs {
		if err := s.vetSpec(spec); err != nil {
			writeError(w, http.StatusBadRequest, "spec %d: %v", i, err)
			return
		}
		fp, err := spec.Fingerprint()
		if err != nil {
			writeError(w, http.StatusBadRequest, "spec %d: %v", i, err)
			return
		}
		adms[i] = admission{spec: spec, fp: fp}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting new jobs")
		return
	}
	// Three admission buckets: cache hits cost nothing, submissions whose
	// fingerprint is already executing (or appears earlier in this very
	// submission) coalesce onto that execution via singleflight, and only
	// genuinely fresh specs need queue slots.
	var hits, deduped, misses int64
	fresh := make(map[string]bool)
	for i := range adms {
		adms[i].st, adms[i].hit = s.cache.lookup(adms[i].fp)
		switch {
		case adms[i].hit:
			hits++
		case s.inflight[adms[i].fp] != nil || fresh[adms[i].fp]:
			deduped++
		default:
			fresh[adms[i].fp] = true
			misses++
		}
	}
	if free := s.cfg.QueueDepth - len(s.queue); int64(free) < misses {
		retryAfter := s.retryAfterLocked(misses)
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeError(w, http.StatusTooManyRequests,
			"queue full: %d of %d slots free, submission needs %d", free, s.cfg.QueueDepth, misses)
		return
	}
	s.cache.record(hits, misses)
	s.dedups += deduped
	statuses := make([]JobStatus, len(adms))
	for i, adm := range adms {
		statuses[i] = s.admitLocked(adm)
	}
	s.evictJobsLocked()
	s.mu.Unlock()

	if len(trimmed) > 0 && trimmed[0] == '[' {
		writeJSON(w, http.StatusAccepted, struct {
			Jobs []JobStatus `json:"jobs"`
		}{statuses})
		return
	}
	writeJSON(w, http.StatusAccepted, statuses[0])
}

// admitLocked registers one admitted spec as a job (caller holds s.mu and
// has reserved queue capacity for fresh misses). A spec whose fingerprint
// is already executing attaches to that job instead of enqueuing — the
// singleflight guarantee that identical concurrent submissions run the
// engine exactly once.
func (s *Server) admitLocked(adm admission) JobStatus {
	s.nextID++
	id := fmt.Sprintf("j-%06d", s.nextID)
	now := time.Now()
	if adm.hit {
		st := adm.st
		j := &job{
			id:          id,
			spec:        adm.spec,
			fingerprint: adm.fp,
			cancel:      func() {},
			stream:      newStream(0),
			state:       StateDone,
			cacheHit:    true,
			stats:       &st,
			created:     now,
			started:     now,
			finished:    now,
			done:        make(chan struct{}),
		}
		close(j.done)
		j.stream.close()
		s.jobs[id] = j
		s.jobOrder = append(s.jobOrder, id)
		return j.status()
	}
	if primary := s.inflight[adm.fp]; primary != nil {
		// Share the primary's stream so followers of either job see the
		// same bytes; jobDone retires this job with the primary's outcome.
		j := &job{
			id:           id,
			spec:         adm.spec,
			fingerprint:  adm.fp,
			cancel:       func() {},
			stream:       primary.stream,
			sharedStream: true,
			state:        StateQueued,
			deduped:      true,
			created:      now,
			done:         make(chan struct{}),
		}
		primary.attached = append(primary.attached, j)
		s.jobs[id] = j
		s.jobOrder = append(s.jobOrder, id)
		return j.status()
	}
	ctx, cancel := context.WithCancel(s.jobsCtx)
	j := &job{
		id:          id,
		spec:        adm.spec,
		fingerprint: adm.fp,
		ctx:         ctx,
		cancel:      cancel,
		stream:      newStream(s.cfg.EventBuffer),
		state:       StateQueued,
		created:     now,
		done:        make(chan struct{}),
	}
	j.onDone = func() { s.jobDone(j) }
	s.jobs[id] = j
	s.jobOrder = append(s.jobOrder, id)
	s.inflight[adm.fp] = j
	s.active++
	s.queue <- j // capacity reserved under s.mu; never blocks
	return j.status()
}

// evictJobsLocked trims the registry to RetainJobs by dropping the oldest
// terminal jobs (running and queued jobs are never evicted).
func (s *Server) evictJobsLocked() {
	if len(s.jobs) <= s.cfg.RetainJobs {
		return
	}
	kept := s.jobOrder[:0]
	for _, id := range s.jobOrder {
		if len(s.jobs) > s.cfg.RetainJobs && s.jobs[id].currentState().Terminal() {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.jobOrder = kept
}

// handleList is GET /v1/jobs: every retained job in submission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]JobStatus, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		statuses = append(statuses, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{statuses})
}

// handleGet is GET /v1/jobs/{id}.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleDelete is DELETE /v1/jobs/{id}: cancel. A queued job retires
// immediately; a running job's context is canceled and it retires with
// partial stats via the Runner's *sim.CanceledError. Terminal jobs are a
// 409 — there is nothing left to cancel.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if j.currentState().Terminal() {
		writeJSON(w, http.StatusConflict, j.status())
		return
	}
	j.cancelRequest()
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleEvents is GET /v1/jobs/{id}/events: an NDJSON replay-then-follow
// stream of the job's per-step samples and fault events in the
// docs/OBSERVABILITY.md wire format. The response ends when the job
// retires; cache-hit jobs stream nothing (no simulation ran).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	stop := context.AfterFunc(r.Context(), j.stream.wake)
	defer stop()
	for i := 0; ; i++ {
		line, ok := j.stream.next(r.Context(), i)
		if !ok {
			return
		}
		if _, err := w.Write(line); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// healthBody is the JSON shape of GET /healthz.
type healthBody struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// handleHealthz is GET /healthz: 200 "ok" while accepting work, 503
// "draining" once Shutdown has begun.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	body := healthBody{Status: "ok", UptimeSeconds: time.Since(s.start).Seconds()}
	code := http.StatusOK
	if draining {
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// Metrics is the JSON shape of GET /metrics: jobs by state, queue
// occupancy, cache effectiveness and aggregate engine throughput (fed by
// the shared obs.Counters sink).
type Metrics struct {
	UptimeSeconds float64       `json:"uptime_seconds"`
	Draining      bool          `json:"draining"`
	Jobs          map[State]int `json:"jobs"`
	QueueDepth    int           `json:"queue_depth"`
	QueueCapacity int           `json:"queue_capacity"`
	Cache         CacheMetrics  `json:"cache"`
	Engine        EngineMetrics `json:"engine"`
	Fleet         *FleetMetrics `json:"fleet,omitempty"`
}

// CacheMetrics describes the result cache and singleflight coalescing.
type CacheMetrics struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
	Entries  int     `json:"entries"`
	// Deduped counts submissions that attached to an already-executing
	// identical spec instead of running their own simulation.
	Deduped int64 `json:"deduped"`
}

// FleetMetrics describes the coordinator's worker fleet (coordinator
// mode only).
type FleetMetrics struct {
	Alive   int                  `json:"alive"`
	Workers []fleet.WorkerStatus `json:"workers"`
	Totals  fleet.Totals         `json:"totals"`
}

// EngineMetrics aggregates simulation throughput across every job.
type EngineMetrics struct {
	StepsTotal       int64   `json:"steps_total"`
	MovesTotal       int64   `json:"moves_total"`
	DeliveredTotal   int64   `json:"delivered_total"`
	FaultEventsTotal int64   `json:"fault_events_total"`
	StepsPerSec      float64 `json:"steps_per_sec"`
	// Online-injection admission totals across every job (0 while only
	// static workloads have run): offers presented, admissions, refusals,
	// and the aggregate per-attempt refusal rate
	// refused/(admitted+refused).
	OfferedTotal  int64   `json:"offered_total"`
	AdmittedTotal int64   `json:"admitted_total"`
	RefusedTotal  int64   `json:"refused_total"`
	RefusalRate   float64 `json:"refusal_rate"`
	// Congestion/dilation efficiency across every analyzed job (0 while
	// only analysis-off jobs have run): the number of analyzed runs and
	// the aggregate makespan/(C+D) ratio, weighted by each run's C+D
	// (see docs/ANALYSIS.md).
	AnalyzedRuns int64   `json:"analyzed_runs"`
	CDRatio      float64 `json:"cd_ratio"`
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(s.start).Seconds()
	m := Metrics{
		UptimeSeconds: uptime,
		Jobs: map[State]int{
			StateQueued: 0, StateRunning: 0, StateDone: 0, StateFailed: 0, StateCanceled: 0,
		},
		QueueCapacity: s.cfg.QueueDepth,
	}
	s.mu.Lock()
	m.Draining = s.draining
	m.QueueDepth = len(s.queue)
	deduped := s.dedups
	for _, j := range s.jobs {
		m.Jobs[j.currentState()]++
	}
	s.mu.Unlock()
	hits, misses, size := s.cache.stats()
	m.Cache = CacheMetrics{Hits: hits, Misses: misses, Entries: size, Deduped: deduped}
	if s.cfg.Fleet != nil {
		m.Fleet = &FleetMetrics{
			Alive:   s.cfg.Fleet.Alive(),
			Workers: s.cfg.Fleet.Workers(),
			Totals:  s.cfg.Fleet.Stats(),
		}
	}
	if lookups := hits + misses; lookups > 0 {
		m.Cache.HitRatio = float64(hits) / float64(lookups)
	}
	m.Engine = EngineMetrics{
		StepsTotal:       s.counters.Steps(),
		MovesTotal:       s.counters.Moves(),
		DeliveredTotal:   s.counters.Delivered(),
		FaultEventsTotal: s.counters.Events(),
		OfferedTotal:     s.counters.Offered(),
		AdmittedTotal:    s.counters.Admitted(),
		RefusedTotal:     s.counters.Refused(),
		AnalyzedRuns:     s.counters.Runs(),
		CDRatio:          s.counters.CDRatio(),
	}
	if uptime > 0 {
		m.Engine.StepsPerSec = float64(m.Engine.StepsTotal) / uptime
	}
	if attempts := m.Engine.AdmittedTotal + m.Engine.RefusedTotal; attempts > 0 {
		m.Engine.RefusalRate = float64(m.Engine.RefusedTotal) / float64(attempts)
	}
	writeJSON(w, http.StatusOK, m)
}
