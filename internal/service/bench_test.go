package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// benchSubmit drives one POST /v1/jobs through the handler and returns
// the accepted status.
func benchSubmit(b *testing.B, h http.Handler, body []byte) JobStatus {
	r := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusAccepted {
		b.Fatalf("POST /v1/jobs: %d %s", w.Code, w.Body)
	}
	var st JobStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkSubmitCacheHit measures the submit→result path when the
// fingerprint is already cached: parse, fingerprint, lookup, respond —
// no simulation.
func BenchmarkSubmitCacheHit(b *testing.B) {
	s := New(Config{Workers: 2, QueueDepth: 64})
	defer shutdownBench(b, s)
	h := s.Handler()
	body, err := quickSpec("bench-hit", 1).JSON()
	if err != nil {
		b.Fatal(err)
	}

	warm := benchSubmit(b, h, body)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if st, ok := s.WaitJob(ctx, warm.ID); !ok || st.State != StateDone {
		b.Fatalf("warmup job state %v", st.State)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := benchSubmit(b, h, body)
		if !st.CacheHit {
			b.Fatal("expected a cache hit")
		}
	}
}

// BenchmarkSubmitCacheMiss measures the full submit→simulate→result
// path: every iteration carries a fresh workload seed, so the
// fingerprint never repeats and each job runs the engine.
func BenchmarkSubmitCacheMiss(b *testing.B) {
	s := New(Config{Workers: 2, QueueDepth: 64, CacheSize: 1})
	defer shutdownBench(b, s)
	h := s.Handler()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := quickSpec(fmt.Sprintf("bench-miss-%d", i), int64(i)+1)
		body, err := spec.JSON()
		if err != nil {
			b.Fatal(err)
		}
		st := benchSubmit(b, h, body)
		if st.CacheHit {
			b.Fatal("unexpected cache hit")
		}
		final, ok := s.WaitJob(ctx, st.ID)
		if !ok || final.State != StateDone {
			b.Fatalf("job %s state %v", st.ID, final.State)
		}
	}
}

func shutdownBench(b *testing.B, s *Server) {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		b.Fatal(err)
	}
}
