// Package par provides the small parallel-execution helpers used by the
// experiment harness: every simulation cell (one network, one router, one
// workload) is fully independent, so parameter sweeps fan out across a
// bounded worker pool and collect results in input order, keeping the
// printed tables deterministic while using all cores.
//
// This is cell-level parallelism — whole networks run concurrently and
// never share state, so no PacketID or node index ever crosses a cell
// boundary and workers need no synchronization beyond the pool itself. It
// is distinct from, and composes with, the engine's own intra-step
// sharding (sim.Config.Workers / sim.ParallelCloner), which splits one
// network's node range across clones of a single algorithm; see
// docs/SCALING.md for when to use which.
package par

import (
	"runtime"
	"sync"
)

// Map runs fn(i) for i in [0, n) on a bounded worker pool and returns the
// results in input order. The first error wins; remaining work still runs
// to completion (cells are cheap and independent).
func Map[T any](n int, workers int, fn func(i int) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// ForEach is Map without results.
func ForEach(n int, workers int, fn func(i int) error) error {
	_, err := Map(n, workers, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
