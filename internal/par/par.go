// Package par provides the small parallel-execution helpers used by the
// experiment harness: every simulation cell (one network, one router, one
// workload) is fully independent, so parameter sweeps fan out across a
// bounded worker pool and collect results in input order, keeping the
// printed tables deterministic while using all cores.
//
// This is cell-level parallelism — whole networks run concurrently and
// never share state, so no PacketID or node index ever crosses a cell
// boundary and workers need no synchronization beyond the pool itself. It
// is distinct from, and composes with, the engine's own intra-step
// sharding (sim.Config.Workers / sim.ParallelCloner), which splits one
// network's node range across clones of a single algorithm; see
// docs/SCALING.md for when to use which.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(i) for i in [0, n) on a bounded worker pool and returns the
// results in input order. The first error (lowest index) wins; remaining
// work still runs to completion (cells are cheap and independent).
//
// Workers claim indices from a shared atomic counter in small contiguous
// chunks, so dispatch is one atomic add per chunk rather than a
// channel rendezvous per item — short cells no longer serialize on a
// single dispatcher goroutine. Chunks are small enough (at most 1/8 of a
// worker's even share) that an unlucky run of slow cells in one chunk
// cannot idle the other workers for long.
func Map[T any](n int, workers int, fn func(i int) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					out[i], errs[i] = fn(i)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// ForEach is Map without results.
func ForEach(n int, workers int, fn func(i int) error) error {
	_, err := Map(n, workers, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
