package par

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMapOrderPreserved(t *testing.T) {
	out, err := Map(100, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Map(50, 4, func(i int) (int, error) {
		if i == 33 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestMapRunsEverything(t *testing.T) {
	var count atomic.Int64
	if err := ForEach(257, 5, func(i int) error {
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 257 {
		t.Fatalf("ran %d of 257", count.Load())
	}
}

func TestMapZeroAndOneWorkers(t *testing.T) {
	out, err := Map(5, 0, func(i int) (int, error) { return i, nil }) // 0 => GOMAXPROCS
	if err != nil || len(out) != 5 {
		t.Fatal("default workers failed")
	}
	out, err = Map(5, 1, func(i int) (int, error) { return i + 1, nil })
	if err != nil || out[4] != 5 {
		t.Fatal("single worker failed")
	}
}

// TestMapShortCellThroughput is throughput-shaped: a large number of
// near-zero-cost cells, the case the chunked dispatcher exists for (an
// unbuffered channel would pay a rendezvous per cell and serialize on the
// dispatcher). It pins correctness under that load — every index runs
// exactly once and results land in input order — across worker counts
// around and above GOMAXPROCS.
func TestMapShortCellThroughput(t *testing.T) {
	const n = 100_000
	ran := make([]atomic.Int32, n)
	for _, workers := range []int{1, 2, 8, 32} {
		for i := range ran {
			ran[i].Store(0)
		}
		out, err := Map(n, workers, func(i int) (int, error) {
			ran[i].Add(1)
			return i ^ 0x5a, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i^0x5a {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
			if c := ran[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// BenchmarkMapShortCells measures dispatch overhead per near-empty cell.
func BenchmarkMapShortCells(b *testing.B) {
	var sink atomic.Int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := Map(4096, 8, func(i int) (int, error) {
			sink.Add(int64(i))
			return i, nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestQuickMapMatchesSequential(t *testing.T) {
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw)%60 + 1
		w := int(wRaw)%9 + 1
		out, err := Map(n, w, func(i int) (int, error) { return 3*i + 1, nil })
		if err != nil {
			return false
		}
		for i, v := range out {
			if v != 3*i+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
