// Package viz renders small ASCII visualizations of a routing run: node
// occupancy heatmaps (which make the corner congestion of the constructed
// permutations directly visible) and link-utilization maps from traces.
// North is up, matching the paper's figures: row 0 (south) prints last.
package viz

import (
	"fmt"
	"strings"

	"meshroute/internal/grid"
	"meshroute/internal/sim"
	"meshroute/internal/trace"
)

// heat maps an intensity 0..1 to a glyph.
var glyphs = []byte(" .:-=+*#%@")

func glyph(v, max int) byte {
	if max == 0 || v == 0 {
		return glyphs[0]
	}
	idx := 1 + (len(glyphs)-2)*v/max
	if idx >= len(glyphs) {
		idx = len(glyphs) - 1
	}
	return glyphs[idx]
}

// Occupancy renders the current per-node packet counts of a network as a
// heatmap, one character per node.
func Occupancy(net *sim.Network) string {
	w, h := net.Topo.Width(), net.Topo.Height()
	counts := make([]int, w*h)
	max := 0
	for _, id := range net.Occupied() {
		c := net.Node(id).Len()
		counts[id] = c
		if c > max {
			max = c
		}
	}
	return Grid(w, h, counts, fmt.Sprintf("occupancy (max %d)", max))
}

// Grid renders arbitrary per-node counts (indexed by node id, row-major
// from the south) as a heatmap with a caption.
func Grid(w, h int, counts []int, caption string) string {
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for y := h - 1; y >= 0; y-- {
		for x := 0; x < w; x++ {
			b.WriteByte(glyph(counts[y*w+x], max))
		}
		b.WriteByte('\n')
	}
	if caption != "" {
		fmt.Fprintf(&b, "[%s]\n", caption)
	}
	return b.String()
}

// LinkTraffic renders a trace analysis as a per-node heatmap of outgoing
// transmissions.
func LinkTraffic(topo grid.Topology, a *trace.Analysis) string {
	w, h := topo.Width(), topo.Height()
	counts := make([]int, w*h)
	for id, n := range a.NodeTraffic {
		counts[id] = n
	}
	return Grid(w, h, counts, fmt.Sprintf("link traffic, %d moves over %d steps", a.TotalMoves, a.Steps))
}

// DeliveryCurve renders deliveries per step as a tiny bar chart (one row
// per bucket of steps).
func DeliveryCurve(a *trace.Analysis, buckets int) string {
	if a.Steps == 0 || buckets < 1 {
		return "(empty trace)\n"
	}
	per := (a.Steps + buckets - 1) / buckets
	counts := make([]int, buckets)
	max := 0
	for step, c := range a.DeliveredAt {
		i := (step - 1) / per
		if i >= buckets {
			i = buckets - 1
		}
		counts[i] += c
		if counts[i] > max {
			max = counts[i]
		}
	}
	var b strings.Builder
	for i, c := range counts {
		bar := 0
		if max > 0 {
			bar = 40 * c / max
		}
		fmt.Fprintf(&b, "steps %4d-%4d %s %d\n", i*per+1, min((i+1)*per, a.Steps), strings.Repeat("█", bar), c)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
