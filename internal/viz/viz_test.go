package viz

import (
	"bytes"
	"strings"
	"testing"

	"meshroute/internal/dex"
	"meshroute/internal/grid"
	"meshroute/internal/routers"
	"meshroute/internal/sim"
	"meshroute/internal/trace"
	"meshroute/internal/workload"
)

func TestGlyphScale(t *testing.T) {
	if glyph(0, 10) != ' ' {
		t.Fatal("zero must be blank")
	}
	if glyph(10, 10) != '@' {
		t.Fatalf("max must be densest, got %c", glyph(10, 10))
	}
	if glyph(5, 0) != ' ' {
		t.Fatal("zero max must be blank")
	}
	prev := -1
	for v := 1; v <= 10; v++ {
		idx := bytes.IndexByte(glyphs, glyph(v, 10))
		if idx < prev {
			t.Fatal("glyph intensity must be monotone")
		}
		prev = idx
	}
}

func TestGridRendering(t *testing.T) {
	counts := make([]int, 9)
	counts[0] = 5 // southwest corner
	out := Grid(3, 3, counts, "test")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 3 rows + caption, got %d lines", len(lines))
	}
	// Southwest corner prints in the LAST grid row, first column.
	if lines[2][0] != '@' {
		t.Fatalf("southwest corner not rendered at bottom-left:\n%s", out)
	}
	if lines[0][0] != ' ' {
		t.Fatal("empty node must be blank")
	}
	if !strings.Contains(lines[3], "test") {
		t.Fatal("caption missing")
	}
}

func TestOccupancyOfLiveNetwork(t *testing.T) {
	topo := grid.NewSquareMesh(6)
	net := sim.MustNew(routers.Thm15Config(topo, 2))
	if err := workload.Reversal(topo).Place(net); err != nil {
		t.Fatal(err)
	}
	out := Occupancy(net)
	if !strings.Contains(out, "occupancy") {
		t.Fatal("caption missing")
	}
	// All 36 nodes hold a packet: no blanks in the 6 grid rows.
	for _, line := range strings.Split(out, "\n")[:6] {
		if strings.Contains(line, " ") {
			t.Fatalf("full mesh should have no blanks:\n%s", out)
		}
	}
}

func TestLinkTrafficAndDeliveryCurve(t *testing.T) {
	topo := grid.NewSquareMesh(8)
	net := sim.MustNew(routers.Thm15Config(topo, 2))
	if err := workload.Random(topo, 4).Place(net); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	rec.Attach(net)
	if _, err := net.Run(dex.NewAdapter(routers.Thm15{}), 1000); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	steps, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := trace.Analyze(steps)
	lt := LinkTraffic(topo, a)
	if !strings.Contains(lt, "link traffic") {
		t.Fatal("traffic caption missing")
	}
	dc := DeliveryCurve(a, 5)
	if !strings.Contains(dc, "steps") {
		t.Fatalf("delivery curve malformed:\n%s", dc)
	}
	if DeliveryCurve(&trace.Analysis{}, 5) != "(empty trace)\n" {
		t.Fatal("empty curve handling")
	}
}
