package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"meshroute/internal/obs"
	"meshroute/internal/scenario"
	"meshroute/internal/sim"
)

// WorkerConfig parameterizes a Worker. The zero value gets sensible
// defaults from NewWorker.
type WorkerConfig struct {
	// Slots bounds concurrently executing cells; dispatches past it are
	// refused with 429 and retried elsewhere by the coordinator.
	// Default: GOMAXPROCS.
	Slots int
	// EventBuffer caps buffered metrics lines per cell; further step
	// samples are counted as dropped — the same bound internal/service
	// applies to local jobs, so remote streams stay byte-identical.
	// Default: 65536.
	EventBuffer int
}

// Worker executes cells for a coordinator: POST /v1/cells runs one spec
// synchronously and answers with the cell's event lines and result as
// NDJSON. Create with NewWorker, expose via Handler, and keep the worker
// registered with Announce.
type Worker struct {
	cfg WorkerConfig
	mux *http.ServeMux
	sem chan struct{}

	// testCellStart (nil in production) runs after a cell is admitted,
	// before the simulation — the seam kill-mid-cell tests synchronize on.
	testCellStart func(spec *scenario.Spec)
}

// NewWorker creates a Worker with cfg (zero fields defaulted).
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Slots <= 0 {
		cfg.Slots = runtime.GOMAXPROCS(0)
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 65536
	}
	w := &Worker{cfg: cfg, mux: http.NewServeMux(), sem: make(chan struct{}, cfg.Slots)}
	w.mux.HandleFunc("POST /v1/cells", w.handleCell)
	w.mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(rw, `{"status":"ok"}`)
	})
	return w
}

// Handler returns the worker's HTTP handler.
func (w *Worker) Handler() http.Handler { return w.mux }

// workerError writes the JSON error shape the coordinator expects on
// non-200 responses.
func workerError(rw http.ResponseWriter, code int, format string, args ...any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	json.NewEncoder(rw).Encode(struct { //nolint:errcheck // response write errors are the coordinator's problem
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}

// handleCell is POST /v1/cells: parse, admit against the slot bound, run
// the spec under the request context (the coordinator abandoning the
// attempt cancels the run), and stream events + result. The body is
// buffered until the run finishes, so a well-formed response always
// carries a complete cell.
func (w *Worker) handleCell(rw http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(rw, r.Body, 8<<20)
	data := new(bytes.Buffer)
	if _, err := data.ReadFrom(body); err != nil {
		workerError(rw, http.StatusBadRequest, "read body: %v", err)
		return
	}
	spec, err := scenario.Parse(data.Bytes())
	if err != nil {
		workerError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	if spec.MetricsOut != "" || spec.TraceOut != "" {
		workerError(rw, http.StatusBadRequest, "metrics_out/trace_out are worker-side file paths and are not accepted")
		return
	}
	select {
	case w.sem <- struct{}{}:
		defer func() { <-w.sem }()
	default:
		workerError(rw, http.StatusTooManyRequests, "worker at capacity (%d cells in flight)", w.cfg.Slots)
		return
	}
	if w.testCellStart != nil {
		w.testCellStart(spec)
	}

	buf := &lineBuffer{limit: w.cfg.EventBuffer}
	runner := scenario.Runner{Sink: buf}
	res, err := runner.Run(r.Context(), spec)
	if err != nil {
		workerError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	cl := cellLine{T: lineCell, Stats: ToStats(res.Stats)}
	if res.Err != nil {
		cl.Error = res.Err.Error()
		cl.Diagnostics = fmt.Sprintf("%s", res.Net.CollectDiagnostics())
		var cerr *sim.CanceledError
		cl.Canceled = errors.As(res.Err, &cerr)
	}
	lines, dropped := buf.snapshot()
	cl.EventsDropped = dropped
	final, err := json.Marshal(cl)
	if err != nil {
		workerError(rw, http.StatusInternalServerError, "encode result: %v", err)
		return
	}
	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.WriteHeader(http.StatusOK)
	for _, line := range lines {
		if _, err := rw.Write(line); err != nil {
			return // coordinator is gone; it will retry elsewhere
		}
	}
	rw.Write(append(final, '\n')) //nolint:errcheck // see above
}

// lineBuffer collects a cell's metrics-JSONL lines verbatim, bounded like
// the service's per-job stream so remote and local event streams agree
// byte for byte.
type lineBuffer struct {
	mu      sync.Mutex
	limit   int
	lines   [][]byte
	dropped int
}

func (b *lineBuffer) append(line []byte, err error) {
	if err != nil {
		return // an unencodable record is dropped, never fatal to the run
	}
	b.mu.Lock()
	if len(b.lines) >= b.limit {
		b.dropped++
	} else {
		b.lines = append(b.lines, line)
	}
	b.mu.Unlock()
}

// Step implements obs.Sink.
func (b *lineBuffer) Step(s obs.StepSample) { b.append(obs.StepLine(s)) }

// Span implements obs.Sink.
func (b *lineBuffer) Span(sp obs.Span) { b.append(obs.SpanLine(sp)) }

// Event implements obs.EventSink.
func (b *lineBuffer) Event(e obs.Event) { b.append(obs.EventLine(e)) }

func (b *lineBuffer) snapshot() ([][]byte, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lines, b.dropped
}

// Announce registers selfURL with the coordinator and re-announces every
// interval — the fleet's heartbeat — until ctx is done. Send failures are
// reported through logf (nil discards them) and retried at the next tick;
// the coordinator treats a quiet worker as dead after its heartbeat
// timeout and routes around it, so a missed beat is never fatal here.
func Announce(ctx context.Context, client *http.Client, coordinatorURL, selfURL string, interval time.Duration, logf func(format string, args ...any)) {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	body, _ := json.Marshal(struct {
		URL string `json:"url"`
	}{selfURL})
	beat := func() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, coordinatorURL+"/v1/workers", bytes.NewReader(body))
		if err != nil {
			if logf != nil {
				logf("fleet: announce: %v", err)
			}
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			if logf != nil && ctx.Err() == nil {
				logf("fleet: announce %s: %v", coordinatorURL, err)
			}
			return
		}
		resp.Body.Close()
		if resp.StatusCode/100 != 2 && logf != nil {
			logf("fleet: announce %s: status %s", coordinatorURL, resp.Status)
		}
	}
	beat()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			beat()
		}
	}
}
