package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"meshroute/internal/scenario"
)

// testConfig returns coordinator settings tuned for tests: backoff in
// the low milliseconds, a heartbeat timeout long enough that liveness
// never flakes, and a generous per-attempt deadline (tests that exercise
// the deadline override it).
func testConfig() Config {
	return Config{
		HeartbeatTimeout: time.Minute,
		CellDeadline:     30 * time.Second,
		BackoffBase:      time.Millisecond,
		BackoffCap:       5 * time.Millisecond,
	}
}

func testSpec(name string, seed int64) *scenario.Spec {
	return &scenario.Spec{
		Name:     name,
		N:        6,
		K:        2,
		Router:   "dimorder",
		Workload: scenario.Workload{Kind: scenario.KindRandom, Seed: seed},
	}
}

// startWorker serves a fresh Worker over httptest and returns the server.
func startWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewWorker(WorkerConfig{}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

// runLocal executes the spec in-process through the same Runner + line
// buffer a worker uses — the byte-identity baseline.
func runLocal(t *testing.T, spec *scenario.Spec) (Stats, []byte) {
	t.Helper()
	buf := &lineBuffer{limit: 65536}
	r := scenario.Runner{Sink: buf}
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	lines, _ := buf.snapshot()
	return ToStats(res.Stats), bytes.Join(lines, nil)
}

// execute runs one cell through the coordinator and fails the test on a
// dispatch error.
func execute(t *testing.T, c *Coordinator, spec *scenario.Spec) *CellResult {
	t.Helper()
	res, err := c.Execute(context.Background(), spec)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res
}

// TestExecuteMatchesLocalRun pins the fleet's core guarantee: a cell
// executed remotely returns exactly the stats and event bytes of a local
// run.
func TestExecuteMatchesLocalRun(t *testing.T) {
	srv := startWorker(t)
	c := NewCoordinator(testConfig())
	c.Register(srv.URL)

	spec := testSpec("identity", 7)
	wantStats, wantEvents := runLocal(t, spec)
	res := execute(t, c, spec)
	if res.Stats != wantStats {
		t.Errorf("remote stats %+v, want %+v", res.Stats, wantStats)
	}
	if got := bytes.Join(res.Events, nil); !bytes.Equal(got, wantEvents) {
		t.Errorf("remote events differ from local run:\nremote %d bytes\nlocal  %d bytes", len(got), len(wantEvents))
	}
	if res.Error != "" || res.Canceled || res.EventsDropped != 0 {
		t.Errorf("unexpected abort fields in %+v", res)
	}
	if res.Attempts != 1 || res.Worker != srv.URL {
		t.Errorf("attempts %d worker %s, want 1 attempt on %s", res.Attempts, res.Worker, srv.URL)
	}
}

// TestExecuteNoWorkers covers both empty and all-dead fleets.
func TestExecuteNoWorkers(t *testing.T) {
	c := NewCoordinator(testConfig())
	if _, err := c.Execute(context.Background(), testSpec("none", 1)); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("empty fleet: err %v, want ErrNoWorkers", err)
	}

	cfg := testConfig()
	cfg.HeartbeatTimeout = 10 * time.Millisecond
	c = NewCoordinator(cfg)
	c.Register("http://127.0.0.1:1") // never dialed: it dies before dispatch
	time.Sleep(30 * time.Millisecond)
	if got := c.Alive(); got != 0 {
		t.Fatalf("Alive after heartbeat timeout = %d, want 0", got)
	}
	if _, err := c.Execute(context.Background(), testSpec("dead", 1)); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("dead fleet: err %v, want ErrNoWorkers", err)
	}
}

// TestExecutePermanentErrorNotRetried pins that a worker-side 400 — the
// spec itself is unacceptable — fails the cell immediately as a typed
// *CellError instead of burning retries.
func TestExecutePermanentErrorNotRetried(t *testing.T) {
	srv := startWorker(t)
	c := NewCoordinator(testConfig())
	c.Register(srv.URL)

	spec := testSpec("bad", 1)
	spec.MetricsOut = "/tmp/nope.jsonl" // workers refuse file-path outputs
	_, err := c.Execute(context.Background(), spec)
	var cerr *CellError
	if !errors.As(err, &cerr) {
		t.Fatalf("err %v, want *CellError", err)
	}
	if cerr.Attempts != 1 {
		t.Errorf("attempts %d, want 1 (permanent errors are not retried)", cerr.Attempts)
	}
	if tot := c.Stats(); tot.Dispatches != 1 || tot.Retries != 0 || tot.CellsFailed != 1 {
		t.Errorf("totals %+v, want 1 dispatch, 0 retries, 1 failed", tot)
	}
}

// TestExecuteRunAbortNotRetried pins that a deterministic run-level
// abort (here: the livelock watchdog) is an authoritative worker answer:
// it comes back inside the result with partial stats, not as a retry.
func TestExecuteRunAbortNotRetried(t *testing.T) {
	srv := startWorker(t)
	c := NewCoordinator(testConfig())
	c.Register(srv.URL)

	spec := testSpec("livelock", 1)
	spec.Workload = scenario.Workload{Kind: scenario.KindReversal}
	spec.Watchdog = 1 // no delivery can happen in one step on a 6×6 reversal
	res := execute(t, c, spec)
	if res.Error == "" || !strings.Contains(res.Error, "watchdog") {
		t.Fatalf("result error %q, want a watchdog abort", res.Error)
	}
	if res.Canceled {
		t.Error("watchdog abort reported as canceled")
	}
	if res.Diagnostics == "" {
		t.Error("abort carried no diagnostics")
	}
	if res.Attempts != 1 {
		t.Errorf("attempts %d, want 1 (run aborts are deterministic)", res.Attempts)
	}
}

// flakyTransport fails the first n round trips at the transport layer
// (the client sees a connection error) and passes the rest through.
type flakyTransport struct {
	mu   sync.Mutex
	fail int
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	failing := f.fail > 0
	if failing {
		f.fail--
	}
	f.mu.Unlock()
	if failing {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errors.New("flaky: connection refused")
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestExecuteRetriesTransportErrors pins the retry loop: transient
// connection failures are retried with backoff until a dispatch lands,
// and the result is still byte-identical to a local run.
func TestExecuteRetriesTransportErrors(t *testing.T) {
	srv := startWorker(t)
	cfg := testConfig()
	cfg.Client = &http.Client{Transport: &flakyTransport{fail: 2}}
	c := NewCoordinator(cfg)
	c.Register(srv.URL)

	spec := testSpec("flaky", 3)
	wantStats, wantEvents := runLocal(t, spec)
	res := execute(t, c, spec)
	if res.Attempts != 3 {
		t.Errorf("attempts %d, want 3 (two transport failures then success)", res.Attempts)
	}
	if res.Stats != wantStats || !bytes.Equal(bytes.Join(res.Events, nil), wantEvents) {
		t.Error("result after retries differs from local run")
	}
	if tot := c.Stats(); tot.Retries != 2 || tot.CellsCompleted != 1 {
		t.Errorf("totals %+v, want 2 retries, 1 completed", tot)
	}
}

// TestExecuteExhaustsRetries pins the typed terminal failure: when every
// attempt fails, Execute returns a *CellError carrying the attempt count
// and last cause.
func TestExecuteExhaustsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()
	cfg := testConfig()
	cfg.MaxAttempts = 3
	c := NewCoordinator(cfg)
	c.Register(srv.URL)

	_, err := c.Execute(context.Background(), testSpec("doomed", 1))
	var cerr *CellError
	if !errors.As(err, &cerr) {
		t.Fatalf("err %v, want *CellError", err)
	}
	if cerr.Attempts != 3 {
		t.Errorf("attempts %d, want 3", cerr.Attempts)
	}
	if !strings.Contains(cerr.Error(), "500") {
		t.Errorf("CellError %q does not preserve the last cause", cerr.Error())
	}
}

// TestChaosSweepCompletes drives a whole sweep through the chaos
// transport — drops, 5xx, mid-stream disconnects — and requires every
// cell to end correct and byte-identical to its local run.
func TestChaosSweepCompletes(t *testing.T) {
	w1 := startWorker(t)
	w2 := startWorker(t)
	chaos := NewChaos(42, http.DefaultTransport)
	chaos.Drop = 0.15
	chaos.Err5xx = 0.1
	chaos.Disconnect = 0.1
	cfg := testConfig()
	cfg.MaxAttempts = 12       // the chaos rates make 12 consecutive faults vanishingly unlikely
	cfg.BreakerThreshold = 100 // the breaker has its own tests; here it would only add flake
	cfg.Client = &http.Client{Transport: chaos}
	c := NewCoordinator(cfg)
	c.Register(w1.URL)
	c.Register(w2.URL)

	for i := 0; i < 8; i++ {
		spec := testSpec("chaos", int64(100+i))
		wantStats, wantEvents := runLocal(t, spec)
		res := execute(t, c, spec)
		if res.Stats != wantStats {
			t.Fatalf("cell %d: stats %+v, want %+v", i, res.Stats, wantStats)
		}
		if !bytes.Equal(bytes.Join(res.Events, nil), wantEvents) {
			t.Fatalf("cell %d: events differ from local run", i)
		}
	}
	counts := chaos.Counts()
	if counts.Total() == 0 {
		t.Fatalf("chaos injected nothing (counts %+v); the test proved nothing", counts)
	}
	t.Logf("chaos counts: %+v; totals %+v", counts, c.Stats())
}

// truncateOnce cuts exactly the first response's body mid-stream and
// passes everything after through untouched.
type truncateOnce struct {
	mu   sync.Mutex
	done bool
}

func (tr *truncateOnce) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	tr.mu.Lock()
	first := !tr.done
	tr.done = true
	tr.mu.Unlock()
	if first {
		resp.Body = &truncatedBody{rc: resp.Body, remaining: 40}
	}
	return resp, nil
}

// TestDisconnectMidStreamRetried pins the truncation path specifically:
// a response cut mid-body must not be mistaken for a short-but-complete
// cell — it is retried and the retry's bytes are identical to local.
func TestDisconnectMidStreamRetried(t *testing.T) {
	srv := startWorker(t)
	cfg := testConfig()
	cfg.Client = &http.Client{Transport: &truncateOnce{}}
	c := NewCoordinator(cfg)
	c.Register(srv.URL)

	spec := testSpec("cut", 5)
	wantStats, wantEvents := runLocal(t, spec)
	res := execute(t, c, spec)
	if res.Attempts != 2 {
		t.Errorf("attempts %d, want 2 (first response was truncated)", res.Attempts)
	}
	if res.Stats != wantStats || !bytes.Equal(bytes.Join(res.Events, nil), wantEvents) {
		t.Error("result after mid-stream disconnect differs from local run")
	}
}

// TestKillWorkerMidCellRedispatches is the kill-worker drill: worker 1
// dies (connections severed) while executing a cell, and the cell must
// complete on worker 2 with output identical to a local run.
func TestKillWorkerMidCellRedispatches(t *testing.T) {
	w1 := NewWorker(WorkerConfig{})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	w1.testCellStart = func(*scenario.Spec) {
		once.Do(func() { close(started) })
		<-release
	}
	srv1 := httptest.NewServer(w1.Handler())
	defer func() {
		close(release) // unblock the orphaned handler so Close can finish
		srv1.Close()
	}()
	srv2 := startWorker(t)

	c := NewCoordinator(testConfig())
	c.Register(srv1.URL) // registration order: the first attempt lands here
	c.Register(srv2.URL)

	go func() {
		<-started
		srv1.CloseClientConnections() // kill -9, as the coordinator sees it
	}()
	spec := testSpec("kill", 9)
	wantStats, wantEvents := runLocal(t, spec)
	res := execute(t, c, spec)
	if res.Worker != srv2.URL {
		t.Errorf("cell completed on %s, want the surviving worker %s", res.Worker, srv2.URL)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts %d, want 2", res.Attempts)
	}
	if res.Stats != wantStats || !bytes.Equal(bytes.Join(res.Events, nil), wantEvents) {
		t.Error("result after worker kill differs from local run")
	}
}

// TestStragglerDeadlineRedispatches pins work-stealing: a worker that
// sits on a cell past the per-attempt deadline loses it to a faster one.
func TestStragglerDeadlineRedispatches(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Well past the test's CellDeadline; the bound keeps srv.Close from
		// hanging on this abandoned handler.
		select {
		case <-r.Context().Done():
		case <-time.After(2 * time.Second):
		}
	}))
	defer slow.Close()
	fast := startWorker(t)

	cfg := testConfig()
	cfg.CellDeadline = 100 * time.Millisecond
	c := NewCoordinator(cfg)
	c.Register(slow.URL)
	c.Register(fast.URL)

	spec := testSpec("straggler", 11)
	wantStats, _ := runLocal(t, spec)
	start := time.Now()
	res := execute(t, c, spec)
	if res.Worker != fast.URL {
		t.Errorf("cell completed on %s, want %s", res.Worker, fast.URL)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts %d, want 2", res.Attempts)
	}
	if res.Stats != wantStats {
		t.Errorf("stats %+v, want %+v", res.Stats, wantStats)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("re-dispatch took %s; the deadline did not fire", elapsed)
	}
}

// TestBreakerOpensAndRoutesAround pins the circuit breaker at the
// coordinator level: a worker that keeps failing stops receiving cells
// while live alternatives exist.
func TestBreakerOpensAndRoutesAround(t *testing.T) {
	var badHits int
	var mu sync.Mutex
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		badHits++
		mu.Unlock()
		http.Error(w, `{"error":"broken"}`, http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := startWorker(t)

	cfg := testConfig()
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Minute // stays open for the whole test
	c := NewCoordinator(cfg)
	c.Register(bad.URL)
	c.Register(good.URL)

	// Enough cells that the bad worker trips its breaker, then verify the
	// rest never touch it.
	for i := 0; i < 6; i++ {
		execute(t, c, testSpec("breaker", int64(200+i)))
	}
	mu.Lock()
	hits := badHits
	mu.Unlock()
	if hits > cfg.BreakerThreshold {
		t.Errorf("bad worker served %d dispatches, want at most the breaker threshold %d", hits, cfg.BreakerThreshold)
	}
	for _, ws := range c.Workers() {
		want := BreakerClosed
		if ws.URL == bad.URL {
			want = BreakerOpen
		}
		if ws.Breaker != want {
			t.Errorf("worker %s breaker %s, want %s", ws.URL, ws.Breaker, want)
		}
	}
}

// TestBreakerTransitions unit-tests the breaker state machine with
// synthetic clocks.
func TestBreakerTransitions(t *testing.T) {
	now := time.Unix(0, 0)
	b := breaker{threshold: 2, cooldown: 10 * time.Second}
	if !b.allow(now) || b.state(now) != BreakerClosed {
		t.Fatal("new breaker must be closed")
	}
	b.failure(now)
	if !b.allow(now) {
		t.Fatal("one failure below threshold must not open the breaker")
	}
	b.failure(now)
	if b.allow(now) || b.state(now) != BreakerOpen {
		t.Fatal("threshold failures must open the breaker")
	}
	later := now.Add(11 * time.Second)
	if !b.allow(later) || b.state(later) != BreakerHalfOpen {
		t.Fatal("after the cooldown the breaker must allow a half-open probe")
	}
	b.failure(later)
	if b.allow(later.Add(time.Second)) {
		t.Fatal("a failed probe must re-open the breaker")
	}
	b.success()
	if !b.allow(later) || b.state(later) != BreakerClosed {
		t.Fatal("success must close the breaker")
	}
}

// TestBackoffBoundedAndJittered pins the backoff envelope: attempt n
// sleeps within [base·2^(n-1)/2, min(cap, 3·base·2^(n-1)/2)] and never
// exceeds the cap.
func TestBackoffBoundedAndJittered(t *testing.T) {
	cfg := testConfig()
	cfg.BackoffBase = 100 * time.Millisecond
	cfg.BackoffCap = 5 * time.Second
	c := NewCoordinator(cfg)
	for n := 1; n <= 12; n++ {
		d := c.backoff(n)
		raw := cfg.BackoffBase << (n - 1)
		if raw > cfg.BackoffCap || raw <= 0 {
			raw = cfg.BackoffCap
		}
		if d < raw/2 || d > cfg.BackoffCap {
			t.Errorf("backoff(%d) = %s, want in [%s, %s]", n, d, raw/2, cfg.BackoffCap)
		}
	}
}

// TestExecuteHonorsContext pins that a canceled caller context surfaces
// as the context's error, not a retry storm.
func TestExecuteHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Outlast the caller's context; bounded so srv.Close can finish.
		select {
		case <-r.Context().Done():
		case <-time.After(2 * time.Second):
		}
	}))
	defer srv.Close()
	c := NewCoordinator(testConfig())
	c.Register(srv.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Execute(ctx, testSpec("ctx", 1))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want context.DeadlineExceeded", err)
	}
}

// TestAnnounceHeartbeats pins the worker side of liveness: Announce
// posts the advertised URL immediately and keeps re-posting it on the
// interval until the context ends.
func TestAnnounceHeartbeats(t *testing.T) {
	var mu sync.Mutex
	var beats []string
	coord := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/workers" {
			t.Errorf("unexpected announce request %s %s", r.Method, r.URL.Path)
		}
		var body struct {
			URL string `json:"url"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			t.Errorf("announce body: %v", err)
		}
		mu.Lock()
		beats = append(beats, body.URL)
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer coord.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		Announce(ctx, nil, coord.URL, "http://worker.example:1234", 5*time.Millisecond, nil)
	}()
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(beats)
		mu.Unlock()
		if n >= 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d heartbeats before the deadline", n)
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done
	mu.Lock()
	defer mu.Unlock()
	for _, u := range beats {
		if u != "http://worker.example:1234" {
			t.Fatalf("announced %q, want the advertised URL", u)
		}
	}
}

// TestWorkerCapacity pins the worker's slot bound: a dispatch past Slots
// is refused with 429 (retryable elsewhere), not queued.
func TestWorkerCapacity(t *testing.T) {
	w := NewWorker(WorkerConfig{Slots: 1})
	holding := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	w.testCellStart = func(*scenario.Spec) {
		once.Do(func() { close(holding) })
		<-release
	}
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	body, err := testSpec("cap", 1).JSON()
	if err != nil {
		t.Fatal(err)
	}
	first := make(chan error, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/cells", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
		first <- err
	}()
	<-holding // the first cell owns the only slot
	resp, err := http.Post(srv.URL+"/v1/cells", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second concurrent cell got %d, want 429", resp.StatusCode)
	}
	close(release)
	if err := <-first; err != nil {
		t.Fatalf("first cell: %v", err)
	}
}
