// Package fleet distributes sweep execution across worker processes: a
// Coordinator shards scenario cells over HTTP onto registered Workers,
// tracks worker health through heartbeats, retries failed dispatches with
// exponential backoff and jitter behind a per-worker circuit breaker, and
// re-dispatches cells owned by dead or straggling workers. Cells are
// deterministic by construction — scenario.Spec.Fingerprint is
// content-addressed and the engine is bit-reproducible — so replaying a
// cell on another worker is always safe and the merged result is
// byte-identical to a local run no matter which worker executed which
// cell or how many retries occurred.
//
// The degradation contract lifts internal/fault's engine-level promise to
// the fleet layer: every failure mode — dropped connections, delayed or
// truncated responses, 5xx workers, workers killed mid-cell — ends either
// in a completed, correct cell or in a typed error (*CellError,
// ErrNoWorkers) the caller can act on; run-level aborts inside a cell
// (livelock, invariant violation) are authoritative worker answers and
// propagate with their partial statistics instead of being retried.
//
// The wire protocol is one endpoint per side. A worker serves
// POST /v1/cells: the request body is a scenario spec, the response is
// NDJSON — the cell's metrics-JSONL event lines verbatim (the
// docs/OBSERVABILITY.md format), terminated by a single "t":"cell" result
// line. The coordinator serves registration (wired through
// internal/service as POST /v1/workers): a worker announces its base URL
// and re-announces it every heartbeat interval; a worker whose heartbeat
// goes quiet is excluded from dispatch until it reappears.
//
// See docs/SERVICE.md for the fleet API and docs/ROBUSTNESS.md for the
// failure-mode matrix.
package fleet

import (
	"errors"
	"fmt"

	"meshroute"
)

// ErrNoWorkers reports that no live worker is registered. Callers that
// can execute locally (internal/service) treat it as the signal to
// degrade gracefully to in-process execution.
var ErrNoWorkers = errors.New("fleet: no live workers")

// Stats is the wire form of a run's routing statistics — the numbers
// meshroute.RouteStats carries, with stable JSON names. internal/service
// aliases this type, so the fleet protocol and the service API share one
// definition.
type Stats struct {
	Makespan   int     `json:"makespan"`
	Steps      int     `json:"steps"`
	Done       bool    `json:"done"`
	Delivered  int     `json:"delivered"`
	Total      int     `json:"total"`
	MaxQueue   int     `json:"max_queue"`
	AvgDelay   float64 `json:"avg_delay"`
	FaultDrops int     `json:"fault_drops"`

	// Online-workload admission and throughput statistics; all omitted on
	// the wire for static runs, so pre-online payloads are byte-stable.
	Online     bool    `json:"online,omitempty"`
	Offered    int     `json:"offered,omitempty"`
	Admitted   int     `json:"admitted,omitempty"`
	Refused    int     `json:"refused,omitempty"`
	Dropped    int     `json:"dropped,omitempty"`
	Throughput float64 `json:"throughput,omitempty"`
	DelayP50   float64 `json:"delay_p50,omitempty"`
	DelayP95   float64 `json:"delay_p95,omitempty"`
	DelayP99   float64 `json:"delay_p99,omitempty"`

	// Congestion/dilation efficiency of an analyzed run (see
	// docs/ANALYSIS.md); all omitted on the wire for analysis-off runs,
	// so pre-analysis payloads are byte-stable.
	Analyzed   bool    `json:"analyzed,omitempty"`
	Congestion int     `json:"congestion,omitempty"`
	Dilation   int     `json:"dilation,omitempty"`
	CDRatio    float64 `json:"cd_ratio,omitempty"`
}

// RouteStats converts back to the facade's statistics type.
func (s Stats) RouteStats() meshroute.RouteStats {
	return meshroute.RouteStats{
		Makespan:   s.Makespan,
		Steps:      s.Steps,
		Done:       s.Done,
		Delivered:  s.Delivered,
		Total:      s.Total,
		MaxQueue:   s.MaxQueue,
		AvgDelay:   s.AvgDelay,
		FaultDrops: s.FaultDrops,
		Online:     s.Online,
		Offered:    s.Offered,
		Admitted:   s.Admitted,
		Refused:    s.Refused,
		Dropped:    s.Dropped,
		Throughput: s.Throughput,
		DelayP50:   s.DelayP50,
		DelayP95:   s.DelayP95,
		DelayP99:   s.DelayP99,
		Analyzed:   s.Analyzed,
		Congestion: s.Congestion,
		Dilation:   s.Dilation,
		CDRatio:    s.CDRatio,
	}
}

// ToStats converts the facade's statistics type to its wire form.
func ToStats(st meshroute.RouteStats) Stats {
	return Stats{
		Makespan:   st.Makespan,
		Steps:      st.Steps,
		Done:       st.Done,
		Delivered:  st.Delivered,
		Total:      st.Total,
		MaxQueue:   st.MaxQueue,
		AvgDelay:   st.AvgDelay,
		FaultDrops: st.FaultDrops,
		Online:     st.Online,
		Offered:    st.Offered,
		Admitted:   st.Admitted,
		Refused:    st.Refused,
		Dropped:    st.Dropped,
		Throughput: st.Throughput,
		DelayP50:   st.DelayP50,
		DelayP95:   st.DelayP95,
		DelayP99:   st.DelayP99,
		Analyzed:   st.Analyzed,
		Congestion: st.Congestion,
		Dilation:   st.Dilation,
		CDRatio:    st.CDRatio,
	}
}

// cellLine is the terminal NDJSON record of a POST /v1/cells response.
// Its "t" discriminator is distinct from the obs line types, so a
// response body splits unambiguously into verbatim event lines and one
// result.
type cellLine struct {
	T             string `json:"t"` // always lineCell
	Stats         Stats  `json:"stats"`
	Error         string `json:"error,omitempty"`
	Canceled      bool   `json:"canceled,omitempty"`
	Diagnostics   string `json:"diagnostics,omitempty"`
	EventsDropped int    `json:"events_dropped,omitempty"`
}

// lineCell is the cellLine discriminator value.
const lineCell = "cell"

// CellResult is one cell's outcome as merged by the coordinator. A
// non-empty Error is a run-level abort reported by the worker (livelock,
// invariant violation, cancellation): deterministic, so never retried,
// with Stats holding the partial numbers — the same contract
// internal/service exposes for local runs.
type CellResult struct {
	// Stats is the run's statistics (partial when Error is set).
	Stats Stats
	// Error is the run-level abort message, empty on success.
	Error string
	// Canceled reports that the abort was a cancellation.
	Canceled bool
	// Diagnostics is the engine state snapshot at abort time.
	Diagnostics string
	// Events holds the cell's metrics-JSONL lines exactly as a local run
	// would have produced them (newline-terminated, in order).
	Events [][]byte
	// EventsDropped counts lines the worker discarded past its buffer.
	EventsDropped int
	// Worker is the base URL of the worker that produced the result.
	Worker string
	// Attempts is the number of dispatch attempts the cell consumed.
	Attempts int
}

// CellError is the typed terminal failure of a cell dispatch: the fleet
// exhausted its retry budget (or hit a permanent refusal) without any
// worker completing the cell. Err preserves the last attempt's cause.
type CellError struct {
	// Fingerprint identifies the cell.
	Fingerprint string
	// Attempts is the number of dispatch attempts consumed.
	Attempts int
	// Err is the last attempt's failure.
	Err error
}

// Error implements error.
func (e *CellError) Error() string {
	return fmt.Sprintf("fleet: cell %.12s failed after %d attempts: %v", e.Fingerprint, e.Attempts, e.Err)
}

// Unwrap exposes the last attempt's cause to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// permanentError marks an attempt failure that must not be retried (the
// worker rejected the spec itself, e.g. 400).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }
