package fleet

import "time"

// Breaker states reported by WorkerStatus.Breaker.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// breaker is a per-worker circuit breaker: threshold consecutive dispatch
// failures open it for cooldown, during which the worker receives no
// cells; after the cooldown one probe attempt is allowed (half-open) — a
// success closes the breaker, a failure re-opens it for another cooldown.
// All methods are called with the coordinator's lock held.
type breaker struct {
	threshold int
	cooldown  time.Duration
	fails     int // consecutive failures
	openUntil time.Time
}

// allow reports whether a dispatch to this worker may proceed now.
func (b *breaker) allow(now time.Time) bool {
	if b.fails < b.threshold {
		return true
	}
	return !now.Before(b.openUntil) // half-open probe
}

// success closes the breaker.
func (b *breaker) success() { b.fails = 0 }

// failure records one dispatch failure, (re-)opening the breaker at the
// threshold.
func (b *breaker) failure(now time.Time) {
	b.fails++
	if b.fails >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
	}
}

// state names the breaker's position for status reporting.
func (b *breaker) state(now time.Time) string {
	switch {
	case b.fails < b.threshold:
		return BreakerClosed
	case now.Before(b.openUntil):
		return BreakerOpen
	default:
		return BreakerHalfOpen
	}
}
