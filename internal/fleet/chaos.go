package fleet

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Chaos is a deterministic fault-injecting http.RoundTripper — the
// fleet's chaos harness. Installed as the coordinator client's transport,
// it subjects every dispatch to seeded faults: dropped connections,
// delayed requests, synthetic 5xx answers, and mid-stream disconnects
// that truncate the response body partway. The RNG is seeded, so a given
// (seed, request sequence) replays the same fault pattern; counters
// record what actually fired so tests can assert coverage.
//
// Probabilities are evaluated cumulatively in field order (Drop, Delay,
// Err5xx, Disconnect); their sum must be ≤ 1 and the remainder passes the
// request through untouched.
type Chaos struct {
	// Base performs undisturbed round trips. nil means
	// http.DefaultTransport.
	Base http.RoundTripper
	// Drop is the probability the request never reaches the worker (a
	// synthetic connection failure).
	Drop float64
	// Delay is the probability the request is held for DelayFor before
	// being forwarded (stragglers; with a short CellDeadline this
	// exercises deadline-triggered re-dispatch).
	Delay float64
	// Err5xx is the probability of a synthetic 500 answer.
	Err5xx float64
	// Disconnect is the probability the response body is cut after
	// TruncateAfter bytes.
	Disconnect float64
	// DelayFor is the injected straggler latency. Default 50ms.
	DelayFor time.Duration
	// TruncateAfter is where a disconnect cuts the body. Default 64.
	TruncateAfter int

	mu     sync.Mutex
	rng    *rand.Rand
	counts ChaosCounts
}

// ChaosCounts tallies injected faults and clean passes.
type ChaosCounts struct {
	Drops, Delays, Errs, Disconnects, Passes int
}

// Total returns the number of faults injected (everything but passes).
func (c ChaosCounts) Total() int { return c.Drops + c.Delays + c.Errs + c.Disconnects }

// NewChaos creates a Chaos transport with the given seed; configure the
// fault probabilities on the returned value before use.
func NewChaos(seed int64, base http.RoundTripper) *Chaos {
	return &Chaos{Base: base, rng: rand.New(rand.NewSource(seed))}
}

// Counts snapshots the fault tallies.
func (c *Chaos) Counts() ChaosCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts
}

// chaosFault enumerates the injected fault kinds.
type chaosFault int

const (
	faultNone chaosFault = iota
	faultDrop
	faultDelay
	faultErr5xx
	faultDisconnect
)

// roll draws the fault for one request from the seeded stream.
func (c *Chaos) roll() chaosFault {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.rng.Float64()
	switch {
	case r < c.Drop:
		c.counts.Drops++
		return faultDrop
	case r < c.Drop+c.Delay:
		c.counts.Delays++
		return faultDelay
	case r < c.Drop+c.Delay+c.Err5xx:
		c.counts.Errs++
		return faultErr5xx
	case r < c.Drop+c.Delay+c.Err5xx+c.Disconnect:
		c.counts.Disconnects++
		return faultDisconnect
	default:
		c.counts.Passes++
		return faultNone
	}
}

// RoundTrip implements http.RoundTripper.
func (c *Chaos) RoundTrip(req *http.Request) (*http.Response, error) {
	base := c.Base
	if base == nil {
		base = http.DefaultTransport
	}
	switch c.roll() {
	case faultDrop:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("chaos: connection dropped to %s", req.URL.Host)
	case faultDelay:
		d := c.DelayFor
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-req.Context().Done():
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		case <-timer.C:
		}
		return base.RoundTrip(req)
	case faultErr5xx:
		if req.Body != nil {
			req.Body.Close()
		}
		body := `{"error":"chaos: synthetic internal error"}`
		return &http.Response{
			Status:        "500 Internal Server Error",
			StatusCode:    http.StatusInternalServerError,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case faultDisconnect:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		n := c.TruncateAfter
		if n <= 0 {
			n = 64
		}
		resp.Body = &truncatedBody{rc: resp.Body, remaining: n}
		return resp, nil
	default:
		return base.RoundTrip(req)
	}
}

// truncatedBody yields at most remaining bytes and then fails the read —
// a mid-stream disconnect as the client sees one.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int
}

func (t *truncatedBody) Read(p []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, fmt.Errorf("chaos: connection reset mid-stream")
	}
	if len(p) > t.remaining {
		p = p[:t.remaining]
	}
	n, err := t.rc.Read(p)
	t.remaining -= n
	if err == io.EOF {
		return n, io.EOF // stream ended before the cut: nothing to truncate
	}
	if t.remaining <= 0 {
		t.rc.Close()
		return n, fmt.Errorf("chaos: connection reset mid-stream")
	}
	return n, err
}

func (t *truncatedBody) Close() error { return t.rc.Close() }
