package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"meshroute/internal/scenario"
)

// Config parameterizes a Coordinator. The zero value gets sensible
// defaults from NewCoordinator.
type Config struct {
	// Client performs cell dispatches. Its Transport is the seam the
	// chaos harness injects faults through. Default: a dedicated client
	// with no global timeout (per-attempt deadlines bound every request).
	Client *http.Client
	// HeartbeatTimeout is how long a worker may go without re-announcing
	// before it is considered dead and excluded from dispatch. Default 6s.
	HeartbeatTimeout time.Duration
	// CellDeadline caps one dispatch attempt's wall time. An attempt past
	// it is abandoned — canceling the worker-side run — and the cell is
	// re-dispatched, which is how stragglers get work-stolen. Default 5m.
	CellDeadline time.Duration
	// MaxAttempts bounds dispatch attempts per cell. Default 4.
	MaxAttempts int
	// BackoffBase and BackoffCap shape the exponential retry backoff:
	// attempt i sleeps Base·2^(i-1) with ±50% jitter, capped at Cap.
	// Defaults 100ms and 5s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed drives the jitter RNG, so chaos tests get a reproducible
	// backoff sequence. Default 1.
	Seed int64
	// BreakerThreshold consecutive failures open a worker's circuit
	// breaker; BreakerCooldown is how long it stays open before a
	// half-open probe. Defaults 3 and 5s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	url      string
	lastSeen time.Time
	inflight int
	done     int64
	failed   int64
	br       breaker
}

// WorkerStatus is the JSON shape of one worker in GET /v1/workers and the
// /metrics fleet block.
type WorkerStatus struct {
	// URL is the worker's advertised base URL.
	URL string `json:"url"`
	// Alive reports a heartbeat within the timeout.
	Alive bool `json:"alive"`
	// Breaker is the circuit breaker position (closed/open/half-open).
	Breaker string `json:"breaker"`
	// Inflight is the number of cells currently dispatched to the worker.
	Inflight int `json:"inflight"`
	// CellsDone and CellsFailed count completed and failed dispatches.
	CellsDone   int64 `json:"cells_done"`
	CellsFailed int64 `json:"cells_failed"`
	// LastSeenSecondsAgo is the age of the last heartbeat.
	LastSeenSecondsAgo float64 `json:"last_seen_seconds_ago"`
}

// Totals aggregates the coordinator's dispatch counters.
type Totals struct {
	// Dispatches counts every attempt sent to a worker.
	Dispatches int64 `json:"dispatches"`
	// Retries counts attempts past each cell's first.
	Retries int64 `json:"retries"`
	// CellsCompleted counts cells that returned a result.
	CellsCompleted int64 `json:"cells_completed"`
	// CellsFailed counts cells that exhausted the fleet's retry budget.
	CellsFailed int64 `json:"cells_failed"`
}

// Coordinator shards cells across registered workers. Create with
// NewCoordinator; it is safe for concurrent use.
type Coordinator struct {
	cfg    Config
	client *http.Client

	mu      sync.Mutex
	workers map[string]*workerState
	order   []string // registration order, for deterministic listing
	rng     *rand.Rand
	totals  Totals
}

// NewCoordinator creates a Coordinator with cfg (zero fields defaulted).
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 6 * time.Second
	}
	if cfg.CellDeadline <= 0 {
		cfg.CellDeadline = 5 * time.Minute
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 5 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	return &Coordinator{
		cfg:     cfg,
		client:  cfg.Client,
		workers: make(map[string]*workerState),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Register adds a worker by base URL, or refreshes its heartbeat if it is
// already known. A worker that died and re-announced comes back with its
// breaker reset — the restart is a fresh process.
func (c *Coordinator) Register(url string) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[url]
	if w == nil {
		w = &workerState{
			url: url,
			br:  breaker{threshold: c.cfg.BreakerThreshold, cooldown: c.cfg.BreakerCooldown},
		}
		c.workers[url] = w
		c.order = append(c.order, url)
	} else if now.Sub(w.lastSeen) > c.cfg.HeartbeatTimeout {
		w.br.success() // a returning worker starts with a closed breaker
	}
	w.lastSeen = now
}

// Alive returns the number of workers with a live heartbeat.
func (c *Coordinator) Alive() int {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.cfg.HeartbeatTimeout {
			n++
		}
	}
	return n
}

// Workers snapshots every registered worker in registration order.
func (c *Coordinator) Workers() []WorkerStatus {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerStatus, 0, len(c.order))
	for _, url := range c.order {
		w := c.workers[url]
		out = append(out, WorkerStatus{
			URL:                w.url,
			Alive:              now.Sub(w.lastSeen) <= c.cfg.HeartbeatTimeout,
			Breaker:            w.br.state(now),
			Inflight:           w.inflight,
			CellsDone:          w.done,
			CellsFailed:        w.failed,
			LastSeenSecondsAgo: now.Sub(w.lastSeen).Seconds(),
		})
	}
	return out
}

// Stats snapshots the dispatch totals.
func (c *Coordinator) Stats() Totals {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totals
}

// pick selects the dispatch target: among live workers whose breaker
// allows traffic, the one with the fewest in-flight cells (registration
// order breaks ties), avoiding the previous attempt's worker when any
// alternative exists. It returns nil with alive==0 when every worker is
// dead, and nil with alive>0 when live workers exist but none admits
// traffic right now (breakers open).
func (c *Coordinator) pick(avoid string) (w *workerState, alive int) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *workerState
	for _, url := range c.order {
		cand := c.workers[url]
		if now.Sub(cand.lastSeen) > c.cfg.HeartbeatTimeout {
			continue
		}
		alive++
		if !cand.br.allow(now) {
			continue
		}
		if best == nil || cand.inflight < best.inflight ||
			(cand.inflight == best.inflight && best.url == avoid) {
			best = cand
		}
	}
	// Prefer any admissible alternative over the worker that just failed.
	if best != nil && best.url == avoid {
		for _, url := range c.order {
			cand := c.workers[url]
			if cand.url == avoid || now.Sub(cand.lastSeen) > c.cfg.HeartbeatTimeout || !cand.br.allow(now) {
				continue
			}
			if best.url == avoid || cand.inflight < best.inflight {
				best = cand
			}
		}
	}
	if best != nil {
		best.inflight++
	}
	return best, alive
}

// release returns a dispatch slot and folds the attempt's outcome into
// the worker's breaker and counters.
func (c *Coordinator) release(w *workerState, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.inflight--
	if ok {
		w.done++
		w.br.success()
	} else {
		w.failed++
		w.br.failure(time.Now())
	}
}

// backoff returns the sleep before retry attempt n (n=1 is the first
// retry): exponential from BackoffBase with ±50% deterministic jitter,
// capped at BackoffCap.
func (c *Coordinator) backoff(n int) time.Duration {
	d := c.cfg.BackoffBase
	for i := 1; i < n && d < c.cfg.BackoffCap; i++ {
		d *= 2
	}
	if d > c.cfg.BackoffCap {
		d = c.cfg.BackoffCap
	}
	c.mu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(d))) // [0, d)
	c.mu.Unlock()
	d = d/2 + jitter // uniform in [d/2, 3d/2)
	if d > c.cfg.BackoffCap {
		d = c.cfg.BackoffCap
	}
	return d
}

// Execute runs one cell on the fleet: it picks a live worker, dispatches
// the spec, and on transport errors, 5xx, 429, truncated responses or
// per-attempt deadline expiry retries on (preferably) another worker with
// exponential backoff until MaxAttempts is exhausted. The error is nil on
// a completed cell (including deterministic run-level aborts, which come
// back inside the CellResult), ErrNoWorkers (wrapped) when no live worker
// remains, ctx.Err() when the caller gave up, and a *CellError otherwise.
func (c *Coordinator) Execute(ctx context.Context, spec *scenario.Spec) (*CellResult, error) {
	fp, err := spec.Fingerprint()
	if err != nil {
		return nil, err
	}
	body, err := spec.JSON()
	if err != nil {
		return nil, err
	}
	var lastErr error
	attempts := 0
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 1 {
			c.addRetry()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(c.backoff(attempt - 1)):
			}
		}
		var avoid string
		if lastErr != nil {
			var ae *attemptError
			if errors.As(lastErr, &ae) {
				avoid = ae.worker
			}
		}
		w, alive := c.pick(avoid)
		if w == nil {
			if alive == 0 {
				return nil, fmt.Errorf("cell %.12s: %w", fp, ErrNoWorkers)
			}
			// Live workers exist but every breaker is open: burn the
			// attempt on the cooldown and try again.
			lastErr = errors.New("fleet: all worker breakers open")
			continue
		}
		attempts++
		res, err := c.dispatch(ctx, w, body)
		if err == nil {
			c.release(w, true)
			c.addCompleted()
			res.Worker = w.url
			res.Attempts = attempt
			return res, nil
		}
		c.release(w, false)
		if errors.Is(err, ctx.Err()) && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
		var perm *permanentError
		if errors.As(err, &perm) {
			c.addFailed()
			return nil, &CellError{Fingerprint: fp, Attempts: attempt, Err: perm.err}
		}
	}
	c.addFailed()
	return nil, &CellError{Fingerprint: fp, Attempts: c.cfg.MaxAttempts, Err: lastErr}
}

func (c *Coordinator) addRetry() {
	c.mu.Lock()
	c.totals.Retries++
	c.mu.Unlock()
}

func (c *Coordinator) addCompleted() {
	c.mu.Lock()
	c.totals.CellsCompleted++
	c.mu.Unlock()
}

func (c *Coordinator) addFailed() {
	c.mu.Lock()
	c.totals.CellsFailed++
	c.mu.Unlock()
}

// attemptError is one failed dispatch attempt, tagged with the worker so
// the next attempt can avoid it.
type attemptError struct {
	worker string
	err    error
}

func (e *attemptError) Error() string { return fmt.Sprintf("worker %s: %v", e.worker, e.err) }
func (e *attemptError) Unwrap() error { return e.err }

// dispatch performs one POST /v1/cells attempt against w under the
// per-cell deadline and parses the NDJSON response. Every failure short
// of a well-formed result line — transport error, non-200, truncated
// stream — is an *attemptError (retryable) except a 400, which is
// permanent: the worker rejected the spec itself and every other worker
// would too.
func (c *Coordinator) dispatch(ctx context.Context, w *workerState, body []byte) (*CellResult, error) {
	c.mu.Lock()
	c.totals.Dispatches++
	c.mu.Unlock()

	attemptCtx, cancel := context.WithTimeout(ctx, c.cfg.CellDeadline)
	defer cancel()
	req, err := http.NewRequestWithContext(attemptCtx, http.MethodPost, w.url+"/v1/cells", bytes.NewReader(body))
	if err != nil {
		return nil, &attemptError{worker: w.url, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, &attemptError{worker: w.url, err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("status %s: %s", resp.Status, bytes.TrimSpace(msg))
		if resp.StatusCode == http.StatusBadRequest {
			return nil, &permanentError{err: fmt.Errorf("worker %s: %w", w.url, err)}
		}
		return nil, &attemptError{worker: w.url, err: err}
	}

	var events [][]byte
	var prev []byte
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			if len(line) > 0 {
				prev = nil // truncated trailing line: not a result
			}
			break
		}
		if err != nil {
			return nil, &attemptError{worker: w.url, err: fmt.Errorf("mid-stream disconnect: %w", err)}
		}
		if prev != nil {
			events = append(events, prev)
		}
		prev = line
	}
	if prev == nil {
		return nil, &attemptError{worker: w.url, err: errors.New("mid-stream disconnect: response ended without a cell result")}
	}
	var cl cellLine
	if err := json.Unmarshal(prev, &cl); err != nil || cl.T != lineCell {
		return nil, &attemptError{worker: w.url, err: errors.New("mid-stream disconnect: final line is not a cell result")}
	}
	return &CellResult{
		Stats:         cl.Stats,
		Error:         cl.Error,
		Canceled:      cl.Canceled,
		Diagnostics:   cl.Diagnostics,
		Events:        events,
		EventsDropped: cl.EventsDropped,
	}, nil
}
