package adversary

import (
	"testing"

	"meshroute/internal/routers"
	"meshroute/internal/sim"
)

func ffFactory() sim.Algorithm { return routers.DimOrderFF{} }

func TestFFParams(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{64, 1}, {128, 1}, {128, 2}} {
		par, err := NewFFParams(tc.n, tc.k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if par.P != (2*tc.k+1)*par.CN+par.DN {
			t.Fatalf("p wrong: %+v", par)
		}
		if par.L < 1 {
			t.Fatalf("degenerate: %+v", par)
		}
	}
	if _, err := NewFFParams(8, 1); err == nil {
		t.Fatal("tiny mesh must fail")
	}
}

func TestFFConstructionRuns(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{64, 1}, {128, 2}} {
		c, err := NewFFConstruction(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		c.Verify = true
		res, err := c.Run(ffFactory())
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if res.UndeliveredHard == 0 {
			t.Fatalf("n=%d k=%d: all delivered at bound %d", tc.n, tc.k, res.Steps)
		}
		t.Logf("n=%d k=%d: bound=%d exchanges=%d undelivered=%d",
			tc.n, tc.k, res.Steps, res.Exchanges, res.UndeliveredHard)
	}
}

func TestFFReplay(t *testing.T) {
	// n=128/k=2 exercises the exchange rule heavily (hundreds of
	// exchanges), so replay equivalence here validates the paper's
	// claim that the construction "behaves in the same way as the
	// algorithm does when run on the constructed permutation" even
	// though farthest-first inspects full distances.
	for _, tc := range []struct{ n, k int }{{64, 1}, {128, 2}} {
		c, err := NewFFConstruction(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(ffFactory())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Replay(res, ffFactory()); err != nil {
			t.Fatalf("n=%d k=%d (exchanges=%d): %v", tc.n, tc.k, res.Exchanges, err)
		}
	}
}

func TestHHParams(t *testing.T) {
	for _, tc := range []struct{ n, k, h int }{{60, 1, 2}, {60, 2, 4}, {120, 1, 2}} {
		par, err := NewHHParams(tc.n, tc.k, tc.h)
		if err != nil {
			t.Fatalf("n=%d k=%d h=%d: %v", tc.n, tc.k, tc.h, err)
		}
		if par.L < 1 || par.Steps() < 1 {
			t.Fatalf("degenerate %+v", par)
		}
	}
	// h = 1 must reduce to the permutation params.
	a, err := NewHHParams(120, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewParams(120, 1)
	if a != b {
		t.Fatalf("h=1 params differ: %+v vs %+v", a, b)
	}
}

func TestHHConstructionRuns(t *testing.T) {
	c, err := NewHHConstruction(60, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(dimOrderFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.UndeliveredHard == 0 {
		t.Fatal("h-h construction: all delivered at bound")
	}
	t.Logf("h-h n=60 k=1 h=2: bound=%d exchanges=%d undelivered=%d", res.Steps, res.Exchanges, res.UndeliveredHard)
}

func TestHHReplayEquivalence(t *testing.T) {
	c, err := NewHHConstruction(60, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(dimOrderFactory())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Replay(res, dimOrderFactory()); err != nil {
		t.Fatal(err)
	}
}
