package adversary

import (
	"fmt"

	"meshroute/internal/grid"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

// FFParams holds the constants of the Section 5 farthest-first construction
// (Figure 4 right): p = (2k+1)cn + dn, l = c·n²/p, with
// 1/(5(k+1)) <= c <= 1/(4(k+1)) and 2/5 <= d <= 1/2. It forces Ω(n²/k)
// steps on dimension-order routing with the farthest-first outqueue policy
// — an algorithm that is NOT destination-exchangeable, since it inspects
// full remaining distances.
type FFParams struct {
	// N is the mesh side, K the queue size.
	N, K int
	// CN is c·n.
	CN int
	// DN is d·n.
	DN int
	// P is p = (2k+1)·cn + dn.
	P int
	// L is ⌊l⌋ = ⌊c·n²/p⌋.
	L int
}

// Steps returns ⌊l⌋·d·n.
func (p FFParams) Steps() int { return p.L * p.DN }

// NewFFParams computes the farthest-first construction constants.
func NewFFParams(n, k int) (FFParams, error) {
	if k < 1 {
		return FFParams{}, fmt.Errorf("adversary: k = %d, need k >= 1", k)
	}
	cn := n / (4 * (k + 1))
	dn := n / 2
	if cn < 2 {
		return FFParams{}, fmt.Errorf("adversary: n = %d too small for k = %d (cn = %d)", n, k, cn)
	}
	p := (2*k+1)*cn + dn
	l := cn * n / p
	par := FFParams{N: n, K: k, CN: cn, DN: dn, P: p, L: l}
	if par.L < 1 {
		return FFParams{}, fmt.Errorf("adversary: ff ⌊l⌋ = 0 for n=%d k=%d", n, k)
	}
	if par.P > n-cn {
		return FFParams{}, fmt.Errorf("adversary: ff p = %d exceeds %d destination rows", par.P, n-cn)
	}
	if par.L >= n-cn {
		return FFParams{}, fmt.Errorf("adversary: ff l = %d leaves no room for columns", par.L)
	}
	return par, nil
}

// FFConstruction is the Section 5 adversary for the farthest-first
// dimension-order router. The N_i-column is column n+1-i (1-based; the
// easternmost column is N_1's). Every node of the cn southernmost rows
// sends one packet; the initial arrangement puts higher classes strictly
// west of lower classes within each row, and the single exchange rule keeps
// that invariant while delaying every class j until its epoch:
//
//	For i >= 1, j > i: if an N_j-packet is scheduled to enter the
//	N_j-column during steps 1..i·dn, exchange it with the westernmost-
//	in-its-row N_{j-1}-packet in the (j+1)-box that is not scheduled to
//	enter the N_j-column.
type FFConstruction struct {
	// Par holds the constants.
	Par FFParams
	// Topo is the n×n mesh.
	Topo grid.Topology
	// Verify enables invariant checks (row sortedness, box containment).
	Verify bool

	kindIdx [][]sim.PacketID
	err     error
	exchg   int
}

// NewFFConstruction prepares the farthest-first adversary.
func NewFFConstruction(n, k int) (*FFConstruction, error) {
	par, err := NewFFParams(n, k)
	if err != nil {
		return nil, err
	}
	return &FFConstruction{Par: par, Topo: grid.NewSquareMesh(n)}, nil
}

// nCol returns the 0-based column of the N_i-column (1-based column n+1-i).
func (c *FFConstruction) nCol(i int) int { return c.Par.N - i }

// classOf maps a destination to its class (0 for padding).
func (c *FFConstruction) classOf(dst grid.NodeID) int {
	lc := c.Topo.CoordOf(dst)
	if lc.Y < c.Par.CN {
		return 0
	}
	i := c.Par.N - lc.X
	if i >= 1 && i <= c.Par.L {
		return i
	}
	return 0
}

// inBox reports membership in the i-box: west of and including the
// N_i-column, south of and including row cn.
func (c *FFConstruction) inBox(lc grid.Coord, i int) bool {
	return lc.Y < c.Par.CN && lc.X <= c.nCol(i)
}

// Run executes the construction for ⌊l⌋·d·n steps against the (general,
// distance-inspecting) algorithm and returns the constructed permutation.
func (c *FFConstruction) Run(alg sim.Algorithm) (*Result, error) {
	par := c.Par
	net := sim.MustNew(sim.Config{
		Topo:            c.Topo,
		K:               par.K,
		Queues:          sim.CentralQueue,
		RequireMinimal:  true,
		CheckInvariants: true,
	})
	c.kindIdx = make([][]sim.PacketID, par.L+1)

	// Classes assigned east to west so that, within every row, class
	// indices are nondecreasing westward (invariant (b)), and no
	// N_i-packet starts in the N_i-column for i >= 2 (invariant (a)).
	q := 0
	tPer := make([]int, par.L+1)
	for x := par.N - 1; x >= 0; x-- {
		for y := 0; y < par.CN; y++ {
			src := c.Topo.ID(grid.XY(x, y))
			i := 1 + q/par.P
			q++
			if i > par.L {
				// Remaining band sources are identity padding.
				if err := net.Place(net.NewPacket(src, src)); err != nil {
					return nil, err
				}
				continue
			}
			pk := net.NewPacket(src, c.Topo.ID(grid.XY(c.nCol(i), par.CN+tPer[i])))
			net.P.Class[pk] = uint8(KindN)
			net.P.Tag[pk] = int32(i)
			if err := net.Place(pk); err != nil {
				return nil, err
			}
			c.kindIdx[i] = append(c.kindIdx[i], pk)
			tPer[i]++
		}
	}
	if c.Verify {
		if err := c.check(net, 0); err != nil {
			return nil, err
		}
	}

	net.SetExchange(c.exchangeHook)
	for t := 0; t < par.Steps(); t++ {
		if err := net.StepOnce(alg); err != nil {
			return nil, err
		}
		if c.err != nil {
			return nil, c.err
		}
		if c.Verify {
			if err := c.check(net, t+1); err != nil {
				return nil, err
			}
		}
	}
	net.SetExchange(nil)

	perm := make([]workload.Pair, 0, net.TotalPackets())
	undeliv := 0
	for _, pk := range net.Packets() {
		perm = append(perm, workload.Pair{Src: pk.Src, Dst: pk.Dst})
		if c.classOf(pk.Dst) != 0 && !pk.Delivered() {
			undeliv++
		}
	}
	return &Result{
		Par:             Params{N: par.N, K: par.K, CN: par.CN, DN: par.DN, P: par.P, L: par.L},
		Steps:           par.Steps(),
		Net:             net,
		Permutation:     perm,
		Exchanges:       c.exchg,
		UndeliveredHard: undeliv,
	}, nil
}

// exchangeHook applies the farthest-first exchange rule.
func (c *FFConstruction) exchangeHook(net *sim.Network, step int, moves []sim.Move) {
	if c.err != nil {
		return
	}
	st := &net.P
	sched := make(map[sim.PacketID]grid.Coord, len(moves))
	for _, m := range moves {
		sched[m.P] = c.Topo.CoordOf(m.To)
	}
	for _, m := range moves {
		j := c.classOf(st.Dst[m.P])
		if j < 2 {
			continue
		}
		to := c.Topo.CoordOf(m.To)
		// Scheduled to enter the N_j-column (eastward, within the band)
		// during steps 1..(j-1)·dn?
		if m.Travel != grid.East || to.Y >= c.Par.CN || to.X != c.nCol(j) || step > (j-1)*c.Par.DN {
			continue
		}
		// Partner: westernmost-in-its-row N_{j-1}-packet in the
		// (j+1)-box not scheduled to enter the N_j-column.
		partner := sim.NoPacket
		var pidx int
		for idx, qp := range c.kindIdx[j-1] {
			if qp == m.P || st.Delivered(qp) {
				continue
			}
			lc := c.Topo.CoordOf(st.At[qp])
			if !c.inBox(lc, j+1) {
				continue
			}
			if tgt, ok := sched[qp]; ok && tgt.X == c.nCol(j) {
				continue
			}
			if partner == sim.NoPacket {
				partner, pidx = qp, idx
				continue
			}
			plc := c.Topo.CoordOf(st.At[partner])
			if lc.X < plc.X || (lc.X == plc.X && lc.Y < plc.Y) {
				partner, pidx = qp, idx
			}
		}
		if partner == sim.NoPacket {
			c.err = fmt.Errorf("adversary: step %d: no eligible N_%d partner (ff construction)", step, j-1)
			return
		}
		st.Dst[m.P], st.Dst[partner] = st.Dst[partner], st.Dst[m.P]
		st.Tag[m.P], st.Tag[partner] = st.Tag[partner], st.Tag[m.P]
		c.kindIdx[j-1][pidx] = m.P
		for idx, qp := range c.kindIdx[j] {
			if qp == m.P {
				c.kindIdx[j][idx] = partner
				break
			}
		}
		c.exchg++
	}
}

// check validates the row-sortedness invariant: within every band row, for
// j > i, no N_j-packet is further east than any N_i-packet.
func (c *FFConstruction) check(net *sim.Network, t int) error {
	// easternmost[row][class] tracking via two passes: record the
	// easternmost position per (row, class) and the westernmost per
	// (row, class), then compare.
	type key struct{ row, class int }
	eastmost := map[key]int{}
	westmost := map[key]int{}
	for _, p := range net.Packets() {
		j := c.classOf(p.Dst)
		if j == 0 || p.Delivered() {
			continue
		}
		lc := c.Topo.CoordOf(p.At)
		if lc.X > c.nCol(j) {
			return fmt.Errorf("adversary: step %d: ff N_%d packet %d east of its column at %v", t, j, p.ID, lc)
		}
		if lc.Y >= c.Par.CN || lc.X == c.nCol(j) {
			// Climbing (or waiting in) its own column: the packet has
			// finished its row phase, so the row invariant no longer
			// constrains it.
			continue
		}
		k := key{lc.Y, j}
		if e, ok := eastmost[k]; !ok || lc.X > e {
			eastmost[k] = lc.X
		}
		if w, ok := westmost[k]; !ok || lc.X < w {
			westmost[k] = lc.X
		}
	}
	for k, e := range eastmost {
		for i := 1; i < k.class; i++ {
			if w, ok := westmost[key{k.row, i}]; ok && e > w {
				return fmt.Errorf("adversary: step %d: row %d: N_%d at x=%d east of N_%d at x=%d",
					t, k.row, k.class, e, i, w)
			}
		}
	}
	return nil
}

// Replay re-runs the constructed permutation without exchanges and checks
// that undelivered packets remain at the bound. For farthest-first the
// configuration-equality argument is the paper's row-sortedness invariant
// rather than Lemma 10; ConfigsEqual is still checked and any difference is
// reported in the returned error.
func (c *FFConstruction) Replay(res *Result, alg sim.Algorithm) (*sim.Network, error) {
	net := sim.MustNew(sim.Config{
		Topo:            c.Topo,
		K:               c.Par.K,
		Queues:          sim.CentralQueue,
		RequireMinimal:  true,
		CheckInvariants: true,
	})
	for _, pr := range res.Permutation {
		if err := net.Place(net.NewPacket(pr.Src, pr.Dst)); err != nil {
			return nil, err
		}
	}
	for t := 0; t < res.Steps; t++ {
		if err := net.StepOnce(alg); err != nil {
			return nil, err
		}
	}
	if err := ConfigsEqual(res.Net, net); err != nil {
		return nil, fmt.Errorf("adversary: ff replay equivalence failed: %w", err)
	}
	if net.Done() {
		return nil, fmt.Errorf("adversary: ff bound failed: delivered within %d steps", res.Steps)
	}
	return net, nil
}
