package adversary

import (
	"testing"

	"meshroute/internal/dex"
	"meshroute/internal/routers"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

func TestDOParams(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{60, 1}, {120, 1}, {120, 2}, {240, 4}} {
		par, err := NewDOParams(tc.n, tc.k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if par.L < 1 || par.Steps() < 1 {
			t.Fatalf("degenerate %+v", par)
		}
		if par.P != (tc.k+1)*par.CN+par.DN {
			t.Fatalf("p wrong: %+v", par)
		}
	}
	if _, err := NewDOParams(8, 1); err == nil {
		t.Fatal("tiny mesh must fail")
	}
}

func TestDOConstructionLemmasHold(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{60, 1}, {120, 1}, {120, 2}} {
		c, err := NewDOConstruction(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		c.Verify = true
		res, err := c.Run(dimOrderFactory())
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if res.UndeliveredHard == 0 {
			t.Fatalf("n=%d k=%d: all delivered at the bound", tc.n, tc.k)
		}
		if res.Exchanges == 0 {
			t.Fatalf("n=%d k=%d: adversary never exchanged", tc.n, tc.k)
		}
	}
}

func TestDOConstructionPermutationValid(t *testing.T) {
	c, err := NewDOConstruction(60, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(dimOrderFactory())
	if err != nil {
		t.Fatal(err)
	}
	perm := &workload.Permutation{Pairs: res.Permutation}
	if err := perm.Validate(); err != nil {
		t.Fatal(err)
	}
	if perm.Len() != c.Par.L*c.Par.P {
		t.Fatalf("permutation size %d, want %d", perm.Len(), c.Par.L*c.Par.P)
	}
}

func TestDOReplayEquivalence(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{60, 1}, {120, 2}} {
		c, err := NewDOConstruction(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(dimOrderFactory())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Replay(res, dimOrderFactory()); err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
	}
}

// The Theorem 15 router is destination-exchangeable dimension order, so the
// Section 5 construction applies to it too (with four queues of size k).
func TestDOConstructionAgainstThm15(t *testing.T) {
	thm15 := func() sim.Algorithm { return dex.NewAdapter(routers.Thm15{}) }
	// Four incoming queues of size k behave like a central queue of size
	// 4k (Section 5, "Other Queue Types"), plus one origin packet.
	c, err := NewDOConstruction(90, 4*1+1)
	if err != nil {
		t.Fatal(err)
	}
	c.Queues = sim.PerInlinkQueues
	c.NetK = 1
	res, err := c.Run(thm15())
	if err != nil {
		t.Fatal(err)
	}
	if res.UndeliveredHard == 0 {
		t.Fatal("Thm15 beat the dim-order construction bound — impossible")
	}
	if _, err := c.Replay(res, thm15()); err != nil {
		t.Fatal(err)
	}
}

// The Theorem 15 upper bound meets the lower bound: completing the
// constructed permutation takes Θ(n²/k) — more than ⌊l⌋dn, less than a
// small multiple of n²/k.
func TestDOHardPermutationCompletionThm15(t *testing.T) {
	n, k := 90, 1
	thm15 := func() sim.Algorithm { return dex.NewAdapter(routers.Thm15{}) }
	c, err := NewDOConstruction(n, 4*k+1)
	if err != nil {
		t.Fatal(err)
	}
	c.Queues = sim.PerInlinkQueues
	c.NetK = k
	res, err := c.Run(thm15())
	if err != nil {
		t.Fatal(err)
	}
	net, err := c.Replay(res, thm15())
	if err != nil {
		t.Fatal(err)
	}
	makespan, done, err := RunToCompletion(net, thm15(), 100*n*n)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("Theorem 15 router must deliver every permutation")
	}
	if makespan < res.Steps {
		t.Fatalf("makespan %d below the construction bound %d", makespan, res.Steps)
	}
	upper := 20 * (n*n/k + n)
	if makespan > upper {
		t.Fatalf("makespan %d way above O(n²/k + n) (sanity cap %d)", makespan, upper)
	}
	t.Logf("n=%d k=%d: lower bound=%d measured=%d upper sanity=%d", n, k, res.Steps, makespan, upper)
}
