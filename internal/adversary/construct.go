package adversary

import (
	"fmt"

	"meshroute/internal/grid"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

// Kind tags a construction packet's current role (determined by its current
// destination; exchanges swap roles along with destinations).
type Kind uint8

// Packet kinds.
const (
	// KindNone marks packets outside the construction (padding).
	KindNone Kind = iota
	// KindN marks N_i-packets (destined for the N_i-column, north of the
	// E_i-row).
	KindN
	// KindE marks E_i-packets (destined for the E_i-row, east of the
	// N_i-column).
	KindE
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case KindN:
		return "N"
	case KindE:
		return "E"
	}
	return "-"
}

// Construction runs the Section 3 adversary against a routing algorithm on
// an n×n mesh (or embedded in a torus submesh). Create with NewConstruction.
type Construction struct {
	// Par holds the Section 4.3 constants.
	Par Params
	// Topo is the topology the construction runs on (an n×n mesh, or a
	// torus of side >= 2n for the Section 5 embedding).
	Topo grid.Topology
	// OffX, OffY place the construction's n×n submesh within Topo.
	OffX, OffY int
	// H is the h-h multiplicity (1 for permutation routing).
	H int
	// Verify enables per-step checking of Lemmas 1–8.
	Verify bool
	// PadIdentity fills every unused source/destination node with a
	// fixed-point packet, turning the partial permutation into a full
	// permutation (Step 2 of the construction, at its extreme).
	PadIdentity bool
	// Queues selects the queue model of the network under test
	// (CentralQueue by default; PerInlinkQueues for the Theorem 15
	// router, per the Section 5 "Other Queue Types" extension).
	Queues sim.QueueModel
	// NetK overrides the per-queue capacity of the network under test.
	// Leave 0 to use Par.K. Per the "Other Queue Types" simulation, a
	// node with four incoming queues of size k behaves like a central
	// queue of size 4k, so to attack such a router compute Params with
	// k_eff = 4k+1 (the +1 covers the origin packet) and set NetK = k.
	NetK int
	// Delta targets the Section 5 "Nonminimal extensions" class: the
	// router under test may move packets up to Delta nodes beyond their
	// source-destination rectangle (use NewDeltaConstruction).
	Delta int

	// kindIdx maps (kind, i) to the packets currently in that role.
	kindIdx map[kindKey][]sim.PacketID

	disableExchanges bool
	err              error
	exchg            int
	ver              *verifier
}

type kindKey struct {
	kind Kind
	i    int
}

// Result is the outcome of running a construction.
type Result struct {
	// Par holds the constants used.
	Par Params
	// Steps is ⌊l⌋·d·n, the step count the construction ran for and the
	// Theorem 13 lower bound.
	Steps int
	// Net is the construction-run network after Steps steps.
	Net *sim.Network
	// Permutation is the constructed permutation: every placed packet's
	// source with its final (post-exchange) destination, in placement
	// order.
	Permutation []workload.Pair
	// Exchanges counts destination exchanges performed.
	Exchanges int
	// UndeliveredHard counts construction (N/E) packets undelivered at
	// step Steps; Corollary 9 guarantees it is positive.
	UndeliveredHard int
}

// NewConstruction prepares the Section 3 adversary for an n×n mesh with
// queue size k. Callers may then adjust the public fields before Run.
func NewConstruction(n, k int) (*Construction, error) {
	par, err := NewParams(n, k)
	if err != nil {
		return nil, err
	}
	return &Construction{
		Par:  par,
		Topo: grid.NewSquareMesh(n),
		H:    1,
	}, nil
}

// NewDeltaConstruction prepares the Section 5 nonminimal-extension
// adversary for routers that stray at most delta beyond the
// source-destination rectangle (Ω(n²/((δ+1)³k²))).
func NewDeltaConstruction(n, k, delta int) (*Construction, error) {
	par, err := NewDeltaParams(n, k, delta)
	if err != nil {
		return nil, err
	}
	return &Construction{
		Par:   par,
		Topo:  grid.NewSquareMesh(n),
		H:     1,
		Delta: delta,
	}, nil
}

// NewHHConstruction prepares the Section 5 h-h adversary: h packets on each
// node of the 1-box, forcing Ω(h³n²/(k+h)²) steps. Packets beyond the queue
// capacity enter through the dynamic injection backlog, as the paper's
// dynamic-routing extension allows.
func NewHHConstruction(n, k, h int) (*Construction, error) {
	par, err := NewHHParams(n, k, h)
	if err != nil {
		return nil, err
	}
	return &Construction{
		Par:  par,
		Topo: grid.NewSquareMesh(n),
		H:    h,
	}, nil
}

// local converts a topology node to construction-local coordinates.
func (c *Construction) local(id grid.NodeID) grid.Coord {
	g := c.Topo.CoordOf(id)
	return grid.XY(g.X-c.OffX, g.Y-c.OffY)
}

// node converts construction-local coordinates to a topology node.
func (c *Construction) node(x, y int) grid.NodeID {
	return c.Topo.ID(grid.XY(x+c.OffX, y+c.OffY))
}

// nCol returns the 0-based local column of the N_i-column (the paper's
// 1-based column cn-1+i).
func (c *Construction) nCol(i int) int { return c.Par.CN + i - 2 }

// eRow returns the 0-based local row of the E_i-row.
func (c *Construction) eRow(i int) int { return c.Par.CN + i - 2 }

// kindOf classifies a destination.
func (c *Construction) kindOf(dst grid.NodeID) (Kind, int) {
	lc := c.local(dst)
	cn, l := c.Par.CN, c.Par.L
	if lc.X >= cn-1 && lc.X <= cn+l-2 && lc.Y > lc.X {
		return KindN, lc.X - cn + 2
	}
	if lc.Y >= cn-1 && lc.Y <= cn+l-2 && lc.X > lc.Y {
		return KindE, lc.Y - cn + 2
	}
	return KindNone, 0
}

// inBox reports whether local coordinate lc lies in the i-box (i >= 0).
func (c *Construction) inBox(lc grid.Coord, i int) bool {
	if i == 0 {
		// 0-box: strictly west of the N_1-column and strictly south
		// of the E_1-row.
		return lc.X < c.nCol(1) && lc.Y < c.eRow(1)
	}
	return lc.X <= c.nCol(i) && lc.Y <= c.eRow(i)
}

// inBoxKind reports whether lc lies in the i-box extended by Delta on the
// kind's escape side: an N_i-packet may occupy the Delta columns east of
// the N_i-column (south of the E_i-row) before escaping; an E_i-packet the
// Delta rows north of the E_i-row.
func (c *Construction) inBoxKind(lc grid.Coord, kind Kind, i int) bool {
	if kind == KindN {
		return lc.X <= c.nCol(i)+c.Delta && lc.Y <= c.eRow(i)
	}
	return lc.Y <= c.eRow(i)+c.Delta && lc.X <= c.nCol(i)
}

// roster builds the construction packets in deterministic placement order:
// first the forced 1-box boundary packets, then the interior ones.
type rosterEntry struct {
	src  grid.Coord // local
	dst  grid.Coord // local
	kind Kind
	i    int
}

// buildRoster computes sources and destinations for all construction
// packets, following Step 1 of the construction:
//
//   - the N_1-column at or south of the E_1-row holds only N_1-packets,
//   - the E_1-row west of the N_1-column holds only E_1-packets,
//   - at most one packet per node (h per node for the h-h variant),
//   - N_i-packets get unique destination rows in the N_i-column outside
//     the i-box; E_i-packets symmetric.
func (c *Construction) buildRoster() ([]rosterEntry, error) {
	par := c.Par
	cn, p, l := par.CN, par.P, par.L

	// Destination assignment. For h-h, each destination node may receive
	// up to H packets.
	nDst := func(i, t int) grid.Coord { return grid.XY(c.nCol(i), c.eRow(i)+1+t/c.H) }
	eDst := func(i, t int) grid.Coord { return grid.XY(c.nCol(i)+1+t/c.H, c.eRow(i)) }

	var roster []rosterEntry
	nCount := make([]int, l+1) // packets emitted per class
	eCount := make([]int, l+1)

	emitN := func(src grid.Coord, i int) {
		roster = append(roster, rosterEntry{src: src, dst: nDst(i, nCount[i]), kind: KindN, i: i})
		nCount[i]++
	}
	emitE := func(src grid.Coord, i int) {
		roster = append(roster, rosterEntry{src: src, dst: eDst(i, eCount[i]), kind: KindE, i: i})
		eCount[i]++
	}

	// Forced boundary placement (h packets per node in the h-h variant).
	for y := 0; y < cn; y++ { // N_1-column, at or south of E_1-row
		for rep := 0; rep < c.H; rep++ {
			emitN(grid.XY(cn-1, y), 1)
		}
	}
	for x := 0; x < cn-1; x++ { // E_1-row, west of N_1-column
		for rep := 0; rep < c.H; rep++ {
			emitE(grid.XY(x, cn-1), 1)
		}
	}
	if nCount[1] > p || eCount[1] > p {
		return nil, fmt.Errorf("adversary: boundary needs more class-1 packets than p=%d allows", p)
	}

	// Interior cells (the 0-box), row-major, in class order.
	type need struct {
		kind Kind
		i    int
		n    int
	}
	var needs []need
	needs = append(needs, need{KindN, 1, p - nCount[1]}, need{KindE, 1, p - eCount[1]})
	for i := 2; i <= l; i++ {
		needs = append(needs, need{KindN, i, p}, need{KindE, i, p})
	}
	x, y, used := 0, 0, 0
	advance := func() {
		used++
		if used%c.H == 0 {
			x++
			if x > cn-2 {
				x = 0
				y++
			}
		}
	}
	for _, nd := range needs {
		for t := 0; t < nd.n; t++ {
			if y > cn-2 {
				return nil, fmt.Errorf("adversary: interior of 1-box overflowed")
			}
			if nd.kind == KindN {
				emitN(grid.XY(x, y), nd.i)
			} else {
				emitE(grid.XY(x, y), nd.i)
			}
			advance()
		}
	}
	return roster, nil
}

// Run executes the construction against a fresh instance of the algorithm
// produced by algFactory, for exactly ⌊l⌋·d·n steps, applying exchange
// rules EX1–EX4, and returns the constructed permutation.
//
// The network is built with RequireMinimal and CheckInvariants enabled:
// a non-minimal or overflowing algorithm fails the run. K is the queue
// capacity the Params were computed for.
func (c *Construction) Run(alg sim.Algorithm) (*Result, error) {
	if c.H < 1 {
		c.H = 1
	}
	roster, err := c.buildRoster()
	if err != nil {
		return nil, err
	}
	netK := c.NetK
	if netK == 0 {
		netK = c.Par.K
	}
	net := sim.MustNew(sim.Config{
		Topo:            c.Topo,
		K:               netK,
		Queues:          c.Queues,
		RequireMinimal:  c.Delta == 0,
		MaxStray:        c.Delta,
		CheckInvariants: true,
	})

	c.kindIdx = make(map[kindKey][]sim.PacketID)
	usedSrc := map[grid.NodeID]bool{}
	usedDst := map[grid.NodeID]bool{}
	perSrc := map[grid.NodeID]int{}
	for _, re := range roster {
		src := c.node(re.src.X, re.src.Y)
		dst := c.node(re.dst.X, re.dst.Y)
		pk := net.NewPacket(src, dst)
		net.P.Class[pk] = uint8(re.kind)
		net.P.Tag[pk] = int32(re.i)
		// The first K packets of a node fit its queue; extras enter
		// via the dynamic injection backlog (h-h with h > k).
		if perSrc[src] < netK {
			if err := net.Place(pk); err != nil {
				return nil, err
			}
		} else {
			net.QueueInjection(pk, 1)
		}
		perSrc[src]++
		usedSrc[src] = true
		usedDst[dst] = true
		key := kindKey{re.kind, re.i}
		c.kindIdx[key] = append(c.kindIdx[key], pk)
	}
	perm := make([]workload.Pair, 0, len(roster))

	if c.PadIdentity && c.H == 1 {
		for id := grid.NodeID(0); int(id) < c.Topo.N(); id++ {
			if !usedSrc[id] && !usedDst[id] {
				if err := net.Place(net.NewPacket(id, id)); err != nil {
					return nil, err
				}
			}
		}
	}

	if c.Verify {
		c.ver = newVerifier(c, net)
	}

	if !c.disableExchanges {
		net.SetExchange(c.exchangeHook)
	}
	steps := c.Par.Steps()
	for t := 0; t < steps; t++ {
		if err := net.StepOnce(alg); err != nil {
			return nil, err
		}
		if c.err != nil {
			return nil, c.err
		}
		if c.ver != nil {
			if err := c.ver.check(t + 1); err != nil {
				return nil, err
			}
		}
	}
	net.SetExchange(nil)

	// Corollary 9, quantitatively: at least p - dn packets of each of
	// N_l and E_l (p - (delta+1)dn in the nonminimal extension) remain in
	// the l-box, hence undelivered.
	if c.ver != nil {
		nc, ec := c.ver.countInBoxes()
		min := c.Par.P - (c.Delta+1)*c.Par.DN
		if nc[c.Par.L] < min || ec[c.Par.L] < min {
			return nil, fmt.Errorf("adversary: Corollary 9 violated: %d N_%d and %d E_%d packets in the %d-box, want >= %d each",
				nc[c.Par.L], c.Par.L, ec[c.Par.L], c.Par.L, c.Par.L, min)
		}
	}

	// Record the constructed permutation (sources in placement order,
	// destinations as finally assigned).
	undeliv := 0
	for _, pk := range net.Packets() {
		if Kind(pk.Class) != KindNone {
			perm = append(perm, workload.Pair{Src: pk.Src, Dst: pk.Dst})
			if !pk.Delivered() {
				undeliv++
			}
		}
	}

	return &Result{
		Par:             c.Par,
		Steps:           steps,
		Net:             net,
		Permutation:     perm,
		Exchanges:       c.exchg,
		UndeliveredHard: undeliv,
	}, nil
}

// RunWithoutExchanges runs the same initial instance with the adversary's
// exchange rules disabled — the A1 ablation: the initial assignment alone,
// without the destination swaps, is a far easier instance.
func (c *Construction) RunWithoutExchanges(alg sim.Algorithm) (*Result, error) {
	c.disableExchanges = true
	defer func() { c.disableExchanges = false }()
	return c.Run(alg)
}

// exchangeHook applies rules EX1–EX4 to the scheduled moves of one step.
func (c *Construction) exchangeHook(net *sim.Network, step int, moves []sim.Move) {
	if c.err != nil {
		return
	}
	// Scheduled targets, for partner eligibility ("not scheduled to enter
	// the N_i-column").
	sched := make(map[sim.PacketID]grid.Coord, len(moves))
	for _, m := range moves {
		sched[m.P] = c.local(m.To)
	}
	for _, m := range moves {
		kind, j := c.kindOf(net.P.Dst[m.P])
		if kind == KindNone {
			continue
		}
		to := c.local(m.To)
		cn, l := c.Par.CN, c.Par.L

		// Entering the N_i-column south of the E_i-row?
		if i := to.X - cn + 2; i >= 1 && i <= l && to.Y < to.X && step <= i*c.Par.DN {
			// EX2: N_j, j > i.  EX3: E_j, j >= i.
			if (kind == KindN && j > i) || (kind == KindE && j >= i) {
				c.exchange(net, m.P, KindN, i, kind, j, sched, step)
				continue
			}
		}
		// Entering the E_i-row west of the N_i-column?
		if i := to.Y - cn + 2; i >= 1 && i <= l && to.X < to.Y && step <= i*c.Par.DN {
			// EX1: E_j, j > i.  EX4: N_j, j >= i.
			if (kind == KindE && j > i) || (kind == KindN && j >= i) {
				c.exchange(net, m.P, KindE, i, kind, j, sched, step)
			}
		}
	}
}

// exchange swaps the destination of p with an eligible partner of kind
// (wantKind, i): a packet in the (i-1)-box not scheduled to enter the
// N_i-column (for KindN) or the E_i-row (for KindE).
func (c *Construction) exchange(net *sim.Network, p sim.PacketID, wantKind Kind, i int, pKind Kind, pIdx int, sched map[sim.PacketID]grid.Coord, step int) {
	st := &net.P
	key := kindKey{wantKind, i}
	partner := sim.NoPacket
	var pi int
	for idx, q := range c.kindIdx[key] {
		if q == p || st.Delivered(q) {
			continue
		}
		if !c.inBox(c.local(st.At[q]), i-1) {
			continue
		}
		if tgt, ok := sched[q]; ok {
			if wantKind == KindN && tgt.X == c.nCol(i) {
				continue
			}
			if wantKind == KindE && tgt.Y == c.eRow(i) {
				continue
			}
		}
		partner = q
		pi = idx
		break
	}
	if partner == sim.NoPacket {
		c.err = fmt.Errorf("adversary: step %d: no eligible %v_%d partner for %v_%d packet %d (Lemma 3/4 violated — construction bug)",
			step, wantKind, i, pKind, pIdx, p.ID())
		return
	}
	// Swap destinations (and, equivalently, roles).
	st.Dst[p], st.Dst[partner] = st.Dst[partner], st.Dst[p]
	st.Class[p], st.Class[partner] = st.Class[partner], st.Class[p]
	st.Tag[p], st.Tag[partner] = st.Tag[partner], st.Tag[p]
	// Update the role index: p takes partner's slot and vice versa.
	pkey := kindKey{pKind, pIdx}
	c.kindIdx[key][pi] = p
	for idx, q := range c.kindIdx[pkey] {
		if q == p {
			c.kindIdx[pkey][idx] = partner
			break
		}
	}
	c.exchg++
}
