package adversary

import (
	"fmt"
	"strings"

	"meshroute/internal/sim"
)

// RenderLayout draws the construction's static geometry — Figure 1 of the
// paper: the 1-box in the southwest corner, the N_i-columns and E_i-rows,
// and the destination regions. One character per node, north up.
func (c *Construction) RenderLayout() string {
	n, cn, l := c.Par.N, c.Par.CN, c.Par.L
	rows := make([][]byte, n)
	for y := range rows {
		rows[y] = []byte(strings.Repeat(".", n))
	}
	// 1-box.
	for y := 0; y < cn; y++ {
		for x := 0; x < cn; x++ {
			rows[y][x] = '1'
		}
	}
	// N_i-columns north of the E_i-row (destination regions) and E_i-rows
	// east of the N_i-column.
	for i := 1; i <= l; i++ {
		for y := c.eRow(i) + 1; y < n; y++ {
			rows[y][c.nCol(i)] = 'N'
		}
		for x := c.nCol(i) + 1; x < n; x++ {
			rows[c.eRow(i)][x] = 'E'
		}
	}
	return renderRows(rows) + fmt.Sprintf("[Figure 1: n=%d k=%d cn=%d l=%d; 1=1-box, N/E=destination columns/rows]\n",
		n, c.Par.K, cn, l)
}

// RenderKinds draws the current packet population by kind — the invariant
// picture of Figure 2: after step t <= i·dn, packets of high classes remain
// boxed in the southwest while only low classes have escaped.
func (c *Construction) RenderKinds(net *sim.Network) string {
	n := c.Par.N
	rows := make([][]byte, n)
	for y := range rows {
		rows[y] = []byte(strings.Repeat(".", n))
	}
	for _, p := range net.Packets() {
		kind, _ := c.kindOf(p.Dst)
		if kind == KindNone || p.Delivered() {
			continue
		}
		lc := c.local(p.At)
		if lc.X < 0 || lc.X >= n || lc.Y < 0 || lc.Y >= n {
			continue
		}
		var g byte
		switch {
		case kind == KindN && rows[lc.Y][lc.X] == 'E',
			kind == KindE && rows[lc.Y][lc.X] == 'N':
			g = 'B' // both kinds share the node
		case kind == KindN:
			g = 'N'
		default:
			g = 'E'
		}
		rows[lc.Y][lc.X] = g
	}
	return renderRows(rows) + fmt.Sprintf("[Figure 2: packet kinds after step %d; N/E packets, B=both, .=empty]\n", net.Step())
}

// renderRows prints north-up (last row first).
func renderRows(rows [][]byte) string {
	var b strings.Builder
	for y := len(rows) - 1; y >= 0; y-- {
		b.Write(rows[y])
		b.WriteByte('\n')
	}
	return b.String()
}
