package adversary

import (
	"strings"
	"testing"
)

func TestRenderLayout(t *testing.T) {
	c, err := NewConstruction(60, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := c.RenderLayout()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 61 { // 60 rows + caption
		t.Fatalf("want 61 lines, got %d", len(lines))
	}
	// The southwest corner (last grid row, first cn columns) is the 1-box.
	bottom := lines[59]
	if !strings.HasPrefix(bottom, strings.Repeat("1", c.Par.CN)) {
		t.Fatalf("1-box missing from the bottom row: %q", bottom)
	}
	if !strings.Contains(out, "N") || !strings.Contains(out, "E") {
		t.Fatal("destination regions missing")
	}
}

func TestRenderKinds(t *testing.T) {
	c, err := NewConstruction(60, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(dimOrderFactory())
	if err != nil {
		t.Fatal(err)
	}
	out := c.RenderKinds(res.Net)
	if !strings.Contains(out, "N") || !strings.Contains(out, "E") {
		t.Fatalf("kind map empty:\n%s", out)
	}
	// All undelivered construction packets render inside the mesh and,
	// by the invariants, in the southwest region (no kind letter in the
	// northeast quadrant beyond the destination columns).
	lines := strings.Split(out, "\n")
	for y := 0; y < 20; y++ { // top third of the mesh (rows 40..59)
		for x := c.Par.CN + c.Par.L; x < 60 && y < len(lines); x++ {
			ch := lines[y][x]
			if ch == 'N' || ch == 'E' || ch == 'B' {
				t.Fatalf("packet far northeast at render row %d col %d", y, x)
			}
		}
	}
}
