package adversary

import (
	"hash/fnv"
	"testing"
)

// The constructions are fully deterministic: the exact constructed
// permutation must never change across refactors (reproducibility of the
// recorded experiments depends on it). These golden checksums pin the
// byte-level outcome; if an intentional behavior change breaks one, rerun
// the experiments and update both the checksum and EXPERIMENTS.md.
func permChecksum(res *Result) uint64 {
	h := fnv.New64a()
	for _, pr := range res.Permutation {
		var b [8]byte
		b[0] = byte(pr.Src)
		b[1] = byte(pr.Src >> 8)
		b[2] = byte(pr.Src >> 16)
		b[3] = byte(pr.Dst)
		b[4] = byte(pr.Dst >> 8)
		b[5] = byte(pr.Dst >> 16)
		h.Write(b[:6])
	}
	return h.Sum64()
}

func TestGoldenConstructions(t *testing.T) {
	t.Run("general-dimorder", func(t *testing.T) {
		c, err := NewConstruction(120, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(dimOrderFactory())
		if err != nil {
			t.Fatal(err)
		}
		got := permChecksum(res)
		const want = 0x12c6d46a7c3d301e
		if got != want {
			t.Errorf("constructed permutation changed: checksum %#x, recorded %#x (exchanges=%d)",
				got, uint64(want), res.Exchanges)
		}
	})
	t.Run("dimorder-construction", func(t *testing.T) {
		c, err := NewDOConstruction(60, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(dimOrderFactory())
		if err != nil {
			t.Fatal(err)
		}
		got := permChecksum(res)
		const want = 0x1234f2404e0b98b9
		if got != want {
			t.Errorf("constructed permutation changed: checksum %#x, recorded %#x (exchanges=%d)",
				got, uint64(want), res.Exchanges)
		}
	})
}
