// Package adversary implements the lower-bound constructions of Chinn,
// Leighton and Tompa, Sections 3–5:
//
//   - the general construction (Section 3) that forces any deterministic,
//     destination-exchangeable, minimal adaptive routing algorithm to spend
//     Ω(n²/k²) steps on its constructed permutation (Theorem 14);
//   - the dimension-order construction (Section 5) forcing Ω(n²/k);
//   - the farthest-first dimension-order construction (Section 5);
//   - the h-h extension and the torus embedding.
//
// Each construction runs the target algorithm under the engine's exchange
// hook, applying the paper's exchange rules (EX1–EX4) to swap destination
// addresses of packets whose profitable-outlink views are identical, and
// returns the constructed permutation — the final source→destination
// assignment. Replaying that permutation without exchanges must reproduce
// the exact same network configuration (Lemma 12), which the package
// verifies, and must leave packets undelivered at step ⌊l⌋·d·n
// (Theorem 13).
package adversary

import (
	"fmt"
)

// Params holds the integer constants of Section 4.3 for an instance of the
// general construction.
type Params struct {
	// N is the mesh side length.
	N int
	// K is the queue capacity k >= 1.
	K int
	// CN is c·n: the largest integer with c <= 1/(2(k+2)).
	CN int
	// DN is d·n: the largest integer with d <= 2/5.
	DN int
	// P is p = ⌊(k+1)(cn + c²n) + dn⌋, the number of N_i-packets (and of
	// E_i-packets) per index i.
	P int
	// L is ⌊l⌋ = ⌊c²n²/(2p)⌋, the number of packet classes.
	L int
}

// Steps returns ⌊l⌋·d·n, the number of steps the construction runs and the
// lower bound of Theorem 13 on the delivery time of the constructed
// permutation.
func (pr Params) Steps() int { return pr.L * pr.DN }

// NewParams computes the constants of Section 4.3 for an n×n mesh with
// queues of size k. It returns an error when the mesh is too small for the
// construction's placement constraints.
func NewParams(n, k int) (Params, error) {
	if k < 1 {
		return Params{}, fmt.Errorf("adversary: k = %d, need k >= 1", k)
	}
	cn := n / (2 * (k + 2)) // largest cn with c <= 1/(2(k+2))
	dn := 2 * n / 5         // largest dn with d <= 2/5
	if cn < 2 {
		return Params{}, fmt.Errorf("adversary: n = %d too small for k = %d (cn = %d)", n, k, cn)
	}
	// p = ⌊(k+1)(cn + cn²/n) + dn⌋ computed exactly in integers:
	// ⌊((k+1)·cn·(n+cn) + dn·n) / n⌋.
	p := ((k+1)*cn*(n+cn) + dn*n) / n
	// l = c²n²/(2p) = (cn)²/(2p).
	l := (cn * cn) / (2 * p)
	pr := Params{N: n, K: k, CN: cn, DN: dn, P: p, L: l}
	if err := pr.validate(); err != nil {
		return Params{}, err
	}
	return pr, nil
}

// validate checks the three constraints of Section 4.3.
func (pr Params) validate() error {
	if pr.L < 1 {
		return fmt.Errorf("adversary: ⌊l⌋ = %d < 1; increase n (n=%d, k=%d)", pr.L, pr.N, pr.K)
	}
	// Constraint 1: p <= (1-c)n - l, i.e. p + l <= n - cn. This
	// guarantees enough distinct destination rows (columns) for all
	// N_i-packets (E_i-packets) outside the i-box.
	if pr.P+pr.L > pr.N-pr.CN {
		return fmt.Errorf("adversary: constraint 1 violated: p+l = %d > n-cn = %d (n=%d, k=%d)",
			pr.P+pr.L, pr.N-pr.CN, pr.N, pr.K)
	}
	// Constraint 3: l <= c²n = cn²/n (needed by Lemmas 3 and 4).
	if pr.L*pr.N > pr.CN*pr.CN {
		return fmt.Errorf("adversary: constraint 3 violated: l = %d > c²n = %d/%d", pr.L, pr.CN*pr.CN, pr.N)
	}
	// Placement feasibility: 2·p·L packets in the cn×cn 1-box.
	if 2*pr.P*pr.L > pr.CN*pr.CN {
		return fmt.Errorf("adversary: 2pL = %d exceeds 1-box size %d", 2*pr.P*pr.L, pr.CN*pr.CN)
	}
	return nil
}

// MinN returns the smallest recommended mesh side for queue size k — the
// paper's n >= 24(k+2)² from the proof of Theorem 14. NewParams may accept
// somewhat smaller n (it checks the constraints directly); MinN guarantees
// the Ω(n²/k²) constant calculation of Theorem 14 applies.
func MinN(k int) int { return 24 * (k + 2) * (k + 2) }

// NewDeltaParams computes the constants of the Section 5 "Nonminimal
// extensions": for destination-exchangeable algorithms whose packets never
// move more than delta nodes beyond their source-destination rectangle,
// p is inflated to (δ+1)·((k+1)(cn+c²n)+dn) — there must be enough
// N_i-packets to fill the N_i-column *and* the δ columns east of it — and
// the bound becomes Ω(n²/((δ+1)³k²)).
func NewDeltaParams(n, k, delta int) (Params, error) {
	if delta < 0 {
		return Params{}, fmt.Errorf("adversary: delta = %d, need delta >= 0", delta)
	}
	if delta == 0 {
		return NewParams(n, k)
	}
	if k < 1 {
		return Params{}, fmt.Errorf("adversary: k = %d, need k >= 1", k)
	}
	// Both c and d shrink by the (δ+1) factor so constraint 1 keeps
	// holding with the inflated p — which, with l ~ c²n²/p, is exactly
	// where the paper's (δ+1)³ in Ω(n²/((δ+1)³k²)) comes from.
	cn := n / (3 * (k + 2) * (delta + 1))
	dn := 2 * n / (5 * (delta + 1))
	if cn < 2 {
		return Params{}, fmt.Errorf("adversary: n = %d too small for k=%d delta=%d (cn = %d)", n, k, delta, cn)
	}
	p := (delta + 1) * (((k+1)*cn*(n+cn) + dn*n) / n)
	l := (cn * cn) / (2 * p)
	pr := Params{N: n, K: k, CN: cn, DN: dn, P: p, L: l}
	if pr.L < 1 {
		return Params{}, fmt.Errorf("adversary: delta ⌊l⌋ = 0 for n=%d k=%d delta=%d", n, k, delta)
	}
	if pr.P+pr.L > pr.N-pr.CN {
		return Params{}, fmt.Errorf("adversary: delta constraint 1 violated: p+l = %d > n-cn = %d", pr.P+pr.L, pr.N-pr.CN)
	}
	if 2*pr.P*pr.L > pr.CN*pr.CN {
		return Params{}, fmt.Errorf("adversary: delta 2pL = %d exceeds 1-box size %d", 2*pr.P*pr.L, pr.CN*pr.CN)
	}
	return pr, nil
}

// NewHHParams computes the constants of the Section 5 h-h extension, which
// places h packets on each node of the 1-box and yields an
// Ω(h³n²/(k+h)²) bound: c <= h/(3(k+1+h)), d <= 5h/9,
// p = ⌊(k+1)(cn+c²n)+dn⌋, l = h·c²n²/(2p).
func NewHHParams(n, k, h int) (Params, error) {
	if k < 1 || h < 1 {
		return Params{}, fmt.Errorf("adversary: need k >= 1 and h >= 1 (got k=%d h=%d)", k, h)
	}
	if h == 1 {
		return NewParams(n, k)
	}
	cn := h * n / (3 * (k + 1 + h))
	dn := 5 * h * n / 9
	if cn < 2 {
		return Params{}, fmt.Errorf("adversary: n = %d too small for k=%d h=%d (cn = %d)", n, k, h, cn)
	}
	p := ((k+1)*cn*(n+cn) + dn*n) / n
	l := h * cn * cn / (2 * p)
	pr := Params{N: n, K: k, CN: cn, DN: dn, P: p, L: l}
	if pr.L < 1 {
		return Params{}, fmt.Errorf("adversary: h-h ⌊l⌋ = 0 for n=%d k=%d h=%d", n, k, h)
	}
	// Constraint 1 (h-h form): p <= h((1-c)n - l), i.e. destination rows
	// suffice when each receives up to h packets.
	if pr.P > h*(n-cn-pr.L) {
		return Params{}, fmt.Errorf("adversary: h-h constraint 1 violated: p=%d > h((1-c)n-l)=%d", pr.P, h*(n-cn-pr.L))
	}
	// Placement: 2pL packets, h per node, in the cn×cn 1-box.
	if 2*pr.P*pr.L > h*cn*cn {
		return Params{}, fmt.Errorf("adversary: h-h 2pL = %d exceeds h·(cn)² = %d", 2*pr.P*pr.L, h*cn*cn)
	}
	return pr, nil
}
