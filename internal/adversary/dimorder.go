package adversary

import (
	"fmt"

	"meshroute/internal/grid"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

// DOParams holds the constants of the Section 5 dimension-order
// construction ("Dimension Order Routing", Figure 4 left), which forces
// Ω(n²/k) steps on any destination-exchangeable dimension-order router.
type DOParams struct {
	// N is the mesh side, K the queue size.
	N, K int
	// CN is c·n with 2/(5(k+2)) <= c <= 1/(2(k+2)).
	CN int
	// DN is d·n with 2/5 <= d <= 1/2.
	DN int
	// P is p = (k+1)·cn + dn, the number of N_i-packets per class.
	P int
	// L is ⌊l⌋ = ⌊(1-c)·c·n²/p⌋, the number of classes.
	L int
}

// Steps returns ⌊l⌋·d·n, the lower bound on delivery time.
func (p DOParams) Steps() int { return p.L * p.DN }

// NewDOParams computes the Section 5 dimension-order constants.
func NewDOParams(n, k int) (DOParams, error) {
	if k < 1 {
		return DOParams{}, fmt.Errorf("adversary: k = %d, need k >= 1", k)
	}
	cn := n / (2 * (k + 2))
	dn := n / 2
	if cn < 2 {
		return DOParams{}, fmt.Errorf("adversary: n = %d too small for k = %d (cn = %d)", n, k, cn)
	}
	p := (k+1)*cn + dn
	l := (n - cn) * cn / p
	par := DOParams{N: n, K: k, CN: cn, DN: dn, P: p, L: l}
	if par.L < 1 {
		return DOParams{}, fmt.Errorf("adversary: ⌊l⌋ = 0 for n=%d k=%d", n, k)
	}
	if par.L > cn {
		return DOParams{}, fmt.Errorf("adversary: l = %d exceeds the cn = %d destination columns", par.L, cn)
	}
	if par.P > n-cn {
		return DOParams{}, fmt.Errorf("adversary: p = %d exceeds the %d destination rows per column", par.P, n-cn)
	}
	return par, nil
}

// DOConstruction runs the dimension-order adversary: sources are the
// westernmost (1-c)n nodes of the cn southernmost rows; each sends a packet
// to the northernmost (1-c)n nodes of the cn easternmost columns. The
// single exchange rule keeps N_j-packets (j > i) out of the N_i-column
// during steps 1..i·dn.
type DOConstruction struct {
	// Par holds the constants.
	Par DOParams
	// Topo is the n×n mesh (or torus embedding with offsets, as in the
	// general construction).
	Topo grid.Topology
	// OffX, OffY embed the construction.
	OffX, OffY int
	// Verify enables per-step invariant checks.
	Verify bool
	// Queues selects the queue model of the network under test.
	Queues sim.QueueModel
	// NetK overrides the per-queue capacity (0 = Par.K); see
	// Construction.NetK.
	NetK int

	kindIdx [][]sim.PacketID // class i -> packets currently of class i
	err     error
	exchg   int
	prevIn  []int
}

// NewDOConstruction prepares the dimension-order adversary for an n×n mesh.
func NewDOConstruction(n, k int) (*DOConstruction, error) {
	par, err := NewDOParams(n, k)
	if err != nil {
		return nil, err
	}
	return &DOConstruction{Par: par, Topo: grid.NewSquareMesh(n)}, nil
}

func (c *DOConstruction) local(id grid.NodeID) grid.Coord {
	g := c.Topo.CoordOf(id)
	return grid.XY(g.X-c.OffX, g.Y-c.OffY)
}

func (c *DOConstruction) node(x, y int) grid.NodeID {
	return c.Topo.ID(grid.XY(x+c.OffX, y+c.OffY))
}

// nCol returns the 0-based local column of the N_i-column (1-based column
// (1-c)n - 1 + i, adjusted so that class 1 owns the westernmost of the cn
// easternmost columns).
func (c *DOConstruction) nCol(i int) int { return c.Par.N - c.Par.CN + i - 1 }

// classOf classifies a destination: class i if it lies in the N_i-column
// north of the source band.
func (c *DOConstruction) classOf(dst grid.NodeID) int {
	lc := c.local(dst)
	if lc.Y < c.Par.CN {
		return 0
	}
	i := lc.X - (c.Par.N - c.Par.CN) + 1
	if i >= 1 && i <= c.Par.L {
		return i
	}
	return 0
}

// inBox reports membership in the i-box: west of and including the
// N_i-column, south of and including row cn (i = 0 means strictly west of
// the N_1-column).
func (c *DOConstruction) inBox(lc grid.Coord, i int) bool {
	if lc.Y >= c.Par.CN {
		return false
	}
	if i == 0 {
		return lc.X < c.nCol(1)
	}
	return lc.X <= c.nCol(i)
}

// Run executes the construction for ⌊l⌋·d·n steps against the algorithm
// and returns the constructed permutation.
func (c *DOConstruction) Run(alg sim.Algorithm) (*Result, error) {
	par := c.Par
	netK := c.NetK
	if netK == 0 {
		netK = par.K
	}
	net := sim.MustNew(sim.Config{
		Topo:            c.Topo,
		K:               netK,
		Queues:          c.Queues,
		RequireMinimal:  true,
		CheckInvariants: true,
	})
	c.kindIdx = make([][]sim.PacketID, par.L+1)

	// Sources row-major through the band; classes in ascending blocks of
	// p. Destinations: class i gets unique rows cn..cn+p-1 in its column.
	count := 0
	tPer := make([]int, par.L+1)
	for y := 0; y < par.CN && count < par.L*par.P; y++ {
		for x := 0; x < par.N-par.CN && count < par.L*par.P; x++ {
			i := 1 + count/par.P
			pk := net.NewPacket(c.node(x, y), c.node(c.nCol(i), par.CN+tPer[i]))
			net.P.Class[pk] = uint8(KindN)
			net.P.Tag[pk] = int32(i)
			if err := net.Place(pk); err != nil {
				return nil, err
			}
			c.kindIdx[i] = append(c.kindIdx[i], pk)
			tPer[i]++
			count++
		}
	}
	if count != par.L*par.P {
		return nil, fmt.Errorf("adversary: placed %d packets, want %d", count, par.L*par.P)
	}

	if c.Verify {
		c.prevIn = c.countInBoxes(net)
	}
	net.SetExchange(c.exchangeHook)
	for t := 0; t < par.Steps(); t++ {
		if err := net.StepOnce(alg); err != nil {
			return nil, err
		}
		if c.err != nil {
			return nil, c.err
		}
		if c.Verify {
			if err := c.check(net, t+1); err != nil {
				return nil, err
			}
		}
	}
	net.SetExchange(nil)

	perm := make([]workload.Pair, 0, count)
	undeliv := 0
	for _, pk := range net.Packets() {
		perm = append(perm, workload.Pair{Src: pk.Src, Dst: pk.Dst})
		if !pk.Delivered() {
			undeliv++
		}
	}
	return &Result{
		Par:             Params{N: par.N, K: par.K, CN: par.CN, DN: par.DN, P: par.P, L: par.L},
		Steps:           par.Steps(),
		Net:             net,
		Permutation:     perm,
		Exchanges:       c.exchg,
		UndeliveredHard: undeliv,
	}, nil
}

// exchangeHook applies the single dimension-order exchange rule.
func (c *DOConstruction) exchangeHook(net *sim.Network, step int, moves []sim.Move) {
	if c.err != nil {
		return
	}
	st := &net.P
	sched := make(map[sim.PacketID]grid.Coord, len(moves))
	for _, m := range moves {
		sched[m.P] = c.local(m.To)
	}
	for _, m := range moves {
		j := c.classOf(st.Dst[m.P])
		if j == 0 {
			continue
		}
		to := c.local(m.To)
		if m.Travel != grid.East || to.Y >= c.Par.CN {
			continue // only eastward entries within the band matter
		}
		i := to.X - (c.Par.N - c.Par.CN) + 1
		if i < 1 || i > c.Par.L || j <= i || step > i*c.Par.DN {
			continue
		}
		// Exchange with an N_i-packet in the (i-1)-box not scheduled to
		// enter the N_i-column.
		partner := sim.NoPacket
		var pidx int
		for idx, q := range c.kindIdx[i] {
			if q == m.P || st.Delivered(q) || !c.inBox(c.local(st.At[q]), i-1) {
				continue
			}
			if tgt, ok := sched[q]; ok && tgt.X == c.nCol(i) {
				continue
			}
			partner = q
			pidx = idx
			break
		}
		if partner == sim.NoPacket {
			c.err = fmt.Errorf("adversary: step %d: no eligible N_%d partner (dim-order Lemma 3 analog violated)", step, i)
			return
		}
		st.Dst[m.P], st.Dst[partner] = st.Dst[partner], st.Dst[m.P]
		st.Tag[m.P], st.Tag[partner] = st.Tag[partner], st.Tag[m.P]
		c.kindIdx[i][pidx] = m.P
		for idx, q := range c.kindIdx[j] {
			if q == m.P {
				c.kindIdx[j][idx] = partner
				break
			}
		}
		c.exchg++
	}
}

// countInBoxes counts class-i packets inside the i-box, per class.
func (c *DOConstruction) countInBoxes(net *sim.Network) []int {
	cnt := make([]int, c.Par.L+1)
	for _, p := range net.Packets() {
		i := c.classOf(p.Dst)
		if i == 0 || p.Delivered() {
			continue
		}
		if c.inBox(c.local(p.At), i) {
			cnt[i]++
		}
	}
	return cnt
}

// check validates the dimension-order analogues of Lemmas 1/2/5.
func (c *DOConstruction) check(net *sim.Network, t int) error {
	dn := c.Par.DN
	for _, p := range net.Packets() {
		j := c.classOf(p.Dst)
		if j == 0 || p.Delivered() {
			continue
		}
		lc := c.local(p.At)
		if lc.X > c.nCol(j) {
			return fmt.Errorf("adversary: step %d: N_%d packet %d east of its column at %v", t, j, p.ID, lc)
		}
		// Lemma 5 analog: class j inside the (i0-2)-box, i0 the
		// smallest i > 1 with t <= (i-1)dn.
		if j >= 2 {
			i0 := (t+dn-1)/dn + 1
			if i0 >= 2 && i0 <= j && !c.inBox(lc, i0-2) {
				return fmt.Errorf("adversary: step %d: N_%d packet %d outside %d-box at %v", t, j, p.ID, i0-2, lc)
			}
		}
	}
	cnt := c.countInBoxes(net)
	for i := 1; i <= c.Par.L; i++ {
		limit := 0
		switch {
		case t <= (i-1)*dn:
			limit = 0
		case t <= i*dn:
			limit = 1
		default:
			limit = c.prevIn[i]
		}
		if c.prevIn[i]-cnt[i] > limit {
			return fmt.Errorf("adversary: step %d: %d N_%d packets left the %d-box (limit %d)", t, c.prevIn[i]-cnt[i], i, i, limit)
		}
	}
	c.prevIn = cnt
	return nil
}

// Replay re-runs the constructed permutation without exchanges, verifies
// the Lemma 12 analogue and Theorem-13-style undeliverability, and returns
// the replay network.
func (c *DOConstruction) Replay(res *Result, alg sim.Algorithm) (*sim.Network, error) {
	netK := c.NetK
	if netK == 0 {
		netK = c.Par.K
	}
	net := sim.MustNew(sim.Config{
		Topo:            c.Topo,
		K:               netK,
		Queues:          c.Queues,
		RequireMinimal:  true,
		CheckInvariants: true,
	})
	for _, pr := range res.Permutation {
		if err := net.Place(net.NewPacket(pr.Src, pr.Dst)); err != nil {
			return nil, err
		}
	}
	for t := 0; t < res.Steps; t++ {
		if err := net.StepOnce(alg); err != nil {
			return nil, err
		}
	}
	if err := ConfigsEqual(res.Net, net); err != nil {
		return nil, fmt.Errorf("adversary: dim-order Lemma 12 equivalence failed: %w", err)
	}
	if net.Done() {
		return nil, fmt.Errorf("adversary: dim-order bound failed: delivered within %d steps", res.Steps)
	}
	return net, nil
}
