package adversary

import (
	"fmt"

	"meshroute/internal/sim"
)

// verifier checks Lemmas 1–8 of Section 4.1 after every step of the
// construction (for the permutation case, H = 1).
type verifier struct {
	c   *Construction
	net *sim.Network
	// prevN[i], prevE[i]: packets of current kind N_i/E_i inside the
	// i-box after the previous step.
	prevN []int
	prevE []int
}

func newVerifier(c *Construction, net *sim.Network) *verifier {
	v := &verifier{c: c, net: net, prevN: make([]int, c.Par.L+1), prevE: make([]int, c.Par.L+1)}
	v.prevN, v.prevE = v.countInBoxes()
	return v
}

// countInBoxes counts, for every class i, the construction packets of
// current kind N_i (E_i) located inside the i-box.
func (v *verifier) countInBoxes() (nc, ec []int) {
	l := v.c.Par.L
	nc = make([]int, l+1)
	ec = make([]int, l+1)
	for _, p := range v.net.Packets() {
		kind, i := v.c.kindOf(p.Dst)
		if kind == KindNone || p.Delivered() {
			continue
		}
		if v.c.inBoxKind(v.c.local(p.At), kind, i) {
			if kind == KindN {
				nc[i]++
			} else {
				ec[i]++
			}
		}
	}
	return nc, ec
}

// check validates the lemmas immediately after step t.
func (v *verifier) check(t int) error {
	c := v.c
	par := c.Par
	dn, l := par.DN, par.L

	// Per-packet invariants: Lemmas 5–8 and minimality of box containment.
	for _, p := range v.net.Packets() {
		kind, j := c.kindOf(p.Dst)
		if kind == KindNone || p.Delivered() {
			continue
		}
		lc := c.local(p.At)
		switch kind {
		case KindN:
			// An N_j-packet can never be more than Delta east of
			// the N_j-column (Delta = 0 for minimal routers).
			if lc.X > c.nCol(j)+c.Delta {
				return fmt.Errorf("adversary: step %d: N_%d packet %d east of its column at %v", t, j, p.ID, lc)
			}
			// Lemma 7: for t <= j·dn, not at/north of E_j-row while
			// west of N_j-column (minimal routers only; a strayed
			// packet may legally re-enter that region).
			if c.Delta == 0 && t <= j*dn && lc.Y >= c.eRow(j) && lc.X < c.nCol(j) {
				return fmt.Errorf("adversary: step %d: Lemma 7 violated by N_%d packet %d at %v", t, j, p.ID, lc)
			}
		case KindE:
			if lc.Y > c.eRow(j)+c.Delta {
				return fmt.Errorf("adversary: step %d: E_%d packet %d north of its row at %v", t, j, p.ID, lc)
			}
			// Lemma 8.
			if c.Delta == 0 && t <= j*dn && lc.X >= c.nCol(j) && lc.Y < c.eRow(j) {
				return fmt.Errorf("adversary: step %d: Lemma 8 violated by E_%d packet %d at %v", t, j, p.ID, lc)
			}
		}
		// Lemmas 5/6: the packet must be inside the (i0-2)-box, where
		// i0 is the smallest i > 1 with t <= (i-1)·dn.
		if j >= 2 {
			i0 := (t+dn-1)/dn + 1
			if i0 <= j && i0 >= 2 {
				if !c.inBox(lc, i0-2) {
					return fmt.Errorf("adversary: step %d: Lemma 5/6 violated: %v_%d packet %d outside %d-box at %v",
						t, kind, j, p.ID, i0-2, lc)
				}
			}
		}
	}

	// Lemmas 1/2: departure rates from the i-boxes.
	nc, ec := v.countInBoxes()
	for i := 1; i <= l; i++ {
		limit := 0 // allowed departures this step
		switch {
		case t <= (i-1)*dn:
			limit = 0 // Lemma 1
		case t <= i*dn:
			// Lemma 2 (Delta extension: one escape per step through
			// each of the Delta+1 exit columns/rows).
			limit = 1 + v.c.Delta
		default:
			limit = v.prevN[i] // unconstrained
		}
		if v.prevN[i]-nc[i] > limit {
			return fmt.Errorf("adversary: step %d: %d N_%d packets left the %d-box (Lemma 1/2 allows %d)",
				t, v.prevN[i]-nc[i], i, i, limit)
		}
		if t > i*dn {
			limit = v.prevE[i]
		}
		if v.prevE[i]-ec[i] > limit {
			return fmt.Errorf("adversary: step %d: %d E_%d packets left the %d-box (Lemma 1/2 allows %d)",
				t, v.prevE[i]-ec[i], i, i, limit)
		}
	}
	v.prevN, v.prevE = nc, ec
	return nil
}
