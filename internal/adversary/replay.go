package adversary

import (
	"fmt"
	"sort"

	"meshroute/internal/grid"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

// Replay re-runs the constructed permutation from scratch — same placement
// order, final destinations, no exchanges — against a fresh instance of the
// algorithm, for exactly res.Steps steps, and verifies:
//
//   - Lemma 12: the resulting network configuration is identical to the
//     configuration at the end of the construction run (node states, packet
//     positions, packet states, queue tags, delivery times);
//   - Theorem 13: undelivered packets remain, so the algorithm needs more
//     than ⌊l⌋·d·n steps on this permutation.
//
// It returns the replay network, positioned after res.Steps steps, so the
// caller can keep running it to measure the total delivery time.
func (c *Construction) Replay(res *Result, alg sim.Algorithm) (*sim.Network, error) {
	netK := c.NetK
	if netK == 0 {
		netK = c.Par.K
	}
	net := sim.MustNew(sim.Config{
		Topo:            c.Topo,
		K:               netK,
		Queues:          c.Queues,
		RequireMinimal:  c.Delta == 0,
		MaxStray:        c.Delta,
		CheckInvariants: true,
	})
	perSrc := map[grid.NodeID]int{}
	usedSrc := map[grid.NodeID]bool{}
	usedDst := map[grid.NodeID]bool{}
	for _, pr := range res.Permutation {
		pk := net.NewPacket(pr.Src, pr.Dst)
		if perSrc[pr.Src] < netK {
			if err := net.Place(pk); err != nil {
				return nil, err
			}
		} else {
			net.QueueInjection(pk, 1)
		}
		perSrc[pr.Src]++
		usedSrc[pr.Src] = true
		usedDst[pr.Dst] = true
	}
	if c.PadIdentity && c.H == 1 {
		for id := grid.NodeID(0); int(id) < c.Topo.N(); id++ {
			if !usedSrc[id] && !usedDst[id] {
				if err := net.Place(net.NewPacket(id, id)); err != nil {
					return nil, err
				}
			}
		}
	}
	for t := 0; t < res.Steps; t++ {
		if err := net.StepOnce(alg); err != nil {
			return nil, err
		}
	}
	if err := ConfigsEqual(res.Net, net); err != nil {
		return nil, fmt.Errorf("adversary: Lemma 12 equivalence failed: %w", err)
	}
	if net.Done() {
		return nil, fmt.Errorf("adversary: Theorem 13 failed: all packets delivered within %d steps", res.Steps)
	}
	return net, nil
}

// packetSig is the comparable description of one packet used for
// configuration equality: everything the model calls "configuration"
// (position, destination, state) plus the delivery record.
type packetSig struct {
	Src         grid.NodeID
	Dst         grid.NodeID
	At          grid.NodeID
	State       uint64
	QTag        uint8
	Arrived     grid.Dir
	ArrivedStep int
	DeliverStep int
}

// ConfigsEqual compares two networks' configurations: every node's state
// word and the full multiset of packet descriptors, with packets matched by
// source address (unique in a permutation instance). It returns a
// descriptive error on the first difference.
func ConfigsEqual(a, b *sim.Network) error {
	if a.Topo.N() != b.Topo.N() {
		return fmt.Errorf("different topologies")
	}
	sigs := func(net *sim.Network) []packetSig {
		out := make([]packetSig, 0, len(net.Packets()))
		for _, p := range net.Packets() {
			out = append(out, packetSig{
				Src: p.Src, Dst: p.Dst, At: p.At, State: p.State,
				QTag: p.QTag, Arrived: p.Arrived, ArrivedStep: p.ArrivedStep,
				DeliverStep: p.DeliverStep,
			})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Src != out[j].Src {
				return out[i].Src < out[j].Src
			}
			return out[i].Dst < out[j].Dst
		})
		return out
	}
	sa, sb := sigs(a), sigs(b)
	if len(sa) != len(sb) {
		return fmt.Errorf("packet counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return fmt.Errorf("packet from %d differs: %+v vs %+v", sa[i].Src, sa[i], sb[i])
		}
	}
	for id := grid.NodeID(0); int(id) < a.Topo.N(); id++ {
		if a.Node(id).State != b.Node(id).State {
			return fmt.Errorf("node %v state differs: %d vs %d",
				a.Topo.CoordOf(id), a.Node(id).State, b.Node(id).State)
		}
	}
	return nil
}

// RunToCompletion continues a replayed network until every packet is
// delivered or maxSteps total steps have elapsed, returning the makespan
// (or maxSteps if undelivered packets remain, with done=false).
func RunToCompletion(net *sim.Network, alg sim.Algorithm, maxSteps int) (makespan int, done bool, err error) {
	if _, err := net.RunPartial(alg, maxSteps-net.Step()); err != nil {
		return net.Step(), false, err
	}
	return net.Metrics.Makespan, net.Done(), nil
}

// HardPermutation runs the full pipeline for one algorithm: construction,
// replay verification, then completion measurement. It returns the
// constructed permutation, the Theorem 13 bound, and the measured delivery
// time (capped at maxSteps).
func HardPermutation(n, k int, algFactory func() sim.Algorithm, maxSteps int) (perm []workload.Pair, bound, makespan int, done bool, err error) {
	c, err := NewConstruction(n, k)
	if err != nil {
		return nil, 0, 0, false, err
	}
	res, err := c.Run(algFactory())
	if err != nil {
		return nil, 0, 0, false, err
	}
	replayNet, err := c.Replay(res, algFactory())
	if err != nil {
		return nil, 0, 0, false, err
	}
	makespan, done, err = RunToCompletion(replayNet, algFactory(), maxSteps)
	if err != nil {
		return nil, 0, 0, false, err
	}
	return res.Permutation, res.Steps, makespan, done, nil
}
