package adversary

import (
	"testing"

	"meshroute/internal/dex"
	"meshroute/internal/grid"
	"meshroute/internal/routers"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

func TestParamsSatisfyConstraints(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{60, 1}, {120, 1}, {216, 1}, {128, 2}, {384, 2}, {864, 4},
	} {
		par, err := NewParams(tc.n, tc.k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if par.CN > tc.n/(2*(tc.k+2)) {
			t.Errorf("cn too large: %d", par.CN)
		}
		if par.DN > 2*tc.n/5 {
			t.Errorf("dn too large: %d", par.DN)
		}
		if par.L < 1 || par.Steps() < 1 {
			t.Errorf("n=%d k=%d: degenerate params %+v", tc.n, tc.k, par)
		}
		// p = ⌊(k+1)(cn + c²n) + dn⌋ recomputed in floating point.
		c := float64(par.CN) / float64(tc.n)
		pf := float64(tc.k+1)*(c*float64(tc.n)+c*c*float64(tc.n)) + float64(par.DN)
		if par.P != int(pf) {
			t.Errorf("n=%d k=%d: p=%d, float says %v", tc.n, tc.k, par.P, pf)
		}
	}
}

func TestParamsRejectTinyMesh(t *testing.T) {
	if _, err := NewParams(8, 1); err == nil {
		t.Fatal("n=8 must be rejected")
	}
	if _, err := NewParams(60, 0); err == nil {
		t.Fatal("k=0 must be rejected")
	}
}

func TestMinN(t *testing.T) {
	if MinN(1) != 216 {
		t.Fatalf("MinN(1) = %d", MinN(1))
	}
	// Paper guarantee: params must exist at MinN.
	for k := 1; k <= 4; k++ {
		if _, err := NewParams(MinN(k), k); err != nil {
			t.Fatalf("k=%d at MinN: %v", k, err)
		}
	}
}

func TestRosterIsValidPartialPermutation(t *testing.T) {
	c, err := NewConstruction(120, 1)
	if err != nil {
		t.Fatal(err)
	}
	roster, err := c.buildRoster()
	if err != nil {
		t.Fatal(err)
	}
	if len(roster) != 2*c.Par.P*c.Par.L {
		t.Fatalf("roster size %d, want %d", len(roster), 2*c.Par.P*c.Par.L)
	}
	perm := &workload.Permutation{}
	for _, re := range roster {
		perm.Pairs = append(perm.Pairs, workload.Pair{
			Src: c.node(re.src.X, re.src.Y),
			Dst: c.node(re.dst.X, re.dst.Y),
		})
	}
	if err := perm.Validate(); err != nil {
		t.Fatal(err)
	}
	cn := c.Par.CN
	for _, re := range roster {
		// All sources in the 1-box.
		if re.src.X > cn-1 || re.src.Y > cn-1 || re.src.X < 0 || re.src.Y < 0 {
			t.Fatalf("source %v outside 1-box", re.src)
		}
		// Boundary conditions of Step 1.
		if re.src.X == cn-1 && (re.kind != KindN || re.i != 1) {
			t.Fatalf("N_1-column holds a %v_%d packet", re.kind, re.i)
		}
		if re.src.Y == cn-1 && re.src.X < cn-1 && (re.kind != KindE || re.i != 1) {
			t.Fatalf("E_1-row holds a %v_%d packet", re.kind, re.i)
		}
		// Destinations outside the i-box, in the right column/row.
		switch re.kind {
		case KindN:
			if re.dst.X != c.nCol(re.i) || re.dst.Y <= c.eRow(re.i) {
				t.Fatalf("bad N_%d destination %v", re.i, re.dst)
			}
			if re.dst.Y >= c.Par.N {
				t.Fatalf("N destination off mesh: %v", re.dst)
			}
		case KindE:
			if re.dst.Y != c.eRow(re.i) || re.dst.X <= c.nCol(re.i) {
				t.Fatalf("bad E_%d destination %v", re.i, re.dst)
			}
			if re.dst.X >= c.Par.N {
				t.Fatalf("E destination off mesh: %v", re.dst)
			}
		default:
			t.Fatal("roster contains non-construction packet")
		}
		// Classes in range, i-box/kind consistency via kindOf.
		kind, i := c.kindOf(c.node(re.dst.X, re.dst.Y))
		if kind != re.kind || i != re.i {
			t.Fatalf("kindOf(%v) = %v_%d, want %v_%d", re.dst, kind, i, re.kind, re.i)
		}
	}
}

func dimOrderFactory() sim.Algorithm { return dex.NewAdapter(routers.DimOrderFIFO{}) }
func zigzagFactory() sim.Algorithm   { return dex.NewAdapter(routers.ZigZag{}) }

// The construction must run to its full length with every lemma holding,
// and leave hard packets undelivered (Corollary 9).
func TestConstructionLemmasHoldDimOrder(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{60, 1}, {120, 1}, {128, 2}} {
		c, err := NewConstruction(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		c.Verify = true
		res, err := c.Run(dimOrderFactory())
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if res.UndeliveredHard == 0 {
			t.Fatalf("n=%d k=%d: Corollary 9 failed, nothing undelivered", tc.n, tc.k)
		}
		if res.Exchanges == 0 {
			t.Fatalf("n=%d k=%d: no exchanges happened — adversary idle", tc.n, tc.k)
		}
	}
}

func TestConstructionLemmasHoldZigZag(t *testing.T) {
	c, err := NewConstruction(120, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Verify = true
	res, err := c.Run(zigzagFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.UndeliveredHard == 0 {
		t.Fatal("Corollary 9 failed for zigzag")
	}
}

// Lemma 12: replaying the constructed permutation with no exchanges gives
// the exact same configuration. This validates destination-exchangeability
// end to end.
func TestReplayEquivalenceDimOrder(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{60, 1}, {120, 1}, {128, 2}} {
		c, err := NewConstruction(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(dimOrderFactory())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Replay(res, dimOrderFactory()); err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
	}
}

func TestReplayEquivalenceZigZag(t *testing.T) {
	c, err := NewConstruction(120, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(zigzagFactory())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Replay(res, zigzagFactory()); err != nil {
		t.Fatal(err)
	}
}

func TestReplayEquivalenceWithIdentityPadding(t *testing.T) {
	c, err := NewConstruction(60, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.PadIdentity = true
	res, err := c.Run(dimOrderFactory())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Replay(res, dimOrderFactory()); err != nil {
		t.Fatal(err)
	}
}

// Theorem 13/14 measured: the constructed permutation takes at least
// ⌊l⌋·d·n steps end to end.
func TestHardPermutationMeetsBound(t *testing.T) {
	for _, k := range []int{1, 2} {
		n := 120 * k
		cap := 20000
		perm, bound, makespan, done, err := HardPermutation(n, k, dimOrderFactory, cap)
		if err != nil {
			t.Fatal(err)
		}
		if len(perm) == 0 || bound < 1 {
			t.Fatalf("degenerate result: %d pairs, bound %d", len(perm), bound)
		}
		if done && makespan < bound {
			t.Fatalf("makespan %d beat the Theorem 13 bound %d", makespan, bound)
		}
		t.Logf("n=%d k=%d: bound=%d measured=%d done=%v permutation=%d packets", n, k, bound, makespan, done, len(perm))
	}
}

// The constructed permutation is hard specifically because of the
// exchanges: replaying the *initial* (pre-exchange) assignment gives the
// algorithm an easy instance by comparison. (Ablation A1.)
func TestExchangeAblation(t *testing.T) {
	n, k := 120, 1
	c, err := NewConstruction(n, k)
	if err != nil {
		t.Fatal(err)
	}
	roster, err := c.buildRoster()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(dimOrderFactory())
	if err != nil {
		t.Fatal(err)
	}
	// Count undelivered hard packets at step ⌊l⌋dn under the *initial*
	// assignment (no adversary at all).
	net := sim.MustNew(sim.Config{Topo: c.Topo, K: k, Queues: sim.CentralQueue, RequireMinimal: true, CheckInvariants: true})
	for _, re := range roster {
		net.MustPlace(net.NewPacket(c.node(re.src.X, re.src.Y), c.node(re.dst.X, re.dst.Y)))
	}
	for i := 0; i < res.Steps; i++ {
		if err := net.StepOnce(dimOrderFactory()); err != nil {
			t.Fatal(err)
		}
	}
	undelivInitial := net.TotalPackets() - net.DeliveredCount()
	t.Logf("undelivered at bound: constructed=%d initial=%d", res.UndeliveredHard, undelivInitial)
	if res.UndeliveredHard == 0 {
		t.Fatal("constructed permutation must have undelivered packets at the bound")
	}
}

func TestTorusEmbedding(t *testing.T) {
	// Section 5: apply the construction to a contiguous (n/2)×(n/2)
	// submesh of the torus.
	m := 60 // submesh side
	torus := grid.NewSquareTorus(2 * m)
	par, err := NewParams(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := &Construction{Par: par, Topo: torus, OffX: 7, OffY: 11, H: 1, Verify: true}
	res, err := c.Run(dimOrderFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.UndeliveredHard == 0 {
		t.Fatal("torus construction must leave packets undelivered")
	}
	if _, err := c.Replay(res, dimOrderFactory()); err != nil {
		t.Fatal(err)
	}
}

func TestConfigsEqualDetectsDifferences(t *testing.T) {
	topo := grid.NewSquareMesh(4)
	mk := func(dst grid.NodeID) *sim.Network {
		net := sim.MustNew(sim.Config{Topo: topo, K: 2, Queues: sim.CentralQueue})
		net.MustPlace(net.NewPacket(0, dst))
		return net
	}
	if err := ConfigsEqual(mk(5), mk(5)); err != nil {
		t.Fatalf("identical networks must compare equal: %v", err)
	}
	if err := ConfigsEqual(mk(5), mk(6)); err == nil {
		t.Fatal("different destinations must be detected")
	}
}
