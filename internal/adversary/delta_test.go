package adversary

import (
	"testing"

	"meshroute/internal/dex"
	"meshroute/internal/routers"
	"meshroute/internal/sim"
)

func strayFactory(delta int) func() sim.Algorithm {
	return func() sim.Algorithm { return dex.NewAdapter(routers.StrayDimOrder{Delta: delta}) }
}

func TestDeltaParams(t *testing.T) {
	// delta = 0 must reduce to the minimal-path params.
	a, err := NewDeltaParams(120, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewParams(120, 1)
	if a != b {
		t.Fatalf("delta=0 params differ: %+v vs %+v", a, b)
	}
	par, err := NewDeltaParams(480, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// p = (δ+1)·⌊(k+1)(cn+c²n)+dn⌋ with the shrunken c, d.
	pBase := (2*par.CN*(480+par.CN) + par.DN*480) / 480
	if par.P != 2*pBase {
		t.Fatalf("p = %d, want (δ+1)·pBase = %d", par.P, 2*pBase)
	}
	if par.L < 1 {
		t.Fatalf("degenerate: %+v", par)
	}
	if _, err := NewDeltaParams(60, 1, 1); err == nil {
		t.Fatal("n=60 too small for delta=1")
	}
	if _, err := NewDeltaParams(480, 1, -1); err == nil {
		t.Fatal("negative delta must fail")
	}
}

func TestDeltaConstructionAgainstStrayRouter(t *testing.T) {
	const n, k, delta = 480, 1, 1
	c, err := NewDeltaConstruction(n, k, delta)
	if err != nil {
		t.Fatal(err)
	}
	c.Verify = true
	res, err := c.Run(strayFactory(delta)())
	if err != nil {
		t.Fatal(err)
	}
	if res.UndeliveredHard == 0 {
		t.Fatal("delta construction: everything delivered at the bound")
	}
	t.Logf("n=%d k=%d delta=%d: bound=%d exchanges=%d undelivered=%d",
		n, k, delta, res.Steps, res.Exchanges, res.UndeliveredHard)
}

func TestDeltaReplayEquivalence(t *testing.T) {
	const n, k, delta = 480, 1, 1
	c, err := NewDeltaConstruction(n, k, delta)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(strayFactory(delta)())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Replay(res, strayFactory(delta)()); err != nil {
		t.Fatal(err)
	}
}

// The minimal construction still applies to the stray router when its
// budget is zero (it degenerates to plain dimension order).
func TestStrayRouterZeroBudgetIsMinimal(t *testing.T) {
	c, err := NewConstruction(120, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Verify = true
	res, err := c.Run(strayFactory(0)())
	if err != nil {
		t.Fatal(err)
	}
	if res.UndeliveredHard == 0 {
		t.Fatal("no undelivered packets")
	}
	if _, err := c.Replay(res, strayFactory(0)()); err != nil {
		t.Fatal(err)
	}
}
