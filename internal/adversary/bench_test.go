package adversary

import "testing"

// BenchmarkConstruction measures one full Theorem 14 construction run
// (placement, ⌊l⌋dn adversarial steps, permutation extraction).
func BenchmarkConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := NewConstruction(216, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Run(dimOrderFactory()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConstructionVerified includes the Lemma 1-8 checker.
func BenchmarkConstructionVerified(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := NewConstruction(216, 1)
		if err != nil {
			b.Fatal(err)
		}
		c.Verify = true
		if _, err := c.Run(dimOrderFactory()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures the Lemma 12 replay + equality check.
func BenchmarkReplay(b *testing.B) {
	c, err := NewConstruction(216, 1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := c.Run(dimOrderFactory())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Replay(res, dimOrderFactory()); err != nil {
			b.Fatal(err)
		}
	}
}
