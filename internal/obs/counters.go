package obs

import "sync/atomic"

// Counters is a concurrency-safe aggregate Sink: instead of retaining
// records like Memory, it folds every sample, span and event into a
// handful of atomic totals. One Counters value can be shared by many
// concurrent runs (it is the operational-metrics feed of the simulation
// service, which attaches it to every job alongside the job's own stream),
// and reading a total never blocks a producer.
type Counters struct {
	steps     atomic.Int64
	moves     atomic.Int64
	delivered atomic.Int64
	offered   atomic.Int64
	admitted  atomic.Int64
	refused   atomic.Int64
	spans     atomic.Int64
	events    atomic.Int64
	// Analyzed-run aggregates: per-run makespans and C+D totals are
	// summed separately so the fleet-wide efficiency ratio can be
	// reported as sum(makespan)/sum(C+D) — the C+D-weighted mean of the
	// per-run ratios, stable under mixed run sizes.
	runs        atomic.Int64
	runMakespan atomic.Int64
	runCD       atomic.Int64
}

// Step folds one step sample into the totals.
func (c *Counters) Step(s StepSample) {
	c.steps.Add(1)
	c.moves.Add(int64(s.Moves))
	c.delivered.Add(int64(s.Delivered))
	if s.Offered != 0 {
		c.offered.Add(int64(s.Offered))
	}
	if s.Admitted != 0 {
		c.admitted.Add(int64(s.Admitted))
	}
	if s.Refused != 0 {
		c.refused.Add(int64(s.Refused))
	}
}

// Span counts one phase span.
func (c *Counters) Span(Span) { c.spans.Add(1) }

// Event counts one fault/watchdog event.
func (c *Counters) Event(Event) { c.events.Add(1) }

// Run folds one analyzed run's terminal summary into the totals.
func (c *Counters) Run(r RunSummary) {
	c.runs.Add(1)
	c.runMakespan.Add(int64(r.Makespan))
	c.runCD.Add(int64(r.Congestion + r.Dilation))
}

// Steps returns the number of engine steps observed.
func (c *Counters) Steps() int64 { return c.steps.Load() }

// Moves returns the total accepted transmissions observed.
func (c *Counters) Moves() int64 { return c.moves.Load() }

// Delivered returns the total packet deliveries observed.
func (c *Counters) Delivered() int64 { return c.delivered.Load() }

// Offered returns the total injection offers observed (streamed and
// scheduled injection; 0 for static one-shot runs).
func (c *Counters) Offered() int64 { return c.offered.Load() }

// Admitted returns the total injection admissions observed.
func (c *Counters) Admitted() int64 { return c.admitted.Load() }

// Refused returns the total admission refusals observed (backlogged
// retries plus dropped offers).
func (c *Counters) Refused() int64 { return c.refused.Load() }

// Spans returns the number of phase spans observed.
func (c *Counters) Spans() int64 { return c.spans.Load() }

// Events returns the number of fault/watchdog events observed.
func (c *Counters) Events() int64 { return c.events.Load() }

// Runs returns the number of analyzed-run summaries observed.
func (c *Counters) Runs() int64 { return c.runs.Load() }

// CDRatio returns the aggregate efficiency ratio over all analyzed runs,
// sum(makespan)/sum(C+D), or 0 when no analyzed run has been observed.
func (c *Counters) CDRatio() float64 {
	cd := c.runCD.Load()
	if cd == 0 {
		return 0
	}
	return float64(c.runMakespan.Load()) / float64(cd)
}
