package obs_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"meshroute/internal/dex"
	"meshroute/internal/grid"
	"meshroute/internal/obs"
	"meshroute/internal/routers"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden metrics JSONL file")

// TestGoldenJSONL pins the metrics wire format: a fixed 8×8 reversal
// permutation under the dimension-order router is fully deterministic, so
// the JSONL stream it emits must match testdata/golden_8x8_dimorder.jsonl
// byte for byte. A diff here means the schema documented in
// docs/OBSERVABILITY.md changed and the doc (and golden file, via
// `go test ./internal/obs -run Golden -update`) must be revised with it.
func TestGoldenJSONL(t *testing.T) {
	const n, k = 8, 2
	topo := grid.NewSquareMesh(n)
	net := sim.MustNew(sim.Config{Topo: topo, K: k, Queues: sim.CentralQueue, RequireMinimal: true, CheckInvariants: true})
	if err := workload.Reversal(topo).Place(net); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	net.SetMetricsSink(sink)
	if _, err := net.Run(dex.NewAdapter(routers.DimOrderFIFO{}), 10000); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "golden_8x8_dimorder.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("metrics JSONL diverged from %s (%d vs %d bytes); if the schema change is intentional, regenerate with -update and revise docs/OBSERVABILITY.md",
			golden, buf.Len(), len(want))
	}

	// The golden stream must also round-trip through the reader.
	steps, spans, events, err := obs.ReadJSONL(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 || len(spans) != 0 || len(events) != 0 {
		t.Fatalf("golden stream decoded to %d steps, %d spans, %d events", len(steps), len(spans), len(events))
	}
	if final := steps[len(steps)-1]; final.DeliveredTotal != n*n || final.InFlight != 0 {
		t.Fatalf("golden run did not drain: %+v", final)
	}
}
