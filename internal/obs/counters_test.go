package obs

import (
	"bytes"
	"sync"
	"testing"
)

// TestCountersAggregates checks the fold arithmetic.
func TestCountersAggregates(t *testing.T) {
	var c Counters
	c.Step(StepSample{Step: 1, Moves: 3, Delivered: 1})
	c.Step(StepSample{Step: 2, Moves: 5, Delivered: 2})
	c.Span(Span{Name: "march"})
	c.Event(Event{Kind: "link-down"})
	c.Event(Event{Kind: "link-up"})
	if got := c.Steps(); got != 2 {
		t.Errorf("Steps() = %d, want 2", got)
	}
	if got := c.Moves(); got != 8 {
		t.Errorf("Moves() = %d, want 8", got)
	}
	if got := c.Delivered(); got != 3 {
		t.Errorf("Delivered() = %d, want 3", got)
	}
	if got := c.Spans(); got != 1 {
		t.Errorf("Spans() = %d, want 1", got)
	}
	if got := c.Events(); got != 2 {
		t.Errorf("Events() = %d, want 2", got)
	}
}

// TestCountersConcurrent hammers one Counters from many goroutines — the
// sharing pattern of the simulation service — and checks nothing is lost.
// Run with -race.
func TestCountersConcurrent(t *testing.T) {
	var c Counters
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Step(StepSample{Moves: 2, Delivered: 1})
				c.Event(Event{})
			}
		}()
	}
	wg.Wait()
	if got := c.Steps(); got != workers*per {
		t.Errorf("Steps() = %d, want %d", got, workers*per)
	}
	if got := c.Moves(); got != 2*workers*per {
		t.Errorf("Moves() = %d, want %d", got, 2*workers*per)
	}
	if got := c.Events(); got != workers*per {
		t.Errorf("Events() = %d, want %d", got, workers*per)
	}
}

// TestLineEncodersMatchJSONLSink checks StepLine/SpanLine/EventLine emit
// byte-identical lines to the JSONL sink, so streams assembled line by
// line stay readable by ReadJSONL.
func TestLineEncodersMatchJSONLSink(t *testing.T) {
	sample := StepSample{Step: 3, Moves: 4, Delivered: 1, DeliveredTotal: 2, InFlight: 7, MaxQueue: 2}
	span := Span{Name: "march", Class: "NE", Iteration: 1, Measured: 9, Formula: 12}
	event := Event{Step: 5, Kind: "link-down", Node: 11, Dir: "E", Detail: "permanent"}

	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	sink.Step(sample)
	sink.Span(span)
	sink.Event(event)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	var lines []byte
	for _, enc := range []func() ([]byte, error){
		func() ([]byte, error) { return StepLine(sample) },
		func() ([]byte, error) { return SpanLine(span) },
		func() ([]byte, error) { return EventLine(event) },
	} {
		line, err := enc()
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, line...)
	}
	if !bytes.Equal(lines, buf.Bytes()) {
		t.Fatalf("line encoders diverge from JSONL sink\n got: %q\nwant: %q", lines, buf.Bytes())
	}

	steps, spans, events, err := ReadJSONL(bytes.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || len(spans) != 1 || len(events) != 1 {
		t.Fatalf("ReadJSONL parsed %d/%d/%d records, want 1/1/1", len(steps), len(spans), len(events))
	}
	if steps[0] != sample || spans[0] != span || events[0] != event {
		t.Fatal("round-tripped records differ from originals")
	}
}
