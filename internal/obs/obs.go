// Package obs is the observability layer of the reproduction: a
// low-overhead metrics sink that the simulator (internal/sim) feeds one
// StepSample per engine step and that the Section 6 algorithm
// (internal/clt) feeds one Span per phase, so that every executable claim
// of the paper — makespan, queue occupancy (Lemma 28), per-phase durations
// (Lemmas 29-32) — can be exported as a time series and checked offline
// instead of only as end-of-run scalars.
//
// The package is a leaf: it imports only internal/grid, so every layer
// above (sim, clt, trace, the CLIs, the bench harness) can depend on it
// without cycles. Producers hold a Sink interface value and guard every
// emission with a nil check, so the disabled case costs one predictable
// branch and zero allocations on the hot step loop.
//
// Three sinks are provided: JSONL streams samples and spans as JSON lines
// (the wire format documented in docs/OBSERVABILITY.md), Memory accumulates
// them for in-process analysis and tests, and Multi fans out to several
// sinks at once.
package obs

import "meshroute/internal/grid"

// NumQueueBuckets is the number of exponential histogram buckets in a
// QueueHist. Bucket i counts queues whose end-of-step occupancy v
// satisfies 2^i <= v < 2^(i+1); the last bucket is unbounded above.
// Empty queues are not counted (on sparse instances almost every queue is
// empty, and the paper's quantities of interest are the occupied ones).
const NumQueueBuckets = 8

// QueueHist is a fixed-size exponential histogram of per-queue occupancy,
// indexed by BucketOf. It is a value type so building one per step does
// not allocate.
type QueueHist [NumQueueBuckets]int

// BucketOf returns the QueueHist bucket index for occupancy v >= 1:
// bucket 0 holds v = 1, bucket 1 holds v in {2,3}, bucket 2 holds 4..7,
// and so on; occupancies of 2^(NumQueueBuckets-1) = 128 and above land in
// the last bucket.
func BucketOf(v int) int {
	b := 0
	for v > 1 && b < NumQueueBuckets-1 {
		v >>= 1
		b++
	}
	return b
}

// Add counts one queue of occupancy v (ignored if v < 1).
func (h *QueueHist) Add(v int) {
	if v >= 1 {
		h[BucketOf(v)]++
	}
}

// Total returns the number of queues counted.
func (h *QueueHist) Total() int {
	t := 0
	for _, c := range h {
		t += c
	}
	return t
}

// StepSample is one engine step's worth of time-series metrics. The JSON
// keys are deliberately short (the dominant cost of a metrics file is the
// per-step record); docs/OBSERVABILITY.md is the schema reference.
type StepSample struct {
	// Step is the 1-based step number.
	Step int `json:"s"`
	// Moves is the number of accepted transmissions this step (including
	// deliveries).
	Moves int `json:"mv"`
	// LinkUse counts this step's transmissions per travel direction,
	// indexed by grid.Dir (East, North, West, South). Summed over steps
	// it is the per-direction link utilization.
	LinkUse [grid.NumDirs]int `json:"lu"`
	// Delivered is the number of packets delivered this step.
	Delivered int `json:"dv"`
	// DeliveredTotal is the cumulative delivery count — the delivery
	// curve.
	DeliveredTotal int `json:"dt"`
	// InFlight is the number of packets resident in the network at the
	// end of the step (placed or injected, not yet delivered; packets
	// still waiting in an injection backlog are not resident).
	InFlight int `json:"if"`
	// OccupiedNodes is the number of nodes holding at least one packet
	// at the end of the step.
	OccupiedNodes int `json:"on"`
	// MaxQueue is the largest single-queue occupancy at the end of the
	// step (excluding the unbounded origin buffer of the per-inlink
	// model) — the per-step version of the quantity bounded by k.
	MaxQueue int `json:"mq"`
	// QueueHist is the occupancy histogram over all non-empty queues at
	// the end of the step.
	QueueHist QueueHist `json:"qh"`
	// Offered is the number of injection requests presented to this
	// step's admission phase (streamed or scheduled injections; always 0
	// for one-shot workloads, so the field is omitted and the static wire
	// format is unchanged).
	Offered int `json:"of,omitempty"`
	// Admitted is the number of offers admitted into a queue (or
	// delivered in place) this step.
	Admitted int `json:"ad,omitempty"`
	// Refused is this step's admission refusals: backlogged retries plus
	// dropped offers.
	Refused int `json:"rf,omitempty"`
	// Backlog is the number of packets waiting in injection backlogs at
	// the end of the admission phase.
	Backlog int `json:"bl,omitempty"`
}

// Span is one named algorithm phase with its measured duration and, where
// the paper gives one, the closed-form schedule length it must respect.
// The Section 6 router emits one Span per March / Sort-and-Smooth /
// Balancing phase (Lemmas 29-31) and per base case (Lemma 32), so the
// per-phase bounds can be checked from a recorded run, not just in
// aggregate.
type Span struct {
	// Name identifies the phase kind (e.g. "march", "sortsmooth",
	// "balance", "basecase").
	Name string `json:"name"`
	// Class is the packet class being routed ("NE", "NW", "SE", "SW"),
	// when the producer routes per class.
	Class string `json:"class,omitempty"`
	// Iteration is the tile-refinement iteration j (tile side n/3^j).
	Iteration int `json:"iter"`
	// Tiling is the shifted-tiling index tau in 0..2 (Lemma 19).
	Tiling int `json:"tau"`
	// Axis is "v" for a Vertical Phase, "h" for a Horizontal Phase, or
	// empty when the distinction does not apply.
	Axis string `json:"axis,omitempty"`
	// Start is the phase-clock step at which the span begins (the sum of
	// the Formula durations of all earlier spans, matching the paper's
	// globally synchronized schedule).
	Start int `json:"start"`
	// Measured is the number of steps until the phase went quiescent.
	Measured int `json:"measured"`
	// Formula is the synchronized schedule length from the governing
	// lemma (0 when no closed form applies). Measured <= Formula is the
	// per-phase statement of Lemmas 29-32.
	Formula int `json:"formula"`
}

// Event is one fault or watchdog occurrence: a link going down or
// recovering, a node stalling or waking, a livelock-watchdog abort, or an
// unreachability detection (see docs/ROBUSTNESS.md for the semantics and
// the JSONL wire format). Events are rare compared to steps, so they carry
// a free-form detail string.
type Event struct {
	// Step is the engine step at which the event took effect.
	Step int `json:"s"`
	// Kind is the event kind: "link-down", "link-up", "node-stall",
	// "node-wake", "watchdog" or "unreachable".
	Kind string `json:"k"`
	// Node is the affected node identifier (-1 for run-level events such
	// as a watchdog abort).
	Node int `json:"n"`
	// Dir is the affected channel's direction name for link events.
	Dir string `json:"d,omitempty"`
	// Detail carries event-specific context (e.g. "permanent" for a
	// permanent link failure, or the diagnostics summary of a watchdog
	// abort).
	Detail string `json:"msg,omitempty"`
}

// RunSummary is the terminal record of an analyzed run: the workload's
// congestion C and dilation D (see internal/analysis and
// docs/ANALYSIS.md) and the achieved makespan, from which CDRatio =
// makespan/(C+D) is the theory-grounded efficiency of the run. The
// scenario runner emits exactly one RunSummary per run that has the
// analysis knob on; analysis-off runs emit none, so pre-analysis metrics
// streams are byte-identical.
type RunSummary struct {
	// Scenario is the spec name, when the run had one.
	Scenario string `json:"scenario,omitempty"`
	// Router is the routing algorithm's name.
	Router string `json:"router,omitempty"`
	// Makespan is the delivery step of the last packet.
	Makespan int `json:"makespan"`
	// Congestion and Dilation are the analyzed C and D.
	Congestion int `json:"congestion"`
	Dilation   int `json:"dilation"`
	// CDRatio is Makespan/(Congestion+Dilation) (0 for an empty workload).
	CDRatio float64 `json:"cd_ratio"`
}

// Sink receives metrics. Implementations must tolerate being called once
// per engine step on hot loops; producers guard calls with a nil check so
// a nil Sink costs nothing.
type Sink interface {
	// Step records one step's time-series sample.
	Step(s StepSample)
	// Span records one completed phase span.
	Span(sp Span)
}

// EventSink is the optional extension of Sink for fault and watchdog
// events. Producers check for it once with a type assertion; sinks that do
// not implement it simply never see events. Memory, JSONL and Multi all
// implement it.
type EventSink interface {
	// Event records one fault/watchdog event.
	Event(e Event)
}

// RunSink is the optional extension of Sink for terminal run summaries
// (emitted once per analyzed run by the scenario runner). Producers check
// for it with a type assertion, like EventSink; Memory, JSONL, Counters
// and Multi all implement it.
type RunSink interface {
	// Run records one analyzed run's terminal summary.
	Run(r RunSummary)
}

// Memory is a Sink that accumulates everything in memory — the natural
// sink for tests and for in-process aggregation.
type Memory struct {
	// Steps holds every recorded sample in step order.
	Steps []StepSample
	// Spans holds every recorded span in emission order.
	Spans []Span
	// Events holds every recorded fault/watchdog event in emission order.
	Events []Event
	// Runs holds every recorded run summary in emission order.
	Runs []RunSummary
}

// Step appends the sample.
func (m *Memory) Step(s StepSample) { m.Steps = append(m.Steps, s) }

// Span appends the span.
func (m *Memory) Span(sp Span) { m.Spans = append(m.Spans, sp) }

// Event appends the event.
func (m *Memory) Event(e Event) { m.Events = append(m.Events, e) }

// Run appends the run summary.
func (m *Memory) Run(r RunSummary) { m.Runs = append(m.Runs, r) }

// DeliveryCurve returns the cumulative deliveries per recorded step.
func (m *Memory) DeliveryCurve() []int {
	out := make([]int, len(m.Steps))
	for i, s := range m.Steps {
		out[i] = s.DeliveredTotal
	}
	return out
}

// PeakQueue returns the largest per-step MaxQueue over the run.
func (m *Memory) PeakQueue() int {
	peak := 0
	for _, s := range m.Steps {
		if s.MaxQueue > peak {
			peak = s.MaxQueue
		}
	}
	return peak
}

// PeakInFlight returns the largest per-step InFlight over the run.
func (m *Memory) PeakInFlight() int {
	peak := 0
	for _, s := range m.Steps {
		if s.InFlight > peak {
			peak = s.InFlight
		}
	}
	return peak
}

// TotalLinkUse sums the per-direction link utilization over the run.
func (m *Memory) TotalLinkUse() [grid.NumDirs]int {
	var out [grid.NumDirs]int
	for _, s := range m.Steps {
		for d, c := range s.LinkUse {
			out[d] += c
		}
	}
	return out
}

// Multi fans every sample and span out to each member sink in order.
type Multi []Sink

// Step forwards the sample to every member.
func (m Multi) Step(s StepSample) {
	for _, sink := range m {
		sink.Step(s)
	}
}

// Span forwards the span to every member.
func (m Multi) Span(sp Span) {
	for _, sink := range m {
		sink.Span(sp)
	}
}

// Event forwards the event to every member that implements EventSink.
func (m Multi) Event(e Event) {
	for _, sink := range m {
		if es, ok := sink.(EventSink); ok {
			es.Event(e)
		}
	}
}

// Run forwards the run summary to every member that implements RunSink.
func (m Multi) Run(r RunSummary) {
	for _, sink := range m {
		if rs, ok := sink.(RunSink); ok {
			rs.Run(r)
		}
	}
}
