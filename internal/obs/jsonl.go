package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Line type discriminators of the metrics JSONL stream: every line is a
// JSON object whose "t" field is one of these (see docs/OBSERVABILITY.md).
const (
	// LineStep marks a StepSample line.
	LineStep = "step"
	// LineSpan marks a Span line.
	LineSpan = "span"
	// LineFault marks an Event line (fault/watchdog events, see
	// docs/ROBUSTNESS.md).
	LineFault = "fault"
	// LineRun marks a RunSummary line (the terminal C/D efficiency record
	// of an analyzed run, see docs/ANALYSIS.md).
	LineRun = "run"
)

// stepLine and spanLine wrap the payload types with the discriminator;
// struct embedding flattens the payload fields into the same JSON object.
type stepLine struct {
	T string `json:"t"`
	StepSample
}

type spanLine struct {
	T string `json:"t"`
	Span
}

type faultLine struct {
	T string `json:"t"`
	Event
}

type runLine struct {
	T string `json:"t"`
	RunSummary
}

// StepLine renders one step sample as a metrics-JSONL line (with trailing
// newline) — the same wire format the JSONL sink writes, for producers
// that buffer or stream individual lines themselves.
func StepLine(s StepSample) ([]byte, error) {
	data, err := json.Marshal(stepLine{T: LineStep, StepSample: s})
	return append(data, '\n'), err
}

// SpanLine renders one span as a metrics-JSONL line (with trailing
// newline).
func SpanLine(sp Span) ([]byte, error) {
	data, err := json.Marshal(spanLine{T: LineSpan, Span: sp})
	return append(data, '\n'), err
}

// EventLine renders one fault/watchdog event as a metrics-JSONL line
// (with trailing newline).
func EventLine(e Event) ([]byte, error) {
	data, err := json.Marshal(faultLine{T: LineFault, Event: e})
	return append(data, '\n'), err
}

// RunLine renders one run summary as a metrics-JSONL line (with trailing
// newline).
func RunLine(r RunSummary) ([]byte, error) {
	data, err := json.Marshal(runLine{T: LineRun, RunSummary: r})
	return append(data, '\n'), err
}

// JSONL is a Sink that streams samples and spans to a writer as JSON
// lines. Writes are buffered; call Close to flush and surface the first
// write error. After an error the sink drops further records, so a run
// never fails mid-flight because its metrics file did.
type JSONL struct {
	w      *bufio.Writer
	enc    *json.Encoder
	err    error
	steps  int
	spans  int
	events int
	runs   int
}

// NewJSONL creates a JSONL sink writing to w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{w: bw, enc: json.NewEncoder(bw)}
}

// Step writes one step line.
func (j *JSONL) Step(s StepSample) {
	if j.err != nil {
		return
	}
	if err := j.enc.Encode(stepLine{T: LineStep, StepSample: s}); err != nil {
		j.err = err
		return
	}
	j.steps++
}

// Span writes one span line.
func (j *JSONL) Span(sp Span) {
	if j.err != nil {
		return
	}
	if err := j.enc.Encode(spanLine{T: LineSpan, Span: sp}); err != nil {
		j.err = err
		return
	}
	j.spans++
}

// Event writes one fault line.
func (j *JSONL) Event(e Event) {
	if j.err != nil {
		return
	}
	if err := j.enc.Encode(faultLine{T: LineFault, Event: e}); err != nil {
		j.err = err
		return
	}
	j.events++
}

// Run writes one run-summary line.
func (j *JSONL) Run(r RunSummary) {
	if j.err != nil {
		return
	}
	if err := j.enc.Encode(runLine{T: LineRun, RunSummary: r}); err != nil {
		j.err = err
		return
	}
	j.runs++
}

// StepCount returns the number of step lines written.
func (j *JSONL) StepCount() int { return j.steps }

// SpanCount returns the number of span lines written.
func (j *JSONL) SpanCount() int { return j.spans }

// EventCount returns the number of fault lines written.
func (j *JSONL) EventCount() int { return j.events }

// RunCount returns the number of run-summary lines written.
func (j *JSONL) RunCount() int { return j.runs }

// Close flushes the buffer and returns the first write error, if any.
func (j *JSONL) Close() error {
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// Records holds every record of a parsed metrics JSONL stream, grouped by
// line type.
type Records struct {
	Steps  []StepSample
	Spans  []Span
	Events []Event
	Runs   []RunSummary
}

// ReadJSONLRecords parses a metrics JSONL stream back into its records
// (the inverse of the JSONL sink, for tests and offline analysis). Lines
// with an unknown "t" are an error: the schema is versioned by its line
// types.
func ReadJSONLRecords(r io.Reader) (Records, error) {
	dec := json.NewDecoder(r)
	var rec Records
	for dec.More() {
		var raw struct {
			T string `json:"t"`
		}
		// Decode twice: once for the discriminator, once for the payload.
		var payload json.RawMessage
		if err := dec.Decode(&payload); err != nil {
			return Records{}, fmt.Errorf("obs: %w", err)
		}
		if err := json.Unmarshal(payload, &raw); err != nil {
			return Records{}, fmt.Errorf("obs: %w", err)
		}
		switch raw.T {
		case LineStep:
			var s StepSample
			if err := json.Unmarshal(payload, &s); err != nil {
				return Records{}, fmt.Errorf("obs: step line: %w", err)
			}
			rec.Steps = append(rec.Steps, s)
		case LineSpan:
			var sp Span
			if err := json.Unmarshal(payload, &sp); err != nil {
				return Records{}, fmt.Errorf("obs: span line: %w", err)
			}
			rec.Spans = append(rec.Spans, sp)
		case LineFault:
			var e Event
			if err := json.Unmarshal(payload, &e); err != nil {
				return Records{}, fmt.Errorf("obs: fault line: %w", err)
			}
			rec.Events = append(rec.Events, e)
		case LineRun:
			var ru RunSummary
			if err := json.Unmarshal(payload, &ru); err != nil {
				return Records{}, fmt.Errorf("obs: run line: %w", err)
			}
			rec.Runs = append(rec.Runs, ru)
		default:
			return Records{}, fmt.Errorf("obs: unknown line type %q", raw.T)
		}
	}
	return rec, nil
}

// ReadJSONL parses a metrics JSONL stream back into samples, spans and
// fault events — the legacy three-slice view of ReadJSONLRecords, kept
// for callers that predate run-summary lines (which it accepts and
// discards).
func ReadJSONL(r io.Reader) ([]StepSample, []Span, []Event, error) {
	rec, err := ReadJSONLRecords(r)
	if err != nil {
		return nil, nil, nil, err
	}
	return rec.Steps, rec.Spans, rec.Events, nil
}
