package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := map[int]int{
		1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 15: 3, 16: 4,
		31: 4, 32: 5, 64: 6, 127: 6, 128: 7, 834: 7, 1 << 20: 7,
	}
	for v, want := range cases {
		if got := BucketOf(v); got != want {
			t.Errorf("BucketOf(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestQueueHistAdd(t *testing.T) {
	var h QueueHist
	h.Add(0) // ignored
	h.Add(1)
	h.Add(3)
	h.Add(3)
	h.Add(200)
	if h[0] != 1 || h[1] != 2 || h[NumQueueBuckets-1] != 1 {
		t.Fatalf("unexpected histogram %v", h)
	}
	if h.Total() != 4 {
		t.Fatalf("Total = %d, want 4", h.Total())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	s1 := StepSample{Step: 1, Moves: 3, Delivered: 1, DeliveredTotal: 1, InFlight: 9, MaxQueue: 2}
	s1.LinkUse[0] = 2
	s1.LinkUse[1] = 1
	s1.QueueHist.Add(2)
	j.Step(s1)
	sp := Span{Name: "march", Class: "NE", Iteration: 1, Tiling: 2, Axis: "v", Start: 10, Measured: 5, Formula: 8}
	j.Span(sp)
	j.Step(StepSample{Step: 2, DeliveredTotal: 1, InFlight: 8})
	ev := Event{Step: 2, Kind: "link-down", Node: 17, Dir: "East", Detail: "permanent"}
	j.Event(ev)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.StepCount() != 2 || j.SpanCount() != 1 || j.EventCount() != 1 {
		t.Fatalf("counts = %d steps, %d spans, %d events", j.StepCount(), j.SpanCount(), j.EventCount())
	}
	if got := strings.Count(buf.String(), "\n"); got != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", got, buf.String())
	}

	steps, spans, events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 || len(spans) != 1 || len(events) != 1 {
		t.Fatalf("read %d steps, %d spans, %d events", len(steps), len(spans), len(events))
	}
	if steps[0] != s1 {
		t.Errorf("step round trip: got %+v, want %+v", steps[0], s1)
	}
	if spans[0] != sp {
		t.Errorf("span round trip: got %+v, want %+v", spans[0], sp)
	}
	if events[0] != ev {
		t.Errorf("event round trip: got %+v, want %+v", events[0], ev)
	}
}

func TestReadJSONLUnknownType(t *testing.T) {
	if _, _, _, err := ReadJSONL(strings.NewReader(`{"t":"bogus"}`)); err == nil {
		t.Fatal("want error for unknown line type")
	}
}

func TestMemoryAggregates(t *testing.T) {
	m := &Memory{}
	for i := 1; i <= 3; i++ {
		s := StepSample{Step: i, DeliveredTotal: i * 2, InFlight: 10 - i, MaxQueue: i}
		s.LinkUse[2] = i
		m.Step(s)
	}
	m.Span(Span{Name: "basecase"})
	if got := m.DeliveryCurve(); len(got) != 3 || got[2] != 6 {
		t.Fatalf("DeliveryCurve = %v", got)
	}
	if m.PeakQueue() != 3 {
		t.Fatalf("PeakQueue = %d", m.PeakQueue())
	}
	if m.PeakInFlight() != 9 {
		t.Fatalf("PeakInFlight = %d", m.PeakInFlight())
	}
	if lu := m.TotalLinkUse(); lu[2] != 6 {
		t.Fatalf("TotalLinkUse = %v", lu)
	}
	if len(m.Spans) != 1 {
		t.Fatalf("Spans = %v", m.Spans)
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := &Memory{}, &Memory{}
	mu := Multi{a, b}
	mu.Step(StepSample{Step: 1})
	mu.Span(Span{Name: "march"})
	mu.Event(Event{Step: 1, Kind: "node-stall", Node: 4})
	if len(a.Steps) != 1 || len(b.Steps) != 1 || len(a.Spans) != 1 || len(b.Spans) != 1 {
		t.Fatal("Multi did not fan out to all sinks")
	}
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Fatal("Multi did not fan events out to all sinks")
	}
}
