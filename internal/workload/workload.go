// Package workload generates routing problem instances: the partial
// permutations used throughout the paper (Section 1: "one of the simplest
// benchmarks for a router's performance is how it performs in the worst
// case on static one-to-one (or partial permutation) routing problems"),
// structured hard permutations, h-h instances (Section 5), and random
// traffic for average-case framing (Section 1.1).
//
// All generators are deterministic given their arguments.
package workload

import (
	"fmt"
	"math/rand"

	"meshroute/internal/grid"
	"meshroute/internal/sim"
)

// Permutation is a partial permutation routing instance: Pairs[i] routes
// one packet from Src to Dst. Each node appears at most once as a source
// and at most once as a destination.
type Permutation struct {
	// Pairs lists the source/destination pairs.
	Pairs []Pair
}

// Pair is one packet's endpoints. The JSON names are part of the scenario
// spec format (internal/scenario).
type Pair struct {
	// Src is the source node.
	Src grid.NodeID `json:"src"`
	// Dst is the destination node.
	Dst grid.NodeID `json:"dst"`
}

// Len returns the number of packets.
func (p *Permutation) Len() int { return len(p.Pairs) }

// Validate checks the one-to-one property.
func (p *Permutation) Validate() error {
	srcs := map[grid.NodeID]bool{}
	dsts := map[grid.NodeID]bool{}
	for _, pr := range p.Pairs {
		if srcs[pr.Src] {
			return fmt.Errorf("workload: duplicate source %d", pr.Src)
		}
		if dsts[pr.Dst] {
			return fmt.Errorf("workload: duplicate destination %d", pr.Dst)
		}
		srcs[pr.Src] = true
		dsts[pr.Dst] = true
	}
	return nil
}

// Place installs the instance as a step-0 Replay source: one-shot static
// placement is the degenerate case of streaming, and the packets are placed
// through exactly the same admission as any streamed injection (identical
// order, identical errors to the historical direct-place loop).
func (p *Permutation) Place(net *sim.Network) error {
	return net.AttachSource(Replay(p), sim.AdmitRetry)
}

// Random returns a uniformly random full permutation of the topology's
// nodes (fixed points allowed, as in the paper's model — those packets are
// delivered immediately).
func Random(topo grid.Topology, seed int64) *Permutation {
	rng := rand.New(rand.NewSource(seed))
	n := topo.N()
	dst := rng.Perm(n)
	p := &Permutation{Pairs: make([]Pair, 0, n)}
	for s := 0; s < n; s++ {
		p.Pairs = append(p.Pairs, Pair{Src: grid.NodeID(s), Dst: grid.NodeID(dst[s])})
	}
	return p
}

// RandomDestinations returns a traffic instance where every node sends one
// packet to an independently uniform destination (not a permutation) — the
// average-case setting of Leighton cited in Section 1.1.
func RandomDestinations(topo grid.Topology, seed int64) *Permutation {
	rng := rand.New(rand.NewSource(seed))
	n := topo.N()
	p := &Permutation{Pairs: make([]Pair, 0, n)}
	for s := 0; s < n; s++ {
		p.Pairs = append(p.Pairs, Pair{Src: grid.NodeID(s), Dst: grid.NodeID(rng.Intn(n))})
	}
	return p
}

// Transpose returns the matrix-transpose permutation (x,y) -> (y,x).
func Transpose(topo grid.Topology) *Permutation {
	if topo.Width() != topo.Height() {
		panic("workload: transpose needs a square topology")
	}
	p := &Permutation{}
	for id := grid.NodeID(0); int(id) < topo.N(); id++ {
		c := topo.CoordOf(id)
		p.Pairs = append(p.Pairs, Pair{Src: id, Dst: topo.ID(grid.XY(c.Y, c.X))})
	}
	return p
}

// Reversal returns the full-reversal permutation
// (x,y) -> (W-1-x, H-1-y), a classic congestion-heavy instance.
func Reversal(topo grid.Topology) *Permutation {
	p := &Permutation{}
	for id := grid.NodeID(0); int(id) < topo.N(); id++ {
		c := topo.CoordOf(id)
		p.Pairs = append(p.Pairs, Pair{
			Src: id,
			Dst: topo.ID(grid.XY(topo.Width()-1-c.X, topo.Height()-1-c.Y)),
		})
	}
	return p
}

// Rotation returns the torus-shift permutation
// (x,y) -> ((x+dx) mod W, (y+dy) mod H).
func Rotation(topo grid.Topology, dx, dy int) *Permutation {
	p := &Permutation{}
	w, h := topo.Width(), topo.Height()
	for id := grid.NodeID(0); int(id) < topo.N(); id++ {
		c := topo.CoordOf(id)
		p.Pairs = append(p.Pairs, Pair{
			Src: id,
			Dst: topo.ID(grid.XY(((c.X+dx)%w+w)%w, ((c.Y+dy)%h+h)%h)),
		})
	}
	return p
}

// BitReversal returns the bit-reversal permutation on an n×n mesh with n a
// power of two: each coordinate's bits are reversed.
func BitReversal(topo grid.Topology) *Permutation {
	n := topo.Width()
	if n != topo.Height() || n&(n-1) != 0 {
		panic("workload: bit reversal needs a square power-of-two mesh")
	}
	bits := 0
	for 1<<bits < n {
		bits++
	}
	rev := func(x int) int {
		r := 0
		for b := 0; b < bits; b++ {
			if x&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		return r
	}
	p := &Permutation{}
	for id := grid.NodeID(0); int(id) < topo.N(); id++ {
		c := topo.CoordOf(id)
		p.Pairs = append(p.Pairs, Pair{Src: id, Dst: topo.ID(grid.XY(rev(c.X), rev(c.Y)))})
	}
	return p
}

// HH is an h-h routing instance (Section 5): each node sends at most h
// packets and receives at most h packets.
type HH struct {
	// H is the per-node send/receive bound.
	H int
	// Pairs lists the packets.
	Pairs []Pair
}

// RandomHH returns a random h-h instance built from h independent random
// permutations.
func RandomHH(topo grid.Topology, h int, seed int64) *HH {
	out := &HH{H: h}
	for i := 0; i < h; i++ {
		p := Random(topo, seed+int64(i)*7919)
		out.Pairs = append(out.Pairs, p.Pairs...)
	}
	return out
}

// Validate checks the h-h property.
func (hh *HH) Validate() error {
	snd := map[grid.NodeID]int{}
	rcv := map[grid.NodeID]int{}
	for _, pr := range hh.Pairs {
		snd[pr.Src]++
		rcv[pr.Dst]++
		if snd[pr.Src] > hh.H {
			return fmt.Errorf("workload: node %d sends more than %d", pr.Src, hh.H)
		}
		if rcv[pr.Dst] > hh.H {
			return fmt.Errorf("workload: node %d receives more than %d", pr.Dst, hh.H)
		}
	}
	return nil
}

// Source returns the h-h instance as a step-1 streaming source (the
// dynamic setting of Section 5, needed when h exceeds the queue capacity k:
// extra packets wait in the source backlog and enter in FIFO order,
// independent of destination). Attach it with sim.AdmitRetry to reproduce
// the historical Inject behavior.
func (hh *HH) Source() Source { return ReplayAt(hh.Pairs, 1) }

// Place places the h-h instance directly at step 0 (requires k >= h in the
// central-queue model), via the same Replay source path as Permutation.
func (hh *HH) Place(net *sim.Network) error {
	return net.AttachSource(ReplayAt(hh.Pairs, 0), sim.AdmitRetry)
}
