package workload

import (
	"testing"
	"testing/quick"

	"meshroute/internal/grid"
	"meshroute/internal/sim"
)

func TestRandomIsPermutation(t *testing.T) {
	topo := grid.NewSquareMesh(8)
	p := Random(topo, 1)
	if p.Len() != 64 {
		t.Fatalf("len = %d", p.Len())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	topo := grid.NewSquareMesh(8)
	a, b := Random(topo, 7), Random(topo, 7)
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatal("same seed must give same permutation")
		}
	}
	c := Random(topo, 8)
	same := true
	for i := range a.Pairs {
		if a.Pairs[i] != c.Pairs[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestStructuredPermutationsValid(t *testing.T) {
	topo := grid.NewSquareMesh(8)
	for name, p := range map[string]*Permutation{
		"transpose":   Transpose(topo),
		"reversal":    Reversal(topo),
		"rotation":    Rotation(topo, 3, 5),
		"bitreversal": BitReversal(topo),
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Len() != 64 {
			t.Errorf("%s: len %d", name, p.Len())
		}
	}
}

func TestTransposeMapsCorrectly(t *testing.T) {
	topo := grid.NewSquareMesh(4)
	p := Transpose(topo)
	for _, pr := range p.Pairs {
		s, d := topo.CoordOf(pr.Src), topo.CoordOf(pr.Dst)
		if s.X != d.Y || s.Y != d.X {
			t.Fatalf("transpose wrong: %v -> %v", s, d)
		}
	}
}

func TestBitReversalSelfInverse(t *testing.T) {
	topo := grid.NewSquareMesh(8)
	p := BitReversal(topo)
	m := map[grid.NodeID]grid.NodeID{}
	for _, pr := range p.Pairs {
		m[pr.Src] = pr.Dst
	}
	for s, d := range m {
		if m[d] != s {
			t.Fatalf("bit reversal must be an involution: %d -> %d -> %d", s, d, m[d])
		}
	}
}

func TestRotationQuickIsPermutation(t *testing.T) {
	topo := grid.NewSquareMesh(6)
	f := func(dx, dy int8) bool {
		p := Rotation(topo, int(dx), int(dy))
		return p.Validate() == nil && p.Len() == 36
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHHValidate(t *testing.T) {
	topo := grid.NewSquareMesh(6)
	hh := RandomHH(topo, 3, 42)
	if err := hh.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(hh.Pairs) != 3*36 {
		t.Fatalf("len = %d", len(hh.Pairs))
	}
	bad := &HH{H: 1, Pairs: []Pair{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("over-sending instance must fail validation")
	}
}

func TestPlaceIntoNetwork(t *testing.T) {
	topo := grid.NewSquareMesh(4)
	net := sim.MustNew(sim.Config{Topo: topo, K: 1, Queues: sim.CentralQueue})
	p := Random(topo, 3)
	if err := p.Place(net); err != nil {
		t.Fatal(err)
	}
	if net.TotalPackets() != 16 {
		t.Fatalf("placed %d", net.TotalPackets())
	}
}

// nopAlg never schedules a move: enough to drive the injection phase.
type nopAlg struct{}

func (nopAlg) Name() string                     { return "nop" }
func (nopAlg) InitNode(*sim.Network, *sim.Node) {}
func (nopAlg) Schedule(*sim.Network, *sim.Node) [grid.NumDirs]int {
	return [grid.NumDirs]int{-1, -1, -1, -1}
}
func (nopAlg) Accept(*sim.Network, *sim.Node, []sim.Offer, []bool) {}
func (nopAlg) Update(*sim.Network, *sim.Node)                      {}

func TestHHSourceQueues(t *testing.T) {
	topo := grid.NewSquareMesh(4)
	net := sim.MustNew(sim.Config{Topo: topo, K: 1, Queues: sim.CentralQueue})
	hh := RandomHH(topo, 2, 5)
	if err := net.AttachSource(hh.Source(), sim.AdmitRetry); err != nil {
		t.Fatal(err)
	}
	if net.TotalPackets() != 0 {
		t.Fatalf("materialized %d packets before step 1", net.TotalPackets())
	}
	if net.Done() {
		t.Fatal("network with a live source must not be Done")
	}
	if err := net.StepOnce(nopAlg{}); err != nil {
		t.Fatal(err)
	}
	if net.TotalPackets() != 32 {
		t.Fatalf("queued %d", net.TotalPackets())
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	rect := grid.NewMesh(4, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("transpose on rectangle must panic")
		}
	}()
	Transpose(rect)
}

func TestBitReversalPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bit reversal on 6x6 must panic")
		}
	}()
	BitReversal(grid.NewSquareMesh(6))
}
