package workload

import (
	"testing"

	"meshroute/internal/grid"
	"meshroute/internal/sim"
)

func TestHHPlaceRequiresCapacity(t *testing.T) {
	topo := grid.NewSquareMesh(4)
	hh := RandomHH(topo, 2, 1)
	// k=1 central queue cannot hold 2 origin packets per node.
	small := sim.MustNew(sim.Config{Topo: topo, K: 1, Queues: sim.CentralQueue})
	if err := hh.Place(small); err == nil {
		t.Fatal("placing 2-2 traffic into k=1 must fail")
	}
	big := sim.MustNew(sim.Config{Topo: topo, K: 2, Queues: sim.CentralQueue})
	if err := hh.Place(big); err != nil {
		t.Fatal(err)
	}
	if big.TotalPackets() != 32 {
		t.Fatalf("placed %d", big.TotalPackets())
	}
}

func TestPlaceErrorPropagates(t *testing.T) {
	topo := grid.NewSquareMesh(4)
	net := sim.MustNew(sim.Config{Topo: topo, K: 1, Queues: sim.CentralQueue})
	p := &Permutation{Pairs: []Pair{{Src: 0, Dst: 5}, {Src: 0, Dst: 6}}}
	if err := p.Place(net); err == nil {
		t.Fatal("double placement on k=1 must fail")
	}
}

func TestRandomDestinationsShape(t *testing.T) {
	topo := grid.NewSquareMesh(8)
	p := RandomDestinations(topo, 3)
	if p.Len() != 64 {
		t.Fatalf("len %d", p.Len())
	}
	srcs := map[grid.NodeID]bool{}
	for _, pr := range p.Pairs {
		if srcs[pr.Src] {
			t.Fatal("duplicate source")
		}
		srcs[pr.Src] = true
	}
	// Destinations are independent, so collisions are expected at n²=64:
	// the instance is NOT a permutation with overwhelming probability.
	if err := p.Validate(); err == nil {
		t.Log("random destinations happened to be a permutation (astronomically unlikely)")
	}
}

func TestReversalInvolution(t *testing.T) {
	topo := grid.NewSquareMesh(5)
	p := Reversal(topo)
	m := map[grid.NodeID]grid.NodeID{}
	for _, pr := range p.Pairs {
		m[pr.Src] = pr.Dst
	}
	for s, d := range m {
		if m[d] != s {
			t.Fatal("reversal must be an involution")
		}
	}
	// Odd n has one fixed point (the center).
	fixed := 0
	for s, d := range m {
		if s == d {
			fixed++
		}
	}
	if fixed != 1 {
		t.Fatalf("5x5 reversal has %d fixed points, want 1", fixed)
	}
}
