package workload

import (
	"math/rand"

	"meshroute/internal/grid"
	"meshroute/internal/sim"
)

// Injection and Source re-export the engine's streaming-workload contract
// (see sim.Source for the exact calling discipline: Next is called once per
// step in increasing order starting at 0, and seeded sources must consume
// their RNG only inside Next, so a seed pins the whole arrival stream).
type (
	Injection = sim.Injection
	Source    = sim.Source
)

// ReplaySource emits a fixed pair list at one single step — the degenerate
// streaming workload. At step 0 it reproduces static placement; at a later
// step it reproduces the one-shot dynamic injection of QueueInjection.
type ReplaySource struct {
	pairs []Pair
	step  int
}

// ReplayAt wraps a pair list as a Source that injects every pair at the
// given step (clamped at 0).
func ReplayAt(pairs []Pair, step int) *ReplaySource {
	if step < 0 {
		step = 0
	}
	return &ReplaySource{pairs: pairs, step: step}
}

// Replay wraps a static permutation instance as a step-0 Source, making
// one-shot placement the degenerate case of streaming: attaching it is
// behaviorally identical to the pre-streaming Place loop.
func Replay(p *Permutation) *ReplaySource { return ReplayAt(p.Pairs, 0) }

// Next implements Source.
func (r *ReplaySource) Next(step int, buf []Injection) []Injection {
	if step != r.step {
		return buf
	}
	for _, pr := range r.pairs {
		buf = append(buf, Injection{Src: pr.Src, Dst: pr.Dst})
	}
	return buf
}

// Exhausted implements Source.
func (r *ReplaySource) Exhausted(step int) bool { return step >= r.step }

// BernoulliSource is the memoryless arrival process: at every step in
// [1, horizon], each of the n nodes independently injects a packet with
// probability rate, toward a uniformly random destination. The per-step,
// per-node RNG consumption order (one Float64 per node, one Intn on a hit,
// nodes in ascending id order) is part of the format: it reproduces the
// scenario layer's historical "bernoulli" workload stream bit-exactly.
type BernoulliSource struct {
	n       int
	rate    float64
	horizon int
	rng     *rand.Rand
}

// NewBernoulli returns a Bernoulli(rate) source over n nodes for steps
// 1..horizon, seeded deterministically.
func NewBernoulli(n int, rate float64, horizon int, seed int64) *BernoulliSource {
	return &BernoulliSource{n: n, rate: rate, horizon: horizon, rng: rand.New(rand.NewSource(seed))}
}

// Next implements Source.
func (s *BernoulliSource) Next(step int, buf []Injection) []Injection {
	if step < 1 || step > s.horizon {
		return buf
	}
	for id := 0; id < s.n; id++ {
		if s.rng.Float64() < s.rate {
			dst := grid.NodeID(s.rng.Intn(s.n))
			buf = append(buf, Injection{Src: grid.NodeID(id), Dst: dst})
		}
	}
	return buf
}

// Exhausted implements Source.
func (s *BernoulliSource) Exhausted(step int) bool { return step >= s.horizon }

// BurstSource is the deterministic bursty stream the scenario layer's
// "burst" workload has always used: for steps 1..horizon/2, node id injects
// when (id+step)%7 == 0, toward (id*13 + step*29) mod n. Kept arithmetic-
// identical so existing burst golden digests are unchanged.
type BurstSource struct {
	n       int
	horizon int
}

// NewBurst returns the deterministic burst source over n nodes with the
// given horizon (injections stop after horizon/2).
func NewBurst(n, horizon int) *BurstSource { return &BurstSource{n: n, horizon: horizon} }

// Next implements Source.
func (s *BurstSource) Next(step int, buf []Injection) []Injection {
	if step < 1 || step > s.horizon/2 {
		return buf
	}
	for id := 0; id < s.n; id++ {
		if (id+step)%7 == 0 {
			dst := grid.NodeID((id*13 + step*29) % s.n)
			buf = append(buf, Injection{Src: grid.NodeID(id), Dst: dst})
		}
	}
	return buf
}

// Exhausted implements Source.
func (s *BurstSource) Exhausted(step int) bool { return step >= s.horizon/2 }

// OnOffSource is a bursty on/off modulated Bernoulli process: the stream
// alternates "on" windows of burst steps (each node injects with
// probability rate, uniform destination) and "off" windows of gap steps
// (silence), for steps 1..horizon. The RNG is consumed only during on
// steps, so the seed pins the stream under the once-per-step contract.
type OnOffSource struct {
	n       int
	rate    float64
	burst   int
	gap     int
	horizon int
	rng     *rand.Rand
}

// NewOnOff returns an on/off source over n nodes: burst on-steps then gap
// off-steps, repeating through horizon.
func NewOnOff(n int, rate float64, burst, gap, horizon int, seed int64) *OnOffSource {
	return &OnOffSource{n: n, rate: rate, burst: burst, gap: gap, horizon: horizon,
		rng: rand.New(rand.NewSource(seed))}
}

// Next implements Source.
func (s *OnOffSource) Next(step int, buf []Injection) []Injection {
	if step < 1 || step > s.horizon {
		return buf
	}
	if (step-1)%(s.burst+s.gap) >= s.burst {
		return buf // off window: no arrivals, no RNG consumed
	}
	for id := 0; id < s.n; id++ {
		if s.rng.Float64() < s.rate {
			dst := grid.NodeID(s.rng.Intn(s.n))
			buf = append(buf, Injection{Src: grid.NodeID(id), Dst: dst})
		}
	}
	return buf
}

// Exhausted implements Source.
func (s *OnOffSource) Exhausted(step int) bool { return step >= s.horizon }

// HotspotSource is the adversarial hotspot stream: every node injects with
// probability rate, but all traffic converges on a small set of hot nodes
// spread along the mesh diagonal, concentrating load the way Even–Medina–
// Patt-Shamir's online adversary does. One hot node sits at the center;
// h of them sit at the diagonal points x = (2i+1)·side/(2h).
type HotspotSource struct {
	n       int
	hot     []grid.NodeID
	rate    float64
	horizon int
	rng     *rand.Rand
}

// NewHotspot returns a hotspot source on the topology with h hot
// destination nodes (h >= 1, clamped to the side length).
func NewHotspot(topo grid.Topology, h int, rate float64, horizon int, seed int64) *HotspotSource {
	side := topo.Width()
	if h < 1 {
		h = 1
	}
	if h > side {
		h = side
	}
	hot := make([]grid.NodeID, 0, h)
	for i := 0; i < h; i++ {
		x := (2*i + 1) * side / (2 * h)
		hot = append(hot, topo.ID(grid.XY(x, x)))
	}
	return &HotspotSource{n: topo.N(), hot: hot, rate: rate, horizon: horizon,
		rng: rand.New(rand.NewSource(seed))}
}

// Next implements Source.
func (s *HotspotSource) Next(step int, buf []Injection) []Injection {
	if step < 1 || step > s.horizon {
		return buf
	}
	for id := 0; id < s.n; id++ {
		if s.rng.Float64() < s.rate {
			dst := s.hot[s.rng.Intn(len(s.hot))]
			buf = append(buf, Injection{Src: grid.NodeID(id), Dst: dst})
		}
	}
	return buf
}

// Exhausted implements Source.
func (s *HotspotSource) Exhausted(step int) bool { return step >= s.horizon }

// TransposeStreamSource is the adversarial structured stream: every node
// injects with probability rate toward its transpose (x,y) -> (y,x), so the
// sustained load reproduces the classic transpose congestion pattern
// continuously instead of as a one-shot permutation.
type TransposeStreamSource struct {
	topo    grid.Topology
	rate    float64
	horizon int
	rng     *rand.Rand
}

// NewTransposeStream returns a streaming transpose source on a square
// topology.
func NewTransposeStream(topo grid.Topology, rate float64, horizon int, seed int64) *TransposeStreamSource {
	if topo.Width() != topo.Height() {
		panic("workload: transpose stream needs a square topology")
	}
	return &TransposeStreamSource{topo: topo, rate: rate, horizon: horizon,
		rng: rand.New(rand.NewSource(seed))}
}

// Next implements Source.
func (s *TransposeStreamSource) Next(step int, buf []Injection) []Injection {
	if step < 1 || step > s.horizon {
		return buf
	}
	n := s.topo.N()
	for id := 0; id < n; id++ {
		if s.rng.Float64() < s.rate {
			c := s.topo.CoordOf(grid.NodeID(id))
			buf = append(buf, Injection{Src: grid.NodeID(id), Dst: s.topo.ID(grid.XY(c.Y, c.X))})
		}
	}
	return buf
}

// Exhausted implements Source.
func (s *TransposeStreamSource) Exhausted(step int) bool { return step >= s.horizon }
