package clt

import "meshroute/internal/grid"

// xform maps real mesh coordinates to "algorithm space", in which the
// current pass's packets always travel north/east and the current phase is
// always the Vertical Phase:
//
//   - the class reflection maps NW/SE/SW onto the NE orientation, and
//   - the phase transpose turns the Horizontal Phase into a Vertical Phase
//     on swapped axes.
//
// Both maps are involutions, so the same function converts back.
type xform struct {
	n         int
	flipX     bool
	flipY     bool
	transpose bool
}

// newXform builds the transform for one (class, phase) combination.
func newXform(n int, class Class, transposed bool) xform {
	return xform{
		n:         n,
		flipX:     class == NW || class == SW,
		flipY:     class == SE || class == SW,
		transpose: transposed,
	}
}

// to maps a real coordinate into algorithm space.
func (x xform) to(c grid.Coord) grid.Coord {
	if x.flipX {
		c.X = x.n - 1 - c.X
	}
	if x.flipY {
		c.Y = x.n - 1 - c.Y
	}
	if x.transpose {
		c.X, c.Y = c.Y, c.X
	}
	return c
}

// from maps an algorithm-space coordinate back to the real mesh.
func (x xform) from(c grid.Coord) grid.Coord {
	if x.transpose {
		c.X, c.Y = c.Y, c.X
	}
	if x.flipX {
		c.X = x.n - 1 - c.X
	}
	if x.flipY {
		c.Y = x.n - 1 - c.Y
	}
	return c
}
