package clt

import (
	"fmt"
	"sort"
)

// balance implements Step 4 of the Vertical Phase: Horizontal Balancing by
// the 2-rule — every node holding more than two active packets transmits
// east the active packet with the farthest east to go. Rows are
// independent; the returned duration is the slowest row's, and Lemma 17
// guarantees (checked here) that no packet ever overshoots its destination
// column.
func (r *Router) balance(td *tileData, xf xform, m int) (int, error) {
	// Group actives by row.
	rowsOf := map[int][]*pkt{}
	var rowKeys []int
	for _, p := range td.actives {
		y := xf.to(p.cur).Y
		if _, ok := rowsOf[y]; !ok {
			rowKeys = append(rowKeys, y)
		}
		rowsOf[y] = append(rowsOf[y], p)
	}
	sort.Ints(rowKeys)

	maxDur := 0
	for _, y := range rowKeys {
		dur, err := r.balanceRow(td, xf, rowsOf[y], m)
		if err != nil {
			return 0, err
		}
		if dur > maxDur {
			maxDur = dur
		}
	}
	// Lemma 24: at most two active packets end Balancing in one node.
	counts := map[int]int{}
	for _, p := range td.actives {
		a := xf.to(p.cur)
		counts[a.Y*r.n+a.X]++
	}
	for id, c := range counts {
		if c > 2 {
			return 0, fmt.Errorf("clt: Lemma 24 violated: %d actives at node %d after Balancing", c, id)
		}
	}
	return maxDur, nil
}

// balanceRow runs the 2-rule on one row until quiescent.
func (r *Router) balanceRow(td *tileData, xf xform, pkts []*pkt, m int) (int, error) {
	nodes := map[int][]*pkt{} // by algorithm-space x
	for _, p := range pkts {
		x := xf.to(p.cur).X
		nodes[x] = append(nodes[x], p)
	}
	dist := func(p *pkt) int { return xf.to(p.dst).X - xf.to(p.cur).X }

	step := 0
	for {
		var moves []*pkt
		for x, lst := range nodes {
			if len(lst) <= 2 {
				continue
			}
			bi := 0
			for j := 1; j < len(lst); j++ {
				dj, db := dist(lst[j]), dist(lst[bi])
				if dj > db || (dj == db && lst[j].id < lst[bi].id) {
					bi = j
				}
			}
			if dist(lst[bi]) <= 0 {
				return 0, fmt.Errorf("clt: Lemma 16 violated: node x=%d holds >2 actives, all at their columns", x)
			}
			moves = append(moves, lst[bi])
		}
		if len(moves) == 0 {
			return step, nil
		}
		step++
		if step > 3*m {
			return 0, fmt.Errorf("clt: Balancing did not stabilize in %d steps", step)
		}
		// Deterministic application order.
		sort.Slice(moves, func(a, b int) bool { return moves[a].id < moves[b].id })
		for _, p := range moves {
			x := xf.to(p.cur).X
			removePkt2(nodes, x, p)
			r.movePkt(p, xf, 1, 0, step)
			nodes[x+1] = append(nodes[x+1], p)
		}
	}
}

func removePkt2(nodes map[int][]*pkt, x int, p *pkt) {
	lst := nodes[x]
	for i, q := range lst {
		if q == p {
			lst[i] = lst[len(lst)-1]
			nodes[x] = lst[:len(lst)-1]
			return
		}
	}
}
