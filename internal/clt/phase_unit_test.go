package clt

import (
	"testing"

	"meshroute/internal/grid"
)

// newBareRouter builds a Router with manual packet placement for phase
// unit tests (bypassing Route's permutation plumbing).
func newBareRouter(t *testing.T, n int) *Router {
	t.Helper()
	r, err := New(Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	r.parked = make([]int, n*n)
	r.byNode = make([][]*pkt, n*n)
	r.res = Result{N: n}
	return r
}

// addPkt places a NE-class packet directly.
func (r *Router) addPkt(t *testing.T, id int, cur, dst grid.Coord) *pkt {
	t.Helper()
	p := &pkt{id: id, cur: cur, dst: dst, class: NE, lastMove: -1}
	r.pkts = append(r.pkts, p)
	r.byNode[r.nid(cur)] = append(r.byNode[r.nid(cur)], p)
	return p
}

// March must pack active packets into strip i-3 from the north end of the
// strip, one column at a time.
func TestMarchPacksNorthward(t *testing.T) {
	n := 27 // d = 1: strips are single rows
	r := newBareRouter(t, n)
	xf := newXform(n, NE, false)
	td := &tileData{ax: 0, ay: 0}
	// Destination strip 10 (rows 9..9 with d=1); strip i-3 = 7 → row 6.
	// Three actives in column 2, starting in rows 0..2.
	var ps []*pkt
	for i := 0; i < 3; i++ {
		p := r.addPkt(t, i, grid.XY(2, i), grid.XY(5, 9))
		td.actives = append(td.actives, p)
		ps = append(ps, p)
	}
	steps, err := r.march(td, xf, 1, QBase, n)
	if err != nil {
		t.Fatal(err)
	}
	if steps == 0 {
		t.Fatal("march must move packets")
	}
	// With d = 1 and q = 408, all three park in row 6 (strip 7).
	for _, p := range ps {
		if p.cur.Y != 6 || p.cur.X != 2 {
			t.Fatalf("packet %d parked at %v, want (2,6)", p.id, p.cur)
		}
	}
}

// March respects the q capacity per (node, destination strip).
func TestMarchRespectsCapacity(t *testing.T) {
	n := 27
	r := newBareRouter(t, n)
	xf := newXform(n, NE, false)
	td := &tileData{ax: 0, ay: 0}
	// d=1, so strip i-3 is a single node per column; q limits how many
	// actives-for-i may pile there. With 3 packets and q=408 they all
	// fit; the march postcondition (everyone in strip i-3) must hold.
	for i := 0; i < 3; i++ {
		p := r.addPkt(t, i, grid.XY(4, i), grid.XY(4, 12))
		td.actives = append(td.actives, p)
	}
	if _, err := r.march(td, xf, 1, QBase, n); err != nil {
		t.Fatal(err)
	}
	cnt := 0
	for _, p := range r.pkts {
		if p.cur.Y == 9-1+0 { // strip 9-3=9? destStrip = 12+1? compute below
			cnt++
		}
	}
	// destStrip of row 12 with d=1 is 13; strip 10 = row 9.
	for _, p := range r.pkts {
		if p.cur.Y != 9 {
			t.Fatalf("packet %d at %v, want row 9 (strip i-3)", p.id, p.cur)
		}
	}
	_ = cnt
}

// Sort-and-Smooth must deal a column's packets into strip i-2 in balanced
// layers ordered by horizontal distance: the northernmost node receives
// the largest-distance packet of each layer.
func TestSortSmoothLayering(t *testing.T) {
	n := 81 // d = 3
	r := newBareRouter(t, n)
	xf := newXform(n, NE, false)
	td := &tileData{ax: 0, ay: 0}
	d := 3
	// Destination strip 10 occupies rows 27..29; strip i-3 = 7 (rows
	// 18..20), strip i-2 = 8 (rows 21..23).
	// Six actives parked in strip 7 of column 1 with distinct horizontal
	// distances 1..6.
	var ps []*pkt
	for i := 0; i < 6; i++ {
		row := 18 + i%3
		p := r.addPkt(t, i, grid.XY(1, row), grid.XY(1+i+1, 27))
		td.actives = append(td.actives, p)
		ps = append(ps, p)
	}
	if _, err := r.sortSmooth(td, xf, d, QBase, n); err != nil {
		t.Fatal(err)
	}
	// All must end in strip i-2 (rows 21..23), balanced 2 per node.
	perRow := map[int][]*pkt{}
	for _, p := range ps {
		if p.cur.Y < 21 || p.cur.Y > 23 {
			t.Fatalf("packet %d ended at %v, want strip i-2", p.id, p.cur)
		}
		perRow[p.cur.Y] = append(perRow[p.cur.Y], p)
	}
	for row, lst := range perRow {
		if len(lst) != 2 {
			t.Fatalf("row %d holds %d packets, want 2 (balanced layers)", row, len(lst))
		}
	}
	// Layer structure: the two packets at each node have ranks r and r+3
	// in the sorted (descending distance) order — i.e. distances differ
	// by exactly 3 within each node.
	for row, lst := range perRow {
		d0 := lst[0].dst.X - lst[0].cur.X
		d1 := lst[1].dst.X - lst[1].cur.X
		if d0 < d1 {
			d0, d1 = d1, d0
		}
		if d0-d1 != 3 {
			t.Fatalf("row %d: distances %d,%d not one layer apart", row, d0, d1)
		}
	}
	// Largest distance (6) sits at the northernmost node (row 23).
	for _, p := range perRow[23] {
		if d := p.dst.X - p.cur.X; d != 6 && d != 3 {
			t.Fatalf("north node got distance %d, want {6,3}", d)
		}
	}
}

// Balancing spreads >2-packet piles east without overshooting.
func TestBalanceSpreadsEast(t *testing.T) {
	n := 27
	r := newBareRouter(t, n)
	xf := newXform(n, NE, false)
	td := &tileData{ax: 0, ay: 0}
	// Five actives piled on one node, destinations spread east.
	var ps []*pkt
	for i := 0; i < 5; i++ {
		p := r.addPkt(t, i, grid.XY(3, 10), grid.XY(5+i*2, 15))
		td.actives = append(td.actives, p)
		ps = append(ps, p)
	}
	steps, err := r.balance(td, xf, n)
	if err != nil {
		t.Fatal(err)
	}
	if steps == 0 {
		t.Fatal("balancing must move packets")
	}
	counts := map[int]int{}
	for _, p := range ps {
		if p.cur.X > p.dst.X {
			t.Fatalf("packet %d overshot to %v", p.id, p.cur)
		}
		counts[p.cur.X]++
	}
	for x, c := range counts {
		if c > 2 {
			t.Fatalf("node x=%d still holds %d actives", x, c)
		}
	}
}

// The 2-rule never moves a packet already at its destination column even
// when the pile is tall, because ties go to the farthest-east-to-go.
func TestBalanceKeepsArrivedPackets(t *testing.T) {
	n := 27
	r := newBareRouter(t, n)
	xf := newXform(n, NE, false)
	td := &tileData{ax: 0, ay: 0}
	home := r.addPkt(t, 0, grid.XY(3, 10), grid.XY(3, 15)) // at its column
	td.actives = append(td.actives, home)
	for i := 1; i < 4; i++ {
		p := r.addPkt(t, i, grid.XY(3, 10), grid.XY(3+i*3, 15))
		td.actives = append(td.actives, p)
	}
	if _, err := r.balance(td, xf, n); err != nil {
		t.Fatal(err)
	}
	if home.cur.X != 3 {
		t.Fatalf("arrived packet was pushed to %v", home.cur)
	}
}
