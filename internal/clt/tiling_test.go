package clt

import (
	"testing"
	"testing/quick"

	"meshroute/internal/grid"
)

// Lemma 19: with tiles of side m = 9d and the three tilings displaced by
// 3d = m/3, any two nodes within distance 3d in both dimensions share a
// tile in at least one tiling.
func TestLemma19Tilings(t *testing.T) {
	n := 81
	for _, m := range []int{27, 9} {
		dist := m / 3 // 3d
		f := func(ax, ay uint8, dxRaw, dyRaw uint8) bool {
			a := grid.XY(int(ax)%n, int(ay)%n)
			dx := int(dxRaw)%(2*dist+1) - dist
			dy := int(dyRaw)%(2*dist+1) - dist
			b := grid.XY(a.X+dx, a.Y+dy)
			if b.X < 0 || b.X >= n || b.Y < 0 || b.Y >= n {
				return true // off-mesh pair: nothing to check
			}
			for tau := 0; tau < 3; tau++ {
				ai, aj := tileIndex(a, m, tau)
				bi, bj := tileIndex(b, m, tau)
				if ai == bi && aj == bj {
					return true
				}
			}
			return false
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
	}
}

// Exhaustive version for one size: strictly-within-3d pairs are always
// covered; and some pairs at exactly 3d+1 are not (the lemma is tight).
func TestLemma19Exhaustive(t *testing.T) {
	n, m := 27, 9
	dist := m / 3
	covered := func(a, b grid.Coord) bool {
		for tau := 0; tau < 3; tau++ {
			ai, aj := tileIndex(a, m, tau)
			bi, bj := tileIndex(b, m, tau)
			if ai == bi && aj == bj {
				return true
			}
		}
		return false
	}
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			a := grid.XY(x, y)
			for dx := -dist; dx <= dist; dx++ {
				for dy := -dist; dy <= dist; dy++ {
					b := grid.XY(x+dx, y+dy)
					if b.X < 0 || b.X >= n || b.Y < 0 || b.Y >= n {
						continue
					}
					if !covered(a, b) {
						t.Fatalf("pair %v %v within %d not covered", a, b, dist)
					}
				}
			}
		}
	}
	// Tightness: at distance m (a full tile), some pair must be uncovered.
	if covered(grid.XY(0, 0), grid.XY(m, 0)) {
		t.Fatal("pairs a full tile apart should not always share a tile")
	}
}

// Tilings cover the whole mesh: every node belongs to exactly one tile per
// tiling.
func TestTilingsPartition(t *testing.T) {
	n := 81
	for _, m := range []int{81, 27, 9} {
		for tau := 0; tau < 3; tau++ {
			for x := 0; x < n; x++ {
				for y := 0; y < n; y++ {
					ti, tj := tileIndex(grid.XY(x, y), m, tau)
					start := tilingStart(m, tau)
					ax, ay := start+ti*m, start+tj*m
					if x < ax || x >= ax+m || y < ay || y >= ay+m {
						t.Fatalf("m=%d tau=%d: node (%d,%d) not inside its tile (%d,%d)", m, tau, x, y, ax, ay)
					}
				}
			}
		}
	}
}
