package clt

import (
	"testing"

	"meshroute/internal/grid"
	"meshroute/internal/workload"
)

// BenchmarkRoute routes a random permutation with the Section 6 algorithm
// at each supported size.
func BenchmarkRoute(b *testing.B) {
	for _, n := range []int{27, 81, 243} {
		perm := workload.Random(grid.NewSquareMesh(n), 7)
		b.Run(sizeName(n), func(b *testing.B) {
			var schedule int
			for i := 0; i < b.N; i++ {
				r, err := New(Config{N: n})
				if err != nil {
					b.Fatal(err)
				}
				res, err := r.Route(perm)
				if err != nil {
					b.Fatal(err)
				}
				schedule = res.TimeFormula
			}
			b.ReportMetric(float64(schedule)/float64(n), "schedule/n")
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 27:
		return "n27"
	case 81:
		return "n81"
	default:
		return "n243"
	}
}
