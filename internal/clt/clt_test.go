package clt

import (
	"testing"

	"meshroute/internal/grid"
	"meshroute/internal/workload"
)

func routePerm(t *testing.T, n int, perm *workload.Permutation, cfg Config) (*Router, *Result) {
	t.Helper()
	cfg.N = n
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Route(perm)
	if err != nil {
		t.Fatal(err)
	}
	return r, res
}

func checkMinimal(t *testing.T, r *Router) {
	t.Helper()
	topo := grid.NewSquareMesh(r.n)
	for _, p := range r.pkts {
		if !p.done {
			t.Fatalf("packet %d undelivered", p.id)
		}
		want := topo.Dist(topo.ID(p.cur), topo.ID(p.dst))
		_ = want // cur == dst after delivery; use recorded endpoints
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		src, dst grid.Coord
		want     Class
	}{
		{grid.XY(0, 0), grid.XY(5, 5), NE},
		{grid.XY(0, 0), grid.XY(0, 5), NE}, // directly north
		{grid.XY(0, 0), grid.XY(5, 0), NE}, // directly east (boundary)
		{grid.XY(5, 5), grid.XY(0, 7), NW},
		{grid.XY(5, 5), grid.XY(0, 5), NW}, // directly west
		{grid.XY(5, 5), grid.XY(7, 0), SE},
		{grid.XY(5, 5), grid.XY(5, 0), SW}, // directly south
		{grid.XY(5, 5), grid.XY(0, 0), SW},
	}
	for _, c := range cases {
		if got := ClassOf(c.src, c.dst); got != c.want {
			t.Errorf("ClassOf(%v, %v) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestXformInvolution(t *testing.T) {
	for class := Class(0); class < numClasses; class++ {
		for _, tr := range []bool{false, true} {
			xf := newXform(27, class, tr)
			for _, c := range []grid.Coord{grid.XY(0, 0), grid.XY(5, 13), grid.XY(26, 26)} {
				if got := xf.from(xf.to(c)); got != c {
					t.Fatalf("class %v transpose %v: from(to(%v)) = %v", class, tr, c, got)
				}
			}
			// The transform maps the class's movement to north/east.
			a, b := xf.to(grid.XY(13, 13)), grid.XY(13, 13)
			_ = a
			_ = b
		}
	}
}

func TestXformMapsClassToNE(t *testing.T) {
	n := 27
	topo := grid.NewSquareMesh(n)
	for s := 0; s < n*n; s += 7 {
		for d := 0; d < n*n; d += 5 {
			src, dst := topo.CoordOf(grid.NodeID(s)), topo.CoordOf(grid.NodeID(d))
			if src == dst {
				continue
			}
			class := ClassOf(src, dst)
			for _, tr := range []bool{false, true} {
				xf := newXform(n, class, tr)
				a, b := xf.to(src), xf.to(dst)
				if b.X < a.X || b.Y < a.Y {
					t.Fatalf("class %v: %v->%v maps to %v->%v (not NE)", class, src, dst, a, b)
				}
			}
		}
	}
}

func TestNewRejectsBadSizes(t *testing.T) {
	if _, err := New(Config{N: 0}); err == nil {
		t.Fatal("n=0 must fail")
	}
	if _, err := New(Config{N: 32}); err == nil {
		t.Fatal("n=32 (not a power of 3) must fail")
	}
	for _, n := range []int{9, 26, 27, 81} {
		if _, err := New(Config{N: n}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestSmallMeshBaseCaseOnly(t *testing.T) {
	for _, n := range []int{4, 9, 16, 26} {
		topo := grid.NewSquareMesh(n)
		for seed := int64(0); seed < 3; seed++ {
			perm := workload.Random(topo, seed)
			r, res := routePerm(t, n, perm, Config{})
			if res.Iterations != 0 {
				t.Fatalf("n=%d must be pure base case", n)
			}
			checkMinimal(t, r)
		}
	}
}

func TestRoute27RandomPermutations(t *testing.T) {
	n := 27
	topo := grid.NewSquareMesh(n)
	for seed := int64(0); seed < 5; seed++ {
		perm := workload.Random(topo, seed)
		r, res := routePerm(t, n, perm, Config{Verify: true})
		checkMinimal(t, r)
		if res.MaxQueue > 834 {
			t.Fatalf("queue %d exceeds Lemma 28 bound 834", res.MaxQueue)
		}
		if res.TimeFormula > 972*n {
			t.Fatalf("formula time %d exceeds Theorem 34 bound %d", res.TimeFormula, 972*n)
		}
	}
}

func TestRoute27Structured(t *testing.T) {
	n := 27
	topo := grid.NewSquareMesh(n)
	for name, perm := range map[string]*workload.Permutation{
		"transpose": workload.Transpose(topo),
		"reversal":  workload.Reversal(topo),
		"rotation":  workload.Rotation(topo, 13, 7),
	} {
		r, res := routePerm(t, n, perm, Config{Verify: true})
		checkMinimal(t, r)
		if res.Packets == 0 {
			t.Fatalf("%s: no packets", name)
		}
	}
}

func TestRoute81(t *testing.T) {
	n := 81
	topo := grid.NewSquareMesh(n)
	for _, perm := range []*workload.Permutation{
		workload.Random(topo, 1),
		workload.Transpose(topo),
	} {
		r, res := routePerm(t, n, perm, Config{})
		checkMinimal(t, r)
		if res.MaxQueue > 834 {
			t.Fatalf("queue %d exceeds 834", res.MaxQueue)
		}
		if res.TimeFormula > 972*n {
			t.Fatalf("formula time %d exceeds %d", res.TimeFormula, 972*n)
		}
		if res.Iterations != 2 {
			t.Fatalf("n=81 should run 2 tile iterations, got %d", res.Iterations)
		}
	}
}

func TestImprovedQBound(t *testing.T) {
	n := 81
	perm := workload.Random(grid.NewSquareMesh(n), 7)
	_, res := routePerm(t, n, perm, Config{ImprovedQ: true})
	if res.TimeFormula > 564*n {
		t.Fatalf("improved-q formula time %d exceeds 564n = %d", res.TimeFormula, 564*n)
	}
}

func TestHopsAreMinimal(t *testing.T) {
	n := 27
	topo := grid.NewSquareMesh(n)
	perm := workload.Random(topo, 11)
	cfg := Config{N: n}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Record endpoints before routing (cur mutates).
	type ep struct{ src, dst grid.Coord }
	eps := map[int]ep{}
	for i, pr := range perm.Pairs {
		eps[i] = ep{topo.CoordOf(pr.Src), topo.CoordOf(pr.Dst)}
	}
	if _, err := r.Route(perm); err != nil {
		t.Fatal(err)
	}
	for _, p := range r.pkts {
		e := eps[p.id]
		want := abs(e.dst.X-e.src.X) + abs(e.dst.Y-e.src.Y)
		if p.hops != want {
			t.Fatalf("packet %d: %d hops, minimal %d", p.id, p.hops, want)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestDeterministic(t *testing.T) {
	n := 27
	perm1 := workload.Random(grid.NewSquareMesh(n), 3)
	perm2 := workload.Random(grid.NewSquareMesh(n), 3)
	_, r1 := routePerm(t, n, perm1, Config{})
	_, r2 := routePerm(t, n, perm2, Config{})
	if *r1 != *r2 {
		t.Fatalf("nondeterministic results:\n%+v\n%+v", *r1, *r2)
	}
}

func TestPartialPermutation(t *testing.T) {
	n := 27
	perm := &workload.Permutation{Pairs: []workload.Pair{
		{Src: 0, Dst: grid.NodeID(n*n - 1)},
		{Src: grid.NodeID(n*n - 1), Dst: 0},
		{Src: 5, Dst: 5}, // fixed point
	}}
	r, res := routePerm(t, n, perm, Config{Verify: true})
	checkMinimal(t, r)
	if res.Packets != 2 {
		t.Fatalf("fixed points should not count: %d", res.Packets)
	}
}
