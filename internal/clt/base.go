package clt

import (
	"fmt"
	"sort"

	"meshroute/internal/grid"
)

// baseCase finishes a class pass with the dimension-order farthest-first
// algorithm (Section 6.1, base case; Lemma 32). When the pass ran at least
// one tile iteration, every packet is within two rows and two columns of
// its destination and the base case completes within 14 steps with at most
// 9 packets per node; for meshes smaller than 27 the base case IS the
// whole pass and those bounds do not apply.
func (r *Router) baseCase(class Class, afterIterations bool) error {
	xf := newXform(r.n, class, false)
	var live []*pkt
	for _, p := range r.pkts {
		if p.class == class && !p.done {
			live = append(live, p)
		}
	}
	if afterIterations {
		for _, p := range live {
			a, b := xf.to(p.cur), xf.to(p.dst)
			if b.X-a.X > 2 || b.Y-a.Y > 2 {
				return fmt.Errorf("clt: packet %d entered base case %d cols, %d rows from its destination (Lemma 18 allows 2)",
					p.id, b.X-a.X, b.Y-a.Y)
			}
		}
	}

	limit := 14
	if !afterIterations {
		limit = 100 * r.n * r.n
	}
	step := 0
	for len(live) > 0 {
		step++
		if step > limit {
			return fmt.Errorf("clt: base case exceeded %d steps with %d packets left", limit, len(live))
		}
		// Group by node; one packet per outlink, dimension order
		// (east first), farthest first.
		nodes := map[grid.Coord][]*pkt{}
		var keys []grid.Coord
		for _, p := range live {
			a := xf.to(p.cur)
			if _, ok := nodes[a]; !ok {
				keys = append(keys, a)
			}
			nodes[a] = append(nodes[a], p)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Y != keys[j].Y {
				return keys[i].Y < keys[j].Y
			}
			return keys[i].X < keys[j].X
		})
		type mv struct {
			p      *pkt
			dx, dy int
		}
		var moves []mv
		for _, k := range keys {
			var east, north *pkt
			for _, p := range nodes[k] {
				a, b := xf.to(p.cur), xf.to(p.dst)
				switch {
				case b.X > a.X:
					if east == nil || b.X-a.X > xf.to(east.dst).X-a.X ||
						(b.X-a.X == xf.to(east.dst).X-a.X && p.id < east.id) {
						east = p
					}
				case b.Y > a.Y:
					if north == nil || b.Y-a.Y > xf.to(north.dst).Y-a.Y ||
						(b.Y-a.Y == xf.to(north.dst).Y-a.Y && p.id < north.id) {
						north = p
					}
				}
			}
			if east != nil {
				moves = append(moves, mv{east, 1, 0})
			}
			if north != nil {
				moves = append(moves, mv{north, 0, 1})
			}
		}
		if len(moves) == 0 {
			return fmt.Errorf("clt: base case deadlocked with %d packets left", len(live))
		}
		for _, m := range moves {
			r.movePkt(m.p, xf, m.dx, m.dy, step)
			if m.p.cur == m.p.dst {
				r.deliver(m.p)
			}
		}
		w := 0
		for _, p := range live {
			if !p.done {
				live[w] = p
				w++
			}
		}
		live = live[:w]
	}
	r.res.BaseCaseSteps += step
	formula := step // no closed form without iterations (n < 27)
	if afterIterations {
		formula = 14 // Lemma 32
	}
	r.emitSpan("basecase", class, "", 0, 0, step, formula)
	r.res.TimeFormula += formula
	r.res.TimeMeasured += step
	return nil
}

// deliver removes a packet from the network.
func (r *Router) deliver(p *pkt) {
	p.done = true
	id := r.nid(p.cur)
	lst := r.byNode[id]
	for i, q := range lst {
		if q == p {
			lst[i] = lst[len(lst)-1]
			r.byNode[id] = lst[:len(lst)-1]
			return
		}
	}
}

// checkLemma16 (Verify mode) asserts the prefix property after
// Sort-and-Smooth: for any row, any column c, and any s >= 1, the first s
// nodes west of and including column c hold at most 2s active packets with
// destination column at or west of c.
func (r *Router) checkLemma16(td *tileData, xf xform, d, m int) error {
	type rowKey = int
	byRow := map[rowKey][]*pkt{}
	for _, p := range td.actives {
		a := xf.to(p.cur)
		byRow[a.Y] = append(byRow[a.Y], p)
	}
	for y, pkts := range byRow {
		// positions and destination columns
		for c := td.ax; c < td.ax+m && c < r.n; c++ {
			count := 0
			for s := 1; c-s+1 >= td.ax; s++ {
				x := c - s + 1
				for _, p := range pkts {
					if xf.to(p.cur).X == x && xf.to(p.dst).X <= c {
						count++
					}
				}
				if count > 2*s {
					return fmt.Errorf("clt: Lemma 16 violated in row %d: %d (<=%d)-packets in window [%d..%d]",
						y, count, c, x, c)
				}
			}
		}
	}
	return nil
}
