package clt

import (
	"strings"
	"testing"
)

func TestDemoSortSmoothLayers(t *testing.T) {
	out, err := DemoSortSmooth(4, [][]int{
		{6, 7, 1, 1}, {2, 8, 2, 4}, {3, 1, 6, 2}, {3, 4, 2, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "before") || !strings.Contains(out, "after") {
		t.Fatalf("missing sections:\n%s", out)
	}
	// The after picture's northernmost node holds the top of each layer:
	// with 16 packets sorted descending (8,7,6,6,4,4,3,3,2,2,2,2,2,1,1,1)
	// dealt into 4 nodes, the north node gets ranks 1,5,9,13 = 8,4,2,2...
	// verify at least that the largest distance (8) ends at the north
	// node of the after strip (first rendered line).
	lines := strings.Split(out, "\n")
	var afterFirst string
	for i, l := range lines {
		if strings.Contains(l, "after") && i+1 < len(lines) {
			afterFirst = lines[i+1]
			break
		}
	}
	if !strings.Contains(afterFirst, "8") {
		t.Fatalf("largest distance must land at the northernmost node:\n%s", out)
	}
}

func TestDemoSortSmoothValidation(t *testing.T) {
	if _, err := DemoSortSmooth(3, [][]int{{1}}); err == nil {
		t.Fatal("mismatched node list must fail")
	}
}

func TestStripDiagram(t *testing.T) {
	out := StripDiagram(10)
	if !strings.Contains(out, "strip 27") || !strings.Contains(out, "destination strip i") {
		t.Fatalf("diagram incomplete:\n%s", out)
	}
	if got := StripDiagram(99); !strings.Contains(got, "destination strip i") {
		t.Fatal("out-of-range i must fall back")
	}
}

func TestSubphaseSequence(t *testing.T) {
	if !strings.Contains(SubphaseSequence(), "V1 V2 V3 H1 H2 H3") {
		t.Fatal("sequence missing")
	}
}
