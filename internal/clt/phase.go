package clt

import (
	"fmt"
	"sort"

	"meshroute/internal/grid"
)

// tileData collects one tile's active packets for a phase.
type tileData struct {
	ax, ay  int // algorithm-space anchor (may be negative for edge tiles)
	actives []*pkt
}

// relocate moves a packet to a new real coordinate, maintaining the
// per-node lists and the occupancy statistic.
func (r *Router) relocate(p *pkt, to grid.Coord) {
	from := r.nid(p.cur)
	lst := r.byNode[from]
	for i, q := range lst {
		if q == p {
			lst[i] = lst[len(lst)-1]
			r.byNode[from] = lst[:len(lst)-1]
			break
		}
	}
	p.cur = to
	id := r.nid(to)
	r.byNode[id] = append(r.byNode[id], p)
	r.noteOccupancy(id)
}

// movePkt advances p one hop in algorithm space. Every move is checked to
// be minimal: it must not pass the packet's destination in either
// dimension (Theorem 20).
func (r *Router) movePkt(p *pkt, xf xform, dx, dy, phaseStep int) {
	a := xf.to(p.cur)
	a.X += dx
	a.Y += dy
	if b := xf.to(p.dst); a.X > b.X || a.Y > b.Y {
		panic(fmt.Sprintf("clt: non-minimal move of packet %d past its destination", p.id))
	}
	r.relocate(p, xf.from(a))
	p.lastMove = phaseStep
	p.hops++
}

// tilingStart returns the smallest tile anchor of tiling tau with tiles of
// side m: tau·m/3 shifted one tile southwest so that edge ("virtual") tiles
// cover the whole mesh (Lemma 19: the three tilings are displaced by m/3 =
// 3d in each dimension).
func tilingStart(m, tau int) int {
	start := tau * m / 3
	if start > 0 {
		start -= m
	}
	return start
}

// tileIndex returns the tile of tiling tau containing algorithm-space
// coordinate c.
func tileIndex(c grid.Coord, m, tau int) (ti, tj int) {
	start := tilingStart(m, tau)
	return (c.X - start) / m, (c.Y - start) / m
}

// phase runs one Vertical (or, transposed, Horizontal) Phase of iteration
// iter with tile side m, strip height d = m/27, March capacity q, on
// tiling tau, emitting one span per sub-phase on the configured sink.
func (r *Router) phase(class Class, vertical bool, m, d, q, tau, iter int) error {
	xf := newXform(r.n, class, !vertical)
	start := tilingStart(m, tau)

	// Gather active packets per tile. A packet participates if its
	// location and destination share the tile; it is active if its
	// destination strip i is at least 3 above its current strip.
	tiles := map[[2]int]*tileData{}
	for _, p := range r.pkts {
		if p.class != class || p.done {
			continue
		}
		ac, ad := xf.to(p.cur), xf.to(p.dst)
		ti, tj := tileIndex(ac, m, tau)
		if di, dj := tileIndex(ad, m, tau); di != ti || dj != tj {
			continue
		}
		ay := start + tj*m
		destStrip := (ad.Y-ay)/d + 1
		curStrip := (ac.Y-ay)/d + 1
		if curStrip > destStrip-3 {
			continue
		}
		key := [2]int{ti, tj}
		td := tiles[key]
		if td == nil {
			td = &tileData{ax: start + ti*m, ay: ay}
			tiles[key] = td
		}
		p.lastMove = -1
		td.actives = append(td.actives, p)
	}

	// Deterministic tile order.
	keys := make([][2]int, 0, len(tiles))
	for k := range tiles {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][1] != keys[b][1] {
			return keys[a][1] < keys[b][1]
		}
		return keys[a][0] < keys[b][0]
	})

	marchMax, ssMax, balMax := 0, 0, 0
	for _, k := range keys {
		td := tiles[k]
		steps, err := r.march(td, xf, d, q, m)
		if err != nil {
			return err
		}
		if steps > marchMax {
			marchMax = steps
		}
		ss, err := r.sortSmooth(td, xf, d, q, m)
		if err != nil {
			return err
		}
		if ss > ssMax {
			ssMax = ss
		}
		bal, err := r.balance(td, xf, m)
		if err != nil {
			return err
		}
		if bal > balMax {
			balMax = bal
		}
	}

	// Closed-form durations (Lemmas 29, 30, 31) and duration checks.
	marchF := q*d - 1
	ssF := 2 * ((d - 1) + q*d)
	balF := 3*m - 4
	if marchMax > marchF {
		return fmt.Errorf("clt: March took %d steps, Lemma 29 allows %d (m=%d d=%d q=%d)", marchMax, marchF, m, d, q)
	}
	if ssMax > ssF {
		return fmt.Errorf("clt: Sort-and-Smooth took %d steps, Lemma 30 allows %d (m=%d d=%d q=%d)", ssMax, ssF, m, d, q)
	}
	if balMax > balF {
		return fmt.Errorf("clt: Balancing took %d steps, Lemma 31 allows %d (m=%d)", balMax, balF, m)
	}
	axis := "h"
	if vertical {
		axis = "v"
	}
	r.emitSpan("march", class, axis, iter, tau, marchMax, marchF)
	r.emitSpan("sortsmooth", class, axis, iter, tau, ssMax, ssF)
	r.emitSpan("balance", class, axis, iter, tau, balMax, balF)
	r.res.March.Formula += marchF
	r.res.March.Measured += marchMax
	r.res.SortSmooth.Formula += ssF
	r.res.SortSmooth.Measured += ssMax
	r.res.Balance.Formula += balF
	r.res.Balance.Measured += balMax
	r.res.TimeFormula += marchF + ssF + balF
	r.res.TimeMeasured += marchMax + ssMax + balMax
	return nil
}

// march implements Step 2 of the Vertical Phase: every active packet moves
// north along its column into strip i-3, packing as far north as possible,
// with each strip i-3 node refusing its q-th-plus active packet for strip
// i. A node holding several northbound packets prefers the one received
// from the south on the previous step (the Lemma 29 priority).
func (r *Router) march(td *tileData, xf xform, d, q, m int) (int, error) {
	// Group actives by column.
	cols := map[int][]*pkt{}
	var colKeys []int
	for _, p := range td.actives {
		x := xf.to(p.cur).X
		if _, ok := cols[x]; !ok {
			colKeys = append(colKeys, x)
		}
		cols[x] = append(cols[x], p)
	}
	sort.Ints(colKeys)

	maxSteps := 0
	for _, x := range colKeys {
		steps, err := r.marchColumn(td, xf, cols[x], d, q, m)
		if err != nil {
			return 0, err
		}
		if steps > maxSteps {
			maxSteps = steps
		}
	}
	// Post-condition: every active parked in its strip i-3.
	for _, p := range td.actives {
		ac, ad := xf.to(p.cur), xf.to(p.dst)
		cs := (ac.Y - td.ay) / d
		ds := (ad.Y - td.ay) / d
		if cs != ds-3 {
			return 0, fmt.Errorf("clt: March left packet %d in strip %d, want %d (q=%d too small?)", p.id, cs+1, ds-2, q)
		}
	}
	return maxSteps, nil
}

// marchColumn simulates one column's March until quiescent.
func (r *Router) marchColumn(td *tileData, xf xform, pkts []*pkt, d, q, m int) (int, error) {
	rows := make([][]*pkt, m)
	cnt := make([][]int16, m) // cnt[ly][destStrip] of actives-for-strip
	destStrip := func(p *pkt) int { return (xf.to(p.dst).Y-td.ay)/d + 1 }
	ly := func(p *pkt) int { return xf.to(p.cur).Y - td.ay }
	for _, p := range pkts {
		l := ly(p)
		rows[l] = append(rows[l], p)
		if cnt[l] == nil {
			cnt[l] = make([]int16, 29)
		}
		cnt[l][destStrip(p)]++
	}

	step := 0
	for {
		step++
		var moves []*pkt
		for l := m - 1; l >= 0; l-- {
			var best *pkt
			for _, p := range rows[l] {
				i := destStrip(p)
				parkTop := (i-3)*d - 1 // top row of strip i-3
				if l >= parkTop {
					continue // at the packing frontier's ceiling
				}
				// Entering or advancing within strip i-3 requires
				// the target to hold fewer than q packets for i.
				tgt := l + 1
				if tgt >= (i-4)*d { // target inside strip i-3
					if cnt[tgt] != nil && int(cnt[tgt][i]) >= q {
						continue
					}
				}
				if best == nil {
					best = p
					continue
				}
				// Prefer the packet received from the south last
				// step; break ties by id.
				bm, pm := best.lastMove == step-1, p.lastMove == step-1
				if (pm && !bm) || (pm == bm && p.id < best.id) {
					best = p
				}
			}
			if best != nil {
				moves = append(moves, best)
			}
		}
		if len(moves) == 0 {
			return step - 1, nil
		}
		for _, p := range moves {
			l, i := ly(p), destStrip(p)
			removePkt(&rows[l], p)
			cnt[l][i]--
			nl := l + 1
			rows[nl] = append(rows[nl], p)
			if cnt[nl] == nil {
				cnt[nl] = make([]int16, 29)
			}
			cnt[nl][i]++
			r.movePkt(p, xf, 0, 1, step)
		}
		if step > q*d+m {
			return 0, fmt.Errorf("clt: March column did not stabilize in %d steps", step)
		}
	}
}

func removePkt(lst *[]*pkt, p *pkt) {
	l := *lst
	for i, q := range l {
		if q == p {
			l[i] = l[len(l)-1]
			*lst = l[:len(l)-1]
			return
		}
	}
}
