package clt

import (
	"testing"

	"meshroute/internal/grid"
	"meshroute/internal/obs"
	"meshroute/internal/workload"
)

// TestPhaseSpans checks the observability contract of the Section 6
// router: one span per March / Sort-and-Smooth / Balancing phase and per
// base case, each respecting its lemma's closed form, with the phase
// clock reconstructing the synchronized schedule exactly.
func TestPhaseSpans(t *testing.T) {
	const n = 81
	sink := &obs.Memory{}
	r, err := New(Config{N: n, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Route(workload.Random(grid.NewSquareMesh(n), 7))
	if err != nil {
		t.Fatal(err)
	}

	// n = 81: per class, iteration 0 runs 1 tiling × 2 axes × 3 phases,
	// iteration 1 runs 3 tilings × 2 axes × 3 phases, plus one base
	// case — 25 spans; 4 classes.
	if want := 4 * 25; len(sink.Spans) != want {
		t.Fatalf("got %d spans, want %d", len(sink.Spans), want)
	}

	clock, kinds := 0, map[string]int{}
	for i, sp := range sink.Spans {
		kinds[sp.Name]++
		if sp.Start != clock {
			t.Fatalf("span %d (%s) starts at %d, phase clock says %d", i, sp.Name, sp.Start, clock)
		}
		if sp.Measured > sp.Formula {
			t.Errorf("span %d (%s %s iter=%d tau=%d) measured %d exceeds formula %d",
				i, sp.Name, sp.Class, sp.Iteration, sp.Tiling, sp.Measured, sp.Formula)
		}
		if sp.Name == "basecase" && sp.Formula != 14 {
			t.Errorf("base case after iterations must have formula 14 (Lemma 32), got %d", sp.Formula)
		}
		clock += sp.Formula
	}
	if clock != res.TimeFormula {
		t.Errorf("sum of span formulas = %d, Result.TimeFormula = %d", clock, res.TimeFormula)
	}
	// Per class: 2 axes × (1 + 3) tilings of each phase kind.
	for _, k := range []string{"march", "sortsmooth", "balance"} {
		if kinds[k] != 4*2*4 {
			t.Errorf("%s spans = %d, want %d", k, kinds[k], 4*2*4)
		}
	}
	if kinds["basecase"] != 4 {
		t.Errorf("basecase spans = %d, want 4", kinds["basecase"])
	}
}
