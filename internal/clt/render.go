package clt

import (
	"fmt"
	"strings"

	"meshroute/internal/grid"
)

// DemoSortSmooth reproduces Figure 6 of the paper from a live run of the
// Sort-and-Smooth stream protocol: a column of d strip-(i-3) nodes holding
// the given packets (each labelled by its horizontal distance to go) is
// sorted and dealt into balanced layers in strip i-2. It returns the
// before/after picture, rendered north-up with one node per line.
func DemoSortSmooth(d int, distances [][]int) (string, error) {
	if d < 1 || len(distances) != d {
		return "", fmt.Errorf("clt: need exactly d=%d node distance lists", d)
	}
	// Build a bare router on a mesh big enough for the demo: strips of
	// height d, destination strip 4 (rows 3d..4d-1), packets parked in
	// strip 1 (rows 0..d-1), column 0.
	n := 27
	for n < 27*d {
		n *= 3
	}
	r, err := New(Config{N: n})
	if err != nil {
		return "", err
	}
	r.parked = make([]int, n*n)
	r.byNode = make([][]*pkt, n*n)
	td := &tileData{ax: 0, ay: 0}
	id := 0
	for t := 1; t <= d; t++ { // node t of strip i-3 (south to north)
		for _, dist := range distances[t-1] {
			p := &pkt{
				id:    id,
				cur:   grid.XY(0, t-1),
				dst:   grid.XY(dist, 3*d),
				class: NE,
			}
			id++
			r.pkts = append(r.pkts, p)
			r.byNode[r.nid(p.cur)] = append(r.byNode[r.nid(p.cur)], p)
			td.actives = append(td.actives, p)
		}
	}
	xf := newXform(n, NE, false)
	before := renderColumn(r, d, 0, "strip i-3 (before)")
	if _, err := r.ssStream(td, xf, td.actives, 4, d, QBase); err != nil {
		return "", err
	}
	after := renderColumn(r, d, d, "strip i-2 (after)")
	return before + after, nil
}

// renderColumn prints the packets of column 0 in rows [base, base+d),
// north-up, labelled by horizontal distance.
func renderColumn(r *Router, d, base int, caption string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", caption)
	for row := base + d - 1; row >= base; row-- {
		b.WriteString("  |")
		for _, p := range r.byNode[r.nid(grid.XY(0, row))] {
			fmt.Fprintf(&b, " %d", p.dst.X-p.cur.X)
		}
		b.WriteString(" |\n")
	}
	return b.String()
}

// SubphaseSequence renders Figure 7: the order of vertical and horizontal
// subphases and the maximum span a packet can sit inactive.
func SubphaseSequence() string {
	return strings.Join([]string{
		"V1 V2 V3 H1 H2 H3 | V1 V2 V3 H1 H2 H3 | ...   (iteration j, then j+1)",
		"a packet active in some subphase is active again within at most",
		"seven subphases (Corollary 26) — the basis of the 17-packet",
		"inactive-occupancy bound of Corollary 27.",
	}, "\n") + "\n"
}

// StripDiagram renders Figure 5: one tile's 27 horizontal strips with the
// March and Sort-and-Smooth targets for a destination strip i.
func StripDiagram(i int) string {
	if i < 4 || i > 27 {
		i = 10
	}
	var b strings.Builder
	for s := 27; s >= 1; s-- {
		label := ""
		switch s {
		case i:
			label = "<- destination strip i"
		case i - 2:
			label = "<- Sort-and-Smooth parks packets here (strip i-2)"
		case i - 3:
			label = "<- March packs packets here (strip i-3), <= q per node"
		}
		marker := "  "
		if s <= i-3 {
			marker = "^^" // active packets march north through here
		}
		fmt.Fprintf(&b, "strip %2d %s %s\n", s, marker, label)
	}
	b.WriteString("(active = destination in strip i, start in strips 1..i-3)\n")
	return b.String()
}
