package clt

import (
	"fmt"
	"sort"
)

// sortSmooth implements Step 3 of the Vertical Phase: in two sequential
// substeps (even destination strips, then odd), each column's active
// packets for strip i move from strip i-3 to strip i-2, sorted by
// decreasing horizontal distance and dealt into balanced layers:
//
//   - the t-th node from the southernmost of strip i-3 starts transmitting
//     at step t, always sending the held packet with the farthest east to
//     go;
//   - the t-th node from the northernmost of strip i-2 holds every t-th
//     packet it receives and forwards the rest north.
//
// It returns the phase duration (max over columns and strips, summed over
// the two parities).
func (r *Router) sortSmooth(td *tileData, xf xform, d, q, m int) (int, error) {
	// Group actives by (column, destStrip).
	type key struct{ x, i int }
	groups := map[key][]*pkt{}
	var keys []key
	for _, p := range td.actives {
		a := xf.to(p.cur)
		i := (xf.to(p.dst).Y-td.ay)/d + 1
		k := key{a.X, i}
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], p)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].x != keys[b].x {
			return keys[a].x < keys[b].x
		}
		return keys[a].i < keys[b].i
	})

	total := 0
	for _, parity := range []int{0, 1} {
		maxDur := 0
		for _, k := range keys {
			if k.i%2 != parity {
				continue
			}
			dur, err := r.ssStream(td, xf, groups[k], k.i, d, q)
			if err != nil {
				return 0, err
			}
			if dur > maxDur {
				maxDur = dur
			}
		}
		total += maxDur
	}
	if r.cfg.Verify {
		if err := r.checkLemma16(td, xf, d, m); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// ssStream simulates the sorted stream of one (column, destination strip)
// pair until all packets rest in strip i-2.
func (r *Router) ssStream(td *tileData, xf xform, pkts []*pkt, i, d, q int) (int, error) {
	dist := func(p *pkt) int { return xf.to(p.dst).X - xf.to(p.cur).X }

	// Strip i-3 holdings by node t (1 = southernmost ... d = northernmost).
	hold := make([][]*pkt, d+1)
	base := (i - 4) * d // southernmost local row of strip i-3
	for _, p := range pkts {
		t := xf.to(p.cur).Y - td.ay - base + 1
		if t < 1 || t > d {
			return 0, fmt.Errorf("clt: sort-and-smooth found packet %d outside strip %d-3", p.id, i)
		}
		hold[t] = append(hold[t], p)
	}
	// Strip i-2 receivers by node r (1 = northernmost ... d = southernmost).
	recv := make([]int, d+1)
	fq := make([][]*pkt, d+1)

	pending := len(pkts)
	forwarding := 0
	step := 0
	limit := (d - 1) + q*d + d + 4
	for pending > 0 || forwarding > 0 {
		step++
		if step > limit {
			return 0, fmt.Errorf("clt: sort-and-smooth stream for strip %d exceeded %d steps", i, limit)
		}
		type send struct {
			p      *pkt
			toHold int  // destination hold node t+1, or 0
			toRecv int  // destination receiver r, or 0
			fresh  bool // first arrival into strip i-2 (from strip i-3)
		}
		var sends []send
		// Strip i-3 node t transmits from step t on: farthest east to go.
		for t := d; t >= 1; t-- {
			if step < t || len(hold[t]) == 0 {
				continue
			}
			bi := 0
			for j := 1; j < len(hold[t]); j++ {
				dj, db := dist(hold[t][j]), dist(hold[t][bi])
				if dj > db || (dj == db && hold[t][j].id < hold[t][bi].id) {
					bi = j
				}
			}
			p := hold[t][bi]
			hold[t] = append(hold[t][:bi], hold[t][bi+1:]...)
			if t < d {
				sends = append(sends, send{p: p, toHold: t + 1})
			} else {
				sends = append(sends, send{p: p, toRecv: d, fresh: true})
			}
		}
		// Strip i-2 node r forwards its queue head north.
		for rr := d; rr >= 2; rr-- {
			if len(fq[rr]) == 0 {
				continue
			}
			p := fq[rr][0]
			fq[rr] = fq[rr][1:]
			forwarding--
			sends = append(sends, send{p: p, toRecv: rr - 1})
		}
		for _, s := range sends {
			r.movePkt(s.p, xf, 0, 1, step)
			switch {
			case s.toHold > 0:
				hold[s.toHold] = append(hold[s.toHold], s.p)
			default:
				rr := s.toRecv
				recv[rr]++
				if s.fresh {
					pending--
				}
				if recv[rr]%rr != 0 {
					fq[rr] = append(fq[rr], s.p)
					forwarding++
				}
			}
		}
	}
	for rr := 1; rr <= d; rr++ {
		if len(fq[rr]) > 0 {
			return 0, fmt.Errorf("clt: sort-and-smooth terminated with queued packets")
		}
	}
	return step, nil
}
