// Package clt implements the O(n)-time, O(1)-queue-size minimal adaptive
// routing algorithm of Chinn, Leighton and Tompa, Section 6 (Theorem 34).
//
// The algorithm routes any permutation on the n×n mesh in at most 972n
// steps (564n with the improved constant after Theorem 34) with at most 834
// packets in any node, while every packet follows a minimal path. It is
// NOT destination-exchangeable — it uses the distances each packet still
// has to travel — which is exactly the escape hatch Theorem 14 leaves open.
//
// Structure (Section 6.1): the four packet classes (NE, NW, SE, SW) are
// routed one after another. Each class pass runs iterations j = 0, 1, ...
// with tiles of side m = n/3^j; each iteration performs a Vertical Phase on
// each of three shifted tilings (Lemma 19), then a Horizontal Phase on
// each; each phase is March → Sort-and-Smooth → Balancing (the 2-rule).
// When m < 27 the pass finishes with the dimension-order farthest-first
// base case (Lemma 32).
//
// The implementation simulates every phase step by step under the paper's
// movement and priority rules, so peak queue occupancy is measured, and it
// checks each phase's duration against the closed forms of Lemmas 29-31.
// Phases are globally synchronized by a phase clock, as the paper allows
// ("every node knows how long it will take and can delay that long").
package clt

import (
	"fmt"

	"meshroute/internal/grid"
	"meshroute/internal/obs"
	"meshroute/internal/workload"
)

// QBase is q = 17·(27-3), the March capacity constant of Section 6.3.
const QBase = 408

// QImproved is q = 17·(9-3), valid for iterations j >= 1 (the improvement
// noted after Theorem 34 that brings the time bound from 972n to 564n).
const QImproved = 102

// Class identifies a packet's quadrant class.
type Class uint8

// The four classes, routed in this order.
const (
	NE Class = iota
	NW
	SE
	SW
	numClasses
)

var classNames = [...]string{"NE", "NW", "SE", "SW"}

// String returns the class name.
func (c Class) String() string { return classNames[c] }

// ClassOf assigns a source/destination pair to its quadrant class:
// NE takes dx >= 0, dy >= 0 (northeast, directly north, directly east);
// the others partition the remaining quadrants with their boundaries.
func ClassOf(src, dst grid.Coord) Class {
	dx, dy := dst.X-src.X, dst.Y-src.Y
	switch {
	case dx >= 0 && dy >= 0:
		return NE
	case dx < 0 && dy >= 0:
		return NW
	case dx > 0 && dy < 0:
		return SE
	default:
		return SW
	}
}

// Config configures a Router.
type Config struct {
	// N is the mesh side. It must be a power of 3, or less than 27
	// (pure base case).
	N int
	// ImprovedQ uses q = 102 for iterations j >= 1 (the 564n variant).
	ImprovedQ bool
	// Verify enables the more expensive invariant checks (Lemma 16's
	// prefix property after every Sort-and-Smooth).
	Verify bool
	// Sink, when non-nil, receives one obs.Span per March /
	// Sort-and-Smooth / Balancing phase and per base case, carrying the
	// measured quiescence time and the Lemma 29-32 closed form, so the
	// per-phase bounds can be checked from a recorded run.
	Sink obs.Sink
}

// PhaseStats records one phase kind's accumulated durations.
type PhaseStats struct {
	// Formula is the synchronized schedule length from Lemmas 29-31.
	Formula int
	// Measured is the number of steps until the phase went quiescent.
	Measured int
}

// Result reports a routing run.
type Result struct {
	// N is the mesh side.
	N int
	// Packets is the number of packets routed.
	Packets int
	// TimeFormula is the total synchronized schedule length — the
	// quantity Theorem 34 bounds by 972n (564n with ImprovedQ).
	TimeFormula int
	// TimeMeasured sums the measured quiescence times of all phases (a
	// lower estimate of the schedule with early phase termination).
	TimeMeasured int
	// MaxQueue is the peak number of packets in any node at any step —
	// Lemma 28 bounds it by 834 (2q + 18).
	MaxQueue int
	// BaseCaseSteps is the total step count of the four base cases.
	BaseCaseSteps int
	// March, SortSmooth, Balance accumulate per-phase durations.
	March, SortSmooth, Balance PhaseStats
	// Iterations is the number of tile refinements per pass.
	Iterations int
}

// pkt is a packet in flight.
type pkt struct {
	id    int
	cur   grid.Coord // real coordinates
	dst   grid.Coord // real coordinates
	class Class
	done  bool
	// lastMove is the step-within-phase of the packet's last move
	// (March's "prefer the packet received from the south" rule).
	lastMove int
	// hops counts link traversals; minimality means hops equals the L1
	// source-destination distance on delivery.
	hops int
}

// Router routes permutations with the Section 6 algorithm.
type Router struct {
	cfg Config
	n   int

	pkts []*pkt
	// byNode holds the in-flight packets of the class currently being
	// routed, indexed by real node id.
	byNode [][]*pkt
	// parked counts in-flight packets of all other classes per node.
	parked []int

	// clock is the phase clock: the sum of the formula durations of all
	// phases emitted so far (the start step of the next span under the
	// paper's globally synchronized schedule).
	clock int

	res Result
}

// emitSpan records one completed phase on the configured sink (if any)
// and advances the phase clock by the phase's synchronized duration.
func (r *Router) emitSpan(name string, class Class, axis string, iter, tau, measured, formula int) {
	if r.cfg.Sink != nil {
		r.cfg.Sink.Span(obs.Span{
			Name: name, Class: class.String(), Axis: axis,
			Iteration: iter, Tiling: tau,
			Start: r.clock, Measured: measured, Formula: formula,
		})
	}
	r.clock += formula
}

// New creates a router for an n×n mesh.
func New(cfg Config) (*Router, error) {
	n := cfg.N
	if n < 1 {
		return nil, fmt.Errorf("clt: invalid n = %d", n)
	}
	if n >= 27 {
		for m := n; m > 27; m /= 3 {
			if m%3 != 0 {
				return nil, fmt.Errorf("clt: n = %d is not a power of 3", n)
			}
		}
	}
	return &Router{cfg: cfg, n: n}, nil
}

// Route routes the permutation and returns the run statistics.
func (r *Router) Route(perm *workload.Permutation) (*Result, error) {
	if err := perm.Validate(); err != nil {
		return nil, err
	}
	topo := grid.NewSquareMesh(r.n)
	r.res = Result{N: r.n}
	r.clock = 0
	r.pkts = r.pkts[:0]
	r.parked = make([]int, r.n*r.n)
	r.byNode = make([][]*pkt, r.n*r.n)
	for i, pr := range perm.Pairs {
		src, dst := topo.CoordOf(pr.Src), topo.CoordOf(pr.Dst)
		if src == dst {
			continue // delivered at placement
		}
		p := &pkt{id: i, cur: src, dst: dst, class: ClassOf(src, dst)}
		r.pkts = append(r.pkts, p)
		r.parked[r.nid(src)]++
	}
	r.res.Packets = len(r.pkts)

	for class := Class(0); class < numClasses; class++ {
		if err := r.routeClass(class); err != nil {
			return nil, err
		}
	}
	for _, p := range r.pkts {
		if !p.done {
			return nil, fmt.Errorf("clt: packet %d undelivered at %v (dst %v)", p.id, p.cur, p.dst)
		}
	}
	res := r.res
	return &res, nil
}

// nid maps a real coordinate to a node index.
func (r *Router) nid(c grid.Coord) int { return c.Y*r.n + c.X }

// noteOccupancy refreshes the peak queue statistic for one node.
func (r *Router) noteOccupancy(id int) {
	occ := len(r.byNode[id]) + r.parked[id]
	if occ > r.res.MaxQueue {
		r.res.MaxQueue = occ
	}
}

// routeClass runs one full pass for a class.
func (r *Router) routeClass(class Class) error {
	// Move this class's packets from parked to active bookkeeping.
	for _, p := range r.pkts {
		if p.class != class || p.done {
			continue
		}
		id := r.nid(p.cur)
		r.parked[id]--
		r.byNode[id] = append(r.byNode[id], p)
		r.noteOccupancy(id)
	}

	iter := 0
	for m := r.n; m >= 27; m /= 3 {
		d := m / 27
		q := QBase
		if r.cfg.ImprovedQ && iter > 0 {
			q = QImproved
		}
		tilings := []int{0}
		if iter > 0 {
			tilings = []int{0, 1, 2}
		}
		// Vertical Phase on each tiling, then Horizontal Phase on each.
		for _, vertical := range []bool{true, false} {
			for _, tau := range tilings {
				if err := r.phase(class, vertical, m, d, q, tau, iter); err != nil {
					return err
				}
			}
		}
		iter++
	}
	if iter > r.res.Iterations {
		r.res.Iterations = iter
	}

	if err := r.baseCase(class, iter > 0); err != nil {
		return err
	}

	// Re-park whatever this class leaves behind (nothing: base case
	// delivers everything, but keep the bookkeeping symmetric).
	for id := range r.byNode {
		for _, p := range r.byNode[id] {
			if !p.done {
				r.parked[id]++
			}
		}
		r.byNode[id] = nil
	}
	return nil
}
