package clt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"meshroute/internal/grid"
	"meshroute/internal/workload"
)

// Property: the algorithm delivers EVERY partial permutation minimally
// within the Theorem 34 bounds, not just full permutations.
func TestQuickPartialPermutations(t *testing.T) {
	n := 27
	f := func(seed int64, densityRaw uint8) bool {
		density := 1 + int(densityRaw)%100 // percent
		rng := rand.New(rand.NewSource(seed))
		full := rng.Perm(n * n)
		perm := &workload.Permutation{}
		for s, d := range full {
			if rng.Intn(100) < density {
				perm.Pairs = append(perm.Pairs, workload.Pair{Src: grid.NodeID(s), Dst: grid.NodeID(d)})
			}
		}
		r, err := New(Config{N: n})
		if err != nil {
			return false
		}
		res, err := r.Route(perm)
		if err != nil {
			t.Logf("seed %d density %d: %v", seed, density, err)
			return false
		}
		return res.TimeFormula <= 972*n && res.MaxQueue <= 834
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-class single-packet instances take exactly the minimal
// number of hops regardless of direction.
func TestQuickSinglePacketAllDirections(t *testing.T) {
	n := 27
	f := func(sx, sy, dx, dy uint8) bool {
		src := grid.XY(int(sx)%n, int(sy)%n)
		dst := grid.XY(int(dx)%n, int(dy)%n)
		topo := grid.NewSquareMesh(n)
		perm := &workload.Permutation{Pairs: []workload.Pair{{Src: topo.ID(src), Dst: topo.ID(dst)}}}
		r, err := New(Config{N: n})
		if err != nil {
			return false
		}
		if _, err := r.Route(perm); err != nil {
			return false
		}
		if src == dst {
			return true
		}
		p := r.pkts[0]
		want := abs(dst.X-src.X) + abs(dst.Y-src.Y)
		return p.done && p.hops == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Directed adversarial-ish instance: all packets into one column (a
// permutation that stresses the balancing lemmas).
func TestColumnConvergence(t *testing.T) {
	n := 27
	topo := grid.NewSquareMesh(n)
	perm := &workload.Permutation{}
	// Row y of column 0..n-1 sends to column (n-1) row y: all traffic
	// converges on the easternmost column, one packet per dest node —
	// legal permutation only if one source per row... use transpose of
	// a single row band: sources in row 0..n-1 of column 3, dests down
	// column n-1.
	for y := 0; y < n; y++ {
		perm.Pairs = append(perm.Pairs, workload.Pair{
			Src: topo.ID(grid.XY(3, y)),
			Dst: topo.ID(grid.XY(n-1, y)),
		})
	}
	r, res := routePerm(t, n, perm, Config{Verify: true})
	checkMinimal(t, r)
	if res.MaxQueue > 834 {
		t.Fatalf("queue %d", res.MaxQueue)
	}
}

// All four orientation passes must carry traffic: a rotation permutation
// moves packets in every direction.
func TestAllClassesExercised(t *testing.T) {
	n := 27
	topo := grid.NewSquareMesh(n)
	perm := workload.Rotation(topo, 13, 17)
	counts := map[Class]int{}
	for _, pr := range perm.Pairs {
		if pr.Src != pr.Dst {
			counts[ClassOf(topo.CoordOf(pr.Src), topo.CoordOf(pr.Dst))]++
		}
	}
	for c := Class(0); c < numClasses; c++ {
		if counts[c] == 0 {
			t.Fatalf("rotation exercises no %v packets", c)
		}
	}
	r, _ := routePerm(t, n, perm, Config{Verify: true})
	checkMinimal(t, r)
}

// The base-case-only path (n < 27) must also be minimal for all classes.
func TestSmallMeshAllClasses(t *testing.T) {
	n := 10
	topo := grid.NewSquareMesh(n)
	perm := workload.Reversal(topo)
	r, _ := routePerm(t, n, perm, Config{})
	for _, p := range r.pkts {
		if !p.done {
			t.Fatal("undelivered")
		}
	}
}

// Worst-case corner flood: the hard permutation family from the adversary
// (all sources in a corner) must still obey Theorem 34.
func TestCornerFlood(t *testing.T) {
	n := 81
	topo := grid.NewSquareMesh(n)
	perm := &workload.Permutation{}
	// 20×20 corner sends to distinct far destinations.
	idx := 0
	for y := 0; y < 20; y++ {
		for x := 0; x < 20; x++ {
			perm.Pairs = append(perm.Pairs, workload.Pair{
				Src: topo.ID(grid.XY(x, y)),
				Dst: topo.ID(grid.XY(n-1-idx%20, n-1-idx/20)),
			})
			idx++
		}
	}
	if err := (perm).Validate(); err != nil {
		t.Fatal(err)
	}
	r, res := routePerm(t, n, perm, Config{Verify: true})
	checkMinimal(t, r)
	if res.TimeFormula > 972*n || res.MaxQueue > 834 {
		t.Fatalf("bounds violated: %+v", res)
	}
}
