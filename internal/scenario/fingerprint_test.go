package scenario

import (
	"math/rand"
	"regexp"
	"testing"
)

// fingerprint is the test helper: it fails the test on error.
func fingerprint(t *testing.T, s *Spec) string {
	t.Helper()
	fp, err := s.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint(%+v): %v", s, err)
	}
	return fp
}

func baseSpec() *Spec {
	return &Spec{
		N:        8,
		K:        2,
		Router:   "dimorder",
		Workload: Workload{Kind: KindRandom, Seed: 7},
	}
}

// TestFingerprintShape pins the output format: 64 lowercase hex digits.
func TestFingerprintShape(t *testing.T) {
	fp := fingerprint(t, baseSpec())
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(fp) {
		t.Fatalf("fingerprint %q is not 64 hex digits", fp)
	}
}

// TestFingerprintSemanticEquality checks that specs differing only in
// spelled-out defaults or presentation fields hash identically.
func TestFingerprintSemanticEquality(t *testing.T) {
	base := fingerprint(t, baseSpec())

	equal := map[string]*Spec{
		"explicit mesh topology": func() *Spec { s := baseSpec(); s.Topology = TopoMesh; return s }(),
		"explicit queue model":   func() *Spec { s := baseSpec(); s.Queues = QueuesCentral; return s }(),
		"name set":               func() *Spec { s := baseSpec(); s.Name = "labelled"; return s }(),
		"metrics/trace outputs": func() *Spec {
			s := baseSpec()
			s.MetricsOut, s.TraceOut = "m.jsonl", "t.jsonl"
			return s
		}(),
		"explicit automatic budget": func() *Spec {
			s := baseSpec()
			s.MaxSteps = 200 * (s.N*s.N/s.K + 2*s.N)
			return s
		}(),
		"explicit router-default invariants": func() *Spec {
			// The dimorder registry Config enables the invariant checker, so
			// spelling that out matches the nil default.
			s := baseSpec()
			s.CheckInvariants = Bool(true)
			return s
		}(),
	}
	for name, s := range equal {
		if fp := fingerprint(t, s); fp != base {
			t.Errorf("%s: fingerprint diverged from base\n got %s\nwant %s", name, fp, base)
		}
	}
}

// TestFingerprintFieldSensitivity checks that every semantic field change
// moves the fingerprint — including the router seed and the workload seed.
func TestFingerprintFieldSensitivity(t *testing.T) {
	base := fingerprint(t, baseSpec())

	changed := map[string]*Spec{
		"n":              func() *Spec { s := baseSpec(); s.N = 10; return s }(),
		"k":              func() *Spec { s := baseSpec(); s.K = 3; return s }(),
		"router":         func() *Spec { s := baseSpec(); s.Router = "zigzag"; return s }(),
		"topology":       func() *Spec { s := baseSpec(); s.Topology = TopoTorus; return s }(),
		"workload kind":  func() *Spec { s := baseSpec(); s.Workload = Workload{Kind: KindTranspose}; return s }(),
		"workload seed":  func() *Spec { s := baseSpec(); s.Workload.Seed = 8; return s }(),
		"max steps":      func() *Spec { s := baseSpec(); s.MaxSteps = 17; return s }(),
		"watchdog":       func() *Spec { s := baseSpec(); s.Watchdog = 500; return s }(),
		"workers":        func() *Spec { s := baseSpec(); s.Workers = 2; return s }(),
		"invariants off": func() *Spec { s := baseSpec(); s.CheckInvariants = Bool(false); return s }(),
		"analysis on":    func() *Spec { s := baseSpec(); s.Analysis = true; return s }(),
		"faults attached": func() *Spec {
			s := baseSpec()
			s.Faults = &Faults{Seed: 1, Horizon: 10, LinkFailures: 1, MeanDownSteps: 5}
			return s
		}(),
		"router seed": func() *Spec {
			s := baseSpec()
			s.Router = "rand-zigzag"
			s.Seed = 12345
			return s
		}(),
		"router seed (other)": func() *Spec {
			s := baseSpec()
			s.Router = "rand-zigzag"
			s.Seed = 12346
			return s
		}(),
	}
	seen := map[string]string{base: "base"}
	for name, s := range changed {
		fp := fingerprint(t, s)
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s: fingerprint collides with %s", name, prev)
		}
		seen[fp] = name
	}
}

// TestFingerprintAnalysisOffStable pins the base spec's fingerprint to the
// value it hashed to before the analysis knob existed. The knob is
// omitempty, so analysis-off specs canonicalize to the same JSON as ever —
// cache keys minted by older builds (internal/service dedupes on the
// fingerprint) stay valid across the upgrade. If this literal ever has to
// change, every cached result keyed by an old fingerprint is orphaned;
// that is a breaking change, not a test update.
func TestFingerprintAnalysisOffStable(t *testing.T) {
	const pinned = "ab36453f4a36bc3fc395a99bc05aba428856a8ffc4fc3b6562378fe1ddb9ca0d"
	if fp := fingerprint(t, baseSpec()); fp != pinned {
		t.Fatalf("analysis-off fingerprint drifted:\n got %s\nwant %s", fp, pinned)
	}
}

// TestFingerprintLargeSeedPrecision guards the canonical encoding against
// float64 round-tripping: seeds that differ only beyond 2^53 must not
// collide.
func TestFingerprintLargeSeedPrecision(t *testing.T) {
	a, b := baseSpec(), baseSpec()
	a.Router, b.Router = "rand-zigzag", "rand-zigzag"
	a.Seed = 1<<62 + 0
	b.Seed = 1<<62 + 1
	if fingerprint(t, a) == fingerprint(t, b) {
		t.Fatal("seeds 2^62 and 2^62+1 collide: canonical JSON lost integer precision")
	}
	a.Seed, b.Seed = 0, 0
	a.Workload.Seed = 1<<60 + 0
	b.Workload.Seed = 1<<60 + 1
	if fingerprint(t, a) == fingerprint(t, b) {
		t.Fatal("workload seeds 2^60 and 2^60+1 collide: canonical JSON lost integer precision")
	}
}

// TestFingerprintDynamicIgnoresBudget checks that max_steps, which exact-
// horizon workloads ignore, does not perturb their fingerprint.
func TestFingerprintDynamicIgnoresBudget(t *testing.T) {
	mk := func(maxSteps int) *Spec {
		return &Spec{
			N: 6, K: 2, Router: "dimorder",
			Workload: Workload{Kind: KindBurst, Horizon: 40},
			MaxSteps: maxSteps,
		}
	}
	if fingerprint(t, mk(0)) != fingerprint(t, mk(9999)) {
		t.Fatal("dynamic workload fingerprint depends on the ignored max_steps")
	}
}

// TestFingerprintInvalidSpec checks the validation error surfaces.
func TestFingerprintInvalidSpec(t *testing.T) {
	s := baseSpec()
	s.Router = "no-such-router"
	if _, err := s.Fingerprint(); err == nil {
		t.Fatal("Fingerprint accepted an invalid spec")
	}
}

// TestFingerprintStableAcrossRoundTrip checks JSON round-tripping (the
// service submission path: client marshals, server parses) preserves the
// fingerprint for arbitrary valid specs.
func TestFingerprintStableAcrossRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		s := randomSpec(rng)
		data, err := s.JSON()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		got, err := Parse(data)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if fingerprint(t, s) != fingerprint(t, got) {
			t.Fatalf("spec %d: fingerprint changed across JSON round trip", i)
		}
	}
}
