// Package scenario is the declarative run layer of the repository: a Spec
// names everything one simulation run needs — topology, queue capacity,
// router (by registry name, including fault-aware variants and the
// randomized router's seed), workload, fault schedule, invariant checking,
// watchdog, engine worker count, step budget and observability outputs —
// with JSON (de)serialization, typed validation errors, and a Build step
// that resolves the router registry into a ready-to-run network.
//
// Every run of the reproduction goes through this layer: the CLIs
// (cmd/meshroute -scenario, cmd/benchjson, cmd/lowerbound,
// cmd/experiments), the experiment cells in internal/experiments, and the
// golden-digest suite, whose pinned scenarios are committed spec files
// under testdata/scenarios/. See docs/ARCHITECTURE.md for how the layers
// stack.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"meshroute"
	"meshroute/internal/analysis"
	"meshroute/internal/fault"
	"meshroute/internal/grid"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

// Topology names accepted by Spec.Topology.
const (
	TopoMesh  = "mesh"
	TopoTorus = "torus"
)

// Queue-model names accepted by Spec.Queues.
const (
	QueuesCentral   = "central"
	QueuesPerInlink = "per-inlink"
)

// Workload kinds accepted by Workload.Kind. The static kinds place every
// packet before step 1; the dynamic kinds (KindBurst, KindBernoulli)
// pre-schedule injections over a horizon and run for exactly that many
// steps.
const (
	KindRandom     = "random"      // uniformly random full permutation (Seed)
	KindRandomDest = "random-dest" // independent uniform destinations (Seed)
	KindTranspose  = "transpose"
	KindReversal   = "reversal"
	KindBitRev     = "bitrev" // power-of-two side required
	KindRotation   = "rotation"
	KindHH         = "hh"    // h random permutations overlaid (H, Seed)
	KindPairs      = "pairs" // explicit source/destination pairs
	KindBurst      = "burst" // deterministic arithmetic injection pattern
	KindBernoulli  = "bernoulli"
	KindOnline     = "online" // streaming arrival process with admission policy
)

// Arrival processes accepted by Workload.Process for the online kind.
const (
	ProcessBernoulli = "bernoulli" // memoryless per-node rate, uniform dest
	ProcessOnOff     = "onoff"     // bursty on/off windows (Burst, Gap)
	ProcessHotspot   = "hotspot"   // all traffic converges on Hotspots nodes
	ProcessTranspose = "transpose" // sustained transpose pattern
)

// Admission policies accepted by Workload.Admission for the online kind.
const (
	AdmissionRetry = "retry" // refused injections wait in the source backlog
	AdmissionDrop  = "drop"  // refused injections are counted and discarded
)

// Workload selects the routing instance of a Spec.
type Workload struct {
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Seed drives the random kinds (random, random-dest, hh, bernoulli).
	Seed int64 `json:"seed,omitempty"`
	// H is the per-node send bound of the hh kind.
	H int `json:"h,omitempty"`
	// DX, DY are the rotation kind's shift.
	DX int `json:"dx,omitempty"`
	DY int `json:"dy,omitempty"`
	// Pairs are the explicit endpoints of the pairs kind.
	Pairs []workload.Pair `json:"pairs,omitempty"`
	// Horizon is the dynamic kinds' injection-and-run window in steps:
	// the run executes exactly Horizon steps. The burst kind injects over
	// the first Horizon/2 steps; bernoulli and online over all of them.
	Horizon int `json:"horizon,omitempty"`
	// Rate is the per-node injection probability per step (bernoulli kind
	// and every online arrival process).
	Rate float64 `json:"rate,omitempty"`
	// Process selects the online kind's arrival process (Process*
	// constants); empty defaults to "bernoulli".
	Process string `json:"process,omitempty"`
	// Admission selects the online kind's policy for injections refused by
	// a full source queue (Admission* constants); empty defaults to
	// "retry".
	Admission string `json:"admission,omitempty"`
	// Drain, for the online kind, keeps the run going after the horizon
	// until the network empties (bounded by the automatic step budget)
	// instead of stopping at exactly Horizon steps.
	Drain bool `json:"drain,omitempty"`
	// Burst and Gap are the onoff process's window lengths in steps.
	Burst int `json:"burst,omitempty"`
	Gap   int `json:"gap,omitempty"`
	// Hotspots is the hotspot process's hot-node count; 0 defaults to 1.
	Hotspots int `json:"hotspots,omitempty"`
}

// Dynamic reports whether the workload schedules injections over time (and
// therefore runs for exactly Horizon steps, unless Drain is set) rather
// than placing packets up front.
func (w Workload) Dynamic() bool {
	return w.Kind == KindBurst || w.Kind == KindBernoulli || w.Kind == KindOnline
}

// ApplyOnlineDefaults materializes the online kind's defaulted knobs in
// place (process "bernoulli", admission "retry", one hotspot for the
// hotspot process). A no-op for every other kind, so fingerprints of
// non-online specs are unchanged; for online specs it makes the defaults
// explicit, so a spec relying on them fingerprints identically to one
// spelling them out (and -dump-scenario prints the materialized values).
func (w *Workload) ApplyOnlineDefaults() {
	if w.Kind != KindOnline {
		return
	}
	if w.Process == "" {
		w.Process = ProcessBernoulli
	}
	if w.Admission == "" {
		w.Admission = AdmissionRetry
	}
	if w.Process == ProcessHotspot && w.Hotspots == 0 {
		w.Hotspots = 1
	}
}

// Faults parameterizes the seeded fault schedule of a Spec; it mirrors
// fault.Config field for field (see internal/fault for semantics).
type Faults struct {
	Seed           int64   `json:"seed,omitempty"`
	Horizon        int     `json:"horizon,omitempty"`
	LinkFailures   int     `json:"link_failures,omitempty"`
	MeanDownSteps  int     `json:"mean_down_steps,omitempty"`
	PermanentFrac  float64 `json:"permanent_frac,omitempty"`
	NodeStalls     int     `json:"node_stalls,omitempty"`
	MeanStallSteps int     `json:"mean_stall_steps,omitempty"`
}

// config converts to the fault package's parameter struct.
func (f *Faults) config() fault.Config {
	return fault.Config{
		Seed:           f.Seed,
		Horizon:        f.Horizon,
		LinkFailures:   f.LinkFailures,
		MeanDownSteps:  f.MeanDownSteps,
		PermanentFrac:  f.PermanentFrac,
		NodeStalls:     f.NodeStalls,
		MeanStallSteps: f.MeanStallSteps,
	}
}

// Spec is one declarative run description. The zero value is invalid;
// populate at least N, K, Router and Workload.Kind. JSON field names are
// the on-disk scenario format (testdata/scenarios/*.json).
type Spec struct {
	// Name labels the scenario (digest keys, table rows). Optional.
	Name string `json:"name,omitempty"`
	// Topology is "mesh" (the default when empty) or "torus".
	Topology string `json:"topology,omitempty"`
	// N is the side length of the square topology.
	N int `json:"n"`
	// K is the per-queue capacity passed to the router's Config.
	K int `json:"k"`
	// Router is the registry name (meshroute.RouterNames).
	Router string `json:"router"`
	// FaultAware selects the router's fault-aware variant.
	FaultAware bool `json:"fault_aware,omitempty"`
	// Seed seeds a randomized router's decision stream (rand-zigzag);
	// nonzero on a deterministic router is a validation error.
	Seed uint64 `json:"seed,omitempty"`
	// Queues optionally asserts the queue model ("central"/"per-inlink");
	// a value conflicting with the router's required model is a
	// validation error. Empty accepts the router's model.
	Queues string `json:"queues,omitempty"`
	// CheckInvariants overrides the router Config's invariant-checker
	// setting; nil keeps the router's default.
	CheckInvariants *bool `json:"check_invariants,omitempty"`
	// Workload is the routing instance.
	Workload Workload `json:"workload"`
	// Analysis computes the workload's congestion C and dilation D (the
	// Rothvoß C+D yardstick, see docs/ANALYSIS.md) and reports the
	// efficiency ratio makespan/(C+D) in the run's stats and metrics
	// JSONL. Static workloads analyze their path system at build time;
	// dynamic workloads accrue C/D at admission time. Off by default —
	// analysis-off runs pay one nil check per admission and fingerprint
	// identically to specs predating the knob.
	Analysis bool `json:"analysis,omitempty"`
	// Faults, when non-nil, generates a seeded fault schedule for the run.
	Faults *Faults `json:"faults,omitempty"`
	// Watchdog is the livelock no-progress window in steps (0 = off).
	Watchdog int `json:"watchdog,omitempty"`
	// Workers is the engine's intra-step worker count (sim.Config.Workers).
	Workers int `json:"workers,omitempty"`
	// MaxSteps is the step budget; 0 means the generous automatic budget
	// 200·(n²/k + 2n). Ignored by dynamic workloads, which run for
	// exactly Workload.Horizon steps.
	MaxSteps int `json:"max_steps,omitempty"`
	// MetricsOut, when set, writes per-step metrics JSONL to this path.
	MetricsOut string `json:"metrics_out,omitempty"`
	// TraceOut, when set, writes a JSON-lines step trace to this path.
	TraceOut string `json:"trace_out,omitempty"`
}

// Bool returns a pointer for Spec.CheckInvariants literals.
func Bool(b bool) *bool { return &b }

// ValidationError reports a single invalid Spec field. Field is the JSON
// path of the offending field (e.g. "workload.kind").
type ValidationError struct {
	// Field is the JSON path of the invalid field.
	Field string
	// Reason explains the constraint that failed.
	Reason string
}

// Error implements error.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("scenario: invalid %s: %s", e.Field, e.Reason)
}

func invalid(field, format string, args ...any) *ValidationError {
	return &ValidationError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// queueModelName maps a sim queue model to its spec name.
func queueModelName(q sim.QueueModel) string {
	if q == sim.PerInlinkQueues {
		return QueuesPerInlink
	}
	return QueuesCentral
}

// Validate checks the Spec without building anything. It returns a
// *ValidationError naming the first offending field, or nil.
func (s *Spec) Validate() error {
	switch s.Topology {
	case "", TopoMesh, TopoTorus:
	default:
		return invalid("topology", "unknown topology %q (want %q or %q)", s.Topology, TopoMesh, TopoTorus)
	}
	if s.N < 1 {
		return invalid("n", "side length %d, need n >= 1", s.N)
	}
	if s.K < 1 {
		return invalid("k", "queue capacity %d, need k >= 1", s.K)
	}
	rspec, err := meshroute.LookupRouter(s.Router)
	if err != nil {
		return invalid("router", "unknown router %q (have %v)", s.Router, meshroute.RouterNames())
	}
	if s.FaultAware && rspec.NewFaultAware == nil {
		return invalid("fault_aware", "router %q has no fault-aware variant", s.Router)
	}
	if s.Seed != 0 && rspec.NewSeeded == nil {
		return invalid("seed", "router %q is deterministic and takes no seed", s.Router)
	}
	switch s.Queues {
	case "":
	case QueuesCentral, QueuesPerInlink:
		if want := queueModelName(rspec.Queues); s.Queues != want {
			return invalid("queues", "router %q requires the %q queue model, spec says %q", s.Router, want, s.Queues)
		}
	default:
		return invalid("queues", "unknown queue model %q (want %q or %q)", s.Queues, QueuesCentral, QueuesPerInlink)
	}
	if rspec.Offline && s.Workload.Dynamic() {
		return invalid("router", "router %q is offline (precomputes its schedule before step 1) and cannot run the dynamic workload kind %q", s.Router, s.Workload.Kind)
	}
	if s.Watchdog < 0 {
		return invalid("watchdog", "negative window %d", s.Watchdog)
	}
	if s.Workers < 0 {
		return invalid("workers", "negative worker count %d", s.Workers)
	}
	if s.MaxSteps < 0 {
		return invalid("max_steps", "negative budget %d", s.MaxSteps)
	}
	if err := s.validateWorkload(); err != nil {
		return err
	}
	if f := s.Faults; f != nil {
		if f.LinkFailures < 0 || f.NodeStalls < 0 {
			return invalid("faults", "negative episode count")
		}
		if f.PermanentFrac < 0 || f.PermanentFrac > 1 {
			return invalid("faults.permanent_frac", "%v outside [0, 1]", f.PermanentFrac)
		}
		if (f.LinkFailures > 0 || f.NodeStalls > 0) && f.Horizon < 1 {
			return invalid("faults.horizon", "horizon %d, need >= 1 when episodes are scheduled", f.Horizon)
		}
	}
	return nil
}

func (s *Spec) validateWorkload() error {
	w := s.Workload
	switch w.Kind {
	case KindRandom, KindRandomDest, KindTranspose, KindReversal, KindRotation:
	case KindBitRev:
		if s.N&(s.N-1) != 0 {
			return invalid("workload.kind", "bitrev needs a power-of-two side, n=%d", s.N)
		}
	case KindHH:
		if w.H < 1 {
			return invalid("workload.h", "h-h workload needs h >= 1, got %d", w.H)
		}
	case KindPairs:
		if len(w.Pairs) == 0 {
			return invalid("workload.pairs", "pairs workload with no pairs")
		}
		max := grid.NodeID(s.N * s.N)
		for i, p := range w.Pairs {
			if p.Src < 0 || p.Src >= max || p.Dst < 0 || p.Dst >= max {
				return invalid("workload.pairs", "pair %d (%d->%d) outside the %d-node topology", i, p.Src, p.Dst, max)
			}
		}
	case KindBurst:
		if w.Horizon < 1 {
			return invalid("workload.horizon", "burst workload needs horizon >= 1, got %d", w.Horizon)
		}
	case KindBernoulli:
		if w.Horizon < 1 {
			return invalid("workload.horizon", "bernoulli workload needs horizon >= 1, got %d", w.Horizon)
		}
		if w.Rate <= 0 || w.Rate > 1 {
			return invalid("workload.rate", "rate %v outside (0, 1]", w.Rate)
		}
	case KindOnline:
		if w.Horizon < 1 {
			return invalid("workload.horizon", "online workload needs horizon >= 1, got %d", w.Horizon)
		}
		if w.Rate <= 0 || w.Rate > 1 {
			return invalid("workload.rate", "rate %v outside (0, 1]", w.Rate)
		}
		switch w.Process {
		case "", ProcessBernoulli, ProcessHotspot, ProcessTranspose:
		case ProcessOnOff:
			if w.Burst < 1 {
				return invalid("workload.burst", "onoff process needs burst >= 1, got %d", w.Burst)
			}
			if w.Gap < 1 {
				return invalid("workload.gap", "onoff process needs gap >= 1, got %d", w.Gap)
			}
		default:
			return invalid("workload.process", "unknown arrival process %q", w.Process)
		}
		switch w.Admission {
		case "", AdmissionRetry, AdmissionDrop:
		default:
			return invalid("workload.admission", "unknown admission policy %q (want %q or %q)", w.Admission, AdmissionRetry, AdmissionDrop)
		}
		if w.Hotspots < 0 {
			return invalid("workload.hotspots", "negative hotspot count %d", w.Hotspots)
		}
		if w.Hotspots > 0 && w.Process != ProcessHotspot {
			return invalid("workload.hotspots", "hotspots set but process is %q, not %q", w.Process, ProcessHotspot)
		}
		if (w.Burst != 0 || w.Gap != 0) && w.Process != ProcessOnOff {
			return invalid("workload.burst", "burst/gap set but process is %q, not %q", w.Process, ProcessOnOff)
		}
	case "":
		return invalid("workload.kind", "missing workload kind")
	default:
		return invalid("workload.kind", "unknown workload kind %q", w.Kind)
	}
	if w.Kind != KindOnline {
		switch {
		case w.Process != "":
			return invalid("workload.process", "process is an online-kind knob, kind is %q", w.Kind)
		case w.Admission != "":
			return invalid("workload.admission", "admission is an online-kind knob, kind is %q", w.Kind)
		case w.Drain:
			return invalid("workload.drain", "drain is an online-kind knob, kind is %q", w.Kind)
		case w.Burst != 0 || w.Gap != 0:
			return invalid("workload.burst", "burst/gap are online-kind knobs, kind is %q", w.Kind)
		case w.Hotspots != 0:
			return invalid("workload.hotspots", "hotspots is an online-kind knob, kind is %q", w.Kind)
		}
	}
	return nil
}

// Run is a built, ready-to-execute scenario: the validated network with
// its workload placed (or injections scheduled), the algorithm factory,
// and the step budget. Execute it with a Runner, or drive Net directly.
type Run struct {
	// Spec is the source spec.
	Spec *Spec
	// Net is the network, populated and ready for step 1.
	Net *sim.Network
	// NewAlg creates the (resolved) routing algorithm.
	NewAlg func() sim.Algorithm
	// Budget is the step budget of the run.
	Budget int
	// Exact makes the run execute exactly Budget steps instead of
	// stopping at delivery (dynamic workloads).
	Exact bool
	// Faults is the generated fault schedule, or nil.
	Faults *fault.Schedule
	// Analysis, when the spec set "analysis": true, yields the workload's
	// congestion/dilation: for static workloads it closes over the path
	// system analyzed at build time, for dynamic workloads over the
	// admission-time accumulator installed on Net (read it only after the
	// run). Nil when analysis is off.
	Analysis func() analysis.Result
}

// Build validates the Spec, resolves the router registry, generates the
// fault schedule, constructs the network and applies the workload. The
// returned Run is ready for a Runner.
func (s *Spec) Build() (*Run, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var topo grid.Topology
	if s.Topology == TopoTorus {
		topo = grid.NewSquareTorus(s.N)
	} else {
		topo = grid.NewSquareMesh(s.N)
	}
	rspec, err := meshroute.LookupRouter(s.Router)
	if err != nil {
		return nil, err
	}
	cfg := rspec.Config(topo, s.K)
	if s.CheckInvariants != nil {
		cfg.CheckInvariants = *s.CheckInvariants
	}
	cfg.Watchdog = s.Watchdog
	cfg.Workers = s.Workers
	var sched *fault.Schedule
	if s.Faults != nil {
		sched, err = fault.Generate(topo, s.Faults.config())
		if err != nil {
			return nil, fmt.Errorf("scenario %s: faults: %w", s.describe(), err)
		}
		cfg.Faults = sched
	}
	net, err := sim.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.describe(), err)
	}
	budget, analyze, err := s.applyWorkload(net, topo)
	if err != nil {
		return nil, err
	}
	newAlg := rspec.New
	switch {
	case s.Seed != 0:
		seed, fa := s.Seed, s.FaultAware
		newAlg = func() sim.Algorithm { return rspec.NewSeeded(seed, fa) }
	case s.FaultAware:
		newAlg = rspec.NewFaultAware
	}
	return &Run{
		Spec:     s,
		Net:      net,
		NewAlg:   newAlg,
		Budget:   budget,
		Exact:    s.Workload.Dynamic() && !s.Workload.Drain,
		Faults:   sched,
		Analysis: analyze,
	}, nil
}

// StepBudget returns the run's step budget as Build computes it: MaxSteps
// (or the generous automatic budget 200·(n²/k + 2n) when zero) for static
// workloads; exactly Horizon for dynamic ones; Horizon plus the static
// budget for an online workload with Drain, which keeps stepping past the
// horizon until the network empties.
func (s *Spec) StepBudget() int {
	auto := s.MaxSteps
	if auto == 0 {
		auto = 200 * (s.N*s.N/s.K + 2*s.N)
	}
	w := s.Workload
	if !w.Dynamic() {
		return auto
	}
	if w.Kind == KindOnline && w.Drain {
		return w.Horizon + auto
	}
	return w.Horizon
}

// applyWorkload places or schedules the Spec's workload and returns the
// run's step budget and, when the analysis knob is on, the function
// yielding the workload's congestion/dilation (see Run.Analysis).
func (s *Spec) applyWorkload(net *sim.Network, topo grid.Topology) (int, func() analysis.Result, error) {
	w := s.Workload
	// Dynamic workloads accrue C/D at admission time: the accumulator
	// must be installed before AttachSource, whose step-0 injections
	// already count.
	var analyze func() analysis.Result
	if s.Analysis && w.Dynamic() {
		acc := analysis.NewAccumulator(topo)
		net.SetAnalyzer(acc)
		analyze = acc.Result
	}
	var perm *workload.Permutation
	switch w.Kind {
	case KindRandom:
		perm = workload.Random(topo, w.Seed)
	case KindRandomDest:
		perm = workload.RandomDestinations(topo, w.Seed)
	case KindTranspose:
		perm = workload.Transpose(topo)
	case KindReversal:
		perm = workload.Reversal(topo)
	case KindBitRev:
		perm = workload.BitReversal(topo)
	case KindRotation:
		perm = workload.Rotation(topo, w.DX, w.DY)
	case KindHH:
		hh := workload.RandomHH(topo, w.H, w.Seed)
		perm = &workload.Permutation{Pairs: hh.Pairs}
	case KindPairs:
		perm = &workload.Permutation{Pairs: w.Pairs}
	case KindBurst:
		// Bursty deterministic arithmetic pattern (no RNG) over the first
		// half of the horizon: node id injects at steps congruent to
		// id mod 7, toward a shifted destination. This is the pinned
		// pattern of the dynamic golden-digest scenarios, now streamed
		// lazily through the Source contract (bit-identical to the old
		// pre-scheduled QueueInjection loop).
		if err := net.AttachSource(workload.NewBurst(s.N*s.N, w.Horizon), sim.AdmitRetry); err != nil {
			return 0, nil, fmt.Errorf("scenario %s: attach workload: %w", s.describe(), err)
		}
		return s.StepBudget(), analyze, nil
	case KindBernoulli:
		// Each node sources a packet with probability Rate per step,
		// uniform destination; the stream is pinned by the seed under the
		// Source contract, so the run is exactly reproducible.
		if err := net.AttachSource(workload.NewBernoulli(s.N*s.N, w.Rate, w.Horizon, w.Seed), sim.AdmitRetry); err != nil {
			return 0, nil, fmt.Errorf("scenario %s: attach workload: %w", s.describe(), err)
		}
		return s.StepBudget(), analyze, nil
	case KindOnline:
		w.ApplyOnlineDefaults()
		var src workload.Source
		switch w.Process {
		case ProcessBernoulli:
			src = workload.NewBernoulli(s.N*s.N, w.Rate, w.Horizon, w.Seed)
		case ProcessOnOff:
			src = workload.NewOnOff(s.N*s.N, w.Rate, w.Burst, w.Gap, w.Horizon, w.Seed)
		case ProcessHotspot:
			src = workload.NewHotspot(topo, w.Hotspots, w.Rate, w.Horizon, w.Seed)
		case ProcessTranspose:
			src = workload.NewTransposeStream(topo, w.Rate, w.Horizon, w.Seed)
		default:
			return 0, nil, invalid("workload.process", "unknown arrival process %q", w.Process)
		}
		policy := sim.AdmitRetry
		if w.Admission == AdmissionDrop {
			policy = sim.AdmitDrop
		}
		if err := net.AttachSource(src, policy); err != nil {
			return 0, nil, fmt.Errorf("scenario %s: attach workload: %w", s.describe(), err)
		}
		return s.StepBudget(), analyze, nil
	default:
		return 0, nil, invalid("workload.kind", "unknown workload kind %q", w.Kind)
	}
	if err := perm.Place(net); err != nil {
		return 0, nil, fmt.Errorf("scenario %s: place workload: %w", s.describe(), err)
	}
	// Static workloads are analyzed exactly: the whole demand set is known
	// up front, so the path system (canonical plus the greedy improvement
	// pass) is built once here and its C/D read out lazily.
	if s.Analysis {
		demands := make([]analysis.Demand, len(perm.Pairs))
		for i, pr := range perm.Pairs {
			demands[i] = analysis.Demand{Src: pr.Src, Dst: pr.Dst}
		}
		analyze = analysis.Analyze(topo, demands).Result
	}
	return s.StepBudget(), analyze, nil
}

// describe labels the spec in error messages.
func (s *Spec) describe() string {
	if s.Name != "" {
		return s.Name
	}
	return fmt.Sprintf("%s-n%d-k%d", s.Router, s.N, s.K)
}

// Parse decodes one Spec from JSON. Unknown fields are an error, so typos
// in hand-written scenario files fail loudly; the decoded spec is
// validated before it is returned.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads, parses and validates a scenario file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// JSON renders the Spec as indented JSON with a trailing newline — the
// committed scenario-file format.
func (s *Spec) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Write writes the Spec's JSON form.
func (s *Spec) Write(w io.Writer) error {
	data, err := s.JSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}
