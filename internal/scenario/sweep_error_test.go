package scenario

import (
	"context"
	"errors"
	"strings"
	"testing"

	"meshroute/internal/obs"
)

// TestSweepMidBatchFailure checks that a spec failing validation partway
// through a sweep surfaces as an indexed, typed error while the healthy
// cells still produce results.
func TestSweepMidBatchFailure(t *testing.T) {
	specs := []*Spec{
		{Name: "ok-a", N: 6, K: 2, Router: "dimorder", Workload: Workload{Kind: KindTranspose}},
		{Name: "broken", N: 6, K: 2, Router: "dimorder", Workload: Workload{Kind: "no-such-kind"}},
		{Name: "ok-b", N: 6, K: 1, Router: "thm15", Workload: Workload{Kind: KindReversal}},
	}
	var r Runner
	results, err := r.Sweep(context.Background(), specs)
	if err == nil {
		t.Fatal("sweep with an invalid spec returned no error")
	}
	if !strings.Contains(err.Error(), "sweep spec 1 (broken)") {
		t.Fatalf("error does not name the failing spec index: %v", err)
	}
	var verr *ValidationError
	if !errors.As(err, &verr) || verr.Field != "workload.kind" {
		t.Fatalf("underlying *ValidationError not reachable: %v", err)
	}
	if len(results) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(results), len(specs))
	}
	if results[1] != nil {
		t.Fatal("failed cell produced a result")
	}
	for _, i := range []int{0, 2} {
		if results[i] == nil || results[i].Err != nil || !results[i].Stats.Done {
			t.Fatalf("healthy cell %d did not complete: %+v", i, results[i])
		}
	}
}

// TestSweepFirstErrorWins checks that with several failing cells the
// lowest-index failure is the one reported.
func TestSweepFirstErrorWins(t *testing.T) {
	bad := func(name string) *Spec {
		return &Spec{Name: name, N: 6, K: 2, Router: "dimorder", Workload: Workload{Kind: "bogus"}}
	}
	specs := []*Spec{
		{Name: "ok", N: 6, K: 2, Router: "dimorder", Workload: Workload{Kind: KindTranspose}},
		bad("first-broken"),
		bad("second-broken"),
	}
	var r Runner
	_, err := r.Sweep(context.Background(), specs)
	if err == nil || !strings.Contains(err.Error(), "sweep spec 1 (first-broken)") {
		t.Fatalf("expected the index-1 failure to win, got: %v", err)
	}
}

// TestRunnerSinkAttachment checks that Runner.Sink receives the run's
// per-step samples without a metrics_out file configured.
func TestRunnerSinkAttachment(t *testing.T) {
	mem := &obs.Memory{}
	r := Runner{Sink: mem}
	res, err := r.Run(context.Background(), &Spec{
		N: 6, K: 2, Router: "dimorder", Workload: Workload{Kind: KindTranspose},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || !res.Stats.Done {
		t.Fatalf("run did not complete: %+v", res)
	}
	if len(mem.Steps) != res.Steps {
		t.Fatalf("sink saw %d samples over %d steps", len(mem.Steps), res.Steps)
	}
	if mem.Steps[len(mem.Steps)-1].DeliveredTotal != res.Stats.Delivered {
		t.Fatalf("delivery curve tail %d != delivered %d",
			mem.Steps[len(mem.Steps)-1].DeliveredTotal, res.Stats.Delivered)
	}
}
