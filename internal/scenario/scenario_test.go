package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

// randomSpec draws a valid Spec: router, topology, workload kind and the
// optional knobs are all sampled, so round-tripping covers the whole
// format, including fields that marshal with omitempty.
func randomSpec(rng *rand.Rand) *Spec {
	routers := []string{"dimorder", "zigzag", "thm15", "farthest-first", "hot-potato", "rand-zigzag", "stray-dimorder"}
	s := &Spec{
		Name:     "prop",
		N:        4 + rng.Intn(8),
		K:        1 + rng.Intn(4),
		Router:   routers[rng.Intn(len(routers))],
		Workload: Workload{Kind: KindTranspose},
	}
	if rng.Intn(2) == 0 {
		s.Topology = []string{TopoMesh, TopoTorus}[rng.Intn(2)]
	}
	switch rng.Intn(7) {
	case 0:
		s.Workload = Workload{Kind: KindRandom, Seed: rng.Int63n(1000)}
	case 1:
		s.Workload = Workload{Kind: KindHH, H: 1 + rng.Intn(3), Seed: rng.Int63n(1000)}
	case 2:
		s.Workload = Workload{Kind: KindRotation, DX: rng.Intn(3), DY: rng.Intn(3)}
	case 3:
		s.Workload = Workload{Kind: KindBurst, Horizon: 10 + rng.Intn(100)}
	case 4:
		s.Workload = Workload{Kind: KindBernoulli, Horizon: 10 + rng.Intn(100), Seed: rng.Int63n(1000), Rate: 0.1 + 0.8*rng.Float64()}
	case 5:
		s.Workload = Workload{Kind: KindPairs, Pairs: []workload.Pair{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}}
	case 6:
		s.Workload = Workload{Kind: KindOnline, Horizon: 10 + rng.Intn(100), Seed: rng.Int63n(1000), Rate: 0.1 + 0.8*rng.Float64()}
		switch rng.Intn(4) {
		case 0:
			s.Workload.Process = ProcessBernoulli
		case 1:
			s.Workload.Process = ProcessOnOff
			s.Workload.Burst = 1 + rng.Intn(8)
			s.Workload.Gap = 1 + rng.Intn(8)
		case 2:
			s.Workload.Process = ProcessHotspot
			s.Workload.Hotspots = 1 + rng.Intn(3)
		case 3:
			s.Workload.Process = ProcessTranspose
		}
		if rng.Intn(2) == 0 {
			s.Workload.Admission = []string{AdmissionRetry, AdmissionDrop}[rng.Intn(2)]
		}
		if rng.Intn(2) == 0 {
			s.Workload.Drain = true
		}
	}
	if s.Router == "rand-zigzag" && rng.Intn(2) == 0 {
		s.Seed = rng.Uint64()
	}
	if s.Router == "zigzag" && rng.Intn(2) == 0 {
		s.FaultAware = true
	}
	if rng.Intn(3) == 0 {
		s.CheckInvariants = Bool(rng.Intn(2) == 0)
	}
	if rng.Intn(3) == 0 {
		s.Faults = &Faults{Seed: rng.Int63n(100), Horizon: 1 + rng.Intn(50), LinkFailures: rng.Intn(5), MeanDownSteps: 1 + rng.Intn(10)}
	}
	if rng.Intn(3) == 0 {
		s.Watchdog = 100 + rng.Intn(1000)
	}
	if rng.Intn(3) == 0 {
		s.Workers = rng.Intn(4)
	}
	if rng.Intn(3) == 0 {
		s.MaxSteps = 1000 + rng.Intn(5000)
	}
	return s
}

// TestSpecJSONRoundTrip is the format's property test: any valid Spec
// survives JSON() → Parse unchanged, including pointer fields and nested
// structs.
func TestSpecJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		s := randomSpec(rng)
		data, err := s.JSON()
		if err != nil {
			t.Fatalf("spec %d: marshal: %v", i, err)
		}
		got, err := Parse(data)
		if err != nil {
			t.Fatalf("spec %d: parse %s: %v", i, data, err)
		}
		want, _ := json.Marshal(s)
		back, _ := json.Marshal(got)
		if string(want) != string(back) {
			t.Fatalf("spec %d: round trip changed the spec:\n in: %s\nout: %s", i, want, back)
		}
	}
}

// TestValidate is the typed-error table: each bad spec fails with a
// *ValidationError naming the offending field.
func TestValidate(t *testing.T) {
	base := func() *Spec {
		return &Spec{N: 8, K: 2, Router: "dimorder", Workload: Workload{Kind: KindTranspose}}
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
		field  string
	}{
		{"bad router", func(s *Spec) { s.Router = "warp-drive" }, "router"},
		{"k below 1", func(s *Spec) { s.K = 0 }, "k"},
		{"n below 1", func(s *Spec) { s.N = 0 }, "n"},
		{"bad topology", func(s *Spec) { s.Topology = "hypercube" }, "topology"},
		{"conflicting queue model", func(s *Spec) { s.Queues = QueuesPerInlink }, "queues"},
		{"unknown queue model", func(s *Spec) { s.Queues = "elastic" }, "queues"},
		{"seed on deterministic router", func(s *Spec) { s.Seed = 7 }, "seed"},
		{"fault-aware without variant", func(s *Spec) { s.FaultAware = true }, "fault_aware"},
		{"missing workload kind", func(s *Spec) { s.Workload.Kind = "" }, "workload.kind"},
		{"unknown workload kind", func(s *Spec) { s.Workload.Kind = "avalanche" }, "workload.kind"},
		{"bitrev on non-power-of-two", func(s *Spec) { s.N = 12; s.Workload.Kind = KindBitRev }, "workload.kind"},
		{"hh without h", func(s *Spec) { s.Workload.Kind = KindHH }, "workload.h"},
		{"empty pairs", func(s *Spec) { s.Workload = Workload{Kind: KindPairs} }, "workload.pairs"},
		{"pair out of range", func(s *Spec) {
			s.Workload = Workload{Kind: KindPairs, Pairs: []workload.Pair{{Src: 0, Dst: 64}}}
		}, "workload.pairs"},
		{"burst without horizon", func(s *Spec) { s.Workload = Workload{Kind: KindBurst} }, "workload.horizon"},
		{"bernoulli rate above 1", func(s *Spec) {
			s.Workload = Workload{Kind: KindBernoulli, Horizon: 10, Rate: 1.5}
		}, "workload.rate"},
		{"bernoulli rate zero", func(s *Spec) {
			s.Workload = Workload{Kind: KindBernoulli, Horizon: 10}
		}, "workload.rate"},
		{"online without horizon", func(s *Spec) {
			s.Workload = Workload{Kind: KindOnline, Rate: 0.1}
		}, "workload.horizon"},
		{"online rate zero", func(s *Spec) {
			s.Workload = Workload{Kind: KindOnline, Horizon: 10}
		}, "workload.rate"},
		{"online rate above 1", func(s *Spec) {
			s.Workload = Workload{Kind: KindOnline, Horizon: 10, Rate: 1.2}
		}, "workload.rate"},
		{"online unknown process", func(s *Spec) {
			s.Workload = Workload{Kind: KindOnline, Horizon: 10, Rate: 0.1, Process: "poissonish"}
		}, "workload.process"},
		{"online onoff without burst", func(s *Spec) {
			s.Workload = Workload{Kind: KindOnline, Horizon: 10, Rate: 0.1, Process: ProcessOnOff, Gap: 3}
		}, "workload.burst"},
		{"online onoff without gap", func(s *Spec) {
			s.Workload = Workload{Kind: KindOnline, Horizon: 10, Rate: 0.1, Process: ProcessOnOff, Burst: 3}
		}, "workload.gap"},
		{"online unknown admission", func(s *Spec) {
			s.Workload = Workload{Kind: KindOnline, Horizon: 10, Rate: 0.1, Admission: "bounce"}
		}, "workload.admission"},
		{"online hotspots on bernoulli process", func(s *Spec) {
			s.Workload = Workload{Kind: KindOnline, Horizon: 10, Rate: 0.1, Process: ProcessBernoulli, Hotspots: 2}
		}, "workload.hotspots"},
		{"process on static kind", func(s *Spec) { s.Workload.Process = ProcessBernoulli }, "workload.process"},
		{"admission on static kind", func(s *Spec) { s.Workload.Admission = AdmissionDrop }, "workload.admission"},
		{"drain on static kind", func(s *Spec) { s.Workload.Drain = true }, "workload.drain"},
		{"burst knob on static kind", func(s *Spec) { s.Workload.Burst = 2 }, "workload.burst"},
		{"hotspots on static kind", func(s *Spec) { s.Workload.Hotspots = 1 }, "workload.hotspots"},
		{"offline router on dynamic workload", func(s *Spec) {
			s.Router = "scheduled"
			s.Workload = Workload{Kind: KindBurst, Horizon: 40}
		}, "router"},
		{"offline router on per-inlink queues", func(s *Spec) {
			s.Router = "scheduled"
			s.Queues = QueuesPerInlink
		}, "queues"},
		{"negative watchdog", func(s *Spec) { s.Watchdog = -1 }, "watchdog"},
		{"negative workers", func(s *Spec) { s.Workers = -2 }, "workers"},
		{"negative budget", func(s *Spec) { s.MaxSteps = -5 }, "max_steps"},
		{"permanent fraction above 1", func(s *Spec) {
			s.Faults = &Faults{LinkFailures: 1, Horizon: 10, PermanentFrac: 2}
		}, "faults.permanent_frac"},
		{"faults without horizon", func(s *Spec) { s.Faults = &Faults{LinkFailures: 3} }, "faults.horizon"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(s)
			err := s.Validate()
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("want *ValidationError, got %v", err)
			}
			if verr.Field != tc.field {
				t.Fatalf("want field %q, got %q (%v)", tc.field, verr.Field, verr)
			}
			if _, err := s.Build(); !errors.As(err, &verr) {
				t.Fatalf("Build should surface the same validation error, got %v", err)
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base spec should validate: %v", err)
	}
}

// TestValidQueueAssertion checks that the queues field accepts the router's
// actual model.
func TestValidQueueAssertion(t *testing.T) {
	s := &Spec{N: 8, K: 1, Router: "thm15", Queues: QueuesPerInlink, Workload: Workload{Kind: KindTranspose}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestParseRejectsUnknownFields makes typos in scenario files loud.
func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"n": 8, "k": 2, "router": "dimorder", "max_stepz": 100, "workload": {"kind": "transpose"}}`))
	if err == nil || !strings.Contains(err.Error(), "max_stepz") {
		t.Fatalf("want unknown-field error naming max_stepz, got %v", err)
	}
}

// TestBuildAndRun runs a small scenario end to end through the Runner and
// checks the statistics are coherent.
func TestBuildAndRun(t *testing.T) {
	s := &Spec{N: 8, K: 2, Router: "zigzag", Workload: Workload{Kind: KindTranspose}}
	var r Runner
	res, err := r.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("run aborted: %v", res.Err)
	}
	if !res.Stats.Done || res.Stats.Delivered != res.Stats.Total || res.Stats.Total == 0 {
		t.Fatalf("incoherent stats: %+v", res.Stats)
	}
	if res.Stats.MaxQueue > 2 {
		t.Fatalf("queue bound k=2 violated: MaxQueue=%d", res.Stats.MaxQueue)
	}
}

// TestBuildAndRunOnline runs an online scenario end to end and checks the
// admission and throughput statistics the refactor added: the run executes
// exactly the horizon (no drain), every offered packet is accounted for as
// admitted, refused-and-retried, or dropped, and the competitive-throughput
// numbers are populated.
func TestBuildAndRunOnline(t *testing.T) {
	for _, admission := range []string{AdmissionRetry, AdmissionDrop} {
		t.Run(admission, func(t *testing.T) {
			s := &Spec{N: 8, K: 2, Router: "dimorder", Workload: Workload{
				Kind: KindOnline, Horizon: 120, Rate: 0.05, Seed: 3, Admission: admission,
			}}
			var r Runner
			res, err := r.Run(context.Background(), s)
			if err != nil {
				t.Fatal(err)
			}
			if res.Err != nil {
				t.Fatalf("run aborted: %v", res.Err)
			}
			if res.Steps != 120 {
				t.Fatalf("online run without drain must execute exactly the horizon, ran %d", res.Steps)
			}
			st := res.Stats
			if !st.Online {
				t.Fatalf("online run must mark Stats.Online: %+v", st)
			}
			if st.Offered <= 0 || st.Admitted <= 0 {
				t.Fatalf("no admissions recorded: %+v", st)
			}
			if st.Total != st.Admitted {
				t.Fatalf("materialized packets %d != admitted %d", st.Total, st.Admitted)
			}
			if admission == AdmissionRetry && st.Dropped != 0 {
				t.Fatalf("retry policy must never drop, dropped %d", st.Dropped)
			}
			if admission == AdmissionDrop && st.Offered != st.Admitted+st.Dropped {
				t.Fatalf("drop accounting leak: offered %d, admitted %d, dropped %d", st.Offered, st.Admitted, st.Dropped)
			}
			if st.Throughput <= 0 {
				t.Fatalf("throughput not populated: %+v", st)
			}
			if st.Delivered > 0 && (st.DelayP50 < 0 || st.DelayP95 < st.DelayP50 || st.DelayP99 < st.DelayP95) {
				t.Fatalf("delay percentiles out of order: p50=%v p95=%v p99=%v", st.DelayP50, st.DelayP95, st.DelayP99)
			}
			if rr := st.RefusalRate(); rr < 0 || rr > 1 {
				t.Fatalf("refusal rate outside [0,1]: %v", rr)
			}
		})
	}
}

// TestRunnerSeededRouter checks that Spec.Seed changes the randomized
// router's decision stream (and that seed 0 matches the registry default).
func TestRunnerSeededRouter(t *testing.T) {
	run := func(seed uint64) int {
		s := &Spec{N: 10, K: 2, Router: "rand-zigzag", Seed: seed, Workload: Workload{Kind: KindReversal}}
		var r Runner
		res, err := r.Run(context.Background(), s)
		if err != nil || res.Err != nil {
			t.Fatalf("seed %d: %v %v", seed, err, res.Err)
		}
		return res.Stats.Makespan
	}
	base := run(0)
	differs := false
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		if run(seed) != base {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("five distinct seeds all reproduced the seed-0 makespan; seeding appears dead")
	}
}

// TestRunnerCancellation checks that a canceled context stops the run
// between steps with partial diagnostics, on both execution paths.
func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, s := range map[string]*Spec{
		"fast path":         {N: 16, K: 2, Router: "dimorder", Workload: Workload{Kind: KindTranspose}},
		"instrumented path": {N: 12, K: 2, Router: "dimorder", Workload: Workload{Kind: KindBurst, Horizon: 200}},
	} {
		t.Run(name, func(t *testing.T) {
			var r Runner
			res, err := r.Run(ctx, s)
			if err != nil {
				t.Fatal(err)
			}
			var cerr *sim.CanceledError
			if !errors.As(res.Err, &cerr) {
				t.Fatalf("want *sim.CanceledError, got %v", res.Err)
			}
			if !res.Canceled() {
				t.Fatal("Canceled() should report true")
			}
			if !errors.Is(res.Err, context.Canceled) {
				t.Fatal("CanceledError should unwrap to context.Canceled")
			}
		})
	}
}

// TestRunnerStepHook checks the hook fires once per step with the engine's
// step counter.
func TestRunnerStepHook(t *testing.T) {
	s := &Spec{N: 6, K: 2, Router: "dimorder", Workload: Workload{Kind: KindTranspose}}
	var steps []int
	r := Runner{StepHook: func(net *sim.Network, step int) { steps = append(steps, step) }}
	res, err := r.Run(context.Background(), s)
	if err != nil || res.Err != nil {
		t.Fatalf("%v %v", err, res.Err)
	}
	if len(steps) != res.Steps {
		t.Fatalf("hook fired %d times over %d steps", len(steps), res.Steps)
	}
	for i, got := range steps {
		if got != i+1 {
			t.Fatalf("hook %d saw step %d", i, got)
		}
	}
}

// TestRunnerMetricsOut checks the Runner owns the metrics-sink lifecycle.
func TestRunnerMetricsOut(t *testing.T) {
	out := filepath.Join(t.TempDir(), "metrics.jsonl")
	s := &Spec{N: 6, K: 2, Router: "dimorder", Workload: Workload{Kind: KindTranspose}, MetricsOut: out}
	var r Runner
	res, err := r.Run(context.Background(), s)
	if err != nil || res.Err != nil {
		t.Fatalf("%v %v", err, res.Err)
	}
	if res.StepSamples != res.Steps {
		t.Fatalf("wrote %d step samples over %d steps", res.StepSamples, res.Steps)
	}
}

// TestSweepOrderAndCancellation checks input-order results and graceful
// partial sweeps.
func TestSweepOrderAndCancellation(t *testing.T) {
	specs := []*Spec{
		{Name: "a", N: 6, K: 2, Router: "dimorder", Workload: Workload{Kind: KindTranspose}},
		{Name: "b", N: 8, K: 2, Router: "zigzag", Workload: Workload{Kind: KindReversal}},
		{Name: "c", N: 6, K: 1, Router: "thm15", Workload: Workload{Kind: KindTranspose}},
	}
	var r Runner
	results, err := r.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil || res.Spec.Name != specs[i].Name {
			t.Fatalf("result %d out of order or missing", i)
		}
		if res.Err != nil || !res.Stats.Done {
			t.Fatalf("%s: %v %+v", res.Spec.Name, res.Err, res.Stats)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err = r.Sweep(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil {
			continue // skipped before starting: the graceful outcome
		}
		if res.Err != nil && !res.Canceled() {
			t.Fatalf("result %d: unexpected abort %v", i, res.Err)
		}
	}
}
