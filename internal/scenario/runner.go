package scenario

import (
	"context"
	"fmt"
	"os"

	"meshroute"
	"meshroute/internal/obs"
	"meshroute/internal/par"
	"meshroute/internal/sim"
	"meshroute/internal/stats"
	"meshroute/internal/trace"
)

// Result is the outcome of executing one scenario. Run-level aborts
// (livelock, cancellation, invariant violations) land in Err with Net and
// Stats still populated, so callers can report partial progress and
// diagnostics; an exhausted step budget is not an abort — it shows up as
// Stats.Done == false, matching RunPartial. Only setup failures prevent a
// Result.
type Result struct {
	// Spec is the executed spec.
	Spec *Spec
	// Net is the network after the run (partial state if Err != nil).
	Net *sim.Network
	// Steps is the number of steps executed.
	Steps int
	// Stats summarizes the run.
	Stats meshroute.RouteStats
	// Err is the run-level abort, if any: *sim.LivelockError,
	// *sim.CanceledError, or an invariant violation.
	Err error
	// StepSamples and Spans count the metrics records written to
	// Spec.MetricsOut (0 when no sink was configured).
	StepSamples, Spans int
}

// Canceled reports whether the run was stopped by context cancellation.
func (r *Result) Canceled() bool {
	_, ok := r.Err.(*sim.CanceledError)
	return ok
}

// Runner executes built scenarios. The zero value is ready to use.
type Runner struct {
	// Workers bounds Sweep's cross-scenario fan-out (0 = GOMAXPROCS). It
	// is independent of Spec.Workers, which parallelizes within a step.
	Workers int
	// StepHook, when set, runs after every engine step (visualization
	// snapshots, custom progress reporting). Setting it moves the run
	// onto the instrumented step-by-step path.
	StepHook func(net *sim.Network, step int)
	// Sink, when set, receives every executed run's step samples, spans
	// and fault events, in addition to any Spec.MetricsOut file sink.
	// Sweep executes scenarios concurrently, so a Sink shared across a
	// sweep must be safe for concurrent use (obs.Counters is; obs.Memory
	// is not).
	Sink obs.Sink
}

// Run builds and executes one spec. See RunBuilt for the error contract.
func (r *Runner) Run(ctx context.Context, s *Spec) (*Result, error) {
	run, err := s.Build()
	if err != nil {
		return nil, err
	}
	return r.RunBuilt(ctx, run)
}

// RunBuilt executes an already-built scenario under the context:
// cancellation is honored between steps and surfaces as a
// *sim.CanceledError in Result.Err. The returned error is non-nil only
// for setup problems (unwritable output files); run-level aborts are
// reported via Result.Err so partial statistics stay available.
func (r *Runner) RunBuilt(ctx context.Context, run *Run) (*Result, error) {
	net, s := run.Net, run.Spec

	var sink *obs.JSONL
	var sinkOut *os.File
	if s.MetricsOut != "" {
		f, err := os.Create(s.MetricsOut)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.describe(), err)
		}
		sinkOut = f
		sink = obs.NewJSONL(f)
	}
	switch {
	case sink != nil && r.Sink != nil:
		net.SetMetricsSink(obs.Multi{sink, r.Sink})
	case sink != nil:
		net.SetMetricsSink(sink)
	case r.Sink != nil:
		net.SetMetricsSink(r.Sink)
	}
	var rec *trace.Recorder
	var traceOut *os.File
	if s.TraceOut != "" {
		f, err := os.Create(s.TraceOut)
		if err != nil {
			if sinkOut != nil {
				sinkOut.Close()
			}
			return nil, fmt.Errorf("scenario %s: %w", s.describe(), err)
		}
		traceOut = f
		rec = trace.NewRecorder(f)
		rec.Attach(net)
	}

	alg := run.NewAlg()
	var steps int
	var runErr error
	if !run.Exact && r.StepHook == nil {
		steps, runErr = net.RunPartialContext(ctx, alg, run.Budget)
	} else {
		steps, runErr = r.stepLoop(ctx, run, alg)
	}

	res := &Result{
		Spec:  s,
		Net:   net,
		Steps: steps,
		Err:   runErr,
		Stats: meshroute.RouteStats{
			Makespan:   net.Metrics.Makespan,
			Steps:      steps,
			Done:       net.Done(),
			Delivered:  net.DeliveredCount(),
			Total:      net.TotalPackets(),
			MaxQueue:   net.Metrics.MaxQueueLen,
			AvgDelay:   net.AvgDelay(),
			FaultDrops: net.Metrics.FaultDrops,
		},
	}
	if net.OpenWorkload() {
		st := &res.Stats
		st.Online = true
		st.Offered = net.Metrics.Offered
		st.Admitted = net.Metrics.Admitted
		st.Refused = net.Metrics.Refused
		st.Dropped = net.Metrics.Dropped
		if steps > 0 {
			st.Throughput = float64(st.Delivered) / float64(steps)
		}
		// Time-in-system percentiles over delivered packets. Only open
		// workloads pay for the packet scan; static runs report zeros.
		delays := make([]float64, 0, st.Delivered)
		for _, p := range net.Packets() {
			if p.DeliverStep >= 0 {
				delays = append(delays, float64(p.DeliverStep-p.InjectStep))
			}
		}
		qs := stats.Quantiles(delays, 0.50, 0.95, 0.99)
		st.DelayP50, st.DelayP95, st.DelayP99 = qs[0], qs[1], qs[2]
	}
	if run.Analysis != nil {
		ar := run.Analysis()
		st := &res.Stats
		st.Analyzed = true
		st.Congestion, st.Dilation = ar.Congestion, ar.Dilation
		st.CDRatio = ar.Ratio(st.Makespan)
		summary := obs.RunSummary{
			Scenario:   s.Name,
			Router:     s.Router,
			Makespan:   st.Makespan,
			Congestion: ar.Congestion,
			Dilation:   ar.Dilation,
			CDRatio:    st.CDRatio,
		}
		if sink != nil {
			sink.Run(summary)
		}
		if rs, ok := r.Sink.(obs.RunSink); ok {
			rs.Run(summary)
		}
	}

	if rec != nil {
		if err := rec.Close(); err != nil {
			return nil, err
		}
		if err := traceOut.Close(); err != nil {
			return nil, err
		}
	}
	if sink != nil {
		res.StepSamples, res.Spans = sink.StepCount(), sink.SpanCount()
		if err := sink.Close(); err != nil {
			return nil, err
		}
		if err := sinkOut.Close(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// stepLoop is the instrumented path: one StepOnce per iteration with the
// context checked, the hook invoked, and the watchdog enforced between
// steps. Exact runs execute precisely Budget steps (dynamic workloads keep
// injecting over their horizon, so Done() mid-run is not termination);
// non-exact runs stop at delivery like RunPartial.
func (r *Runner) stepLoop(ctx context.Context, run *Run, alg sim.Algorithm) (int, error) {
	net := run.Net
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	lastProg, lastCount := net.Step(), net.DeliveredCount()
	for step := 0; step < run.Budget; step++ {
		if !run.Exact && net.Done() {
			return step, nil
		}
		if cancel != nil {
			select {
			case <-cancel:
				return step, &sim.CanceledError{
					Alg: alg.Name(), Steps: step, Cause: ctx.Err(), Diag: net.CollectDiagnostics(),
				}
			default:
			}
		}
		if err := net.StepOnce(alg); err != nil {
			return step + 1, err
		}
		if r.StepHook != nil {
			r.StepHook(net, net.Step())
		}
		if c := net.DeliveredCount(); c > lastCount {
			lastCount, lastProg = c, net.Step()
		}
		if w := run.Spec.Watchdog; w > 0 && net.Step()-lastProg >= w && !net.Done() {
			return step + 1, &sim.LivelockError{Alg: alg.Name(), Window: w, Diag: net.CollectDiagnostics()}
		}
	}
	return run.Budget, nil
}

// Sweep builds and executes the specs on a bounded worker pool (Workers
// wide) and returns results in input order. Cells that had not started
// when the context was canceled come back nil; cells interrupted mid-run
// carry a *sim.CanceledError in their Result.Err. The returned error
// reports the first (lowest-index) setup failure, wrapped with the
// offending spec's index and label so a failed cell in a large batch is
// attributable; the underlying cause (e.g. *ValidationError) stays
// reachable through errors.As. Cancellation itself is not an error, so
// callers can print the partial table.
func (r *Runner) Sweep(ctx context.Context, specs []*Spec) ([]*Result, error) {
	return par.Map(len(specs), r.Workers, func(i int) (*Result, error) {
		if ctx != nil && ctx.Err() != nil {
			return nil, nil
		}
		res, err := r.Run(ctx, specs[i])
		if err != nil {
			return nil, fmt.Errorf("sweep spec %d (%s): %w", i, specs[i].describe(), err)
		}
		return res, nil
	})
}
