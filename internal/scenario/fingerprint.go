package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"meshroute"
	"meshroute/internal/grid"
)

// Fingerprint returns the canonical content hash of the Spec: the SHA-256
// of its canonical JSON form, hex-encoded. Two specs share a fingerprint
// exactly when they describe the same run, so the engine's determinism
// (identical spec ⇒ identical result, pinned by the golden-digest suite)
// makes the fingerprint a sound cache key — internal/service uses it to
// serve repeat submissions without re-simulating.
//
// Canonicalization:
//
//   - presentation-only fields (name, metrics_out, trace_out) are cleared —
//     they label or export a run without changing its outcome;
//   - defaults are materialized: an empty topology becomes "mesh", an empty
//     queue model becomes the router's required model, a nil
//     check_invariants becomes the router Config's default, and a zero
//     max_steps becomes the automatic budget (for dynamic workloads, which
//     ignore the budget, max_steps is zeroed instead);
//   - the JSON is re-encoded through a map, so keys are sorted and field
//     order cannot leak into the hash.
//
// Every semantic field participates, including Seed, Workload.Seed and
// Workers, so any change to what would be executed changes the fingerprint.
// The Spec must be valid; the validation error is returned otherwise.
func (s *Spec) Fingerprint() (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	c := *s
	c.Name = ""
	c.MetricsOut = ""
	c.TraceOut = ""
	if c.Topology == "" {
		c.Topology = TopoMesh
	}
	rspec, err := meshroute.LookupRouter(c.Router)
	if err != nil {
		return "", err
	}
	if c.Queues == "" {
		c.Queues = queueModelName(rspec.Queues)
	}
	if c.CheckInvariants == nil {
		var topo grid.Topology
		if c.Topology == TopoTorus {
			topo = grid.NewSquareTorus(c.N)
		} else {
			topo = grid.NewSquareMesh(c.N)
		}
		c.CheckInvariants = Bool(rspec.Config(topo, c.K).CheckInvariants)
	}
	c.Workload.ApplyOnlineDefaults()
	if c.Workload.Dynamic() && !c.Workload.Drain {
		c.MaxSteps = 0 // ignored by exact-horizon runs
	} else if c.MaxSteps == 0 {
		c.MaxSteps = 200 * (c.N*c.N/c.K + 2*c.N)
	}
	if f := c.Faults; f != nil {
		ff := *f
		c.Faults = &ff
	}
	data, err := json.Marshal(&c)
	if err != nil {
		return "", fmt.Errorf("scenario: fingerprint: %w", err)
	}
	// Decode and re-encode through a map: encoding/json sorts map keys, so
	// the byte stream is canonical regardless of struct field order.
	// UseNumber keeps 64-bit seeds as exact literals — float64 round-trips
	// would collapse seeds that differ only beyond 2^53.
	var m map[string]any
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := dec.Decode(&m); err != nil {
		return "", fmt.Errorf("scenario: fingerprint: %w", err)
	}
	canon, err := json.Marshal(m)
	if err != nil {
		return "", fmt.Errorf("scenario: fingerprint: %w", err)
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}
