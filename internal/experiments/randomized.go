package experiments

import (
	"fmt"

	"meshroute/internal/adversary"
	"meshroute/internal/grid"
	"meshroute/internal/par"
	"meshroute/internal/routers"
	"meshroute/internal/sim"
	"meshroute/internal/stats"
	"meshroute/internal/workload"
)

// E13 probes the third escape hatch of Section 7: randomness. The
// Theorem 14 adversary needs to predict every routing decision; against a
// router with randomized preferences it cannot even be run. We build the
// constructed permutation against the DETERMINISTIC zigzag router, then
// route it with the randomized variant across many seeds (in parallel —
// the cells are independent simulations).
func E13(quick bool) (*Report, error) {
	n, k := 120, 1
	seeds := 8
	if !quick {
		n = 216
		seeds = 16
	}
	rep := &Report{
		ID:    "E13",
		Title: fmt.Sprintf("Section 7 hatch 3: randomized routing vs the deterministic router's constructed permutation (n=%d, k=%d)", n, k),
		Table: stats.NewTable("router", "completion", "×bound", "done"),
	}
	c, err := adversary.NewConstruction(n, k)
	if err != nil {
		return nil, err
	}
	res, err := c.Run(zigzag())
	if err != nil {
		return nil, err
	}
	perm := &workload.Permutation{Pairs: res.Permutation}
	bound := res.Steps
	cap := 40 * bound

	// Deterministic zigzag: Theorem 13 applies.
	replay, err := c.Replay(res, zigzag())
	if err != nil {
		return nil, err
	}
	mk, done, err := adversary.RunToCompletion(replay, zigzag(), cap)
	if err != nil {
		return nil, err
	}
	rep.Table.AddRow("zigzag (deterministic, k=1)", mk, float64(mk)/float64(bound), done)

	// Deterministic zigzag at the same k the randomized runs use, for an
	// apples-to-apples queue comparison.
	net4 := sim.MustNew(sim.Config{
		Topo: grid.NewSquareMesh(n), K: 4, Queues: sim.CentralQueue,
		RequireMinimal: true, CheckInvariants: true,
	})
	if err := perm.Place(net4); err != nil {
		return nil, err
	}
	if _, err := net4.RunPartial(zigzag(), cap); err != nil {
		return nil, err
	}
	rep.Table.AddRow("zigzag (deterministic, k=4)", net4.Metrics.Makespan,
		float64(net4.Metrics.Makespan)/float64(bound), net4.Done())

	// Randomized zigzag, many seeds, in parallel.
	type cell struct {
		mk   int
		done bool
	}
	cells, err := par.Map(seeds, 0, func(i int) (cell, error) {
		net := sim.MustNew(sim.Config{
			Topo: grid.NewSquareMesh(n), K: 4, Queues: sim.CentralQueue,
			RequireMinimal: true, CheckInvariants: true,
		})
		if err := perm.Place(net); err != nil {
			return cell{}, err
		}
		if _, err := net.RunPartial(routers.RandZigZag{Seed: uint64(i)}, cap); err != nil {
			return cell{}, err
		}
		return cell{mk: net.Metrics.Makespan, done: net.Done()}, nil
	})
	if err != nil {
		return nil, err
	}
	var samples []float64
	for i, cl := range cells {
		if i < 3 { // show a few seeds individually
			rep.Table.AddRow(fmt.Sprintf("rand-zigzag seed=%d", i), cl.mk, float64(cl.mk)/float64(bound), cl.done)
		}
		if cl.done {
			samples = append(samples, float64(cl.mk))
		}
	}
	if len(samples) > 0 {
		s := stats.Summarize(samples)
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"rand-zigzag over %d seeds (k=4): min %.0f, median %.0f, max %.0f (Theorem 13 bound %d)",
			s.N, s.Min, s.Median, s.Max, bound))
	}
	rep.Notes = append(rep.Notes,
		"the bound binds exactly the (algorithm, k) pair it was constructed for: the deterministic router",
		"at k=1 pays 4-5× the bound, while either randomizing the decisions or changing k steps outside the",
		"adversary's prediction and leaves only the instance's raw congestion (~2× bound here) —",
		"Theorem 14's determinism assumption, like its other assumptions, is load-bearing")
	return rep, nil
}
