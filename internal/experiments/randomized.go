package experiments

import (
	"fmt"

	"meshroute"
	"meshroute/internal/adversary"
	"meshroute/internal/par"
	"meshroute/internal/scenario"
	"meshroute/internal/stats"
)

// E13 probes the third escape hatch of Section 7: randomness. The
// Theorem 14 adversary needs to predict every routing decision; against a
// router with randomized preferences it cannot even be run. We build the
// constructed permutation against the DETERMINISTIC zigzag router, then
// route it with the randomized variant across many seeds (in parallel —
// the cells are independent simulations).
func E13(opts Options) (*Report, error) {
	n, k := 120, 1
	seeds := 8
	if !opts.Quick {
		n = 216
		seeds = 16
	}
	rep := &Report{
		ID:    "E13",
		Title: fmt.Sprintf("Section 7 hatch 3: randomized routing vs the deterministic router's constructed permutation (n=%d, k=%d)", n, k),
		Table: stats.NewTable("router", "completion", "×bound", "done"),
	}
	if opts.canceled() {
		return interrupted(rep), nil
	}
	c, err := adversary.NewConstruction(n, k)
	if err != nil {
		return nil, err
	}
	res, err := c.Run(zigzag())
	if err != nil {
		return nil, err
	}
	wl := scenario.Workload{Kind: scenario.KindPairs, Pairs: res.Permutation}
	bound := res.Steps
	cap := 40 * bound

	// Deterministic zigzag: Theorem 13 applies.
	replay, err := c.Replay(res, zigzag())
	if err != nil {
		return nil, err
	}
	mk, done, err := adversary.RunToCompletion(replay, zigzag(), cap)
	if err != nil {
		return nil, err
	}
	rep.Table.AddRow("zigzag (deterministic, k=1)", mk, float64(mk)/float64(bound), done)

	// Deterministic zigzag at the same k the randomized runs use, for an
	// apples-to-apples queue comparison.
	r4, err := opts.runSpec(&scenario.Spec{N: n, K: 4, Router: meshroute.RouterZigZag, Workload: wl, MaxSteps: cap})
	if err != nil {
		return nil, err
	}
	if r4.Canceled() {
		return interrupted(rep), nil
	}
	if r4.Err != nil {
		return nil, r4.Err
	}
	rep.Table.AddRow("zigzag (deterministic, k=4)", r4.Stats.Makespan,
		float64(r4.Stats.Makespan)/float64(bound), r4.Stats.Done)

	// Randomized zigzag, many seeds, in parallel.
	type cell struct {
		mk       int
		done     bool
		canceled bool
	}
	cells, err := par.Map(seeds, opts.Workers, func(i int) (cell, error) {
		if opts.canceled() {
			return cell{canceled: true}, nil
		}
		rres, err := opts.runSpec(&scenario.Spec{
			N: n, K: 4, Router: meshroute.RouterRandZigZag, Seed: uint64(i),
			Workload: wl, MaxSteps: cap,
		})
		if err != nil {
			return cell{}, err
		}
		if rres.Canceled() {
			return cell{canceled: true}, nil
		}
		if rres.Err != nil {
			return cell{}, rres.Err
		}
		return cell{mk: rres.Stats.Makespan, done: rres.Stats.Done}, nil
	})
	if err != nil {
		return nil, err
	}
	var samples []float64
	for i, cl := range cells {
		if cl.canceled {
			return interrupted(rep), nil
		}
		if i < 3 { // show a few seeds individually
			rep.Table.AddRow(fmt.Sprintf("rand-zigzag seed=%d", i), cl.mk, float64(cl.mk)/float64(bound), cl.done)
		}
		if cl.done {
			samples = append(samples, float64(cl.mk))
		}
	}
	if len(samples) > 0 {
		s := stats.Summarize(samples)
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"rand-zigzag over %d seeds (k=4): min %.0f, median %.0f, max %.0f (Theorem 13 bound %d)",
			s.N, s.Min, s.Median, s.Max, bound))
	}
	rep.Notes = append(rep.Notes,
		"the bound binds exactly the (algorithm, k) pair it was constructed for: the deterministic router",
		"at k=1 pays 4-5× the bound, while either randomizing the decisions or changing k steps outside the",
		"adversary's prediction and leaves only the instance's raw congestion (~2× bound here) —",
		"Theorem 14's determinism assumption, like its other assumptions, is load-bearing")
	return rep, nil
}
