package experiments

import (
	"strings"
	"testing"
)

// Each experiment must run in quick mode and produce a non-empty table.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	reps, err := All(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 17 {
		t.Fatalf("want 17 reports, got %d", len(reps))
	}
	seen := map[string]bool{}
	for _, r := range reps {
		if seen[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
		out := r.String()
		if !strings.Contains(out, r.ID) || len(strings.Split(out, "\n")) < 4 {
			t.Fatalf("%s: degenerate output:\n%s", r.ID, out)
		}
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E16", "A1", "A2"} {
		if !seen[id] {
			t.Fatalf("missing %s", id)
		}
	}
}
