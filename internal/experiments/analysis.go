package experiments

import (
	"fmt"

	"meshroute"
	"meshroute/internal/scenario"
	"meshroute/internal/stats"
)

// E16 races the offline path-scheduled O(C+D) baseline (the "scheduled"
// router, docs/ANALYSIS.md) against the online minimal adaptive routers on
// the same workloads, with every cell normalized by the workload's
// congestion+dilation lower-bound scale: cd_ratio = makespan/(C+D). The
// scheduled router knows the whole demand set up front and replays a
// Rothvoß-style random-delay schedule, so its ratio pins what offline
// knowledge buys; the online routers' ratios show how far greedy
// per-step decisions land from that reference.
func E16(opts Options) (*Report, error) {
	rep := &Report{
		ID:    "E16",
		Title: "Offline O(C+D) baseline vs online routers, normalized by congestion+dilation (cd_ratio = makespan/(C+D))",
		Table: stats.NewTable("router", "n", "k", "workload", "C", "D", "makespan", "cd_ratio", "maxQ", "done"),
	}
	ns := []int{16, 32}
	if !opts.Quick {
		ns = []int{16, 32, 64}
	}
	const k = 2
	var worstScheduled float64
	for _, n := range ns {
		for _, wl := range []struct {
			name string
			wl   scenario.Workload
		}{
			{"transpose", scenario.Workload{Kind: scenario.KindTranspose}},
			{"reversal", scenario.Workload{Kind: scenario.KindReversal}},
			{"random-perm", scenario.Workload{Kind: scenario.KindRandom, Seed: 3}},
		} {
			for _, router := range []string{meshroute.RouterScheduled, meshroute.RouterDimOrder, meshroute.RouterZigZag} {
				if opts.canceled() {
					return interrupted(rep), nil
				}
				res, err := opts.runSpec(&scenario.Spec{N: n, K: k, Router: router, Workload: wl.wl, MaxSteps: 500 * n})
				if err != nil {
					return nil, err
				}
				if res.Canceled() {
					return interrupted(rep), nil
				}
				if res.Err != nil {
					return nil, res.Err
				}
				st := res.Stats
				if !st.Analyzed {
					return nil, fmt.Errorf("E16: %s on %s n=%d ran without analysis", router, wl.name, n)
				}
				if router == meshroute.RouterScheduled && !st.Done {
					// The offline baseline's whole point is its completion
					// contract; an online router may stall at small k
					// (reversal strands zigzag at n≥32), which the done
					// column records instead.
					return nil, fmt.Errorf("E16: scheduled incomplete on %s n=%d", wl.name, n)
				}
				rep.Table.AddRow(router, n, k, wl.name, st.Congestion, st.Dilation,
					st.Makespan, st.CDRatio, st.MaxQueue, st.Done)
				if router == meshroute.RouterScheduled && st.CDRatio > worstScheduled {
					worstScheduled = st.CDRatio
				}
			}
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"scheduled worst cd_ratio %.2f (its makespan ≤ c·(C+D) contract; pinned c=3 in internal/routers)", worstScheduled))
	return rep, nil
}
