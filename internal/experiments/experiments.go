// Package experiments regenerates every result of the paper as a table:
// one experiment per theorem/figure of the evaluation-relevant sections
// (see DESIGN.md's per-experiment index). The cmd/experiments binary prints
// these tables and EXPERIMENTS.md records them against the paper's claims.
package experiments

import (
	"context"
	"fmt"

	"meshroute"
	"meshroute/internal/adversary"
	"meshroute/internal/clt"
	"meshroute/internal/dex"
	"meshroute/internal/grid"
	"meshroute/internal/par"
	"meshroute/internal/routers"
	"meshroute/internal/scenario"
	"meshroute/internal/sim"
	"meshroute/internal/stats"
	"meshroute/internal/workload"
)

// Options configures one experiment run. The zero value runs the full
// (slow) sweep serially-scheduled across all cores with no cancellation.
type Options struct {
	// Quick trims the parameter sweeps to CI-sized grids.
	Quick bool
	// Workers bounds the cross-cell fan-out of the parallel sweeps
	// (internal/par); 0 means GOMAXPROCS.
	Workers int
	// Ctx cancels a sweep between cells and between engine steps; nil
	// means context.Background(). A canceled experiment returns its
	// partial table (marked in the notes) rather than an error.
	Ctx context.Context
}

// ctx returns the effective context.
func (o Options) ctx() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// canceled reports whether the run should stop at the next cell boundary.
func (o Options) canceled() bool { return o.ctx().Err() != nil }

// interruptedNote marks a report whose sweep stopped early on
// cancellation; callers print what was measured.
const interruptedNote = "(interrupted — partial table)"

func interrupted(rep *Report) *Report {
	rep.Notes = append(rep.Notes, interruptedNote)
	return rep
}

// runSpec executes one scenario spec under the experiment's context and
// returns the run result; every sim-engine cell in this package goes
// through the scenario layer. Analysis is always on, so every cell's
// Stats carries the workload's congestion/dilation and the
// makespan/(C+D) efficiency ratio (docs/ANALYSIS.md).
func (o Options) runSpec(s *scenario.Spec) (*scenario.Result, error) {
	s.Analysis = true
	var r scenario.Runner
	return r.Run(o.ctx(), s)
}

// Report is one experiment's output.
type Report struct {
	// ID is the experiment identifier (E1..E16, A1, A2).
	ID string
	// Title describes the experiment.
	Title string
	// Table holds the measured rows.
	Table *stats.Table
	// Notes holds derived observations (fits, bound checks).
	Notes []string
}

func (r *Report) String() string {
	s := fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Table)
	for _, n := range r.Notes {
		s += "   " + n + "\n"
	}
	return s
}

func dimOrder() sim.Algorithm { return dex.NewAdapter(routers.DimOrderFIFO{}) }
func zigzag() sim.Algorithm   { return dex.NewAdapter(routers.ZigZag{}) }
func thm15() sim.Algorithm    { return dex.NewAdapter(routers.Thm15{}) }

// E1 runs the Theorem 14 construction against the two destination-
// exchangeable minimal routers and reports the forced lower bound and the
// measured behavior of the constructed permutation.
func E1(opts Options) (*Report, error) {
	rep := &Report{
		ID:    "E1",
		Title: "Theorem 13/14: constructed permutations for minimal adaptive dex routers (bound = ⌊l⌋·d·n)",
		Table: stats.NewTable("router", "n", "k", "bound", "undeliv@bound", "exchanges", "completion", "done"),
	}
	type cfg struct {
		name string
		alg  func() sim.Algorithm
	}
	algs := []cfg{{"dimorder", dimOrder}, {"zigzag", zigzag}}
	ns := []int{60, 120, 216}
	if !opts.Quick {
		ns = []int{60, 120, 216, 312, 432}
	}
	// Every (router, n, k) cell is an independent simulation; sweep on
	// all cores (internal/par) and emit rows in input order.
	type cellIn struct {
		name string
		alg  func() sim.Algorithm
		n, k int
	}
	type cellOut struct {
		skip    bool
		bound   int
		undeliv int
		exchg   int
		comp    string
		done    bool
	}
	var cells []cellIn
	for _, a := range algs {
		for _, n := range ns {
			for _, k := range []int{1, 2} {
				cells = append(cells, cellIn{a.name, a.alg, n, k})
			}
		}
	}
	outs, err := par.Map(len(cells), opts.Workers, func(i int) (cellOut, error) {
		if opts.canceled() {
			return cellOut{skip: true}, nil
		}
		in := cells[i]
		c, err := adversary.NewConstruction(in.n, in.k)
		if err != nil {
			return cellOut{skip: true}, nil // n too small for this k
		}
		res, err := c.Run(in.alg())
		if err != nil {
			return cellOut{}, fmt.Errorf("E1 %s n=%d k=%d: %w", in.name, in.n, in.k, err)
		}
		replay, err := c.Replay(res, in.alg())
		if err != nil {
			return cellOut{}, fmt.Errorf("E1 %s n=%d k=%d replay: %w", in.name, in.n, in.k, err)
		}
		cap := 30 * res.Steps
		mk, done, err := adversary.RunToCompletion(replay, in.alg(), cap)
		if err != nil {
			return cellOut{}, err
		}
		comp := fmt.Sprint(mk)
		if !done {
			comp = fmt.Sprintf(">%d", cap)
		}
		return cellOut{bound: res.Steps, undeliv: res.UndeliveredHard, exchg: res.Exchanges, comp: comp, done: done}, nil
	})
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for i, out := range outs {
		if out.skip {
			continue
		}
		in := cells[i]
		rep.Table.AddRow(in.name, in.n, in.k, out.bound, out.undeliv, out.exchg, out.comp, out.done)
		if in.name == "dimorder" && in.k == 1 {
			xs = append(xs, float64(in.n))
			ys = append(ys, float64(out.bound))
		}
	}
	if _, b, err := stats.PowerFit(xs, ys); err == nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("bound scaling vs n at k=1: exponent %.2f (paper: Ω(n²/k²) → 2)", b))
	}
	if opts.canceled() {
		return interrupted(rep), nil
	}
	return rep, nil
}

// E2 runs the Section 5 dimension-order construction and measures the
// Theorem 15 router's completion time against its Ω(n²/k) bound.
func E2(opts Options) (*Report, error) {
	rep := &Report{
		ID:    "E2",
		Title: "Section 5: dimension-order construction, Ω(n²/k) (Theorem 15 router completes in Θ(n²/k))",
		Table: stats.NewTable("n", "k", "bound", "undeliv@bound", "thm15 completion", "compl/(n²/k)"),
	}
	ns := []int{60, 90, 120}
	if !opts.Quick {
		ns = []int{60, 90, 120, 180, 240}
	}
	var xs, ys []float64
	for _, n := range ns {
		if opts.canceled() {
			return interrupted(rep), nil
		}
		for _, k := range []int{1, 2} {
			// Attack the Thm15 router: per the Other Queue Types
			// simulation, its four queues of size k act like a
			// central queue of 4k (+1 origin slot).
			c, err := adversary.NewDOConstruction(n, 4*k+1)
			if err != nil {
				continue
			}
			c.Queues = sim.PerInlinkQueues
			c.NetK = k
			res, err := c.Run(thm15())
			if err != nil {
				return nil, fmt.Errorf("E2 n=%d k=%d: %w", n, k, err)
			}
			replay, err := c.Replay(res, thm15())
			if err != nil {
				return nil, fmt.Errorf("E2 n=%d k=%d replay: %w", n, k, err)
			}
			mk, done, err := adversary.RunToCompletion(replay, thm15(), 100*n*n)
			if err != nil {
				return nil, err
			}
			if !done {
				return nil, fmt.Errorf("E2: thm15 did not complete n=%d k=%d", n, k)
			}
			rep.Table.AddRow(n, k, res.Steps, res.UndeliveredHard, mk, float64(mk)*float64(k)/float64(n*n))
			if k == 1 {
				xs = append(xs, float64(n))
				ys = append(ys, float64(mk))
			}
		}
	}
	if _, b, err := stats.PowerFit(xs, ys); err == nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("thm15 completion scaling vs n at k=1: exponent %.2f (paper: Θ(n²/k) → 2)", b))
	}
	return rep, nil
}

// E3 runs the farthest-first construction (the router is NOT destination-
// exchangeable, yet the bound holds).
func E3(opts Options) (*Report, error) {
	rep := &Report{
		ID:    "E3",
		Title: "Section 5: farthest-first dimension-order construction, Ω(n²/k)",
		Table: stats.NewTable("n", "k", "bound", "undeliv@bound", "exchanges"),
	}
	ns := []int{64, 128}
	if !opts.Quick {
		ns = []int{64, 128, 192, 256}
	}
	for _, n := range ns {
		if opts.canceled() {
			return interrupted(rep), nil
		}
		for _, k := range []int{1, 2} {
			c, err := adversary.NewFFConstruction(n, k)
			if err != nil {
				continue
			}
			res, err := c.Run(routers.DimOrderFF{})
			if err != nil {
				return nil, fmt.Errorf("E3 n=%d k=%d: %w", n, k, err)
			}
			if _, err := c.Replay(res, routers.DimOrderFF{}); err != nil {
				return nil, fmt.Errorf("E3 n=%d k=%d replay: %w", n, k, err)
			}
			rep.Table.AddRow(n, k, res.Steps, res.UndeliveredHard, res.Exchanges)
		}
	}
	return rep, nil
}

// E4 measures the Theorem 15 router's worst observed makespans across
// adversarial and structured permutations, checking O(n²/k + n) and the
// crossover to O(n) when k grows.
func E4(opts Options) (*Report, error) {
	rep := &Report{
		ID:    "E4",
		Title: "Theorem 15: bounded-queue dimension order delivers every permutation in O(n²/k + n)",
		Table: stats.NewTable("n", "k", "workload", "makespan", "makespan/(n²/k+n)", "maxQ"),
	}
	ns := []int{32, 64}
	if !opts.Quick {
		ns = []int{32, 64, 96, 128}
	}
	for _, n := range ns {
		for _, k := range []int{1, 2, 4, n / 2} {
			if opts.canceled() {
				return interrupted(rep), nil
			}
			for _, wl := range []scenario.Workload{
				{Kind: scenario.KindReversal},
				{Kind: scenario.KindTranspose},
				{Kind: scenario.KindRandom, Seed: int64(n + k)},
			} {
				res, err := opts.runSpec(&scenario.Spec{
					N: n, K: k, Router: "thm15", Workload: wl,
				})
				if err != nil {
					return nil, err
				}
				if res.Canceled() {
					return interrupted(rep), nil
				}
				if res.Err != nil {
					return nil, res.Err
				}
				if !res.Stats.Done {
					return nil, fmt.Errorf("E4: incomplete n=%d k=%d %s", n, k, wl.Kind)
				}
				bound := float64(n*n)/float64(k) + float64(n)
				rep.Table.AddRow(n, k, wl.Kind, res.Stats.Makespan,
					float64(res.Stats.Makespan)/bound, res.Stats.MaxQueue)
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"ratio stays O(1) across k; at k=n/2 the n term dominates (O(n) regime)")
	return rep, nil
}

// E5 runs the Section 6 algorithm and checks Theorem 34's bounds.
func E5(opts Options) (*Report, error) {
	rep := &Report{
		ID:    "E5",
		Title: "Theorem 34: Section 6 O(n)-time O(1)-queue minimal adaptive algorithm",
		Table: stats.NewTable("n", "workload", "schedule", "schedule/n", "972n?", "measured", "maxQ", "Q<=834?"),
	}
	ns := []int{27, 81}
	if !opts.Quick {
		ns = []int{27, 81, 243}
	}
	for _, n := range ns {
		if opts.canceled() {
			return interrupted(rep), nil
		}
		topo := grid.NewSquareMesh(n)
		for _, wl := range []struct {
			name string
			perm *workload.Permutation
		}{
			{"random", workload.Random(topo, 7)},
			{"transpose", workload.Transpose(topo)},
			{"reversal", workload.Reversal(topo)},
		} {
			r, err := clt.New(clt.Config{N: n})
			if err != nil {
				return nil, err
			}
			res, err := r.Route(wl.perm)
			if err != nil {
				return nil, fmt.Errorf("E5 n=%d %s: %w", n, wl.name, err)
			}
			rep.Table.AddRow(n, wl.name, res.TimeFormula,
				float64(res.TimeFormula)/float64(n),
				res.TimeFormula <= 972*n, res.TimeMeasured, res.MaxQueue, res.MaxQueue <= 834)
		}
	}
	rep.Notes = append(rep.Notes,
		"schedule/n is the Theorem 34 constant; the paper proves <= 972 (564 with the improved q, see A2)")
	return rep, nil
}

// E6 reports the h-h construction bounds, which grow like h³n²/(k+h)².
func E6(opts Options) (*Report, error) {
	rep := &Report{
		ID:    "E6",
		Title: "Section 5: h-h routing construction, Ω(h³n²/(k+h)²)",
		Table: stats.NewTable("n", "k", "h", "bound", "undeliv@bound", "packets"),
	}
	n := 60
	if !opts.Quick {
		n = 120
	}
	for _, k := range []int{1, 2} {
		if opts.canceled() {
			return interrupted(rep), nil
		}
		for _, h := range []int{1, 2, 4} {
			c, err := adversary.NewHHConstruction(n, k, h)
			if err != nil {
				rep.Table.AddRow(n, k, h, "-", "-", fmt.Sprintf("(%v)", err))
				continue
			}
			res, err := c.Run(dimOrder())
			if err != nil {
				return nil, fmt.Errorf("E6 k=%d h=%d: %w", k, h, err)
			}
			rep.Table.AddRow(n, k, h, res.Steps, res.UndeliveredHard, len(res.Permutation))
		}
	}
	return rep, nil
}

// E7 embeds the construction in a torus (Section 5): the same Ω(n²/k²)
// holds on an (n/2)×(n/2) submesh of the n-torus.
func E7(opts Options) (*Report, error) {
	rep := &Report{
		ID:    "E7",
		Title: "Section 5: torus embedding of the Theorem 14 construction",
		Table: stats.NewTable("torus", "submesh", "k", "bound", "undeliv@bound"),
	}
	ms := []int{60, 120}
	if !opts.Quick {
		ms = []int{60, 120, 216}
	}
	for _, m := range ms {
		if opts.canceled() {
			return interrupted(rep), nil
		}
		for _, k := range []int{1, 2} {
			par, err := adversary.NewParams(m, k)
			if err != nil {
				continue
			}
			c := &adversary.Construction{Par: par, Topo: grid.NewSquareTorus(2 * m), H: 1}
			res, err := c.Run(dimOrder())
			if err != nil {
				return nil, fmt.Errorf("E7 m=%d k=%d: %w", m, k, err)
			}
			if _, err := c.Replay(res, dimOrder()); err != nil {
				return nil, fmt.Errorf("E7 m=%d k=%d replay: %w", m, k, err)
			}
			rep.Table.AddRow(2*m, m, k, res.Steps, res.UndeliveredHard)
		}
	}
	return rep, nil
}

// E8 frames the worst-case results against the average case (Section 1.1):
// random traffic routes in about 2n steps with tiny queues.
func E8(opts Options) (*Report, error) {
	rep := &Report{
		ID:    "E8",
		Title: "Average case (Section 1.1 framing): random traffic ≈ 2n steps, small queues",
		Table: stats.NewTable("router", "n", "k", "workload", "makespan", "makespan/n", "maxQ"),
	}
	ns := []int{32, 64}
	if !opts.Quick {
		ns = []int{32, 64, 128}
	}
	for _, n := range ns {
		if opts.canceled() {
			return interrupted(rep), nil
		}
		for _, wl := range []struct {
			name string
			wl   scenario.Workload
		}{
			{"random-perm", scenario.Workload{Kind: scenario.KindRandom, Seed: 3}},
			{"random-dest", scenario.Workload{Kind: scenario.KindRandomDest, Seed: 3}},
		} {
			for _, rt := range []struct {
				name   string
				router string
				k      int
			}{
				{"thm15 k=2", meshroute.RouterThm15, 2},
				{"dimorder k=4", meshroute.RouterDimOrder, 4},
				{"zigzag k=4", meshroute.RouterZigZag, 4},
			} {
				res, err := opts.runSpec(&scenario.Spec{N: n, K: rt.k, Router: rt.router, Workload: wl.wl, MaxSteps: 500 * n})
				if err != nil {
					return nil, err
				}
				if res.Canceled() {
					return interrupted(rep), nil
				}
				if res.Err != nil {
					return nil, res.Err
				}
				if !res.Stats.Done {
					return nil, fmt.Errorf("E8: %s incomplete on %s n=%d", rt.name, wl.name, n)
				}
				rep.Table.AddRow(rt.name, n, rt.k, wl.name, res.Stats.Makespan,
					float64(res.Stats.Makespan)/float64(n), res.Stats.MaxQueue)
			}
		}
	}
	return rep, nil
}

// E9 is the paper's conclusion as a head-to-head: on the Theorem 14
// permutation, the destination-exchangeable minimal routers are stuck at
// the bound, while each of the paper's escape hatches — full destination
// info (Section 6), nonminimal paths (hot potato) — evades it.
func E9(opts Options) (*Report, error) {
	n, k := 243, 2 // power of 3 so the Section 6 algorithm applies
	rep := &Report{
		ID:    "E9",
		Title: fmt.Sprintf("Section 7: the three escape hatches on the constructed permutation (n=%d, k=%d)", n, k),
		Table: stats.NewTable("router", "class", "time", "time/bound", "done"),
	}
	if opts.canceled() {
		return interrupted(rep), nil
	}
	c, err := adversary.NewConstruction(n, k)
	if err != nil {
		return nil, err
	}
	res, err := c.Run(dimOrder())
	if err != nil {
		return nil, err
	}
	bound := res.Steps
	perm := &workload.Permutation{Pairs: res.Permutation}

	// Destination-exchangeable minimal: must exceed the bound.
	replay, err := c.Replay(res, dimOrder())
	if err != nil {
		return nil, err
	}
	if opts.canceled() {
		return interrupted(rep), nil
	}
	cap := 40 * bound
	mk, done, err := adversary.RunToCompletion(replay, dimOrder(), cap)
	if err != nil {
		return nil, err
	}
	t := fmt.Sprint(mk)
	if !done {
		t = fmt.Sprintf(">%d", cap)
		mk = cap
	}
	rep.Table.AddRow("dimorder", "dex+minimal (bound applies)", t, float64(mk)/float64(bound), done)

	// Section 6: minimal but full-destination-aware: O(n).
	r, err := clt.New(clt.Config{N: n})
	if err != nil {
		return nil, err
	}
	cres, err := r.Route(perm)
	if err != nil {
		return nil, err
	}
	rep.Table.AddRow("clt-section6", "minimal, NOT dex (hatch 1)", cres.TimeFormula, float64(cres.TimeFormula)/float64(bound), true)

	// Hot potato: destination-exchangeable but nonminimal.
	net := sim.MustNew(routers.HotPotatoConfig(grid.NewSquareMesh(n)))
	if err := perm.Place(net); err != nil {
		return nil, err
	}
	if _, err := net.RunPartial(routers.HotPotato{}, 400*n); err != nil {
		return nil, err
	}
	hp := fmt.Sprint(net.Metrics.Makespan)
	if !net.Done() {
		hp = fmt.Sprintf(">%d", 400*n)
	}
	rep.Table.AddRow("hot-potato", "dex, NOT minimal (hatch 2)", hp, float64(net.Metrics.Makespan)/float64(bound), net.Done())

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("Theorem 13 bound = %d steps; the dex minimal router cannot beat it — and in fact wedges far above it", bound),
		"the escapes are asymptotic: the dex bound grows as n²/k² (E1 fit ≈ 2) while the Section 6 schedule",
		fmt.Sprintf("grows as 972n (E5); with the paper's constants the crossover sits near n ≈ 972·12(k+2)² ≈ %d, far", 972*12*(k+2)*(k+2)),
		"beyond simulable sizes — the paper's own constants, honestly reproduced",
		"hatch 3 (randomization) is out of scope for this deterministic reproduction")
	return rep, nil
}

// A1 ablates the exchange rules: without them the same initial instance is
// far easier for the router.
func A1(opts Options) (*Report, error) {
	n, k := 120, 1
	if !opts.Quick {
		n = 216
	}
	rep := &Report{
		ID:    "A1",
		Title: fmt.Sprintf("Ablation: exchange rules on vs off (n=%d, k=%d, zigzag)", n, k),
		Table: stats.NewTable("variant", "exchanges", "undeliv@bound", "completion", "done"),
	}
	c, err := adversary.NewConstruction(n, k)
	if err != nil {
		return nil, err
	}
	res, err := c.Run(zigzag())
	if err != nil {
		return nil, err
	}
	cap := 40 * res.Steps

	replay, err := c.Replay(res, zigzag())
	if err != nil {
		return nil, err
	}
	mk, done, err := adversary.RunToCompletion(replay, zigzag(), cap)
	if err != nil {
		return nil, err
	}
	comp := fmt.Sprint(mk)
	if !done {
		comp = fmt.Sprintf(">%d", cap)
	}
	rep.Table.AddRow("constructed (exchanges on)", res.Exchanges, res.UndeliveredHard, comp, done)

	if opts.canceled() {
		return interrupted(rep), nil
	}

	// Same initial placement, no adversary.
	c2, err := adversary.NewConstruction(n, k)
	if err != nil {
		return nil, err
	}
	res2, err := c2.RunWithoutExchanges(zigzag())
	if err != nil {
		return nil, err
	}
	replay2 := res2.Net
	mk2, done2, err := adversary.RunToCompletion(replay2, zigzag(), cap)
	if err != nil {
		return nil, err
	}
	comp2 := fmt.Sprint(mk2)
	if !done2 {
		comp2 = fmt.Sprintf(">%d", cap)
	}
	rep.Table.AddRow("initial assignment (exchanges off)", 0, res2.UndeliveredHard, comp2, done2)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("Theorem 13 bound = %d steps", res.Steps),
		"the exchanges exist to *guarantee* the bound against any dex router; when the corner congestion",
		"already exceeds the bound (small ⌊l⌋), the with/without gap is modest — the guarantee, not the",
		"gap, is the theorem")
	return rep, nil
}

// A2 compares the Section 6 algorithm's schedule constant with q = 408
// everywhere vs the improved q = 102 for iterations j >= 1.
func A2(opts Options) (*Report, error) {
	rep := &Report{
		ID:    "A2",
		Title: "Ablation: Section 6 March capacity q = 408 vs improved q = 102 (564n variant)",
		Table: stats.NewTable("n", "q-variant", "schedule", "schedule/n", "maxQ"),
	}
	ns := []int{27, 81}
	if !opts.Quick {
		ns = []int{27, 81, 243}
	}
	for _, n := range ns {
		if opts.canceled() {
			return interrupted(rep), nil
		}
		perm := workload.Random(grid.NewSquareMesh(n), 5)
		for _, improved := range []bool{false, true} {
			r, err := clt.New(clt.Config{N: n, ImprovedQ: improved})
			if err != nil {
				return nil, err
			}
			res, err := r.Route(perm)
			if err != nil {
				return nil, fmt.Errorf("A2 n=%d improved=%v: %w", n, improved, err)
			}
			name := "q=408 (972n)"
			if improved {
				name = "q=102 for j>=1 (564n)"
			}
			rep.Table.AddRow(n, name, res.TimeFormula, float64(res.TimeFormula)/float64(n), res.MaxQueue)
		}
	}
	return rep, nil
}

// All runs every experiment.
func All(opts Options) ([]*Report, error) {
	fns := []func(Options) (*Report, error){E1, E2, E3, E4, E5, E6, E7, E8, E9, E10, E11, E12, E13, E14, E16, A1, A2}
	var out []*Report
	for _, fn := range fns {
		r, err := fn(opts)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
