package experiments

import (
	"fmt"

	"meshroute"
	"meshroute/internal/scenario"
	"meshroute/internal/stats"
)

// E12 explores the dynamic setting the paper's introduction motivates
// ("particularly if one wants to generalize them to dynamic routing
// problems"): packets are injected continuously — each node sources a
// packet with probability λ per step, uniform destinations — and we
// measure the average delivery latency of the Theorem 15 router as the
// load approaches the mesh's bisection capacity.
//
// For uniform traffic on an n×n mesh, the bisection argument caps the
// sustainable rate at λ* = 4/n (λ·n²/2 packets per step must cross the
// 2n-link bisection on average... λ·n²·(n/2)·(1/2) crossings over 2n
// links gives λ ≤ 8/n; with dimension-order's single path per pair the
// practical knee sits near 4/n). The experiment shows flat latency below
// the knee and blow-up above it — the standard router saturation curve.
func E12(opts Options) (*Report, error) {
	n := 32
	warm := 4 * n
	horizon := 16 * n
	if !opts.Quick {
		n = 64
		horizon = 24 * n
		warm = 6 * n
	}
	rep := &Report{
		ID: "E12",
		Title: fmt.Sprintf("Dynamic routing: Theorem 15 router under Bernoulli injection (n=%d, k=2, %d steps)",
			n, horizon),
		Table: stats.NewTable("load λ·n/4", "rate λ", "offered", "delivered", "avg latency", "p95 delay", "thru/step", "refusal rate", "p. in flight @end"),
	}
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2} {
		lambda := frac * 4 / float64(n)
		res, err := opts.runSpec(&scenario.Spec{
			N: n, K: 2, Router: meshroute.RouterThm15,
			Workload: scenario.Workload{
				Kind: scenario.KindOnline, Seed: 7, Rate: lambda, Horizon: horizon,
				Process: scenario.ProcessBernoulli, Admission: scenario.AdmissionRetry,
			},
		})
		if err != nil {
			return nil, err
		}
		if res.Canceled() {
			return interrupted(rep), nil
		}
		if res.Err != nil {
			return nil, res.Err
		}
		sumLat, delivered := 0, 0
		for _, p := range res.Net.Packets() {
			if p.Delivered() && p.InjectStep > warm {
				sumLat += p.DeliverStep - p.InjectStep
				delivered++
			}
		}
		avg := 0.0
		if delivered > 0 {
			avg = float64(sumLat) / float64(delivered)
		}
		inFlight := res.Stats.Total - res.Stats.Delivered
		rep.Table.AddRow(frac, fmt.Sprintf("%.4f", lambda), res.Stats.Offered, res.Stats.Delivered, avg,
			res.Stats.DelayP95, fmt.Sprintf("%.2f", res.Stats.Throughput),
			fmt.Sprintf("%.3f", res.Stats.RefusalRate()), inFlight)
	}
	rep.Notes = append(rep.Notes,
		"latency is flat well below the bisection knee and grows sharply past it;",
		"refusal rate stays 0: per-inlink queues have an unbounded origin buffer, so admission pressure",
		"surfaces as the in-flight blow-up, not as refusals (contrast central-queue online scenarios);",
		"the Theorem 15 router needs no global synchronization, so it runs unchanged in the dynamic setting —",
		"the practicality axis the paper's Section 7 asks about")
	return rep, nil
}
