package experiments

import (
	"fmt"
	"math/rand"

	"meshroute/internal/grid"
	"meshroute/internal/routers"
	"meshroute/internal/sim"
	"meshroute/internal/stats"
)

// E12 explores the dynamic setting the paper's introduction motivates
// ("particularly if one wants to generalize them to dynamic routing
// problems"): packets are injected continuously — each node sources a
// packet with probability λ per step, uniform destinations — and we
// measure the average delivery latency of the Theorem 15 router as the
// load approaches the mesh's bisection capacity.
//
// For uniform traffic on an n×n mesh, the bisection argument caps the
// sustainable rate at λ* = 4/n (λ·n²/2 packets per step must cross the
// 2n-link bisection on average... λ·n²·(n/2)·(1/2) crossings over 2n
// links gives λ ≤ 8/n; with dimension-order's single path per pair the
// practical knee sits near 4/n). The experiment shows flat latency below
// the knee and blow-up above it — the standard router saturation curve.
func E12(quick bool) (*Report, error) {
	n := 32
	warm := 4 * n
	horizon := 16 * n
	if !quick {
		n = 64
		horizon = 24 * n
		warm = 6 * n
	}
	rep := &Report{
		ID: "E12",
		Title: fmt.Sprintf("Dynamic routing: Theorem 15 router under Bernoulli injection (n=%d, k=2, %d steps)",
			n, horizon),
		Table: stats.NewTable("load λ·n/4", "rate λ", "injected", "delivered", "avg latency", "p. in flight @end"),
	}
	topo := grid.NewSquareMesh(n)
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2} {
		lambda := frac * 4 / float64(n)
		net := sim.MustNew(routers.Thm15Config(topo, 2))
		rng := rand.New(rand.NewSource(7))
		// Pre-schedule the whole injection pattern (deterministic).
		for step := 1; step <= horizon; step++ {
			for id := 0; id < n*n; id++ {
				if rng.Float64() < lambda {
					dst := grid.NodeID(rng.Intn(n * n))
					net.QueueInjection(net.NewPacket(grid.NodeID(id), dst), step)
				}
			}
		}
		alg := thm15()
		sumLat, delivered := 0, 0
		for step := 0; step < horizon; step++ {
			if err := net.StepOnce(alg); err != nil {
				return nil, err
			}
		}
		for _, p := range net.Packets() {
			if p.Delivered() && p.InjectStep > warm {
				sumLat += p.DeliverStep - p.InjectStep
				delivered++
			}
		}
		avg := 0.0
		if delivered > 0 {
			avg = float64(sumLat) / float64(delivered)
		}
		inFlight := net.TotalPackets() - net.DeliveredCount()
		rep.Table.AddRow(frac, fmt.Sprintf("%.4f", lambda), net.TotalPackets(), net.DeliveredCount(), avg, inFlight)
	}
	rep.Notes = append(rep.Notes,
		"latency is flat well below the bisection knee and grows sharply past it;",
		"the Theorem 15 router needs no global synchronization, so it runs unchanged in the dynamic setting —",
		"the practicality axis the paper's Section 7 asks about")
	return rep, nil
}
