package experiments

import (
	"errors"
	"fmt"

	"meshroute/internal/dex"
	"meshroute/internal/fault"
	"meshroute/internal/grid"
	"meshroute/internal/par"
	"meshroute/internal/routers"
	"meshroute/internal/sim"
	"meshroute/internal/stats"
	"meshroute/internal/workload"
)

// E15 measures delivery-time degradation under transient link failures:
// random permutations on the mesh routed by dimension order (fault-
// oblivious — its fixed paths must wait out every failure) versus the
// adaptive zigzag router in fault-aware mode (detours around failed links
// whenever a profitable outlink survives). Each cell averages several
// fault seeds; a livelock watchdog cuts wedged runs short, and runs are
// reported as delivered-fraction + mean makespan over the completed
// seeds. The fault model and the event stream it replays deterministically
// are documented in docs/ROBUSTNESS.md.
func E15(quick bool) (*Report, error) {
	rep := &Report{
		ID:    "E15",
		Title: "Fault degradation: dimension order vs fault-aware adaptive under transient link failures",
		Table: stats.NewTable("router", "n", "k", "failures", "seeds-done", "makespan", "base", "slowdown", "drops"),
	}
	const k = 3
	n := 24
	seeds := []int64{11, 12, 13}
	failureLevels := []int{0, 8, 16, 32, 64}
	if !quick {
		n = 32
		seeds = []int64{11, 12, 13, 14, 15}
		failureLevels = []int{0, 8, 16, 32, 64, 128}
	}
	topo := grid.NewSquareMesh(n)
	budget := 40 * (n*n/k + 2*n)

	type family struct {
		name string
		alg  func() sim.Algorithm
	}
	families := []family{
		{"dimorder", func() sim.Algorithm { return dex.NewAdapter(routers.DimOrderFIFO{}) }},
		{"zigzag-fa", func() sim.Algorithm { return dex.NewAdapter(routers.ZigZag{FaultAware: true}) }},
	}

	type cellIn struct {
		fam      family
		failures int
	}
	var cells []cellIn
	for _, f := range families {
		for _, fl := range failureLevels {
			cells = append(cells, cellIn{f, fl})
		}
	}
	type cellOut struct {
		done     int
		makespan float64
		drops    int
	}
	outs, err := par.Map(len(cells), 0, func(i int) (cellOut, error) {
		in := cells[i]
		var out cellOut
		sum, completed := 0, 0
		for _, seed := range seeds {
			// Onsets are drawn inside the fault-free delivery window
			// (makespan ≈ 2n for random permutations), so the failures
			// actually intersect the traffic instead of landing on a
			// drained network.
			sched, err := fault.Generate(topo, fault.Config{
				Seed: seed, Horizon: 2 * n,
				LinkFailures: in.failures, MeanDownSteps: n,
			})
			if err != nil {
				return out, err
			}
			net, err := sim.New(sim.Config{
				Topo: topo, K: k, Queues: sim.CentralQueue,
				RequireMinimal: true, Faults: sched, Watchdog: 20 * n * n,
			})
			if err != nil {
				return out, err
			}
			if err := workload.Random(topo, seed).Place(net); err != nil {
				return out, err
			}
			_, err = net.RunPartial(in.fam.alg(), budget)
			var le *sim.LivelockError
			if err != nil && !errors.As(err, &le) {
				return out, fmt.Errorf("E15 %s failures=%d seed=%d: %w", in.fam.name, in.failures, seed, err)
			}
			out.drops += net.Metrics.FaultDrops
			if net.Done() {
				completed++
				sum += net.Metrics.Makespan
			}
		}
		out.done = completed
		if completed > 0 {
			out.makespan = float64(sum) / float64(completed)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	// The zero-failure cell of each family is its no-fault baseline.
	base := map[string]float64{}
	for i, out := range outs {
		if cells[i].failures == 0 && out.done > 0 {
			base[cells[i].fam.name] = out.makespan
		}
	}
	for i, out := range outs {
		in := cells[i]
		slow := "n/a"
		if b := base[in.fam.name]; b > 0 && out.done > 0 {
			slow = fmt.Sprintf("%.2fx", out.makespan/b)
		}
		rep.Table.AddRow(in.fam.name, n, k, in.failures,
			fmt.Sprintf("%d/%d", out.done, len(seeds)), out.makespan, base[in.fam.name], slow, out.drops)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("transient failures, mean outage %d steps, onsets uniform in [1,%d]; watchdog %d steps", n, 2*n, 20*n*n),
		"slowdown = mean makespan over completed seeds / same-router zero-failure baseline")
	return rep, nil
}
