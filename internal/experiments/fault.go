package experiments

import (
	"errors"
	"fmt"

	"meshroute"
	"meshroute/internal/par"
	"meshroute/internal/scenario"
	"meshroute/internal/sim"
	"meshroute/internal/stats"
)

// E15 measures delivery-time degradation under transient link failures:
// random permutations on the mesh routed by dimension order (fault-
// oblivious — its fixed paths must wait out every failure) versus the
// adaptive zigzag router in fault-aware mode (detours around failed links
// whenever a profitable outlink survives). Each cell averages several
// fault seeds; a livelock watchdog cuts wedged runs short, and runs are
// reported as delivered-fraction + mean makespan over the completed
// seeds. The fault model and the event stream it replays deterministically
// are documented in docs/ROBUSTNESS.md.
func E15(opts Options) (*Report, error) {
	rep := &Report{
		ID:    "E15",
		Title: "Fault degradation: dimension order vs fault-aware adaptive under transient link failures",
		Table: stats.NewTable("router", "n", "k", "failures", "seeds-done", "makespan", "base", "slowdown", "drops"),
	}
	const k = 3
	n := 24
	seeds := []int64{11, 12, 13}
	failureLevels := []int{0, 8, 16, 32, 64}
	if !opts.Quick {
		n = 32
		seeds = []int64{11, 12, 13, 14, 15}
		failureLevels = []int{0, 8, 16, 32, 64, 128}
	}
	budget := 40 * (n*n/k + 2*n)

	type family struct {
		name       string
		router     string
		faultAware bool
	}
	families := []family{
		{"dimorder", meshroute.RouterDimOrder, false},
		{"zigzag-fa", meshroute.RouterZigZag, true},
	}

	type cellIn struct {
		fam      family
		failures int
	}
	var cells []cellIn
	for _, f := range families {
		for _, fl := range failureLevels {
			cells = append(cells, cellIn{f, fl})
		}
	}
	type cellOut struct {
		done     int
		makespan float64
		drops    int
		skip     bool
	}
	outs, err := par.Map(len(cells), opts.Workers, func(i int) (cellOut, error) {
		in := cells[i]
		var out cellOut
		sum, completed := 0, 0
		for _, seed := range seeds {
			if opts.canceled() {
				return cellOut{skip: true}, nil
			}
			// Onsets are drawn inside the fault-free delivery window
			// (makespan ≈ 2n for random permutations), so the failures
			// actually intersect the traffic instead of landing on a
			// drained network. Timing cells: the invariant checker
			// stays off so the watchdog, not the checker, bounds
			// wedged runs.
			res, err := opts.runSpec(&scenario.Spec{
				N: n, K: k, Router: in.fam.router, FaultAware: in.fam.faultAware,
				CheckInvariants: scenario.Bool(false),
				Workload:        scenario.Workload{Kind: scenario.KindRandom, Seed: seed},
				Faults: &scenario.Faults{
					Seed: seed, Horizon: 2 * n,
					LinkFailures: in.failures, MeanDownSteps: n,
				},
				Watchdog: 20 * n * n,
				MaxSteps: budget,
			})
			if err != nil {
				return out, err
			}
			if res.Canceled() {
				return cellOut{skip: true}, nil
			}
			var le *sim.LivelockError
			if res.Err != nil && !errors.As(res.Err, &le) {
				return out, fmt.Errorf("E15 %s failures=%d seed=%d: %w", in.fam.name, in.failures, seed, res.Err)
			}
			out.drops += res.Stats.FaultDrops
			if res.Stats.Done {
				completed++
				sum += res.Stats.Makespan
			}
		}
		out.done = completed
		if completed > 0 {
			out.makespan = float64(sum) / float64(completed)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, out := range outs {
		if out.skip {
			return interrupted(rep), nil
		}
	}
	// The zero-failure cell of each family is its no-fault baseline.
	base := map[string]float64{}
	for i, out := range outs {
		if cells[i].failures == 0 && out.done > 0 {
			base[cells[i].fam.name] = out.makespan
		}
	}
	for i, out := range outs {
		in := cells[i]
		slow := "n/a"
		if b := base[in.fam.name]; b > 0 && out.done > 0 {
			slow = fmt.Sprintf("%.2fx", out.makespan/b)
		}
		rep.Table.AddRow(in.fam.name, n, k, in.failures,
			fmt.Sprintf("%d/%d", out.done, len(seeds)), out.makespan, base[in.fam.name], slow, out.drops)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("transient failures, mean outage %d steps, onsets uniform in [1,%d]; watchdog %d steps", n, 2*n, 20*n*n),
		"slowdown = mean makespan over completed seeds / same-router zero-failure baseline")
	return rep, nil
}
