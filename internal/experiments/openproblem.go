package experiments

import (
	"fmt"

	"meshroute/internal/adversary"
	"meshroute/internal/par"
	"meshroute/internal/sim"
	"meshroute/internal/stats"
)

// E14 probes the paper's first open problem: "Is there a matching
// O(n²/k²) bound for destination-exchangeable, minimal adaptive algorithms
// on the mesh?" The proven gap is Ω(n²/k²) (Theorem 14) vs O(n²/k)
// (Theorem 15, the best known dex upper bound). We measure how the
// adaptive zigzag router's completion time on its own constructed
// permutation actually scales, and report the growth exponent — an
// empirical data point, not an answer (the problem is open).
func E14(opts Options) (*Report, error) {
	k := 2
	ns := []int{120, 216, 312}
	if !opts.Quick {
		ns = []int{120, 216, 312, 432, 552}
	}
	rep := &Report{
		ID:    "E14",
		Title: fmt.Sprintf("Open problem 1: how does the adaptive router's hard-instance completion actually scale? (k=%d)", k),
		Table: stats.NewTable("n", "bound ⌊l⌋dn", "zigzag completion", "compl·k²/n²", "compl·k/n²"),
	}
	type out struct {
		bound, mk int
		done      bool
		skip      bool
	}
	outs, err := par.Map(len(ns), opts.Workers, func(i int) (out, error) {
		if opts.canceled() {
			return out{skip: true}, nil
		}
		n := ns[i]
		c, err := adversary.NewConstruction(n, k)
		if err != nil {
			return out{}, err
		}
		res, err := c.Run(zigzag())
		if err != nil {
			return out{}, err
		}
		replay, err := c.Replay(res, zigzag())
		if err != nil {
			return out{}, err
		}
		mk, done, err := adversary.RunToCompletion(replay, zigzag(), 60*res.Steps)
		if err != nil {
			return out{}, err
		}
		return out{bound: res.Steps, mk: mk, done: done}, nil
	})
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for i, o := range outs {
		if o.skip {
			return interrupted(rep), nil
		}
		n := ns[i]
		comp := fmt.Sprint(o.mk)
		if !o.done {
			comp = fmt.Sprintf(">%d", 60*o.bound)
		}
		rep.Table.AddRow(n, o.bound, comp,
			float64(o.mk)*float64(k*k)/float64(n*n),
			float64(o.mk)*float64(k)/float64(n*n))
		if o.done {
			xs = append(xs, float64(n))
			ys = append(ys, float64(o.mk))
		}
	}
	if _, bexp, err := stats.PowerFit(xs, ys); err == nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"completion growth exponent vs n at fixed k: %.2f (Ω(n²/k²) and O(n²/k) both predict 2 at fixed k;", bexp),
			"the k-dependence — n²/k² vs n²/k — is what the open problem asks and what small k cannot separate)")
	}
	rep.Notes = append(rep.Notes,
		"exploratory only: the instance is merely the one permutation Theorem 13 certifies, not the",
		"adaptive router's true worst case — the open problem remains open")
	return rep, nil
}

var _ = sim.CentralQueue // keep the import for symmetry with siblings
