package experiments

import (
	"fmt"

	"meshroute"
	"meshroute/internal/adversary"
	"meshroute/internal/dex"
	"meshroute/internal/routers"
	"meshroute/internal/scenario"
	"meshroute/internal/sim"
	"meshroute/internal/stats"
)

// E10 runs the Section 5 "Nonminimal extensions" construction against a
// destination-exchangeable router that may stray up to δ beyond the
// source-destination rectangle (bound Ω(n²/((δ+1)³k²))).
func E10(opts Options) (*Report, error) {
	rep := &Report{
		ID:    "E10",
		Title: "Section 5: nonminimal extension — routers straying ≤ δ beyond the rectangle, Ω(n²/((δ+1)³k²))",
		Table: stats.NewTable("n", "k", "delta", "bound", "undeliv@bound", "exchanges"),
	}
	type cfg struct{ n, k, delta int }
	cfgs := []cfg{{120, 1, 0}, {480, 1, 1}}
	if !opts.Quick {
		cfgs = append(cfgs, cfg{960, 1, 1}, cfg{1500, 1, 2})
	}
	for _, tc := range cfgs {
		if opts.canceled() {
			return interrupted(rep), nil
		}
		c, err := adversary.NewDeltaConstruction(tc.n, tc.k, tc.delta)
		if err != nil {
			rep.Table.AddRow(tc.n, tc.k, tc.delta, "-", "-", fmt.Sprintf("(%v)", err))
			continue
		}
		alg := func() sim.Algorithm {
			return dex.NewAdapter(routers.StrayDimOrder{Delta: tc.delta})
		}
		res, err := c.Run(alg())
		if err != nil {
			return nil, fmt.Errorf("E10 n=%d delta=%d: %w", tc.n, tc.delta, err)
		}
		if _, err := c.Replay(res, alg()); err != nil {
			return nil, fmt.Errorf("E10 n=%d delta=%d replay: %w", tc.n, tc.delta, err)
		}
		rep.Table.AddRow(tc.n, tc.k, tc.delta, res.Steps, res.UndeliveredHard, res.Exchanges)
	}
	rep.Notes = append(rep.Notes,
		"delta=0 is Theorem 14; growing delta shrinks c, d and p's headroom by (δ+1) each — the (δ+1)³",
		"replay (Lemma 12 analogue) verified for every row")
	return rep, nil
}

// E11 demonstrates the quantifier order of Theorem 14 — ∀ algorithm
// ∃ permutation — by cross-routing each router's constructed permutation
// through the other routers: hardness is algorithm-specific.
func E11(opts Options) (*Report, error) {
	n, k := 120, 2
	if !opts.Quick {
		n = 216
	}
	rep := &Report{
		ID:    "E11",
		Title: fmt.Sprintf("Quantifier order: each constructed permutation vs every router (n=%d, k=%d)", n, k),
		Table: stats.NewTable("perm built for", "routed by", "bound", "completion", "×bound"),
	}
	type rt struct {
		name   string
		router string
		alg    func() sim.Algorithm
	}
	targets := []rt{
		{"dimorder", meshroute.RouterDimOrder, dimOrder},
		{"zigzag", meshroute.RouterZigZag, zigzag},
	}
	for _, builtFor := range targets {
		if opts.canceled() {
			return interrupted(rep), nil
		}
		c, err := adversary.NewConstruction(n, k)
		if err != nil {
			return nil, err
		}
		res, err := c.Run(builtFor.alg())
		if err != nil {
			return nil, err
		}
		wl := scenario.Workload{Kind: scenario.KindPairs, Pairs: res.Permutation}
		cap := 40 * res.Steps
		for _, router := range targets {
			rres, err := opts.runSpec(&scenario.Spec{N: n, K: k, Router: router.router, Workload: wl, MaxSteps: cap})
			if err != nil {
				return nil, err
			}
			if rres.Canceled() {
				return interrupted(rep), nil
			}
			if rres.Err != nil {
				return nil, rres.Err
			}
			comp := fmt.Sprint(rres.Stats.Makespan)
			ratio := float64(rres.Stats.Makespan) / float64(res.Steps)
			if !rres.Stats.Done {
				comp = fmt.Sprintf(">%d", cap)
				ratio = float64(cap) / float64(res.Steps)
			}
			rep.Table.AddRow(builtFor.name, router.name, res.Steps, comp, ratio)
		}
		// The Theorem 15 router (different queue model, not covered by
		// this instance's constants) for context.
		tres, err := opts.runSpec(&scenario.Spec{N: n, K: k, Router: meshroute.RouterThm15, Workload: wl, MaxSteps: cap})
		if err != nil {
			return nil, err
		}
		if tres.Canceled() {
			return interrupted(rep), nil
		}
		if tres.Err != nil {
			return nil, tres.Err
		}
		comp := fmt.Sprint(tres.Stats.Makespan)
		if !tres.Stats.Done {
			comp = fmt.Sprintf(">%d", cap)
		}
		rep.Table.AddRow(builtFor.name, "thm15 (4 queues)", res.Steps, comp,
			float64(tres.Stats.Makespan)/float64(res.Steps))
	}
	rep.Notes = append(rep.Notes,
		"a permutation constructed for router A is guaranteed hard only for A (Theorem 13's quantifiers);",
		"other routers may or may not route it faster — each has its own nemesis permutation")
	return rep, nil
}
