package fault

import (
	"reflect"
	"sort"
	"testing"

	"meshroute/internal/grid"
)

func TestGenerateDeterministic(t *testing.T) {
	topo := grid.NewSquareMesh(12)
	cfg := Config{Seed: 7, Horizon: 200, LinkFailures: 25, MeanDownSteps: 15,
		PermanentFrac: 0.2, NodeStalls: 6, MeanStallSteps: 10}
	a, err := Generate(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("same seed must generate identical schedules")
	}
	c, err := Generate(topo, Config{Seed: 8, Horizon: 200, LinkFailures: 25,
		MeanDownSteps: 15, PermanentFrac: 0.2, NodeStalls: 6, MeanStallSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds should generate different schedules")
	}
}

func TestGenerateValidAndSorted(t *testing.T) {
	topo := grid.NewSquareMesh(9)
	s, err := Generate(topo, Config{Seed: 3, Horizon: 100, LinkFailures: 40,
		MeanDownSteps: 5, PermanentFrac: 0.5, NodeStalls: 10, MeanStallSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(topo); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(s.Events, func(i, j int) bool { return s.Events[i].Step < s.Events[j].Step }) {
		t.Fatal("events must be sorted by step")
	}
	c := s.Counts()
	if c[LinkDown] != 2*40 {
		t.Fatalf("want %d link-down events (two per episode), got %d", 80, c[LinkDown])
	}
	if c[NodeStall] != 10 || c[NodeWake] != 10 {
		t.Fatalf("want 10 stall/wake pairs, got %d/%d", c[NodeStall], c[NodeWake])
	}
	// Every transient down has a matching up; permanent downs have none.
	perm := 0
	for _, e := range s.Events {
		if e.Kind == LinkDown && e.Permanent {
			perm++
		}
	}
	if c[LinkDown]-perm != c[LinkUp] {
		t.Fatalf("transient downs (%d) must pair with ups (%d)", c[LinkDown]-perm, c[LinkUp])
	}
}

func TestGenerateBidirectional(t *testing.T) {
	topo := grid.NewSquareMesh(6)
	s, err := Generate(topo, Config{Seed: 11, Horizon: 50, LinkFailures: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Link-down events come in same-step pairs naming opposite channels.
	byStep := map[int][]Event{}
	for _, e := range s.Events {
		if e.Kind == LinkDown {
			byStep[e.Step] = append(byStep[e.Step], e)
		}
	}
	for step, evs := range byStep {
		if len(evs)%2 != 0 {
			t.Fatalf("step %d has an unpaired link-down", step)
		}
	}
}

func TestGenerateTorusLinks(t *testing.T) {
	topo := grid.NewSquareTorus(5)
	if got, want := len(links(topo)), 2*5*5; got != want {
		t.Fatalf("torus link count: got %d want %d", got, want)
	}
	mesh := grid.NewSquareMesh(5)
	if got, want := len(links(mesh)), 2*5*4; got != want {
		t.Fatalf("mesh link count: got %d want %d", got, want)
	}
}

func TestGenerateErrors(t *testing.T) {
	topo := grid.NewSquareMesh(4)
	if _, err := Generate(topo, Config{LinkFailures: -1}); err == nil {
		t.Fatal("negative episode count must error")
	}
	if _, err := Generate(topo, Config{LinkFailures: 1}); err == nil {
		t.Fatal("missing horizon must error")
	}
	if _, err := Generate(topo, Config{LinkFailures: 1, Horizon: 10, PermanentFrac: 1.5}); err == nil {
		t.Fatal("PermanentFrac > 1 must error")
	}
	if _, err := Generate(grid.NewMesh(1, 1), Config{LinkFailures: 1, Horizon: 10}); err == nil {
		t.Fatal("linkless topology must error")
	}
	empty, err := Generate(topo, Config{})
	if err != nil || !empty.Empty() {
		t.Fatalf("zero config must yield an empty schedule, got %v, %v", empty, err)
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	topo := grid.NewSquareMesh(4)
	cases := []Schedule{
		{Events: []Event{{Step: 0, Kind: LinkDown, Node: 0, Dir: grid.East}}},
		{Events: []Event{{Step: 1, Kind: LinkDown, Node: 99, Dir: grid.East}}},
		{Events: []Event{{Step: 1, Kind: LinkDown, Node: 0, Dir: grid.West}}}, // missing outlink
		{Events: []Event{{Step: 1, Kind: NodeStall, Node: 0, Dir: grid.East}}},
		{Events: []Event{{Step: 1, Kind: Kind(9), Node: 0}}},
	}
	for i, s := range cases {
		if err := s.Validate(topo); err == nil {
			t.Fatalf("case %d must fail validation", i)
		}
	}
	ok := Schedule{Events: []Event{{Step: 1, Kind: LinkDown, Node: 0, Dir: grid.East},
		{Step: 2, Kind: NodeStall, Node: 3, Dir: grid.NoDir}}}
	if err := ok.Validate(topo); err != nil {
		t.Fatal(err)
	}
}
