// Package fault provides deterministic, seeded fault schedules for the
// routing engine: transient and permanent link failures and node stalls.
// A schedule is generated up front from a topology, a seed and a small
// parameter set, so a run under faults is exactly reproducible from
// (workload seed, fault seed) — the property the robustness experiments
// and the fault fuzzer rely on (see docs/ROBUSTNESS.md).
//
// The package is a leaf: it imports only internal/grid, so the engine
// (internal/sim), the routers and the CLIs can all depend on it without
// cycles. The engine consumes a Schedule as a sorted event stream and
// applies the events that fall due at the start of each step, before the
// outqueue policies run (part (a) of the five-part step).
//
// Fault model:
//
//   - Link failures are bidirectional: when the link between adjacent
//     nodes A and B fails, both directed channels (A→B and B→A) are down,
//     so a schedule emits one LinkDown event per endpoint. A transient
//     failure recovers after a sampled duration (paired LinkUp events); a
//     permanent one never does.
//   - Node stalls freeze a node for a window: a stalled node neither
//     schedules, accepts, nor updates, and packets cannot be delivered
//     into it. Its resident packets are preserved.
//
// Overlapping episodes on the same link or node are legal; the engine
// tracks them with counters, so a link is up again only once every
// transient episode covering it has ended.
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"meshroute/internal/grid"
)

// Kind identifies a fault event type.
type Kind uint8

const (
	// LinkDown takes the directed channel (Node, Dir) down.
	LinkDown Kind = iota
	// LinkUp ends one transient down episode of the channel (Node, Dir).
	LinkUp
	// NodeStall freezes the node.
	NodeStall
	// NodeWake ends one stall episode of the node.
	NodeWake
)

var kindNames = [...]string{"link-down", "link-up", "node-stall", "node-wake"}

// String returns the event kind's wire name (used in the fault-event
// JSONL lines, see docs/ROBUSTNESS.md).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one scheduled fault state change. Events take effect at the
// start of step Step, before outqueue scheduling.
type Event struct {
	// Step is the 1-based engine step at which the event takes effect.
	Step int
	// Kind is the event type.
	Kind Kind
	// Node is the affected node (for link events, the channel's sender).
	Node grid.NodeID
	// Dir is the directed channel's direction for link events; NoDir for
	// node events.
	Dir grid.Dir
	// Permanent marks a LinkDown that never recovers (no paired LinkUp).
	Permanent bool
}

// Config parameterizes Generate. The zero value yields an empty schedule.
type Config struct {
	// Seed selects the deterministic random stream.
	Seed int64
	// Horizon is the number of steps over which fault onsets are drawn
	// (onset steps are uniform in [1, Horizon]). Required (>= 1) when any
	// episode count is positive.
	Horizon int
	// LinkFailures is the number of link-failure episodes to inject.
	// Links are drawn uniformly with replacement, so the same link may
	// fail more than once.
	LinkFailures int
	// MeanDownSteps is the mean duration of a transient link failure
	// (durations are 1 + an exponential with this mean). Default 1.
	MeanDownSteps int
	// PermanentFrac is the probability, per link-failure episode, that
	// the failure is permanent. Must be in [0, 1].
	PermanentFrac float64
	// NodeStalls is the number of node-stall episodes to inject.
	NodeStalls int
	// MeanStallSteps is the mean stall duration. Default 1.
	MeanStallSteps int
}

// Schedule is an immutable, sorted fault schedule. Build one with
// Generate (or assemble Events by hand and call Finalize for tests).
type Schedule struct {
	// Events is the event stream, sorted by Step; events sharing a step
	// keep their generation order. The engine applies every event with
	// Step <= t at the start of step t.
	Events []Event
	// N is the node count of the topology the schedule was generated
	// for; the engine rejects a schedule whose N does not match.
	N int
}

// Empty reports whether the schedule contains no events.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// Counts returns the number of events per kind, in Kind order.
func (s *Schedule) Counts() [4]int {
	var c [4]int
	for _, e := range s.Events {
		c[e.Kind]++
	}
	return c
}

// String summarizes the schedule.
func (s *Schedule) String() string {
	c := s.Counts()
	perm := 0
	for _, e := range s.Events {
		if e.Kind == LinkDown && e.Permanent {
			perm++
		}
	}
	return fmt.Sprintf("fault.Schedule{%d events: %d link-down (%d permanent), %d link-up, %d stalls, %d wakes}",
		len(s.Events), c[LinkDown], perm, c[LinkUp], c[NodeStall], c[NodeWake])
}

// Finalize sorts the events by step (stable, preserving insertion order
// within a step) and returns the schedule, for hand-assembled schedules.
func (s *Schedule) Finalize() *Schedule {
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].Step < s.Events[j].Step })
	return s
}

// Validate checks every event against a topology: nodes in range, link
// events on existing outlinks, steps >= 1, and node events carrying NoDir.
func (s *Schedule) Validate(topo grid.Topology) error {
	if s.N != 0 && s.N != topo.N() {
		return fmt.Errorf("fault: schedule generated for %d nodes, topology has %d", s.N, topo.N())
	}
	for i, e := range s.Events {
		if e.Step < 1 {
			return fmt.Errorf("fault: event %d has step %d (want >= 1)", i, e.Step)
		}
		if int(e.Node) < 0 || int(e.Node) >= topo.N() {
			return fmt.Errorf("fault: event %d names node %d outside the topology", i, e.Node)
		}
		switch e.Kind {
		case LinkDown, LinkUp:
			if e.Dir >= grid.NumDirs {
				return fmt.Errorf("fault: link event %d has invalid direction %v", i, e.Dir)
			}
			if _, ok := topo.Neighbor(e.Node, e.Dir); !ok {
				return fmt.Errorf("fault: link event %d names missing outlink %v of node %v",
					i, e.Dir, topo.CoordOf(e.Node))
			}
		case NodeStall, NodeWake:
			if e.Dir != grid.NoDir {
				return fmt.Errorf("fault: node event %d carries direction %v (want NoDir)", i, e.Dir)
			}
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, e.Kind)
		}
	}
	return nil
}

// link is one undirected mesh link, identified by its canonical endpoint
// and direction (East or North).
type link struct {
	node grid.NodeID
	dir  grid.Dir
}

// links enumerates the undirected links of the topology in deterministic
// order: for each node in ID order, its East then North outlink (this
// covers every link exactly once on both the mesh and the torus).
func links(topo grid.Topology) []link {
	out := make([]link, 0, 2*topo.N())
	for id := grid.NodeID(0); int(id) < topo.N(); id++ {
		for _, d := range [...]grid.Dir{grid.East, grid.North} {
			if _, ok := topo.Neighbor(id, d); ok {
				out = append(out, link{id, d})
			}
		}
	}
	return out
}

// Generate builds a seeded fault schedule for the topology. The same
// (topology, config) pair always yields the identical schedule, and the
// engine replays it into an identical fault-event stream.
func Generate(topo grid.Topology, cfg Config) (*Schedule, error) {
	if cfg.LinkFailures < 0 || cfg.NodeStalls < 0 {
		return nil, fmt.Errorf("fault: negative episode count (%d link failures, %d stalls)",
			cfg.LinkFailures, cfg.NodeStalls)
	}
	if cfg.PermanentFrac < 0 || cfg.PermanentFrac > 1 {
		return nil, fmt.Errorf("fault: PermanentFrac %v outside [0, 1]", cfg.PermanentFrac)
	}
	s := &Schedule{N: topo.N()}
	if cfg.LinkFailures == 0 && cfg.NodeStalls == 0 {
		return s, nil
	}
	if cfg.Horizon < 1 {
		return nil, fmt.Errorf("fault: Horizon %d (want >= 1 when injecting faults)", cfg.Horizon)
	}
	meanDown := cfg.MeanDownSteps
	if meanDown < 1 {
		meanDown = 1
	}
	meanStall := cfg.MeanStallSteps
	if meanStall < 1 {
		meanStall = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ls := links(topo)
	if len(ls) == 0 && cfg.LinkFailures > 0 {
		return nil, fmt.Errorf("fault: topology has no links to fail")
	}
	for i := 0; i < cfg.LinkFailures; i++ {
		l := ls[rng.Intn(len(ls))]
		nb, _ := topo.Neighbor(l.node, l.dir)
		start := 1 + rng.Intn(cfg.Horizon)
		perm := rng.Float64() < cfg.PermanentFrac
		// Both directed channels fail together (bidirectional link).
		s.Events = append(s.Events,
			Event{Step: start, Kind: LinkDown, Node: l.node, Dir: l.dir, Permanent: perm},
			Event{Step: start, Kind: LinkDown, Node: nb, Dir: l.dir.Opposite(), Permanent: perm})
		if !perm {
			dur := 1 + int(rng.ExpFloat64()*float64(meanDown))
			s.Events = append(s.Events,
				Event{Step: start + dur, Kind: LinkUp, Node: l.node, Dir: l.dir},
				Event{Step: start + dur, Kind: LinkUp, Node: nb, Dir: l.dir.Opposite()})
		}
	}
	for i := 0; i < cfg.NodeStalls; i++ {
		id := grid.NodeID(rng.Intn(topo.N()))
		start := 1 + rng.Intn(cfg.Horizon)
		dur := 1 + int(rng.ExpFloat64()*float64(meanStall))
		s.Events = append(s.Events,
			Event{Step: start, Kind: NodeStall, Node: id, Dir: grid.NoDir},
			Event{Step: start + dur, Kind: NodeWake, Node: id, Dir: grid.NoDir})
	}
	return s.Finalize(), nil
}
