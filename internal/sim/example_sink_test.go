package sim

import (
	"fmt"

	"meshroute/internal/grid"
	"meshroute/internal/obs"
)

// ExampleNetwork_SetMetricsSink attaches an in-memory metrics sink to a
// run and reads the per-step time series back: the number of samples, the
// delivery curve's final value, and the peak single-queue occupancy.
func ExampleNetwork_SetMetricsSink() {
	const n = 4
	net := MustNew(Config{Topo: grid.NewSquareMesh(n), K: 2, Queues: CentralQueue, RequireMinimal: true})
	for x := 0; x < n; x++ {
		net.MustPlace(net.NewPacket(net.Topo.ID(grid.XY(x, 0)), net.Topo.ID(grid.XY(n-1-x, n-1))))
	}

	sink := &obs.Memory{}
	net.SetMetricsSink(sink)
	if _, err := net.Run(greedyXY{}, 100); err != nil {
		fmt.Println(err)
		return
	}

	curve := sink.DeliveryCurve()
	fmt.Printf("samples: %d\n", len(sink.Steps))
	fmt.Printf("delivered: %d of %d\n", curve[len(curve)-1], net.TotalPackets())
	fmt.Printf("peak queue: %d\n", sink.PeakQueue())
	// Output:
	// samples: 8
	// delivered: 4 of 4
	// peak queue: 2
}
