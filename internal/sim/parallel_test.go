package sim

import (
	"testing"

	"meshroute/internal/grid"
)

// buildReversal fills an n×n mesh with the reversal permutation: node i
// sends one packet to node n²-1-i (skipping fixed points).
func buildReversal(tb testing.TB, n, k, workers int) *Network {
	tb.Helper()
	net := MustNew(Config{
		Topo:           grid.NewSquareMesh(n),
		K:              k,
		Queues:         CentralQueue,
		RequireMinimal: true,
		Workers:        workers,
	})
	total := n * n
	for i := 0; i < total; i++ {
		j := total - 1 - i
		if i == j {
			continue
		}
		net.MustPlace(net.NewPacket(grid.NodeID(i), grid.NodeID(j)))
	}
	return net
}

// buildDynamic builds a mesh with a deterministic arithmetic injection
// pattern, exercising the backlog path.
func buildDynamic(tb testing.TB, n, k, horizon, workers int) *Network {
	tb.Helper()
	net := MustNew(Config{
		Topo:           grid.NewSquareMesh(n),
		K:              k,
		Queues:         CentralQueue,
		RequireMinimal: true,
		Workers:        workers,
	})
	for step := 1; step <= horizon/2; step++ {
		for id := 0; id < n*n; id++ {
			if (id+step)%5 == 0 {
				dst := grid.NodeID((id*17 + step*23) % (n * n))
				net.QueueInjection(net.NewPacket(grid.NodeID(id), dst), step)
			}
		}
	}
	return net
}

// TestParallelWorkersBitIdentical drives the same instance serial and with
// several worker counts and requires identical per-packet outcomes AND an
// identical occupied-list order after every step — the strongest form of
// the deterministic-merge contract. Running under -race also makes this the
// data-race probe for the sharded part (a)/(e) paths.
func TestParallelWorkersBitIdentical(t *testing.T) {
	const n, k, steps = 12, 2, 120
	for _, workers := range []int{2, 3, 8} {
		ref := buildDynamic(t, n, k, steps, 0)
		refAlg := greedyXY{}
		par := buildDynamic(t, n, k, steps, workers)
		parAlg := greedyXY{}
		for s := 0; s < steps; s++ {
			if ref.Done() && par.Done() {
				break
			}
			if err := ref.StepOnce(refAlg); err != nil {
				t.Fatal(err)
			}
			if err := par.StepOnce(parAlg); err != nil {
				t.Fatal(err)
			}
			ro, po := ref.Occupied(), par.Occupied()
			if len(ro) != len(po) {
				t.Fatalf("workers=%d step %d: occ sizes differ (%d vs %d)", workers, s, len(ro), len(po))
			}
			for i := range ro {
				if ro[i] != po[i] {
					t.Fatalf("workers=%d step %d: occ[%d] = %v vs %v", workers, s, i, ro[i], po[i])
				}
			}
		}
		rp, pp := ref.Packets(), par.Packets()
		if len(rp) != len(pp) {
			t.Fatalf("workers=%d: packet counts differ", workers)
		}
		for i := range rp {
			a, b := rp[i], pp[i]
			if a.DeliverStep != b.DeliverStep || a.Hops != b.Hops || a.At != b.At {
				t.Fatalf("workers=%d: packet %d diverged: serial (deliver=%d hops=%d at=%v) vs parallel (deliver=%d hops=%d at=%v)",
					workers, a.ID, a.DeliverStep, a.Hops, a.At, b.DeliverStep, b.Hops, b.At)
			}
		}
	}
}

// nonCloner wraps greedyXY while hiding its CloneForWorker method, to pin
// the silent serial fallback for algorithms without ParallelCloner.
type nonCloner struct{ g greedyXY }

func (a nonCloner) Name() string                                     { return "non-cloner" }
func (a nonCloner) InitNode(net *Network, n *Node)                   { a.g.InitNode(net, n) }
func (a nonCloner) Schedule(net *Network, n *Node) [grid.NumDirs]int { return a.g.Schedule(net, n) }
func (a nonCloner) Accept(net *Network, n *Node, offers []Offer, acc []bool) {
	a.g.Accept(net, n, offers, acc)
}
func (a nonCloner) Update(net *Network, n *Node) { a.g.Update(net, n) }

// TestWorkersNonClonerFallsBackSerial: Workers > 1 with an algorithm that
// does not implement ParallelCloner must still run (serially) and match the
// serial result exactly.
func TestWorkersNonClonerFallsBackSerial(t *testing.T) {
	ref := buildDynamic(t, 8, 2, 60, 0)
	par := buildDynamic(t, 8, 2, 60, 4)
	if _, err := ref.RunPartial(nonCloner{}, 200); err != nil {
		t.Fatal(err)
	}
	if _, err := par.RunPartial(nonCloner{}, 200); err != nil {
		t.Fatal(err)
	}
	rp, pp := ref.Packets(), par.Packets()
	for i := range rp {
		if rp[i].DeliverStep != pp[i].DeliverStep || rp[i].Hops != pp[i].Hops {
			t.Fatalf("packet %d diverged under non-cloner fallback", rp[i].ID)
		}
	}
}

// TestOccupiedOrderDeterminism pins the determinism contract documented on
// the occ field: two identical runs observe the identical (insertion-
// ordered, not sorted) Occupied() sequence after every step.
func TestOccupiedOrderDeterminism(t *testing.T) {
	const n, k, steps = 10, 2, 80
	a := buildDynamic(t, n, k, steps, 0)
	b := buildDynamic(t, n, k, steps, 0)
	sorted := true
	for s := 0; s < steps && !(a.Done() && b.Done()); s++ {
		if err := a.StepOnce(greedyXY{}); err != nil {
			t.Fatal(err)
		}
		if err := b.StepOnce(greedyXY{}); err != nil {
			t.Fatal(err)
		}
		ao, bo := a.Occupied(), b.Occupied()
		if len(ao) != len(bo) {
			t.Fatalf("step %d: occupied sizes differ", s)
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("step %d: Occupied()[%d] differs between identical runs: %v vs %v", s, i, ao[i], bo[i])
			}
			if i > 0 && ao[i] < ao[i-1] {
				sorted = false
			}
		}
	}
	// The contract is insertion order, not sortedness; with dynamic
	// injection the list goes unsorted, which is what the documentation
	// now states. Guard against silently reverting to a sorted list.
	if sorted {
		t.Log("note: occupied list stayed sorted this run (contract only requires determinism)")
	}
}

// TestSteadyStateStepAllocs pins the zero-allocation hot path: after
// warmup, a step with a nil sink and no injections must not allocate.
func TestSteadyStateStepAllocs(t *testing.T) {
	net := buildReversal(t, 16, 2, 0)
	alg := greedyXY{}
	for i := 0; i < 5; i++ { // warm scratch buffers
		if err := net.StepOnce(alg); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(20, func() {
		if err := net.StepOnce(alg); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state StepOnce allocates %.1f times per step, want 0", avg)
	}
}
