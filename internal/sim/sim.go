// Package sim implements the synchronous, multi-port packet-routing model of
// Chinn, Leighton and Tompa (Section 2): an n×n mesh or torus in which every
// node holds a bounded queue of packets and one step consists of
//
//	(a) each node's outqueue policy choosing at most one packet per outlink,
//	(b) an optional adversary exchange of destination addresses,
//	(c) each node's inqueue policy accepting or refusing incoming packets,
//	(d) simultaneous transmission of the accepted packets, and
//	(e) node- and packet-state updates,
//
// exactly the five-part step sequence used in the paper's lower-bound
// construction. Packets that reach their destination are delivered and leave
// the network.
//
// The engine supports the central-queue model (one queue of capacity K per
// node) and the four-incoming-queues model of Section 5 / Theorem 15 (one
// queue of capacity K per inlink). It iterates only over occupied nodes, so
// long runs on sparse instances cost O(packets) per step.
//
// # Index-based packet representation
//
// Packet state is stored struct-of-arrays: every per-packet field lives in
// its own dense slice inside the Network's PacketStore (the exported P
// field), and packets are referenced everywhere — queue slots, scheduled
// moves, offers, adversary role indices — by PacketID, a uint32 index into
// those slices. Queue contents are PacketID slots in one flat backing array
// shared by all nodes (each node owns a contiguous region of it), so a step
// touches dense, cache-adjacent memory instead of chasing per-packet
// pointers. The representation upholds two invariants that all client code
// may rely on:
//
//   - a PacketID is stable for the packet's lifetime: NewPacket assigns the
//     next free index and nothing ever moves a packet to a different index;
//   - slot 0 of the store is never a live packet: index 0 is a reserved
//     sentinel, so the zero PacketID is always "no packet" and external
//     packet IDs are PacketID-1.
//
// The old pointer-based *Packet API survives as a by-value snapshot: Packet
// is now a plain value struct and Network.Packets materializes the store
// into a reused snapshot slice for read-only consumers (digests, replay
// verification, rendering). Mutating a snapshot does not affect the run;
// write through the store (or engine methods) instead.
package sim

import (
	"errors"
	"fmt"
	"slices"

	"meshroute/internal/fault"
	"meshroute/internal/grid"
	"meshroute/internal/obs"
)

// QueueModel selects how a node's storage is organized.
type QueueModel uint8

const (
	// CentralQueue gives each node a single queue of capacity K
	// (the model of Sections 2-4).
	CentralQueue QueueModel = iota
	// PerInlinkQueues gives each node four queues of capacity K, one per
	// inlink (the "Other Queue Types" model of Section 5, used by the
	// Theorem 15 router). Packets that originate at a node live in a
	// separate origin buffer that does not count against K.
	PerInlinkQueues
)

// Queue tags. For PerInlinkQueues, tags 0..3 are the inlink queues named by
// the direction the packet came *from* (a packet travelling East arrives in
// the West queue). OriginTag holds packets that have not yet moved.
const (
	// OriginTag is the queue tag of packets still at their source.
	OriginTag uint8 = 4
	numTags         = 5
)

// PacketID is the engine's handle for one packet: an index into the dense
// per-field slices of the PacketStore. It is assigned by NewPacket, is
// stable for the packet's lifetime, and 0 is a reserved sentinel that never
// names a live packet (so the zero value always means "no packet").
type PacketID uint32

// NoPacket is the zero PacketID sentinel.
const NoPacket PacketID = 0

// ID returns the packet's external identifier: dense, 0-based, in creation
// order. It equals the index minus one (index 0 is the reserved sentinel),
// so IDs are identical to those the pointer-based engine assigned.
func (p PacketID) ID() int32 { return int32(p) - 1 }

// PacketStore is the struct-of-arrays backing store for all packets of a
// Network: field i of packet p lives at slice[p] of the corresponding dense
// slice. All exported slices are indexed by PacketID; index 0 is a reserved
// sentinel (never a live packet). Fields may be read — and, for adversary
// exchange hooks and tests, written — directly; the engine maintains At,
// QTag, Arrived, ArrivedStep, InjectStep, DeliverStep and Hops itself.
type PacketStore struct {
	// Src is the node where the packet was injected.
	Src []grid.NodeID
	// Dst is the destination. The adversary exchange hook may swap the
	// Dst entries of two packets mid-run (part (b) of a step).
	Dst []grid.NodeID
	// At is the node currently holding the packet (its destination once
	// delivered). Maintained by the engine.
	At []grid.NodeID
	// State is algorithm-owned scratch that travels with the packet.
	// Under destination-exchangeability it may be updated only from
	// information listed in Section 2 of the paper.
	State []uint64
	// Arrived is the direction of travel of the packet's last hop
	// (NoDir if it has not moved).
	Arrived []grid.Dir
	// QTag is the queue within its current node that holds the packet.
	QTag []uint8
	// Class is a free tag for algorithms and adversaries (e.g. the
	// N_i/E_i packet kind in the lower-bound construction).
	Class []uint8
	// Tag is a free integer tag (e.g. the i index of an N_i-packet).
	Tag []int32
	// ArrivedStep is the step of the packet's last hop (0 if none).
	ArrivedStep []int32
	// InjectStep is the step at which the packet entered the network.
	InjectStep []int32
	// DeliverStep is the step at which the packet was delivered, or -1.
	DeliverStep []int32
	// Hops counts link traversals.
	Hops []int32

	// slot is the packet's position within its holder's queue region,
	// maintained by the engine (attach and the part (d) compaction), so
	// removal never needs a scan.
	slot []int32
	// departing marks a packet scheduled to leave its node during the
	// part (d) batch removal of the current step.
	departing []bool
}

// Len returns the number of packets ever created (excluding the sentinel).
func (st *PacketStore) Len() int { return len(st.Src) - 1 }

// Delivered reports whether the packet has reached its destination.
func (st *PacketStore) Delivered(p PacketID) bool { return st.DeliverStep[p] >= 0 }

// add appends one packet to every field slice and returns its index.
func (st *PacketStore) add(src, dst grid.NodeID) PacketID {
	st.Src = append(st.Src, src)
	st.Dst = append(st.Dst, dst)
	st.At = append(st.At, src)
	st.State = append(st.State, 0)
	st.Arrived = append(st.Arrived, grid.NoDir)
	st.QTag = append(st.QTag, 0)
	st.Class = append(st.Class, 0)
	st.Tag = append(st.Tag, 0)
	st.ArrivedStep = append(st.ArrivedStep, 0)
	st.InjectStep = append(st.InjectStep, 0)
	st.DeliverStep = append(st.DeliverStep, -1)
	st.Hops = append(st.Hops, 0)
	st.slot = append(st.slot, -1)
	st.departing = append(st.departing, false)
	return PacketID(len(st.Src) - 1)
}

// Packet is a read-only by-value snapshot of one packet, materialized from
// the PacketStore by Network.Packets or Network.PacketSnapshot. Routing
// algorithms under the destination-exchangeability restriction never see
// Dst directly; they receive profitable-outlink views computed by the
// engine (package dex).
type Packet struct {
	// ID is a unique, dense identifier (PacketID minus one).
	ID int32
	// Src is the node where the packet was injected.
	Src grid.NodeID
	// Dst is the destination at snapshot time.
	Dst grid.NodeID
	// State is the algorithm-owned scratch word.
	State uint64
	// Arrived is the direction of travel of the packet's last hop
	// (NoDir if it has not moved).
	Arrived grid.Dir
	// ArrivedStep is the step of the packet's last hop (0 if none).
	ArrivedStep int
	// InjectStep is the step at which the packet entered the network.
	InjectStep int
	// DeliverStep is the step at which the packet was delivered, or -1.
	DeliverStep int
	// Hops counts link traversals.
	Hops int
	// At is the node currently holding the packet (its destination once
	// delivered).
	At grid.NodeID
	// QTag is the queue within its current node that holds the packet.
	QTag uint8
	// Class is a free tag for algorithms and adversaries.
	Class uint8
	// Tag is a free integer tag.
	Tag int32
}

// Delivered reports whether the packet has reached its destination.
func (p Packet) Delivered() bool { return p.DeliverStep >= 0 }

// Node is one mesh node: its algorithm state and the location of its queue
// region within the network's flat slot array. Queue contents are read with
// Network.PacketsOf.
type Node struct {
	// ID is the node identifier.
	ID grid.NodeID
	// State is algorithm-owned scratch (e.g. round-robin counters).
	State uint64
	// Extra is algorithm-owned rich state for algorithms that need more
	// than a word; nil for most.
	Extra interface{}

	// qStart/qLen/qCap locate the node's queue region in Network.slots:
	// the resident packets, in arrival (FIFO) order, are
	// slots[qStart : qStart+qLen], inside a reserved region of qCap slots.
	qStart, qLen, qCap uint32

	counts [numTags]int16
}

// Len returns the number of resident packets (including the origin buffer).
func (n *Node) Len() int { return int(n.qLen) }

// QueueLen returns the number of packets in the queue with the given tag.
func (n *Node) QueueLen(tag uint8) int { return int(n.counts[tag]) }

// NetworkLen returns the number of resident packets excluding the origin
// buffer (i.e. packets that count against queue capacity in the
// per-inlink-queue model).
func (n *Node) NetworkLen() int { return n.Len() - n.QueueLen(OriginTag) }

// Offer describes a packet scheduled to enter a node during part (a) of the
// current step, presented to the target's inqueue policy in part (c).
type Offer struct {
	// P is the scheduled packet.
	P PacketID
	// From is the node the packet is coming from.
	From grid.NodeID
	// Travel is the direction of travel (the sender's outlink); the
	// packet arrives on the target's Travel.Opposite() inlink.
	Travel grid.Dir
}

// Move describes one scheduled transmission, given to the exchange hook
// (part (b)).
type Move struct {
	// P is the scheduled packet.
	P PacketID
	// From is the sending node.
	From grid.NodeID
	// To is the target node.
	To grid.NodeID
	// Travel is the direction of travel.
	Travel grid.Dir
}

// ExchangeFn is the adversary hook invoked between scheduling and
// acceptance. It may swap the Dst entries of packet pairs (an "exchange" in
// the paper's sense) but must not move, add or remove packets.
type ExchangeFn func(net *Network, step int, moves []Move)

// Algorithm is a routing algorithm driven by the engine. Implementations
// must be deterministic. Destination-exchangeable algorithms should be
// built with package dex, which restricts the information they can see;
// general algorithms (e.g. farthest-first) may inspect the packet store
// freely.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// InitNode sets up node (and origin packet) state before step 1.
	// It is called once per node holding at least one packet.
	InitNode(net *Network, n *Node)
	// Schedule implements the outqueue policy: for each direction it
	// returns the index (into net.PacketsOf(n)) of the packet to send on
	// that outlink, or -1. A packet may be scheduled on at most one
	// outlink, and only on an existing outlink.
	Schedule(net *Network, n *Node) [grid.NumDirs]int
	// Accept implements the inqueue policy: accept[i] reports whether
	// offers[i] is admitted. The engine provides accept with exactly
	// len(offers) entries, cleared to false; the policy sets the entries
	// it admits. It must never overflow a queue.
	Accept(net *Network, n *Node, offers []Offer, accept []bool)
	// Update is the part (e) state update, called for every node that
	// held a packet at the start or end of the step.
	Update(net *Network, n *Node)
}

// ParallelCloner is implemented by algorithms whose Schedule, Accept and
// Update are node-local (they read shared network state but mutate only the
// node they are given and its packets). When Config.Workers > 1, the engine
// calls CloneForWorker once per worker and drives each clone on disjoint
// shards: the occupied-node list for Schedule and Update, the offer-target
// list for Accept (every Accept call still sees only one target node and
// its own offers); InitNode always runs on the original. Stateless
// algorithms may simply return themselves.
type ParallelCloner interface {
	Algorithm
	// CloneForWorker returns an Algorithm safe to drive concurrently with
	// the receiver on disjoint node sets.
	CloneForWorker() Algorithm
}

// Config configures a Network.
type Config struct {
	// Topo is the mesh or torus.
	Topo grid.Topology
	// K is the capacity of each queue (k >= 1 in the paper).
	K int
	// Queues selects the queue model.
	Queues QueueModel
	// RequireMinimal makes the engine reject any scheduled move that is
	// not profitable (shortest-path). Enable for minimal routers.
	RequireMinimal bool
	// MaxStray, when > 0, bounds how far a packet may move beyond the
	// rectangle spanned by its source and destination — the class of the
	// Section 5 "Nonminimal extensions" with δ = MaxStray: every move
	// must keep the packet within that rectangle inflated by MaxStray in
	// each direction. 0 means unrestricted (when RequireMinimal is
	// false). Mesh only.
	MaxStray int
	// CheckInvariants enables the per-step runtime invariant checker:
	// queue capacity under either queue model, per-node count
	// consistency, and packet conservation (see checkStepInvariants).
	// When false the engine pays one branch per step and zero
	// allocations for it.
	CheckInvariants bool
	// Faults is an optional deterministic fault schedule (link failures,
	// node stalls) applied at the start of each step; nil disables fault
	// injection entirely. See internal/fault and docs/ROBUSTNESS.md.
	Faults *fault.Schedule
	// Watchdog, when > 0, is the livelock watchdog's no-progress window
	// in steps: if Run/RunPartial executes this many consecutive steps
	// without a single delivery, the run aborts with a *LivelockError
	// carrying structured diagnostics instead of burning the remaining
	// step budget. 0 disables the watchdog.
	Watchdog int
	// Workers, when > 1, runs the step through the persistent parallel
	// pipeline (pipeline.go): part (a) scheduling, part (c) Accept
	// dispatch, the two part (d) owner-computes halves (sender-side
	// compaction, target-side apply) and part (e) updates are each sharded
	// across that many long-lived worker goroutines. It takes effect only
	// for algorithms implementing ParallelCloner; other algorithms run
	// serial. Each worker owns contiguous shards of the relevant work
	// lists and a private algorithm clone, touches only its own nodes,
	// and per-worker outputs are merged in shard order, so results are
	// bit-identical to serial execution. 0 and 1 mean serial.
	Workers int
}

// Network is a mesh with packets in flight. Create with New, populate with
// Place/QueueInjection, then drive with Run or StepOnce.
type Network struct {
	// Topo is the topology the network was built on.
	Topo grid.Topology
	// K is the per-queue capacity.
	K int
	// Queues is the queue model.
	Queues QueueModel

	// P is the struct-of-arrays packet store: P.Src[p], P.Dst[p], … are
	// the fields of PacketID p. Index 0 is a reserved sentinel.
	P PacketStore

	cfg   Config
	nodes []Node
	step  int

	// slots is the flat queue-slot array: every node's queue is a
	// contiguous region of it (see Node.qStart/qLen/qCap). Regions grow by
	// doubling (relocating to the end of slots and abandoning the old
	// region), so at steady state no attach ever allocates.
	slots []PacketID

	// occ is the occupied-node list, in first-occupied (insertion) order —
	// NOT sorted. Its order is deterministic: it depends only on the
	// placement/injection sequence and the algorithm's moves, so identical
	// runs see identical occ order (pinned by TestOccupiedOrderDeterminism).
	// Parts (a) and (e) iterate it, which fixes the order moves are
	// presented to the exchange hook and offers to inqueue policies.
	occ       []grid.NodeID
	isOcc     []bool
	total     int
	delivered int
	placed    []PacketID // all placed/queued packets, in placement order
	snapshot  []Packet   // reused buffer backing Packets()

	pendingInj map[int][]PacketID // injection step -> packets
	backlog    [][]PacketID       // per node: injected but not yet in queue

	// Active-backlog tracking: the nodes whose backlog is nonempty, so
	// injectPending touches O(active) slots per step instead of scanning
	// all N backlog slots. inBacklog is the membership bitmap; backlogHead
	// is the index of each backlog's first undrained packet, so draining
	// advances an index instead of reslicing (which would shed the slice's
	// base pointer and force a fresh allocation every refill).
	backlogNodes []grid.NodeID
	inBacklog    []bool
	backlogHead  []int32

	// Streaming-workload state (see source.go). The source is pulled once
	// per step by the injection phase; injBuf is the reused Next buffer.
	source       Source
	admit        AdmissionPolicy
	srcExhausted bool
	openSource   bool // source injects beyond step 0 (an online run)
	injBuf       []Injection

	// analyzer, when non-nil, observes every packet that materializes in
	// the run (placements, queued injections, admitted streamed
	// injections) so congestion/dilation accrue at admission time. Nil
	// when analysis is off: the hook is one pointer test per admission.
	analyzer Analyzer

	// Per-step admission counters, reset at the top of the injection
	// phase and folded into Metrics / the step sample at its end.
	stepOffered  int
	stepAdmitted int
	stepRefused  int
	stepDropped  int

	exchange  ExchangeFn
	observer  ObserverFn
	sink      obs.Sink
	eventSink obs.EventSink // sink, if it also records fault events

	// Conservation counters for the invariant checker.
	pendingTotal int // packets queued for injection, not yet backlogged
	backlogTotal int // packets in per-source backlogs, not yet in a queue

	// Fault-injection state (allocated only when cfg.Faults is set).
	hasFaults   bool
	faultCursor int                   // next unapplied schedule event
	linkDownCnt [][grid.NumDirs]int16 // per node: open transient downs per outlink
	linkPerm    []grid.DirSet         // per node: permanently failed outlinks
	stalledCnt  []int16               // per node: open stall episodes

	lastProgress int // last step with a delivery (watchdog progress mark)

	// Metrics accumulates run statistics.
	Metrics Metrics

	// Parallel step-pipeline state (used only when cfg.Workers > 1 and the
	// algorithm implements ParallelCloner; see pipeline.go). Clones and the
	// per-worker scratch are cached by algorithm name so repeated StepOnce
	// calls reuse them; pool is the persistent worker pool, spawned lazily
	// and stopped at the end of every Run.
	parName       string
	parClones     []Algorithm
	ws            []workerScratch
	pool          *stepPool
	poolFinalizer bool // finalizer backstop armed (once per Network)

	inited  bool
	scratch stepScratch
}

// stepScratch holds every per-step buffer the engine needs, reused across
// steps so a steady-state step allocates nothing. The four int32 arrays are
// node-indexed; offMark/sendMark use epoch stamping (compared against stamp)
// so they never need clearing.
type stepScratch struct {
	moves   []Move
	targets []grid.NodeID // part (c) offer targets, first-seen order

	// Dense per-node offer index: offers for targets[j] occupy
	// offers[offStart[t]:offStart[t]+offCount[t]]. offMark[t] == stamp
	// marks t as a target of the current step.
	offers   []Offer
	offStart []int32
	offCount []int32
	offMark  []int32
	// sendMark deduplicates sender nodes in the part (d) batch removal.
	sendMark []int32
	stamp    int32

	arrivals []arrival
	nDeliv   int           // length of the delivery prefix of arrivals
	accept   []bool        // Accept decision buffer, sliced per target
	senders  []grid.NodeID // distinct sending nodes of this step's arrivals

	// Weighted pipeline shard boundaries (length Workers+1, parallel steps
	// only): occBounds splits the occupied list by resident-packet mass
	// for the schedule phase, tgtBounds the target list by offer count for
	// the accept phase. See balanceBounds.
	occBounds []int
	tgtBounds []int

	// Observer record buffers (reused only when an observer is set).
	recMoves     []Move
	recDelivered []int32
}

// New creates an empty network, validating the configuration: the
// topology must be non-nil, K >= 1, the queue model known, MaxStray and
// Watchdog non-negative, and any fault schedule consistent with the
// topology.
func New(cfg Config) (*Network, error) {
	if cfg.Topo == nil {
		return nil, errors.New("sim: nil topology")
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("sim: queue capacity K=%d, need K >= 1", cfg.K)
	}
	if cfg.Queues != CentralQueue && cfg.Queues != PerInlinkQueues {
		return nil, fmt.Errorf("sim: unknown queue model %d", cfg.Queues)
	}
	if cfg.MaxStray < 0 {
		return nil, fmt.Errorf("sim: negative MaxStray %d", cfg.MaxStray)
	}
	if cfg.Watchdog < 0 {
		return nil, fmt.Errorf("sim: negative watchdog window %d", cfg.Watchdog)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("sim: negative worker count %d", cfg.Workers)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(cfg.Topo); err != nil {
			return nil, err
		}
	}
	n := cfg.Topo.N()
	net := &Network{
		Topo:       cfg.Topo,
		K:          cfg.K,
		Queues:     cfg.Queues,
		cfg:        cfg,
		nodes:      make([]Node, n),
		isOcc:      make([]bool, n),
		pendingInj: map[int][]PacketID{},
		backlog:    make([][]PacketID, n),
		inBacklog:  make([]bool, n),
	}
	net.backlogHead = make([]int32, n)
	for i := range net.nodes {
		net.nodes[i].ID = grid.NodeID(i)
	}
	// Index 0 of the packet store is the reserved sentinel: never a live
	// packet, so the zero PacketID always means "no packet".
	net.P.add(0, 0)
	net.scratch.offStart = make([]int32, n)
	net.scratch.offCount = make([]int32, n)
	net.scratch.offMark = make([]int32, n)
	net.scratch.sendMark = make([]int32, n)
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		net.hasFaults = true
		net.linkDownCnt = make([][grid.NumDirs]int16, n)
		net.linkPerm = make([]grid.DirSet, n)
		net.stalledCnt = make([]int16, n)
	}
	return net, nil
}

// MustNew is New but panics on a bad configuration, for tests, benchmarks
// and generators that construct known-valid networks.
func MustNew(cfg Config) *Network {
	net, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return net
}

// Step returns the number of steps executed so far.
func (net *Network) Step() int { return net.step }

// Node returns the node with the given identifier.
func (net *Network) Node(id grid.NodeID) *Node { return &net.nodes[id] }

// PacketsOf returns the node's resident packets in arrival (FIFO) order, as
// PacketID handles into the store. The slice aliases the engine's flat slot
// array: treat it as read-only, and do not retain it across engine calls
// (part (d) compaction and queue growth may rewrite or relocate it).
func (net *Network) PacketsOf(n *Node) []PacketID {
	return net.slots[n.qStart : n.qStart+n.qLen : n.qStart+n.qCap]
}

// PacketSnapshot materializes one packet's current store fields as a Packet
// value.
func (net *Network) PacketSnapshot(p PacketID) Packet {
	st := &net.P
	return Packet{
		ID:          p.ID(),
		Src:         st.Src[p],
		Dst:         st.Dst[p],
		State:       st.State[p],
		Arrived:     st.Arrived[p],
		ArrivedStep: int(st.ArrivedStep[p]),
		InjectStep:  int(st.InjectStep[p]),
		DeliverStep: int(st.DeliverStep[p]),
		Hops:        int(st.Hops[p]),
		At:          st.At[p],
		QTag:        st.QTag[p],
		Class:       st.Class[p],
		Tag:         st.Tag[p],
	}
}

// Packets materializes all packets ever placed or injected, in placement
// order (ID order for workloads that place packets as they create them),
// as by-value snapshots. Delivered packets remain in the slice (with
// DeliverStep set). The returned slice is a reused buffer owned by the
// network: it is valid until the next Packets call and mutating it does not
// affect the run.
func (net *Network) Packets() []Packet {
	if cap(net.snapshot) < len(net.placed) {
		net.snapshot = make([]Packet, 0, len(net.placed))
	}
	out := net.snapshot[:0]
	for _, p := range net.placed {
		out = append(out, net.PacketSnapshot(p))
	}
	net.snapshot = out
	return out
}

// TotalPackets returns the number of packets placed or queued for injection.
func (net *Network) TotalPackets() int { return net.total }

// DeliveredCount returns the number of packets delivered so far.
func (net *Network) DeliveredCount() int { return net.delivered }

// Done reports whether the run is quiescent: every materialized packet has
// been delivered, no injections are still scheduled, and any attached
// streaming source is exhausted. For open workloads (a live source) Done
// stays false until the source dries up and the network drains, so run
// termination comes from the step budget (the horizon) instead.
func (net *Network) Done() bool {
	return (net.source == nil || net.srcExhausted) &&
		net.delivered == net.total && len(net.pendingInj) == 0
}

// SetExchange installs the adversary exchange hook.
func (net *Network) SetExchange(fn ExchangeFn) { net.exchange = fn }

// StepRecord describes what happened in one step, for observers.
type StepRecord struct {
	// Step is the step number.
	Step int
	// Moves lists the applied (accepted) transmissions, including
	// deliveries.
	Moves []Move
	// Delivered lists the IDs of packets delivered this step.
	Delivered []int32
}

// ObserverFn receives a record after each step. The record and its slices
// are only valid during the call.
type ObserverFn func(rec StepRecord)

// SetObserver installs a per-step observer (tracing, visualization).
func (net *Network) SetObserver(fn ObserverFn) { net.observer = fn }

// SetMetricsSink installs a metrics sink that receives one obs.StepSample
// at the end of every step: per-direction link utilization, the delivery
// curve, in-flight packet counts, and the end-of-step queue-occupancy
// histogram. A nil sink (the default) disables sampling entirely; the
// step loop then pays one branch and allocates nothing extra. Pass an
// untyped nil to disable — a nil *obs.JSONL stored in the interface is
// not nil and will be called.
func (net *Network) SetMetricsSink(s obs.Sink) {
	net.sink = s
	net.eventSink, _ = s.(obs.EventSink)
}

// MetricsSink returns the installed metrics sink, or nil.
func (net *Network) MetricsSink() obs.Sink { return net.sink }

// LinkUp reports whether the directed channel (id, d) is currently up.
// Without a fault schedule every link is always up.
func (net *Network) LinkUp(id grid.NodeID, d grid.Dir) bool {
	if !net.hasFaults {
		return true
	}
	return !net.linkPerm[id].Has(d) && net.linkDownCnt[id][d] == 0
}

// DownOutlinks returns the set of currently-failed outlink directions of
// the node (empty without faults). The complement against the node's
// existing outlinks is the set a fault-aware router may use.
func (net *Network) DownOutlinks(id grid.NodeID) grid.DirSet {
	if !net.hasFaults {
		return 0
	}
	s := net.linkPerm[id]
	for d := grid.Dir(0); d < grid.NumDirs; d++ {
		if net.linkDownCnt[id][d] > 0 {
			s = s.Set(d)
		}
	}
	return s
}

// Stalled reports whether the node is currently stalled by a fault.
func (net *Network) Stalled(id grid.NodeID) bool {
	return net.hasFaults && net.stalledCnt[id] > 0
}

// emitEvent forwards a fault/watchdog event to the metrics sink, if the
// sink records events.
func (net *Network) emitEvent(e obs.Event) {
	if net.eventSink != nil {
		net.eventSink.Event(e)
	}
}

// Analyzer observes every packet that materializes in a run, at the
// moment it is admitted (placed, queued for injection, or streamed in).
// internal/analysis.Accumulator implements it to accrue congestion and
// dilation incrementally; the engine itself never imports the analysis
// package. Implementations must not allocate if the run is to stay
// zero-alloc, and must not retain references into the network.
type Analyzer interface {
	Admit(src, dst grid.NodeID)
}

// SetAnalyzer installs (or, with nil, removes) the admission-time
// analyzer. It must be called before any packet is admitted; with no
// analyzer installed the admission paths pay one nil test.
func (net *Network) SetAnalyzer(a Analyzer) { net.analyzer = a }

// NewPacket allocates a packet with the next free index, routed from src to
// dst, in the network's struct-of-arrays store. The packet is not placed;
// use Place or QueueInjection. The returned PacketID is stable for the life
// of the network.
func (net *Network) NewPacket(src, dst grid.NodeID) PacketID {
	return net.P.add(src, dst)
}

// Place puts a packet at its source node before the run starts. A packet
// whose source equals its destination is delivered immediately. Placement
// must respect the queue capacity in the central-queue model.
func (net *Network) Place(p PacketID) error {
	if net.step != 0 || net.inited {
		return errors.New("sim: Place after run started")
	}
	st := &net.P
	if net.analyzer != nil {
		net.analyzer.Admit(st.Src[p], st.Dst[p])
	}
	net.placed = append(net.placed, p)
	net.total++
	st.At[p] = st.Src[p]
	if st.Src[p] == st.Dst[p] {
		st.DeliverStep[p] = 0
		net.delivered++
		net.Metrics.noteDelivered(0, 0)
		return nil
	}
	node := &net.nodes[st.Src[p]]
	tag := OriginTag
	if net.Queues == CentralQueue {
		tag = 0
		if node.QueueLen(0) >= net.K {
			return fmt.Errorf("sim: node %v over capacity at placement (K=%d)", net.Topo.CoordOf(st.Src[p]), net.K)
		}
	}
	net.attach(node, p, tag)
	return nil
}

// MustPlace is Place but panics on error (for tests and generators that
// construct known-valid instances).
func (net *Network) MustPlace(p PacketID) {
	if err := net.Place(p); err != nil {
		panic(err)
	}
}

// QueueInjection schedules a packet to enter the network at the given step
// (>= 1). The packet waits in an unbounded per-source backlog and enters its
// source node's queue, in FIFO order, as soon as there is room; the entry
// time therefore does not depend on the packet's destination, as the
// dynamic-routing extension in Section 5 requires.
func (net *Network) QueueInjection(p PacketID, step int) {
	if step < 1 {
		step = 1
	}
	st := &net.P
	if net.analyzer != nil {
		net.analyzer.Admit(st.Src[p], st.Dst[p])
	}
	st.At[p] = st.Src[p]
	net.placed = append(net.placed, p)
	net.total++
	net.pendingTotal++
	net.pendingInj[step] = append(net.pendingInj[step], p)
}

// minQueueCap is the initial slot-region capacity of a node's queue.
const minQueueCap = 4

// growQueue relocates the node's queue region to the end of the flat slot
// array with doubled capacity. The abandoned region is never reused, which
// bounds total slot memory at twice the peak live capacity; at steady state
// (no queue ever exceeding its region) attach allocates nothing.
func (net *Network) growQueue(n *Node) {
	newCap := n.qCap * 2
	if newCap < minQueueCap {
		newCap = minQueueCap
	}
	start := uint32(len(net.slots))
	net.slots = slices.Grow(net.slots, int(newCap))[:int(start+newCap)]
	copy(net.slots[start:], net.slots[n.qStart:n.qStart+n.qLen])
	n.qStart, n.qCap = start, newCap
}

// attach adds p to node under queue tag, maintaining occupancy tracking and
// the packet's slot index (used by the part (d) batch removal).
func (net *Network) attach(node *Node, p PacketID, tag uint8) {
	net.attachTo(node, p, tag, &net.occ)
}

// attachTo is attach with the newly-occupied list made explicit: a node
// becoming occupied is appended to *occOut instead of net.occ directly. The
// parallel apply phase passes a worker-private buffer (merged into net.occ
// in shard order afterwards); everything else passes &net.occ.
func (net *Network) attachTo(node *Node, p PacketID, tag uint8, occOut *[]grid.NodeID) {
	st := &net.P
	st.QTag[p] = tag
	st.At[p] = node.ID
	if node.qLen == node.qCap {
		net.growQueue(node)
	}
	st.slot[p] = int32(node.qLen)
	net.slots[node.qStart+node.qLen] = p
	node.qLen++
	node.counts[tag]++
	if !net.isOcc[node.ID] {
		net.isOcc[node.ID] = true
		*occOut = append(*occOut, node.ID)
	}
}

// capOf returns the capacity of the queue with the given tag.
func (net *Network) capOf(tag uint8) int {
	if tag == OriginTag {
		if net.Queues == PerInlinkQueues {
			return int(^uint(0) >> 1) // unbounded origin buffer
		}
		return net.K
	}
	return net.K
}
