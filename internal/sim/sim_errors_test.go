package sim

import (
	"strings"
	"testing"

	"meshroute/internal/grid"
)

type badIndexAlg struct{ greedyXY }

func (badIndexAlg) Schedule(net *Network, n *Node) [grid.NumDirs]int {
	return [grid.NumDirs]int{99, -1, -1, -1}
}

func TestOutOfRangeScheduleRejected(t *testing.T) {
	net := newTestNet(t, 6, 2)
	net.MustPlace(net.NewPacket(0, 7))
	if err := net.StepOnce(badIndexAlg{}); err == nil || !strings.Contains(err.Error(), "out-of-range") {
		t.Fatalf("want out-of-range error, got %v", err)
	}
}

type offMeshAlg struct{ greedyXY }

func (offMeshAlg) Schedule(net *Network, n *Node) [grid.NumDirs]int {
	sched := [grid.NumDirs]int{-1, -1, -1, -1}
	// Schedule on whatever outlink does NOT exist.
	for d := grid.Dir(0); d < grid.NumDirs; d++ {
		if _, ok := net.Topo.Neighbor(n.ID, d); !ok {
			sched[d] = 0
			return sched
		}
	}
	return sched
}

func TestMissingOutlinkRejected(t *testing.T) {
	net := newTestNet(t, 6, 2)
	// Corner node: two missing outlinks.
	net.MustPlace(net.NewPacket(0, 7))
	if err := net.StepOnce(offMeshAlg{}); err == nil || !strings.Contains(err.Error(), "missing outlink") {
		t.Fatalf("want missing-outlink error, got %v", err)
	}
}

func TestExchangeBreakingMinimalityRejected(t *testing.T) {
	net := newTestNet(t, 8, 2)
	topo := net.Topo
	a := net.NewPacket(topo.ID(grid.XY(0, 0)), topo.ID(grid.XY(5, 0)))
	net.MustPlace(a)
	net.SetExchange(func(n *Network, step int, moves []Move) {
		// Retarget the moving packet BEHIND itself: the scheduled
		// eastward move becomes non-minimal.
		n.P.Dst[a] = topo.ID(grid.XY(0, 3))
	})
	if err := net.StepOnce(greedyXY{}); err == nil || !strings.Contains(err.Error(), "non-minimal") {
		t.Fatalf("want exchange-minimality error, got %v", err)
	}
}

func TestPlaceAfterRunRejected(t *testing.T) {
	net := newTestNet(t, 6, 2)
	net.MustPlace(net.NewPacket(0, 7))
	if err := net.StepOnce(greedyXY{}); err != nil {
		t.Fatal(err)
	}
	if err := net.Place(net.NewPacket(1, 8)); err == nil {
		t.Fatal("Place after run start must fail")
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"nil topo", Config{K: 1}, "nil topology"},
		{"K=0", Config{Topo: grid.NewSquareMesh(4), K: 0}, "queue capacity"},
		{"bad queue model", Config{Topo: grid.NewSquareMesh(4), K: 1, Queues: QueueModel(9)}, "queue model"},
		{"negative stray", Config{Topo: grid.NewSquareMesh(4), K: 1, MaxStray: -1}, "MaxStray"},
		{"negative watchdog", Config{Topo: grid.NewSquareMesh(4), K: 1, Watchdog: -5}, "watchdog"},
		{"negative workers", Config{Topo: grid.NewSquareMesh(4), K: 1, Workers: -2}, "worker count"},
	}
	for _, c := range cases {
		net, err := New(c.cfg)
		if err == nil || net != nil {
			t.Fatalf("%s: want error, got net=%v err=%v", c.name, net, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with K=0 must panic")
		}
	}()
	MustNew(Config{Topo: grid.NewSquareMesh(4), K: 0})
}
