package sim

import (
	"testing"
)

// TestParallelSteadyStateStepAllocs pins the pipeline's zero-allocation
// contract at w > 1: after warmup, a parallel step with a nil sink and no
// injections must not allocate — the persistent pool's barrier is channel
// operations only, and every per-worker buffer is reused across steps.
func TestParallelSteadyStateStepAllocs(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		net := buildReversal(t, 16, 2, workers)
		alg := greedyXY{}
		for i := 0; i < 5; i++ { // warm scratch + worker buffers
			if err := net.StepOnce(alg); err != nil {
				t.Fatal(err)
			}
		}
		avg := testing.AllocsPerRun(20, func() {
			if err := net.StepOnce(alg); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Fatalf("workers=%d: steady-state StepOnce allocates %.1f times per step, want 0", workers, avg)
		}
		net.stopPool()
	}
}

// TestWorkerPoolReuseStress drives one Network through many short
// Run/RunPartial cycles — each cycle stops the persistent pool on return
// and the next respawns it — interleaved with direct StepOnce calls that
// reuse one pool across steps, and requires the outcome to stay
// bit-identical to a serial reference. This is the barrier-reuse stress
// for the pool lifecycle (spawn, many releases, stop, respawn).
func TestWorkerPoolReuseStress(t *testing.T) {
	const n, k, horizon, cycles = 10, 2, 80, 60
	ref := buildDynamic(t, n, k, horizon, 0)
	par := buildDynamic(t, n, k, horizon, 8)
	alg := greedyXY{}
	for cycle := 0; cycle < cycles && (!ref.Done() || !par.Done()); cycle++ {
		if cycle%3 == 2 {
			// Direct steps: the pool persists across these.
			for i := 0; i < 2 && !par.Done(); i++ {
				if err := par.StepOnce(alg); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 2 && !ref.Done(); i++ {
				if err := ref.StepOnce(alg); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		// Short runs: the pool is stopped at the end of each and
		// respawned by the next parallel step.
		if _, err := par.RunPartial(alg, 2); err != nil {
			t.Fatal(err)
		}
		if par.pool != nil {
			t.Fatal("pool still live after RunPartial returned")
		}
		if _, err := ref.RunPartial(alg, 2); err != nil {
			t.Fatal(err)
		}
	}
	rp, pp := ref.Packets(), par.Packets()
	if len(rp) != len(pp) {
		t.Fatal("packet counts differ")
	}
	for i := range rp {
		a, b := rp[i], pp[i]
		if a.DeliverStep != b.DeliverStep || a.Hops != b.Hops || a.At != b.At {
			t.Fatalf("packet %d diverged after pool reuse stress: serial (deliver=%d hops=%d) vs parallel (deliver=%d hops=%d)",
				a.ID, a.DeliverStep, a.Hops, b.DeliverStep, b.Hops)
		}
	}
	par.stopPool() // idempotent; the StepOnce branches may have left one live
	if par.pool != nil {
		t.Fatal("stopPool left the pool live")
	}
}

// TestPoolLifecycle pins the lazy-spawn/stop contract directly: no pool
// before the first parallel step, a live pool across direct StepOnce
// calls, no pool after Run returns, and stopPool idempotence.
func TestPoolLifecycle(t *testing.T) {
	net := buildReversal(t, 8, 2, 4)
	alg := greedyXY{}
	if net.pool != nil {
		t.Fatal("pool spawned before first step")
	}
	if err := net.StepOnce(alg); err != nil {
		t.Fatal(err)
	}
	if net.pool == nil {
		t.Fatal("no pool after first parallel step")
	}
	p := net.pool
	if err := net.StepOnce(alg); err != nil {
		t.Fatal(err)
	}
	if net.pool != p {
		t.Fatal("pool not reused across direct StepOnce calls")
	}
	if _, err := net.RunPartial(alg, 4); err != nil {
		t.Fatal(err)
	}
	if net.pool != nil {
		t.Fatal("pool still live after RunPartial")
	}
	net.stopPool()
	net.stopPool() // idempotent on a stopped pool
}
