package sim

import (
	"meshroute/internal/fault"
	"meshroute/internal/obs"
)

// applyFaults applies every schedule event due at or before step t to the
// live fault state, advancing the cursor. Link failures and node stalls
// are reference-counted so overlapping transient episodes compose;
// permanent link failures are recorded in a separate set that never
// clears. Each applied event is forwarded to the metrics sink (if it
// records events), which is where the deterministic fault-event stream
// documented in docs/ROBUSTNESS.md comes from.
func (net *Network) applyFaults(t int) {
	evs := net.cfg.Faults.Events
	for net.faultCursor < len(evs) && evs[net.faultCursor].Step <= t {
		e := evs[net.faultCursor]
		net.faultCursor++
		switch e.Kind {
		case fault.LinkDown:
			if e.Permanent {
				net.linkPerm[e.Node] = net.linkPerm[e.Node].Set(e.Dir)
			} else {
				net.linkDownCnt[e.Node][e.Dir]++
			}
		case fault.LinkUp:
			if net.linkDownCnt[e.Node][e.Dir] > 0 {
				net.linkDownCnt[e.Node][e.Dir]--
			}
		case fault.NodeStall:
			net.stalledCnt[e.Node]++
		case fault.NodeWake:
			if net.stalledCnt[e.Node] > 0 {
				net.stalledCnt[e.Node]--
			}
		}
		if net.eventSink != nil {
			oe := obs.Event{Step: e.Step, Kind: e.Kind.String(), Node: int(e.Node)}
			if e.Kind == fault.LinkDown || e.Kind == fault.LinkUp {
				oe.Dir = e.Dir.String()
			}
			if e.Permanent {
				oe.Detail = "permanent"
			}
			net.eventSink.Event(oe)
		}
	}
}
