package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"meshroute/internal/grid"
)

// Property: under the greedy test algorithm, conservation holds at every
// step — packets are never duplicated or lost, and every delivered packet
// is exactly at its destination.
func TestQuickConservation(t *testing.T) {
	f := func(seed int64) bool {
		const n = 6
		net := MustNew(Config{
			Topo:            grid.NewSquareMesh(n),
			K:               3,
			Queues:          CentralQueue,
			RequireMinimal:  true,
			CheckInvariants: true,
		})
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(n * n)
		for s, d := range perm {
			net.MustPlace(net.NewPacket(grid.NodeID(s), grid.NodeID(d)))
		}
		for step := 0; step < 50 && !net.Done(); step++ {
			if err := net.StepOnce(greedyXY{}); err != nil {
				return false
			}
			inNet := 0
			for _, id := range net.Occupied() {
				inNet += net.Node(id).Len()
			}
			if inNet+net.DeliveredCount() != net.TotalPackets() {
				return false
			}
		}
		for _, p := range net.Packets() {
			if p.Delivered() && p.At != p.Dst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: on a torus, greedy routing of any single packet takes exactly
// the torus distance.
func TestQuickTorusSinglePacket(t *testing.T) {
	tr := grid.NewSquareTorus(9)
	f := func(sRaw, dRaw uint16) bool {
		s := grid.NodeID(int(sRaw) % tr.N())
		d := grid.NodeID(int(dRaw) % tr.N())
		net := MustNew(Config{Topo: tr, K: 2, Queues: CentralQueue, RequireMinimal: true, CheckInvariants: true})
		p := net.NewPacket(s, d)
		net.MustPlace(p)
		steps, err := net.RunPartial(greedyXY{}, 100)
		if err != nil {
			return false
		}
		st := &net.P
		return st.Delivered(p) && steps == tr.Dist(s, d) && int(st.Hops[p]) == tr.Dist(s, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// At is maintained through the whole lifecycle.
func TestPacketAtTracking(t *testing.T) {
	net := MustNew(Config{Topo: grid.NewSquareMesh(6), K: 2, Queues: CentralQueue, RequireMinimal: true})
	topo := net.Topo
	p := net.NewPacket(topo.ID(grid.XY(0, 0)), topo.ID(grid.XY(3, 0)))
	net.MustPlace(p)
	st := &net.P
	if st.At[p] != st.Src[p] {
		t.Fatal("At != Src after placement")
	}
	for i := 1; i <= 3; i++ {
		if err := net.StepOnce(greedyXY{}); err != nil {
			t.Fatal(err)
		}
		want := topo.ID(grid.XY(i, 0))
		if st.At[p] != want {
			t.Fatalf("step %d: At = %v, want %v", i, topo.CoordOf(st.At[p]), topo.CoordOf(want))
		}
	}
	if !st.Delivered(p) || st.At[p] != st.Dst[p] {
		t.Fatal("delivered packet must sit at Dst")
	}
}

// Injection backlog drains in FIFO order regardless of destination.
func TestInjectionFIFO(t *testing.T) {
	net := MustNew(Config{Topo: grid.NewSquareMesh(8), K: 1, Queues: CentralQueue, RequireMinimal: true, CheckInvariants: true})
	topo := net.Topo
	src := topo.ID(grid.XY(0, 0))
	var ps []PacketID
	for i := 0; i < 4; i++ {
		p := net.NewPacket(src, topo.ID(grid.XY(7, i)))
		net.QueueInjection(p, 1)
		ps = append(ps, p)
	}
	if _, err := net.Run(greedyXY{}, 500); err != nil {
		t.Fatal(err)
	}
	st := &net.P
	for i := 1; i < len(ps); i++ {
		if st.InjectStep[ps[i]] < st.InjectStep[ps[i-1]] {
			t.Fatalf("FIFO violated: %d before %d", st.InjectStep[ps[i]], st.InjectStep[ps[i-1]])
		}
	}
}

// The engine rejects an inqueue policy that overflows a queue.
type overflowAlg struct{ greedyXY }

func (overflowAlg) Accept(net *Network, n *Node, offers []Offer, acc []bool) {
	for i := range acc {
		acc[i] = true // ignore capacity
	}
}

func TestOverflowDetected(t *testing.T) {
	net := MustNew(Config{Topo: grid.NewSquareMesh(8), K: 1, Queues: CentralQueue, RequireMinimal: true, CheckInvariants: true})
	topo := net.Topo
	// Three packets converge on (2,2)'s neighborhood; (2,2) itself holds
	// a slow packet so accepted arrivals overflow k=1.
	net.MustPlace(net.NewPacket(topo.ID(grid.XY(2, 2)), topo.ID(grid.XY(5, 2))))
	net.MustPlace(net.NewPacket(topo.ID(grid.XY(1, 2)), topo.ID(grid.XY(5, 2))))
	err := error(nil)
	for i := 0; i < 10 && err == nil; i++ {
		err = net.StepOnce(overflowAlg{})
		if net.Done() {
			return // routed without conflict; nothing to detect
		}
	}
	if err == nil {
		t.Fatal("overflowing Accept must be detected")
	}
}

// Multiple packets with the same destination (many-to-one traffic) are
// legal in the engine even though they are not a permutation.
func TestManyToOneTraffic(t *testing.T) {
	net := MustNew(Config{Topo: grid.NewSquareMesh(6), K: 4, Queues: CentralQueue, RequireMinimal: true, CheckInvariants: true})
	topo := net.Topo
	dst := topo.ID(grid.XY(5, 5))
	for i := 0; i < 5; i++ {
		net.MustPlace(net.NewPacket(topo.ID(grid.XY(i, 0)), dst))
	}
	if _, err := net.Run(greedyXY{}, 200); err != nil {
		t.Fatal(err)
	}
	if net.DeliveredCount() != 5 {
		t.Fatalf("delivered %d/5", net.DeliveredCount())
	}
}
