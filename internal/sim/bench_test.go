package sim

import (
	"testing"

	"meshroute/internal/grid"
)

// BenchmarkStepDense measures one engine step on a fully loaded mesh (the
// worst case for the per-step scan).
func BenchmarkStepDense(b *testing.B) {
	const n = 64
	mk := func() *Network {
		net := New(Config{Topo: grid.NewSquareMesh(n), K: 4, Queues: CentralQueue, RequireMinimal: true})
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				net.MustPlace(net.NewPacket(net.Topo.ID(grid.XY(x, y)), net.Topo.ID(grid.XY(n-1-x, n-1-y))))
			}
		}
		return net
	}
	net := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if net.Done() {
			b.StopTimer()
			net = mk()
			b.StartTimer()
		}
		if err := net.StepOnce(greedyXY{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n*n), "packets")
}

// BenchmarkStepSparse measures the occupied-node optimization: a huge mesh
// with few packets must cost per-packet, not per-node.
func BenchmarkStepSparse(b *testing.B) {
	const n = 512
	mk := func() *Network {
		net := New(Config{Topo: grid.NewSquareMesh(n), K: 4, Queues: CentralQueue, RequireMinimal: true})
		for i := 0; i < 64; i++ {
			net.MustPlace(net.NewPacket(net.Topo.ID(grid.XY(i, 0)), net.Topo.ID(grid.XY(i, n-1))))
		}
		return net
	}
	net := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if net.Done() {
			b.StopTimer()
			net = mk()
			b.StartTimer()
		}
		if err := net.StepOnce(greedyXY{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlace measures placement throughput.
func BenchmarkPlace(b *testing.B) {
	const n = 64
	for i := 0; i < b.N; i++ {
		net := New(Config{Topo: grid.NewSquareMesh(n), K: 1, Queues: CentralQueue})
		for id := grid.NodeID(0); int(id) < n*n; id++ {
			net.MustPlace(net.NewPacket(id, id)) // fixed points: no routing
		}
	}
}
