package sim

import (
	"testing"

	"meshroute/internal/grid"
	"meshroute/internal/obs"
)

// BenchmarkStepDense measures one engine step on a fully loaded mesh (the
// worst case for the per-step scan).
func BenchmarkStepDense(b *testing.B) {
	const n = 64
	mk := func() *Network {
		net := MustNew(Config{Topo: grid.NewSquareMesh(n), K: 4, Queues: CentralQueue, RequireMinimal: true})
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				net.MustPlace(net.NewPacket(net.Topo.ID(grid.XY(x, y)), net.Topo.ID(grid.XY(n-1-x, n-1-y))))
			}
		}
		return net
	}
	net := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if net.Done() {
			b.StopTimer()
			net = mk()
			b.StartTimer()
		}
		if err := net.StepOnce(greedyXY{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n*n), "packets")
}

// BenchmarkStepSparse measures the occupied-node optimization: a huge mesh
// with few packets must cost per-packet, not per-node.
func BenchmarkStepSparse(b *testing.B) {
	const n = 512
	mk := func() *Network {
		net := MustNew(Config{Topo: grid.NewSquareMesh(n), K: 4, Queues: CentralQueue, RequireMinimal: true})
		for i := 0; i < 64; i++ {
			net.MustPlace(net.NewPacket(net.Topo.ID(grid.XY(i, 0)), net.Topo.ID(grid.XY(i, n-1))))
		}
		return net
	}
	net := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if net.Done() {
			b.StopTimer()
			net = mk()
			b.StartTimer()
		}
		if err := net.StepOnce(greedyXY{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepDenseNilSink is BenchmarkStepDense with the metrics sink
// explicitly set to nil: the numbers must match BenchmarkStepDense (the
// observability layer's disabled case costs one branch per step), and
// allocs/op is the regression guard for "nil sink allocates 0 extra".
func BenchmarkStepDenseNilSink(b *testing.B) {
	benchStepDense(b, nil)
}

// BenchmarkStepDenseMemSink measures the enabled-sampling overhead: the
// same dense step loop feeding an in-memory sink.
func BenchmarkStepDenseMemSink(b *testing.B) {
	benchStepDense(b, &obs.Memory{})
}

func benchStepDense(b *testing.B, sink obs.Sink) {
	const n = 64
	mk := func() *Network {
		net := MustNew(Config{Topo: grid.NewSquareMesh(n), K: 4, Queues: CentralQueue, RequireMinimal: true})
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				net.MustPlace(net.NewPacket(net.Topo.ID(grid.XY(x, y)), net.Topo.ID(grid.XY(n-1-x, n-1-y))))
			}
		}
		net.SetMetricsSink(sink)
		return net
	}
	net := mk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if net.Done() {
			b.StopTimer()
			net = mk()
			b.StartTimer()
		}
		if err := net.StepOnce(greedyXY{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlace measures placement throughput.
func BenchmarkPlace(b *testing.B) {
	const n = 64
	for i := 0; i < b.N; i++ {
		net := MustNew(Config{Topo: grid.NewSquareMesh(n), K: 1, Queues: CentralQueue})
		for id := grid.NodeID(0); int(id) < n*n; id++ {
			net.MustPlace(net.NewPacket(id, id)) // fixed points: no routing
		}
	}
}
