package sim

import (
	"fmt"
	"testing"

	"meshroute/internal/grid"
	"meshroute/internal/obs"
)

// BenchmarkStepDense measures one engine step on a fully loaded mesh (the
// worst case for the per-step scan).
func BenchmarkStepDense(b *testing.B) {
	const n = 64
	mk := func() *Network {
		net := MustNew(Config{Topo: grid.NewSquareMesh(n), K: 4, Queues: CentralQueue, RequireMinimal: true})
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				net.MustPlace(net.NewPacket(net.Topo.ID(grid.XY(x, y)), net.Topo.ID(grid.XY(n-1-x, n-1-y))))
			}
		}
		return net
	}
	net := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if net.Done() {
			b.StopTimer()
			net = mk()
			b.StartTimer()
		}
		if err := net.StepOnce(greedyXY{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n*n), "packets")
}

// BenchmarkStepSparse measures the occupied-node optimization: a huge mesh
// with few packets must cost per-packet, not per-node.
func BenchmarkStepSparse(b *testing.B) {
	const n = 512
	mk := func() *Network {
		net := MustNew(Config{Topo: grid.NewSquareMesh(n), K: 4, Queues: CentralQueue, RequireMinimal: true})
		for i := 0; i < 64; i++ {
			net.MustPlace(net.NewPacket(net.Topo.ID(grid.XY(i, 0)), net.Topo.ID(grid.XY(i, n-1))))
		}
		return net
	}
	net := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if net.Done() {
			b.StopTimer()
			net = mk()
			b.StartTimer()
		}
		if err := net.StepOnce(greedyXY{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepDenseNilSink is BenchmarkStepDense with the metrics sink
// explicitly set to nil: the numbers must match BenchmarkStepDense (the
// observability layer's disabled case costs one branch per step), and
// allocs/op is the regression guard for "nil sink allocates 0 extra".
func BenchmarkStepDenseNilSink(b *testing.B) {
	benchStepDense(b, nil)
}

// BenchmarkStepDenseMemSink measures the enabled-sampling overhead: the
// same dense step loop feeding an in-memory sink.
func BenchmarkStepDenseMemSink(b *testing.B) {
	benchStepDense(b, &obs.Memory{})
}

func benchStepDense(b *testing.B, sink obs.Sink) {
	const n = 64
	mk := func() *Network {
		net := MustNew(Config{Topo: grid.NewSquareMesh(n), K: 4, Queues: CentralQueue, RequireMinimal: true})
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				net.MustPlace(net.NewPacket(net.Topo.ID(grid.XY(x, y)), net.Topo.ID(grid.XY(n-1-x, n-1-y))))
			}
		}
		net.SetMetricsSink(sink)
		return net
	}
	net := mk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if net.Done() {
			b.StopTimer()
			net = mk()
			b.StartTimer()
		}
		if err := net.StepOnce(greedyXY{}); err != nil {
			b.Fatal(err)
		}
	}
}

// torusTransposeNet builds an n×n torus fully loaded with the transpose
// permutation — the scaling workload of docs/SCALING.md: one packet per
// node, average distance ~n/2, so the step loop stays saturated for
// hundreds of steps before a rebuild.
func torusTransposeNet(n, workers int) *Network {
	net := MustNew(Config{
		Topo:    grid.NewSquareTorus(n),
		K:       4,
		Queues:  CentralQueue,
		Workers: workers,
	})
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			net.MustPlace(net.NewPacket(net.Topo.ID(grid.XY(x, y)), net.Topo.ID(grid.XY(y, x))))
		}
	}
	return net
}

// warmTorusTransposeNet is torusTransposeNet plus three warm-up steps, so
// scratch buffers and queue regions reach their working size before the
// timer starts: at n=1024 a benchmark iteration count of ~5 would
// otherwise charge the one-time growth allocations to allocs/op and mask
// the steady state the 0-alloc gate pins.
func warmTorusTransposeNet(tb testing.TB, n, workers int) *Network {
	net := torusTransposeNet(n, workers)
	for i := 0; i < 12; i++ {
		if err := net.StepOnce(greedyXY{}); err != nil {
			tb.Fatal(err)
		}
	}
	return net
}

// BenchmarkStepTorus is the n×workers scaling matrix: one fully loaded
// torus step at side lengths 64, 256 and 1024 (4K, 65K and 1M packets),
// serial (w1) and with 2/4/8 pipeline workers. Every cell is a zero-alloc
// guard: a steady-state step must not allocate at any size or worker
// count (benchgate gates all 12 cells at 0 allocs/op and 0 B/op). The
// w > 1 cells also report a speedup metric — the same-n w1 cell's ns/op
// divided by theirs — so scaling regressions are visible in the raw bench
// output (benchgate additionally gates the n1024 w4:w1 ratio on multicore
// machines).
func BenchmarkStepTorus(b *testing.B) {
	w1ns := map[int]float64{}
	for _, n := range []int{64, 256, 1024} {
		for _, workers := range []int{1, 2, 4, 8} {
			n, workers := n, workers
			b.Run(fmt.Sprintf("n%d/w%d", n, workers), func(b *testing.B) {
				net := warmTorusTransposeNet(b, n, workers)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if net.Done() {
						b.StopTimer()
						net = warmTorusTransposeNet(b, n, workers)
						b.StartTimer()
					}
					if err := net.StepOnce(greedyXY{}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(n*n), "packets")
				nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				if workers == 1 {
					w1ns[n] = nsPerOp // last (longest) run wins
				} else if base := w1ns[n]; base > 0 && nsPerOp > 0 {
					b.ReportMetric(base/nsPerOp, "speedup")
				}
			})
		}
	}
}

// TestSteadyStateZeroAllocs pins the struct-of-arrays contract at the
// million-node scale: after warm-up (queue regions grown to their working
// capacity, scratch buffers sized), a serial engine step on a fully loaded
// 1024×1024 torus performs zero heap allocations.
func TestSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-packet network build is slow; skipped with -short")
	}
	net := warmTorusTransposeNet(t, 1024, 0)
	avg := testing.AllocsPerRun(5, func() {
		if err := net.StepOnce(greedyXY{}); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state step allocates %v times at n=1024, want 0", avg)
	}
}

// BenchmarkPlace measures placement throughput.
func BenchmarkPlace(b *testing.B) {
	const n = 64
	for i := 0; i < b.N; i++ {
		net := MustNew(Config{Topo: grid.NewSquareMesh(n), K: 1, Queues: CentralQueue})
		for id := grid.NodeID(0); int(id) < n*n; id++ {
			net.MustPlace(net.NewPacket(id, id)) // fixed points: no routing
		}
	}
}
