package sim

import (
	"runtime"

	"meshroute/internal/grid"
)

// This file implements the persistent parallel step pipeline ("step
// pipeline v2", docs/PERFORMANCE.md): a pool of long-lived worker
// goroutines that the engine drives through the parallelizable phases of
// one synchronous step with a lightweight reusable barrier, instead of
// spawning fresh goroutines per step. With Workers > 1 and a
// ParallelCloner algorithm, one StepOnce releases the pool five times:
//
//	P1 schedule — part (a), sharded over the occupied-node list
//	P2 accept   — part (c) dispatch, sharded over the offer-target list
//	P3 compact  — part (d) departures, sharded over the sender list
//	P4 apply    — part (d) arrivals, sharded by target owner (+ deliveries)
//	P5 update   — part (e) + queue-occupancy maxima, sharded over occ
//
// Every phase writes only worker-owned state (a contiguous shard of nodes
// or list entries, plus the worker's own workerScratch buffers); the
// engine merges the buffers serially between phases in shard order, which
// reproduces the serial engine's iteration order exactly — so the
// pipeline is behavior-invisible (pinned by the golden-digest suite and
// TestParallelWorkersBitIdentical). A steady-state parallel step performs
// zero heap allocations at any worker count: the barrier is two channel
// operations per worker per phase, and all per-worker buffers are reused
// across steps.

// Phase identifiers for the pool barrier. The coordinator writes
// pool.phase before releasing the workers; the channel send orders the
// write before every worker's read.
const (
	phaseSchedule = iota
	phaseAccept
	phaseCompact
	phaseApply
	phaseUpdate
)

// stepPool is the persistent worker pool. It deliberately holds no
// reference to the Network between phases: the coordinator passes the
// network through the start channels on every release, so an abandoned
// Network can be collected (and its finalizer can stop the pool) even
// while the workers live.
type stepPool struct {
	phase int
	start []chan *Network
	done  chan struct{}
}

// newStepPool spawns one long-lived goroutine per worker, each blocked on
// its start channel until the first phase release.
func newStepPool(workers int) *stepPool {
	p := &stepPool{
		start: make([]chan *Network, workers),
		done:  make(chan struct{}, workers),
	}
	for w := range p.start {
		p.start[w] = make(chan *Network, 1)
		go p.worker(w)
	}
	return p
}

// worker is the long-lived goroutine body: wait for a release, run the
// current phase on the delivered network, signal completion. The network
// reference is dead after runPhase returns, so workers never keep an
// abandoned Network alive between steps.
func (p *stepPool) worker(w int) {
	for net := range p.start[w] {
		net.runPhase(p.phase, w)
		p.done <- struct{}{}
	}
}

// run releases every worker into the given phase and waits for all of
// them — the reusable barrier. Costs two channel operations per worker
// and zero allocations.
func (p *stepPool) run(net *Network, phase int) {
	p.phase = phase
	for _, c := range p.start {
		c <- net
	}
	for range p.start {
		<-p.done
	}
}

// stop closes the start channels; the workers drain and exit.
func (p *stepPool) stop() {
	for _, c := range p.start {
		close(c)
	}
}

// workerScratch is one worker's private pipeline state: phase outputs
// that the engine merges serially in shard order. All slices are reused
// across steps (reset with [:0]), so the steady-state parallel step
// allocates nothing. Counters are accumulated in locals inside the phase
// bodies and stored once, to keep false sharing off the hot loops.
type workerScratch struct {
	// P1 schedule outputs.
	moves []Move
	drops int
	err   error
	// P2 accept outputs: the arrivals accepted from this worker's target
	// shard, grouped contiguously per target in target order.
	arrivals []arrival
	accept   []bool
	// P4 apply outputs.
	newOcc    []grid.NodeID // nodes that became occupied, in attach order
	delivered int
	sumDelay  int
	hops      int
	// P5 update outputs.
	maxQueue    int
	maxNodeLoad int
}

// shardRange returns worker w's half-open share [lo, hi) of n items split
// across workers contiguous shards.
func shardRange(n, workers, w int) (lo, hi int) {
	return w * n / workers, (w + 1) * n / workers
}

// balanceBounds fills bounds (length workers+1) with contiguous shard
// boundaries over n items such that every worker's summed weight is close
// to total/workers (off by at most one item's weight). Weighted shards do
// two jobs: worker wall-clock tracks packet mass rather than node count,
// and — because a shard's weight share can never exceed its quantile of
// the global total — per-worker output-buffer demand is proportional to
// global demand, so buffer capacities stop growing once the global peak
// has passed (the steady-state zero-alloc contract at any w).
func balanceBounds(bounds []int, n, total, workers int, weight func(i int) int) {
	bounds[0] = 0
	w := 1
	acc := 0
	for i := 0; i < n && w < workers; i++ {
		acc += weight(i)
		for w < workers && acc >= (total*w+workers-1)/workers {
			bounds[w] = i + 1
			w++
		}
	}
	for ; w <= workers; w++ {
		bounds[w] = n
	}
}

// runPhase dispatches one worker into the current phase body. A switch on
// a plain int (rather than a stored closure) keeps the release path free
// of allocations.
func (net *Network) runPhase(phase, w int) {
	switch phase {
	case phaseSchedule:
		net.phaseSchedule(w)
	case phaseAccept:
		net.phaseAccept(w)
	case phaseCompact:
		net.phaseCompact(w)
	case phaseApply:
		net.phaseApply(w)
	case phaseUpdate:
		net.phaseUpdate(w)
	}
}

// phaseSchedule is P1: part (a) outqueue scheduling on this worker's
// shard of the occupied-node list (balanced by resident-packet mass; see
// balanceBounds), with its private algorithm clone.
func (net *Network) phaseSchedule(w int) {
	s := &net.scratch
	ws := &net.ws[w]
	shard := net.occ[s.occBounds[w]:s.occBounds[w+1]]
	ws.moves, ws.drops, ws.err = net.scheduleNodes(net.parClones[w], shard, ws.moves[:0])
}

// phaseAccept is P2: part (c) inqueue dispatch on this worker's shard of
// the offer-target list. Offers are already grouped into contiguous
// per-target regions of the flat offer index, and inqueue policies are
// target-node-local (the ParallelCloner contract), so disjoint target
// shards dispatch concurrently; accepted arrivals collect in the worker's
// buffer and are merged in shard order, reproducing the serial order.
func (net *Network) phaseAccept(w int) {
	s := &net.scratch
	ws := &net.ws[w]
	shard := s.targets[s.tgtBounds[w]:s.tgtBounds[w+1]]
	ws.arrivals = net.acceptTargets(net.parClones[w], shard, &ws.accept, ws.arrivals[:0])
}

// phaseCompact is P3, the sender-owner half of part (d): each worker
// compacts the queues of its shard of the distinct-sender list, removing
// departing packets. Senders are distinct nodes, so shards touch disjoint
// queue regions.
func (net *Network) phaseCompact(w int) {
	lo, hi := shardRange(len(net.scratch.senders), len(net.parClones), w)
	net.compactSenders(net.scratch.senders[lo:hi])
}

// phaseApply is P4, the target-owner half of part (d): the worker applies
// an even shard of the delivery prefix (per-packet writes only) plus the
// arrivals it accepted in P2 (whose targets it owns), appending
// newly-occupied nodes and delivery/hop counters to its scratch for the
// serial merge. Queue regions were pre-grown between P3 and P4
// (growForArrivals), so attach never touches the shared slot arena
// length.
func (net *Network) phaseApply(w int) {
	s := &net.scratch
	ws := &net.ws[w]
	// Pre-size the newly-occupied buffer to its hard bound — one entry per
	// attached arrival (deliveries never attach) — so it stops growing as
	// soon as the arrival buffer has: in a initially-full network, nodes
	// only start *becoming* occupied mid-run, long after warm-up, and
	// growing here lazily would break the steady-state zero-alloc contract.
	if cap(ws.newOcc) < cap(ws.arrivals) {
		ws.newOcc = make([]grid.NodeID, 0, cap(ws.arrivals))
	}
	ws.newOcc = ws.newOcc[:0]
	lo, hi := shardRange(s.nDeliv, len(net.parClones), w)
	d1, sd1, h1 := net.applyArrivals(s.arrivals[lo:hi], &ws.newOcc)
	d2, sd2, h2 := net.applyArrivals(ws.arrivals, &ws.newOcc)
	ws.delivered, ws.sumDelay, ws.hops = d1+d2, sd1+sd2, h1+h2
}

// phaseUpdate is P5: part (e) state updates fused with the end-of-step
// queue-occupancy maxima scan, on this worker's shard of the (post-apply)
// occupied list.
func (net *Network) phaseUpdate(w int) {
	lo, hi := shardRange(len(net.occ), len(net.parClones), w)
	ws := &net.ws[w]
	ws.maxQueue, ws.maxNodeLoad = net.updateNodes(net.parClones[w], net.occ[lo:hi])
}

// growForArrivals pre-grows every target's queue region to absorb its
// accepted arrivals, so the parallel apply phase never relocates a region
// (growQueue appends to the shared slot arena and must stay serial). It
// runs after sender compaction, so qLen is the post-departure occupancy
// and the doubling sequence is exactly the one the serial attach loop
// would have performed. The accepted section of the merged arrival list
// is contiguous per target, so one linear walk suffices.
func (net *Network) growForArrivals() {
	s := &net.scratch
	arr := s.arrivals[s.nDeliv:]
	for i := 0; i < len(arr); {
		to := arr[i].to
		j := i + 1
		for j < len(arr) && arr[j].to == to {
			j++
		}
		node := &net.nodes[to]
		need := node.qLen + uint32(j-i)
		for node.qCap < need {
			net.growQueue(node)
		}
		i = j
	}
}

// ensurePool lazily spawns the persistent worker pool (and arms the
// finalizer backstop that stops it if the Network is abandoned without a
// Run call). The pool is stopped at the end of every Run/RunPartial and
// respawned on the next parallel step, so callers that only ever use the
// Run family never leak goroutines; direct StepOnce drivers are covered
// by the finalizer.
func (net *Network) ensurePool() {
	if net.pool == nil {
		net.pool = newStepPool(net.cfg.Workers)
		if !net.poolFinalizer {
			net.poolFinalizer = true
			runtime.SetFinalizer(net, (*Network).stopPool)
		}
	}
}

// stopPool stops the persistent workers, if any. Idempotent; the pool
// respawns lazily on the next parallel StepOnce. Must not be called
// concurrently with StepOnce (the engine is single-driver by contract).
func (net *Network) stopPool() {
	if net.pool != nil {
		net.pool.stop()
		net.pool = nil
	}
}
