package sim

import (
	"testing"

	"meshroute/internal/grid"
)

// greedyXY is a minimal test algorithm: dimension order (row first), FIFO
// outqueue, accept-if-room inqueue. It exercises every engine code path
// without depending on the routers package.
type greedyXY struct{}

func (greedyXY) Name() string                   { return "test-greedy-xy" }
func (greedyXY) InitNode(net *Network, n *Node) {}
func (greedyXY) Update(net *Network, n *Node)   {}

func (greedyXY) Schedule(net *Network, n *Node) [grid.NumDirs]int {
	sched := [grid.NumDirs]int{-1, -1, -1, -1}
	taken := [grid.NumDirs]bool{}
	for i, p := range net.PacketsOf(n) {
		prof := net.Topo.Profitable(n.ID, net.P.Dst[p])
		// Dimension order: horizontal first.
		var want grid.Dir = grid.NoDir
		switch {
		case prof.Has(grid.East):
			want = grid.East
		case prof.Has(grid.West):
			want = grid.West
		case prof.Has(grid.North):
			want = grid.North
		case prof.Has(grid.South):
			want = grid.South
		}
		if want != grid.NoDir && !taken[want] {
			sched[want] = i
			taken[want] = true
		}
	}
	return sched
}

func (greedyXY) Accept(net *Network, n *Node, offers []Offer, acc []bool) {
	free := net.K - n.QueueLen(0)
	for i, o := range offers {
		if net.P.Dst[o.P] == n.ID {
			acc[i] = true // delivery consumes no space
			continue
		}
		if free > 0 {
			acc[i] = true
			free--
		}
	}
}

// CloneForWorker implements ParallelCloner (the algorithm is stateless).
func (g greedyXY) CloneForWorker() Algorithm { return g }

func newTestNet(t *testing.T, n, k int) *Network {
	t.Helper()
	return MustNew(Config{
		Topo:            grid.NewSquareMesh(n),
		K:               k,
		Queues:          CentralQueue,
		RequireMinimal:  true,
		CheckInvariants: true,
	})
}

func TestSinglePacketStraightLine(t *testing.T) {
	net := newTestNet(t, 8, 2)
	m := net.Topo
	p := net.NewPacket(m.ID(grid.XY(0, 3)), m.ID(grid.XY(5, 3)))
	net.MustPlace(p)
	steps, err := net.Run(greedyXY{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 5 {
		t.Fatalf("steps = %d, want 5 (distance)", steps)
	}
	if !net.P.Delivered(p) || net.P.DeliverStep[p] != 5 || net.P.Hops[p] != 5 {
		t.Fatalf("packet state %+v", net.PacketSnapshot(p))
	}
	if !net.Done() {
		t.Fatal("network must be done")
	}
}

func TestSinglePacketTurns(t *testing.T) {
	net := newTestNet(t, 8, 2)
	m := net.Topo
	p := net.NewPacket(m.ID(grid.XY(1, 1)), m.ID(grid.XY(6, 7)))
	net.MustPlace(p)
	steps, err := net.Run(greedyXY{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Dist(net.P.Src[p], net.P.Dst[p])
	if steps != want {
		t.Fatalf("steps = %d, want %d", steps, want)
	}
}

func TestSelfDeliveredAtPlacement(t *testing.T) {
	net := newTestNet(t, 4, 1)
	p := net.NewPacket(5, 5)
	net.MustPlace(p)
	if !net.P.Delivered(p) || net.P.DeliverStep[p] != 0 {
		t.Fatalf("fixed-point packet must deliver at placement: %+v", net.PacketSnapshot(p))
	}
	if !net.Done() {
		t.Fatal("done expected")
	}
	steps, err := net.Run(greedyXY{}, 10)
	if err != nil || steps != 0 {
		t.Fatalf("run on done network: steps=%d err=%v", steps, err)
	}
}

func TestPlacementCapacityEnforced(t *testing.T) {
	net := newTestNet(t, 4, 1)
	net.MustPlace(net.NewPacket(0, 5))
	if err := net.Place(net.NewPacket(0, 6)); err == nil {
		t.Fatal("placing 2 packets in a k=1 central queue must fail")
	}
}

func TestFullReversalPermutationDelivers(t *testing.T) {
	const n = 8
	net := newTestNet(t, n, 4)
	m := net.Topo
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			src := m.ID(grid.XY(x, y))
			dst := m.ID(grid.XY(n-1-x, n-1-y))
			net.MustPlace(net.NewPacket(src, dst))
		}
	}
	steps, err := net.Run(greedyXY{}, 10*n*n)
	if err != nil {
		t.Fatal(err)
	}
	if net.DeliveredCount() != n*n {
		t.Fatalf("delivered %d/%d", net.DeliveredCount(), n*n)
	}
	if steps < 2*n-2 {
		t.Fatalf("reversal cannot beat diameter: %d < %d", steps, 2*n-2)
	}
	if net.Metrics.MaxQueueLen > 4 {
		t.Fatalf("capacity violated: %d", net.Metrics.MaxQueueLen)
	}
}

// Every packet in a permutation must take a minimal path: hops == distance.
func TestMinimalPathsHopsEqualDistance(t *testing.T) {
	const n = 6
	net := newTestNet(t, n, 3)
	m := net.Topo
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			src := m.ID(grid.XY(x, y))
			dst := m.ID(grid.XY((x+3)%n, (y+2)%n))
			net.MustPlace(net.NewPacket(src, dst))
		}
	}
	if _, err := net.Run(greedyXY{}, 1000); err != nil {
		t.Fatal(err)
	}
	for _, p := range net.Packets() {
		if p.Hops != m.Dist(p.Src, p.Dst) {
			t.Fatalf("packet %d hops %d != dist %d", p.ID, p.Hops, m.Dist(p.Src, p.Dst))
		}
	}
}

func TestExchangeHookSwapsDestinations(t *testing.T) {
	net := newTestNet(t, 8, 2)
	m := net.Topo
	a := net.NewPacket(m.ID(grid.XY(0, 0)), m.ID(grid.XY(4, 4)))
	b := net.NewPacket(m.ID(grid.XY(1, 1)), m.ID(grid.XY(5, 5)))
	net.MustPlace(a)
	net.MustPlace(b)
	swapped := false
	net.SetExchange(func(n *Network, step int, moves []Move) {
		if step == 1 && !swapped {
			n.P.Dst[a], n.P.Dst[b] = n.P.Dst[b], n.P.Dst[a]
			swapped = true
		}
	})
	if _, err := net.Run(greedyXY{}, 100); err != nil {
		t.Fatal(err)
	}
	if m.CoordOf(net.P.Dst[a]) != (grid.XY(5, 5)) || m.CoordOf(net.P.Dst[b]) != (grid.XY(4, 4)) {
		t.Fatal("exchange did not persist")
	}
	// Both packets start on the shared diagonal corridor; after the swap
	// each must still arrive at its (new) destination minimally.
	for _, p := range []PacketID{a, b} {
		if !net.P.Delivered(p) {
			t.Fatalf("packet %d undelivered", p.ID())
		}
	}
}

func TestRunPartialStopsWithoutError(t *testing.T) {
	net := newTestNet(t, 8, 2)
	m := net.Topo
	net.MustPlace(net.NewPacket(m.ID(grid.XY(0, 0)), m.ID(grid.XY(7, 7))))
	steps, err := net.RunPartial(greedyXY{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 3 || net.Done() {
		t.Fatalf("partial run: steps=%d done=%v", steps, net.Done())
	}
	if _, err := net.Run(greedyXY{}, 100); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrorsWhenOutOfSteps(t *testing.T) {
	net := newTestNet(t, 8, 2)
	m := net.Topo
	net.MustPlace(net.NewPacket(m.ID(grid.XY(0, 0)), m.ID(grid.XY(7, 7))))
	if _, err := net.Run(greedyXY{}, 3); err == nil {
		t.Fatal("Run must error when step budget exhausted")
	}
}

// A non-minimal schedule must be rejected when RequireMinimal is set.
type badAlg struct{ greedyXY }

func (badAlg) Schedule(net *Network, n *Node) [grid.NumDirs]int {
	sched := [grid.NumDirs]int{-1, -1, -1, -1}
	p := net.PacketsOf(n)[0]
	prof := net.Topo.Profitable(n.ID, net.P.Dst[p])
	for d := grid.Dir(0); d < grid.NumDirs; d++ {
		if !prof.Has(d) {
			if _, ok := net.Topo.Neighbor(n.ID, d); ok {
				sched[d] = 0
				return sched
			}
		}
	}
	return sched
}

func TestRequireMinimalRejectsBadMove(t *testing.T) {
	net := newTestNet(t, 8, 2)
	m := net.Topo
	net.MustPlace(net.NewPacket(m.ID(grid.XY(3, 3)), m.ID(grid.XY(5, 5))))
	if err := net.StepOnce(badAlg{}); err == nil {
		t.Fatal("non-minimal move must be rejected")
	}
}

// Scheduling one packet on two outlinks must be rejected.
type doubleAlg struct{ greedyXY }

func (doubleAlg) Schedule(net *Network, n *Node) [grid.NumDirs]int {
	return [grid.NumDirs]int{0, 0, -1, -1} // same packet North and East
}

func TestDoubleScheduleRejected(t *testing.T) {
	net := newTestNet(t, 8, 2)
	m := net.Topo
	net.MustPlace(net.NewPacket(m.ID(grid.XY(3, 3)), m.ID(grid.XY(5, 5))))
	if err := net.StepOnce(doubleAlg{}); err == nil {
		t.Fatal("double-scheduled packet must be rejected")
	}
}

func TestInjectionWaitsForRoom(t *testing.T) {
	net := newTestNet(t, 8, 1)
	m := net.Topo
	src := m.ID(grid.XY(0, 0))
	// Occupy the k=1 queue with a resident packet that cannot move North
	// or East quickly... actually it can; use injections only.
	p1 := net.NewPacket(src, m.ID(grid.XY(3, 0)))
	p2 := net.NewPacket(src, m.ID(grid.XY(0, 3)))
	net.QueueInjection(p1, 1)
	net.QueueInjection(p2, 1)
	if _, err := net.Run(greedyXY{}, 100); err != nil {
		t.Fatal(err)
	}
	if !net.P.Delivered(p1) || !net.P.Delivered(p2) {
		t.Fatal("both injected packets must deliver")
	}
	if net.P.InjectStep[p2] <= net.P.InjectStep[p1] {
		t.Fatalf("k=1: second injection must wait (inject steps %d, %d)", net.P.InjectStep[p1], net.P.InjectStep[p2])
	}
}

func TestMetricsBasics(t *testing.T) {
	net := newTestNet(t, 8, 4)
	net.Metrics.RecordHistory()
	m := net.Topo
	net.MustPlace(net.NewPacket(m.ID(grid.XY(0, 0)), m.ID(grid.XY(3, 0))))
	net.MustPlace(net.NewPacket(m.ID(grid.XY(0, 1)), m.ID(grid.XY(0, 5))))
	if _, err := net.Run(greedyXY{}, 100); err != nil {
		t.Fatal(err)
	}
	if net.Metrics.Makespan != 4 {
		t.Fatalf("makespan = %d, want 4", net.Metrics.Makespan)
	}
	if net.Metrics.TotalHops != 7 {
		t.Fatalf("hops = %d, want 7", net.Metrics.TotalHops)
	}
	if got := net.AvgDelay(); got != 3.5 {
		t.Fatalf("avg delay = %v, want 3.5", got)
	}
	sum := 0
	for _, c := range net.Metrics.DeliveredAtStep {
		sum += c
	}
	if sum != 2 {
		t.Fatalf("history delivered sum = %d, want 2", sum)
	}
}

func TestPerInlinkQueueTags(t *testing.T) {
	net := MustNew(Config{
		Topo:            grid.NewSquareMesh(8),
		K:               1,
		Queues:          PerInlinkQueues,
		RequireMinimal:  true,
		CheckInvariants: true,
	})
	m := net.Topo
	p := net.NewPacket(m.ID(grid.XY(0, 0)), m.ID(grid.XY(2, 0)))
	net.MustPlace(p)
	if net.P.QTag[p] != OriginTag {
		t.Fatalf("origin tag = %d", net.P.QTag[p])
	}
	if err := net.StepOnce(greedyXY{}); err != nil {
		t.Fatal(err)
	}
	// Travelling East, the packet arrives in the West queue of (1,0).
	if net.P.QTag[p] != uint8(grid.West) {
		t.Fatalf("after eastward hop, tag = %d, want West", net.P.QTag[p])
	}
	node := net.Node(m.ID(grid.XY(1, 0)))
	if node.QueueLen(uint8(grid.West)) != 1 || node.NetworkLen() != 1 {
		t.Fatal("queue accounting wrong")
	}
}

func TestOccupiedTracking(t *testing.T) {
	net := newTestNet(t, 8, 2)
	m := net.Topo
	net.MustPlace(net.NewPacket(m.ID(grid.XY(0, 0)), m.ID(grid.XY(1, 0))))
	if len(net.Occupied()) != 1 {
		t.Fatal("one occupied node expected")
	}
	if _, err := net.Run(greedyXY{}, 10); err != nil {
		t.Fatal(err)
	}
	if len(net.Occupied()) != 0 {
		t.Fatal("no occupied nodes after delivery")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		const n = 8
		net := newTestNet(t, n, 4)
		m := net.Topo
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				// Transpose-and-shift: a true permutation.
				net.MustPlace(net.NewPacket(m.ID(grid.XY(x, y)), m.ID(grid.XY(y, (x+1)%n))))
			}
		}
		if _, err := net.Run(greedyXY{}, 10000); err != nil {
			t.Fatal(err)
		}
		out := make([]int, 0, n*n)
		for _, p := range net.Packets() {
			out = append(out, p.DeliverStep)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic delivery at packet %d: %d vs %d", i, a[i], b[i])
		}
	}
}
