package sim

import (
	"testing"

	"meshroute/internal/grid"
	"meshroute/internal/obs"
)

// reversalNet builds an n×n central-queue mesh loaded with the reversal
// permutation (every node holds one packet to the opposite corner).
func reversalNet(n, k int) *Network {
	net := MustNew(Config{Topo: grid.NewSquareMesh(n), K: k, Queues: CentralQueue, RequireMinimal: true})
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			net.MustPlace(net.NewPacket(net.Topo.ID(grid.XY(x, y)), net.Topo.ID(grid.XY(n-1-x, n-1-y))))
		}
	}
	return net
}

func TestMetricsSinkSamples(t *testing.T) {
	net := reversalNet(8, 4)
	m := &obs.Memory{}
	net.SetMetricsSink(m)
	if _, err := net.Run(greedyXY{}, 10000); err != nil {
		t.Fatal(err)
	}
	if len(m.Steps) != net.Step() {
		t.Fatalf("recorded %d samples over %d steps", len(m.Steps), net.Step())
	}

	sumDelivered, sumMoves := 0, 0
	var sumLink int
	for i, s := range m.Steps {
		if s.Step != i+1 {
			t.Fatalf("sample %d has step %d", i, s.Step)
		}
		sumDelivered += s.Delivered
		sumMoves += s.Moves
		for _, c := range s.LinkUse {
			sumLink += c
		}
		if s.QueueHist.Total() > s.InFlight {
			t.Fatalf("step %d: %d queues counted but only %d packets in flight", s.Step, s.QueueHist.Total(), s.InFlight)
		}
	}
	if sumDelivered != net.TotalPackets() {
		t.Errorf("sum of per-step deliveries = %d, want %d", sumDelivered, net.TotalPackets())
	}
	if sumMoves != net.Metrics.TotalHops {
		t.Errorf("sum of per-step moves = %d, want TotalHops = %d", sumMoves, net.Metrics.TotalHops)
	}
	if sumLink != net.Metrics.TotalHops {
		t.Errorf("sum of per-direction link use = %d, want TotalHops = %d", sumLink, net.Metrics.TotalHops)
	}
	last := m.Steps[len(m.Steps)-1]
	if last.InFlight != 0 || last.DeliveredTotal != net.TotalPackets() {
		t.Errorf("final sample %+v does not show a drained network", last)
	}
	if m.PeakQueue() != net.Metrics.MaxQueueLen {
		t.Errorf("PeakQueue = %d, Metrics.MaxQueueLen = %d", m.PeakQueue(), net.Metrics.MaxQueueLen)
	}
	curve := m.DeliveryCurve()
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("delivery curve decreases at step %d", i+1)
		}
	}
}

func TestMetricsSinkPerInlinkQueues(t *testing.T) {
	const n = 8
	net := MustNew(Config{Topo: grid.NewSquareMesh(n), K: 2, Queues: PerInlinkQueues})
	for x := 0; x < n; x++ {
		net.MustPlace(net.NewPacket(net.Topo.ID(grid.XY(x, 0)), net.Topo.ID(grid.XY(x, n-1))))
	}
	m := &obs.Memory{}
	net.SetMetricsSink(m)
	if _, err := net.Run(greedyXY{}, 1000); err != nil {
		t.Fatal(err)
	}
	// Origin-buffer packets count as in flight but never enter the
	// queue histogram or MaxQueue (the origin buffer is unbounded).
	if m.Steps[0].InFlight != n {
		t.Errorf("step 1 InFlight = %d, want %d", m.Steps[0].InFlight, n)
	}
	if peak := m.PeakQueue(); peak > net.K {
		t.Errorf("sink saw queue occupancy %d over capacity %d", peak, net.K)
	}
}

// TestSinkSamplingZeroAlloc proves the sampling path allocates nothing:
// an identical deterministic run with a preallocated Memory sink must
// perform exactly as many allocations as the run with a nil sink (the nil
// path does strictly less work — it skips emitStepSample entirely).
func TestSinkSamplingZeroAlloc(t *testing.T) {
	const n, k = 8, 4
	run := func(sink obs.Sink) {
		net := reversalNet(n, k)
		if sink != nil {
			net.SetMetricsSink(sink)
		}
		if _, err := net.Run(greedyXY{}, 10000); err != nil {
			t.Fatal(err)
		}
	}
	m := &obs.Memory{Steps: make([]obs.StepSample, 0, 4096)}
	nilAllocs := testing.AllocsPerRun(5, func() { run(nil) })
	sinkAllocs := testing.AllocsPerRun(5, func() {
		m.Steps = m.Steps[:0]
		run(m)
	})
	if sinkAllocs != nilAllocs {
		t.Errorf("sampling allocates: %.1f allocs/run with preallocated sink vs %.1f with nil sink",
			sinkAllocs, nilAllocs)
	}
}
