package sim

import "fmt"

// checkStepInvariants runs the end-of-step invariant checker, enabled by
// Config.CheckInvariants:
//
//   - queue capacity: every queue's occupancy is within capOf(tag) under
//     either queue model (the origin buffer is unbounded per-inlink);
//   - count consistency: each node's per-tag counters sum to its resident
//     packet count, and each resident packet's At/slot index match the
//     node and its queue position;
//   - packet conservation: delivered + resident + backlogged + pending
//     equals the number of packets ever placed or queued — packets are
//     never duplicated or lost by a step.
//
// Minimality of moves is the fourth engine invariant; it is enforced
// inline at scheduling time by Config.RequireMinimal / Config.MaxStray
// (see StepOnce), where the offending move is still known.
//
// The checker allocates nothing and runs in O(occupied nodes); when the
// flag is off the engine pays a single branch per step.
func (net *Network) checkStepInvariants(alg Algorithm) error {
	st := &net.P
	resident := 0
	for _, id := range net.occ {
		node := &net.nodes[id]
		sum := 0
		for tag := uint8(0); tag < numTags; tag++ {
			c := int(node.counts[tag])
			if c < 0 {
				return fmt.Errorf("sim: invariant: node %v queue %d has negative count %d after %s step %d",
					net.Topo.CoordOf(id), tag, c, alg.Name(), net.step)
			}
			if c > net.capOf(tag) {
				return fmt.Errorf("sim: invariant: %s overflowed queue %d of node %v (%d > %d) at step %d",
					alg.Name(), tag, net.Topo.CoordOf(id), c, net.capOf(tag), net.step)
			}
			sum += c
		}
		if sum != node.Len() {
			return fmt.Errorf("sim: invariant: node %v queue counters sum to %d but holds %d packets (step %d)",
				net.Topo.CoordOf(id), sum, node.Len(), net.step)
		}
		for i, p := range net.PacketsOf(node) {
			if st.At[p] != id {
				return fmt.Errorf("sim: invariant: packet %d resident at node %v but At=%v (step %d)",
					p.ID(), net.Topo.CoordOf(id), net.Topo.CoordOf(st.At[p]), net.step)
			}
			if int(st.slot[p]) != i {
				return fmt.Errorf("sim: invariant: packet %d at queue position %d carries slot index %d (step %d)",
					p.ID(), i, st.slot[p], net.step)
			}
			if st.Delivered(p) {
				return fmt.Errorf("sim: invariant: delivered packet %d still resident at %v (step %d)",
					p.ID(), net.Topo.CoordOf(id), net.step)
			}
		}
		resident += node.Len()
	}
	if got := net.delivered + resident + net.backlogTotal + net.pendingTotal; got != net.total {
		return fmt.Errorf("sim: invariant: packet conservation violated at step %d: %d delivered + %d resident + %d backlogged + %d pending = %d, want %d",
			net.step, net.delivered, resident, net.backlogTotal, net.pendingTotal, got, net.total)
	}
	return nil
}
