package sim

import "meshroute/internal/obs"

// Metrics accumulates run statistics: makespan, delays, hop counts, and
// peak queue occupancy (the quantity bounded by k in the paper's model and
// by the constants of Lemma 28 in the Section 6 algorithm).
type Metrics struct {
	// Makespan is the step at which the last packet (so far) was
	// delivered.
	Makespan int
	// TotalHops is the total number of link traversals by delivered and
	// in-flight packets.
	TotalHops int
	// SumDelay is the sum over delivered packets of delivery step minus
	// injection step.
	SumDelay int
	// DeliveredAtStep, if enabled with RecordHistory, holds the number of
	// deliveries per step (index = step).
	DeliveredAtStep []int
	// MaxQueueLen is the maximum end-of-step occupancy of any single
	// queue (excluding the unbounded origin buffer).
	MaxQueueLen int
	// MaxNodeLoad is the maximum end-of-step number of packets in any
	// node, including the origin buffer.
	MaxNodeLoad int
	// FaultDrops counts scheduled moves the engine dropped because the
	// link was down or the target node stalled (0 without faults).
	FaultDrops int

	// Admission accounting (nonzero only for streamed/queued injection).
	// Offered counts distinct injection requests presented to the
	// admission phase; Admitted counts those that entered a queue (or were
	// delivered in place); Refused counts refusal events — one per step a
	// packet waits in a backlog under the retry policy, one per discarded
	// offer under the drop policy — so Refused/(Admitted+Refused) is the
	// per-attempt refusal rate; Dropped counts offers discarded under the
	// drop policy (a subset of Refused, and never materialized).
	Offered  int
	Admitted int
	Refused  int
	Dropped  int

	recordHistory bool
}

// RecordHistory enables per-step delivery counts.
func (m *Metrics) RecordHistory() { m.recordHistory = true }

func (m *Metrics) noteDelivered(injectStep, step int) {
	if step > m.Makespan {
		m.Makespan = step
	}
	m.SumDelay += step - injectStep
	if m.recordHistory {
		for len(m.DeliveredAtStep) <= step {
			m.DeliveredAtStep = append(m.DeliveredAtStep, 0)
		}
		m.DeliveredAtStep[step]++
	}
}

// noteDeliveredBatch folds a whole step's deliveries into the metrics at
// once: the part (d) apply (serial or per-worker shard) counts deliveries
// and sums their delays locally, and the engine commits the batch here.
// Equivalent to count noteDelivered calls with this step number.
func (m *Metrics) noteDeliveredBatch(step, count, sumDelay int) {
	if count == 0 {
		return
	}
	if step > m.Makespan {
		m.Makespan = step
	}
	m.SumDelay += sumDelay
	if m.recordHistory {
		for len(m.DeliveredAtStep) <= step {
			m.DeliveredAtStep = append(m.DeliveredAtStep, 0)
		}
		m.DeliveredAtStep[step] += count
	}
}

// noteOccupancy folds one end-of-step occupancy maxima observation (from
// the part (e) scan, per shard when parallel) into the run maxima.
func (m *Metrics) noteOccupancy(maxQueue, maxNodeLoad int) {
	if maxQueue > m.MaxQueueLen {
		m.MaxQueueLen = maxQueue
	}
	if maxNodeLoad > m.MaxNodeLoad {
		m.MaxNodeLoad = maxNodeLoad
	}
}

// emitStepSample builds the end-of-step obs.StepSample and feeds it to the
// installed metrics sink. Only called when a sink is installed; the sample
// is a stack value and the loops below allocate nothing, so the disabled
// path (nil sink) costs exactly one branch in StepOnce.
func (net *Network) emitStepSample(step int, arrivals []arrival, delivered int) {
	s := obs.StepSample{
		Step:           step,
		Moves:          len(arrivals),
		Delivered:      delivered,
		DeliveredTotal: net.delivered,
		Offered:        net.stepOffered,
		Admitted:       net.stepAdmitted,
		Refused:        net.stepRefused,
		Backlog:        net.backlogTotal,
	}
	for _, a := range arrivals {
		s.LinkUse[a.dir]++
	}
	for _, id := range net.occ {
		node := &net.nodes[id]
		if node.qLen == 0 {
			continue
		}
		s.OccupiedNodes++
		s.InFlight += node.Len()
		for tag := uint8(0); tag < numTags; tag++ {
			if tag == OriginTag && net.Queues == PerInlinkQueues {
				continue
			}
			if c := int(node.counts[tag]); c > 0 {
				s.QueueHist.Add(c)
				if c > s.MaxQueue {
					s.MaxQueue = c
				}
			}
		}
	}
	net.sink.Step(s)
}

// AvgDelay returns the mean delivery delay over delivered packets, or 0.
func (net *Network) AvgDelay() float64 {
	if net.delivered == 0 {
		return 0
	}
	return float64(net.Metrics.SumDelay) / float64(net.delivered)
}
