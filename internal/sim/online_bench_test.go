package sim

import (
	"fmt"
	"testing"

	"meshroute/internal/analysis"
	"meshroute/internal/grid"
)

// streamSource is a deterministic, never-exhausted arithmetic arrival
// process for online benchmarks and alloc tests: at every step, node id
// injects when (id+step)%149 == 0 (so over any 149 consecutive steps every
// node sources exactly once — ~n²/149 arrivals per step, far enough below
// the mesh bisection bound that the run reaches a genuine steady state),
// toward the shifted destination (id·13 + step·29) mod n². No RNG, no
// allocation beyond the caller's append buffer.
type streamSource struct {
	nn int
}

func (s *streamSource) Next(step int, buf []Injection) []Injection {
	if step < 1 {
		return buf
	}
	for id := 0; id < s.nn; id++ {
		if (id+step)%149 == 0 {
			dst := grid.NodeID((id*13 + step*29) % s.nn)
			buf = append(buf, Injection{Src: grid.NodeID(id), Dst: dst})
		}
	}
	return buf
}

func (s *streamSource) Exhausted(int) bool { return false }

// onlineXY extends the greedyXY test algorithm with the two admission rules
// every production router uses (see acceptDimOrderReserving in the routers
// package): the swap rule — an offer arriving on an inlink we scheduled a
// packet back along is accepted unconditionally, since by symmetry the
// neighbor accepts ours and occupancy is unchanged — and a reserved queue
// slot only column-phase packets may take. Without them, a plain
// accept-if-room policy wedges under sustained injection: a cycle of full
// central queues never moves again, deliveries stop, and the backlog grows
// without bound. With them the bench reaches a real injection/delivery
// equilibrium.
type onlineXY struct{ greedyXY }

func (a onlineXY) Accept(net *Network, n *Node, offers []Offer, acc []bool) {
	sched := a.Schedule(net, n)
	occ := n.QueueLen(0)
	for i, o := range offers {
		switch {
		case net.P.Dst[o.P] == n.ID:
			acc[i] = true // delivery consumes no space
		case sched[o.Travel.Opposite()] >= 0:
			acc[i] = true // swap rule: occupancy-neutral exchange
		case o.Travel.Horizontal() && occ < net.K-1:
			acc[i] = true // row phase leaves the reserved slot free
			occ++
		case !o.Travel.Horizontal() && occ < net.K:
			acc[i] = true
			occ++
		}
	}
}

// CloneForWorker implements ParallelCloner (the algorithm is stateless).
func (a onlineXY) CloneForWorker() Algorithm { return a }

// onlineStreamNet builds an n×n mesh driven by the streamSource under the
// retry admission policy, pre-reserving store capacity for the given number
// of steps so steady-state appends never grow a column mid-measurement, and
// warms it for 3n steps (injection equilibrium: in-flight population and
// per-node backlog/queue capacities at their working sizes).
func onlineStreamNet(tb testing.TB, n, workers, steps int) *Network {
	net := MustNew(Config{
		Topo:    grid.NewSquareMesh(n),
		K:       4,
		Queues:  CentralQueue,
		Workers: workers,
	})
	warm := 3 * n
	perStep := n*n/149 + 1
	net.ReserveInjections((steps + warm + 2) * perStep)
	if err := net.AttachSource(&streamSource{nn: n * n}, AdmitRetry); err != nil {
		tb.Fatal(err)
	}
	if !net.OpenWorkload() {
		tb.Fatal("stream source must register as an open workload")
	}
	for i := 0; i < warm; i++ {
		if err := net.StepOnce(onlineXY{}); err != nil {
			tb.Fatal(err)
		}
	}
	return net
}

// BenchmarkStepOnline measures one engine step under sustained streaming
// injection on a 64×64 mesh (~27 arrivals per step, ~1K packets in flight
// at equilibrium), serial and at 2/4/8 pipeline workers. Every cell is a
// zero-alloc guard like the StepTorus matrix: the admission phase rides
// inside the five-phase step, so a steady-state online step must allocate
// nothing at any worker count (benchgate gates all four cells). The
// network is rebuilt every epoch outside the timer, since an open workload
// never reaches Done.
func BenchmarkStepOnline(b *testing.B) {
	const n = 64
	const epoch = 1024
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("n%d/w%d", n, workers), func(b *testing.B) {
			net := onlineStreamNet(b, n, workers, epoch)
			left := epoch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if left == 0 {
					b.StopTimer()
					net = onlineStreamNet(b, n, workers, epoch)
					left = epoch
					b.StartTimer()
				}
				if err := net.StepOnce(onlineXY{}); err != nil {
					b.Fatal(err)
				}
				left--
			}
			b.ReportMetric(float64(net.TotalPackets())/float64(net.Step()), "arrivals/step")
		})
	}
}

// BenchmarkStepOnlineAnalyzed is the StepOnline cell with the C/D
// accumulator (internal/analysis) attached as the admission-time
// analyzer. The accumulator's Admit walks the canonical path of every
// admitted packet but never allocates, so these cells hold the same
// 0 B/op / 0 allocs/op contract as the analyzer-off matrix — benchgate
// gates both, which pins that analysis stays pay-for-play in CPU only.
func BenchmarkStepOnlineAnalyzed(b *testing.B) {
	const n = 64
	const epoch = 1024
	build := func(workers int) *Network {
		net := onlineAnalyzedNet(b, n, workers, epoch)
		return net
	}
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("n%d/w%d", n, workers), func(b *testing.B) {
			net := build(workers)
			left := epoch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if left == 0 {
					b.StopTimer()
					net = build(workers)
					left = epoch
					b.StartTimer()
				}
				if err := net.StepOnce(onlineXY{}); err != nil {
					b.Fatal(err)
				}
				left--
			}
		})
	}
}

// onlineAnalyzedNet is onlineStreamNet with a C/D accumulator installed
// before the source attaches (the same ordering the scenario layer uses,
// so step-0 and warm-up injections are counted).
func onlineAnalyzedNet(tb testing.TB, n, workers, steps int) *Network {
	net := MustNew(Config{
		Topo:    grid.NewSquareMesh(n),
		K:       4,
		Queues:  CentralQueue,
		Workers: workers,
	})
	net.SetAnalyzer(analysis.NewAccumulator(net.Topo))
	warm := 3 * n
	perStep := n*n/149 + 1
	net.ReserveInjections((steps + warm + 2) * perStep)
	if err := net.AttachSource(&streamSource{nn: n * n}, AdmitRetry); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < warm; i++ {
		if err := net.StepOnce(onlineXY{}); err != nil {
			tb.Fatal(err)
		}
	}
	return net
}

// TestOnlineSteadyStateStepAllocs pins the tentpole's zero-alloc
// requirement directly: after warm-up, a steady-state engine step under
// continuous streaming injection — source pull, admission, backlog drain
// and all — performs zero heap allocations, serial and with 4 pipeline
// workers.
func TestOnlineSteadyStateStepAllocs(t *testing.T) {
	for _, workers := range []int{0, 4} {
		workers := workers
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			const runs = 10
			net := onlineStreamNet(t, 64, workers, runs+2)
			avg := testing.AllocsPerRun(runs, func() {
				if err := net.StepOnce(onlineXY{}); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Fatalf("steady-state online step allocates %v times (workers=%d), want 0", avg, workers)
			}
		})
	}
}

// TestAnalyzedSteadyStateStepAllocs pins that attaching the C/D
// accumulator keeps the steady-state online step at zero heap
// allocations (analysis is pay-for-play in CPU, never in allocations),
// and that the accumulator actually accrued a result over the warm-up.
func TestAnalyzedSteadyStateStepAllocs(t *testing.T) {
	for _, workers := range []int{0, 4} {
		workers := workers
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			const runs = 10
			net := onlineAnalyzedNet(t, 64, workers, runs+2)
			avg := testing.AllocsPerRun(runs, func() {
				if err := net.StepOnce(onlineXY{}); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Fatalf("analyzed steady-state step allocates %v times (workers=%d), want 0", avg, workers)
			}
			acc, ok := net.analyzer.(*analysis.Accumulator)
			if !ok {
				t.Fatalf("analyzer is %T, want *analysis.Accumulator", net.analyzer)
			}
			if r := acc.Result(); r.Congestion <= 0 || r.Dilation <= 0 {
				t.Fatalf("accumulator accrued nothing: C=%d D=%d", r.Congestion, r.Dilation)
			}
		})
	}
}
