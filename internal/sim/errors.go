package sim

import (
	"fmt"
	"sort"
	"strings"

	"meshroute/internal/grid"
)

// QueueDiag describes one hot queue in a run diagnostic.
type QueueDiag struct {
	// Node is the queue's node.
	Node grid.NodeID
	// Coord is the node's coordinate.
	Coord grid.Coord
	// Tag is the queue tag (0 for the central queue; an inlink index or
	// OriginTag under the per-inlink model).
	Tag uint8
	// Len is the end-of-run occupancy.
	Len int
}

// maxDiagQueues bounds how many hot queues a diagnostic reports.
const maxDiagQueues = 8

// Diagnostics is the structured state snapshot attached to the step-limit
// and livelock-watchdog errors, so a failed run reports *why* it failed
// instead of only that it did.
type Diagnostics struct {
	// Step is the step at which the run gave up.
	Step int
	// Undelivered is the number of packets not yet delivered (including
	// packets still waiting in injection backlogs).
	Undelivered int
	// LastProgressStep is the last step at which a packet was delivered
	// (0 if none ever was).
	LastProgressStep int
	// StalledSteps is Step - LastProgressStep: how long the run went
	// without progress before aborting.
	StalledSteps int
	// TopQueues lists the hottest queues (highest end-of-run occupancy),
	// at most maxDiagQueues of them, hottest first.
	TopQueues []QueueDiag
	// FaultDrops is the cumulative number of scheduled moves the engine
	// dropped on failed links or into stalled nodes (0 without faults).
	FaultDrops int
}

// String renders a one-line summary (the long form is the struct itself).
func (d Diagnostics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "undelivered=%d, last progress at step %d (%d steps without progress)",
		d.Undelivered, d.LastProgressStep, d.StalledSteps)
	if d.FaultDrops > 0 {
		fmt.Fprintf(&b, ", %d moves dropped by faults", d.FaultDrops)
	}
	if len(d.TopQueues) > 0 {
		b.WriteString("; hottest queues:")
		for _, q := range d.TopQueues {
			fmt.Fprintf(&b, " %v/q%d=%d", q.Coord, q.Tag, q.Len)
		}
	}
	return b.String()
}

// CollectDiagnostics snapshots the current run state: undelivered count,
// last-progress step, and the hottest queues. It is called by the engine
// when a run aborts, and exported so CLIs can report on partial runs.
func (net *Network) CollectDiagnostics() Diagnostics {
	d := Diagnostics{
		Step:             net.step,
		Undelivered:      net.total - net.delivered,
		LastProgressStep: net.lastProgress,
		StalledSteps:     net.step - net.lastProgress,
		FaultDrops:       net.Metrics.FaultDrops,
	}
	for _, id := range net.occ {
		node := &net.nodes[id]
		for tag := uint8(0); tag < numTags; tag++ {
			if c := int(node.counts[tag]); c > 0 {
				d.TopQueues = append(d.TopQueues, QueueDiag{
					Node: id, Coord: net.Topo.CoordOf(id), Tag: tag, Len: c,
				})
			}
		}
	}
	sort.Slice(d.TopQueues, func(i, j int) bool {
		if d.TopQueues[i].Len != d.TopQueues[j].Len {
			return d.TopQueues[i].Len > d.TopQueues[j].Len
		}
		return d.TopQueues[i].Node < d.TopQueues[j].Node
	})
	if len(d.TopQueues) > maxDiagQueues {
		d.TopQueues = d.TopQueues[:maxDiagQueues]
	}
	return d
}

// StepLimitError reports that Run exhausted its step budget with packets
// undelivered. It carries the same structured diagnostics as the livelock
// watchdog.
type StepLimitError struct {
	// Alg is the routing algorithm's name.
	Alg string
	// MaxSteps is the exhausted budget.
	MaxSteps int
	// Delivered and Total count packets.
	Delivered, Total int
	// Diag is the end-of-run state snapshot.
	Diag Diagnostics
}

// Error implements error.
func (e *StepLimitError) Error() string {
	return fmt.Sprintf("sim: %s did not deliver all packets in %d steps (%d/%d delivered): %s",
		e.Alg, e.MaxSteps, e.Delivered, e.Total, e.Diag)
}

// LivelockError reports that the livelock watchdog saw no delivery for a
// full no-progress window and aborted the run early (instead of burning
// the rest of the step budget).
type LivelockError struct {
	// Alg is the routing algorithm's name.
	Alg string
	// Window is the configured no-progress window, in steps.
	Window int
	// Diag is the abort-time state snapshot.
	Diag Diagnostics
}

// Error implements error.
func (e *LivelockError) Error() string {
	return fmt.Sprintf("sim: watchdog: %s made no progress for %d steps (aborted at step %d): %s",
		e.Alg, e.Window, e.Diag.Step, e.Diag)
}

// CanceledError reports that a context-aware run (RunContext,
// RunPartialContext) was canceled between steps. It carries the same
// structured diagnostics as the other abort errors, so callers can report
// partial progress, and unwraps to the context's error (context.Canceled
// or context.DeadlineExceeded).
type CanceledError struct {
	// Alg is the routing algorithm's name.
	Alg string
	// Steps is the number of steps executed before cancellation.
	Steps int
	// Cause is the context's error.
	Cause error
	// Diag is the cancellation-time state snapshot.
	Diag Diagnostics
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("sim: %s canceled after %d steps: %v: %s", e.Alg, e.Steps, e.Cause, e.Diag)
}

// Unwrap exposes the context error for errors.Is.
func (e *CanceledError) Unwrap() error { return e.Cause }

// UnreachableError reports that a packet's destination became unreachable
// for a minimal router: every profitable outlink at the packet's current
// node has permanently failed, so no sequence of shortest-path moves can
// deliver it. Only raised when faults are enabled and the configuration
// requires minimality.
type UnreachableError struct {
	// PacketID is the stranded packet.
	PacketID int32
	// At is the node holding the packet; Dst its destination.
	At, Dst grid.NodeID
	// AtCoord and DstCoord are the corresponding coordinates.
	AtCoord, DstCoord grid.Coord
	// Step is the step at which the engine detected the condition.
	Step int
}

// Error implements error.
func (e *UnreachableError) Error() string {
	return fmt.Sprintf("sim: packet %d at %v cannot reach %v minimally: every profitable outlink has permanently failed (step %d)",
		e.PacketID, e.AtCoord, e.DstCoord, e.Step)
}
