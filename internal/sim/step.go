package sim

import (
	"context"
	"fmt"
	"math"
	"slices"

	"meshroute/internal/grid"
	"meshroute/internal/obs"
)

// Run executes steps until every packet is delivered or maxSteps is
// exhausted, returning the number of steps executed in this call. It is an
// error to exceed maxSteps with undelivered packets unless allowPartial.
func (net *Network) Run(alg Algorithm, maxSteps int) (int, error) {
	return net.run(nil, alg, maxSteps, false)
}

// RunPartial executes up to maxSteps steps, stopping early if all packets
// are delivered; unlike Run it does not treat hitting the step limit as an
// error. It returns the number of steps executed in this call.
func (net *Network) RunPartial(alg Algorithm, maxSteps int) (int, error) {
	return net.run(nil, alg, maxSteps, true)
}

// RunContext is Run with cooperative cancellation: the context is checked
// between steps, and a canceled run returns a *CanceledError carrying
// partial-progress diagnostics. A nil or background context never cancels.
func (net *Network) RunContext(ctx context.Context, alg Algorithm, maxSteps int) (int, error) {
	return net.run(ctx, alg, maxSteps, false)
}

// RunPartialContext is RunPartial with cooperative cancellation checked
// between steps (see RunContext).
func (net *Network) RunPartialContext(ctx context.Context, alg Algorithm, maxSteps int) (int, error) {
	return net.run(ctx, alg, maxSteps, true)
}

func (net *Network) run(ctx context.Context, alg Algorithm, maxSteps int, allowPartial bool) (int, error) {
	// Stop the persistent worker pool (if one was spawned) when this run
	// returns, so no goroutines outlive a Run call; the pool respawns
	// lazily if the network is stepped or run again.
	defer net.stopPool()
	start := net.step
	if net.lastProgress < start {
		net.lastProgress = start
	}
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	for !net.Done() {
		if net.step-start >= maxSteps {
			if allowPartial {
				return net.step - start, nil
			}
			return net.step - start, &StepLimitError{
				Alg: alg.Name(), MaxSteps: maxSteps,
				Delivered: net.delivered, Total: net.total,
				Diag: net.CollectDiagnostics(),
			}
		}
		if cancel != nil {
			select {
			case <-cancel:
				return net.step - start, &CanceledError{
					Alg: alg.Name(), Steps: net.step - start,
					Cause: ctx.Err(), Diag: net.CollectDiagnostics(),
				}
			default:
			}
		}
		if err := net.StepOnce(alg); err != nil {
			return net.step - start, err
		}
		// Livelock watchdog: abort after a full window without a single
		// delivery, with diagnostics, instead of burning the budget.
		if w := net.cfg.Watchdog; w > 0 && net.step-net.lastProgress >= w && !net.Done() {
			diag := net.CollectDiagnostics()
			net.emitEvent(obs.Event{Step: net.step, Kind: "watchdog", Node: -1, Detail: diag.String()})
			return net.step - start, &LivelockError{Alg: alg.Name(), Window: w, Diag: diag}
		}
	}
	return net.step - start, nil
}

// arrival is one accepted transmission being applied in part (d).
type arrival struct {
	p   PacketID
	to  grid.NodeID
	dir grid.Dir
}

// StepOnce executes one synchronous step: outqueue scheduling, adversary
// exchanges, inqueue acceptance, transmission, and state update. At steady
// state (no injections, nil sink) it performs zero heap allocations — at
// any worker count: every per-step buffer lives in stepScratch or a
// worker's workerScratch and is reused across steps, the persistent
// worker pool (pipeline.go) is released through reusable channel
// barriers, and the index-based queue slots never grow once a node's
// region has reached its peak occupancy.
func (net *Network) StepOnce(alg Algorithm) error {
	if !net.inited {
		net.compactOcc()
		for _, id := range net.occ {
			alg.InitNode(net, &net.nodes[id])
		}
		net.inited = true
	}
	net.step++
	t := net.step
	deliveredBefore := net.delivered

	if net.hasFaults {
		net.applyFaults(t)
	}
	net.injectPending(t)
	net.compactOcc()

	s := &net.scratch
	st := &net.P
	s.bumpStamp()

	// Part (a): outqueue policies schedule packets. Stalled nodes are
	// frozen: they schedule nothing (and below, accept nothing). With
	// Workers > 1 and a ParallelCloner algorithm, the persistent pool
	// schedules contiguous shards of the occupied list concurrently and
	// the per-worker move buffers are merged in shard order, which
	// reproduces the serial move order exactly.
	var (
		moves []Move
		drops int
		err   error
	)
	clones := net.workerClones(alg)
	if clones == nil {
		moves, drops, err = net.scheduleNodes(alg, net.occ, s.moves[:0])
	} else {
		resident := net.total - net.delivered - net.backlogTotal - net.pendingTotal
		balanceBounds(s.occBounds, len(net.occ), resident, len(clones), func(i int) int {
			return int(net.nodes[net.occ[i]].qLen)
		})
		net.pool.run(net, phaseSchedule)
		moves = s.moves[:0]
		for i := range net.ws {
			ws := &net.ws[i]
			if err == nil {
				err = ws.err
			}
			moves = append(moves, ws.moves...)
			drops += ws.drops
		}
	}
	net.Metrics.FaultDrops += drops
	s.moves = moves
	if err != nil {
		if ue, ok := err.(*UnreachableError); ok {
			net.emitEvent(obs.Event{Step: t, Kind: "unreachable", Node: int(ue.At), Detail: ue.Error()})
		}
		return err
	}

	// Part (b): adversary exchanges destination addresses.
	if net.exchange != nil {
		net.exchange(net, t, moves)
		if net.cfg.RequireMinimal {
			// Exchanges must preserve minimality of the already
			// scheduled moves (they do in the paper's construction;
			// verify here).
			for _, m := range moves {
				if !net.Topo.Profitable(m.From, st.Dst[m.P]).Has(m.Travel) {
					return fmt.Errorf("sim: exchange made scheduled move of packet %d non-minimal", m.P.ID())
				}
			}
		}
	}

	// Part (c): inqueue policies accept or refuse. Packets scheduled into
	// their destination are delivered on arrival and occupy no queue
	// space, so they bypass the inqueue policy.
	//
	// Offers are grouped by target with a dense two-pass index instead of a
	// map: pass 1 counts offers per target (and collects targets in
	// first-seen order), a prefix sum assigns each target a contiguous
	// region of the flat offers slice, and pass 2 fills the regions in move
	// order — so both the target order and the per-target offer order match
	// the map-based grouping this replaces.
	arrivals := s.arrivals[:0]
	targets := s.targets[:0]
	nOffers := 0
	for i := range moves {
		m := &moves[i]
		// A stalled node accepts nothing — not even deliveries. The
		// scheduled packet stays at its sender and retries later.
		if net.hasFaults && net.stalledCnt[m.To] > 0 {
			net.Metrics.FaultDrops++
			continue
		}
		if m.To == st.Dst[m.P] {
			arrivals = append(arrivals, arrival{p: m.P, to: m.To, dir: m.Travel})
			continue
		}
		if s.offMark[m.To] != s.stamp {
			s.offMark[m.To] = s.stamp
			s.offCount[m.To] = 0
			targets = append(targets, m.To)
		}
		s.offCount[m.To]++
		nOffers++
	}
	s.targets = targets
	var pos int32
	for _, to := range targets {
		s.offStart[to] = pos
		pos += s.offCount[to]
	}
	if cap(s.offers) < nOffers {
		s.offers = make([]Offer, nOffers)
	}
	offers := s.offers[:nOffers]
	s.offers = offers
	for i := range moves {
		m := &moves[i]
		if net.hasFaults && net.stalledCnt[m.To] > 0 {
			continue
		}
		if m.To == st.Dst[m.P] {
			continue
		}
		offers[s.offStart[m.To]] = Offer{P: m.P, From: m.From, Travel: m.Travel}
		s.offStart[m.To]++
	}
	// Accept dispatch: each target's inqueue policy sees its contiguous
	// offer region. With workers, the target list is sharded across the
	// pool (inqueue policies are target-node-local per the ParallelCloner
	// contract) and the per-worker arrival buffers are merged in shard
	// order — the serial arrival order, target by target.
	s.nDeliv = len(arrivals)
	if clones == nil {
		arrivals = net.acceptTargets(alg, targets, &s.accept, arrivals)
	} else {
		s.arrivals = arrivals
		balanceBounds(s.tgtBounds, len(targets), nOffers, len(clones), func(i int) int {
			return int(s.offCount[targets[i]])
		})
		net.pool.run(net, phaseAccept)
		for i := range net.ws {
			arrivals = append(arrivals, net.ws[i].arrivals...)
		}
	}
	s.arrivals = arrivals

	// Part (d): simultaneous transmission, as two owner-computes halves.
	// First every mover is located at its sender in O(1) via its
	// engine-maintained slot index and marked departing (markDepartures,
	// serial — it also deduplicates the sender list). Then each distinct
	// sender's queue region is compacted once, order-preserving
	// (sender-owner; P3 when parallel), and finally the arrivals are
	// applied — deliveries and attaches (target-owner; P4 when parallel,
	// with queue regions pre-grown in between so attach never touches the
	// shared arena). Removal strictly precedes insertion, so departures
	// free space for arrivals within the step.
	if err := net.markDepartures(arrivals); err != nil {
		return err
	}
	if clones == nil {
		net.compactSenders(s.senders)
		d, sd, h := net.applyArrivals(arrivals, &net.occ)
		net.delivered += d
		net.Metrics.TotalHops += h
		net.Metrics.noteDeliveredBatch(t, d, sd)
	} else {
		net.pool.run(net, phaseCompact)
		net.growForArrivals()
		net.pool.run(net, phaseApply)
		var d, sd, h int
		for i := range net.ws {
			ws := &net.ws[i]
			d += ws.delivered
			sd += ws.sumDelay
			h += ws.hops
			net.occ = append(net.occ, ws.newOcc...)
		}
		net.delivered += d
		net.Metrics.TotalHops += h
		net.Metrics.noteDeliveredBatch(t, d, sd)
	}

	// Runtime invariant checker: queue capacity, count consistency and
	// packet conservation (CheckInvariants). Minimality was already
	// enforced at scheduling time.
	if net.cfg.CheckInvariants {
		if err := net.checkStepInvariants(alg); err != nil {
			return err
		}
	}

	// Part (e): state updates on every node that held packets this step,
	// fused with the end-of-step queue-occupancy maxima scan (the update
	// does not change queue contents, so fusing is invisible). Stalled
	// nodes stay frozen: their state must not advance. Updates are
	// node-local for ParallelCloner algorithms, so sharding them changes
	// no observable state relative to the serial loop; the maxima merge
	// under max, which is order-insensitive.
	if clones == nil {
		mq, ml := net.updateNodes(alg, net.occ)
		net.Metrics.noteOccupancy(mq, ml)
	} else {
		net.pool.run(net, phaseUpdate)
		for i := range net.ws {
			net.Metrics.noteOccupancy(net.ws[i].maxQueue, net.ws[i].maxNodeLoad)
		}
	}

	if net.delivered > deliveredBefore {
		net.lastProgress = t
	}

	if net.sink != nil {
		net.emitStepSample(t, arrivals, net.delivered-deliveredBefore)
	}

	if net.observer != nil {
		rec := StepRecord{Step: t}
		recMoves := s.recMoves[:0]
		recDelivered := s.recDelivered[:0]
		for _, a := range arrivals {
			src, _ := net.Topo.Neighbor(a.to, a.dir.Opposite())
			recMoves = append(recMoves, Move{P: a.p, From: src, To: a.to, Travel: a.dir})
			if st.DeliverStep[a.p] == int32(t) {
				recDelivered = append(recDelivered, a.p.ID())
			}
		}
		rec.Moves, rec.Delivered = recMoves, recDelivered
		s.recMoves, s.recDelivered = recMoves, recDelivered
		net.observer(rec)
	}
	return nil
}

// scheduleNodes runs part (a) for the given occupied nodes, appending the
// scheduled (and fault-surviving) moves to dst. It returns the moves, the
// number of fault drops, and the first scheduling error. It mutates only the
// given nodes (through alg.Schedule) and dst, treating all other network
// state as read-only, so disjoint shards may run concurrently.
func (net *Network) scheduleNodes(alg Algorithm, ids []grid.NodeID, dst []Move) ([]Move, int, error) {
	t := net.step
	st := &net.P
	drops := 0
	for _, id := range ids {
		node := &net.nodes[id]
		if node.qLen == 0 {
			continue
		}
		if net.hasFaults {
			if net.stalledCnt[id] > 0 {
				continue
			}
			// Unreachability: a minimal router can never deliver a packet
			// whose every profitable outlink has permanently failed.
			if net.cfg.RequireMinimal {
				if pd := net.linkPerm[id]; pd != 0 {
					for _, p := range net.PacketsOf(node) {
						if prof := net.Topo.Profitable(id, st.Dst[p]); prof != 0 && prof&^pd == 0 {
							return dst, drops, &UnreachableError{
								PacketID: p.ID(), At: id, Dst: st.Dst[p],
								AtCoord: net.Topo.CoordOf(id), DstCoord: net.Topo.CoordOf(st.Dst[p]),
								Step: t,
							}
						}
					}
				}
			}
		}
		sched := alg.Schedule(net, node)
		q := net.PacketsOf(node)
		var used [grid.NumDirs]int
		for i := range used {
			used[i] = -1
		}
		for d := grid.Dir(0); d < grid.NumDirs; d++ {
			idx := sched[d]
			if idx < 0 {
				continue
			}
			if idx >= len(q) {
				return dst, drops, fmt.Errorf("sim: %s scheduled out-of-range packet index %d at node %v",
					alg.Name(), idx, net.Topo.CoordOf(id))
			}
			for dd := grid.Dir(0); dd < d; dd++ {
				if used[dd] == idx {
					return dst, drops, fmt.Errorf("sim: %s scheduled packet %d on two outlinks at node %v",
						alg.Name(), q[idx].ID(), net.Topo.CoordOf(id))
				}
			}
			used[d] = idx
			p := q[idx]
			nb, ok := net.Topo.Neighbor(id, d)
			if !ok {
				return dst, drops, fmt.Errorf("sim: %s scheduled packet %d on missing outlink %v of node %v",
					alg.Name(), p.ID(), d, net.Topo.CoordOf(id))
			}
			if net.cfg.RequireMinimal && !net.Topo.Profitable(id, st.Dst[p]).Has(d) {
				return dst, drops, fmt.Errorf("sim: %s scheduled non-minimal move of packet %d: %v -> %v toward %v",
					alg.Name(), p.ID(), net.Topo.CoordOf(id), net.Topo.CoordOf(nb), net.Topo.CoordOf(st.Dst[p]))
			}
			if !net.cfg.RequireMinimal && net.cfg.MaxStray > 0 && !net.withinStray(p, nb) {
				return dst, drops, fmt.Errorf("sim: %s moved packet %d more than %d beyond its source-destination rectangle",
					alg.Name(), p.ID(), net.cfg.MaxStray)
			}
			// A legal move onto a failed link is silently dropped: the
			// packet stays put and may retry (or detour) next step.
			if net.hasFaults && !net.LinkUp(id, d) {
				drops++
				continue
			}
			dst = append(dst, Move{P: p, From: id, To: nb, Travel: d})
		}
	}
	return dst, drops, nil
}

// acceptTargets runs the part (c) inqueue dispatch for the given targets,
// appending the accepted offers to dst as arrivals. Each target's offers
// occupy a contiguous region of the flat offer index built by StepOnce
// (offStart was advanced past the region by the fill pass, so the region
// starts at offStart-offCount). It mutates only the given target nodes
// (through alg.Accept) and dst, so disjoint target shards may run
// concurrently. acceptBuf is the caller-owned reusable decision buffer.
func (net *Network) acceptTargets(alg Algorithm, targets []grid.NodeID, acceptBuf *[]bool, dst []arrival) []arrival {
	s := &net.scratch
	for _, to := range targets {
		cnt := int(s.offCount[to])
		start := int(s.offStart[to]) - cnt // pass 2 advanced offStart past the region
		offs := s.offers[start : start+cnt]
		if cap(*acceptBuf) < cnt {
			*acceptBuf = make([]bool, cnt)
		}
		acc := (*acceptBuf)[:cnt]
		for i := range acc {
			acc[i] = false
		}
		alg.Accept(net, &net.nodes[to], offs, acc)
		for i, ok := range acc {
			if ok {
				dst = append(dst, arrival{p: offs[i].P, to: to, dir: offs[i].Travel})
			}
		}
	}
	return dst
}

// markDepartures validates every arrival against its sender's queue, marks
// the moving packets departing, and rebuilds the deduplicated distinct-
// sender list in s.senders. Serial: it writes the shared departing column
// and the sendMark epoch array.
func (net *Network) markDepartures(arrivals []arrival) error {
	s := &net.scratch
	st := &net.P
	senders := s.senders[:0]
	for _, a := range arrivals {
		p := a.p
		src, ok := net.Topo.Neighbor(a.to, a.dir.Opposite())
		if !ok || st.At[p] != src {
			return fmt.Errorf("sim: internal error, packet %d not found at sender", p.ID())
		}
		node := &net.nodes[src]
		if uint32(st.slot[p]) >= node.qLen || net.slots[node.qStart+uint32(st.slot[p])] != p {
			return fmt.Errorf("sim: internal error, packet %d not found at sender", p.ID())
		}
		st.departing[p] = true
		if s.sendMark[src] != s.stamp {
			s.sendMark[src] = s.stamp
			senders = append(senders, src)
		}
	}
	s.senders = senders
	return nil
}

// compactSenders removes departing packets from each listed sender's queue
// region, preserving FIFO order of the packets that stay, in one O(qLen)
// pass per sender. The per-tag count decrement reads the departing packet's
// old QTag, so compaction must complete before applyArrivals re-tags any
// packet (the P3 barrier when parallel). Senders are distinct nodes, so
// disjoint shards of the sender list touch disjoint queue regions.
func (net *Network) compactSenders(senders []grid.NodeID) {
	st := &net.P
	for _, id := range senders {
		node := &net.nodes[id]
		q := net.slots[node.qStart : node.qStart+node.qLen]
		w := uint32(0)
		for _, p := range q {
			if st.departing[p] {
				node.counts[st.QTag[p]]--
				continue
			}
			st.slot[p] = int32(w)
			q[w] = p
			w++
		}
		node.qLen = w
	}
}

// applyArrivals applies the given arrivals — delivering packets that
// reached their destination and attaching the rest to their new node's
// queue — returning the delivered count, the summed delivery delay
// (deliverStep-injectStep, for the metrics batch), and the hop count.
// Nodes that become occupied are appended to occOut (the shared occ list
// serially, a worker-private buffer in the parallel apply phase). Arrivals
// are grouped per target, so disjoint shards of the arrival list touch
// disjoint target nodes; queue regions must already have capacity for
// every arrival (pre-grown by growForArrivals when parallel).
func (net *Network) applyArrivals(arrivals []arrival, occOut *[]grid.NodeID) (delivered, sumDelay, hops int) {
	st := &net.P
	t := net.step
	for _, a := range arrivals {
		p := a.p
		st.departing[p] = false
		st.Hops[p]++
		hops++
		st.Arrived[p] = a.dir
		st.ArrivedStep[p] = int32(t)
		if a.to == st.Dst[p] {
			st.At[p] = a.to
			st.DeliverStep[p] = int32(t)
			delivered++
			sumDelay += t - int(st.InjectStep[p])
			continue
		}
		tag := uint8(0)
		if net.Queues == PerInlinkQueues {
			tag = uint8(a.dir.Opposite())
		}
		net.attachTo(&net.nodes[a.to], p, tag, occOut)
	}
	return delivered, sumDelay, hops
}

// updateNodes runs part (e) for the given occupied nodes — skipping
// stalled nodes, whose state must stay frozen — fused with the
// queue-occupancy maxima scan, returning the largest single queue
// (excluding the unbounded origin buffer) and the largest total node load
// seen in the shard. Update still runs on nodes that emptied during the
// step (they held a packet at its start, which is the Update contract);
// the maxima scan skips them. Updates are node-local for ParallelCloner
// algorithms and the scan is read-only, so disjoint shards may run
// concurrently; maxima merge under max, which is order-blind.
func (net *Network) updateNodes(alg Algorithm, ids []grid.NodeID) (maxQueue, maxNodeLoad int) {
	for _, id := range ids {
		node := &net.nodes[id]
		if node.qLen > 0 {
			if l := int(node.qLen); l > maxNodeLoad {
				maxNodeLoad = l
			}
			for tag := uint8(0); tag < numTags; tag++ {
				if tag == OriginTag && net.Queues == PerInlinkQueues {
					continue
				}
				if l := int(node.counts[tag]); l > maxQueue {
					maxQueue = l
				}
			}
		}
		if net.hasFaults && net.stalledCnt[id] > 0 {
			continue
		}
		alg.Update(net, node)
	}
	return maxQueue, maxNodeLoad
}

// workerClones returns the per-worker algorithm clones for the configured
// worker count, or nil when the step must run serially (Workers <= 1, or the
// algorithm does not implement ParallelCloner). Clones and the per-worker
// scratch are cached across steps, keyed by the algorithm's name, and the
// persistent worker pool is (re)spawned here if a previous Run stopped it.
func (net *Network) workerClones(alg Algorithm) []Algorithm {
	w := net.cfg.Workers
	if w <= 1 {
		return nil
	}
	pc, ok := alg.(ParallelCloner)
	if !ok {
		return nil
	}
	if net.parName != alg.Name() || len(net.parClones) != w {
		net.parClones = net.parClones[:0]
		for i := 0; i < w; i++ {
			net.parClones = append(net.parClones, pc.CloneForWorker())
		}
		net.parName = alg.Name()
		net.ws = make([]workerScratch, w)
		for i := range net.ws {
			// A target's offers number at most one per inlink, so the
			// per-worker Accept decision buffer never needs more.
			net.ws[i].accept = make([]bool, grid.NumDirs)
		}
		net.scratch.occBounds = make([]int, w+1)
		net.scratch.tgtBounds = make([]int, w+1)
	}
	net.ensurePool()
	return net.parClones
}

// bumpStamp advances the epoch stamp that validates the offMark/sendMark
// node arrays, clearing them only on the (astronomically rare) wraparound.
func (s *stepScratch) bumpStamp() {
	s.stamp++
	if s.stamp == math.MaxInt32 {
		for i := range s.offMark {
			s.offMark[i] = 0
			s.sendMark[i] = 0
		}
		s.stamp = 1
	}
}

// withinStray reports whether node nb lies within the packet's
// source-destination rectangle inflated by MaxStray.
func (net *Network) withinStray(p PacketID, nb grid.NodeID) bool {
	st := &net.P
	s, d, c := net.Topo.CoordOf(st.Src[p]), net.Topo.CoordOf(st.Dst[p]), net.Topo.CoordOf(nb)
	loX, hiX := s.X, d.X
	if loX > hiX {
		loX, hiX = hiX, loX
	}
	loY, hiY := s.Y, d.Y
	if loY > hiY {
		loY, hiY = hiY, loY
	}
	m := net.cfg.MaxStray
	return c.X >= loX-m && c.X <= hiX+m && c.Y >= loY-m && c.Y <= hiY+m
}

// injectPending moves due injections into per-node backlogs and drains
// backlogs into queues where space permits (FIFO, destination-independent).
// Only nodes on the active-backlog list are visited, so a step on a large
// mesh with little pending work costs O(active nodes), not O(N). The list
// is sorted before draining so nodes drain in ascending id order, exactly
// the order the previous full-scan implementation used.
func (net *Network) injectPending(t int) {
	net.stepOffered, net.stepAdmitted, net.stepRefused, net.stepDropped = 0, 0, 0, 0
	st := &net.P
	if ps, ok := net.pendingInj[t]; ok {
		for _, p := range ps {
			src := st.Src[p]
			net.backlog[src] = append(net.backlog[src], p)
			if !net.inBacklog[src] {
				net.inBacklog[src] = true
				net.backlogNodes = append(net.backlogNodes, src)
			}
		}
		net.pendingTotal -= len(ps)
		net.backlogTotal += len(ps)
		net.stepOffered += len(ps)
		delete(net.pendingInj, t)
	}
	if net.source != nil && !net.srcExhausted {
		net.pullSource(t)
	}
	if len(net.backlogNodes) == 0 {
		net.finishAdmission()
		return
	}
	slices.Sort(net.backlogNodes)
	w := 0
	for _, id := range net.backlogNodes {
		bl := net.backlog[id]
		h := int(net.backlogHead[id])
		if h >= len(bl) {
			net.backlog[id] = bl[:0]
			net.backlogHead[id] = 0
			net.inBacklog[id] = false
			continue
		}
		// A stalled node admits nothing; its backlog waits with it (and
		// stays on the active list).
		if net.hasFaults && net.stalledCnt[id] > 0 {
			net.backlogNodes[w] = id
			w++
			continue
		}
		node := &net.nodes[id]
		for h < len(bl) {
			p := bl[h]
			if st.Src[p] == st.Dst[p] {
				st.At[p] = st.Dst[p]
				st.InjectStep[p] = int32(t)
				st.DeliverStep[p] = int32(t)
				net.delivered++
				net.Metrics.noteDelivered(t, t)
				h++
				net.backlogTotal--
				net.stepAdmitted++
				continue
			}
			var tag uint8
			if net.Queues == PerInlinkQueues {
				tag = OriginTag
			} else {
				tag = 0
				if node.QueueLen(0) >= net.K {
					break
				}
			}
			st.InjectStep[p] = int32(t)
			net.attach(node, p, tag)
			h++
			net.backlogTotal--
			net.stepAdmitted++
		}
		if h >= len(bl) {
			// Fully drained: reset to the slice's base so the retained
			// capacity is reused by the next refill without allocating.
			net.backlog[id] = bl[:0]
			net.backlogHead[id] = 0
			net.inBacklog[id] = false
			continue
		}
		// Partially drained: once the dead prefix dominates, compact in
		// place so a long-lived backlog's memory stays proportional to its
		// live residue rather than its cumulative history.
		if h >= 64 && 2*h >= len(bl) {
			n := copy(bl, bl[h:])
			net.backlog[id] = bl[:n]
			h = 0
		}
		net.backlogHead[id] = int32(h)
		net.backlogNodes[w] = id
		w++
	}
	net.backlogNodes = net.backlogNodes[:w]
	net.finishAdmission()
}

// finishAdmission closes the injection phase's books: every packet still in
// a backlog was refused admission this step (the retry policy's per-step
// refusal), dropped offers were refused terminally, and the step counters
// fold into the run totals. The step counters stay live for emitStepSample.
func (net *Network) finishAdmission() {
	net.stepRefused = net.stepDropped + net.backlogTotal
	m := &net.Metrics
	m.Offered += net.stepOffered
	m.Admitted += net.stepAdmitted
	m.Refused += net.stepRefused
	m.Dropped += net.stepDropped
}

// compactOcc drops empty nodes from the occupied list.
func (net *Network) compactOcc() {
	w := 0
	for _, id := range net.occ {
		if net.nodes[id].qLen > 0 {
			net.occ[w] = id
			w++
		} else {
			net.isOcc[id] = false
		}
	}
	net.occ = net.occ[:w]
}

// Occupied returns the identifiers of nodes currently holding packets, in
// deterministic (not sorted) order. The returned slice is owned by the
// engine; do not modify it.
func (net *Network) Occupied() []grid.NodeID {
	net.compactOcc()
	return net.occ
}
