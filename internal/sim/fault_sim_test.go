package sim

import (
	"errors"
	"reflect"
	"testing"

	"meshroute/internal/fault"
	"meshroute/internal/grid"
	"meshroute/internal/obs"
)

// faultNet builds a central-queue test network with a fault schedule.
func faultNet(t *testing.T, n, k int, minimal bool, sched *fault.Schedule, watchdog int) *Network {
	t.Helper()
	net, err := New(Config{
		Topo:            grid.NewSquareMesh(n),
		K:               k,
		Queues:          CentralQueue,
		RequireMinimal:  minimal,
		CheckInvariants: true,
		Faults:          sched,
		Watchdog:        watchdog,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestTransientLinkFaultDelaysDelivery(t *testing.T) {
	// One packet straight east; its second hop's link fails for steps 2-4.
	topo := grid.NewSquareMesh(8)
	mid := topo.ID(grid.XY(1, 3))
	sched := (&fault.Schedule{N: topo.N(), Events: []fault.Event{
		{Step: 2, Kind: fault.LinkDown, Node: mid, Dir: grid.East},
		{Step: 5, Kind: fault.LinkUp, Node: mid, Dir: grid.East},
	}}).Finalize()
	net := faultNet(t, 8, 2, true, sched, 0)
	p := net.NewPacket(topo.ID(grid.XY(0, 3)), topo.ID(grid.XY(5, 3)))
	net.MustPlace(p)
	steps, err := net.Run(greedyXY{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// 5 hops + 3 steps wedged at the down link.
	if steps != 8 {
		t.Fatalf("steps = %d, want 8 (5 hops + 3 down steps)", steps)
	}
	if net.Metrics.FaultDrops != 3 {
		t.Fatalf("FaultDrops = %d, want 3", net.Metrics.FaultDrops)
	}
	if !net.P.Delivered(p) {
		t.Fatal("packet must recover and deliver")
	}
}

func TestNodeStallFreezesNode(t *testing.T) {
	// Stall the node one hop ahead: the packet cannot enter it (nor be
	// delivered into it) until the wake event.
	topo := grid.NewSquareMesh(8)
	ahead := topo.ID(grid.XY(1, 3))
	sched := (&fault.Schedule{N: topo.N(), Events: []fault.Event{
		{Step: 1, Kind: fault.NodeStall, Node: ahead, Dir: grid.NoDir},
		{Step: 4, Kind: fault.NodeWake, Node: ahead, Dir: grid.NoDir},
	}}).Finalize()
	net := faultNet(t, 8, 2, true, sched, 0)
	p := net.NewPacket(topo.ID(grid.XY(0, 3)), topo.ID(grid.XY(3, 3)))
	net.MustPlace(p)
	steps, err := net.Run(greedyXY{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 6 {
		t.Fatalf("steps = %d, want 6 (3 hops + 3 stalled steps)", steps)
	}
	if net.Metrics.FaultDrops != 3 {
		t.Fatalf("FaultDrops = %d, want 3", net.Metrics.FaultDrops)
	}
}

func TestPermanentFaultUnreachable(t *testing.T) {
	// The packet's only profitable outlink fails permanently: the engine
	// must raise the typed unreachability error under RequireMinimal.
	topo := grid.NewSquareMesh(8)
	at := topo.ID(grid.XY(2, 3))
	sched := (&fault.Schedule{N: topo.N(), Events: []fault.Event{
		{Step: 3, Kind: fault.LinkDown, Node: at, Dir: grid.East, Permanent: true},
		{Step: 3, Kind: fault.LinkDown, Node: topo.ID(grid.XY(3, 3)), Dir: grid.West, Permanent: true},
	}}).Finalize()
	net := faultNet(t, 8, 2, true, sched, 0)
	p := net.NewPacket(topo.ID(grid.XY(0, 3)), topo.ID(grid.XY(6, 3)))
	net.MustPlace(p)
	_, err := net.Run(greedyXY{}, 100)
	var ue *UnreachableError
	if !errors.As(err, &ue) {
		t.Fatalf("want UnreachableError, got %v", err)
	}
	if ue.PacketID != p.ID() || ue.At != at {
		t.Fatalf("error names packet %d at %v, want packet %d at %v", ue.PacketID, ue.AtCoord, p.ID(), topo.CoordOf(at))
	}
}

func TestWatchdogAbortsWedgedRun(t *testing.T) {
	// Without RequireMinimal the unreachability check is off; a permanent
	// failure wedges the dimension-order test router forever, and the
	// watchdog must abort with diagnostics instead of burning the budget.
	topo := grid.NewSquareMesh(8)
	at := topo.ID(grid.XY(2, 3))
	sched := (&fault.Schedule{N: topo.N(), Events: []fault.Event{
		{Step: 2, Kind: fault.LinkDown, Node: at, Dir: grid.East, Permanent: true},
		{Step: 2, Kind: fault.LinkDown, Node: topo.ID(grid.XY(3, 3)), Dir: grid.West, Permanent: true},
	}}).Finalize()
	net := faultNet(t, 8, 2, false, sched, 10)
	p := net.NewPacket(topo.ID(grid.XY(0, 3)), topo.ID(grid.XY(6, 3)))
	net.MustPlace(p)
	steps, err := net.Run(greedyXY{}, 10000)
	var le *LivelockError
	if !errors.As(err, &le) {
		t.Fatalf("want LivelockError, got %v after %d steps", err, steps)
	}
	if steps >= 100 {
		t.Fatalf("watchdog fired only after %d steps (window 10)", steps)
	}
	if le.Diag.Undelivered != 1 || le.Diag.StalledSteps < 10 {
		t.Fatalf("diagnostics %+v", le.Diag)
	}
	if len(le.Diag.TopQueues) == 0 || le.Diag.TopQueues[0].Node != at {
		t.Fatalf("hottest queue %+v, want node %v", le.Diag.TopQueues, topo.CoordOf(at))
	}
	if _, ok := err.(*LivelockError); !ok {
		t.Fatal("error must be the typed watchdog error")
	}
	_ = p
}

func TestStepLimitErrorCarriesDiagnostics(t *testing.T) {
	net := newTestNet(t, 8, 2)
	topo := net.Topo
	net.MustPlace(net.NewPacket(topo.ID(grid.XY(0, 3)), topo.ID(grid.XY(6, 3))))
	_, err := net.Run(greedyXY{}, 2)
	var sle *StepLimitError
	if !errors.As(err, &sle) {
		t.Fatalf("want StepLimitError, got %v", err)
	}
	if sle.Diag.Undelivered != 1 || len(sle.Diag.TopQueues) != 1 {
		t.Fatalf("diagnostics %+v", sle.Diag)
	}
	if sle.Diag.Step != 2 {
		t.Fatalf("Diag.Step = %d, want 2", sle.Diag.Step)
	}
}

// runWithFaultSink runs a fixed workload under a generated fault schedule
// and returns the recorded fault events.
func runWithFaultSink(t *testing.T, seed int64) []obs.Event {
	t.Helper()
	topo := grid.NewSquareMesh(8)
	sched, err := fault.Generate(topo, fault.Config{
		Seed: seed, Horizon: 60, LinkFailures: 6, MeanDownSteps: 8, NodeStalls: 2, MeanStallSteps: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := faultNet(t, 8, 3, true, sched, 0)
	for x := 0; x < 8; x++ {
		net.MustPlace(net.NewPacket(topo.ID(grid.XY(x, 0)), topo.ID(grid.XY(7-x, 7))))
	}
	mem := &obs.Memory{}
	net.SetMetricsSink(mem)
	if _, err := net.RunPartial(greedyXY{}, 500); err != nil {
		t.Fatal(err)
	}
	return mem.Events
}

func TestFaultEventStreamDeterministic(t *testing.T) {
	a := runWithFaultSink(t, 42)
	b := runWithFaultSink(t, 42)
	if len(a) == 0 {
		t.Fatal("no fault events recorded")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault event streams diverged across identical runs:\n%v\nvs\n%v", a, b)
	}
	c := runWithFaultSink(t, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different fault seeds produced identical event streams")
	}
}

func TestInvariantCheckerAccountsForInjections(t *testing.T) {
	// QueueInjection plus faults exercises the pending/backlog conservation
	// counters; the checker must stay silent for a conforming router.
	topo := grid.NewSquareMesh(6)
	sched := (&fault.Schedule{N: topo.N(), Events: []fault.Event{
		{Step: 2, Kind: fault.NodeStall, Node: topo.ID(grid.XY(2, 2)), Dir: grid.NoDir},
		{Step: 6, Kind: fault.NodeWake, Node: topo.ID(grid.XY(2, 2)), Dir: grid.NoDir},
	}}).Finalize()
	net := faultNet(t, 6, 1, true, sched, 0)
	for i := 0; i < 6; i++ {
		net.QueueInjection(net.NewPacket(topo.ID(grid.XY(2, 2)), topo.ID(grid.XY(5, 5))), i+1)
	}
	if _, err := net.Run(greedyXY{}, 500); err != nil {
		t.Fatal(err)
	}
	if !net.Done() {
		t.Fatal("all injected packets must deliver after the wake")
	}
}
