package sim

import (
	"errors"
	"fmt"
	"slices"

	"meshroute/internal/grid"
)

// Injection is one streamed packet request: a source node asking to inject
// a packet toward a destination at some step. It carries no PacketID — the
// engine materializes a packet only when the injection is accepted into the
// run (immediately for the retry policy, at admission time for the drop
// policy), so refused offers under AdmitDrop never enter the packet store.
type Injection struct {
	// Src is the node requesting the injection.
	Src grid.NodeID
	// Dst is the requested destination.
	Dst grid.NodeID
}

// Source is a streaming workload: the generalization of "place everything
// before step 0" to continuous, online injection. The engine drives an
// attached Source with a strict calling contract that makes seeded sources
// exactly reproducible:
//
//   - Next(t, buf) is called exactly once per step t, for t = 0 (at
//     AttachSource time), then t = 1, 2, … at the start of each engine
//     step, in strictly increasing order;
//   - Next appends this step's injections to buf and returns it — the
//     engine passes a reused buffer, so a steady-state pull allocates
//     nothing once the buffer has reached its working size;
//   - Exhausted(t) is consulted after Next(t) and must report whether the
//     source will produce no injections at any step > t; once it returns
//     true the engine never calls the source again;
//   - implementations that consume a seeded RNG must consume it only
//     inside Next, so the single-call-per-step contract pins the random
//     stream and identical seeds yield identical runs at any worker count.
//
// Step-0 injections are placements: they go through the same admission as
// Place, so a Source that emits everything at step 0 is the degenerate
// one-shot case (see internal/workload's Replay).
type Source interface {
	// Next appends the injections arriving at the given step to buf and
	// returns the (possibly reallocated) buffer.
	Next(step int, buf []Injection) []Injection
	// Exhausted reports, after Next(step) has been called, that no
	// injections will be produced for any later step.
	Exhausted(step int) bool
}

// AdmissionPolicy selects what happens to an injection whose source node's
// k-bounded queue has no free slot at arrival time.
type AdmissionPolicy uint8

const (
	// AdmitRetry parks refused injections in the node's unbounded FIFO
	// backlog and retries every step until a slot frees up — the
	// destination-independent entry discipline of the paper's Section 5
	// dynamic extension (and of QueueInjection, whose machinery it
	// reuses). No injection is ever lost; each step a packet waits in the
	// backlog counts as one refusal.
	AdmitRetry AdmissionPolicy = iota
	// AdmitDrop discards refused injections at arrival time — the
	// loss-model of the online bounded-buffer setting (Even–Medina–
	// Patt-Shamir), where the figure of merit is the throughput of the
	// admitted packets. Dropped injections are counted but never
	// materialized, so they do not appear in Packets() or totals.
	AdmitDrop
)

// AttachSource installs a streaming workload on the network, to be pulled
// once per step by the injection phase, and immediately admits the source's
// step-0 injections as placements (the degenerate one-shot case): each is
// placed exactly like Place, so a central-queue overflow at step 0 is an
// error under AdmitRetry and a counted drop under AdmitDrop. It is an error
// to attach a source after the run has started or to attach two sources.
func (net *Network) AttachSource(src Source, policy AdmissionPolicy) error {
	if net.step != 0 || net.inited {
		return errors.New("sim: AttachSource after run started")
	}
	if net.source != nil {
		return errors.New("sim: source already attached")
	}
	if policy != AdmitRetry && policy != AdmitDrop {
		return fmt.Errorf("sim: unknown admission policy %d", policy)
	}
	net.source = src
	net.admit = policy
	buf := src.Next(0, net.injBuf[:0])
	net.injBuf = buf[:0]
	for _, inj := range buf {
		net.Metrics.Offered++
		if policy == AdmitDrop && inj.Src != inj.Dst && net.Queues == CentralQueue &&
			net.nodes[inj.Src].QueueLen(0) >= net.K {
			net.Metrics.Refused++
			net.Metrics.Dropped++
			continue
		}
		if err := net.Place(net.NewPacket(inj.Src, inj.Dst)); err != nil {
			return err
		}
		net.Metrics.Admitted++
	}
	net.srcExhausted = src.Exhausted(0)
	net.openSource = !net.srcExhausted
	return nil
}

// OpenWorkload reports whether the network was populated by a Source that
// injects beyond step 0 — an online run, for which throughput and refusal
// statistics are meaningful. One-shot sources (everything at step 0) and
// source-less networks report false.
func (net *Network) OpenWorkload() bool { return net.openSource }

// ReserveInjections pre-grows the packet store and placement list for n
// additional packets, so a benchmarked or latency-sensitive online run can
// move the amortized append growth out of the measured window. Purely an
// optimization: sources work without it, at amortized-O(1) append cost.
func (net *Network) ReserveInjections(n int) {
	st := &net.P
	st.Src = slices.Grow(st.Src, n)
	st.Dst = slices.Grow(st.Dst, n)
	st.At = slices.Grow(st.At, n)
	st.State = slices.Grow(st.State, n)
	st.Arrived = slices.Grow(st.Arrived, n)
	st.QTag = slices.Grow(st.QTag, n)
	st.Class = slices.Grow(st.Class, n)
	st.Tag = slices.Grow(st.Tag, n)
	st.ArrivedStep = slices.Grow(st.ArrivedStep, n)
	st.InjectStep = slices.Grow(st.InjectStep, n)
	st.DeliverStep = slices.Grow(st.DeliverStep, n)
	st.Hops = slices.Grow(st.Hops, n)
	st.slot = slices.Grow(st.slot, n)
	st.departing = slices.Grow(st.departing, n)
	net.placed = slices.Grow(net.placed, n)
}

// sourcePacket materializes one accepted streamed injection: the packet
// enters the store, the placement list and the conservation totals, exactly
// as a QueueInjection packet would.
func (net *Network) sourcePacket(inj Injection) PacketID {
	p := net.P.add(inj.Src, inj.Dst)
	if net.analyzer != nil {
		net.analyzer.Admit(inj.Src, inj.Dst)
	}
	net.placed = append(net.placed, p)
	net.total++
	return p
}

// pullSource asks the attached source for step t's injections and admits
// them under the configured policy. Under AdmitRetry the injections
// materialize immediately and join the per-node backlog (behind any
// QueueInjection packets due this step), to be drained by the normal FIFO
// admission below; under AdmitDrop each injection is admitted directly if
// its source queue has room (and the node is not stalled) and discarded —
// without ever materializing — otherwise.
func (net *Network) pullSource(t int) {
	st := &net.P
	buf := net.source.Next(t, net.injBuf[:0])
	net.injBuf = buf[:0] // keep the grown capacity for the next pull
	net.stepOffered += len(buf)
	if net.admit == AdmitDrop {
		for _, inj := range buf {
			if inj.Src == inj.Dst {
				p := net.sourcePacket(inj)
				st.InjectStep[p] = int32(t)
				st.DeliverStep[p] = int32(t)
				net.delivered++
				net.Metrics.noteDelivered(t, t)
				net.stepAdmitted++
				continue
			}
			node := &net.nodes[inj.Src]
			if (net.hasFaults && net.stalledCnt[inj.Src] > 0) ||
				(net.Queues == CentralQueue && node.QueueLen(0) >= net.K) {
				net.stepDropped++
				continue
			}
			p := net.sourcePacket(inj)
			st.InjectStep[p] = int32(t)
			tag := uint8(0)
			if net.Queues == PerInlinkQueues {
				tag = OriginTag
			}
			net.attach(node, p, tag)
			net.stepAdmitted++
		}
	} else {
		for _, inj := range buf {
			p := net.sourcePacket(inj)
			net.backlog[inj.Src] = append(net.backlog[inj.Src], p)
			if !net.inBacklog[inj.Src] {
				net.inBacklog[inj.Src] = true
				net.backlogNodes = append(net.backlogNodes, inj.Src)
			}
			net.backlogTotal++
		}
	}
	net.srcExhausted = net.source.Exhausted(t)
}
