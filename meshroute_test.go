package meshroute

import (
	"testing"
)

func TestRouteAllRoutersRandom(t *testing.T) {
	topo := NewMesh(12)
	perm := RandomPermutation(topo, 42)
	for _, name := range RouterNames() {
		k := 4
		if name == RouterThm15 {
			k = 1
		}
		st, err := Route(name, topo, k, perm, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !st.Done || st.Delivered != st.Total {
			t.Fatalf("%s: %d/%d delivered", name, st.Delivered, st.Total)
		}
		if st.Makespan < 1 {
			t.Fatalf("%s: bad makespan %d", name, st.Makespan)
		}
	}
}

func TestLookupRouterErrors(t *testing.T) {
	if _, err := LookupRouter("nope"); err == nil {
		t.Fatal("unknown router must error")
	}
	spec, err := LookupRouter(RouterThm15)
	if err != nil || !spec.DestinationExchangeable || !spec.Minimal {
		t.Fatalf("thm15 spec wrong: %+v err=%v", spec, err)
	}
	hp, _ := LookupRouter(RouterHotPotato)
	if hp.Minimal {
		t.Fatal("hot potato must be nonminimal")
	}
	ff, _ := LookupRouter(RouterFarthestFirst)
	if ff.DestinationExchangeable {
		t.Fatal("farthest-first must not be destination-exchangeable")
	}
}

func TestHardPermutationPublicAPI(t *testing.T) {
	perm, bound, makespan, done, err := HardPermutation(120, 2, RouterDimOrder, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) == 0 || bound <= 0 {
		t.Fatalf("degenerate: %d pairs bound %d", len(perm), bound)
	}
	if done && makespan < bound {
		t.Fatalf("beat the bound: %d < %d", makespan, bound)
	}
}

func TestHardPermutationRejectsNonDex(t *testing.T) {
	if _, _, _, _, err := HardPermutation(120, 1, RouterFarthestFirst, 1000); err == nil {
		t.Fatal("farthest-first must be rejected by the Theorem 14 pipeline")
	}
	if _, _, _, _, err := HardPermutation(120, 1, RouterThm15, 1000); err == nil {
		t.Fatal("per-inlink router must be redirected to the adversary package")
	}
}

func TestRouteCLTPublicAPI(t *testing.T) {
	n := 27
	perm := Transpose(NewMesh(n))
	res, err := RouteCLT(n, perm, CLTOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeFormula > 972*n || res.MaxQueue > 834 {
		t.Fatalf("Theorem 34 bounds violated: %+v", res)
	}
}

func TestWorkloadsViaFacade(t *testing.T) {
	topo := NewMesh(8)
	for _, p := range []*Permutation{
		RandomPermutation(topo, 1),
		Transpose(topo),
		Reversal(topo),
		BitReversal(topo),
		Rotation(topo, 1, 2),
	} {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	hh := RandomHH(topo, 2, 3)
	if err := hh.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTorusFacade(t *testing.T) {
	topo := NewTorus(8)
	perm := RandomPermutation(topo, 9)
	st, err := Route(RouterThm15, topo, 2, perm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Fatalf("torus routing incomplete: %+v", st)
	}
}

func TestAdversaryFacade(t *testing.T) {
	c, err := NewAdversary(60, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := LookupRouter(RouterDimOrder)
	res, err := c.Run(spec.New())
	if err != nil {
		t.Fatal(err)
	}
	if res.UndeliveredHard == 0 {
		t.Fatal("construction must leave packets undelivered")
	}
	if AdversaryMinN(1) != 216 {
		t.Fatal("MinN wrong")
	}
}

func TestRouteOptionsSeed(t *testing.T) {
	topo := NewMesh(12)
	perm := RandomPermutation(topo, 42)
	// Same seed → same run; across seeds the decision stream (and with it
	// the makespan, on at least one seed) must vary.
	base, err := RouteWithOptions(RouterRandZigZag, topo, 2, perm, RouteOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	again, err := RouteWithOptions(RouterRandZigZag, topo, 2, perm, RouteOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Makespan != again.Makespan || base.MaxQueue != again.MaxQueue {
		t.Fatalf("seed 1 not deterministic: %+v vs %+v", base, again)
	}
	varies := false
	for seed := uint64(2); seed <= 8; seed++ {
		st, err := RouteWithOptions(RouterRandZigZag, topo, 2, perm, RouteOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !st.Done {
			t.Fatalf("seed %d: not done", seed)
		}
		if st.Makespan != base.Makespan {
			varies = true
		}
	}
	if !varies {
		t.Fatal("makespan identical across all seeds — seed not reaching the router")
	}
	if _, err := RouteWithOptions(RouterDimOrder, topo, 2, perm, RouteOptions{Seed: 5}); err == nil {
		t.Fatal("deterministic router must reject a seed")
	}
}
