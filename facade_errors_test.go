package meshroute

import "testing"

func TestRouteUnknownRouter(t *testing.T) {
	topo := NewMesh(8)
	if _, err := Route("no-such-router", topo, 1, RandomPermutation(topo, 1), 0); err == nil {
		t.Fatal("unknown router must error")
	}
}

func TestRouteCLTBadSize(t *testing.T) {
	perm := RandomPermutation(NewMesh(32), 1)
	if _, err := RouteCLT(32, perm, CLTOptions{}); err == nil {
		t.Fatal("n=32 (not a power of 3) must error")
	}
}

func TestHardPermutationBadParams(t *testing.T) {
	if _, _, _, _, err := HardPermutation(8, 1, RouterDimOrder, 100); err == nil {
		t.Fatal("tiny mesh must error")
	}
	if _, _, _, _, err := HardPermutation(120, 1, "nope", 100); err == nil {
		t.Fatal("unknown router must error")
	}
}

func TestStrayRouterViaFacade(t *testing.T) {
	topo := NewMesh(12)
	st, err := Route(RouterStray, topo, 3, RandomPermutation(topo, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Fatal("stray router must finish random permutations")
	}
}

func TestRandZigZagViaFacade(t *testing.T) {
	topo := NewMesh(12)
	st, err := Route(RouterRandZigZag, topo, 4, RandomPermutation(topo, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Fatal("randomized router must finish random permutations")
	}
}
