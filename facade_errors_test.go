package meshroute

import (
	"strings"
	"testing"
)

func TestRouteUnknownRouter(t *testing.T) {
	topo := NewMesh(8)
	if _, err := Route("no-such-router", topo, 1, RandomPermutation(topo, 1), 0); err == nil {
		t.Fatal("unknown router must error")
	}
}

func TestRouteCLTBadSize(t *testing.T) {
	perm := RandomPermutation(NewMesh(32), 1)
	if _, err := RouteCLT(32, perm, CLTOptions{}); err == nil {
		t.Fatal("n=32 (not a power of 3) must error")
	}
}

func TestHardPermutationBadParams(t *testing.T) {
	if _, _, _, _, err := HardPermutation(8, 1, RouterDimOrder, 100); err == nil {
		t.Fatal("tiny mesh must error")
	}
	if _, _, _, _, err := HardPermutation(120, 1, "nope", 100); err == nil {
		t.Fatal("unknown router must error")
	}
}

func TestStrayRouterViaFacade(t *testing.T) {
	topo := NewMesh(12)
	st, err := Route(RouterStray, topo, 3, RandomPermutation(topo, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Fatal("stray router must finish random permutations")
	}
}

func TestRandZigZagViaFacade(t *testing.T) {
	topo := NewMesh(12)
	st, err := Route(RouterRandZigZag, topo, 4, RandomPermutation(topo, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Fatal("randomized router must finish random permutations")
	}
}

func TestNewNetworkValidatesConfig(t *testing.T) {
	cases := []struct {
		name string
		cfg  NetworkConfig
		want string
	}{
		{"nil topo", NetworkConfig{K: 1}, "topology"},
		{"bad K", NetworkConfig{Topo: NewMesh(4), K: 0}, "queue capacity"},
		{"bad watchdog", NetworkConfig{Topo: NewMesh(4), K: 1, Watchdog: -1}, "watchdog"},
	}
	for _, c := range cases {
		net, err := NewNetwork(c.cfg)
		if err == nil || net != nil {
			t.Fatalf("%s: want error, got net=%v err=%v", c.name, net, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	if _, err := NewNetwork(NetworkConfig{Topo: NewMesh(4), K: 1}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestNewNetworkRejectsMismatchedFaultSchedule(t *testing.T) {
	sched, err := GenerateFaults(NewMesh(8), FaultConfig{Seed: 1, Horizon: 50, LinkFailures: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNetwork(NetworkConfig{Topo: NewMesh(6), K: 2, Faults: sched}); err == nil {
		t.Fatal("schedule generated for an 8x8 mesh must be rejected on a 6x6 one")
	}
}

func TestRouteWithOptionsFaultAware(t *testing.T) {
	topo := NewMesh(12)
	sched, err := GenerateFaults(topo, FaultConfig{Seed: 3, Horizon: 200, LinkFailures: 8, MeanDownSteps: 20})
	if err != nil {
		t.Fatal(err)
	}
	st, err := RouteWithOptions(RouterZigZag, topo, 4, RandomPermutation(topo, 4), RouteOptions{
		Faults: sched, FaultAware: true, Watchdog: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Fatalf("fault-aware zigzag must survive transient faults: %+v", st)
	}
}

func TestRouteWithOptionsNoFaultAwareVariant(t *testing.T) {
	topo := NewMesh(8)
	_, err := RouteWithOptions(RouterDimOrder, topo, 2, RandomPermutation(topo, 1), RouteOptions{FaultAware: true})
	if err == nil || !strings.Contains(err.Error(), "fault-aware") {
		t.Fatalf("dimension order has no fault-aware variant; got %v", err)
	}
}
