package meshroute_test

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"meshroute/internal/scenario"
	"meshroute/internal/sim"
)

// The engine-equivalence golden digests: every registry router (including
// the fault-aware variants under a seeded fault schedule, and two dynamic-
// injection scenarios) runs on a fixed workload, and the resulting
// per-packet (ID, DeliverStep, Hops) sequence is hashed. The digests are
// pinned in testdata/engine_digests.json, generated on the pre-arena
// engine, so any hot-path refactor that changes routing behavior — even by
// one step on one packet — fails this test.
//
// The scenarios themselves are committed spec files under
// testdata/scenarios/ and are built and executed through the scenario
// layer, so the digest suite also pins the spec-to-run translation: a
// change to scenario.Build or the Runner that alters routing behavior
// fails here exactly like an engine change would.
//
// Regenerate (only when a behavior change is intended and understood) with:
//
//	go test . -run TestEngineGoldenDigests -update-engine-digests
var updateDigests = flag.Bool("update-engine-digests", false,
	"rewrite testdata/engine_digests.json from the current engine")

const (
	digestFile  = "testdata/engine_digests.json"
	scenarioDir = "testdata/scenarios"
)

// undigestedScenarios are committed spec files that the digest suite runs
// (they must stay loadable and executable) but that have no pinned digest:
// smoke.json is the CI smoke scenario, sized for speed, not coverage.
var undigestedScenarios = map[string]bool{"smoke": true}

// loadScenarios reads every committed spec file, sorted by name for
// deterministic subtest order.
func loadScenarios(t *testing.T) []*scenario.Spec {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(scenarioDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no scenario files in %s", scenarioDir)
	}
	sort.Strings(paths)
	specs := make([]*scenario.Spec, 0, len(paths))
	for _, path := range paths {
		spec, err := scenario.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if want := strings.TrimSuffix(filepath.Base(path), ".json"); spec.Name != want {
			t.Fatalf("%s: spec name %q does not match its file name", path, spec.Name)
		}
		specs = append(specs, spec)
	}
	return specs
}

// runScenario builds and executes one spec with the given engine worker
// count (0 = serial) and returns the finished network for digesting.
// Scenarios must be deterministic and must not abort.
func runScenario(t *testing.T, spec *scenario.Spec, workers int) *sim.Network {
	t.Helper()
	s := *spec // the Workers override must not leak across subtests
	s.Workers = workers
	run, err := s.Build()
	if err != nil {
		t.Fatalf("%s: %v", spec.Name, err)
	}
	var r scenario.Runner
	res, err := r.RunBuilt(context.Background(), run)
	if err != nil {
		t.Fatalf("%s: %v", spec.Name, err)
	}
	if res.Err != nil {
		t.Fatalf("%s: run aborted: %v", spec.Name, res.Err)
	}
	return res.Net
}

// digestNet hashes the per-packet outcome of a finished run: for every
// packet in ID order, (ID, InjectStep, DeliverStep, Hops). FNV-1a keeps the
// digest stable across platforms.
func digestNet(net *sim.Network) string {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v int64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, p := range net.Packets() {
		w(int64(p.ID))
		w(int64(p.InjectStep))
		w(int64(p.DeliverStep))
		w(int64(p.Hops))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func loadDigests(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(digestFile)
	if err != nil {
		t.Fatalf("read pinned digests (regenerate with -update-engine-digests): %v", err)
	}
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("parse %s: %v", digestFile, err)
	}
	return m
}

// TestEngineGoldenDigests asserts that every committed scenario reproduces
// its pinned pre-refactor digest bit for bit.
func TestEngineGoldenDigests(t *testing.T) {
	specs := loadScenarios(t)
	if *updateDigests {
		out := make(map[string]string, len(specs))
		for _, spec := range specs {
			if undigestedScenarios[spec.Name] {
				continue
			}
			out[spec.Name] = digestNet(runScenario(t, spec, 0))
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(digestFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(digestFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(out), digestFile)
		return
	}
	pinned := loadDigests(t)
	haveFile := make(map[string]bool, len(specs))
	for _, spec := range specs {
		haveFile[spec.Name] = true
	}
	for name := range pinned {
		if !haveFile[name] {
			t.Fatalf("pinned digest %s has no spec file in %s", name, scenarioDir)
		}
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			want, ok := pinned[spec.Name]
			if !ok {
				if undigestedScenarios[spec.Name] {
					runScenario(t, spec, 0) // must still execute cleanly
					return
				}
				t.Fatalf("no pinned digest for %s (regenerate with -update-engine-digests)", spec.Name)
			}
			if got := digestNet(runScenario(t, spec, 0)); got != want {
				t.Fatalf("digest %s != pinned %s: engine behavior changed", got, want)
			}
		})
	}
}

// TestEngineGoldenDigestsParallel asserts that Workers > 1 reproduces the
// same pinned digests bit for bit: parallel scheduling must be invisible in
// every per-packet outcome. Scenarios whose algorithm does not implement
// sim.ParallelCloner silently run serial, which trivially matches — that is
// the documented Config.Workers contract, so they stay in the sweep.
func TestEngineGoldenDigestsParallel(t *testing.T) {
	if *updateDigests {
		t.Skip("digest update runs serial")
	}
	pinned := loadDigests(t)
	specs := loadScenarios(t)
	for _, workers := range []int{2, 4, 8} {
		for _, spec := range specs {
			if undigestedScenarios[spec.Name] {
				continue
			}
			spec, workers := spec, workers
			t.Run(fmt.Sprintf("%s-w%d", spec.Name, workers), func(t *testing.T) {
				want, ok := pinned[spec.Name]
				if !ok {
					t.Fatalf("no pinned digest for %s", spec.Name)
				}
				if got := digestNet(runScenario(t, spec, workers)); got != want {
					t.Fatalf("workers=%d digest %s != serial pinned %s", workers, got, want)
				}
			})
		}
	}
}
