package meshroute_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"meshroute"
	"meshroute/internal/fault"
	"meshroute/internal/grid"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

// The engine-equivalence golden digests: every registry router (including
// the fault-aware variants under a seeded fault schedule, and two dynamic-
// injection scenarios) runs on a fixed workload, and the resulting
// per-packet (ID, DeliverStep, Hops) sequence is hashed. The digests are
// pinned in testdata/engine_digests.json, generated on the pre-arena
// engine, so any hot-path refactor that changes routing behavior — even by
// one step on one packet — fails this test.
//
// Regenerate (only when a behavior change is intended and understood) with:
//
//	go test . -run TestEngineGoldenDigests -update-engine-digests
var updateDigests = flag.Bool("update-engine-digests", false,
	"rewrite testdata/engine_digests.json from the current engine")

const digestFile = "testdata/engine_digests.json"

// digestScenario is one pinned run: it builds the network and workload,
// runs the algorithm for a fixed step budget, and the harness digests the
// final packet states.
type digestScenario struct {
	name string
	// run executes the scenario and returns the network for digesting.
	// Scenarios must be deterministic and must not error.
	run func(workers int) (*sim.Network, error)
}

// routeScenario runs a registry router on a workload with an optional fault
// schedule, via RunPartial with a fixed budget (some cells intentionally do
// not complete; the digest covers undelivered packets too).
func routeScenario(router string, topo grid.Topology, k int, perm *workload.Permutation,
	faultsCfg *fault.Config, faultAware bool, budget int) digestScenario {
	name := fmt.Sprintf("%s-n%d-k%d", router, topo.Width(), k)
	if faultAware {
		name += "-fa"
	}
	if faultsCfg != nil {
		name += "-faults"
	}
	return digestScenario{name: name, run: func(workers int) (*sim.Network, error) {
		spec, err := meshroute.LookupRouter(router)
		if err != nil {
			return nil, err
		}
		cfg := spec.Config(topo, k)
		if faultsCfg != nil {
			sched, err := fault.Generate(topo, *faultsCfg)
			if err != nil {
				return nil, err
			}
			cfg.Faults = sched
		}
		applyWorkers(&cfg, workers)
		net, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := perm.Place(net); err != nil {
			return nil, err
		}
		newAlg := spec.New
		if faultAware {
			if spec.NewFaultAware == nil {
				return nil, fmt.Errorf("router %q has no fault-aware variant", router)
			}
			newAlg = spec.NewFaultAware
		}
		if _, err := net.RunPartial(newAlg(), budget); err != nil {
			return nil, err
		}
		return net, nil
	}}
}

// dynamicScenario exercises the injection path: a deterministic arithmetic
// injection pattern (no RNG) over a fixed horizon, so backlog draining and
// FIFO entry order are part of the pinned behavior.
func dynamicScenario(router string, n, k, horizon int) digestScenario {
	return digestScenario{
		name: fmt.Sprintf("dynamic-%s-n%d-k%d", router, n, k),
		run: func(workers int) (*sim.Network, error) {
			spec, err := meshroute.LookupRouter(router)
			if err != nil {
				return nil, err
			}
			topo := grid.NewSquareMesh(n)
			cfg := spec.Config(topo, k)
			applyWorkers(&cfg, workers)
			net, err := sim.New(cfg)
			if err != nil {
				return nil, err
			}
			// Bursty deterministic pattern: node id injects at steps
			// congruent to id mod 7, toward a shifted destination.
			for step := 1; step <= horizon/2; step++ {
				for id := 0; id < n*n; id++ {
					if (id+step)%7 == 0 {
						dst := grid.NodeID((id*13 + step*29) % (n * n))
						net.QueueInjection(net.NewPacket(grid.NodeID(id), dst), step)
					}
				}
			}
			alg := spec.New()
			for step := 0; step < horizon; step++ {
				if err := net.StepOnce(alg); err != nil {
					return nil, err
				}
			}
			return net, nil
		},
	}
}

// applyWorkers configures parallel scheduling on the run; workers <= 1
// leaves the configuration serial.
func applyWorkers(cfg *sim.Config, workers int) {
	cfg.Workers = workers
}

func digestScenarios() []digestScenario {
	mesh16 := grid.NewSquareMesh(16)
	mesh12 := grid.NewSquareMesh(12)
	transpose16 := workload.Transpose(mesh16)
	random12 := workload.Random(mesh12, 3)
	// Transient-only faults: permanent cuts under RequireMinimal can make
	// destinations unreachable, which is a run error, not a digest.
	transient := &fault.Config{Seed: 11, Horizon: 120, LinkFailures: 25, MeanDownSteps: 6, NodeStalls: 6, MeanStallSteps: 4}
	return []digestScenario{
		routeScenario(meshroute.RouterDimOrder, mesh16, 2, transpose16, nil, false, 4000),
		routeScenario(meshroute.RouterZigZag, mesh16, 2, transpose16, nil, false, 4000),
		routeScenario(meshroute.RouterThm15, mesh16, 2, workload.Reversal(mesh16), nil, false, 4000),
		routeScenario(meshroute.RouterThm15, mesh12, 1, random12, nil, false, 4000),
		routeScenario(meshroute.RouterFarthestFirst, mesh16, 2, transpose16, nil, false, 4000),
		routeScenario(meshroute.RouterHotPotato, mesh12, 4, random12, nil, false, 4000),
		routeScenario(meshroute.RouterRandZigZag, mesh16, 4, transpose16, nil, false, 1500),
		routeScenario(meshroute.RouterStray, mesh16, 2, transpose16, nil, false, 4000),
		routeScenario(meshroute.RouterZigZag, mesh12, 3, random12, transient, true, 2500),
		routeScenario(meshroute.RouterRandZigZag, mesh12, 4, random12, transient, true, 1500),
		dynamicScenario(meshroute.RouterDimOrder, 12, 2, 260),
		dynamicScenario(meshroute.RouterThm15, 12, 1, 260),
	}
}

// digestNet hashes the per-packet outcome of a finished run: for every
// packet in ID order, (ID, InjectStep, DeliverStep, Hops). FNV-1a keeps the
// digest stable across platforms.
func digestNet(net *sim.Network) string {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v int64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, p := range net.Packets() {
		w(int64(p.ID))
		w(int64(p.InjectStep))
		w(int64(p.DeliverStep))
		w(int64(p.Hops))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func loadDigests(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(digestFile)
	if err != nil {
		t.Fatalf("read pinned digests (regenerate with -update-engine-digests): %v", err)
	}
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("parse %s: %v", digestFile, err)
	}
	return m
}

// TestEngineGoldenDigests asserts that every scenario reproduces its pinned
// pre-refactor digest bit for bit.
func TestEngineGoldenDigests(t *testing.T) {
	scenarios := digestScenarios()
	if *updateDigests {
		out := make(map[string]string, len(scenarios))
		for _, s := range scenarios {
			net, err := s.run(0)
			if err != nil {
				t.Fatalf("%s: %v", s.name, err)
			}
			out[s.name] = digestNet(net)
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(digestFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(digestFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(out), digestFile)
		return
	}
	pinned := loadDigests(t)
	if len(pinned) != len(scenarios) {
		t.Fatalf("pinned %d digests, have %d scenarios", len(pinned), len(scenarios))
	}
	for _, s := range scenarios {
		s := s
		t.Run(s.name, func(t *testing.T) {
			want, ok := pinned[s.name]
			if !ok {
				t.Fatalf("no pinned digest for %s (regenerate with -update-engine-digests)", s.name)
			}
			net, err := s.run(0)
			if err != nil {
				t.Fatal(err)
			}
			if got := digestNet(net); got != want {
				t.Fatalf("digest %s != pinned %s: engine behavior changed", got, want)
			}
		})
	}
}

// TestEngineGoldenDigestsParallel asserts that Workers > 1 reproduces the
// same pinned digests bit for bit: parallel scheduling must be invisible in
// every per-packet outcome. Scenarios whose algorithm does not implement
// sim.ParallelCloner silently run serial, which trivially matches — that is
// the documented Config.Workers contract, so they stay in the sweep.
func TestEngineGoldenDigestsParallel(t *testing.T) {
	if *updateDigests {
		t.Skip("digest update runs serial")
	}
	pinned := loadDigests(t)
	for _, workers := range []int{2, 4} {
		for _, s := range digestScenarios() {
			s, workers := s, workers
			t.Run(fmt.Sprintf("%s-w%d", s.name, workers), func(t *testing.T) {
				want, ok := pinned[s.name]
				if !ok {
					t.Fatalf("no pinned digest for %s", s.name)
				}
				net, err := s.run(workers)
				if err != nil {
					t.Fatal(err)
				}
				if got := digestNet(net); got != want {
					t.Fatalf("workers=%d digest %s != serial pinned %s", workers, got, want)
				}
			})
		}
	}
}
