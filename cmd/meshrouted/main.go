// Command meshrouted serves the simulation engine over HTTP: scenario
// specs go in (POST /v1/jobs, single spec or sweep array), routing
// statistics come out, with a bounded FIFO job queue in between — the
// control-plane analogue of the paper's bounded-queue discipline. When
// the queue is full the server refuses new work with 429 instead of
// buffering without limit.
//
// Results are cached by the spec's canonical fingerprint: the engine is
// deterministic, so resubmitting an identical spec returns the stored
// statistics without simulating.
//
//	meshrouted -addr :8421 -workers 4 -queue-depth 64
//	meshroute -submit testdata/scenarios/smoke.json -server http://127.0.0.1:8421
//
// Fleet mode (see docs/SERVICE.md § Fleet) spreads sweep cells across
// worker processes: start one coordinator and any number of workers, and
// jobs submitted to the coordinator run wherever there is capacity —
// with retries, heartbeat liveness, and per-worker circuit breakers, and
// output byte-identical to a local run. With zero live workers the
// coordinator degrades to in-process execution.
//
//	meshrouted -coordinator -addr :8421
//	meshrouted -worker http://127.0.0.1:8421 -addr :8422
//	meshrouted -worker http://127.0.0.1:8421 -addr :8423
//
// SIGINT/SIGTERM starts a graceful drain: new submissions are refused
// (503), running jobs get up to -drain to finish, anything still running
// after that is canceled and retires with partial statistics.
//
// See docs/SERVICE.md for the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"meshroute/internal/fleet"
	"meshroute/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8421", "listen address")
		workers     = flag.Int("workers", 0, "simulation worker-pool width (0 = GOMAXPROCS)")
		queueDepth  = flag.Int("queue-depth", 64, "job queue capacity; submissions past it get 429")
		cacheSize   = flag.Int("cache-size", 256, "result cache entries (negative disables caching)")
		maxJobSteps = flag.Int("max-job-steps", 0, "reject specs whose step budget exceeds this (0 = no cap)")
		eventBuffer = flag.Int("event-buffer", 65536, "per-job cap on buffered NDJSON event records")
		retainJobs  = flag.Int("retain-jobs", 4096, "terminal jobs kept in memory before eviction")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-drain budget on SIGTERM before running jobs are canceled")

		coordinator  = flag.Bool("coordinator", false, "accept worker registrations and dispatch jobs to the fleet")
		workerFor    = flag.String("worker", "", "run as a fleet worker for this coordinator URL (no job API)")
		advertise    = flag.String("advertise", "", "base URL workers announce to the coordinator (default: derived from -addr)")
		heartbeat    = flag.Duration("heartbeat", 2*time.Second, "worker announce interval")
		hbTimeout    = flag.Duration("heartbeat-timeout", 6*time.Second, "coordinator: a worker quiet this long is dead")
		cellDeadline = flag.Duration("cell-deadline", 5*time.Minute, "coordinator: per-attempt cell deadline before re-dispatch (straggler work-stealing)")
		cellRetries  = flag.Int("cell-retries", 4, "coordinator: dispatch attempts per cell before the job fails")
		cellSlots    = flag.Int("cell-slots", 0, "worker: concurrent cell executions (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *workerFor != "" {
		if *coordinator {
			log.Fatal("-worker and -coordinator are mutually exclusive")
		}
		runWorker(*addr, *workerFor, *advertise, *cellSlots, *eventBuffer, *heartbeat, *drain)
		return
	}

	cfg := service.Config{
		Workers:     *workers,
		QueueDepth:  *queueDepth,
		CacheSize:   *cacheSize,
		MaxJobSteps: *maxJobSteps,
		EventBuffer: *eventBuffer,
		RetainJobs:  *retainJobs,
	}
	if *coordinator {
		cfg.Fleet = fleet.NewCoordinator(fleet.Config{
			HeartbeatTimeout: *hbTimeout,
			CellDeadline:     *cellDeadline,
			MaxAttempts:      *cellRetries,
		})
	}
	svc := service.New(cfg)
	srv := &http.Server{Handler: svc.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("meshrouted listening on %s", ln.Addr())
	if *coordinator {
		log.Printf("fleet coordinator mode: workers register at POST /v1/workers (heartbeat timeout %s, cell deadline %s, %d attempts)",
			*hbTimeout, *cellDeadline, *cellRetries)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Printf("shutdown signal received; draining jobs (budget %s)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		log.Printf("drain: %v", err)
	}
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer httpCancel()
	if err := srv.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	<-serveErr // Serve has returned ErrServerClosed by now
	log.Printf("meshrouted stopped")
}
