package main

import (
	"context"
	"errors"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"meshroute/internal/fleet"
)

// runWorker serves the fleet cell-execution API (POST /v1/cells) and
// keeps the process announced to its coordinator with a heartbeat. The
// worker holds no job state of its own — a cell either completes in one
// request/response exchange or it didn't happen, which is what lets the
// coordinator re-dispatch failed cells anywhere — so shutdown is just:
// stop announcing, stop accepting, let in-flight cells finish up to the
// drain budget.
func runWorker(addr, coordinatorURL, advertise string, slots, eventBuffer int, heartbeat, drain time.Duration) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	selfURL := advertise
	if selfURL == "" {
		selfURL = guessAdvertiseURL(ln.Addr())
	}
	log.Printf("meshrouted worker listening on %s (advertising %s, coordinator %s)", ln.Addr(), selfURL, coordinatorURL)

	w := fleet.NewWorker(fleet.WorkerConfig{Slots: slots, EventBuffer: eventBuffer})
	srv := &http.Server{Handler: w.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	announceDone := make(chan struct{})
	go func() {
		defer close(announceDone)
		fleet.Announce(ctx, nil, coordinatorURL, selfURL, heartbeat, log.Printf)
	}()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Printf("shutdown signal received; finishing in-flight cells (budget %s)", drain)
	httpCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	<-serveErr
	<-announceDone
	log.Printf("meshrouted worker stopped")
}

// guessAdvertiseURL turns the listener address into a URL the
// coordinator can dial back. A wildcard host becomes loopback — right
// for single-machine fleets; multi-host deployments pass -advertise.
func guessAdvertiseURL(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}
