// Command experiments regenerates every table of the reproduction (the
// per-experiment index in DESIGN.md): the lower-bound constructions of
// Sections 3–5, the Theorem 15 and Theorem 34 upper bounds, the h-h and
// torus extensions, the average-case framing, the escape-hatch comparison
// of Section 7, and the two ablations.
//
// Usage:
//
//	experiments [-full] [-only E1,E5]
//	experiments -only E5 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The pprof flags profile the harness itself (docs/OBSERVABILITY.md walks
// through reading the profiles); for machine-readable per-cell numbers use
// cmd/benchjson instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"meshroute/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run the full (slow) parameter sweeps")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E5,A2)")
	csvDir := flag.String("csv", "", "also write each experiment's table as <id>.csv into this directory")
	workers := flag.Int("workers", 0, "parallel sweep fan-out (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()

	// SIGINT/SIGTERM stop the sweeps between simulation steps; each
	// experiment returns the rows it completed with an "interrupted"
	// note instead of discarding the partial table.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var cpuOut *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		cpuOut = f
	}

	err := runAll(experiments.Options{Quick: !*full, Workers: *workers, Ctx: ctx}, *only, *csvDir)

	if cpuOut != nil {
		pprof.StopCPUProfile()
		if cerr := cpuOut.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if *memprofile != "" {
		if werr := writeHeapProfile(*memprofile); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runAll(opts experiments.Options, only, csvDir string) error {
	want := map[string]bool{}
	for _, id := range strings.Split(only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}

	type entry struct {
		id string
		fn func(experiments.Options) (*experiments.Report, error)
	}
	all := []entry{
		{"E1", experiments.E1}, {"E2", experiments.E2}, {"E3", experiments.E3},
		{"E4", experiments.E4}, {"E5", experiments.E5}, {"E6", experiments.E6},
		{"E7", experiments.E7}, {"E8", experiments.E8}, {"E9", experiments.E9},
		{"E10", experiments.E10}, {"E11", experiments.E11}, {"E12", experiments.E12}, {"E13", experiments.E13}, {"E14", experiments.E14},
		{"E15", experiments.E15}, {"E16", experiments.E16},
		{"A1", experiments.A1}, {"A2", experiments.A2},
	}
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		rep, err := e.fn(opts)
		if err != nil {
			return fmt.Errorf("%s failed: %w", e.id, err)
		}
		fmt.Println(rep)
		fmt.Printf("   (%s in %.1fs)\n\n", e.id, time.Since(start).Seconds())
		if csvDir != "" {
			path := filepath.Join(csvDir, strings.ToLower(e.id)+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := rep.Table.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("   (table written to %s)\n\n", path)
		}
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interrupted — remaining experiments skipped")
			return nil
		}
	}
	return nil
}
