// Command figures regenerates the paper's figures from live simulation
// state (deliverable: "for every table AND figure, the code that
// regenerates it"):
//
//	Figure 1 — the n×n mesh with the 1-box, N_i-columns and E_i-rows
//	Figure 2 — the i-box invariant during the construction (packet kinds)
//	Figure 3 — the Lemma 12 commutation square (schematic)
//	Figure 4 — the dimension-order and farthest-first construction layouts
//	Figure 5 — the Vertical Phase strips (March / Sort-and-Smooth targets)
//	Figure 6 — Sort and Smooth, from a live run of the stream protocol
//	Figure 7 — the subphase sequence
//
// Usage: figures [-fig N] (default: all)
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"meshroute/internal/adversary"
	"meshroute/internal/clt"
	"meshroute/internal/dex"
	"meshroute/internal/routers"
	"meshroute/internal/sim"
)

func main() {
	fig := flag.Int("fig", 0, "figure number 1..7 (0 = all)")
	flag.Parse()

	show := func(n int) bool { return *fig == 0 || *fig == n }

	var c *adversary.Construction
	var res *adversary.Result
	if show(1) || show(2) {
		var err error
		c, err = adversary.NewConstruction(60, 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err = c.Run(dex.NewAdapter(routers.DimOrderFIFO{}))
		if err != nil {
			log.Fatal(err)
		}
	}
	if show(1) {
		fmt.Println("== Figure 1: the n×n mesh ==")
		fmt.Println(c.RenderLayout())
	}
	if show(2) {
		fmt.Println("== Figure 2: the i-box invariant at step ⌊l⌋dn ==")
		fmt.Println(c.RenderKinds(res.Net))
	}
	if show(3) {
		fmt.Println("== Figure 3: Lemma 12 commutation (S_t, S_t*, δ(S',t)) ==")
		fmt.Print(figure3())
	}
	if show(4) {
		fmt.Println("== Figure 4: dimension-order (left) and farthest-first (right) constructions ==")
		fmt.Print(figure4())
	}
	if show(5) {
		fmt.Println("== Figure 5: the Vertical Phase ==")
		fmt.Print(clt.StripDiagram(10))
		fmt.Println()
	}
	if show(6) {
		fmt.Println("== Figure 6: Sort and Smooth (d=4), from a live protocol run ==")
		out, err := clt.DemoSortSmooth(4, [][]int{
			{6, 7, 1, 1}, {2, 8, 2, 4}, {3, 1, 6, 2}, {3, 4, 2, 6},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}
	if show(7) {
		fmt.Println("== Figure 7: subphases ==")
		fmt.Print(clt.SubphaseSequence())
	}
	_ = sim.CentralQueue
}

func figure3() string {
	return strings.Join([]string{
		"        delta(., 1) with X_t exchanged",
		"  S_{t-1} ----------------------------> S_t",
		"     |                                   |",
		"     | exchange <X_t..X_L>               | exchange <X_{t+1}..X_L>",
		"     v                                   v",
		" delta(S', t-1) ----------------------> delta(S', t)",
		"              delta(., 1)",
		"",
		"Exchanging destinations of same-view packets commutes with one step",
		"of any destination-exchangeable algorithm (Lemmas 10-12); the code",
		"checks the square numerically via adversary.ConfigsEqual.",
		"",
	}, "\n")
}

func figure4() string {
	var b strings.Builder
	left := [][]string{
		{"destinations:", "the cn easternmost columns, northern (1-c)n rows"},
		{"sources:", "the westernmost (1-c)n nodes of the cn southern rows"},
	}
	right := [][]string{
		{"N_i-column:", "column n+1-i (class 1 owns the east edge)"},
		{"invariant:", "within a row, higher classes sit west of lower ones"},
	}
	b.WriteString("dimension-order construction:\n")
	for _, l := range left {
		fmt.Fprintf(&b, "  %-14s %s\n", l[0], l[1])
	}
	b.WriteString("farthest-first construction:\n")
	for _, r := range right {
		fmt.Fprintf(&b, "  %-14s %s\n", r[0], r[1])
	}
	b.WriteString("(run `lowerbound -construction dimorder|ff` to execute them)\n\n")
	return b.String()
}
