package main

import "testing"

func TestParseScaleID(t *testing.T) {
	for _, tc := range []struct {
		id  string
		key string
		w   int
		ok  bool
	}{
		{"S64w1", "S64", 1, true},
		{"S1024w8", "S1024", 8, true},
		{"E1", "", 0, false},
		{"E12", "", 0, false},
	} {
		key, w, ok := parseScaleID(tc.id)
		if key != tc.key || w != tc.w || ok != tc.ok {
			t.Errorf("parseScaleID(%q) = (%q, %d, %v), want (%q, %d, %v)",
				tc.id, key, w, ok, tc.key, tc.w, tc.ok)
		}
	}
}

func TestFillSpeedups(t *testing.T) {
	rs := []CellResult{
		{ID: "E5", NSPerStep: 100},
		{ID: "S64w1", NSPerStep: 1000},
		{ID: "S64w4", NSPerStep: 400},
		{ID: "S256w1", NSPerStep: 2000},
		{ID: "S256w2", NSPerStep: 0}, // degenerate: no steps ran
	}
	fillSpeedups(rs)
	if rs[0].SpeedupVsW1 != 0 {
		t.Errorf("E-cell gained a speedup: %v", rs[0].SpeedupVsW1)
	}
	if rs[1].SpeedupVsW1 != 0 {
		t.Errorf("w1 cell gained a speedup: %v", rs[1].SpeedupVsW1)
	}
	if rs[2].SpeedupVsW1 != 2.5 {
		t.Errorf("S64w4 speedup = %v, want 1000/400 = 2.5", rs[2].SpeedupVsW1)
	}
	if rs[4].SpeedupVsW1 != 0 {
		t.Errorf("zero ns/step cell gained a speedup: %v", rs[4].SpeedupVsW1)
	}
}
