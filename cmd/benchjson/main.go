// Command benchjson runs one representative cell per experiment of the
// reproduction (E1–E14, the same shapes as the root bench_test.go
// benchmarks, at quick sizes) plus the engine scaling matrix (S cells:
// n×workers on the torus, n ∈ {64, 256, 1024}, workers ∈ {1, 2, 4, 8})
// and the online streaming-injection cells (O cells: bounded-buffer
// admission under drop and retry policies, reporting throughput and
// refusal rate) and writes the measurements as machine-readable JSON —
// the repo's perf trajectory file. Each cell reports wall time, engine steps, ns/step,
// makespan, peak queue occupancy, and allocation counts; S cells with
// workers > 1 additionally report speedup_vs_w1 against the same-size w1
// cell. The schema is documented in docs/OBSERVABILITY.md.
//
// Usage:
//
//	benchjson                       # writes out/BENCH_PR8.json
//	benchjson -out my.json -label x # custom output path and label
//	benchjson -workers 4            # parallel cells (wall/alloc numbers noisy)
//
// By default cells run sequentially (workers = 1) so per-cell timings and
// allocation deltas are honest; raise -workers to trade measurement
// accuracy for speed. Cells always dispatch through internal/par, the
// same pool the experiment harness uses.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"meshroute/internal/adversary"
	"meshroute/internal/clt"
	"meshroute/internal/dex"
	"meshroute/internal/grid"
	"meshroute/internal/par"
	"meshroute/internal/routers"
	"meshroute/internal/scenario"
	"meshroute/internal/sim"
	"meshroute/internal/workload"
)

// Schema is the format identifier written to the output file and
// documented in docs/OBSERVABILITY.md.
const Schema = "meshroute-bench/v1"

// CellResult is one cell's measurements (the "cells" array element of the
// BENCH json schema).
type CellResult struct {
	// ID is the experiment the cell represents: E1..E14 for the paper's
	// experiments, or S<n>w<workers> for the engine scaling matrix.
	ID string `json:"id"`
	// Name describes the concrete instance (router, n, k, workload).
	Name string `json:"name"`
	// Steps is the number of engine (or phase-simulation) steps executed.
	Steps int `json:"steps"`
	// WallNS is the cell's wall-clock duration in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// NSPerStep is WallNS / Steps.
	NSPerStep float64 `json:"ns_per_step"`
	// Makespan is the headline step count of the cell: the delivery
	// makespan, the forced lower bound, or the synchronized schedule
	// length, depending on the experiment.
	Makespan int `json:"makespan"`
	// PeakQueue is the peak queue (or node) occupancy observed.
	PeakQueue int `json:"peak_queue"`
	// Allocs is the number of heap allocations during the cell (exact
	// only with -workers 1).
	Allocs uint64 `json:"allocs"`
	// AllocBytes is the number of bytes allocated during the cell
	// (exact only with -workers 1).
	AllocBytes uint64 `json:"alloc_bytes"`
	// SpeedupVsW1 is, for scaling-matrix cells with workers > 1, the
	// same-size w1 cell's NSPerStep divided by this cell's — the parallel
	// pipeline's measured speedup. Omitted elsewhere. Meaningful only when
	// GOMAXPROCS covers the worker count.
	SpeedupVsW1 float64 `json:"speedup_vs_w1,omitempty"`
	// Throughput is, for online (O) cells, delivered packets per step over
	// the run. Omitted elsewhere.
	Throughput float64 `json:"throughput,omitempty"`
	// RefusalRate is, for online (O) cells, refused / (admitted + refused)
	// over the run — the bounded-buffer admission pressure. Omitted
	// elsewhere (and when the queues never filled).
	RefusalRate float64 `json:"refusal_rate,omitempty"`
	// Congestion, Dilation and CDRatio are the workload's analyzed C and
	// D and the efficiency ratio makespan/(C+D) (docs/ANALYSIS.md).
	// Present on every scenario-built cell (specCell forces analysis);
	// omitted on phase-simulation, lower-bound and constructed-
	// permutation cells, which bypass the scenario layer.
	Congestion int     `json:"congestion,omitempty"`
	Dilation   int     `json:"dilation,omitempty"`
	CDRatio    float64 `json:"cd_ratio,omitempty"`
}

// Output is the top-level BENCH json document.
type Output struct {
	// Schema identifies the format version.
	Schema string `json:"schema"`
	// Label tags the run (e.g. "PR6").
	Label string `json:"label"`
	// Go is the toolchain version the run was built with.
	Go string `json:"go"`
	// Workers is the cell-level parallelism the run used (timings are
	// exact only at 1).
	Workers int `json:"workers"`
	// Cells holds one entry per cell: E1..E14 in order, then the online
	// admission cells (O*), then the S<n>w<workers> scaling matrix.
	Cells []CellResult `json:"cells"`
}

// stats is what a cell's body reports back to the measurement driver.
type stats struct {
	steps       int
	makespan    int
	peakQueue   int
	throughput  float64
	refusalRate float64
	congestion  int
	dilation    int
	cdRatio     float64
}

type cell struct {
	id   string
	name string
	run  func() (stats, error)
}

func dimOrder() sim.Algorithm { return dex.NewAdapter(routers.DimOrderFIFO{}) }
func zigzag() sim.Algorithm   { return dex.NewAdapter(routers.ZigZag{}) }
func thm15() sim.Algorithm    { return dex.NewAdapter(routers.Thm15{}) }

// specCell executes a scenario spec and reports makespan and peak queue;
// sim-engine cells go through the scenario layer, same as the CLIs and the
// experiment harness.
func specCell(s *scenario.Spec, requireDone bool) (stats, error) {
	// Every sim-engine cell carries the C/D efficiency columns; the
	// analyzer runs inside the timed region, so its (one-off, per-run)
	// cost is part of the cell's wall clock, not the per-step figure the
	// gate watches.
	s.Analysis = true
	var r scenario.Runner
	res, err := r.Run(context.Background(), s)
	if err != nil {
		return stats{}, err
	}
	if res.Err != nil {
		return stats{}, res.Err
	}
	if requireDone && !res.Stats.Done {
		return stats{}, fmt.Errorf("incomplete after %d steps", res.Steps)
	}
	st := stats{steps: res.Steps, makespan: res.Stats.Makespan, peakQueue: res.Stats.MaxQueue}
	if res.Stats.Online {
		st.throughput = res.Stats.Throughput
		st.refusalRate = res.Stats.RefusalRate()
	}
	if res.Stats.Analyzed {
		st.congestion = res.Stats.Congestion
		st.dilation = res.Stats.Dilation
		st.cdRatio = res.Stats.CDRatio
	}
	return st, nil
}

// onlineCells measures the streaming-injection path end to end: the same
// shape as the committed online golden scenario (bernoulli arrivals on
// n=64, k=4, dimorder) under each admission policy. These are the cells
// that carry the throughput and refusal_rate schema fields.
func onlineCells() []cell {
	var cs []cell
	for _, adm := range []string{scenario.AdmissionDrop, scenario.AdmissionRetry} {
		adm := adm
		cs = append(cs, cell{
			id:   "O" + adm[:1],
			name: "online-bernoulli-n64-k4-" + adm,
			run: func() (stats, error) {
				return specCell(&scenario.Spec{
					N: 64, K: 4, Router: "dimorder",
					Workload: scenario.Workload{
						Kind: scenario.KindOnline, Seed: 11, Horizon: 200,
						Rate: 0.08, Process: scenario.ProcessBernoulli, Admission: adm,
					},
				}, false)
			},
		})
	}
	return cs
}

func cells() []cell {
	return []cell{
		{"E1", "lowerbound-general-dimorder-n60-k1", func() (stats, error) {
			c, err := adversary.NewConstruction(60, 1)
			if err != nil {
				return stats{}, err
			}
			res, err := c.Run(dimOrder())
			if err != nil {
				return stats{}, err
			}
			return stats{steps: res.Steps, makespan: res.Steps, peakQueue: res.Net.Metrics.MaxQueueLen}, nil
		}},
		{"E2", "lowerbound-dimorder-thm15-n60-k1-completion", func() (stats, error) {
			c, err := adversary.NewDOConstruction(60, 4*1+1)
			if err != nil {
				return stats{}, err
			}
			c.Queues = sim.PerInlinkQueues
			c.NetK = 1
			res, err := c.Run(thm15())
			if err != nil {
				return stats{}, err
			}
			net, err := c.Replay(res, thm15())
			if err != nil {
				return stats{}, err
			}
			mk, done, err := adversary.RunToCompletion(net, thm15(), 100*60*60)
			if err != nil || !done {
				return stats{}, fmt.Errorf("completion failed: %v", err)
			}
			return stats{steps: res.Steps + mk, makespan: mk, peakQueue: net.Metrics.MaxQueueLen}, nil
		}},
		{"E3", "lowerbound-farthestfirst-n64-k1", func() (stats, error) {
			c, err := adversary.NewFFConstruction(64, 1)
			if err != nil {
				return stats{}, err
			}
			res, err := c.Run(routers.DimOrderFF{})
			if err != nil {
				return stats{}, err
			}
			return stats{steps: res.Steps, makespan: res.Steps, peakQueue: res.Net.Metrics.MaxQueueLen}, nil
		}},
		{"E4", "thm15-reversal-n32-k1", func() (stats, error) {
			return specCell(&scenario.Spec{
				N: 32, K: 1, Router: "thm15",
				Workload: scenario.Workload{Kind: scenario.KindReversal},
				MaxSteps: 500 * 32 * 32,
			}, true)
		}},
		{"E5", "clt-random-n27", func() (stats, error) {
			r, err := clt.New(clt.Config{N: 27})
			if err != nil {
				return stats{}, err
			}
			res, err := r.Route(workload.Random(grid.NewSquareMesh(27), 7))
			if err != nil {
				return stats{}, err
			}
			return stats{steps: res.TimeMeasured, makespan: res.TimeFormula, peakQueue: res.MaxQueue}, nil
		}},
		{"E6", "lowerbound-hh-n60-k1-h2", func() (stats, error) {
			c, err := adversary.NewHHConstruction(60, 1, 2)
			if err != nil {
				return stats{}, err
			}
			res, err := c.Run(dimOrder())
			if err != nil {
				return stats{}, err
			}
			return stats{steps: res.Steps, makespan: res.Steps, peakQueue: res.Net.Metrics.MaxQueueLen}, nil
		}},
		{"E7", "lowerbound-torus120-submesh60-k1", func() (stats, error) {
			p, err := adversary.NewParams(60, 1)
			if err != nil {
				return stats{}, err
			}
			c := &adversary.Construction{Par: p, Topo: grid.NewSquareTorus(120), H: 1}
			res, err := c.Run(dimOrder())
			if err != nil {
				return stats{}, err
			}
			return stats{steps: res.Steps, makespan: res.Steps, peakQueue: res.Net.Metrics.MaxQueueLen}, nil
		}},
		{"E8", "thm15-random-n32-k2", func() (stats, error) {
			return specCell(&scenario.Spec{
				N: 32, K: 2, Router: "thm15",
				Workload: scenario.Workload{Kind: scenario.KindRandom, Seed: 3},
				MaxSteps: 500 * 32,
			}, true)
		}},
		{"E9", "clt-on-constructed-perm-n81", func() (stats, error) {
			c, err := adversary.NewConstruction(81, 1)
			if err != nil {
				return stats{}, err
			}
			res, err := c.Run(dimOrder())
			if err != nil {
				return stats{}, err
			}
			r, err := clt.New(clt.Config{N: 81})
			if err != nil {
				return stats{}, err
			}
			cres, err := r.Route(&workload.Permutation{Pairs: res.Permutation})
			if err != nil {
				return stats{}, err
			}
			return stats{steps: cres.TimeMeasured, makespan: cres.TimeFormula, peakQueue: cres.MaxQueue}, nil
		}},
		{"E10", "lowerbound-stray-n120-k1-delta0", func() (stats, error) {
			c, err := adversary.NewDeltaConstruction(120, 1, 0)
			if err != nil {
				return stats{}, err
			}
			res, err := c.Run(dex.NewAdapter(routers.StrayDimOrder{Delta: 0}))
			if err != nil {
				return stats{}, err
			}
			return stats{steps: res.Steps, makespan: res.Steps, peakQueue: res.Net.Metrics.MaxQueueLen}, nil
		}},
		{"E11", "cross-hardness-zigzag-on-dimorder-perm-n120-k2", func() (stats, error) {
			c, err := adversary.NewConstruction(120, 2)
			if err != nil {
				return stats{}, err
			}
			res, err := c.Run(dimOrder())
			if err != nil {
				return stats{}, err
			}
			// CheckInvariants stays off: this is a timing cell, and the
			// pre-scenario code ran without the checker.
			return specCell(&scenario.Spec{
				N: 120, K: 2, Router: "zigzag",
				CheckInvariants: scenario.Bool(false),
				Workload:        scenario.Workload{Kind: scenario.KindPairs, Pairs: res.Permutation},
				MaxSteps:        40 * res.Steps,
			}, false)
		}},
		{"E12", "dynamic-thm15-n32-k2-load0.6", func() (stats, error) {
			const n = 32
			return specCell(&scenario.Spec{
				N: n, K: 2, Router: "thm15",
				Workload: scenario.Workload{
					Kind: scenario.KindBernoulli, Seed: 7,
					Rate: 0.6 * 4 / float64(n), Horizon: 16 * n,
				},
			}, false)
		}},
		{"E13", "randomized-on-zigzag-perm-n120-k4-seed1", func() (stats, error) {
			c, err := adversary.NewConstruction(120, 1)
			if err != nil {
				return stats{}, err
			}
			res, err := c.Run(zigzag())
			if err != nil {
				return stats{}, err
			}
			return specCell(&scenario.Spec{
				N: 120, K: 4, Router: "rand-zigzag", Seed: 1,
				CheckInvariants: scenario.Bool(false),
				Workload:        scenario.Workload{Kind: scenario.KindPairs, Pairs: res.Permutation},
				MaxSteps:        40 * res.Steps,
			}, false)
		}},
		{"E14", "openproblem-zigzag-own-perm-n120-k2-completion", func() (stats, error) {
			c, err := adversary.NewConstruction(120, 2)
			if err != nil {
				return stats{}, err
			}
			res, err := c.Run(zigzag())
			if err != nil {
				return stats{}, err
			}
			net, err := c.Replay(res, zigzag())
			if err != nil {
				return stats{}, err
			}
			mk, _, err := adversary.RunToCompletion(net, zigzag(), 60*res.Steps)
			if err != nil {
				return stats{}, err
			}
			return stats{steps: res.Steps + mk, makespan: mk, peakQueue: net.Metrics.MaxQueueLen}, nil
		}},
	}
}

// scaleCells is the n×workers engine scaling matrix: a fully loaded
// transpose permutation on the torus (one packet per node, 4K / 65K / 1M
// packets) stepped for n/2 steps — below the makespan, so every step runs
// saturated and ns/step measures the steady-state per-packet cost at each
// size and worker count. docs/SCALING.md reads its numbers from these
// cells.
func scaleCells() []cell {
	var cs []cell
	for _, n := range []int{64, 256, 1024} {
		for _, workers := range []int{1, 2, 4, 8} {
			n, workers := n, workers
			cs = append(cs, cell{
				id:   fmt.Sprintf("S%dw%d", n, workers),
				name: fmt.Sprintf("scale-zigzag-torus-n%d-w%d-k4", n, workers),
				run: func() (stats, error) {
					return specCell(&scenario.Spec{
						Topology: scenario.TopoTorus,
						N:        n, K: 4, Router: "zigzag",
						Workers:  workers,
						Workload: scenario.Workload{Kind: scenario.KindTranspose},
						MaxSteps: n / 2,
					}, false)
				},
			})
		}
	}
	return cs
}

// fillSpeedups sets SpeedupVsW1 on every scaling-matrix cell with
// workers > 1: the same-size w1 cell's ns/step divided by the cell's own.
// Runs as a post-pass because cells may execute in any order under
// -workers > 1.
func fillSpeedups(results []CellResult) {
	w1 := map[string]float64{} // "S<n>" → w1 ns/step
	for _, r := range results {
		if n, w, ok := parseScaleID(r.ID); ok && w == 1 {
			w1[n] = r.NSPerStep
		}
	}
	for i := range results {
		r := &results[i]
		if n, w, ok := parseScaleID(r.ID); ok && w > 1 && w1[n] > 0 && r.NSPerStep > 0 {
			r.SpeedupVsW1 = w1[n] / r.NSPerStep
		}
	}
}

// parseScaleID splits a scaling-matrix cell ID "S<n>w<workers>" into its
// size key ("S<n>") and worker count; ok is false for E-cells.
func parseScaleID(id string) (sizeKey string, workers int, ok bool) {
	var n int
	if _, err := fmt.Sscanf(id, "S%dw%d", &n, &workers); err != nil || id[0] != 'S' {
		return "", 0, false
	}
	return fmt.Sprintf("S%d", n), workers, true
}

func main() {
	out := flag.String("out", filepath.Join("out", "BENCH_PR8.json"), "output path for the BENCH json")
	label := flag.String("label", "PR8", "label recorded in the output")
	workers := flag.Int("workers", 1, "cell-level parallelism (timings and alloc counts are exact only at 1)")
	flag.Parse()

	cs := append(append(cells(), onlineCells()...), scaleCells()...)
	results := make([]CellResult, len(cs))
	_, err := par.Map(len(cs), *workers, func(i int) (struct{}, error) {
		c := cs[i]
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		st, err := c.run()
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return struct{}{}, fmt.Errorf("%s (%s): %w", c.id, c.name, err)
		}
		nsPerStep := 0.0
		if st.steps > 0 {
			nsPerStep = float64(wall.Nanoseconds()) / float64(st.steps)
		}
		results[i] = CellResult{
			ID: c.id, Name: c.name,
			Steps: st.steps, WallNS: wall.Nanoseconds(), NSPerStep: nsPerStep,
			Makespan: st.makespan, PeakQueue: st.peakQueue,
			Allocs: after.Mallocs - before.Mallocs, AllocBytes: after.TotalAlloc - before.TotalAlloc,
			Throughput: st.throughput, RefusalRate: st.refusalRate,
			Congestion: st.congestion, Dilation: st.dilation, CDRatio: st.cdRatio,
		}
		fmt.Fprintf(os.Stderr, "%-4s %-48s %8d steps %10.0f ns/step  makespan %6d  peakQ %4d\n",
			c.id, c.name, st.steps, nsPerStep, st.makespan, st.peakQueue)
		return struct{}{}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fillSpeedups(results)

	doc := Output{Schema: Schema, Label: *label, Go: runtime.Version(), Workers: *workers, Cells: results}
	if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d cells to %s\n", len(results), *out)
}
