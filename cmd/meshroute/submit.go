package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"meshroute/internal/scenario"
	"meshroute/internal/service"
)

// runSubmit ships a spec file (single spec or sweep array) to a
// meshrouted server, waits for the results, and prints each job's
// statistics exactly like a local run. Progress notes go to stderr so
// stdout stays diffable against `meshroute -scenario`.
//
// Transient refusals — connection errors, 429 backpressure, 5xx — are
// retried with exponential backoff and jitter until -submit-timeout
// runs out; a 429's Retry-After header, when present, overrides the
// computed backoff.
func runSubmit(ctx context.Context, o cliOptions) error {
	data, err := os.ReadFile(o.submitFile)
	if err != nil {
		return err
	}
	specs, err := parseSubmission(data)
	if err != nil {
		return err
	}
	base := strings.TrimRight(o.server, "/")
	client := &http.Client{Timeout: 30 * time.Second}
	if o.submitTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.submitTimeout)
		defer cancel()
	}

	accepted, err := postJobsRetry(ctx, client, base, data, len(specs) > 1 || bytes.TrimSpace(data)[0] == '[')
	if err != nil {
		return err
	}
	if len(accepted) != len(specs) {
		return fmt.Errorf("server accepted %d jobs for %d specs", len(accepted), len(specs))
	}

	var firstErr error
	for i, st := range accepted {
		note := "queued"
		if st.CacheHit {
			note = "served from cache"
		}
		fmt.Fprintf(os.Stderr, "job %s: %s (fingerprint %.12s…)\n", st.ID, note, st.Fingerprint)
		final, err := pollJob(ctx, client, base, st.ID)
		if err != nil {
			return err
		}
		spec := specs[i]
		switch final.State {
		case service.StateDone:
			printStats(spec.Router, spec.N, spec.K, final.Stats.RouteStats())
		case service.StateCanceled, service.StateFailed:
			fmt.Fprintf(os.Stderr, "job %s %s: %s\n", final.ID, final.State, final.Error)
			if final.Stats != nil {
				fmt.Printf("partial results:\n")
				printStats(spec.Router, spec.N, spec.K, final.Stats.RouteStats())
			}
			if final.Diagnostics != "" {
				fmt.Printf("diagnostics: %s\n", final.Diagnostics)
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("job %s ended %s: %s", final.ID, final.State, final.Error)
			}
		default:
			return fmt.Errorf("job %s in non-terminal state %s after polling", final.ID, final.State)
		}
	}
	return firstErr
}

// parseSubmission validates the file locally with the same strict parser
// the server uses, so mistakes are caught before any network round trip,
// and returns the specs in submission order for printing.
func parseSubmission(data []byte) ([]*scenario.Spec, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("empty submission")
	}
	if trimmed[0] != '[' {
		spec, err := scenario.Parse(data)
		if err != nil {
			return nil, err
		}
		return []*scenario.Spec{spec}, nil
	}
	var raw []json.RawMessage
	if err := json.Unmarshal(trimmed, &raw); err != nil {
		return nil, fmt.Errorf("sweep array: %w", err)
	}
	specs := make([]*scenario.Spec, len(raw))
	for i, r := range raw {
		spec, err := scenario.Parse(r)
		if err != nil {
			return nil, fmt.Errorf("sweep spec %d: %w", i, err)
		}
		specs[i] = spec
	}
	return specs, nil
}

// transientError marks a submission refusal worth retrying; retryAfter
// carries the server's Retry-After advice (0 = use computed backoff).
type transientError struct {
	err        error
	retryAfter time.Duration
}

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// postJobsRetry wraps postJobs with exponential backoff and ±50% jitter
// on transient errors, until ctx (bounded by -submit-timeout) expires.
// A 429's Retry-After advice replaces the computed backoff for that
// attempt.
func postJobsRetry(ctx context.Context, client *http.Client, base string, body []byte, sweep bool) ([]service.JobStatus, error) {
	const backoffBase = 500 * time.Millisecond
	const backoffCap = 10 * time.Second
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := backoffBase
	for attempt := 1; ; attempt++ {
		accepted, err := postJobs(ctx, client, base, body, sweep)
		var te *transientError
		if err == nil || !errors.As(err, &te) {
			return accepted, err
		}
		wait := backoff/2 + time.Duration(rng.Int63n(int64(backoff))) // uniform in [b/2, 3b/2)
		if te.retryAfter > 0 {
			wait = te.retryAfter
		}
		if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) < wait {
			return nil, fmt.Errorf("giving up after %d attempts: %w", attempt, te.err)
		}
		fmt.Fprintf(os.Stderr, "submit attempt %d: %v — retrying in %s\n", attempt, te.err, wait.Round(time.Millisecond))
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("giving up after %d attempts: %w", attempt, te.err)
		case <-time.After(wait):
		}
		if backoff < backoffCap {
			backoff *= 2
		}
	}
}

// retryAfterHeader parses a Retry-After header as delay seconds (the
// only form meshrouted emits); 0 means absent or unparseable.
func retryAfterHeader(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After")))
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// postJobs submits the raw file bytes and returns the accepted job
// statuses (one for a single spec, several for a sweep). Refusals that
// could succeed later come back as *transientError.
func postJobs(ctx context.Context, client *http.Client, base string, body []byte, sweep bool) ([]service.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, &transientError{err: fmt.Errorf("connect to %s: %w", base, err)}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, &transientError{err: fmt.Errorf("read response: %w", err)}
	}
	if resp.StatusCode != http.StatusAccepted {
		msg := strings.TrimSpace(string(payload))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(payload, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			return nil, &transientError{
				err:        fmt.Errorf("server busy (queue full): %s", msg),
				retryAfter: retryAfterHeader(resp),
			}
		case resp.StatusCode == http.StatusServiceUnavailable:
			// Draining: this process refuses, but its replacement may be
			// up before the retry budget runs out.
			return nil, &transientError{err: fmt.Errorf("server draining: %s", msg)}
		case resp.StatusCode >= 500:
			return nil, &transientError{err: fmt.Errorf("server error (%s): %s", resp.Status, msg)}
		default:
			return nil, fmt.Errorf("server refused submission (%s): %s", resp.Status, msg)
		}
	}
	if !sweep {
		var st service.JobStatus
		if err := json.Unmarshal(payload, &st); err != nil {
			return nil, fmt.Errorf("decode job status: %w", err)
		}
		return []service.JobStatus{st}, nil
	}
	var resp2 struct {
		Jobs []service.JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(payload, &resp2); err != nil {
		return nil, fmt.Errorf("decode sweep response: %w", err)
	}
	return resp2.Jobs, nil
}

// pollJob watches a job until it reaches a terminal state, riding out a
// few consecutive transient poll failures (a blip should not orphan an
// accepted job).
func pollJob(ctx context.Context, client *http.Client, base, id string) (service.JobStatus, error) {
	const maxConsecutiveFailures = 5
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	failures := 0
	for {
		st, err := getJob(ctx, client, base, id)
		switch {
		case err == nil:
			failures = 0
			if st.State.Terminal() {
				return st, nil
			}
		case errors.As(err, new(*transientError)) && ctx.Err() == nil:
			failures++
			if failures >= maxConsecutiveFailures {
				return service.JobStatus{}, fmt.Errorf("poll job %s: %d consecutive failures: %w", id, failures, err)
			}
		default:
			return service.JobStatus{}, err
		}
		select {
		case <-ctx.Done():
			return service.JobStatus{}, ctx.Err()
		case <-ticker.C:
		}
	}
}

func getJob(ctx context.Context, client *http.Client, base, id string) (service.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id, nil)
	if err != nil {
		return service.JobStatus{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return service.JobStatus{}, &transientError{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		return service.JobStatus{}, &transientError{err: fmt.Errorf("poll job %s: %s", id, resp.Status)}
	}
	if resp.StatusCode != http.StatusOK {
		return service.JobStatus{}, fmt.Errorf("poll job %s: %s", id, resp.Status)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.JobStatus{}, err
	}
	return st, nil
}
