// Command meshroute runs one routing algorithm on one workload and prints
// the routing statistics.
//
// Usage:
//
//	meshroute -router thm15 -n 64 -k 2 -workload reversal
//	meshroute -router clt -n 81 -workload random -seed 7
//	meshroute -router dimorder -n 32 -k 4 -workload hh -h 2 -torus
//
// Runs are described by scenario specs (internal/scenario): the flags
// build one, -dump-scenario prints it, and -scenario replays a committed
// spec file, so any run — including every pinned golden-digest scenario
// under testdata/scenarios/ — is reproducible from a single JSON file:
//
//	meshroute -scenario testdata/scenarios/thm15-n16-k2.json
//	meshroute -router zigzag -n 24 -workload reversal -dump-scenario > run.json
//
// Interrupting a run (SIGINT/SIGTERM) stops it between steps and prints
// the partial statistics and diagnostics instead of discarding them.
//
// Observability (see docs/OBSERVABILITY.md):
//
//	meshroute -router thm15 -n 64 -workload reversal -metrics-out run.jsonl
//	meshroute -router clt -n 81 -workload random -metrics-out spans.jsonl
//	meshroute -router thm15 -n 128 -workload reversal -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"meshroute"
	"meshroute/internal/clt"
	"meshroute/internal/obs"
	"meshroute/internal/scenario"
	"meshroute/internal/sim"
	"meshroute/internal/trace"
	"meshroute/internal/viz"
)

func main() {
	var (
		router        = flag.String("router", meshroute.RouterThm15, fmt.Sprintf("router: one of %v or clt", meshroute.RouterNames()))
		n             = flag.Int("n", 32, "mesh side length")
		k             = flag.Int("k", 2, "queue capacity per queue")
		wl            = flag.String("workload", "random", "workload: random|random-dest|transpose|reversal|bitrev|rotation|hh")
		seed          = flag.Int64("seed", 1, "workload seed")
		h             = flag.Int("h", 2, "h for the h-h workload")
		torus         = flag.Bool("torus", false, "use a torus instead of a mesh")
		maxSteps      = flag.Int("steps", 0, "step budget (0 = automatic)")
		improved      = flag.Bool("improved-q", false, "clt: use the 564n constant")
		showViz       = flag.Bool("viz", false, "print occupancy/traffic heatmaps (non-clt routers)")
		traceFile     = flag.String("trace", "", "write a JSON-lines step trace to this file")
		metricsOut    = flag.String("metrics-out", "", "write metrics JSONL (per-step samples; clt: phase spans) to this file")
		cpuprofile    = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile    = flag.String("memprofile", "", "write a pprof heap profile to this file")
		scenarioFile  = flag.String("scenario", "", "run this scenario spec file instead of building one from the flags")
		dumpScenario  = flag.Bool("dump-scenario", false, "print the run's scenario spec as JSON and exit without running")
		submitFile    = flag.String("submit", "", "submit this scenario spec file (or sweep array) to a meshrouted server instead of running locally")
		server        = flag.String("server", "http://127.0.0.1:8421", "meshrouted base URL for -submit")
		submitTimeout = flag.Duration("submit-timeout", 2*time.Minute, "overall budget for -submit, including retries on transient errors (0 = no limit)")
		routerSeed    = flag.Uint64("router-seed", 0, "seed for a randomized router's decisions (rand-zigzag; 0 = default stream)")
		workers       = flag.Int("workers", 0, "engine worker count for intra-step parallel scheduling (0 = serial)")
		analyze       = flag.Bool("analyze", false, "compute the workload's congestion C and dilation D and report makespan/(C+D) (see docs/ANALYSIS.md)")

		faultSeed   = flag.Int64("fault-seed", 1, "fault schedule seed")
		faultLinks  = flag.Int("fault-links", 0, "number of link-failure episodes to inject (0 = no link faults)")
		faultDown   = flag.Int("fault-down", 50, "mean duration of a transient link failure, in steps")
		faultPerm   = flag.Float64("fault-perm", 0, "fraction of link failures that are permanent (0..1)")
		faultStalls = flag.Int("fault-stalls", 0, "number of node-stall episodes to inject")
		faultStall  = flag.Int("fault-stall", 20, "mean duration of a node stall, in steps")
		faultHoriz  = flag.Int("fault-horizon", 0, "fault onsets are uniform in [1,horizon] (0 = 4n, the traffic timescale)")
		faultAware  = flag.Bool("fault-aware", false, "use the router's fault-aware variant (zigzag, rand-zigzag)")
		watchdog    = flag.Int("watchdog", 0, "abort after this many steps without a delivery (0 = off)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var cpuOut *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		cpuOut = f
	}
	err := run(ctx, cliOptions{
		router: *router, n: *n, k: *k, wl: *wl, seed: *seed, h: *h, torus: *torus,
		maxSteps: *maxSteps, improved: *improved, showViz: *showViz,
		traceFile: *traceFile, metricsOut: *metricsOut,
		scenarioFile: *scenarioFile, dumpScenario: *dumpScenario,
		submitFile: *submitFile, server: *server, submitTimeout: *submitTimeout,
		routerSeed: *routerSeed, workers: *workers, analyze: *analyze,
		faultSeed: *faultSeed, faultLinks: *faultLinks, faultDown: *faultDown,
		faultPerm: *faultPerm, faultStalls: *faultStalls, faultStall: *faultStall,
		faultHoriz: *faultHoriz, faultAware: *faultAware, watchdog: *watchdog,
	})
	if cpuOut != nil {
		pprof.StopCPUProfile()
		if cerr := cpuOut.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if *memprofile != "" {
		if werr := writeHeapProfile(*memprofile); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		log.Fatal(err)
	}
}

// writeHeapProfile forces a GC (for up-to-date accounting) and writes the
// heap profile.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// cliOptions carries the parsed flag values.
type cliOptions struct {
	router                  string
	n, k                    int
	wl                      string
	seed                    int64
	h                       int
	torus                   bool
	maxSteps                int
	improved, showViz       bool
	traceFile, metricsOut   string
	scenarioFile            string
	dumpScenario            bool
	submitFile, server      string
	submitTimeout           time.Duration
	routerSeed              uint64
	workers                 int
	analyze                 bool
	faultSeed               int64
	faultLinks, faultStalls int
	faultDown, faultStall   int
	faultHoriz              int
	faultPerm               float64
	faultAware              bool
	watchdog                int
}

// spec assembles the scenario described by the flags.
func (o cliOptions) spec() (*scenario.Spec, error) {
	s := &scenario.Spec{
		N:          o.n,
		K:          o.k,
		Router:     o.router,
		FaultAware: o.faultAware,
		Seed:       o.routerSeed,
		Watchdog:   o.watchdog,
		Workers:    o.workers,
		MaxSteps:   o.maxSteps,
		MetricsOut: o.metricsOut,
		TraceOut:   o.traceFile,
		Analysis:   o.analyze,
	}
	if o.torus {
		s.Topology = scenario.TopoTorus
	}
	switch o.wl {
	case scenario.KindRandom, scenario.KindRandomDest:
		s.Workload = scenario.Workload{Kind: o.wl, Seed: o.seed}
	case scenario.KindTranspose, scenario.KindReversal, scenario.KindBitRev:
		s.Workload = scenario.Workload{Kind: o.wl}
	case scenario.KindRotation:
		s.Workload = scenario.Workload{Kind: o.wl, DX: o.n / 3, DY: o.n / 5}
	case scenario.KindHH:
		s.Workload = scenario.Workload{Kind: o.wl, H: o.h, Seed: o.seed}
	default:
		return nil, fmt.Errorf("unknown workload %q", o.wl)
	}
	if o.faultLinks > 0 || o.faultStalls > 0 {
		// Onsets must land while traffic is still in flight to matter, so
		// the default horizon is the delivery timescale (4n covers the
		// ~2n–3n makespan of permutation workloads), not the step budget.
		horizon := o.faultHoriz
		if horizon <= 0 {
			horizon = 4 * o.n
		}
		s.Faults = &scenario.Faults{
			Seed:           o.faultSeed,
			Horizon:        horizon,
			LinkFailures:   o.faultLinks,
			MeanDownSteps:  o.faultDown,
			PermanentFrac:  o.faultPerm,
			NodeStalls:     o.faultStalls,
			MeanStallSteps: o.faultStall,
		}
	}
	return s, nil
}

func run(ctx context.Context, o cliOptions) error {
	if o.submitFile != "" {
		return runSubmit(ctx, o)
	}
	if o.router == "clt" && o.scenarioFile == "" && !o.dumpScenario {
		return runCLT(o)
	}

	var spec *scenario.Spec
	var err error
	if o.scenarioFile != "" {
		spec, err = scenario.Load(o.scenarioFile)
		if err != nil {
			return err
		}
		// Presentation and output flags still apply to a loaded scenario.
		if o.metricsOut != "" {
			spec.MetricsOut = o.metricsOut
		}
		if o.traceFile != "" {
			spec.TraceOut = o.traceFile
		}
		if o.analyze {
			spec.Analysis = true
		}
	} else {
		spec, err = o.spec()
		if err != nil {
			return err
		}
		if err := spec.Validate(); err != nil {
			return err
		}
	}
	if o.dumpScenario {
		// Materialize the online kind's defaulted knobs so the dumped spec
		// spells out exactly what would run.
		spec.Workload.ApplyOnlineDefaults()
		if err := spec.Write(os.Stdout); err != nil {
			return err
		}
		// The fingerprint goes to stderr so stdout stays a clean spec file.
		if fp, err := spec.Fingerprint(); err == nil {
			fmt.Fprintf(os.Stderr, "fingerprint: %s\n", fp)
		}
		return nil
	}
	return runScenario(ctx, spec, o.showViz)
}

// runScenario executes one spec through the Runner and prints statistics —
// full on success, partial with diagnostics when the run aborts.
func runScenario(ctx context.Context, spec *scenario.Spec, showViz bool) error {
	run, err := spec.Build()
	if err != nil {
		return err
	}
	if run.Faults != nil {
		fmt.Printf("faults: %s (seed %d)\n", run.Faults, spec.Faults.Seed)
	}
	r := scenario.Runner{}
	if showViz {
		snapshotAt := spec.N / 2 // mid-flight occupancy
		r.StepHook = func(net *sim.Network, step int) {
			if step == snapshotAt {
				fmt.Printf("occupancy after %d steps:\n%s\n", snapshotAt, viz.Occupancy(net))
			}
		}
	}
	res, err := r.RunBuilt(ctx, run)
	if err != nil {
		return err
	}
	if spec.TraceOut != "" {
		fmt.Printf("trace: %d steps written to %s\n", res.Steps, spec.TraceOut)
	}
	if spec.MetricsOut != "" {
		fmt.Printf("metrics: %d step samples, %d spans written to %s\n",
			res.StepSamples, res.Spans, spec.MetricsOut)
	}
	if res.Err != nil {
		var cerr *sim.CanceledError
		if errors.As(res.Err, &cerr) {
			fmt.Printf("interrupted at step %d — partial results:\n", res.Net.Step())
		}
		printStats(spec.Router, spec.N, spec.K, res.Stats)
		fmt.Printf("diagnostics: %s\n", res.Net.CollectDiagnostics())
		return res.Err
	}
	printStats(spec.Router, spec.N, spec.K, res.Stats)
	if showViz && spec.TraceOut != "" {
		f, err := os.Open(spec.TraceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		steps, err := trace.Read(f)
		if err != nil {
			return err
		}
		a := trace.Analyze(steps)
		fmt.Printf("\n%s\ndelivery curve:\n%s", viz.LinkTraffic(run.Net.Topo, a), viz.DeliveryCurve(a, 8))
	}
	return nil
}

// runCLT routes with the Section 6 algorithm, which has its own phase
// structure and statistics and stays outside the scenario registry.
func runCLT(o cliOptions) error {
	if o.torus {
		return fmt.Errorf("the Section 6 algorithm targets the mesh")
	}
	topo := meshroute.NewMesh(o.n)
	var perm *meshroute.Permutation
	switch o.wl {
	case "random":
		perm = meshroute.RandomPermutation(topo, o.seed)
	case "random-dest":
		perm = meshroute.RandomDestinations(topo, o.seed)
	case "transpose":
		perm = meshroute.Transpose(topo)
	case "reversal":
		perm = meshroute.Reversal(topo)
	case "bitrev":
		perm = meshroute.BitReversal(topo)
	case "rotation":
		perm = meshroute.Rotation(topo, o.n/3, o.n/5)
	case "hh":
		hh := meshroute.RandomHH(topo, o.h, o.seed)
		perm = &meshroute.Permutation{Pairs: hh.Pairs}
	default:
		return fmt.Errorf("unknown workload %q", o.wl)
	}

	var sink *obs.JSONL
	var sinkOut *os.File
	if o.metricsOut != "" {
		f, err := os.Create(o.metricsOut)
		if err != nil {
			return err
		}
		sinkOut = f
		sink = obs.NewJSONL(f)
	}
	cfg := clt.Config{N: o.n, ImprovedQ: o.improved}
	if sink != nil {
		cfg.Sink = sink
	}
	r, err := clt.New(cfg)
	if err != nil {
		return err
	}
	res, err := r.Route(perm)
	if err != nil {
		return err
	}
	fmt.Printf("clt (Section 6, Theorem 34) on %d×%d, %d packets\n", o.n, o.n, res.Packets)
	fmt.Printf("  synchronized schedule: %d steps (%.1f·n; bound %d·n)\n",
		res.TimeFormula, float64(res.TimeFormula)/float64(o.n), map[bool]int{false: 972, true: 564}[o.improved])
	fmt.Printf("  measured work steps:   %d\n", res.TimeMeasured)
	fmt.Printf("  peak node occupancy:   %d (bound 834)\n", res.MaxQueue)
	fmt.Printf("  base case steps:       %d, tile iterations: %d\n", res.BaseCaseSteps, res.Iterations)
	if sink != nil {
		if err := sink.Close(); err != nil {
			return err
		}
		if err := sinkOut.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics: %d step samples, %d spans written to %s\n",
			sink.StepCount(), sink.SpanCount(), o.metricsOut)
	}
	return nil
}

func printStats(router string, n, k int, st meshroute.RouteStats) {
	fmt.Printf("%s on %d×%d (k=%d), %d packets\n", router, n, n, k, st.Total)
	fmt.Printf("  delivered: %d/%d (done=%v in %d steps)\n", st.Delivered, st.Total, st.Done, st.Steps)
	fmt.Printf("  makespan:  %d steps (%.2f·n)\n", st.Makespan, float64(st.Makespan)/float64(n))
	fmt.Printf("  max queue: %d, avg delay: %.1f\n", st.MaxQueue, st.AvgDelay)
	if st.FaultDrops > 0 {
		fmt.Printf("  fault drops: %d moves\n", st.FaultDrops)
	}
	if st.Online {
		fmt.Printf("  admission: %d offered, %d admitted, %d refused (rate %.3f), %d dropped\n",
			st.Offered, st.Admitted, st.Refused, st.RefusalRate(), st.Dropped)
		fmt.Printf("  throughput: %.3f delivered/step, delay p50/p95/p99: %.0f/%.0f/%.0f\n",
			st.Throughput, st.DelayP50, st.DelayP95, st.DelayP99)
	}
	if st.Analyzed {
		fmt.Printf("  analysis:  C=%d D=%d, cd_ratio=%.3f (makespan/(C+D))\n",
			st.Congestion, st.Dilation, st.CDRatio)
	}
}
