// Command meshroute runs one routing algorithm on one workload and prints
// the routing statistics.
//
// Usage:
//
//	meshroute -router thm15 -n 64 -k 2 -workload reversal
//	meshroute -router clt -n 81 -workload random -seed 7
//	meshroute -router dimorder -n 32 -k 4 -workload hh -h 2 -torus
//
// Observability (see docs/OBSERVABILITY.md):
//
//	meshroute -router thm15 -n 64 -workload reversal -metrics-out run.jsonl
//	meshroute -router clt -n 81 -workload random -metrics-out spans.jsonl
//	meshroute -router thm15 -n 128 -workload reversal -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"meshroute"
	"meshroute/internal/clt"
	"meshroute/internal/obs"
	"meshroute/internal/sim"
	"meshroute/internal/trace"
	"meshroute/internal/viz"
)

func main() {
	var (
		router     = flag.String("router", meshroute.RouterThm15, fmt.Sprintf("router: one of %v or clt", meshroute.RouterNames()))
		n          = flag.Int("n", 32, "mesh side length")
		k          = flag.Int("k", 2, "queue capacity per queue")
		wl         = flag.String("workload", "random", "workload: random|random-dest|transpose|reversal|bitrev|rotation|hh")
		seed       = flag.Int64("seed", 1, "workload seed")
		h          = flag.Int("h", 2, "h for the h-h workload")
		torus      = flag.Bool("torus", false, "use a torus instead of a mesh")
		maxSteps   = flag.Int("steps", 0, "step budget (0 = automatic)")
		improved   = flag.Bool("improved-q", false, "clt: use the 564n constant")
		showViz    = flag.Bool("viz", false, "print occupancy/traffic heatmaps (non-clt routers)")
		traceFile  = flag.String("trace", "", "write a JSON-lines step trace to this file")
		metricsOut = flag.String("metrics-out", "", "write metrics JSONL (per-step samples; clt: phase spans) to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")

		faultSeed   = flag.Int64("fault-seed", 1, "fault schedule seed")
		faultLinks  = flag.Int("fault-links", 0, "number of link-failure episodes to inject (0 = no link faults)")
		faultDown   = flag.Int("fault-down", 50, "mean duration of a transient link failure, in steps")
		faultPerm   = flag.Float64("fault-perm", 0, "fraction of link failures that are permanent (0..1)")
		faultStalls = flag.Int("fault-stalls", 0, "number of node-stall episodes to inject")
		faultStall  = flag.Int("fault-stall", 20, "mean duration of a node stall, in steps")
		faultHoriz  = flag.Int("fault-horizon", 0, "fault onsets are uniform in [1,horizon] (0 = 4n, the traffic timescale)")
		faultAware  = flag.Bool("fault-aware", false, "use the router's fault-aware variant (zigzag, rand-zigzag)")
		watchdog    = flag.Int("watchdog", 0, "abort after this many steps without a delivery (0 = off)")
	)
	flag.Parse()

	fopts := faultOpts{
		seed: *faultSeed, links: *faultLinks, down: *faultDown, perm: *faultPerm,
		stalls: *faultStalls, stall: *faultStall, horizon: *faultHoriz,
		aware: *faultAware, watchdog: *watchdog,
	}

	var cpuOut *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		cpuOut = f
	}
	err := run(*router, *n, *k, *wl, *seed, *h, *torus, *maxSteps, *improved, *showViz, *traceFile, *metricsOut, fopts)
	if cpuOut != nil {
		pprof.StopCPUProfile()
		if cerr := cpuOut.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if *memprofile != "" {
		if werr := writeHeapProfile(*memprofile); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		log.Fatal(err)
	}
}

// writeHeapProfile forces a GC (for up-to-date accounting) and writes the
// heap profile.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// faultOpts carries the -fault-* and -watchdog flag values.
type faultOpts struct {
	seed          int64
	links, stalls int
	down, stall   int
	horizon       int
	perm          float64
	aware         bool
	watchdog      int
}

// schedule builds the fault schedule from the flags, or nil when no faults
// were requested. Onsets must land while traffic is still in flight to
// matter, so the default horizon is the delivery timescale (4n covers the
// ~2n–3n makespan of permutation workloads), not the step budget.
func (o faultOpts) schedule(topo meshroute.Topology, n int) (*meshroute.FaultSchedule, error) {
	if o.links == 0 && o.stalls == 0 {
		return nil, nil
	}
	horizon := o.horizon
	if horizon <= 0 {
		horizon = 4 * n
	}
	return meshroute.GenerateFaults(topo, meshroute.FaultConfig{
		Seed:          o.seed,
		Horizon:       horizon,
		LinkFailures:  o.links,
		MeanDownSteps: o.down,
		PermanentFrac: o.perm,
		NodeStalls:    o.stalls,
		MeanStallSteps: o.stall,
	})
}

func run(router string, n, k int, wl string, seed int64, h int, torus bool, maxSteps int, improved, showViz bool, traceFile, metricsOut string, fopts faultOpts) error {
	var topo meshroute.Topology
	if torus {
		topo = meshroute.NewTorus(n)
	} else {
		topo = meshroute.NewMesh(n)
	}

	var perm *meshroute.Permutation
	switch wl {
	case "random":
		perm = meshroute.RandomPermutation(topo, seed)
	case "random-dest":
		perm = meshroute.RandomDestinations(topo, seed)
	case "transpose":
		perm = meshroute.Transpose(topo)
	case "reversal":
		perm = meshroute.Reversal(topo)
	case "bitrev":
		perm = meshroute.BitReversal(topo)
	case "rotation":
		perm = meshroute.Rotation(topo, n/3, n/5)
	case "hh":
		hh := meshroute.RandomHH(topo, h, seed)
		perm = &meshroute.Permutation{Pairs: hh.Pairs}
	default:
		return fmt.Errorf("unknown workload %q", wl)
	}

	// The metrics sink (nil unless -metrics-out is given) receives
	// per-step samples from the engine, or phase spans from clt.
	var sink *obs.JSONL
	var sinkOut *os.File
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		sinkOut = f
		sink = obs.NewJSONL(f)
	}
	closeSink := func() error {
		if sink == nil {
			return nil
		}
		if err := sink.Close(); err != nil {
			return err
		}
		if err := sinkOut.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics: %d step samples, %d spans written to %s\n",
			sink.StepCount(), sink.SpanCount(), metricsOut)
		return nil
	}

	if router == "clt" {
		if torus {
			return fmt.Errorf("the Section 6 algorithm targets the mesh")
		}
		cfg := clt.Config{N: n, ImprovedQ: improved}
		if sink != nil {
			cfg.Sink = sink
		}
		r, err := clt.New(cfg)
		if err != nil {
			return err
		}
		res, err := r.Route(perm)
		if err != nil {
			return err
		}
		fmt.Printf("clt (Section 6, Theorem 34) on %d×%d, %d packets\n", n, n, res.Packets)
		fmt.Printf("  synchronized schedule: %d steps (%.1f·n; bound %d·n)\n",
			res.TimeFormula, float64(res.TimeFormula)/float64(n), map[bool]int{false: 972, true: 564}[improved])
		fmt.Printf("  measured work steps:   %d\n", res.TimeMeasured)
		fmt.Printf("  peak node occupancy:   %d (bound 834)\n", res.MaxQueue)
		fmt.Printf("  base case steps:       %d, tile iterations: %d\n", res.BaseCaseSteps, res.Iterations)
		return closeSink()
	}

	budget := maxSteps
	if budget <= 0 {
		budget = 200 * (n*n/k + 2*n)
	}
	faults, err := fopts.schedule(topo, n)
	if err != nil {
		return err
	}
	if faults != nil {
		fmt.Printf("faults: %s (seed %d)\n", faults, fopts.seed)
	}

	if !showViz && traceFile == "" && sink == nil {
		st, err := meshroute.RouteWithOptions(router, topo, k, perm, meshroute.RouteOptions{
			MaxSteps: budget, Faults: faults, FaultAware: fopts.aware, Watchdog: fopts.watchdog,
		})
		if err != nil {
			return err
		}
		printStats(router, n, k, st)
		return nil
	}

	// Instrumented run: metrics sink, viz snapshots and/or trace recording.
	spec, err := meshroute.LookupRouter(router)
	if err != nil {
		return err
	}
	cfg := spec.Config(topo, k)
	cfg.Faults = faults
	cfg.Watchdog = fopts.watchdog
	net, err := sim.New(cfg)
	if err != nil {
		return err
	}
	if err := perm.Place(net); err != nil {
		return err
	}
	if sink != nil {
		net.SetMetricsSink(sink)
	}
	var rec *trace.Recorder
	var traceOut *os.File
	if traceFile != "" {
		traceOut, err = os.Create(traceFile)
		if err != nil {
			return err
		}
		rec = trace.NewRecorder(traceOut)
		rec.Attach(net)
	}
	newAlg := spec.New
	if fopts.aware {
		if spec.NewFaultAware == nil {
			return fmt.Errorf("router %q has no fault-aware variant", router)
		}
		newAlg = spec.NewFaultAware
	}
	alg := newAlg()
	snapshotAt := n / 2 // mid-flight occupancy
	lastProg, lastCount := 0, 0
	for !net.Done() && net.Step() < budget {
		if err := net.StepOnce(alg); err != nil {
			return err
		}
		if c := net.DeliveredCount(); c > lastCount {
			lastCount, lastProg = c, net.Step()
		}
		if w := fopts.watchdog; w > 0 && net.Step()-lastProg >= w && !net.Done() {
			return fmt.Errorf("watchdog: no delivery for %d steps (aborted at step %d): %s",
				w, net.Step(), net.CollectDiagnostics())
		}
		if showViz && net.Step() == snapshotAt {
			fmt.Printf("occupancy after %d steps:\n%s\n", snapshotAt, viz.Occupancy(net))
		}
	}
	if rec != nil {
		if err := rec.Close(); err != nil {
			return err
		}
		if err := traceOut.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d steps written to %s\n", rec.Steps(), traceFile)
	}
	if err := closeSink(); err != nil {
		return err
	}
	st := meshroute.RouteStats{
		Makespan: net.Metrics.Makespan, Steps: net.Step(), Done: net.Done(),
		Delivered: net.DeliveredCount(), Total: net.TotalPackets(),
		MaxQueue: net.Metrics.MaxQueueLen, AvgDelay: net.AvgDelay(),
		FaultDrops: net.Metrics.FaultDrops,
	}
	printStats(router, n, k, st)
	if showViz && traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		steps, err := trace.Read(f)
		if err != nil {
			return err
		}
		a := trace.Analyze(steps)
		fmt.Printf("\n%s\ndelivery curve:\n%s", viz.LinkTraffic(topo, a), viz.DeliveryCurve(a, 8))
	}
	return nil
}

func printStats(router string, n, k int, st meshroute.RouteStats) {
	fmt.Printf("%s on %d×%d (k=%d), %d packets\n", router, n, n, k, st.Total)
	fmt.Printf("  delivered: %d/%d (done=%v in %d steps)\n", st.Delivered, st.Total, st.Done, st.Steps)
	fmt.Printf("  makespan:  %d steps (%.2f·n)\n", st.Makespan, float64(st.Makespan)/float64(n))
	fmt.Printf("  max queue: %d, avg delay: %.1f\n", st.MaxQueue, st.AvgDelay)
	if st.FaultDrops > 0 {
		fmt.Printf("  fault drops: %d moves\n", st.FaultDrops)
	}
}
