// Command benchgate is the CI benchmark-regression gate. It parses two
// `go test -bench` outputs — a committed baseline and the current run — and
// fails (exit 1) if
//
//   - any benchmark named in -zero-alloc reports a nonzero allocs/op in the
//     current run, or
//   - any benchmark named in -zero-bytes reports a nonzero B/op in the
//     current run (the stricter form: sub-one-per-op allocations round to
//     0 allocs/op but still show up as bytes), or
//   - any benchmark present in both files regressed its best (minimum)
//     ns/op by more than -max-regress percent, or
//   - the parallel step pipeline stopped scaling: the -scale-w benchmark's
//     best ns/op exceeds -scale-ratio times the -scale-base benchmark's
//     (skipped, with a note, when GOMAXPROCS < -scale-min-procs — a
//     single-core runner cannot demonstrate speedup).
//
// With -count > 1 the best iteration is compared, which suppresses
// scheduling noise: a real regression slows every iteration, while noise
// rarely speeds one up.
//
// Usage:
//
//	go test ./internal/sim -bench 'StepDense|StepSparse|StepTorus|StepOnline' -benchmem -count 5 -run '^$' -timeout 60m > current.txt
//	go run ./cmd/benchgate -baseline out/BENCH_BASELINE.txt -current current.txt
//
// Regenerate the baseline (after an intended perf change, on the same
// machine class) by committing the current output as the new baseline.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// stepTorusCells names every (n, w) cell of the StepTorus scaling matrix:
// the full set is required to run at 0 B/op and 0 allocs/op (the persistent
// pipeline's steady-state contract at any worker count).
const stepTorusCells = "BenchmarkStepTorus/n64/w1,BenchmarkStepTorus/n64/w2,BenchmarkStepTorus/n64/w4,BenchmarkStepTorus/n64/w8," +
	"BenchmarkStepTorus/n256/w1,BenchmarkStepTorus/n256/w2,BenchmarkStepTorus/n256/w4,BenchmarkStepTorus/n256/w8," +
	"BenchmarkStepTorus/n1024/w1,BenchmarkStepTorus/n1024/w2,BenchmarkStepTorus/n1024/w4,BenchmarkStepTorus/n1024/w8"

// stepOnlineCells names every worker cell of the StepOnline streaming-
// injection matrix: the per-step admission phase (source pull, bounded-
// buffer admission, backlog drain) must also hold the zero-alloc contract
// at every worker count.
const stepOnlineCells = "BenchmarkStepOnline/n64/w1,BenchmarkStepOnline/n64/w2,BenchmarkStepOnline/n64/w4,BenchmarkStepOnline/n64/w8"

// stepOnlineAnalyzedCells names the StepOnline cells that run with the
// congestion/dilation accumulator attached (internal/analysis): the
// analyzer's admission hook must stay allocation-free, so analysis is
// pay-for-play in CPU only — and with the analyzer absent (all other
// gated cells) the hook is one nil check.
const stepOnlineAnalyzedCells = "BenchmarkStepOnlineAnalyzed/n64/w1,BenchmarkStepOnlineAnalyzed/n64/w4"

// result is the aggregated outcome of one benchmark across -count runs.
type result struct {
	name     string
	bestNs   float64
	maxAlloc int64
	maxBytes int64
	runs     int
}

// parseBench reads `go test -bench` output, aggregating repeated lines of
// the same benchmark (from -count) into best ns/op and worst allocs/op and
// B/op.
func parseBench(path string) (map[string]*result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]*result{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Layout: Name N ns/op-value "ns/op" [value unit]...
		name := strings.SplitN(fields[0], "-", 2)[0] // strip -GOMAXPROCS suffix
		r := out[name]
		if r == nil {
			r = &result{name: name, bestNs: -1, maxAlloc: -1, maxBytes: -1}
			out[name] = r
		}
		r.runs++
		for i := 2; i+1 < len(fields); i += 2 {
			v, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				ns, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad ns/op %q", name, v)
				}
				if r.bestNs < 0 || ns < r.bestNs {
					r.bestNs = ns
				}
			case "allocs/op":
				a, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad allocs/op %q", name, v)
				}
				if a > r.maxAlloc {
					r.maxAlloc = a
				}
			case "B/op":
				bb, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad B/op %q", name, v)
				}
				if bb > r.maxBytes {
					r.maxBytes = bb
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// checkScaling is the scaling-gate comparison: the parallel benchmark's
// best ns/op must not exceed ratio × the reference benchmark's. The
// GOMAXPROCS skip is decided by the caller; this sees only the numbers.
func checkScaling(cur map[string]*result, base, w string, ratio float64) error {
	b, okB := cur[base]
	p, okW := cur[w]
	if !okB || !okW || b.bestNs <= 0 {
		return fmt.Errorf("scaling gate: %s or %s missing from current run", base, w)
	}
	if p.bestNs > b.bestNs*ratio {
		return fmt.Errorf("scaling gate: %s best %.0f ns/op > %.2f × %s best %.0f ns/op",
			w, p.bestNs, ratio, base, b.bestNs)
	}
	return nil
}

func main() {
	baseline := flag.String("baseline", "out/BENCH_BASELINE.txt", "committed baseline `go test -bench` output")
	current := flag.String("current", "", "current `go test -bench` output (required)")
	maxRegress := flag.Float64("max-regress", 10, "max allowed ns/op regression, percent")
	zeroAlloc := flag.String("zero-alloc", "BenchmarkStepDenseNilSink,"+stepTorusCells+","+stepOnlineCells+","+stepOnlineAnalyzedCells, "comma-separated benchmarks required to report 0 allocs/op")
	zeroBytes := flag.String("zero-bytes", stepTorusCells+","+stepOnlineCells+","+stepOnlineAnalyzedCells, "comma-separated benchmarks required to report 0 B/op")
	scaleBase := flag.String("scale-base", "BenchmarkStepTorus/n1024/w1", "scaling-gate reference benchmark")
	scaleW := flag.String("scale-w", "BenchmarkStepTorus/n1024/w4", "scaling-gate parallel benchmark")
	scaleRatio := flag.Float64("scale-ratio", 0.75, "max allowed scale-w ns/op as a fraction of scale-base (0 disables)")
	scaleMinProcs := flag.Int("scale-min-procs", 4, "skip the scaling gate below this GOMAXPROCS")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	base, err := parseBench(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := parseBench(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: current: %v\n", err)
		os.Exit(2)
	}
	failed := false
	for _, name := range strings.Split(*zeroAlloc, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, ok := cur[name]
		switch {
		case !ok:
			fmt.Fprintf(os.Stderr, "FAIL %s: required zero-alloc benchmark missing from current run\n", name)
			failed = true
		case r.maxAlloc != 0:
			fmt.Fprintf(os.Stderr, "FAIL %s: %d allocs/op, want 0\n", name, r.maxAlloc)
			failed = true
		default:
			fmt.Printf("ok   %s: 0 allocs/op\n", name)
		}
	}
	for _, name := range strings.Split(*zeroBytes, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, ok := cur[name]
		switch {
		case !ok:
			fmt.Fprintf(os.Stderr, "FAIL %s: required zero-bytes benchmark missing from current run\n", name)
			failed = true
		case r.maxBytes != 0:
			fmt.Fprintf(os.Stderr, "FAIL %s: %d B/op, want 0\n", name, r.maxBytes)
			failed = true
		default:
			fmt.Printf("ok   %s: 0 B/op\n", name)
		}
	}
	if *scaleRatio > 0 {
		switch {
		case runtime.GOMAXPROCS(0) < *scaleMinProcs:
			fmt.Printf("skip scaling gate: GOMAXPROCS=%d < %d (cannot demonstrate parallel speedup)\n",
				runtime.GOMAXPROCS(0), *scaleMinProcs)
		default:
			if err := checkScaling(cur, *scaleBase, *scaleW, *scaleRatio); err != nil {
				fmt.Fprintf(os.Stderr, "FAIL %v\n", err)
				failed = true
			} else {
				b, w := cur[*scaleBase], cur[*scaleW]
				fmt.Printf("ok   scaling gate: %s best %.0f ns/op ≤ %.2f × %s best %.0f ns/op (ratio %.2f)\n",
					*scaleW, w.bestNs, *scaleRatio, *scaleBase, b.bestNs, w.bestNs/b.bestNs)
			}
		}
	}
	for name, b := range base {
		c, ok := cur[name]
		if !ok || b.bestNs <= 0 {
			continue
		}
		pct := (c.bestNs - b.bestNs) / b.bestNs * 100
		if pct > *maxRegress {
			fmt.Fprintf(os.Stderr, "FAIL %s: best ns/op %.0f vs baseline %.0f (%+.1f%% > %+.1f%% allowed)\n",
				name, c.bestNs, b.bestNs, pct, *maxRegress)
			failed = true
		} else {
			fmt.Printf("ok   %s: best ns/op %.0f vs baseline %.0f (%+.1f%%)\n", name, c.bestNs, b.bestNs, pct)
		}
	}
	if failed {
		os.Exit(1)
	}
}
