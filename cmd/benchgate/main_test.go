package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchAggregatesCounts(t *testing.T) {
	p := writeTemp(t, `goos: linux
BenchmarkStepDense        	   24274	     96960 ns/op	      4096 packets	      33 B/op	       0 allocs/op
BenchmarkStepDense        	   20000	    102000 ns/op	      4096 packets	      40 B/op	       1 allocs/op
BenchmarkStepSparse-8     	  265894	      8387 ns/op	     527 B/op	      63 allocs/op
PASS
`)
	rs, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	d := rs["BenchmarkStepDense"]
	if d == nil || d.runs != 2 {
		t.Fatalf("dense runs = %+v, want 2 runs", d)
	}
	if d.bestNs != 96960 {
		t.Fatalf("best ns/op = %v, want min of both runs", d.bestNs)
	}
	if d.maxAlloc != 1 {
		t.Fatalf("max allocs = %d, want worst of both runs", d.maxAlloc)
	}
	// The -8 GOMAXPROCS suffix must be stripped so baselines from
	// different machines still match by name.
	if s := rs["BenchmarkStepSparse"]; s == nil || s.bestNs != 8387 || s.maxAlloc != 63 {
		t.Fatalf("sparse = %+v", s)
	}
}

func TestParseBenchAggregatesBytes(t *testing.T) {
	p := writeTemp(t, `BenchmarkStepTorus/n64/w2-8   	    2000	    512345 ns/op	      4096 packets	       0 B/op	       0 allocs/op
BenchmarkStepTorus/n64/w2-8   	    2000	    500000 ns/op	      4096 packets	      16 B/op	       0 allocs/op
`)
	rs, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	r := rs["BenchmarkStepTorus/n64/w2"]
	if r == nil {
		t.Fatal("sub-benchmark name with slashes not parsed")
	}
	// B/op takes the worst run: a sub-one-per-op allocation rounds to
	// 0 allocs/op but still shows up as bytes, and the zero-bytes gate
	// must catch it even if only one of the -count runs exposed it.
	if r.maxBytes != 16 {
		t.Fatalf("max B/op = %d, want 16 (worst of both runs)", r.maxBytes)
	}
	if r.maxAlloc != 0 {
		t.Fatalf("max allocs/op = %d, want 0", r.maxAlloc)
	}
	if r.bestNs != 500000 {
		t.Fatalf("best ns/op = %v, want min of both runs", r.bestNs)
	}
}

func TestStepTorusCellsCoverFullMatrix(t *testing.T) {
	cells := strings.Split(stepTorusCells, ",")
	if len(cells) != 12 {
		t.Fatalf("stepTorusCells has %d entries, want the full 3×4 (n, w) matrix", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c] {
			t.Fatalf("duplicate cell %q", c)
		}
		seen[c] = true
	}
	for _, n := range []string{"n64", "n256", "n1024"} {
		for _, w := range []string{"w1", "w2", "w4", "w8"} {
			name := "BenchmarkStepTorus/" + n + "/" + w
			if !seen[name] {
				t.Fatalf("stepTorusCells missing %s", name)
			}
		}
	}
}

func TestCheckScaling(t *testing.T) {
	mk := func(baseNs, wNs float64) map[string]*result {
		return map[string]*result{
			"BenchmarkStepTorus/n1024/w1": {bestNs: baseNs},
			"BenchmarkStepTorus/n1024/w4": {bestNs: wNs},
		}
	}
	const base, w = "BenchmarkStepTorus/n1024/w1", "BenchmarkStepTorus/n1024/w4"
	if err := checkScaling(mk(1000, 740), base, w, 0.75); err != nil {
		t.Fatalf("w4 at 0.74× w1 should pass the 0.75 gate: %v", err)
	}
	if err := checkScaling(mk(1000, 760), base, w, 0.75); err == nil {
		t.Fatal("w4 at 0.76× w1 should fail the 0.75 gate")
	}
	if err := checkScaling(mk(1000, 740), base, "BenchmarkMissing", 0.75); err == nil {
		t.Fatal("missing scale-w benchmark should fail, not pass silently")
	}
	if err := checkScaling(map[string]*result{w: {bestNs: 500}}, base, w, 0.75); err == nil {
		t.Fatal("missing scale-base benchmark should fail, not pass silently")
	}
}

func TestParseBenchIgnoresNonBenchLines(t *testing.T) {
	p := writeTemp(t, "cpu: Intel\nok  \tmeshroute\t1.0s\n")
	rs, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("parsed %d results from non-bench output", len(rs))
	}
}
