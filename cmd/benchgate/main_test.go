package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchAggregatesCounts(t *testing.T) {
	p := writeTemp(t, `goos: linux
BenchmarkStepDense        	   24274	     96960 ns/op	      4096 packets	      33 B/op	       0 allocs/op
BenchmarkStepDense        	   20000	    102000 ns/op	      4096 packets	      40 B/op	       1 allocs/op
BenchmarkStepSparse-8     	  265894	      8387 ns/op	     527 B/op	      63 allocs/op
PASS
`)
	rs, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	d := rs["BenchmarkStepDense"]
	if d == nil || d.runs != 2 {
		t.Fatalf("dense runs = %+v, want 2 runs", d)
	}
	if d.bestNs != 96960 {
		t.Fatalf("best ns/op = %v, want min of both runs", d.bestNs)
	}
	if d.maxAlloc != 1 {
		t.Fatalf("max allocs = %d, want worst of both runs", d.maxAlloc)
	}
	// The -8 GOMAXPROCS suffix must be stripped so baselines from
	// different machines still match by name.
	if s := rs["BenchmarkStepSparse"]; s == nil || s.bestNs != 8387 || s.maxAlloc != 63 {
		t.Fatalf("sparse = %+v", s)
	}
}

func TestParseBenchIgnoresNonBenchLines(t *testing.T) {
	p := writeTemp(t, "cpu: Intel\nok  \tmeshroute\t1.0s\n")
	rs, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("parsed %d results from non-bench output", len(rs))
	}
}
