// Command lowerbound builds a constructed (adversarial) permutation for a
// routing algorithm, verifies the replay equivalence of Lemma 12 and the
// Theorem 13 undeliverability, and optionally measures the full delivery
// time of the constructed permutation.
//
// Usage:
//
//	lowerbound -construction general -router dimorder -n 216 -k 1 -verify
//	lowerbound -construction dimorder -router thm15 -n 120 -k 1 -complete
//	lowerbound -construction ff -n 128 -k 2
//	lowerbound -construction hh -n 120 -k 1 -h 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"meshroute"
	"meshroute/internal/adversary"
	"meshroute/internal/routers"
	"meshroute/internal/sim"
)

func main() {
	var (
		kind     = flag.String("construction", "general", "general|dimorder|ff|hh|torus|delta")
		router   = flag.String("router", meshroute.RouterDimOrder, "router under attack")
		n        = flag.Int("n", 120, "mesh side")
		k        = flag.Int("k", 1, "queue size")
		h        = flag.Int("h", 2, "h for the h-h construction")
		delta    = flag.Int("delta", 1, "stray budget for the delta construction")
		verify   = flag.Bool("verify", false, "check Lemmas 1-8 at every step")
		complete = flag.Bool("complete", false, "run the replay to completion and report the makespan")
		capMul   = flag.Int("cap", 40, "completion step cap as a multiple of the bound")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	spec, err := meshroute.LookupRouter(*router)
	if err != nil {
		log.Fatal(err)
	}

	var (
		res    *adversary.Result
		replay func(sim.Algorithm) (*sim.Network, error)
	)
	switch *kind {
	case "general", "torus", "hh":
		hh := 1
		if *kind == "hh" {
			hh = *h
		}
		c, err := adversary.NewHHConstruction(*n, effK(spec, *k), hh)
		if err != nil {
			log.Fatal(err)
		}
		c.Verify = *verify && hh == 1
		c.Queues = spec.Queues
		c.NetK = *k
		if *kind == "torus" {
			c.Topo = meshroute.NewTorus(2 * *n)
		}
		r, err := c.Run(spec.New())
		if err != nil {
			log.Fatal(err)
		}
		res = r
		replay = func(a sim.Algorithm) (*sim.Network, error) { return c.Replay(r, a) }
	case "delta":
		c, err := adversary.NewDeltaConstruction(*n, *k, *delta)
		if err != nil {
			log.Fatal(err)
		}
		c.Verify = *verify
		stray, _ := meshroute.LookupRouter(meshroute.RouterStray)
		d := *delta
		stray.New = func() sim.Algorithm {
			return meshroute.NewDexAdapter(routers.StrayDimOrder{Delta: d})
		}
		spec = stray
		r, err := c.Run(spec.New())
		if err != nil {
			log.Fatal(err)
		}
		res = r
		replay = func(a sim.Algorithm) (*sim.Network, error) { return c.Replay(r, a) }
	case "dimorder":
		c, err := adversary.NewDOConstruction(*n, effK(spec, *k))
		if err != nil {
			log.Fatal(err)
		}
		c.Verify = *verify
		c.Queues = spec.Queues
		c.NetK = *k
		r, err := c.Run(spec.New())
		if err != nil {
			log.Fatal(err)
		}
		res = r
		replay = func(a sim.Algorithm) (*sim.Network, error) { return c.Replay(r, a) }
	case "ff":
		c, err := adversary.NewFFConstruction(*n, *k)
		if err != nil {
			log.Fatal(err)
		}
		c.Verify = *verify
		ff, _ := meshroute.LookupRouter(meshroute.RouterFarthestFirst)
		spec = ff
		r, err := c.Run(spec.New())
		if err != nil {
			log.Fatal(err)
		}
		res = r
		replay = func(a sim.Algorithm) (*sim.Network, error) { return c.Replay(r, a) }
	default:
		log.Fatalf("unknown construction %q", *kind)
	}

	fmt.Printf("construction %q vs %q on n=%d k=%d\n", *kind, spec.Name, *n, *k)
	fmt.Printf("  constants: cn=%d dn=%d p=%d l=%d\n", res.Par.CN, res.Par.DN, res.Par.P, res.Par.L)
	fmt.Printf("  lower bound (Theorem 13): %d steps\n", res.Steps)
	fmt.Printf("  permutation size: %d packets, exchanges performed: %d\n", len(res.Permutation), res.Exchanges)
	fmt.Printf("  undelivered at the bound: %d\n", res.UndeliveredHard)

	net, err := replay(spec.New())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  replay: Lemma 12 configuration equivalence OK, packets still undelivered OK")

	if *complete {
		// The completion replay can run for cap × bound steps, so it honors
		// SIGINT: an interrupt stops between steps and reports the partial
		// progress instead of discarding the construction.
		cap := *capMul * res.Steps
		_, err := net.RunPartialContext(ctx, spec.New(), cap-net.Step())
		var cerr *sim.CanceledError
		if errors.As(err, &cerr) {
			fmt.Printf("  completion: interrupted at step %d — %s\n", net.Step(), cerr.Diag)
			os.Exit(1)
		}
		if err != nil {
			log.Fatal(err)
		}
		mk, done := net.Metrics.Makespan, net.Done()
		if done {
			fmt.Printf("  completion: %d steps (%.1f× the bound)\n", mk, float64(mk)/float64(res.Steps))
		} else {
			fmt.Printf("  completion: not done after %d steps (≥ %d× the bound)\n", cap, *capMul)
		}
	}
}

// effK maps the router's queue model to the effective central-queue
// capacity the construction constants must assume (Section 5, "Other Queue
// Types": four queues of size k simulate a central queue of size 4k; +1
// for the origin slot).
func effK(spec meshroute.RouterSpec, k int) int {
	if spec.Queues == sim.PerInlinkQueues {
		return 4*k + 1
	}
	return k
}
